// Command stress exercises the LLX/SCX multiset and BST under sustained
// concurrent churn, periodically pausing the workload to verify structural
// invariants and per-key conservation. It is the long-running companion to
// the unit suites: run it for minutes or hours to shake out rare
// interleavings. Workers bind pooled core.Handles through each structure's
// Attach API, and the final report includes the template engine's
// contention counters.
//
// Any invariant violation — a checkpoint mismatch, or a panic raised inside
// a worker by an engine or structure guard — is reported as a diagnostic on
// stderr with a non-zero exit, never as a mid-goroutine crash, so CI lanes
// that run stress fail cleanly.
//
// With -shards > 1 the multiset runs behind the internal/shard
// hash-partitioned container wrapper: the workload routes through the
// sharded session, checkpoints verify per-key conservation against the
// union of all shards plus every shard's structural invariants, and the
// final report adds a per-shard contention table.
//
// With -crash the workload moves onto the network: stress becomes the
// client half of the crash harness, driving a DURABLE server (cmd/server
// -wal-dir) at -addr with pipelined mixed traffic, riding through server
// restarts by redialing, and auditing per-key interval conservation over
// the wire at the end — every acknowledged operation must have survived,
// no matter how many times the server was kill -9ed mid-run. See
// scripts/crash_smoke.sh for the full choreography.
//
// With -struct hashmap the churn runs against the lock-free resizable hash
// map; checkpoints audit per-key conservation (net applied inserts per key
// must equal its presence) plus the map's structural invariants. Adding
// -resizehammer switches to a monotonically growing keyspace that forces
// doubling after doubling while readers traverse mid-migration — the
// adversarial workload for the primed-pointer resize protocol. Each
// checkpoint starts a fresh map so memory stays bounded over long runs.
//
// Usage:
//
//	stress [-dur 10s] [-threads 8] [-keys 256] [-struct multiset|bst|hashmap] [-shards 1] [-checks 10]
//	stress -struct hashmap -resizehammer [-dur 10s] [-threads 8] [-checks 10]
//	stress -crash [-addr 127.0.0.1:7700] [-dur 10s] [-threads 8] [-keys 256]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pragmaprim/internal/bst"
	"pragmaprim/internal/container"
	"pragmaprim/internal/core"
	"pragmaprim/internal/hashmap"
	"pragmaprim/internal/multiset"
	"pragmaprim/internal/reclaim"
	"pragmaprim/internal/shard"
	"pragmaprim/internal/stats"
	"pragmaprim/internal/template"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		dur      = flag.Duration("dur", 10*time.Second, "total stress duration")
		threads  = flag.Int("threads", 8, "worker goroutines")
		keys     = flag.Int("keys", 256, "key range")
		structur = flag.String("struct", "multiset", "structure to stress: multiset, bst or hashmap")
		shards   = flag.Int("shards", 1, "hash-partition the multiset across this many shards (rounds up to a power of two)")
		checks   = flag.Int("checks", 10, "number of invariant checkpoints")
		hammer   = flag.Bool("resizehammer", false, "with -struct hashmap: monotonically growing keyspace forcing continuous doublings")
		crash    = flag.Bool("crash", false, "crash-harness mode: drive a durable server at -addr and audit conservation over the wire")
		addr     = flag.String("addr", "127.0.0.1:7700", "server address for -crash mode")
	)
	flag.Parse()

	if *threads < 1 || *keys < 1 || *checks < 1 {
		fmt.Fprintln(os.Stderr, "stress: -threads, -keys and -checks must be >= 1")
		return 2
	}

	if *crash {
		if err := crashStress(*addr, *dur, *threads, *keys); err != nil {
			fmt.Fprintf(os.Stderr, "stress: FAILED: %v\n", err)
			return 1
		}
		fmt.Println("stress: OK")
		return 0
	}

	if *hammer && *structur != "hashmap" {
		fmt.Fprintln(os.Stderr, "stress: -resizehammer requires -struct hashmap")
		return 2
	}

	var stressFn func(dur time.Duration, threads, keys, checks int) error
	switch {
	case *structur == "multiset" && *shards > 1:
		n := shard.NextPow2(*shards)
		stressFn = func(dur time.Duration, threads, keys, checks int) error {
			return stressShardedMultiset(dur, threads, keys, checks, n)
		}
	case *structur == "multiset":
		stressFn = stressMultiset
	case *structur == "bst" && *shards > 1, *structur == "hashmap" && *shards > 1:
		fmt.Fprintln(os.Stderr, "stress: -shards supports -struct multiset only")
		return 2
	case *structur == "bst":
		stressFn = stressBST
	case *structur == "hashmap" && *hammer:
		stressFn = stressHashmapResizeHammer
	case *structur == "hashmap":
		stressFn = stressHashmap
	default:
		fmt.Fprintf(os.Stderr, "stress: unknown -struct %q\n", *structur)
		return 2
	}
	if err := stressFn(*dur, *threads, *keys, *checks); err != nil {
		fmt.Fprintf(os.Stderr, "stress: FAILED: %v\n", err)
		return 1
	}
	fmt.Println("stress: OK")
	return 0
}

// stressShardedMultiset churns a hash-partitioned multiset through the
// container/shard layer. Each checkpoint quiesces the workload, checks every
// shard's structural invariants, and verifies per-key conservation against
// the union of the shards' contents — which also proves the router sent
// every key to exactly one shard (a double-routed key would double-count).
func stressShardedMultiset(dur time.Duration, threads, keys, checks, shardCount int) error {
	sets := make([]*multiset.Multiset[int], shardCount)
	sh := shard.New(shardCount, func(i int) container.Container {
		sets[i] = multiset.New[int]()
		return container.Multiset(sets[i])
	})

	nets := make([][]atomic.Int64, threads)
	for w := range nets {
		nets[w] = make([]atomic.Int64, keys)
	}
	var ops atomic.Int64

	interval := dur / time.Duration(checks)
	fmt.Printf("stress: multiset/%dsh, %d threads, %d keys, %d checkpoints every %v\n",
		shardCount, threads, keys, checks, interval)
	for c := 0; c < checks; c++ {
		stopPhase := phase(threads, func(w int, stop *atomic.Bool) {
			rng := rand.New(rand.NewSource(int64(c*threads + w)))
			s := sh.NewSession()
			defer s.Close()
			for !stop.Load() {
				key := rng.Intn(keys)
				switch rng.Intn(3) {
				case 0:
					if s.Insert(key) {
						nets[w][key].Add(1)
					}
				case 1:
					if s.Delete(key) {
						nets[w][key].Add(-1)
					}
				default:
					s.Get(key)
				}
				ops.Add(1)
			}
		})
		time.Sleep(interval)
		if err := stopPhase(); err != nil {
			return fmt.Errorf("checkpoint %d: %w", c, err)
		}

		// Quiescent checkpoint over the union of the shards.
		items := make(map[int]int)
		for i, m := range sets {
			if err := m.CheckInvariants(); err != nil {
				return fmt.Errorf("checkpoint %d: shard %d: %w", c, i, err)
			}
			for k, n := range m.Items() {
				items[k] += n
			}
		}
		for k := 0; k < keys; k++ {
			var want int64
			for w := 0; w < threads; w++ {
				want += nets[w][k].Load()
			}
			if got := int64(items[k]); got != want {
				return fmt.Errorf("checkpoint %d: key %d count %d, want %d", c, k, got, want)
			}
		}
		fmt.Printf("  checkpoint %d ok: %d ops so far, %d keys live over %d shards\n",
			c+1, ops.Load(), len(items), shardCount)
	}
	printEngineReport(sh.EngineStats(), sh.StatsByOp())
	printShardReport(sh)
	return nil
}

// printShardReport renders the per-shard contention and occupancy table.
func printShardReport(sh *shard.Sharded) {
	tb := stats.NewTable("contention by shard",
		"shard", "size", "ops", "attempts", "retries/op", "llx-fail%", "scx-fail%")
	sh.ForEachShard(func(i int, c container.Container) {
		cnt := c.EngineStats()
		tb.AddRow(append([]any{i, c.Size()},
			stats.ContentionRow(cnt.Ops, cnt.Attempts, cnt.LLXFails, cnt.SCXFails)...)...)
	})
	tb.WriteTo(os.Stdout)
}

// phase runs workers until stop flips, then joins them. A panic inside a
// worker — an engine invariant guard, a structure assertion — is recovered
// and surfaced as the join's error with the panicking goroutine's stack,
// so an invariant violation fails the run with a diagnostic and a non-zero
// exit instead of crashing the process mid-goroutine; the first panic also
// flips stop so the remaining workers wind down instead of hammering a
// structure known to be corrupt.
func phase(threads int, body func(w int, stop *atomic.Bool)) func() error {
	var stop atomic.Bool
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					stack := debug.Stack()
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("invariant violation: worker %d panicked: %v\n%s", w, r, stack)
					}
					mu.Unlock()
					stop.Store(true)
				}
			}()
			body(w, &stop)
		}(w)
	}
	return func() error {
		stop.Store(true)
		wg.Wait()
		mu.Lock()
		defer mu.Unlock()
		return firstErr
	}
}

func stressMultiset(dur time.Duration, threads, keys, checks int) error {
	m := multiset.New[int]()
	// Per-worker per-key net counts let each checkpoint verify conservation.
	nets := make([][]atomic.Int64, threads)
	for w := range nets {
		nets[w] = make([]atomic.Int64, keys)
	}
	var ops atomic.Int64

	interval := dur / time.Duration(checks)
	fmt.Printf("stress: multiset, %d threads, %d keys, %d checkpoints every %v\n",
		threads, keys, checks, interval)
	for c := 0; c < checks; c++ {
		stopPhase := phase(threads, func(w int, stop *atomic.Bool) {
			rng := rand.New(rand.NewSource(int64(c*threads + w)))
			h := core.AcquireHandle()
			defer h.Release()
			s := m.Attach(h)
			for !stop.Load() {
				key := rng.Intn(keys)
				count := 1 + rng.Intn(3)
				switch rng.Intn(3) {
				case 0:
					s.Insert(key, count)
					nets[w][key].Add(int64(count))
				case 1:
					if s.Delete(key, count) {
						nets[w][key].Add(-int64(count))
					}
				default:
					s.Get(key)
				}
				ops.Add(1)
			}
		})
		time.Sleep(interval)
		if err := stopPhase(); err != nil {
			return fmt.Errorf("checkpoint %d: %w", c, err)
		}

		// Quiescent checkpoint.
		if err := m.CheckInvariants(); err != nil {
			return fmt.Errorf("checkpoint %d: %w", c, err)
		}
		items := m.Items()
		for k := 0; k < keys; k++ {
			var want int64
			for w := 0; w < threads; w++ {
				want += nets[w][k].Load()
			}
			if got := int64(items[k]); got != want {
				return fmt.Errorf("checkpoint %d: key %d count %d, want %d", c, k, got, want)
			}
		}
		fmt.Printf("  checkpoint %d ok: %d ops so far, %d keys live\n", c+1, ops.Load(), len(items))
	}
	printEngineReport(m.EngineStats(), m.StatsByOp())
	return nil
}

func stressBST(dur time.Duration, threads, keys, checks int) error {
	t := bst.New[int, int]()
	// Partition the key space so each worker owns keys w mod threads and
	// presence is exactly reconstructible at checkpoints.
	present := make([][]atomic.Bool, threads)
	for w := range present {
		present[w] = make([]atomic.Bool, keys)
	}
	var ops atomic.Int64

	interval := dur / time.Duration(checks)
	fmt.Printf("stress: bst, %d threads, %d keys, %d checkpoints every %v\n",
		threads, keys, checks, interval)
	for c := 0; c < checks; c++ {
		stopPhase := phase(threads, func(w int, stop *atomic.Bool) {
			rng := rand.New(rand.NewSource(int64(c*threads+w) + 424242))
			h := core.AcquireHandle()
			defer h.Release()
			s := t.Attach(h)
			for !stop.Load() {
				k := rng.Intn(keys/threads)*threads + w // owned key
				switch rng.Intn(3) {
				case 0:
					s.Put(k, k)
					present[w][k].Store(true)
				case 1:
					s.Delete(k)
					present[w][k].Store(false)
				default:
					s.Get(k)
				}
				ops.Add(1)
			}
		})
		time.Sleep(interval)
		if err := stopPhase(); err != nil {
			return fmt.Errorf("checkpoint %d: %w", c, err)
		}

		if err := t.CheckInvariants(); err != nil {
			return fmt.Errorf("checkpoint %d: %w", c, err)
		}
		live := make(map[int]bool)
		for _, k := range t.Keys() {
			live[k] = true
		}
		for w := 0; w < threads; w++ {
			for k := w; k < keys; k += threads {
				if want := present[w][k].Load(); live[k] != want {
					return fmt.Errorf("checkpoint %d: key %d present=%v, want %v",
						c, k, live[k], want)
				}
			}
		}
		fmt.Printf("  checkpoint %d ok: %d ops so far, %d keys live\n", c+1, ops.Load(), len(live))
	}
	printEngineReport(t.EngineStats(), t.StatsByOp())
	return nil
}

// stressHashmap churns the lock-free resizable hash map over a fixed key
// range. Each checkpoint quiesces the workload, verifies the map's
// structural invariants (bucket residency, no duplicates, sentinel
// positions, the conserved striped size counter), and audits per-key
// conservation: summing every worker's applied inserts minus applied
// deletes per key must yield exactly that key's presence — across however
// many table migrations the churn triggered.
func stressHashmap(dur time.Duration, threads, keys, checks int) error {
	m := hashmap.New()
	nets := make([][]atomic.Int64, threads)
	for w := range nets {
		nets[w] = make([]atomic.Int64, keys)
	}
	var ops atomic.Int64

	interval := dur / time.Duration(checks)
	fmt.Printf("stress: hashmap, %d threads, %d keys, %d checkpoints every %v\n",
		threads, keys, checks, interval)
	for c := 0; c < checks; c++ {
		stopPhase := phase(threads, func(w int, stop *atomic.Bool) {
			rng := rand.New(rand.NewSource(int64(c*threads + w)))
			h := core.AcquireHandle()
			defer h.Release()
			s := m.Attach(h)
			for !stop.Load() {
				key := rng.Intn(keys)
				switch rng.Intn(3) {
				case 0:
					if s.Insert(key) {
						nets[w][key].Add(1)
					}
				case 1:
					if s.Delete(key) {
						nets[w][key].Add(-1)
					}
				default:
					s.Get(key)
				}
				ops.Add(1)
			}
		})
		time.Sleep(interval)
		if err := stopPhase(); err != nil {
			return fmt.Errorf("checkpoint %d: %w", c, err)
		}

		// Quiescent checkpoint.
		if err := m.CheckInvariants(); err != nil {
			return fmt.Errorf("checkpoint %d: %w", c, err)
		}
		live := 0
		for k := 0; k < keys; k++ {
			var net int64
			for w := 0; w < threads; w++ {
				net += nets[w][k].Load()
			}
			if net != 0 && net != 1 {
				return fmt.Errorf("checkpoint %d: key %d net applied inserts %d, want 0 or 1", c, k, net)
			}
			if present := m.Get(k); present != (net == 1) {
				return fmt.Errorf("checkpoint %d: key %d present=%v, ledger says %d", c, k, present, net)
			}
			if net == 1 {
				live++
			}
		}
		if got := m.Size(); got != live {
			return fmt.Errorf("checkpoint %d: Size() %d, ledger says %d", c, got, live)
		}
		migrated, resizes := m.MigrationStats()
		fmt.Printf("  checkpoint %d ok: %d ops so far, %d keys live, %d buckets (%d migrated, %d resizes)\n",
			c+1, ops.Load(), live, m.Buckets(), migrated, resizes)
	}
	printEngineReport(m.EngineStats(), m.StatsByOp())
	return nil
}

// stressHashmapResizeHammer is the migration-protocol workout: writers
// insert a monotonically growing keyspace (forcing doubling after doubling)
// and delete a fraction behind themselves, while the remaining workers read
// and traverse mid-migration. Each checkpoint verifies the full contents
// against the deterministic expectation and then starts a fresh map, so
// memory stays bounded however long the run is. The -keys flag is unused
// here — the keyspace is the point.
func stressHashmapResizeHammer(dur time.Duration, threads, _, checks int) error {
	writers := (threads + 1) / 2
	interval := dur / time.Duration(checks)
	fmt.Printf("stress: hashmap resize hammer, %d writers + %d readers, %d checkpoints every %v\n",
		writers, threads-writers, checks, interval)
	var ops atomic.Int64
	for c := 0; c < checks; c++ {
		m := hashmap.New()
		var next atomic.Int64
		stopPhase := phase(threads, func(w int, stop *atomic.Bool) {
			h := core.AcquireHandle()
			defer h.Release()
			s := m.Attach(h)
			if w < writers {
				for !stop.Load() {
					k := int(next.Add(1))
					if !s.Insert(k) {
						panic(fmt.Sprintf("fresh key %d already present", k))
					}
					if !s.Get(k) {
						panic(fmt.Sprintf("key %d invisible right after insert", k))
					}
					if k%5 == 0 && !s.Delete(k) {
						panic(fmt.Sprintf("key %d vanished before delete", k))
					}
					ops.Add(1)
				}
				return
			}
			rng := rand.New(rand.NewSource(int64(c*threads + w)))
			for i := 0; !stop.Load(); i++ {
				hi := int(next.Load())
				if hi < 1 {
					continue
				}
				s.Get(1 + rng.Intn(hi))
				if i%1024 == 0 {
					m.Range(func(int) bool { return true })
				}
				ops.Add(1)
			}
		})
		time.Sleep(interval)
		if err := stopPhase(); err != nil {
			return fmt.Errorf("checkpoint %d: %w", c, err)
		}

		if err := m.CheckInvariants(); err != nil {
			return fmt.Errorf("checkpoint %d: %w", c, err)
		}
		hi := int(next.Load())
		want := 0
		for k := 1; k <= hi; k++ {
			expect := k%5 != 0
			if got := m.Get(k); got != expect {
				return fmt.Errorf("checkpoint %d: key %d present=%v, want %v", c, k, got, expect)
			}
			if expect {
				want++
			}
		}
		if got := m.Size(); got != want {
			return fmt.Errorf("checkpoint %d: Size() %d, want %d", c, got, want)
		}
		migrated, resizes := m.MigrationStats()
		fmt.Printf("  checkpoint %d ok: %d ops so far, %d keys grown, %d buckets (%d migrated, %d resizes)\n",
			c+1, ops.Load(), hi, m.Buckets(), migrated, resizes)
	}
	printReclaimReport()
	return nil
}

// printReclaimReport renders the Default reclamation domain's gauges: epoch
// progress (a large lag or a stuck epoch means a reader is pinning garbage),
// announcement occupancy, and the retired-node depths by stage.
func printReclaimReport() {
	g := reclaim.Default.Gauges()
	fmt.Printf("stress: reclaim: epoch=%d lag=%d active=%d advances=%d/%d attempts scavenged=%d limbo=%d parked=%d free=%d\n",
		g.Epoch, g.OldestLag, g.ActiveSlots, g.Advances, g.Attempts, g.Scavenged, g.Limbo, g.Parked, g.Free)
}

// printEngineReport renders the template engine's contention counters — the
// aggregate line plus a per-operation breakdown table — and the process's
// epoch-reclamation gauges, so every stress run's report shows whether the
// epoch kept advancing and how much garbage sat in limbo at the end.
func printEngineReport(total template.Counters, byOp map[string]template.Counters) {
	fmt.Printf("stress: engine: %d update ops, %d retries, %d SCX failures\n",
		total.Ops, total.Retries(), total.SCXFails)
	printReclaimReport()
	tb := stats.NewTable("engine contention by operation",
		"op", "ops", "attempts", "retries/op", "llx-fail%", "scx-fail%")
	names := make([]string, 0, len(byOp))
	for name := range byOp {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		c := byOp[name]
		tb.AddRow(append([]any{name},
			stats.ContentionRow(c.Ops, c.Attempts, c.LLXFails, c.SCXFails)...)...)
	}
	tb.WriteTo(os.Stdout)
}
