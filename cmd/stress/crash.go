package main

import (
	"fmt"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"pragmaprim/internal/client"
	"pragmaprim/internal/proto"
)

// crashStress is the network-side half of the crash harness: it loads a
// DURABLE server (cmd/server -wal-dir) with pipelined mixed SET/DEL traffic,
// rides through server restarts by redialing with backoff, and verifies
// interval conservation at the end over the wire.
//
// The accounting is the conservation ledger under uncertainty. Every reply a
// worker receives is a durable acknowledgement: the server fsynced the
// record before the reply reached the wire, so acked operations MUST survive
// any crash. Every operation sent whose reply never arrived (connection
// died: crash, drain, timeout) is a "maybe": the server may or may not have
// applied and committed it before dying. So for each key,
//
//	ackedNet - maybeDel  <=  recovered count  <=  ackedNet + maybeIns
//
// and any count outside that interval is a durability bug: below means an
// acknowledged write was lost (ack-then-lose), above means an operation the
// server never acked — or never received — materialized. The driver script
// (scripts/crash_smoke.sh) kill -9s the server mid-run and restarts it on
// the same WAL directory; this process's exit code is the verdict.
func crashStress(addr string, dur time.Duration, threads, keys int) error {
	const depth = 32

	if dur <= 0 {
		// Liveness probe: connect and PING, write nothing. The smoke script
		// uses this to wait for the server without perturbing the ledger.
		rd := client.Redialer{Addr: addr, Opts: client.Options{
			DialTimeout: time.Second, ReadTimeout: time.Second,
		}, MaxAttempts: 1}
		cl, err := rd.Dial()
		if err != nil {
			return err
		}
		defer cl.Close()
		return cl.Ping()
	}

	acked := make([]atomic.Int64, keys)    // net acked inserts - deletes
	maybeIns := make([]atomic.Int64, keys) // sent inserts, reply unknown
	maybeDel := make([]atomic.Int64, keys) // sent deletes, reply unknown
	var ackedOps, redials, breaks atomic.Int64

	fmt.Printf("stress: crash mode against %s: %d workers, %d keys, %v\n", addr, threads, keys, dur)
	deadline := time.Now().Add(dur)
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rd := client.Redialer{Addr: addr, Opts: client.Options{
				DialTimeout: 2 * time.Second,
				ReadTimeout: 2 * time.Second,
			}}
			rng := rand.New(rand.NewSource(int64(w) + 1))
			var cl *client.Client
			defer func() {
				if cl != nil {
					cl.Close()
				}
			}()
			for time.Now().Before(deadline) {
				if cl == nil {
					c, err := rd.Dial()
					if err != nil {
						// Server still down; try again until time runs out.
						time.Sleep(100 * time.Millisecond)
						continue
					}
					cl = c
				}
				type sentOp struct {
					key int
					del bool
				}
				sent := make([]sentOp, 0, depth)
				abort := func(from int) {
					for _, op := range sent[from:] {
						if op.del {
							maybeDel[op.key].Add(1)
						} else {
							maybeIns[op.key].Add(1)
						}
					}
					breaks.Add(1)
					cl.Close()
					cl = nil
					redials.Store(int64(rd.Redials()))
				}
				broke := false
				for i := 0; i < depth; i++ {
					op := sentOp{key: rng.Intn(keys), del: rng.Intn(3) == 0}
					code := proto.OpSet
					if op.del {
						code = proto.OpDel
					}
					sent = append(sent, op)
					if err := cl.Send(proto.Request{Op: code, Key: int64(op.key)}); err != nil {
						abort(0)
						broke = true
						break
					}
				}
				if broke {
					continue
				}
				if err := cl.Flush(); err != nil {
					abort(0)
					continue
				}
				for got := 0; got < len(sent); got++ {
					rep, err := cl.Recv()
					if err != nil {
						abort(got)
						break
					}
					if ok, err := rep.Bool(); err == nil && ok {
						if sent[got].del {
							acked[sent[got].key].Add(-1)
						} else {
							acked[sent[got].key].Add(1)
						}
						ackedOps.Add(1)
					}
				}
			}
		}(w)
	}
	wg.Wait()

	// Final audit over the wire: the server now running on addr (possibly a
	// restarted incarnation recovered from the WAL) must hold every key
	// inside its conservation interval.
	rd := client.Redialer{Addr: addr, Opts: client.Options{
		DialTimeout: 2 * time.Second, ReadTimeout: 2 * time.Second,
	}}
	cl, err := rd.Dial()
	if err != nil {
		return fmt.Errorf("crash audit: cannot reach server: %w", err)
	}
	defer cl.Close()

	violations := 0
	var total int64
	for k := 0; k < keys; k++ {
		n, err := cl.Count(k)
		if err != nil {
			return fmt.Errorf("crash audit: COUNT %d: %w", k, err)
		}
		total += n
		lo := acked[k].Load() - maybeDel[k].Load()
		hi := acked[k].Load() + maybeIns[k].Load()
		if n < lo || n > hi || n < 0 {
			violations++
			fmt.Fprintf(os.Stderr, "stress: key %d: recovered count %d outside [%d, %d] (acked %d, maybeIns %d, maybeDel %d)\n",
				k, n, lo, hi, acked[k].Load(), maybeIns[k].Load(), maybeDel[k].Load())
		}
	}
	size, err := cl.Size()
	if err != nil {
		return fmt.Errorf("crash audit: SIZE: %w", err)
	}
	if int64(size) != total {
		violations++
		fmt.Fprintf(os.Stderr, "stress: SIZE %d != sum of per-key counts %d\n", size, total)
	}
	fmt.Printf("stress: crash audit: %d ops acked, %d connection breaks, %d redial storms, final size %d\n",
		ackedOps.Load(), breaks.Load(), redials.Load(), size)
	if violations > 0 {
		return fmt.Errorf("crash audit: %d conservation violations — an acked write was lost or phantom state appeared", violations)
	}
	return nil
}
