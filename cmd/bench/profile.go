package main

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// startProfiles enables the requested pprof profiles and returns a function
// that flushes them to disk. CPU profiling streams for the whole run; the
// heap, mutex and block profiles are snapshots taken at stop time, after the
// measured work — the shape that makes `bench -parallel -cpuprofile ...`
// directly answer "where do the parallel lanes spend their time" and
// `-mutexprofile`/`-blockprofile` answer "on what do they wait".
//
// Each empty path disables that profile. Mutex and block profiling are
// sampled at full rate while enabled: the bench process exists to be
// measured, so fidelity beats the sampling overhead.
func startProfiles(cpu, mem, mutex, block string) (stop func(), err error) {
	var stops []func()
	fail := func(err error) (func(), error) {
		for _, s := range stops {
			s()
		}
		return nil, err
	}
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			return fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fail(fmt.Errorf("cpuprofile: %w", err))
		}
		stops = append(stops, func() {
			pprof.StopCPUProfile()
			f.Close()
		})
	}
	if mutex != "" {
		runtime.SetMutexProfileFraction(1)
		stops = append(stops, writeProfileOnStop("mutex", mutex))
	}
	if block != "" {
		runtime.SetBlockProfileRate(1)
		stops = append(stops, writeProfileOnStop("block", block))
	}
	if mem != "" {
		stops = append(stops, func() {
			runtime.GC() // material still in limbo or caches stays; dead garbage does not
			f, err := os.Create(mem)
			if err != nil {
				fmt.Fprintf(os.Stderr, "bench: memprofile: %v\n", err)
				return
			}
			defer f.Close()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "bench: memprofile: %v\n", err)
			}
		})
	}
	return func() {
		// In registration order: the CPU profile stops first, so the cost of
		// writing the snapshot profiles never pollutes it.
		for _, s := range stops {
			s()
		}
	}, nil
}

// writeProfileOnStop returns a stop hook that dumps the named runtime
// profile (with symbolized stacks) to path.
func writeProfileOnStop(name, path string) func() {
	return func() {
		p := pprof.Lookup(name)
		if p == nil {
			fmt.Fprintf(os.Stderr, "bench: unknown profile %q\n", name)
			return
		}
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: %sprofile: %v\n", name, err)
			return
		}
		defer f.Close()
		if err := p.WriteTo(f, 0); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %sprofile: %v\n", name, err)
		}
	}
}
