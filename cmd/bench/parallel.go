package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"testing"

	"pragmaprim/internal/benchcore"
)

// The parallel suite is the multi-core comparison lane: the hash map against
// sync.Map, an RWMutex map and the sharded multiset under the mixed
// read-probability workload of internal/benchcore's BenchmarkParallel*
// bodies, measured at several GOMAXPROCS settings in one process.
// BENCH_parallel.json at the repository root is the checked-in trajectory;
// each row is keyed by (benchmark, gomaxprocs), the same grid
// `go test -bench BenchmarkParallel -cpu 1,2,4` produces.

// parallelBenchResult is one (benchmark, gomaxprocs) cell.
type parallelBenchResult struct {
	Name        string  `json:"name"`
	GOMAXPROCS  int     `json:"gomaxprocs"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// parallelBenchDump is the whole JSON document.
type parallelBenchDump struct {
	GoVersion string                `json:"go_version"`
	GOARCH    string                `json:"goarch"`
	NumCPU    int                   `json:"num_cpu"`
	Results   []parallelBenchResult `json:"results"`
}

type parallelBench struct {
	name string
	fn   func(b *testing.B)
}

func parallelBenchmarks() []parallelBench {
	targets := []struct {
		name string
		fn   func(*testing.B, int)
		zipf func(*testing.B, int)
	}{
		{"hashmap", benchcore.ParallelHashmap, benchcore.ParallelHashmapZipf},
		{"sync_map", benchcore.ParallelSyncMap, benchcore.ParallelSyncMapZipf},
		{"mutex_map", benchcore.ParallelMutexMap, benchcore.ParallelMutexMapZipf},
		{"sharded_multiset", benchcore.ParallelShardedMultiset, benchcore.ParallelShardedMultisetZipf},
	}
	var out []parallelBench
	for _, readPct := range []int{100, 90, 50} {
		for _, t := range targets {
			t, readPct := t, readPct
			out = append(out, parallelBench{
				name: fmt.Sprintf("parallel_%s_read%d", t.name, readPct),
				fn:   func(b *testing.B) { t.fn(b, readPct) },
			})
		}
	}
	// The Zipf lane runs the common-case 90% read mix under hot-key skew.
	for _, t := range targets {
		t := t
		out = append(out, parallelBench{
			name: fmt.Sprintf("parallel_%s_read90_zipf", t.name),
			fn:   func(b *testing.B) { t.zipf(b, 90) },
		})
	}
	return out
}

// collectParallelBench runs the suite once per requested GOMAXPROCS value,
// restoring the process's setting afterwards. Values above runtime.NumCPU
// still run (oversubscribed goroutines measure scheduling pressure rather
// than parallel speedup) — the dump records NumCPU so readers can tell which
// cells were genuinely parallel.
func collectParallelBench(cpus []int) (parallelBenchDump, error) {
	dump := parallelBenchDump{
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	fmt.Printf("%-36s %5s %12s %12s %10s\n", "benchmark", "procs", "ns/op", "allocs/op", "B/op")
	for _, c := range cpus {
		runtime.GOMAXPROCS(c)
		for _, pb := range parallelBenchmarks() {
			r := testing.Benchmark(pb.fn)
			if r.N == 0 {
				return dump, fmt.Errorf("benchmark %s (GOMAXPROCS=%d) failed", pb.name, c)
			}
			res := parallelBenchResult{
				Name:        pb.name,
				GOMAXPROCS:  c,
				Iterations:  r.N,
				NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
				AllocsPerOp: r.AllocsPerOp(),
				BytesPerOp:  r.AllocedBytesPerOp(),
			}
			dump.Results = append(dump.Results, res)
			fmt.Printf("%-36s %5d %12.1f %12d %10d\n",
				res.Name, res.GOMAXPROCS, res.NsPerOp, res.AllocsPerOp, res.BytesPerOp)
		}
	}
	return dump, nil
}

// runParallelBench runs the suite and, when path is non-empty, writes the
// JSON dump there.
func runParallelBench(cpus []int, path string) error {
	dump, err := collectParallelBench(cpus)
	if err != nil {
		return err
	}
	if path == "" {
		return nil
	}
	out, err := json.MarshalIndent(dump, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	return os.WriteFile(path, out, 0o644)
}

// runCompareParallel re-runs the suite and prints a delta table against a
// prior dump, then enforces the two gates that are robust on arbitrary
// hosts:
//
//   - allocs/op must not regress on any (benchmark, GOMAXPROCS) cell both
//     runs share — allocation counts are deterministic where wall-clock is
//     not, exactly like the core lane's -maxallocregress gate;
//   - the scaling ratio ns/op@2 ÷ ns/op@1 must stay at or below maxScale for
//     every parallel_hashmap_* row (when both GOMAXPROCS values were run).
//     The ratio is taken within one run on one host, so it is immune to the
//     cross-host timing noise that keeps absolute ns/op out of CI; it is the
//     direct regression check on the amortized epoch protocol — per-op
//     announcement traffic is precisely what made the map stop scaling.
//
// Any violation makes the command exit non-zero. maxScale <= 0 disables the
// scaling gate.
func runCompareParallel(baselinePath string, cpus []int, outPath string, maxScale float64) error {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var base parallelBenchDump
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("%s: %w", baselinePath, err)
	}
	key := func(r parallelBenchResult) string {
		return fmt.Sprintf("%s@%d", r.Name, r.GOMAXPROCS)
	}
	baseRows := make(map[string]parallelBenchResult, len(base.Results))
	for _, r := range base.Results {
		baseRows[key(r)] = r
	}
	dump, err := collectParallelBench(cpus)
	if err != nil {
		return err
	}
	if outPath != "" {
		out, err := json.MarshalIndent(dump, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, append(out, '\n'), 0o644); err != nil {
			return err
		}
	}
	fmt.Printf("\ncompare vs %s (base NumCPU=%d, now %d)\n", baselinePath, base.NumCPU, dump.NumCPU)
	fmt.Printf("%-36s %5s %12s %12s %8s %12s\n", "benchmark", "procs", "old ns/op", "new ns/op", "delta", "allocs o→n")
	var violations []string
	for _, r := range dump.Results {
		old, ok := baseRows[key(r)]
		if !ok {
			fmt.Printf("%-36s %5d %12s %12.1f %8s %12s\n", r.Name, r.GOMAXPROCS, "-", r.NsPerOp, "new", fmt.Sprintf("-→%d", r.AllocsPerOp))
			continue
		}
		delta := "~"
		if old.NsPerOp > 0 {
			pct := (r.NsPerOp - old.NsPerOp) / old.NsPerOp * 100
			if pct <= -2 || pct >= 2 {
				delta = fmt.Sprintf("%+.1f%%", pct)
			}
		}
		fmt.Printf("%-36s %5d %12.1f %12.1f %8s %12s\n",
			r.Name, r.GOMAXPROCS, old.NsPerOp, r.NsPerOp, delta,
			fmt.Sprintf("%d→%d", old.AllocsPerOp, r.AllocsPerOp))
		if r.AllocsPerOp > old.AllocsPerOp {
			violations = append(violations, fmt.Sprintf(
				"%s@%d: allocs/op regressed %d → %d", r.Name, r.GOMAXPROCS, old.AllocsPerOp, r.AllocsPerOp))
		}
	}
	violations = append(violations, confirmedScalingViolations(&dump, maxScale)...)
	if len(violations) > 0 {
		fmt.Println()
		for _, v := range violations {
			fmt.Printf("GATE FAIL %s\n", v)
		}
		return fmt.Errorf("%d parallel-lane gate violation(s)", len(violations))
	}
	return nil
}

// scalingViolations checks the within-run scaling gate: for every
// parallel_hashmap_* benchmark measured at both GOMAXPROCS=1 and
// GOMAXPROCS=2, ns/op at 2 procs must be at most maxScale times ns/op at 1
// proc. On a box where 2 procs oversubscribe 1 core this is a pure overhead
// bound (time-sliced workers must not pay coordination traffic); on a real
// multi-core it additionally forbids negative scaling.
func scalingViolations(dump parallelBenchDump, maxScale float64) []string {
	if maxScale <= 0 {
		return nil
	}
	at := make(map[string]map[int]float64)
	for _, r := range dump.Results {
		if at[r.Name] == nil {
			at[r.Name] = make(map[int]float64)
		}
		at[r.Name][r.GOMAXPROCS] = r.NsPerOp
	}
	var out []string
	for name, procs := range at {
		if !strings.HasPrefix(name, "parallel_hashmap_") {
			continue
		}
		one, ok1 := procs[1]
		two, ok2 := procs[2]
		if !ok1 || !ok2 || one <= 0 {
			continue
		}
		if ratio := two / one; ratio > maxScale {
			out = append(out, fmt.Sprintf(
				"%s: ns/op scaling 1→2 procs is %.2fx (%.1f → %.1f), above the %.2fx bound",
				name, ratio, one, two, maxScale))
		}
	}
	sort.Strings(out)
	return out
}

// confirmedScalingViolations runs the scaling gate, re-measuring any
// offending lane before declaring a violation. Wall-clock on a shared or
// oversubscribed host jitters by tens of percent between runs; a genuine
// protocol regression (per-op announcement traffic is what this gate
// exists to catch) reproduces on every run, while scheduler noise does
// not. Each suspect lane is re-measured at both GOMAXPROCS settings up to
// scalingRetries more times, folding the minimum ns/op into the dump —
// timing noise is strictly additive, so min-of-N converges on the true
// cost — and the gate fails only if the violation survives every retry.
func confirmedScalingViolations(dump *parallelBenchDump, maxScale float64) []string {
	const scalingRetries = 2
	viol := scalingViolations(*dump, maxScale)
	if len(viol) == 0 {
		return nil
	}
	fns := make(map[string]func(*testing.B))
	for _, pb := range parallelBenchmarks() {
		fns[pb.name] = pb.fn
	}
	suspects := make(map[string]bool)
	for retry := 0; retry < scalingRetries && len(viol) > 0; retry++ {
		for _, v := range viol {
			name := v[:strings.IndexByte(v, ':')]
			fn := fns[name]
			if fn == nil {
				continue
			}
			suspects[name] = true
			fmt.Printf("scaling gate: re-measuring %s (retry %d)\n", name, retry+1)
			for _, procs := range []int{1, 2} {
				if ns := benchNsPerOp(fn, procs); ns > 0 {
					minIntoDump(dump, name, procs, ns)
				}
			}
		}
		viol = scalingViolations(*dump, maxScale)
	}
	if len(viol) == 0 && len(suspects) > 0 {
		fmt.Printf("scaling gate: violation(s) did not reproduce on re-measurement\n")
	}
	return viol
}

// benchNsPerOp runs one benchmark body at the given GOMAXPROCS and returns
// its ns/op (0 on failure), restoring the previous setting.
func benchNsPerOp(fn func(*testing.B), procs int) float64 {
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)
	r := testing.Benchmark(fn)
	if r.N == 0 {
		return 0
	}
	return float64(r.T.Nanoseconds()) / float64(r.N)
}

// minIntoDump lowers the recorded ns/op for a (name, procs) cell if the new
// sample beat it.
func minIntoDump(dump *parallelBenchDump, name string, procs int, ns float64) {
	for i := range dump.Results {
		r := &dump.Results[i]
		if r.Name == name && r.GOMAXPROCS == procs && ns < r.NsPerOp {
			r.NsPerOp = ns
		}
	}
}
