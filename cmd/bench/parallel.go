package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"pragmaprim/internal/benchcore"
)

// The parallel suite is the multi-core comparison lane: the hash map against
// sync.Map, an RWMutex map and the sharded multiset under the mixed
// read-probability workload of internal/benchcore's BenchmarkParallel*
// bodies, measured at several GOMAXPROCS settings in one process.
// BENCH_parallel.json at the repository root is the checked-in trajectory;
// each row is keyed by (benchmark, gomaxprocs), the same grid
// `go test -bench BenchmarkParallel -cpu 1,2,4` produces.

// parallelBenchResult is one (benchmark, gomaxprocs) cell.
type parallelBenchResult struct {
	Name        string  `json:"name"`
	GOMAXPROCS  int     `json:"gomaxprocs"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// parallelBenchDump is the whole JSON document.
type parallelBenchDump struct {
	GoVersion string                `json:"go_version"`
	GOARCH    string                `json:"goarch"`
	NumCPU    int                   `json:"num_cpu"`
	Results   []parallelBenchResult `json:"results"`
}

type parallelBench struct {
	name string
	fn   func(b *testing.B)
}

func parallelBenchmarks() []parallelBench {
	targets := []struct {
		name string
		fn   func(*testing.B, int)
	}{
		{"hashmap", benchcore.ParallelHashmap},
		{"sync_map", benchcore.ParallelSyncMap},
		{"mutex_map", benchcore.ParallelMutexMap},
		{"sharded_multiset", benchcore.ParallelShardedMultiset},
	}
	var out []parallelBench
	for _, readPct := range []int{90, 50} {
		for _, t := range targets {
			t, readPct := t, readPct
			out = append(out, parallelBench{
				name: fmt.Sprintf("parallel_%s_read%d", t.name, readPct),
				fn:   func(b *testing.B) { t.fn(b, readPct) },
			})
		}
	}
	return out
}

// collectParallelBench runs the suite once per requested GOMAXPROCS value,
// restoring the process's setting afterwards. Values above runtime.NumCPU
// still run (oversubscribed goroutines measure scheduling pressure rather
// than parallel speedup) — the dump records NumCPU so readers can tell which
// cells were genuinely parallel.
func collectParallelBench(cpus []int) (parallelBenchDump, error) {
	dump := parallelBenchDump{
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	fmt.Printf("%-36s %5s %12s %12s %10s\n", "benchmark", "procs", "ns/op", "allocs/op", "B/op")
	for _, c := range cpus {
		runtime.GOMAXPROCS(c)
		for _, pb := range parallelBenchmarks() {
			r := testing.Benchmark(pb.fn)
			if r.N == 0 {
				return dump, fmt.Errorf("benchmark %s (GOMAXPROCS=%d) failed", pb.name, c)
			}
			res := parallelBenchResult{
				Name:        pb.name,
				GOMAXPROCS:  c,
				Iterations:  r.N,
				NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
				AllocsPerOp: r.AllocsPerOp(),
				BytesPerOp:  r.AllocedBytesPerOp(),
			}
			dump.Results = append(dump.Results, res)
			fmt.Printf("%-36s %5d %12.1f %12d %10d\n",
				res.Name, res.GOMAXPROCS, res.NsPerOp, res.AllocsPerOp, res.BytesPerOp)
		}
	}
	return dump, nil
}

// runParallelBench runs the suite and, when path is non-empty, writes the
// JSON dump there.
func runParallelBench(cpus []int, path string) error {
	dump, err := collectParallelBench(cpus)
	if err != nil {
		return err
	}
	if path == "" {
		return nil
	}
	out, err := json.MarshalIndent(dump, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	return os.WriteFile(path, out, 0o644)
}

// runCompareParallel re-runs the suite and prints a delta table against a
// prior dump. Unlike the core lane there is no failure gate: parallel
// timings depend on the host's core count and load, so the table is for
// eyeballs and the checked-in trajectory, not CI enforcement.
func runCompareParallel(baselinePath string, cpus []int, outPath string) error {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var base parallelBenchDump
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("%s: %w", baselinePath, err)
	}
	key := func(r parallelBenchResult) string {
		return fmt.Sprintf("%s@%d", r.Name, r.GOMAXPROCS)
	}
	baseRows := make(map[string]parallelBenchResult, len(base.Results))
	for _, r := range base.Results {
		baseRows[key(r)] = r
	}
	dump, err := collectParallelBench(cpus)
	if err != nil {
		return err
	}
	if outPath != "" {
		out, err := json.MarshalIndent(dump, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, append(out, '\n'), 0o644); err != nil {
			return err
		}
	}
	fmt.Printf("\ncompare vs %s (base NumCPU=%d, now %d)\n", baselinePath, base.NumCPU, dump.NumCPU)
	fmt.Printf("%-36s %5s %12s %12s %8s\n", "benchmark", "procs", "old ns/op", "new ns/op", "delta")
	for _, r := range dump.Results {
		old, ok := baseRows[key(r)]
		if !ok {
			fmt.Printf("%-36s %5d %12s %12.1f %8s\n", r.Name, r.GOMAXPROCS, "-", r.NsPerOp, "new")
			continue
		}
		delta := "~"
		if old.NsPerOp > 0 {
			pct := (r.NsPerOp - old.NsPerOp) / old.NsPerOp * 100
			if pct <= -2 || pct >= 2 {
				delta = fmt.Sprintf("%+.1f%%", pct)
			}
		}
		fmt.Printf("%-36s %5d %12.1f %12.1f %8s\n", r.Name, r.GOMAXPROCS, old.NsPerOp, r.NsPerOp, delta)
	}
	return nil
}
