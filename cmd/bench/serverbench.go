package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"
)

// The parallel server lane is the end-to-end analogue of the parallel
// microbenchmark lane: the same canonical workload grid, self-hosted over a
// real socket, measured once per GOMAXPROCS value. Where BENCH_parallel.json
// isolates a structure's fast path, BENCH_server.json measures the whole
// serving stack — batched decode, one epoch guard per batch, group-committed
// replies, one flush per batch — so a regression anywhere between socket and
// structure shows up here first. The checked-in BENCH_server.json is this
// suite's dump; `bench -compareserver BENCH_server.json` is the CI-shaped
// gate over it.

// serverSuiteCell is one workload shape of the canonical grid; it runs once
// per depth per GOMAXPROCS value.
type serverSuiteCell struct {
	structure string
	shards    int
	mix       string
	dist      string
	depths    []int
}

// serverSuite returns the canonical grid: the read-heavy hashmap sweep that
// carries the scaling gate (uniform, depths 1/16/128), its mixed-write and
// Zipf-skew variants at the saturating depth, and the sharded multiset under
// both mixes — the structure pair every other lane in the repo also keys on.
func serverSuite() []serverSuiteCell {
	return []serverSuiteCell{
		{"hashmap", 1, "90/5/5", "uniform", []int{1, 16, 128}},
		{"hashmap", 1, "50/25/25", "uniform", []int{128}},
		{"hashmap", 1, "90/5/5", "zipf", []int{128}},
		{"llx-multiset", 4, "90/5/5", "uniform", []int{128}},
		{"llx-multiset", 4, "50/25/25", "uniform", []int{128}},
	}
}

// suiteOpts shapes the loadgen options for one suite cell at one GOMAXPROCS
// value: closed loop, connections scaled to at least the proc count so every
// processor has a connection to serve, the 1024-key range the harness lanes
// share.
func suiteOpts(c serverSuiteCell, procs int, dur time.Duration) loadgenOpts {
	conns := 4
	if procs > conns {
		conns = procs
	}
	return loadgenOpts{
		structure: c.structure,
		shards:    c.shards,
		mode:      "closed",
		conns:     conns,
		dist:      c.dist,
		keys:      1024,
		mix:       c.mix,
		dur:       dur,
		quiet:     true,
	}
}

// serverCellKey identifies a dump row for cross-run comparison: the workload
// shape plus the GOMAXPROCS it ran under.
func serverCellKey(r serverBenchResult) string {
	return fmt.Sprintf("%s/%dsh %s %s d%d@%d",
		r.Structure, r.Shards, r.Mix, r.Dist, r.Depth, r.GOMAXPROCS)
}

// collectServerBench runs the canonical suite once per GOMAXPROCS value.
// Values above runtime.NumCPU still run (oversubscribed goroutines measure
// scheduling pressure rather than parallel speedup) — the dump records
// NumCPU so readers can tell which cells were genuinely parallel.
func collectServerBench(cpus []int, dur time.Duration) (serverBenchDump, error) {
	dump := newServerBenchDump()
	fmt.Printf("%-40s %5s %7s %12s %10s %9s %9s\n",
		"cell", "procs", "conns", "ops/sec", "allocs/op", "p50 µs", "p99 µs")
	for _, procs := range cpus {
		for _, c := range serverSuite() {
			o := suiteOpts(c, procs, dur)
			cfg, err := buildWorkload(o)
			if err != nil {
				return dump, err
			}
			results, err := runLoadgenPass(o, cfg, c.depths, procs)
			if err != nil {
				return dump, fmt.Errorf("suite cell %s/%dsh %s %s @%d: %w",
					c.structure, c.shards, c.mix, c.dist, procs, err)
			}
			for _, r := range results {
				dump.Results = append(dump.Results, r)
				fmt.Printf("%-40s %5d %7d %12.0f %10.3f %9.1f %9.1f\n",
					fmt.Sprintf("%s/%dsh %s %s d%d", r.Structure, r.Shards, r.Mix, r.Dist, r.Depth),
					r.GOMAXPROCS, r.Conns, r.OpsPerSec, r.AllocsOp, r.P50us, r.P99us)
			}
		}
	}
	return dump, nil
}

// runServerBench runs the suite and, when path is non-empty, writes the JSON
// dump there.
func runServerBench(cpus []int, dur time.Duration, path string) error {
	dump, err := collectServerBench(cpus, dur)
	if err != nil {
		return err
	}
	if path == "" {
		return nil
	}
	out, err := json.MarshalIndent(dump, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("serverbench: wrote %s\n", path)
	return nil
}

// runCompareServer re-runs the suite and prints a delta table against a
// prior dump, then enforces the two gates that stay meaningful on arbitrary
// hosts (mirroring -compareparallel):
//
//   - allocs/op must stay at or below allocMax on every cell of the new run.
//     The batched hot path is allocation-free, so the steady-state quotient
//     is warmup-amortized noise well under 0.5; a hot path that starts
//     allocating jumps past any reasonable ceiling immediately. An absolute
//     ceiling is used rather than a baseline delta because the measurement
//     is process-wide (client + server + GC bookkeeping), which jitters a
//     few hundredths between runs.
//   - the scaling ratio ops/sec@2 ÷ ops/sec@1 must stay at or above minScale
//     for the hashmap read-heavy uniform depth-128 cell (when both
//     GOMAXPROCS values were run). Taken within one run on one host, so it
//     is immune to cross-host timing noise; on a multi-core host it demands
//     genuine scaling, on a single-core host (where 2 procs time-slice 1
//     core) it is an overhead bound — batching must not add coordination
//     cost that makes oversubscription regress.
//
// Any violation exits non-zero. minScale <= 0 disables the scaling gate;
// allocMax < 0 disables the alloc gate.
func runCompareServer(baselinePath string, cpus []int, outPath string, minScale, allocMax float64, dur time.Duration) error {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var base serverBenchDump
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("%s: %w", baselinePath, err)
	}
	baseRows := make(map[string]serverBenchResult, len(base.Results))
	for _, r := range base.Results {
		baseRows[serverCellKey(r)] = r
	}
	dump, err := collectServerBench(cpus, dur)
	if err != nil {
		return err
	}
	if outPath != "" {
		out, err := json.MarshalIndent(dump, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, append(out, '\n'), 0o644); err != nil {
			return err
		}
	}
	fmt.Printf("\ncompare vs %s (base NumCPU=%d, now %d)\n", baselinePath, base.NumCPU, dump.NumCPU)
	fmt.Printf("%-42s %12s %12s %8s %14s\n", "cell", "old op/s", "new op/s", "delta", "allocs o→n")
	var violations []string
	for _, r := range dump.Results {
		k := serverCellKey(r)
		old, ok := baseRows[k]
		if !ok {
			fmt.Printf("%-42s %12s %12.0f %8s %14s\n", k, "-", r.OpsPerSec, "new",
				fmt.Sprintf("-→%.3f", r.AllocsOp))
		} else {
			delta := "~"
			if old.OpsPerSec > 0 {
				pct := (r.OpsPerSec - old.OpsPerSec) / old.OpsPerSec * 100
				if pct <= -2 || pct >= 2 {
					delta = fmt.Sprintf("%+.1f%%", pct)
				}
			}
			fmt.Printf("%-42s %12.0f %12.0f %8s %14s\n", k, old.OpsPerSec, r.OpsPerSec, delta,
				fmt.Sprintf("%.3f→%.3f", old.AllocsOp, r.AllocsOp))
		}
		if allocMax >= 0 && r.AllocsOp > allocMax {
			violations = append(violations, fmt.Sprintf(
				"%s: allocs/op %.3f above the %.2f ceiling", k, r.AllocsOp, allocMax))
		}
	}
	violations = append(violations, confirmedServerScalingViolations(&dump, minScale, dur)...)
	if len(violations) > 0 {
		fmt.Println()
		for _, v := range violations {
			fmt.Printf("GATE FAIL %s\n", v)
		}
		return fmt.Errorf("%d server-lane gate violation(s)", len(violations))
	}
	return nil
}

// scalingGateCell reports whether a row is one the scaling gate keys on: the
// read-heavy uniform hashmap cell at the saturating depth, the suite's
// stand-in for "the server under its common-case load".
func scalingGateCell(r serverBenchResult) bool {
	return r.Structure == "hashmap" && r.Mix == "90/5/5" &&
		r.Dist == "uniform" && r.Depth == 128
}

// serverScalingViolations checks the within-run scaling gate: ops/sec at
// GOMAXPROCS=2 must be at least minScale times ops/sec at GOMAXPROCS=1 for
// the gate cell, when both were measured.
func serverScalingViolations(dump serverBenchDump, minScale float64) []string {
	if minScale <= 0 {
		return nil
	}
	at := make(map[int]float64)
	for _, r := range dump.Results {
		if scalingGateCell(r) && (r.GOMAXPROCS == 1 || r.GOMAXPROCS == 2) {
			if r.OpsPerSec > at[r.GOMAXPROCS] {
				at[r.GOMAXPROCS] = r.OpsPerSec
			}
		}
	}
	one, two := at[1], at[2]
	if one <= 0 || two <= 0 {
		return nil
	}
	var out []string
	if ratio := two / one; ratio < minScale {
		out = append(out, fmt.Sprintf(
			"hashmap 90/5/5 uniform d128: ops/sec scaling 1→2 procs is %.2fx (%.0f → %.0f), below the %.2fx bound",
			ratio, one, two, minScale))
	}
	sort.Strings(out)
	return out
}

// confirmedServerScalingViolations runs the scaling gate, re-measuring the
// gate cell before declaring a violation. Socket throughput on a shared host
// jitters between runs; a genuine batching regression reproduces on every
// run, while scheduler noise does not. The cell is re-measured at both
// GOMAXPROCS settings up to scalingRetries more times, folding the *maximum*
// ops/sec into the dump — throughput noise is strictly subtractive, so
// max-of-N converges on the true capacity — and the gate fails only if the
// violation survives every retry.
func confirmedServerScalingViolations(dump *serverBenchDump, minScale float64, dur time.Duration) []string {
	const scalingRetries = 2
	viol := serverScalingViolations(*dump, minScale)
	if len(viol) == 0 {
		return nil
	}
	cell := serverSuiteCell{"hashmap", 1, "90/5/5", "uniform", []int{128}}
	for retry := 0; retry < scalingRetries && len(viol) > 0; retry++ {
		fmt.Printf("scaling gate: re-measuring %s 90/5/5 uniform d128 (retry %d)\n", cell.structure, retry+1)
		for _, procs := range []int{1, 2} {
			o := suiteOpts(cell, procs, dur)
			cfg, err := buildWorkload(o)
			if err != nil {
				break
			}
			results, err := runLoadgenPass(o, cfg, cell.depths, procs)
			if err != nil || len(results) == 0 {
				continue
			}
			maxIntoServerDump(dump, results[0])
		}
		viol = serverScalingViolations(*dump, minScale)
	}
	if len(viol) == 0 {
		fmt.Printf("scaling gate: violation(s) did not reproduce on re-measurement\n")
	}
	return viol
}

// maxIntoServerDump raises the recorded ops/sec for the re-measured row's
// cell if the new sample beat it.
func maxIntoServerDump(dump *serverBenchDump, sample serverBenchResult) {
	k := serverCellKey(sample)
	for i := range dump.Results {
		r := &dump.Results[i]
		if serverCellKey(*r) == k && sample.OpsPerSec > r.OpsPerSec {
			r.OpsPerSec = sample.OpsPerSec
		}
	}
}
