package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"pragmaprim/internal/client"
	"pragmaprim/internal/harness"
	"pragmaprim/internal/obs"
	"pragmaprim/internal/proto"
	"pragmaprim/internal/server"
	"pragmaprim/internal/shard"
	"pragmaprim/internal/stats"
	"pragmaprim/internal/template"
	"pragmaprim/internal/workload"
)

// The load generator measures the serving stack across a real socket: it
// drives a server (an external one via -addr, or a self-hosted in-process
// one) with N pipelining connections and reports throughput plus latency
// quantiles from per-worker log-linear histograms (stats.Histogram). Two
// loop disciplines are supported:
//
//   - closed: each connection keeps exactly `depth` requests in flight —
//     send a pipelined batch, collect its replies, repeat. Throughput is
//     whatever the server sustains; latency is reply time minus the
//     batch's flush time.
//   - open: each connection issues requests on a fixed schedule derived
//     from -lgrate regardless of replies (bounded by `depth` in-flight, so
//     a stalled server applies backpressure instead of unbounded memory).
//     Latency is measured from the *scheduled* send time, so queueing
//     delay is charged to the server, not hidden — the
//     coordinated-omission-aware discipline.
//
// One JSON row per (mode, depth) cell is written to -serverout; the
// checked-in BENCH_server.json is this dump for closed-loop depths
// 1/16/128 over the sharded multiset.

// loadgenOpts collects the -lg* flags.
type loadgenOpts struct {
	addr      string
	structure string
	shards    int
	policy    string
	mode      string
	conns     int
	depths    string
	cpus      string
	rate      int
	dist      string
	keys      int
	mix       string
	dur       time.Duration
	out       string
	metrics   string
	quiet     bool // suppress per-pass chatter (the suite runner sets it)
}

// serverBenchResult is one cell of the BENCH_server.json dump. GOMAXPROCS
// is recorded per row — the parallel server lane sweeps it, so a cell is
// keyed by its workload shape AND the proc count it ran under. AllocsPerOp
// is the process-wide allocation count over the measurement window divided
// by acknowledged ops (client and server side together, a small constant of
// warmup allocations amortized in); the -compareserver gate holds it under
// a ceiling.
type serverBenchResult struct {
	Mode       string  `json:"mode"`
	Structure  string  `json:"structure"`
	Shards     int     `json:"shards"`
	Conns      int     `json:"conns"`
	Depth      int     `json:"depth"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	RateTgt    int     `json:"rate_target,omitempty"`
	Dist       string  `json:"dist"`
	Keys       int     `json:"keys"`
	Mix        string  `json:"mix"`
	Ops        int64   `json:"ops"`
	Reconns    int64   `json:"reconnects,omitempty"`
	Seconds    float64 `json:"seconds"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	AllocsOp   float64 `json:"allocs_per_op"`
	P50us      float64 `json:"p50_us"`
	P95us      float64 `json:"p95_us"`
	P99us      float64 `json:"p99_us"`
	MaxUs      float64 `json:"max_us"`
	AckedIns   int64   `json:"acked_inserts"`
	AckedDel   int64   `json:"acked_deletes"`
}

type serverBenchDump struct {
	GoVersion string              `json:"go_version"`
	GOARCH    string              `json:"goarch"`
	NumCPU    int                 `json:"num_cpu"`
	Results   []serverBenchResult `json:"results"`
}

func newServerBenchDump() serverBenchDump {
	return serverBenchDump{
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}
}

// buildWorkload validates the workload-shaped options into a config.
func buildWorkload(o loadgenOpts) (workload.Config, error) {
	mix, err := parseMix(o.mix)
	if err != nil {
		return workload.Config{}, err
	}
	var dist workload.Distribution
	switch o.dist {
	case "uniform":
		dist = workload.Uniform
	case "zipf":
		dist = workload.Zipf
	default:
		return workload.Config{}, fmt.Errorf("loadgen: unknown -lgdist %q (want uniform or zipf)", o.dist)
	}
	cfg := workload.Config{KeyRange: o.keys, Dist: dist, Mix: mix}
	return cfg, cfg.Validate()
}

// selfHostServer builds the container from the same flags cmd/server uses
// and serves it in-process on a random loopback port. o.shards is rounded
// in place so the table header and JSON rows record the topology built.
func selfHostServer(o *loadgenOpts) (*server.Server, string, error) {
	if o.shards > 1 {
		o.shards = shard.NextPow2(o.shards)
	}
	pol, err := template.PolicyByName(o.policy)
	if err != nil {
		return nil, "", err
	}
	cont, err := harness.BuildContainer(o.structure, o.shards, pol)
	if err != nil {
		return nil, "", err
	}
	srv, err := server.Start(cont, server.Config{})
	if err != nil {
		return nil, "", err
	}
	return srv, srv.Addr().String(), nil
}

func runLoadgen(o loadgenOpts) error {
	cfg, err := buildWorkload(o)
	if err != nil {
		return err
	}
	depths, err := parseInts(o.depths)
	if err != nil {
		return fmt.Errorf("loadgen: invalid -lgdepth: %w", err)
	}
	if o.mode != "closed" && o.mode != "open" {
		return fmt.Errorf("loadgen: unknown -lgmode %q (want closed or open)", o.mode)
	}
	if o.mode == "open" && o.rate <= 0 {
		return fmt.Errorf("loadgen: open loop needs -lgrate > 0")
	}
	// The GOMAXPROCS sweep: 0 means "leave the setting alone", the single-
	// pass default. Sweeping only makes sense self-hosted — server and
	// clients share the process, so one setting governs the whole stack.
	cpus := []int{0}
	if o.cpus != "" {
		if cpus, err = parseInts(o.cpus); err != nil {
			return fmt.Errorf("loadgen: invalid -lgcpus: %w", err)
		}
		if o.addr != "" {
			return fmt.Errorf("loadgen: -lgcpus sweeps GOMAXPROCS of a self-hosted server; drop -addr")
		}
	}

	dump := newServerBenchDump()
	tb := stats.NewTable(fmt.Sprintf("loadgen: %s loop, %d conns, %s keys=%d mix=%s",
		o.mode, o.conns, o.dist, o.keys, cfg.Mix),
		"procs", "depth", "ops", "ops/sec", "allocs/op", "p50 µs", "p95 µs", "p99 µs", "max µs")
	for _, procs := range cpus {
		results, err := runLoadgenPass(o, cfg, depths, procs)
		if err != nil {
			return err
		}
		for _, res := range results {
			dump.Results = append(dump.Results, res)
			tb.AddRow(res.GOMAXPROCS, res.Depth, res.Ops, res.OpsPerSec,
				fmt.Sprintf("%.3f", res.AllocsOp), res.P50us, res.P95us, res.P99us, res.MaxUs)
		}
	}
	tb.WriteTo(os.Stdout)

	if o.metrics != "" {
		if err := scrapeMetrics(o.metrics); err != nil {
			return err
		}
		var last *serverBenchResult
		if len(dump.Results) > 0 {
			last = &dump.Results[len(dump.Results)-1]
		}
		if err := scrapePromMetrics(o.metrics, last); err != nil {
			return err
		}
	}
	if o.out != "" {
		out, err := json.MarshalIndent(dump, "", "  ")
		if err != nil {
			return err
		}
		out = append(out, '\n')
		if err := os.WriteFile(o.out, out, 0o644); err != nil {
			return err
		}
		fmt.Printf("loadgen: wrote %s\n", o.out)
	}
	return nil
}

// runLoadgenPass measures every depth cell once at the given GOMAXPROCS
// value (0 leaves the setting alone; the previous value is restored before
// returning). Self-hosted mode starts a fresh server for the pass — each
// proc count measures a server whose goroutines were born under it — and
// prefills half the key range so GETs hit about half the time, the same
// methodology as the harness throughput runs. The first dial is retried
// briefly so `make server-smoke` can race the server's startup.
func runLoadgenPass(o loadgenOpts, cfg workload.Config, depths []int, procs int) ([]serverBenchResult, error) {
	if procs > 0 {
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
	}
	addr := o.addr
	var srv *server.Server
	if addr == "" {
		var err error
		if srv, addr, err = selfHostServer(&o); err != nil {
			return nil, err
		}
		if !o.quiet {
			fmt.Printf("loadgen: self-hosted %s (%d shard(s)) on %s at GOMAXPROCS=%d\n",
				o.structure, o.shards, addr, runtime.GOMAXPROCS(0))
		}
	}
	pre, err := dialRetry(addr, time.Second)
	if err != nil {
		return nil, err
	}
	if err := prefill(pre, o.keys); err != nil {
		pre.Close()
		return nil, fmt.Errorf("loadgen: prefill: %w", err)
	}
	pre.Close()

	var results []serverBenchResult
	for _, depth := range depths {
		if depth < 1 || depth > maxDepth {
			return nil, fmt.Errorf("loadgen: depth %d out of range [1, %d] (beyond it a closed-loop batch deadlocks against TCP flow control: the whole batch is written before any reply is read)", depth, maxDepth)
		}
		res, err := runCell(addr, cfg, o, depth)
		if err != nil {
			return nil, err
		}
		res.Structure, res.Shards = o.structure, o.shards
		if o.addr != "" {
			res.Structure, res.Shards = "external", 0
		}
		results = append(results, res)
	}
	if srv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return nil, fmt.Errorf("loadgen: server shutdown: %w", err)
		}
		if !o.quiet {
			fmt.Printf("loadgen: server drained cleanly, final size %d\n", srv.Size())
		}
	}
	return results, nil
}

// runCell measures one (mode, depth) configuration.
func runCell(addr string, cfg workload.Config, o loadgenOpts, depth int) (serverBenchResult, error) {
	res := serverBenchResult{
		Mode: o.mode, Conns: o.conns, Depth: depth,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Dist:       string(cfg.Dist), Keys: cfg.KeyRange, Mix: cfg.Mix.String(),
	}
	if o.mode == "open" {
		res.RateTgt = o.rate
	}

	type workerOut struct {
		ops, ins, del, reconns int64
		hist                   stats.Histogram
		err                    error
	}
	outs := make([]workerOut, o.conns)
	var wg sync.WaitGroup
	// Process-wide allocation accounting around the measurement window: for
	// a self-hosted run this covers the whole serving stack (client encode,
	// server decode→apply→reply, WAL batching). Worker startup allocates a
	// bounded constant (goroutines, connections, histograms), so the per-op
	// quotient converges to the steady-state rate over any realistic window
	// and the -compareserver ceiling catches a hot path that starts
	// allocating.
	var msBefore runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	start := time.Now()
	deadline := start.Add(o.dur)
	for w := 0; w < o.conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			out := &outs[w]
			// Workers outlive the connection: a broken one (server restart,
			// drain) is redialed with backoff and the loop resumes, so the
			// load generator can drive a server through a crash/recovery
			// cycle. Replies lost with the connection are simply not counted
			// — ops/ins/del stay exact counts of acknowledgements.
			rd := client.Redialer{Addr: addr, Opts: client.Options{DialTimeout: 2 * time.Second}}
			cl, err := rd.Dial()
			if err != nil {
				out.err = err
				return
			}
			defer func() { cl.Close() }()
			count := func(op proto.Op, applied bool) {
				out.ops++
				if !applied {
					return
				}
				switch op {
				case proto.OpSet:
					out.ins++
				case proto.OpDel:
					out.del++
				}
			}
			for {
				cl.Conn().SetReadDeadline(deadline.Add(30 * time.Second))
				if o.mode == "closed" {
					err = closedLoop(cl, cfg, depth, int64(w), deadline, count, &out.hist)
				} else {
					perConn := float64(o.rate) / float64(o.conns)
					err = openLoop(cl, cfg, depth, int64(w), perConn, deadline, count, &out.hist)
				}
				if err == nil || !time.Now().Before(deadline) {
					out.err = err
					return
				}
				cl.Close()
				if cl, err = rd.Dial(); err != nil {
					out.err = err
					return
				}
				out.reconns++
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	var msAfter runtime.MemStats
	runtime.ReadMemStats(&msAfter)

	var hist stats.Histogram
	for i := range outs {
		if outs[i].err != nil {
			return res, fmt.Errorf("loadgen: conn %d: %w", i, outs[i].err)
		}
		res.Ops += outs[i].ops
		res.AckedIns += outs[i].ins
		res.AckedDel += outs[i].del
		res.Reconns += outs[i].reconns
		hist.Merge(&outs[i].hist)
	}
	if res.Reconns > 0 {
		fmt.Printf("loadgen: depth %d: rode through %d reconnects\n", depth, res.Reconns)
	}
	res.Seconds = elapsed.Seconds()
	res.OpsPerSec = stats.Throughput(res.Ops, res.Seconds)
	if res.Ops > 0 {
		res.AllocsOp = float64(msAfter.Mallocs-msBefore.Mallocs) / float64(res.Ops)
	}
	res.P50us = float64(hist.Quantile(50)) / 1e3
	res.P95us = float64(hist.Quantile(95)) / 1e3
	res.P99us = float64(hist.Quantile(99)) / 1e3
	res.MaxUs = float64(hist.Max()) / 1e3
	return res, nil
}

// closedLoop keeps exactly depth requests in flight: send a batch, flush,
// collect its replies, repeat until the deadline.
func closedLoop(cl *client.Client, cfg workload.Config, depth int, seed int64,
	deadline time.Time, count func(proto.Op, bool), hist *stats.Histogram) error {
	keys := cfg.NewKeyGen(seed*2 + 1)
	ops := cfg.NewOpGen(seed*2 + 2)
	kinds := make([]proto.Op, depth)
	for time.Now().Before(deadline) {
		for i := 0; i < depth; i++ {
			op := opFor(ops.Next())
			if err := cl.Send(proto.Request{Op: op, Key: int64(keys.Next())}); err != nil {
				return err
			}
			kinds[i] = op
		}
		if err := cl.Flush(); err != nil {
			return err
		}
		t0 := time.Now()
		for i := 0; i < depth; i++ {
			rep, err := cl.Recv()
			if err != nil {
				return err
			}
			hist.Record(time.Since(t0).Nanoseconds())
			count(kinds[i], rep.Status == proto.StatusTrue)
		}
	}
	return nil
}

// openLoop issues requests on a fixed schedule of ratePerConn ops/sec,
// regardless of replies, with at most maxInflight outstanding. Latency is
// charged from the scheduled send time.
func openLoop(cl *client.Client, cfg workload.Config, maxInflight int, seed int64,
	ratePerConn float64, deadline time.Time, count func(proto.Op, bool), hist *stats.Histogram) error {
	if ratePerConn <= 0 {
		return fmt.Errorf("non-positive per-connection rate")
	}
	interval := time.Duration(float64(time.Second) / ratePerConn)
	keys := cfg.NewKeyGen(seed*2 + 1)
	ops := cfg.NewOpGen(seed*2 + 2)

	type slot struct {
		sched time.Time
		op    proto.Op
	}
	inflight := make([]slot, 0, maxInflight)
	pop := func(rep proto.Reply) {
		s := inflight[0]
		inflight = inflight[:copy(inflight, inflight[1:])]
		hist.Record(time.Since(s.sched).Nanoseconds())
		count(s.op, rep.Status == proto.StatusTrue)
	}
	farDeadline := deadline.Add(30 * time.Second)
	next := time.Now()
	for {
		if !time.Now().Before(deadline) {
			break
		}
		// Spend the idle window until the next scheduled send draining
		// replies (a read deadline at `next` turns "wait for a reply" into
		// "wait at most until the schedule calls"), so reply latency is
		// measured when the reply arrives, not when the window fills.
		for len(inflight) > 0 && time.Now().Before(next) {
			cl.Conn().SetReadDeadline(next)
			rep, err := cl.Recv()
			if err != nil {
				if isTimeout(err) {
					break
				}
				return err
			}
			pop(rep)
		}
		cl.Conn().SetReadDeadline(farDeadline)
		if now := time.Now(); now.Before(next) {
			time.Sleep(next.Sub(now))
		}
		// In-flight cap: the open loop's backpressure. Block for one reply
		// before sending the next request when the window is full.
		if len(inflight) == maxInflight {
			rep, err := cl.Recv()
			if err != nil {
				return err
			}
			pop(rep)
		}
		op := opFor(ops.Next())
		if err := cl.Send(proto.Request{Op: op, Key: int64(keys.Next())}); err != nil {
			return err
		}
		if err := cl.Flush(); err != nil {
			return err
		}
		inflight = append(inflight, slot{sched: next, op: op})
		next = next.Add(interval)
	}
	for len(inflight) > 0 {
		rep, err := cl.Recv()
		if err != nil {
			return err
		}
		pop(rep)
	}
	return nil
}

// isTimeout reports whether err is a read-deadline expiry.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

func opFor(k workload.OpKind) proto.Op {
	switch k {
	case workload.OpGet:
		return proto.OpGet
	case workload.OpInsert:
		return proto.OpSet
	default:
		return proto.OpDel
	}
}

// maxDepth caps a pipeline depth / in-flight window. The closed loop
// writes a whole batch before reading any reply, so batch bytes must stay
// well under the socket-buffer capacity both directions; 1<<15 requests is
// ~416KB out and ~160KB back, far below it, while still deep enough to
// saturate any server.
const maxDepth = 1 << 15

// prefill inserts half the key range in pipelined batches.
func prefill(cl *client.Client, keys int) error {
	const batch = 512
	pending := 0
	drain := func() error {
		if err := cl.Flush(); err != nil {
			return err
		}
		for ; pending > 0; pending-- {
			if _, err := cl.Recv(); err != nil {
				return err
			}
		}
		return nil
	}
	for k := 0; k < keys; k += 2 {
		if err := cl.Send(proto.Request{Op: proto.OpSet, Key: int64(k)}); err != nil {
			return err
		}
		if pending++; pending == batch {
			if err := drain(); err != nil {
				return err
			}
		}
	}
	return drain()
}

// dialRetry dials with retries over the given budget, for racing a server
// that is still binding its listener.
func dialRetry(addr string, budget time.Duration) (*client.Client, error) {
	deadline := time.Now().Add(budget)
	for {
		cl, err := client.Dial(addr)
		if err == nil {
			return cl, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("loadgen: dial %s: %w", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// scrapePromMetrics fetches the server's Prometheus exposition, parses it
// with the in-repo parser, and prints the server-side op latency quantiles
// next to the client-side ones from the last measured cell. The two views
// bracket the stack: the server interval runs batch-decode → reply-flush,
// the client interval adds the socket both ways, so client ≥ server at every
// quantile and the gap is the wire.
func scrapePromMetrics(url string, last *serverBenchResult) error {
	promURL := url + "?format=prom"
	resp, err := http.Get(promURL)
	if err != nil {
		return fmt.Errorf("loadgen: scrape %s: %w", promURL, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("loadgen: scrape %s: HTTP %d", promURL, resp.StatusCode)
	}
	fams, err := obs.ParseProm(resp.Body)
	if err != nil {
		return fmt.Errorf("loadgen: scrape %s: %w", promURL, err)
	}
	fmt.Printf("loadgen: prom scrape OK: %d families from %s\n", len(fams), promURL)

	f := fams["kv_op_latency_ns"]
	if f == nil {
		return fmt.Errorf("loadgen: scrape %s: no kv_op_latency_ns family", promURL)
	}
	tb := stats.NewTable("server-side vs client-side latency (µs)",
		"series", "count", "p50", "p99", "max")
	for _, op := range []string{"GET", "SET", "DEL"} {
		h, err := f.Hist(map[string]string{"op": op})
		if err != nil || h.Count() == 0 {
			continue
		}
		tb.AddRow("server "+op, h.Count(),
			float64(h.Quantile(50))/1e3, float64(h.Quantile(99))/1e3, float64(h.Max())/1e3)
	}
	if last != nil {
		tb.AddRow(fmt.Sprintf("client all (depth %d)", last.Depth), last.Ops,
			last.P50us, last.P99us, last.MaxUs)
	}
	tb.WriteTo(os.Stdout)
	return nil
}

// scrapeMetrics fetches and prints the server's HTTP metrics dump.
func scrapeMetrics(url string) error {
	resp, err := http.Get(url)
	if err != nil {
		return fmt.Errorf("loadgen: scrape %s: %w", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("loadgen: scrape %s: %w", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("loadgen: scrape %s: HTTP %d", url, resp.StatusCode)
	}
	fmt.Printf("loadgen: metrics from %s:\n%s", url, body)
	return nil
}

func parseMix(s string) (workload.Mix, error) {
	parts := strings.Split(s, "/")
	if len(parts) != 3 {
		return workload.Mix{}, fmt.Errorf("loadgen: mix %q: want GET/INSERT/DELETE percentages like 50/25/25", s)
	}
	var pct [3]int
	for i, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return workload.Mix{}, fmt.Errorf("loadgen: mix %q: %w", s, err)
		}
		pct[i] = n
	}
	m := workload.Mix{GetPct: pct[0], InsertPct: pct[1], DeletePct: pct[2]}
	return m, m.Validate()
}
