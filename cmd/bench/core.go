package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"pragmaprim/internal/benchcore"
)

// The core microbenchmark suite measures the LLX/SCX fast path — latency and
// allocations per operation — and dumps the results as machine-readable JSON
// (BENCH_core.json at the repository root is the checked-in trajectory). The
// benchmark bodies live in internal/benchcore, shared with bench_test.go, so
// the dump and `go test -bench` always measure the same workloads.

// coreBenchResult is one row of the JSON dump.
type coreBenchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// coreBenchDump is the whole JSON document.
type coreBenchDump struct {
	GoVersion  string            `json:"go_version"`
	GOARCH     string            `json:"goarch"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	Results    []coreBenchResult `json:"results"`
}

type coreBench struct {
	name     string
	parallel bool // meaningless at GOMAXPROCS=1; skipped there
	fn       func(b *testing.B)
}

func coreBenchmarks() []coreBench {
	benches := []coreBench{
		{"llx_into", false, benchcore.LLXInto},
		{"llx_alloc", false, benchcore.LLXAlloc},
		{"field_read", false, benchcore.FieldRead},
		{"disjoint_scx_parallel", true, benchcore.DisjointSCX},
	}
	for k := 1; k <= 4; k++ {
		k := k
		benches = append(benches, coreBench{
			fmt.Sprintf("scx_cycle_k%d", k),
			false,
			func(b *testing.B) { benchcore.SCXCycle(b, k) },
		})
	}
	benches = append(benches,
		coreBench{"kcss_k2", false, func(b *testing.B) { benchcore.KCSSCycle(b, 2) }},
		coreBench{"mwcas_k2", false, func(b *testing.B) { benchcore.MWCASCycle(b, 2) }},
	)
	benches = append(benches,
		coreBench{"scx_cycle_recycled", false, benchcore.SCXCycleRecycled},
		coreBench{"template_scx_cycle", false, benchcore.TemplateSCXCycle},
		coreBench{"handle_roundtrip", false, benchcore.HandleRoundtrip},
		coreBench{"reclaim_retire", false, benchcore.ReclaimRetire},
	)
	benches = append(benches,
		coreBench{"multiset_get", false, benchcore.MultisetGet},
		coreBench{"multiset_insert_existing", false, benchcore.MultisetInsertExisting},
		coreBench{"multiset_insert_delete_new", false, benchcore.MultisetInsertDeleteNew},
	)
	benches = append(benches,
		coreBench{"sharded_multiset_get", false, benchcore.ShardedMultisetGet},
		coreBench{"sharded_multiset_insert_existing", false, benchcore.ShardedMultisetInsertExisting},
		coreBench{"sharded_multiset_insert_delete_new", false, benchcore.ShardedMultisetInsertDeleteNew},
	)
	benches = append(benches,
		coreBench{"hashmap_get", false, benchcore.HashmapGet},
		coreBench{"hashmap_insert_existing", false, benchcore.HashmapInsertExisting},
		coreBench{"hashmap_put", false, benchcore.HashmapInsertDeleteNew},
		coreBench{"hashmap_get_1e6", false,
			func(b *testing.B) { benchcore.HashmapGetKeyspace(b, 1_000_000) }},
		// The built-in-map control at the same keyspace: the cache-hierarchy
		// floor any O(1) map pays at 1e6 random keys on this host. Read
		// hashmap_get_1e6 against this row, not against hashmap_get.
		coreBench{"builtin_map_get_1e6", false,
			func(b *testing.B) { benchcore.BuiltinMapGetKeyspace(b, 1_000_000) }},
	)
	benches = append(benches,
		coreBench{"wal_append", false, benchcore.WALAppend},
		coreBench{"wal_group_commit", false, benchcore.WALGroupCommit},
		coreBench{"wal_append_batch", false, benchcore.WALAppendBatch},
	)
	return benches
}

// collectCoreBench runs the suite, printing a human-readable table.
func collectCoreBench() (coreBenchDump, error) {
	dump := coreBenchDump{
		GoVersion:  runtime.Version(),
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	fmt.Printf("%-36s %12s %12s %10s\n", "benchmark", "ns/op", "allocs/op", "B/op")
	for _, cb := range coreBenchmarks() {
		if cb.parallel && dump.GOMAXPROCS == 1 {
			// A "parallel" row measured serially would be misleading in the
			// checked-in trajectory; leave it out rather than mislabel it.
			fmt.Printf("%-36s skipped: GOMAXPROCS=1 makes a parallel benchmark serial\n", cb.name)
			continue
		}
		r := testing.Benchmark(cb.fn)
		if r.N == 0 {
			return dump, fmt.Errorf("benchmark %s failed (b.Fatal/b.Fail inside the body)", cb.name)
		}
		res := coreBenchResult{
			Name:        cb.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		dump.Results = append(dump.Results, res)
		fmt.Printf("%-36s %12.1f %12d %10d\n",
			res.Name, res.NsPerOp, res.AllocsPerOp, res.BytesPerOp)
	}
	return dump, nil
}

// runCoreBench runs the suite and writes the JSON dump to path.
func runCoreBench(path string) error {
	dump, err := collectCoreBench()
	if err != nil {
		return err
	}
	return writeDump(dump, path)
}

func writeDump(dump coreBenchDump, path string) error {
	out, err := json.MarshalIndent(dump, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	return os.WriteFile(path, out, 0o644)
}

// loadDump reads a prior -corejson file.
func loadDump(path string) (coreBenchDump, error) {
	var dump coreBenchDump
	data, err := os.ReadFile(path)
	if err != nil {
		return dump, err
	}
	if err := json.Unmarshal(data, &dump); err != nil {
		return dump, fmt.Errorf("%s: %w", path, err)
	}
	return dump, nil
}

// runCompareBench runs the suite and prints a benchstat-style delta table
// against the baseline file. When maxAllocRegress is set it returns an
// error if any row tracked by both runs regressed in allocs/op — timings
// are noisy on shared runners, allocation counts are not, so the CI gate
// compares only allocations. When outPath is non-empty the fresh results
// are also written there.
func runCompareBench(baselinePath, outPath string, maxAllocRegress bool) error {
	base, err := loadDump(baselinePath)
	if err != nil {
		return err
	}
	baseRows := make(map[string]coreBenchResult, len(base.Results))
	for _, r := range base.Results {
		baseRows[r.Name] = r
	}
	dump, err := collectCoreBench()
	if err != nil {
		return err
	}
	if outPath != "" {
		if err := writeDump(dump, outPath); err != nil {
			return err
		}
	}

	fmt.Printf("\ncompare vs %s\n", baselinePath)
	fmt.Printf("%-36s %12s %12s %8s %10s %10s %8s\n",
		"benchmark", "old ns/op", "new ns/op", "delta", "old allocs", "new allocs", "Δallocs")
	var regressed []string
	for _, r := range dump.Results {
		old, ok := baseRows[r.Name]
		if !ok {
			fmt.Printf("%-36s %12s %12.1f %8s %10s %10d %8s\n",
				r.Name, "-", r.NsPerOp, "new", "-", r.AllocsPerOp, "-")
			continue
		}
		delta := "~"
		if old.NsPerOp > 0 {
			pct := (r.NsPerOp - old.NsPerOp) / old.NsPerOp * 100
			if pct <= -2 || pct >= 2 {
				delta = fmt.Sprintf("%+.1f%%", pct)
			}
		}
		dAllocs := r.AllocsPerOp - old.AllocsPerOp
		fmt.Printf("%-36s %12.1f %12.1f %8s %10d %10d %+8d\n",
			r.Name, old.NsPerOp, r.NsPerOp, delta, old.AllocsPerOp, r.AllocsPerOp, dAllocs)
		if dAllocs > 0 {
			regressed = append(regressed, fmt.Sprintf("%s (%d -> %d allocs/op)",
				r.Name, old.AllocsPerOp, r.AllocsPerOp))
		}
	}
	for _, r := range base.Results {
		found := false
		for _, n := range dump.Results {
			if n.Name == r.Name {
				found = true
				break
			}
		}
		if !found {
			fmt.Printf("%-36s %12.1f %12s  (row no longer measured)\n", r.Name, r.NsPerOp, "-")
		}
	}
	if maxAllocRegress && len(regressed) > 0 {
		return fmt.Errorf("allocs/op regressed on %d row(s): %v", len(regressed), regressed)
	}
	return nil
}
