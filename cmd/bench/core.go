package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"pragmaprim/internal/benchcore"
)

// The core microbenchmark suite measures the LLX/SCX fast path — latency and
// allocations per operation — and dumps the results as machine-readable JSON
// (BENCH_core.json at the repository root is the checked-in trajectory). The
// benchmark bodies live in internal/benchcore, shared with bench_test.go, so
// the dump and `go test -bench` always measure the same workloads.

// coreBenchResult is one row of the JSON dump.
type coreBenchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// coreBenchDump is the whole JSON document.
type coreBenchDump struct {
	GoVersion  string            `json:"go_version"`
	GOARCH     string            `json:"goarch"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	Results    []coreBenchResult `json:"results"`
}

type coreBench struct {
	name     string
	parallel bool // meaningless at GOMAXPROCS=1; skipped there
	fn       func(b *testing.B)
}

func coreBenchmarks() []coreBench {
	benches := []coreBench{
		{"llx_into", false, benchcore.LLXInto},
		{"llx_alloc", false, benchcore.LLXAlloc},
		{"field_read", false, benchcore.FieldRead},
		{"disjoint_scx_parallel", true, benchcore.DisjointSCX},
	}
	for k := 1; k <= 4; k++ {
		k := k
		benches = append(benches, coreBench{
			fmt.Sprintf("scx_cycle_k%d", k),
			false,
			func(b *testing.B) { benchcore.SCXCycle(b, k) },
		})
	}
	benches = append(benches,
		coreBench{"kcss_k2", false, func(b *testing.B) { benchcore.KCSSCycle(b, 2) }},
		coreBench{"mwcas_k2", false, func(b *testing.B) { benchcore.MWCASCycle(b, 2) }},
	)
	benches = append(benches,
		coreBench{"template_scx_cycle", false, benchcore.TemplateSCXCycle},
		coreBench{"handle_roundtrip", false, benchcore.HandleRoundtrip},
	)
	benches = append(benches,
		coreBench{"multiset_get", false, benchcore.MultisetGet},
		coreBench{"multiset_insert_existing", false, benchcore.MultisetInsertExisting},
		coreBench{"multiset_insert_delete_new", false, benchcore.MultisetInsertDeleteNew},
	)
	benches = append(benches,
		coreBench{"sharded_multiset_get", false, benchcore.ShardedMultisetGet},
		coreBench{"sharded_multiset_insert_existing", false, benchcore.ShardedMultisetInsertExisting},
		coreBench{"sharded_multiset_insert_delete_new", false, benchcore.ShardedMultisetInsertDeleteNew},
	)
	return benches
}

// runCoreBench runs the suite, prints a human-readable table to stdout, and
// writes the JSON dump to path.
func runCoreBench(path string) error {
	dump := coreBenchDump{
		GoVersion:  runtime.Version(),
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	fmt.Printf("%-36s %12s %12s %10s\n", "benchmark", "ns/op", "allocs/op", "B/op")
	for _, cb := range coreBenchmarks() {
		if cb.parallel && dump.GOMAXPROCS == 1 {
			// A "parallel" row measured serially would be misleading in the
			// checked-in trajectory; leave it out rather than mislabel it.
			fmt.Printf("%-36s skipped: GOMAXPROCS=1 makes a parallel benchmark serial\n", cb.name)
			continue
		}
		r := testing.Benchmark(cb.fn)
		if r.N == 0 {
			return fmt.Errorf("benchmark %s failed (b.Fatal/b.Fail inside the body)", cb.name)
		}
		res := coreBenchResult{
			Name:        cb.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		dump.Results = append(dump.Results, res)
		fmt.Printf("%-36s %12.1f %12d %10d\n",
			res.Name, res.NsPerOp, res.AllocsPerOp, res.BytesPerOp)
	}
	out, err := json.MarshalIndent(dump, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	return os.WriteFile(path, out, 0o644)
}
