// Command bench regenerates the experiment tables: the paper-claim versus
// measured rows for experiments E1-E8, the shard-scaling experiments E9-E10,
// and the core fast-path microbenchmark dump (BENCH_core.json; see
// DESIGN.md).
//
// Usage:
//
//	bench [-exp e1,e2,...|all] [-threads 1,2,4,8] [-shards 1,2,4,8] [-dur 500ms] [-rounds 50]
//	bench -corejson BENCH_core.json
//	bench -compare old.json [-corejson new.json] [-maxallocregress]
//	bench -parallel [-paralleljson BENCH_parallel.json] [-parallelcpus 1,2,4]
//	bench -compareparallel old.json [-parallelcpus 1,2,4] [-paralleljson new.json] [-maxscale 1.3]
//	bench -loadgen [-addr host:port] [-lgmode closed|open] [-lgdepth 1,16,128]
//	      [-lgconns 4] [-lgcpus 1,2,4] [-lgdist uniform|zipf] [-lgkeys 1024]
//	      [-lgmix 50/25/25] [-lgdur 2s] [-lgrate 50000] [-lgstructure llx-multiset]
//	      [-lgshards 4] [-lgpolicy ...] [-lgmetrics http://host:port/metrics]
//	      [-serverout BENCH_server.json]
//	bench -serverbench [-servercpus 1,2,4] [-lgdur 2s] [-serverout BENCH_server.json]
//	bench -compareserver old.json [-servercpus 1,2] [-lgdur 2s]
//	      [-minserverscale 0.77] [-serverallocmax 0.5]
//
// -compare re-runs the core suite and prints a benchstat-style delta table
// against a prior -corejson dump; with -maxallocregress the command exits
// non-zero if any shared row's allocs/op regressed (the CI gate: timings
// are noisy on shared runners, allocation counts are not).
//
// -parallel runs the multi-core comparison lane (the hash map versus
// sync.Map, an RWMutex map and the sharded multiset, at pure-read/90/50
// read mixes plus a Zipf-skewed lane) once per -parallelcpus GOMAXPROCS
// value; BENCH_parallel.json is the checked-in trajectory. -compareparallel
// prints a per-cell delta table against a prior dump and exits non-zero
// when allocs/op regresses on any shared cell or a parallel_hashmap_* row
// scales worse than -maxscale from GOMAXPROCS=1 to 2 — the two checks that
// stay meaningful on arbitrary hosts, where absolute ns/op does not.
//
// -cpuprofile/-memprofile/-mutexprofile/-blockprofile write pprof profiles
// of whatever lane the invocation runs, e.g.
// `bench -parallel -parallelcpus 2 -cpuprofile cpu.out` profiles the
// parallel suite, and `bench -loadgen -lgcpus 2 -cpuprofile cpu.out`
// profiles the whole self-hosted serving stack — server goroutines and load
// generator together, since they share the process; `go tool pprof cpu.out`
// reads the result.
//
// -loadgen drives a KV server (internal/server) across a real socket: an
// external one at -addr, or — when -addr is empty — a self-hosted
// in-process server built from -lgstructure/-lgshards/-lgpolicy, optionally
// swept over -lgcpus GOMAXPROCS values (fresh server per value). One
// throughput+latency row per (GOMAXPROCS, depth) cell is printed and, with
// -serverout, dumped as JSON; see cmd/bench/loadgen.go for the loop
// disciplines.
//
// -serverbench runs the canonical self-hosted suite (read-heavy, mixed and
// Zipf workloads over the hashmap and the sharded multiset) once per
// -servercpus GOMAXPROCS value; BENCH_server.json is the checked-in
// trajectory. -compareserver prints a per-cell delta table against a prior
// dump and exits non-zero when any cell's process-wide allocs/op exceeds
// -serverallocmax or the read-heavy hashmap cell's ops/sec scales worse
// than -minserverscale from GOMAXPROCS=1 to 2 (within-run ratio, re-measured
// max-of-N before failing) — the two checks that stay meaningful on
// arbitrary hosts, where absolute throughput does not.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"pragmaprim/internal/harness"
	"pragmaprim/internal/shard"
	"pragmaprim/internal/stats"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		exps     = flag.String("exp", "all", "comma-separated experiments to run (e1..e10, or all)")
		threads  = flag.String("threads", "1,2,4,8", "thread counts for the E8 sweep")
		shards   = flag.String("shards", "1,2,4,8", "shard counts for the E9/E10 sweeps (non-powers of two round up)")
		dur      = flag.Duration("dur", 300*time.Millisecond, "measurement duration per E8-E10 cell")
		rounds   = flag.Int("rounds", 50, "history rounds for E7")
		corejson = flag.String("corejson", "", "run the core fast-path microbenchmarks and write JSON results to this path (e.g. BENCH_core.json), then exit")
		compare  = flag.String("compare", "", "run the core microbenchmarks and print a before/after delta table against this prior -corejson file, then exit")
		maxAR    = flag.Bool("maxallocregress", false, "with -compare: exit non-zero when any shared row's allocs/op regressed")

		parallel   = flag.Bool("parallel", false, "run the multi-core parallel comparison lane, then exit")
		parJSON    = flag.String("paralleljson", "", "with -parallel/-compareparallel: write the JSON dump to this path (e.g. BENCH_parallel.json)")
		parCPUs    = flag.String("parallelcpus", "1,2,4", "GOMAXPROCS values for the parallel lane, comma-separated")
		parCompare = flag.String("compareparallel", "", "run the parallel lane, print a delta table against this prior -paralleljson file and enforce the alloc+scaling gates, then exit")
		maxScale   = flag.Float64("maxscale", 1.3, "with -compareparallel: fail when a parallel_hashmap_* row's ns/op at GOMAXPROCS=2 exceeds this multiple of its GOMAXPROCS=1 value (<=0 disables)")

		srvBench   = flag.Bool("serverbench", false, "run the canonical self-hosted server suite across -servercpus, then exit")
		srvCompare = flag.String("compareserver", "", "run the server suite, print a delta table against this prior -serverout file and enforce the alloc+scaling gates, then exit")
		srvCPUs    = flag.String("servercpus", "1,2,4", "GOMAXPROCS values for -serverbench/-compareserver, comma-separated")
		minSrvScl  = flag.Float64("minserverscale", 0.77, "with -compareserver: fail when the hashmap read-heavy d128 cell's ops/sec at GOMAXPROCS=2 falls below this multiple of its GOMAXPROCS=1 value (<=0 disables)")
		srvAlloc   = flag.Float64("serverallocmax", 0.5, "with -compareserver: fail when any cell's process-wide allocs/op exceeds this ceiling (<0 disables)")

		cpuProfile   = flag.String("cpuprofile", "", "write a CPU profile of the selected lane to this path")
		memProfile   = flag.String("memprofile", "", "write a heap profile (after runtime.GC) to this path on exit")
		mutexProfile = flag.String("mutexprofile", "", "write a mutex-contention profile to this path on exit (sets mutex profiling fraction to 1)")
		blockProfile = flag.String("blockprofile", "", "write a blocking profile to this path on exit (sets block profiling rate to 1)")

		loadgen = flag.Bool("loadgen", false, "run the server load generator instead of the experiments, then exit")
		lg      loadgenOpts
	)
	flag.StringVar(&lg.addr, "addr", "", "loadgen: server address; empty self-hosts an in-process server")
	flag.StringVar(&lg.structure, "lgstructure", "llx-multiset", "loadgen: structure for the self-hosted server")
	flag.IntVar(&lg.shards, "lgshards", 4, "loadgen: shard count for the self-hosted server")
	flag.StringVar(&lg.policy, "lgpolicy", "", "loadgen: retry policy for the self-hosted server (see cmd/server -policy)")
	flag.StringVar(&lg.mode, "lgmode", "closed", "loadgen: loop discipline, closed or open")
	flag.IntVar(&lg.conns, "lgconns", 4, "loadgen: client connections")
	flag.StringVar(&lg.depths, "lgdepth", "1,16,128", "loadgen: pipeline depths (closed) / in-flight caps (open), comma-separated")
	flag.IntVar(&lg.rate, "lgrate", 50000, "loadgen: open-loop target rate, total ops/sec across connections")
	flag.StringVar(&lg.dist, "lgdist", "uniform", "loadgen: key distribution, uniform or zipf")
	flag.IntVar(&lg.keys, "lgkeys", 1024, "loadgen: key range")
	flag.StringVar(&lg.mix, "lgmix", "50/25/25", "loadgen: GET/INSERT/DELETE percentages")
	flag.StringVar(&lg.cpus, "lgcpus", "", "loadgen: sweep these GOMAXPROCS values (self-hosted only; empty leaves the setting alone)")
	flag.DurationVar(&lg.dur, "lgdur", 2*time.Second, "loadgen: measurement duration per depth cell")
	flag.StringVar(&lg.out, "serverout", "", "loadgen: write the JSON dump to this path (e.g. BENCH_server.json)")
	flag.StringVar(&lg.metrics, "lgmetrics", "", "loadgen: scrape and print this HTTP metrics URL after the run")
	flag.Parse()

	stopProfiles, err := startProfiles(*cpuProfile, *memProfile, *mutexProfile, *blockProfile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		return 1
	}
	// run() is the real main (main wraps it in os.Exit, which would skip
	// deferred writes), so the profile flush is deferred here.
	defer stopProfiles()

	if *loadgen {
		if err := runLoadgen(lg); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			return 1
		}
		return 0
	}

	if *srvBench || *srvCompare != "" {
		cpus, err := parseInts(*srvCPUs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: invalid -servercpus: %v\n", err)
			return 2
		}
		if *srvCompare != "" {
			err = runCompareServer(*srvCompare, cpus, lg.out, *minSrvScl, *srvAlloc, lg.dur)
		} else {
			err = runServerBench(cpus, lg.dur, lg.out)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			return 1
		}
		return 0
	}

	if *parallel || *parCompare != "" {
		cpus, err := parseInts(*parCPUs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: invalid -parallelcpus: %v\n", err)
			return 2
		}
		if *parCompare != "" {
			err = runCompareParallel(*parCompare, cpus, *parJSON, *maxScale)
		} else {
			err = runParallelBench(cpus, *parJSON)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			return 1
		}
		return 0
	}

	if *compare != "" {
		if err := runCompareBench(*compare, *corejson, *maxAR); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			return 1
		}
		return 0
	}
	if *maxAR {
		fmt.Fprintln(os.Stderr, "bench: -maxallocregress requires -compare")
		return 2
	}

	if *corejson != "" {
		if err := runCoreBench(*corejson); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			return 1
		}
		return 0
	}

	ths, err := parseInts(*threads)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: invalid -threads: %v\n", err)
		return 2
	}
	shs, err := parseInts(*shards)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: invalid -shards: %v\n", err)
		return 2
	}
	// Round shard counts up to powers of two and drop the duplicates the
	// rounding can create, so E9/E10 never measure one configuration twice.
	seen := map[int]bool{}
	rounded := shs[:0]
	for _, n := range shs {
		n = shard.NextPow2(n)
		if !seen[n] {
			seen[n] = true
			rounded = append(rounded, n)
		}
	}
	shs = rounded
	// E9/E10 contend workers against each other; use the widest E8 thread
	// count so sharding has contention to relieve.
	shardThreads := ths[0]
	for _, n := range ths {
		if n > shardThreads {
			shardThreads = n
		}
	}

	runners := map[string]func() *stats.Table{
		"e1":  harness.E1StepCount,
		"e2":  harness.E2VLXReads,
		"e3":  harness.E3Disjoint,
		"e4":  harness.E4KCASComparison,
		"e5":  harness.E5Progress,
		"e6":  harness.E6Transitions,
		"e7":  func() *stats.Table { return harness.E7Linearizability(*rounds) },
		"e8":  func() *stats.Table { return harness.E8Throughput(ths, *dur) },
		"e9":  func() *stats.Table { return harness.E9ShardScaling(shs, shardThreads, *dur) },
		"e10": func() *stats.Table { return harness.E10HotKeyContention(shs, shardThreads, *dur) },
	}
	order := []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10"}

	selected := order
	if *exps != "all" {
		selected = strings.Split(*exps, ",")
	}
	for _, name := range selected {
		name = strings.TrimSpace(strings.ToLower(name))
		runner, ok := runners[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "bench: unknown experiment %q (want e1..e10 or all)\n", name)
			return 2
		}
		if _, err := runner().WriteTo(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			return 1
		}
	}
	return 0
}

func parseInts(csv string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(csv, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		if n <= 0 {
			return nil, fmt.Errorf("non-positive thread count %d", n)
		}
		out = append(out, n)
	}
	return out, nil
}
