// Command server serves any of the repository's seven structures over TCP
// with the internal/proto KV protocol — the end of the stack the paper's
// primitives were built for: LLX/SCX (PR 1) under the template engine
// (PR 2) behind the container/shard layers (PR 3) with GC-free recycling
// (PR 4), now taking traffic from a socket.
//
// Usage:
//
//	server [-addr 127.0.0.1:7700] [-structure llx-multiset] [-shards 1]
//	       [-policy immediate|backoff[:BASE:MAX]|spinyield[:SPINS]]
//	       [-maxconns 1024] [-idletimeout 0] [-metrics host:port]
//
// -metrics serves the plain-text metrics dump over HTTP at /metrics (the
// same text the STATS command returns in-band). On SIGINT/SIGTERM the
// server shuts down gracefully — drains in-flight operations, flushes
// their acknowledgements, closes sessions — and reports the final Size,
// which by the conservation invariant equals the sum of every client's
// acknowledged inserts minus acknowledged deletes.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pragmaprim/internal/harness"
	"pragmaprim/internal/server"
	"pragmaprim/internal/shard"
	"pragmaprim/internal/template"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr      = flag.String("addr", "127.0.0.1:7700", "TCP listen address (use :0 for a random port)")
		structure = flag.String("structure", "llx-multiset", "structure to serve: "+strings.Join(harness.StructureNames(), ", "))
		shards    = flag.Int("shards", 1, "hash-partition the structure across this many shards (rounds up to a power of two)")
		policy    = flag.String("policy", "", "retry policy: immediate, backoff[:BASE:MAX] or spinyield[:SPINS] (default: the structure's own)")
		maxConns  = flag.Int("maxconns", server.DefaultMaxConns, "refuse connections beyond this many (<0 for unlimited)")
		idle      = flag.Duration("idletimeout", 0, "close connections idle for this long (0 disables)")
		metrics   = flag.String("metrics", "", "serve the text metrics dump over HTTP at this address under /metrics (empty disables)")
		drainWait = flag.Duration("drain", 10*time.Second, "graceful-shutdown budget before connections are force-closed")
	)
	flag.Parse()

	pol, err := template.PolicyByName(*policy)
	if err != nil {
		fmt.Fprintf(os.Stderr, "server: %v\n", err)
		return 2
	}
	if *shards > 1 {
		// BuildContainer rounds internally; round here too so every report
		// shows the topology actually built.
		*shards = shard.NextPow2(*shards)
	}
	cont, err := harness.BuildContainer(*structure, *shards, pol)
	if err != nil {
		fmt.Fprintf(os.Stderr, "server: %v\n", err)
		return 2
	}

	srv, err := server.Start(cont, server.Config{
		Addr:        *addr,
		MaxConns:    *maxConns,
		IdleTimeout: *idle,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "server: %v\n", err)
		return 1
	}
	fmt.Printf("server: serving %s", *structure)
	if *shards > 1 {
		fmt.Printf(" over %d shards", *shards)
	}
	fmt.Printf(" on %s\n", srv.Addr())

	var msrv *http.Server
	if *metrics != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			srv.WriteMetrics(w)
		})
		msrv = &http.Server{Addr: *metrics, Handler: mux}
		go func() {
			if err := msrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "server: metrics endpoint: %v\n", err)
			}
		}()
		fmt.Printf("server: metrics on http://%s/metrics\n", *metrics)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	fmt.Printf("server: signal %v, draining\n", <-sig)

	ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	shutdownErr := srv.Shutdown(ctx)
	if msrv != nil {
		msrv.Shutdown(ctx)
	}
	m := srv.Metrics()
	fmt.Printf("server: drained: %d ops served over %d connections, final size %d\n",
		m.ServedTotal, m.AcceptedConns, srv.Size())
	if shutdownErr != nil {
		fmt.Fprintf(os.Stderr, "server: shutdown forced after %v: %v\n", *drainWait, shutdownErr)
		return 1
	}
	return 0
}
