// Command server serves any structure in the harness registry over TCP
// with the internal/proto KV protocol — the end of the stack the paper's
// primitives were built for: LLX/SCX (PR 1) under the template engine
// (PR 2) behind the container/shard layers (PR 3) with GC-free recycling
// (PR 4), now taking traffic from a socket. `server -list` prints the
// servable structure names (the same registry Factories() gives the
// experiments, so a structure added there is servable with no server
// change — the hash map arrived that way).
//
// Usage:
//
//	server -list
//	server [-addr 127.0.0.1:7700] [-structure llx-multiset] [-shards 1]
//	       [-policy immediate|backoff[:BASE:MAX]|spinyield[:SPINS]]
//	       [-maxconns 1024] [-idletimeout 0] [-metrics host:port]
//	       [-pprof host:port] [-slowop 10ms]
//	       [-wal-dir DIR] [-fsync-interval 0] [-segment-bytes 16MiB]
//	       [-snapshot-every 0]
//
// -metrics serves the observability plane over HTTP: /metrics is the
// plain-text dump (the same text the STATS command returns in-band),
// /metrics?format=prom is the Prometheus text exposition, and /trace is
// the slow-op trace ring (flush intervals slower than -slowop, also
// readable in-band via the TRACE command). -pprof serves the standard
// net/http/pprof profiles on a separate address. On SIGINT/SIGTERM the
// server shuts down gracefully — drains in-flight operations, flushes
// their acknowledgements, closes sessions — and reports the final Size,
// which by the conservation invariant equals the sum of every client's
// acknowledged inserts minus acknowledged deletes.
//
// -wal-dir turns on the durability layer (PR 6): the server recovers its
// state from DIR (newest snapshot plus write-ahead-log tail) before taking
// its first connection, and from then on acknowledges an operation only
// after its log record is fsynced — group-committed, so a pipelined batch
// costs one fsync. -fsync-interval widens the commit window at a latency
// cost; -snapshot-every takes periodic snapshots and truncates the log
// behind them. If the disk fails mid-run (fsync error), the server stops
// acknowledging, drains, reports the fault, and exits non-zero: restart it
// on the same -wal-dir to recover everything it ever acked.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pragmaprim/internal/harness"
	"pragmaprim/internal/server"
	"pragmaprim/internal/shard"
	"pragmaprim/internal/snapshot"
	"pragmaprim/internal/template"
	"pragmaprim/internal/wal"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr      = flag.String("addr", "127.0.0.1:7700", "TCP listen address (use :0 for a random port)")
		structure = flag.String("structure", "llx-multiset", "structure to serve: "+strings.Join(harness.StructureNames(), ", "))
		shards    = flag.Int("shards", 1, "hash-partition the structure across this many shards (rounds up to a power of two)")
		policy    = flag.String("policy", "", "retry policy: immediate, backoff[:BASE:MAX] or spinyield[:SPINS] (default: the structure's own)")
		maxConns  = flag.Int("maxconns", server.DefaultMaxConns, "refuse connections beyond this many (<0 for unlimited)")
		idle      = flag.Duration("idletimeout", 0, "close connections idle for this long (0 disables)")
		metrics   = flag.String("metrics", "", "serve /metrics (text; ?format=prom for Prometheus exposition) and /trace over HTTP at this address (empty disables)")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof profiles over HTTP at this address under /debug/pprof/ (empty disables)")
		slowOp    = flag.Duration("slowop", 0, "flush intervals at least this slow enter the TRACE ring (0: the 10ms default; <0 disables)")
		drainWait = flag.Duration("drain", 10*time.Second, "graceful-shutdown budget before connections are force-closed")
		walDir    = flag.String("wal-dir", "", "directory for the write-ahead log and snapshots; enables durability (empty disables)")
		fsyncIvl  = flag.Duration("fsync-interval", 0, "group-commit window: wait this long before each fsync so more records share it (0: fsync as soon as a commit is demanded)")
		segBytes  = flag.Int64("segment-bytes", 0, "rotate WAL segments at this size (0: the library default, 16 MiB)")
		snapEvery = flag.Duration("snapshot-every", 0, "take a snapshot and truncate the WAL behind it at this interval (0 disables; requires -wal-dir)")
		list      = flag.Bool("list", false, "print the servable structure names, one per line, and exit")
	)
	flag.Parse()

	if *list {
		for _, name := range harness.StructureNames() {
			fmt.Println(name)
		}
		return 0
	}

	pol, err := template.PolicyByName(*policy)
	if err != nil {
		fmt.Fprintf(os.Stderr, "server: %v\n", err)
		return 2
	}
	if *shards > 1 {
		// BuildContainer rounds internally; round here too so every report
		// shows the topology actually built.
		*shards = shard.NextPow2(*shards)
	}
	cont, err := harness.BuildContainer(*structure, *shards, pol)
	if err != nil {
		fmt.Fprintf(os.Stderr, "server: %v\n", err)
		return 2
	}

	// Durability: recover state from the WAL directory BEFORE the listener
	// exists — no connection is ever served from a partially rebuilt store.
	var (
		dur     *server.Durability
		log     *wal.Log
		barrier *snapshot.Barrier
	)
	if *walDir != "" {
		width := 1
		if *shards > 1 {
			width = *shards
		}
		barrier = snapshot.NewBarrier(width)
		t0 := time.Now()
		l, rstats, err := snapshot.Recover(cont, *walDir, wal.Options{
			SegmentBytes:  *segBytes,
			FsyncInterval: *fsyncIvl,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "server: recovery: %v\n", err)
			return 1
		}
		log = l
		defer log.Close()
		snapNote := "no snapshot"
		if rstats.SnapshotFile != "" {
			snapNote = fmt.Sprintf("snapshot %s (%d keys)", rstats.SnapshotFile, rstats.SnapshotKeys)
		}
		fmt.Printf("server: recovered %s in %v: %s, %d records replayed (%d covered), %d occurrences installed, log at LSN %d\n",
			*walDir, time.Since(t0).Round(time.Millisecond), snapNote,
			rstats.Replayed, rstats.Skipped, rstats.Installed, rstats.LastLSN)
		dur = &server.Durability{Log: log, Barrier: barrier}
	} else if *snapEvery > 0 {
		fmt.Fprintln(os.Stderr, "server: -snapshot-every requires -wal-dir")
		return 2
	}

	srv, err := server.Start(cont, server.Config{
		Addr:            *addr,
		MaxConns:        *maxConns,
		IdleTimeout:     *idle,
		Durable:         dur,
		SlowOpThreshold: *slowOp,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "server: %v\n", err)
		return 1
	}
	fmt.Printf("server: serving %s", *structure)
	if *shards > 1 {
		fmt.Printf(" over %d shards", *shards)
	}
	if dur != nil {
		fmt.Printf(" durably (wal %s)", *walDir)
	}
	fmt.Printf(" on %s\n", srv.Addr())

	var mgr *snapshot.Manager
	if dur != nil && *snapEvery > 0 {
		mgr = snapshot.StartManager(cont, barrier, log, wal.OS, *walDir, *snapEvery, func(err error) {
			fmt.Fprintf(os.Stderr, "server: snapshot: %v\n", err)
		})
		fmt.Printf("server: snapshotting every %v\n", *snapEvery)
	}

	var msrv *http.Server
	if *metrics != "" {
		msrv = &http.Server{Addr: *metrics, Handler: srv.Handler()}
		go func() {
			if err := msrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "server: metrics endpoint: %v\n", err)
			}
		}()
		fmt.Printf("server: metrics on http://%s/metrics (?format=prom), trace on /trace\n", *metrics)
	}

	// pprof rides its own listener and an explicit mux — never the default
	// mux, so profiles are only exposed where the operator asked.
	var psrv *http.Server
	if *pprofAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		psrv = &http.Server{Addr: *pprofAddr, Handler: mux}
		go func() {
			if err := psrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "server: pprof endpoint: %v\n", err)
			}
		}()
		fmt.Printf("server: pprof on http://%s/debug/pprof/\n", *pprofAddr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Printf("server: signal %v, draining\n", s)
	case <-srv.FaultC():
		fmt.Fprintf(os.Stderr, "server: durability fault: %v; draining\n", srv.Fault())
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	shutdownErr := srv.Shutdown(ctx)
	if msrv != nil {
		msrv.Shutdown(ctx)
	}
	if psrv != nil {
		psrv.Shutdown(ctx)
	}
	if mgr != nil {
		mgr.Close()
	}
	if dur != nil && srv.Fault() == nil {
		// Clean shutdown: one final snapshot bounds the next restart's
		// replay. Best effort — the log alone already carries everything.
		if mgr != nil {
			mgr.Snapshot()
		}
		lm := log.Metrics()
		fmt.Printf("server: wal at LSN %d (%d appends, %d fsyncs, %d segments)\n",
			lm.LastLSN, lm.Appends, lm.Fsyncs, lm.Segments)
	}
	m := srv.Metrics()
	fmt.Printf("server: drained: %d ops served over %d connections, final size %d\n",
		m.ServedTotal, m.AcceptedConns, srv.Size())
	if shutdownErr != nil {
		fmt.Fprintf(os.Stderr, "server: shutdown forced after %v: %v\n", *drainWait, shutdownErr)
		return 1
	}
	if err := srv.Fault(); err != nil {
		fmt.Fprintf(os.Stderr, "server: exiting on durability fault: %v (restart on the same -wal-dir to recover)\n", err)
		return 1
	}
	return 0
}
