module pragmaprim

go 1.24
