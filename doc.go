// Package pragmaprim is a from-scratch Go reproduction of Brown, Ellen and
// Ruppert, "Pragmatic Primitives for Non-blocking Data Structures"
// (PODC 2013): the LLX/SCX/VLX primitives implemented from single-word CAS,
// the paper's multiset running example, an LLX/SCX external binary search
// tree, the baselines the paper compares against (LL/SC, KCSS, multi-word
// CAS, lock-based lists), and a harness that regenerates every measurable
// claim in the paper. DESIGN.md documents the record/box memory layout, the
// ABA argument, and the allocation-free fast path; BENCH_core.json is the
// checked-in machine-readable microbenchmark dump (regenerate with
// cmd/bench -corejson).
//
// The implementation lives under internal/:
//
//	internal/core            LLX, SCX, VLX from CAS (the paper's contribution)
//	internal/multiset        Section 5 multiset on a sorted linked list
//	internal/bst             Section 6 application: external BST
//	internal/llsc            single-word LL/SC from CAS
//	internal/kcss            k-compare-single-swap baseline
//	internal/mwcas           descriptor-based k-CAS baseline
//	internal/lockds          lock-based multiset baselines
//	internal/linearizability Wing-Gong checker used by the tests
//	internal/history         concurrent history recorder
//	internal/workload        key distributions and operation mixes
//	internal/stats           summary statistics and table rendering
//	internal/harness         experiments E1-E8
//
// The benchmarks in bench_test.go regenerate the experiment series from Go
// tooling (go test -bench=.), and cmd/bench prints the full tables and the
// core fast-path microbenchmark JSON.
package pragmaprim
