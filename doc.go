// Package pragmaprim is a from-scratch Go reproduction of Brown, Ellen and
// Ruppert, "Pragmatic Primitives for Non-blocking Data Structures"
// (PODC 2013): the LLX/SCX/VLX primitives implemented from single-word CAS,
// the paper's multiset running example, an LLX/SCX external binary search
// tree, the baselines the paper compares against (LL/SC, KCSS, multi-word
// CAS, lock-based lists), and a harness that regenerates every measurable
// claim in the paper. DESIGN.md documents the record/box memory layout, the
// ABA argument, the allocation-free fast path, and the template engine +
// process runtime; BENCH_core.json is the checked-in machine-readable
// microbenchmark dump (regenerate with cmd/bench -corejson).
//
// The implementation is layered: internal/core provides the primitives and
// the process runtime (a lock-free Handle pool, so callers never manage
// *core.Process by hand), internal/template provides the one update engine
// every structure's retry loop runs on, and the five data structures are
// thin attempt bodies over that engine. Public structure APIs take no
// Process: plain calls acquire a pooled Handle per operation, hot paths
// bind one once via each structure's Attach/Session API. The eighth
// structure, internal/hashmap, is the degenerate case of the template: a
// lock-free resizable hash map whose updates are one-record SCXs (plain
// CASes on bucket heads over immutable chains), giving O(1) Get where the
// keyed structures walk lists and trees; its incremental resize migrates
// buckets through primed/forwarded sentinels with old tables retired
// through the epoch domain. Above the structures, internal/container gives
// all of them (plus the lock baselines) one typed result-returning
// interface, and internal/shard
// hash-partitions any container across independent instances — the scale
// lever the shard-scaling experiments (E9/E10) measure. On top of the
// containers sits the network service layer: internal/proto (a RESP-style
// KV wire protocol in length-prefixed frames, batched decode and vectored
// jumbo replies), internal/server (a TCP server pinning one container
// Session per connection; the serve loop works in batches — decode
// everything one socket read delivered, apply it under one epoch guard,
// answer with one write — with conservation-preserving graceful shutdown)
// and internal/client (a pipelining client) — served by cmd/server and
// measured across a real socket by cmd/bench -loadgen and the
// -serverbench/-compareserver parallel server lane (BENCH_server.json is
// the checked-in trajectory, one row per workload cell per GOMAXPROCS).
// The durability layer (internal/wal +
// internal/snapshot, wired in with cmd/server -wal-dir) upgrades the
// server's conservation contract to acked-means-durable: group-committed
// write-ahead logging (one fsync per pipelined batch, 0 allocs/op),
// epoch-consistent snapshots bounding replay, and kill -9 crash recovery
// audited end to end by cmd/stress -crash and scripts/crash_smoke.sh.
// Threaded through all of it is the observability plane (internal/obs): an
// allocation-free metrics registry of padded counters, pull gauges and
// striped atomic histograms that every layer registers into — server per-op
// latency, WAL fsync/commit/group-size, epoch-reclaim gauges — plus a
// lock-free slow-op trace ring, exposed as text (STATS), Prometheus
// exposition (/metrics?format=prom, round-tripped by the in-repo parser),
// the TRACE command and /trace, and opt-in net/http/pprof (cmd/server
// -pprof).
//
// The implementation lives under internal/:
//
//	internal/core            LLX, SCX, VLX from CAS (the paper's contribution),
//	                         plus the ProcessPool/Handle runtime
//	internal/template        the generic LLX→validate→SCX update engine:
//	                         retry policies, contention counters, snapshot reuse
//	internal/multiset        Section 5 multiset on a sorted linked list
//	internal/bst             Section 6 application: external BST
//	internal/trie            non-blocking binary Patricia trie
//	internal/queue           Michael-Scott-shaped FIFO queue
//	internal/stack           Treiber-shaped LIFO stack
//	internal/hashmap         lock-free resizable hash map: O(1) Get,
//	                         plain-CAS bucket updates, incremental
//	                         primed-pointer resize (DESIGN.md "The hash map")
//	internal/hashutil        the shared integer hashes: Fibonacci routing
//	                         (shard) and the splitmix64 finalizer (hashmap)
//	internal/reclaim         DEBRA-style epoch reclamation: announcement
//	                         slots, limbo lists, typed freelists — the
//	                         GC-free steady state for nodes and descriptors
//	internal/llsc            single-word LL/SC from CAS
//	internal/kcss            k-compare-single-swap baseline
//	internal/mwcas           descriptor-based k-CAS baseline
//	internal/lockds          lock-based multiset baselines
//	internal/container       the typed Container/Session interface every
//	                         structure is driven through (ops return results)
//	internal/shard           hash-partitioned Sharded wrapper over any
//	                         container: Fibonacci routing, per-shard counters
//	internal/proto           the KV wire protocol: zero-copy streaming
//	                         frame parser (batch drain of buffered frames)
//	                         and batching writer (vectored jumbo replies)
//	internal/server          the TCP serving layer: pinned per-connection
//	                         sessions, batched decode→apply→reply under one
//	                         epoch guard per batch, graceful shutdown
//	internal/client          pipelining client (sync + async-batch APIs),
//	                         read timeouts and reconnect-with-backoff
//	internal/obs             the observability plane: lock-free registry
//	                         (counters, pull gauges, striped histograms),
//	                         slow-op trace ring, Prometheus exposition
//	                         writer + parser
//	internal/wal             group-committed write-ahead log: CRC-framed
//	                         records, segment rotation, torn-tail replay,
//	                         injectable file system (MemFS crash model,
//	                         FaultFS failpoints)
//	internal/snapshot        epoch-consistent snapshots of a live sharded
//	                         container, WAL truncation, crash recovery
//	internal/linearizability Wing-Gong checker used by the tests
//	internal/history         concurrent history recorder
//	internal/workload        key distributions and operation mixes
//	internal/stats           summary statistics and table rendering
//	internal/harness         experiments E1-E10
//	internal/benchcore       shared bodies of the core microbenchmarks
//
// The benchmarks in bench_test.go regenerate the experiment series from Go
// tooling (go test -bench=.), and cmd/bench prints the full tables and the
// core fast-path microbenchmark JSON.
package pragmaprim
