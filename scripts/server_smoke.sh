#!/bin/sh
# server_smoke.sh — end-to-end smoke of the serving stack, the CI lane
# behind `make server-smoke`: build cmd/server, enumerate the servable
# structures from the server's own registry (server -list), then for a
# keyed structure from each family — the LLX/SCX multiset and the lock-free
# hash map — start the server, drive it with the load generator for one
# second, scrape the -metrics HTTP endpoint (both the text dump and the
# Prometheus exposition, which loadgen parses with the in-repo parser and
# renders as a server-vs-client latency table), dump the slow-op trace
# endpoint, send SIGTERM, and assert the server drains and exits cleanly
# (status 0).
set -eu

PORT=$((17000 + $$ % 1000))
MPORT=$((PORT + 1))
TMP=$(mktemp -d)
SERVER_PID=""
cleanup() {
    [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

echo "server-smoke: building"
go build -o "$TMP/server" ./cmd/server
go build -o "$TMP/bench" ./cmd/bench

echo "server-smoke: enumerating structures from the registry"
"$TMP/server" -list >"$TMP/structures"
cat "$TMP/structures"
for want in llx-multiset hashmap; do
    grep -qx "$want" "$TMP/structures" || {
        echo "server-smoke: FAILED: registry does not list $want" >&2
        exit 1
    }
done

for STRUCT in llx-multiset hashmap; do
    echo "server-smoke: starting $STRUCT server on 127.0.0.1:$PORT (metrics :$MPORT, GOMAXPROCS=2)"
    # GOMAXPROCS=2 so the smoke exercises the batched fast path under
    # concurrent connection goroutines, not single-threaded scheduling.
    GOMAXPROCS=2 "$TMP/server" -addr "127.0.0.1:$PORT" -metrics "127.0.0.1:$MPORT" \
        -structure "$STRUCT" -shards 4 >"$TMP/server.log" 2>&1 &
    SERVER_PID=$!

    echo "server-smoke: running loadgen for 1s and scraping metrics"
    "$TMP/bench" -loadgen -addr "127.0.0.1:$PORT" \
        -lgdur 1s -lgdepth 16 -lgconns 2 \
        -lgmetrics "http://127.0.0.1:$MPORT/metrics" | tee "$TMP/loadgen.log"

    # The Prometheus exposition must have parsed cleanly (loadgen runs it
    # through obs.ParseProm) and carried the op latency histograms.
    grep -q "prom scrape OK:" "$TMP/loadgen.log" || {
        echo "server-smoke: FAILED: loadgen did not parse the prom exposition" >&2
        exit 1
    }
    grep -q "server GET" "$TMP/loadgen.log" || {
        echo "server-smoke: FAILED: no server-side GET latency row in loadgen output" >&2
        exit 1
    }

    echo "server-smoke: dumping the slow-op trace endpoint"
    if command -v curl >/dev/null 2>&1; then
        curl -fsS "http://127.0.0.1:$MPORT/trace" | head -5
    else
        wget -qO- "http://127.0.0.1:$MPORT/trace" | head -5
    fi

    echo "server-smoke: SIGTERM, expecting clean drain"
    kill -TERM "$SERVER_PID"
    if wait "$SERVER_PID"; then
        SERVER_PID=""
    else
        status=$?
        SERVER_PID=""
        echo "server-smoke: FAILED: $STRUCT server exited with status $status" >&2
        cat "$TMP/server.log" >&2
        exit 1
    fi
    grep -q "drained:" "$TMP/server.log" || {
        echo "server-smoke: FAILED: no drain report in $STRUCT server log" >&2
        cat "$TMP/server.log" >&2
        exit 1
    }
done
echo "server-smoke: OK"
