#!/bin/sh
# crash_smoke.sh — the kill -9 durability smoke, the CI lane behind
# `make crash-smoke`: start cmd/server with a WAL directory and periodic
# snapshots, load it with `stress -crash` (which tracks every acknowledged
# operation), SIGKILL the server mid-run, restart it over the same WAL
# directory, and let stress audit per-key interval conservation over the
# wire. stress exits non-zero if any acknowledged write was lost or any
# phantom state appeared; the restarted server must then drain cleanly on
# SIGTERM.
set -eu

PORT=$((18000 + $$ % 1000))
ADDR="127.0.0.1:$PORT"
TMP=$(mktemp -d)
WAL="$TMP/wal"
SERVER_PID=""
STRESS_PID=""
cleanup() {
    [ -n "$STRESS_PID" ] && kill "$STRESS_PID" 2>/dev/null || true
    [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

echo "crash-smoke: building"
go build -o "$TMP/server" ./cmd/server
go build -o "$TMP/stress" ./cmd/stress

start_server() {
    # GOMAXPROCS=4 (oversubscribed on small hosts): the crash audit must
    # exercise batched apply+append and group commit under real connection
    # concurrency, which is where an ack-before-commit bug would surface.
    GOMAXPROCS=4 "$TMP/server" -addr "$ADDR" -structure llx-multiset -shards 4 \
        -wal-dir "$WAL" -snapshot-every 200ms -segment-bytes 262144 \
        >>"$TMP/server.log" 2>&1 &
    SERVER_PID=$!
}

wait_listening() {
    i=0
    while ! "$TMP/stress" -crash -addr "$ADDR" -dur 0 >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -ge 20 ]; then
            echo "crash-smoke: FAILED: server never started listening" >&2
            cat "$TMP/server.log" >&2
            exit 1
        fi
        sleep 0.1
    done
}

echo "crash-smoke: starting durable server on $ADDR (wal: $WAL)"
start_server
wait_listening

echo "crash-smoke: starting crash workload (6s)"
GOMAXPROCS=4 "$TMP/stress" -crash -addr "$ADDR" -dur 6s -threads 4 -keys 64 \
    >"$TMP/stress.log" 2>&1 &
STRESS_PID=$!

echo "crash-smoke: kill -9 mid-run"
sleep 2
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""

echo "crash-smoke: restarting over the same WAL directory"
sleep 1
start_server

echo "crash-smoke: waiting for the conservation audit"
if wait "$STRESS_PID"; then
    STRESS_PID=""
else
    status=$?
    STRESS_PID=""
    echo "crash-smoke: FAILED: conservation audit failed (status $status)" >&2
    cat "$TMP/stress.log" >&2
    cat "$TMP/server.log" >&2
    exit 1
fi
grep -q "recovered" "$TMP/server.log" || {
    echo "crash-smoke: FAILED: restarted server logged no recovery report" >&2
    cat "$TMP/server.log" >&2
    exit 1
}
grep "crash audit" "$TMP/stress.log" || true

echo "crash-smoke: SIGTERM, expecting clean drain of the recovered server"
kill -TERM "$SERVER_PID"
if wait "$SERVER_PID"; then
    SERVER_PID=""
else
    status=$?
    SERVER_PID=""
    echo "crash-smoke: FAILED: recovered server exited with status $status" >&2
    cat "$TMP/server.log" >&2
    exit 1
fi
grep -q "drained:" "$TMP/server.log" || {
    echo "crash-smoke: FAILED: no drain report in server log" >&2
    cat "$TMP/server.log" >&2
    exit 1
}
echo "crash-smoke: OK"
