package stats

import "math/bits"

// Histogram is a log-linear histogram for latency-scale values: each
// power-of-two range is split into 16 linear sub-buckets, giving a
// worst-case quantile error of ~6% at any magnitude — the HdrHistogram
// shape, sized for nanosecond latencies up to hours. Recording is two
// shifts and an increment with no allocation, so the load generator can
// call it on every reply; a Histogram is not safe for concurrent use —
// give each worker its own and Merge them.
type Histogram struct {
	counts [histBuckets]int64
	n      int64
	max    int64
}

const (
	histSub     = 16 // linear sub-buckets per power of two
	histBuckets = 64 * histSub
)

// bucketOf maps a non-negative value to its bucket index.
func bucketOf(v int64) int {
	if v < histSub {
		return int(v)
	}
	// Shift v down until it fits [16, 32); the shift count and the residue
	// select the bucket.
	shift := bits.Len64(uint64(v)) - 5
	return (shift+1)*histSub + int(v>>uint(shift)) - histSub
}

// bucketValue returns the representative (midpoint) value of a bucket.
func bucketValue(idx int) int64 {
	if idx < histSub {
		return int64(idx)
	}
	shift := idx/histSub - 1
	lower := int64(histSub+idx%histSub) << uint(shift)
	return lower + (int64(1)<<uint(shift))/2
}

// Record adds one observation. Negative values clamp to zero.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	idx := bucketOf(v)
	if idx >= histBuckets {
		idx = histBuckets - 1
	}
	h.counts[idx]++
	h.n++
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() int64 { return h.n }

// Max returns the largest recorded observation, 0 when empty.
func (h *Histogram) Max() int64 { return h.max }

// Merge folds o into h.
func (h *Histogram) Merge(o *Histogram) {
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.n += o.n
	if o.max > h.max {
		h.max = o.max
	}
}

// Quantile returns the value at percentile p (0-100) as the representative
// value of the bucket holding that rank, 0 when empty. The exact maximum is
// returned for p at or above the last observation's rank.
func (h *Histogram) Quantile(p float64) int64 {
	if h.n == 0 {
		return 0
	}
	if p >= 100 {
		return h.max
	}
	rank := int64(p / 100 * float64(h.n))
	if rank >= h.n {
		rank = h.n - 1
	}
	var seen int64
	for i, c := range h.counts {
		seen += c
		if seen > rank {
			v := bucketValue(i)
			if v > h.max {
				return h.max
			}
			return v
		}
	}
	return h.max
}
