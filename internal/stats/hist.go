package stats

import (
	"math"
	"math/bits"
)

// Histogram is a log-linear histogram for latency-scale values: each
// power-of-two range is split into 16 linear sub-buckets, giving a
// worst-case quantile error of ~6% at any magnitude — the HdrHistogram
// shape, sized for nanosecond latencies up to hours. Recording is two
// shifts and an increment with no allocation, so the load generator can
// call it on every reply; a Histogram is not safe for concurrent use —
// give each worker its own and Merge them.
type Histogram struct {
	counts [histBuckets]int64
	n      int64
	max    int64
}

const (
	histSub     = 16 // linear sub-buckets per power of two
	histBuckets = 64 * histSub
)

// Buckets is the number of buckets in a Histogram. The bucket geometry is
// exported (BucketIndex, BucketUpper, BucketCount, AddBucket) so concurrent
// recorders elsewhere — internal/obs keeps atomic per-stripe bucket arrays —
// can share it and fold into a plain Histogram at scrape time.
const Buckets = histBuckets

// BucketIndex maps a value to its bucket index in [0, Buckets). Negative
// values clamp to bucket 0; values past the last bucket clamp to Buckets-1.
func BucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	idx := bucketOf(v)
	if idx >= histBuckets {
		idx = histBuckets - 1
	}
	return idx
}

// BucketUpper returns the inclusive upper bound of a bucket: the largest
// value v with BucketIndex(v) == idx. This is what a Prometheus `le` label
// for the bucket must carry. Buckets past the last one an int64 can reach
// (bucket 959 ends exactly at MaxInt64) saturate to MaxInt64.
func BucketUpper(idx int) int64 {
	if idx < histSub {
		return int64(idx)
	}
	shift := idx/histSub - 1
	if shift >= 59 {
		return math.MaxInt64
	}
	lower := int64(histSub+idx%histSub) << uint(shift)
	return lower + int64(1)<<uint(shift) - 1
}

// bucketOf maps a non-negative value to its bucket index.
func bucketOf(v int64) int {
	if v < histSub {
		return int(v)
	}
	// Shift v down until it fits [16, 32); the shift count and the residue
	// select the bucket.
	shift := bits.Len64(uint64(v)) - 5
	return (shift+1)*histSub + int(v>>uint(shift)) - histSub
}

// bucketValue returns the representative (midpoint) value of a bucket.
func bucketValue(idx int) int64 {
	if idx < histSub {
		return int64(idx)
	}
	shift := idx/histSub - 1
	lower := int64(histSub+idx%histSub) << uint(shift)
	return lower + (int64(1)<<uint(shift))/2
}

// Record adds one observation. Negative values clamp to zero.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	idx := bucketOf(v)
	if idx >= histBuckets {
		idx = histBuckets - 1
	}
	h.counts[idx]++
	h.n++
	if v > h.max {
		h.max = v
	}
}

// AddBucket adds c observations directly into bucket idx (clamped to the
// valid range) without touching the recorded maximum — it is the fold
// primitive for external recorders that kept per-bucket counts themselves.
// Callers that know the true maximum should follow up with ObserveMax;
// otherwise ObserveMax(BucketUpper(idx)) of the highest non-empty bucket
// bounds it.
func (h *Histogram) AddBucket(idx int, c int64) {
	if c <= 0 {
		return
	}
	if idx < 0 {
		idx = 0
	}
	if idx >= histBuckets {
		idx = histBuckets - 1
	}
	h.counts[idx] += c
	h.n += c
}

// ObserveMax raises the recorded maximum to v if larger, without recording
// an observation. Companion to AddBucket when folding external counts.
func (h *Histogram) ObserveMax(v int64) {
	if v > h.max {
		h.max = v
	}
}

// Reset zeroes the histogram for reuse (between experiment phases, or as a
// scrape-time fold target).
func (h *Histogram) Reset() {
	h.counts = [histBuckets]int64{}
	h.n = 0
	h.max = 0
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() int64 { return h.n }

// Max returns the largest recorded observation, 0 when empty.
func (h *Histogram) Max() int64 { return h.max }

// BucketCount returns the observation count of bucket idx, 0 out of range.
func (h *Histogram) BucketCount(idx int) int64 {
	if idx < 0 || idx >= histBuckets {
		return 0
	}
	return h.counts[idx]
}

// Merge folds o into h.
func (h *Histogram) Merge(o *Histogram) {
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.n += o.n
	if o.max > h.max {
		h.max = o.max
	}
}

// Quantile returns the value at percentile p (0-100) as the representative
// value of the bucket holding that rank, 0 when empty. The exact maximum is
// returned for p at or above the last observation's rank; p outside [0,100]
// clamps (negative p behaves as p=0, p past 100 as p=100).
func (h *Histogram) Quantile(p float64) int64 {
	if h.n == 0 {
		return 0
	}
	if p >= 100 {
		return h.max
	}
	if p < 0 {
		p = 0
	}
	rank := int64(p / 100 * float64(h.n))
	if rank >= h.n {
		rank = h.n - 1
	}
	var seen int64
	for i, c := range h.counts {
		seen += c
		if seen > rank {
			v := bucketValue(i)
			if v > h.max {
				return h.max
			}
			return v
		}
	}
	return h.max
}
