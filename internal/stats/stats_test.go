package stats_test

import (
	"math"
	"strings"
	"testing"

	"pragmaprim/internal/stats"
)

func TestSummarizeBasics(t *testing.T) {
	s := stats.Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 {
		t.Errorf("N = %d", s.N)
	}
	if s.Mean != 3 {
		t.Errorf("Mean = %v", s.Mean)
	}
	if s.Min != 1 || s.Max != 5 {
		t.Errorf("Min/Max = %v/%v", s.Min, s.Max)
	}
	if s.Median != 3 {
		t.Errorf("Median = %v", s.Median)
	}
	if math.Abs(s.Stddev-math.Sqrt(2.5)) > 1e-9 {
		t.Errorf("Stddev = %v, want %v", s.Stddev, math.Sqrt(2.5))
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := stats.Summarize(nil); s.N != 0 {
		t.Errorf("empty N = %d", s.N)
	}
	s := stats.Summarize([]float64{7})
	if s.Mean != 7 || s.Stddev != 0 || s.Median != 7 {
		t.Errorf("single: %+v", s)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 10}, {100, 40}, {50, 25}, {25, 17.5}, {-5, 10}, {110, 40},
	}
	for _, c := range cases {
		if got := stats.Percentile(xs, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if got := stats.Percentile(nil, 50); got != 0 {
		t.Errorf("Percentile(empty) = %v", got)
	}
	// Input must not be reordered.
	orig := []float64{3, 1, 2}
	stats.Percentile(orig, 50)
	if orig[0] != 3 || orig[1] != 1 || orig[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

func TestThroughput(t *testing.T) {
	if got := stats.Throughput(1000, 2); got != 500 {
		t.Errorf("Throughput = %v", got)
	}
	if got := stats.Throughput(1000, 0); got != 0 {
		t.Errorf("Throughput with zero time = %v", got)
	}
}

func TestTableRendering(t *testing.T) {
	tb := stats.NewTable("My Table", "k", "value")
	tb.AddRow(1, 3.14159)
	tb.AddRow(2, 1000000.0)
	out := tb.String()
	for _, want := range []string{"My Table", "k", "value", "3.142", "1000000"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, underline, header, 2 rows
		t.Errorf("table has %d lines, want 5:\n%s", len(lines), out)
	}
}

func TestTableNoTitle(t *testing.T) {
	tb := stats.NewTable("", "a")
	tb.AddRow("x")
	out := tb.String()
	if strings.Contains(out, "---") {
		t.Errorf("untitled table rendered an underline:\n%s", out)
	}
}

func TestRatePct(t *testing.T) {
	if got := stats.RatePct(25, 100); got != 25 {
		t.Errorf("RatePct(25,100) = %v, want 25", got)
	}
	if got := stats.RatePct(1, 3); got < 33.3 || got > 33.4 {
		t.Errorf("RatePct(1,3) = %v, want ~33.33", got)
	}
	if got := stats.RatePct(5, 0); got != 0 {
		t.Errorf("RatePct with zero whole = %v, want 0", got)
	}
}

func TestContentionRow(t *testing.T) {
	row := stats.ContentionRow(100, 150, 30, 20)
	if len(row) != 5 {
		t.Fatalf("ContentionRow has %d cells, want 5", len(row))
	}
	if row[0] != int64(100) || row[1] != int64(150) {
		t.Errorf("ops/attempts = %v/%v", row[0], row[1])
	}
	if got := row[2].(float64); got != 0.5 {
		t.Errorf("retries/op = %v, want 0.5", got)
	}
	if got := row[3].(float64); got != 20 {
		t.Errorf("llx-fail%% = %v, want 20", got)
	}
	if got := row[4].(float64); got < 13.3 || got > 13.4 {
		t.Errorf("scx-fail%% = %v, want ~13.33", got)
	}
	// Zero ops must not divide by zero.
	zero := stats.ContentionRow(0, 0, 0, 0)
	if got := zero[2].(float64); got != 0 {
		t.Errorf("zero-ops retries/op = %v", got)
	}
}
