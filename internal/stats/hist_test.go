package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestHistogramSmallValuesExact(t *testing.T) {
	var h Histogram
	for v := int64(0); v < histSub; v++ {
		h.Record(v)
	}
	if h.Count() != histSub {
		t.Fatalf("count = %d", h.Count())
	}
	// Below histSub the buckets are exact.
	if got := h.Quantile(0); got != 0 {
		t.Fatalf("q0 = %d, want 0", got)
	}
	if got := h.Quantile(100); got != histSub-1 {
		t.Fatalf("q100 = %d, want %d", got, histSub-1)
	}
}

func TestHistogramBucketsMonotonic(t *testing.T) {
	lastIdx, lastVal := -1, int64(-1)
	for _, v := range []int64{0, 1, 15, 16, 17, 31, 32, 100, 1000, 1 << 20, 1<<40 + 12345} {
		idx := bucketOf(v)
		if idx < lastIdx {
			t.Fatalf("bucketOf(%d) = %d < previous %d", v, idx, lastIdx)
		}
		bv := bucketValue(idx)
		if bv < lastVal {
			t.Fatalf("bucketValue(%d) = %d < previous %d", idx, bv, lastVal)
		}
		lastIdx, lastVal = idx, bv
	}
}

// TestHistogramQuantileAccuracy pins the log-linear error bound: quantiles
// of a recorded sample must land within ~7% of the exact order statistic.
func TestHistogramQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var h Histogram
	const n = 20000
	xs := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		// Latency-shaped: lognormal-ish spread over ~3 decades.
		v := int64(100 * (1 + rng.ExpFloat64()*50))
		h.Record(v)
		xs = append(xs, float64(v))
	}
	sort.Float64s(xs)
	for _, p := range []float64{50, 90, 95, 99, 99.9} {
		got := float64(h.Quantile(p))
		want := Percentile(xs, p)
		if rel := (got - want) / want; rel < -0.08 || rel > 0.08 {
			t.Errorf("q%v = %.0f, exact %.0f (rel err %.3f)", p, got, want, rel)
		}
	}
	if h.Quantile(100) != h.Max() {
		t.Errorf("q100 = %d, want max %d", h.Quantile(100), h.Max())
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b, all Histogram
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		v := int64(rng.Intn(1 << 20))
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
		all.Record(v)
	}
	a.Merge(&b)
	if a.Count() != all.Count() || a.Max() != all.Max() {
		t.Fatalf("merge: count %d/%d max %d/%d", a.Count(), all.Count(), a.Max(), all.Max())
	}
	for _, p := range []float64{50, 95, 99} {
		if a.Quantile(p) != all.Quantile(p) {
			t.Errorf("q%v: merged %d, direct %d", p, a.Quantile(p), all.Quantile(p))
		}
	}
}

func TestHistogramRecordAllocFree(t *testing.T) {
	var h Histogram
	if allocs := testing.AllocsPerRun(100, func() {
		for v := int64(1); v < 1<<20; v <<= 1 {
			h.Record(v)
		}
	}); allocs != 0 {
		t.Fatalf("Record allocated %.1f times", allocs)
	}
}

// TestHistogramQuantileEdges pins the edge cases of Quantile: empty
// histograms, p clamping at both ends, and single-bucket populations.
func TestHistogramQuantileEdges(t *testing.T) {
	single := func(v int64, n int) *Histogram {
		var h Histogram
		for i := 0; i < n; i++ {
			h.Record(v)
		}
		return &h
	}
	tests := []struct {
		name string
		h    *Histogram
		p    float64
		want int64
	}{
		{"empty p0", &Histogram{}, 0, 0},
		{"empty p50", &Histogram{}, 50, 0},
		{"empty p100", &Histogram{}, 100, 0},
		{"empty p-1", &Histogram{}, -1, 0},
		{"empty p200", &Histogram{}, 200, 0},
		{"one value p0", single(7, 1), 0, 7},
		{"one value p50", single(7, 1), 50, 7},
		{"one value p100", single(7, 1), 100, 7},
		{"one value p-5 clamps to p0", single(7, 1), -5, 7},
		{"one value p150 clamps to max", single(7, 1), 150, 7},
		// 1000 in [1008,1023] midpoint 1016, but Quantile clamps to max.
		{"single bucket p0", single(1000, 100), 0, 1000},
		{"single bucket p50", single(1000, 100), 50, 1000},
		{"single bucket p99", single(1000, 100), 99, 1000},
		{"single bucket p100", single(1000, 100), 100, 1000},
		{"zero only p100", single(0, 3), 100, 0},
	}
	for _, tc := range tests {
		if got := tc.h.Quantile(tc.p); got != tc.want {
			t.Errorf("%s: Quantile(%v) = %d, want %d", tc.name, tc.p, got, tc.want)
		}
	}
}

func TestHistogramReset(t *testing.T) {
	var h Histogram
	for v := int64(1); v < 1<<20; v <<= 1 {
		h.Record(v)
	}
	if h.Count() == 0 || h.Max() == 0 {
		t.Fatal("setup recorded nothing")
	}
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 || h.Quantile(50) != 0 {
		t.Fatalf("after Reset: count=%d max=%d q50=%d, want all 0",
			h.Count(), h.Max(), h.Quantile(50))
	}
	h.Record(42)
	if h.Count() != 1 || h.Quantile(100) != 42 {
		t.Fatalf("reuse after Reset: count=%d q100=%d", h.Count(), h.Quantile(100))
	}
}

// TestHistogramBucketGeometry pins the exported geometry contract: BucketUpper
// is the largest value that still maps to its bucket, bounds are strictly
// increasing, and AddBucket folds counts equivalently to Record up to bucket
// resolution.
func TestHistogramBucketGeometry(t *testing.T) {
	for idx := 0; idx < Buckets; idx++ {
		up := BucketUpper(idx)
		if up == math.MaxInt64 {
			// Buckets past the int64 range saturate; bucket 959 ends at
			// exactly MaxInt64 and everything after is unreachable.
			if idx < 959 {
				t.Fatalf("BucketUpper(%d) saturated too early", idx)
			}
			continue
		}
		if got := BucketIndex(up); got != idx {
			t.Fatalf("BucketIndex(BucketUpper(%d)=%d) = %d", idx, up, got)
		}
		if BucketIndex(up+1) == idx {
			t.Fatalf("BucketUpper(%d)=%d is not the bucket's upper bound", idx, up)
		}
		if idx > 0 && up <= BucketUpper(idx-1) {
			t.Fatalf("BucketUpper not increasing at %d", idx)
		}
	}
	if BucketIndex(-5) != 0 {
		t.Fatalf("BucketIndex(-5) = %d, want 0", BucketIndex(-5))
	}

	var direct, folded Histogram
	vals := []int64{0, 3, 17, 999, 1 << 18, 1<<40 + 5}
	for _, v := range vals {
		direct.Record(v)
		folded.AddBucket(BucketIndex(v), 1)
		folded.ObserveMax(v)
	}
	if direct.Count() != folded.Count() || direct.Max() != folded.Max() {
		t.Fatalf("fold mismatch: count %d/%d max %d/%d",
			direct.Count(), folded.Count(), direct.Max(), folded.Max())
	}
	for _, p := range []float64{0, 50, 99, 100} {
		if direct.Quantile(p) != folded.Quantile(p) {
			t.Errorf("q%v: direct %d folded %d", p, direct.Quantile(p), folded.Quantile(p))
		}
	}
	// AddBucket clamps out-of-range indices rather than corrupting memory.
	var h Histogram
	h.AddBucket(-1, 2)
	h.AddBucket(Buckets+10, 3)
	h.AddBucket(0, 0)  // no-op
	h.AddBucket(5, -4) // no-op
	if h.Count() != 5 || h.BucketCount(0) != 2 || h.BucketCount(Buckets-1) != 3 {
		t.Fatalf("clamping: count=%d b0=%d blast=%d", h.Count(), h.BucketCount(0), h.BucketCount(Buckets-1))
	}
}
