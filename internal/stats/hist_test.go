package stats

import (
	"math/rand"
	"sort"
	"testing"
)

func TestHistogramSmallValuesExact(t *testing.T) {
	var h Histogram
	for v := int64(0); v < histSub; v++ {
		h.Record(v)
	}
	if h.Count() != histSub {
		t.Fatalf("count = %d", h.Count())
	}
	// Below histSub the buckets are exact.
	if got := h.Quantile(0); got != 0 {
		t.Fatalf("q0 = %d, want 0", got)
	}
	if got := h.Quantile(100); got != histSub-1 {
		t.Fatalf("q100 = %d, want %d", got, histSub-1)
	}
}

func TestHistogramBucketsMonotonic(t *testing.T) {
	lastIdx, lastVal := -1, int64(-1)
	for _, v := range []int64{0, 1, 15, 16, 17, 31, 32, 100, 1000, 1 << 20, 1<<40 + 12345} {
		idx := bucketOf(v)
		if idx < lastIdx {
			t.Fatalf("bucketOf(%d) = %d < previous %d", v, idx, lastIdx)
		}
		bv := bucketValue(idx)
		if bv < lastVal {
			t.Fatalf("bucketValue(%d) = %d < previous %d", idx, bv, lastVal)
		}
		lastIdx, lastVal = idx, bv
	}
}

// TestHistogramQuantileAccuracy pins the log-linear error bound: quantiles
// of a recorded sample must land within ~7% of the exact order statistic.
func TestHistogramQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var h Histogram
	const n = 20000
	xs := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		// Latency-shaped: lognormal-ish spread over ~3 decades.
		v := int64(100 * (1 + rng.ExpFloat64()*50))
		h.Record(v)
		xs = append(xs, float64(v))
	}
	sort.Float64s(xs)
	for _, p := range []float64{50, 90, 95, 99, 99.9} {
		got := float64(h.Quantile(p))
		want := Percentile(xs, p)
		if rel := (got - want) / want; rel < -0.08 || rel > 0.08 {
			t.Errorf("q%v = %.0f, exact %.0f (rel err %.3f)", p, got, want, rel)
		}
	}
	if h.Quantile(100) != h.Max() {
		t.Errorf("q100 = %d, want max %d", h.Quantile(100), h.Max())
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b, all Histogram
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		v := int64(rng.Intn(1 << 20))
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
		all.Record(v)
	}
	a.Merge(&b)
	if a.Count() != all.Count() || a.Max() != all.Max() {
		t.Fatalf("merge: count %d/%d max %d/%d", a.Count(), all.Count(), a.Max(), all.Max())
	}
	for _, p := range []float64{50, 95, 99} {
		if a.Quantile(p) != all.Quantile(p) {
			t.Errorf("q%v: merged %d, direct %d", p, a.Quantile(p), all.Quantile(p))
		}
	}
}

func TestHistogramRecordAllocFree(t *testing.T) {
	var h Histogram
	if allocs := testing.AllocsPerRun(100, func() {
		for v := int64(1); v < 1<<20; v <<= 1 {
			h.Record(v)
		}
	}); allocs != 0 {
		t.Fatalf("Record allocated %.1f times", allocs)
	}
}
