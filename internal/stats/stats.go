// Package stats provides the small numeric and table-rendering helpers the
// experiment harness uses: summary statistics over repeated trials and
// aligned plain-text tables matching the rows/series in EXPERIMENTS.md.
package stats

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"text/tabwriter"
)

// Summary holds the summary statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Stddev float64
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes summary statistics. An empty sample yields a zero
// Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	sum := 0.0
	for _, x := range xs {
		sum += x
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	s.Mean = sum / float64(len(xs))
	var sq float64
	for _, x := range xs {
		d := x - s.Mean
		sq += d * d
	}
	if len(xs) > 1 {
		s.Stddev = math.Sqrt(sq / float64(len(xs)-1))
	}
	s.Median = Percentile(xs, 50)
	return s
}

// Percentile returns the p-th percentile (0-100) of xs by linear
// interpolation between closest ranks. An empty sample yields 0.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Throughput converts an operation count and elapsed seconds to ops/second.
func Throughput(ops int64, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return float64(ops) / seconds
}

// RatePct returns part as a percentage of whole, 0 when whole is 0 — the
// form the experiment tables report the update engine's retry and SCX
// failure counters in.
func RatePct(part, whole int64) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}

// ContentionRow renders an update-engine counter set (operations, attempts,
// and failure counts) into the row shape the contention tables share:
// ops, attempts, retries-per-op, and failure percentages.
func ContentionRow(ops, attempts, llxFails, scxFails int64) []any {
	retriesPerOp := 0.0
	if ops > 0 {
		retriesPerOp = float64(attempts-ops) / float64(ops)
	}
	return []any{ops, attempts, retriesPerOp,
		RatePct(llxFails, attempts), RatePct(scxFails, attempts)}
}

// Table accumulates rows and renders them as an aligned text table.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// formatFloat renders large values without scientific noise and small ones
// with useful precision.
func formatFloat(v float64) string {
	switch {
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// Rows returns the formatted rows added so far; the slice is shared, do not
// modify. Intended for tests and programmatic consumers.
func (t *Table) Rows() [][]string { return t.rows }

// Headers returns the column headers.
func (t *Table) Headers() []string { return t.headers }

// WriteTo renders the table.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "%s\n%s\n", t.title, strings.Repeat("-", len(t.title)))
	}
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(t.headers, "\t"))
	for _, row := range t.rows {
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	tw.Flush()
	b.WriteByte('\n')
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	if _, err := t.WriteTo(&b); err != nil {
		return err.Error()
	}
	return b.String()
}
