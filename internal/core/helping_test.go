package core_test

import (
	"sync/atomic"
	"testing"
	"time"

	"pragmaprim/internal/core"
)

// stall arranges for the first goroutine that reaches a hook call matching
// match to block until release is closed. This simulates a process that
// crashes or stalls mid-SCX (the paper's asynchronous-model failure), forcing
// other processes to help the SCX to completion.
type stall struct {
	claimed atomic.Bool
	stalled chan *core.SCXRecord
	release chan struct{}
}

func newStall(t *testing.T, match func(k core.StepKind, u *core.SCXRecord, r *core.Record) bool) *stall {
	t.Helper()
	s := &stall{
		stalled: make(chan *core.SCXRecord, 1),
		release: make(chan struct{}),
	}
	core.SetStepHook(func(k core.StepKind, u *core.SCXRecord, r *core.Record) {
		if match(k, u, r) && s.claimed.CompareAndSwap(false, true) {
			s.stalled <- u
			<-s.release
		}
	})
	t.Cleanup(func() { core.SetStepHook(nil) })
	return s
}

func (s *stall) wait(t *testing.T) *core.SCXRecord {
	t.Helper()
	select {
	case u := <-s.stalled:
		return u
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for the stalled helper")
		return nil
	}
}

// TestHelperCompletesStalledUpdateCAS stalls the SCX owner immediately before
// its update CAS; a second process performing LLX on a frozen record must
// help the SCX to completion (cooperative technique, Section 4).
func TestHelperCompletesStalledUpdateCAS(t *testing.T) {
	s := newStall(t, func(k core.StepKind, _ *core.SCXRecord, _ *core.Record) bool {
		return k == core.StepUpdateCAS
	})

	r := core.NewRecord(1, []any{"old"})
	pA := core.NewProcess()
	mustLLX(t, pA, r)

	done := make(chan bool)
	go func() {
		done <- pA.SCX([]*core.Record{r}, nil, r.Field(0), "new")
	}()
	u := s.wait(t)

	// r is frozen for the in-progress SCX, so pB's LLX fails — but on the way
	// it must help the SCX finish its update CAS and commit step.
	pB := core.NewProcess()
	if _, st := pB.LLX(r); st != core.LLXFail {
		t.Fatalf("LLX on frozen record = %v, want Fail", st)
	}
	if got := u.State(); got != core.StateCommitted {
		t.Fatalf("after helping, SCX-record state = %v, want Committed", got)
	}
	if got := r.Read(0); got != "new" {
		t.Fatalf("after helping, field = %v, want new", got)
	}
	if pB.Metrics.UpdateCASSuccesses != 1 {
		t.Errorf("helper update CAS successes = %d, want 1", pB.Metrics.UpdateCASSuccesses)
	}

	// A fresh LLX by pB now succeeds with the new value.
	snap := mustLLX(t, pB, r)
	if snap[0] != "new" {
		t.Errorf("post-help snapshot = %v, want new", snap[0])
	}

	// The stalled owner resumes: its own update CAS fails harmlessly and it
	// still reports success (the operation committed exactly once).
	close(s.release)
	if !<-done {
		t.Fatal("owner SCX reported failure though its operation committed")
	}
	if pA.Metrics.UpdateCASSuccesses != 0 {
		t.Errorf("owner update CAS successes = %d, want 0 (helper won)", pA.Metrics.UpdateCASSuccesses)
	}
	if got := r.Read(0); got != "new" {
		t.Errorf("field after owner resumed = %v (double apply?)", got)
	}
}

// TestHelperCompletesPartialFreeze stalls the owner after it froze the first
// of two records but before it freezes the second; the helper must finish the
// freezing loop itself.
func TestHelperCompletesPartialFreeze(t *testing.T) {
	r1 := core.NewRecord(1, []any{1})
	r2 := core.NewRecord(1, []any{2})

	s := newStall(t, func(k core.StepKind, _ *core.SCXRecord, r *core.Record) bool {
		return k == core.StepFreezingCAS && r == r2
	})

	pA := core.NewProcess()
	mustLLX(t, pA, r1)
	mustLLX(t, pA, r2)

	done := make(chan bool)
	go func() {
		done <- pA.SCX([]*core.Record{r1, r2}, nil, r1.Field(0), 10)
	}()
	u := s.wait(t)

	pB := core.NewProcess()
	if _, st := pB.LLX(r1); st != core.LLXFail {
		t.Fatalf("LLX(r1) = %v, want Fail (frozen for in-progress SCX)", st)
	}
	if got := u.State(); got != core.StateCommitted {
		t.Fatalf("state after help = %v, want Committed", got)
	}
	if pB.Metrics.FreezingCASSuccesses != 1 {
		t.Errorf("helper froze %d records, want 1 (r2)", pB.Metrics.FreezingCASSuccesses)
	}
	if got := r1.Read(0); got != 10 {
		t.Errorf("r1 field = %v, want 10", got)
	}

	close(s.release)
	if !<-done {
		t.Fatal("owner SCX reported failure")
	}
	// The owner's resumed freezing CAS on r2 failed, but it observed
	// r2.info == u and proceeded (line 27).
	if pA.Metrics.FreezingCASSuccesses != 1 {
		t.Errorf("owner freezing successes = %d, want 1 (only r1)", pA.Metrics.FreezingCASSuccesses)
	}
}

// TestFrozenCheckReturnsTrueAfterRefreeze exercises line 31: the owner's
// resumed freezing CAS fails because the record has since been frozen by a
// *later* SCX, but allFrozen is already set, so the owner concludes its SCX
// committed.
func TestFrozenCheckReturnsTrueAfterRefreeze(t *testing.T) {
	r1 := core.NewRecord(1, []any{1})
	r2 := core.NewRecord(1, []any{2})

	s := newStall(t, func(k core.StepKind, _ *core.SCXRecord, r *core.Record) bool {
		return k == core.StepFreezingCAS && r == r2
	})

	pA := core.NewProcess()
	mustLLX(t, pA, r1)
	mustLLX(t, pA, r2)

	done := make(chan bool)
	go func() {
		done <- pA.SCX([]*core.Record{r1, r2}, nil, r1.Field(0), 10)
	}()
	u := s.wait(t)

	// Help the stalled SCX to completion, then immediately hit r2 with a new
	// SCX so that r2.info no longer points at u when the owner resumes.
	pB := core.NewProcess()
	if _, st := pB.LLX(r1); st != core.LLXFail {
		t.Fatalf("LLX(r1) = %v, want Fail", st)
	}
	if u.State() != core.StateCommitted {
		t.Fatal("helping did not commit the stalled SCX")
	}
	mustLLX(t, pB, r2)
	if !pB.SCX([]*core.Record{r2}, nil, r2.Field(0), 20) {
		t.Fatal("pB's follow-up SCX on r2 failed")
	}

	close(s.release)
	if !<-done {
		t.Fatal("owner must report success via the frozen check (line 31)")
	}
	if got := r1.Read(0); got != 10 {
		t.Errorf("r1 = %v, want 10", got)
	}
	if got := r2.Read(0); got != 20 {
		t.Errorf("r2 = %v, want 20", got)
	}
}

// TestLLXHelpsFinalizingSCXAndReturnsFinalized covers the line-12 path where
// the LLX itself helps an in-progress SCX that has already marked the record,
// then reports Finalized.
func TestLLXHelpsFinalizingSCXAndReturnsFinalized(t *testing.T) {
	r := core.NewRecord(1, []any{"x"})
	dst := core.NewRecord(1, []any{nil})

	s := newStall(t, func(k core.StepKind, _ *core.SCXRecord, _ *core.Record) bool {
		return k == core.StepUpdateCAS
	})

	pA := core.NewProcess()
	mustLLX(t, pA, dst)
	mustLLX(t, pA, r)

	done := make(chan bool)
	go func() {
		done <- pA.SCX([]*core.Record{dst, r}, []*core.Record{r}, dst.Field(0), "moved")
	}()
	u := s.wait(t)

	// r is marked (mark steps precede the update CAS) and its SCX is still
	// InProgress. pB's LLX must help it commit and then return Finalized.
	pB := core.NewProcess()
	if _, st := pB.LLX(r); st != core.LLXFinalized {
		t.Fatalf("LLX = %v, want Finalized", st)
	}
	if u.State() != core.StateCommitted {
		t.Fatal("LLX returned Finalized before the SCX committed")
	}
	if got := dst.Read(0); got != "moved" {
		t.Errorf("dst = %v, want moved (helper must run the update CAS first)", got)
	}

	close(s.release)
	if !<-done {
		t.Fatal("owner SCX reported failure")
	}
}

// TestConflictAbortsExactlyOne: two SCXs race on overlapping V sequences with
// a stalled winner; the loser must abort itself (not block) and the winner's
// update must survive.
func TestConflictAbortsOnInProgressFreeze(t *testing.T) {
	r := core.NewRecord(1, []any{0})
	other := core.NewRecord(1, []any{0})

	s := newStall(t, func(k core.StepKind, _ *core.SCXRecord, rr *core.Record) bool {
		return k == core.StepUpdateCAS
	})

	pA := core.NewProcess()
	mustLLX(t, pA, r)

	done := make(chan bool)
	go func() {
		done <- pA.SCX([]*core.Record{r}, nil, r.Field(0), 1)
	}()
	u := s.wait(t)

	// pB LLXed r BEFORE pA's SCX froze it, so its infoFields entry is stale.
	// Its freezing CAS fails against the in-progress u... but first it needs
	// a link; LLX now would just help. Instead link other and take the fast
	// abort: LLX(other) then SCX over {other, r}? pB has no link for r, so we
	// take the simpler observable: LLX(r) helps u commit (covered elsewhere),
	// after which a stale-free SCX succeeds. Here we assert the stalled
	// owner still wins exactly once.
	pB := core.NewProcess()
	if _, st := pB.LLX(other); st != core.LLXOK {
		t.Fatalf("LLX(other) failed: %v", st)
	}
	if !pB.SCX([]*core.Record{other}, nil, other.Field(0), 5) {
		t.Fatal("disjoint SCX failed while another SCX is stalled")
	}

	if u.State() != core.StateInProgress {
		t.Fatal("disjoint SCX must not have helped or aborted u")
	}
	close(s.release)
	if !<-done {
		t.Fatal("owner SCX failed")
	}
	if got := r.Read(0); got != 1 {
		t.Errorf("r = %v, want 1", got)
	}
	if got := other.Read(0); got != 5 {
		t.Errorf("other = %v, want 5", got)
	}
}
