package core_test

import (
	"testing"

	"pragmaprim/internal/core"
)

// newPair returns a record with two mutable fields (0: count, 1: next) and an
// immutable key, mirroring the paper's multiset node shape.
func newPair(t *testing.T, key, count int, next any) *core.Record {
	t.Helper()
	return core.NewRecord(2, []any{count, next}, key)
}

func mustLLX(t *testing.T, p *core.Process, r *core.Record) core.Snapshot {
	t.Helper()
	snap, st := p.LLX(r)
	if st != core.LLXOK {
		t.Fatalf("LLX = %v, want OK", st)
	}
	return snap
}

func TestNewRecordInitialState(t *testing.T) {
	r := core.NewRecord(3, []any{1, "two"}, "key", 42)
	if got := r.NumMutable(); got != 3 {
		t.Errorf("NumMutable = %d, want 3", got)
	}
	if got := r.NumImmutable(); got != 2 {
		t.Errorf("NumImmutable = %d, want 2", got)
	}
	if got := r.Read(0); got != 1 {
		t.Errorf("Read(0) = %v, want 1", got)
	}
	if got := r.Read(1); got != "two" {
		t.Errorf("Read(1) = %v, want two", got)
	}
	if got := r.Read(2); got != nil {
		t.Errorf("Read(2) = %v, want nil (defaulted)", got)
	}
	if got := r.Immutable(0); got != "key" {
		t.Errorf("Immutable(0) = %v, want key", got)
	}
	if got := r.Immutable(1); got != 42 {
		t.Errorf("Immutable(1) = %v, want 42", got)
	}
	if r.Finalized() {
		t.Error("fresh record reports Finalized")
	}
	if r.Frozen() {
		t.Error("fresh record reports Frozen")
	}
}

func TestLLXReturnsSnapshot(t *testing.T) {
	p := core.NewProcess()
	r := newPair(t, 7, 3, nil)
	snap := mustLLX(t, p, r)
	if len(snap) != 2 {
		t.Fatalf("snapshot length = %d, want 2", len(snap))
	}
	if snap[0] != 3 || snap[1] != nil {
		t.Errorf("snapshot = %v, want [3 nil]", snap)
	}
	if !p.HasLink(r) {
		t.Error("LLX did not record a link")
	}
}

func TestSCXUpdatesField(t *testing.T) {
	p := core.NewProcess()
	r := newPair(t, 7, 3, nil)
	mustLLX(t, p, r)
	if !p.SCX([]*core.Record{r}, nil, r.Field(0), 8) {
		t.Fatal("uncontended SCX failed")
	}
	if got := r.Read(0); got != 8 {
		t.Errorf("Read(0) after SCX = %v, want 8", got)
	}
	if got := r.Read(1); got != nil {
		t.Errorf("Read(1) changed unexpectedly: %v", got)
	}
	if r.Finalized() {
		t.Error("record finalized though R was empty")
	}
	if p.HasLink(r) {
		t.Error("SCX did not consume the link")
	}
}

func TestSCXConsumesLinkEvenOnSuccess(t *testing.T) {
	p := core.NewProcess()
	r := newPair(t, 1, 1, nil)
	mustLLX(t, p, r)
	if !p.SCX([]*core.Record{r}, nil, r.Field(0), 2) {
		t.Fatal("SCX failed")
	}
	// A second SCX without a fresh LLX is a precondition violation.
	defer func() {
		if recover() == nil {
			t.Error("second SCX without LLX did not panic")
		}
	}()
	p.SCX([]*core.Record{r}, nil, r.Field(0), 3)
}

func TestSCXFinalizesRecords(t *testing.T) {
	p := core.NewProcess()
	a := newPair(t, 1, 1, nil)
	b := newPair(t, 2, 2, nil)
	mustLLX(t, p, a)
	mustLLX(t, p, b)
	if !p.SCX([]*core.Record{a, b}, []*core.Record{b}, a.Field(1), "bye") {
		t.Fatal("SCX failed")
	}
	if !b.Finalized() {
		t.Error("b not finalized though it was in R")
	}
	if a.Finalized() {
		t.Error("a finalized though it was not in R")
	}
	// P1: an LLX beginning after a successful finalizing SCX returns
	// Finalized.
	if _, st := p.LLX(b); st != core.LLXFinalized {
		t.Errorf("LLX(finalized) = %v, want Finalized", st)
	}
	// The non-finalized record stays fully usable.
	snap := mustLLX(t, p, a)
	if snap[1] != "bye" {
		t.Errorf("a.next = %v, want bye", snap[1])
	}
}

func TestSCXFailsAfterConflictingSCX(t *testing.T) {
	p1 := core.NewProcess()
	p2 := core.NewProcess()
	r := newPair(t, 1, 10, nil)

	mustLLX(t, p1, r)
	mustLLX(t, p2, r)
	if !p2.SCX([]*core.Record{r}, nil, r.Field(0), 11) {
		t.Fatal("p2 SCX failed")
	}
	// C4: p1's SCX must fail because r changed since p1's linked LLX.
	if p1.SCX([]*core.Record{r}, nil, r.Field(0), 12) {
		t.Fatal("p1 SCX succeeded despite intervening SCX")
	}
	if got := r.Read(0); got != 11 {
		t.Errorf("field = %v, want 11 (failed SCX must not write)", got)
	}
}

func TestSCXOnFinalizedRecordFails(t *testing.T) {
	p1 := core.NewProcess()
	p2 := core.NewProcess()
	r := newPair(t, 1, 10, nil)

	mustLLX(t, p1, r)
	mustLLX(t, p2, r)
	if !p2.SCX([]*core.Record{r}, []*core.Record{r}, r.Field(0), 11) {
		t.Fatal("finalizing SCX failed")
	}
	if p1.SCX([]*core.Record{r}, nil, r.Field(0), 12) {
		t.Fatal("SCX succeeded on a finalized record")
	}
	if !r.Finalized() {
		t.Error("record not finalized")
	}
}

func TestFinalizedRecordNeverChanges(t *testing.T) {
	p := core.NewProcess()
	r := newPair(t, 1, 10, "x")
	mustLLX(t, p, r)
	if !p.SCX([]*core.Record{r}, []*core.Record{r}, r.Field(0), 11) {
		t.Fatal("SCX failed")
	}
	if got := r.Read(0); got != 11 {
		t.Errorf("final value = %v, want 11", got)
	}
	if got := r.Read(1); got != "x" {
		t.Errorf("untouched field = %v, want x", got)
	}
	// Every later LLX observes Finalized (P1), from any process.
	for i := 0; i < 3; i++ {
		q := core.NewProcess()
		if _, st := q.LLX(r); st != core.LLXFinalized {
			t.Fatalf("LLX %d = %v, want Finalized", i, st)
		}
	}
}

func TestVLXSucceedsWhenUnchanged(t *testing.T) {
	p := core.NewProcess()
	a := newPair(t, 1, 1, nil)
	b := newPair(t, 2, 2, nil)
	mustLLX(t, p, a)
	mustLLX(t, p, b)
	if !p.VLX([]*core.Record{a, b}) {
		t.Fatal("VLX failed on unchanged records")
	}
	// A successful VLX preserves the links: it may be repeated.
	if !p.VLX([]*core.Record{a, b}) {
		t.Fatal("repeated VLX failed")
	}
}

func TestVLXFailsAfterChange(t *testing.T) {
	p1 := core.NewProcess()
	p2 := core.NewProcess()
	a := newPair(t, 1, 1, nil)
	b := newPair(t, 2, 2, nil)

	mustLLX(t, p1, a)
	mustLLX(t, p1, b)
	mustLLX(t, p2, b)
	if !p2.SCX([]*core.Record{b}, nil, b.Field(0), 3) {
		t.Fatal("p2 SCX failed")
	}
	if p1.VLX([]*core.Record{a, b}) {
		t.Fatal("VLX succeeded despite an intervening SCX on b")
	}
	// An unsuccessful VLX consumes the links.
	if p1.HasLink(a) || p1.HasLink(b) {
		t.Error("failed VLX left links in place")
	}
}

func TestLLXAfterSCXSeesNewValue(t *testing.T) {
	p := core.NewProcess()
	r := newPair(t, 1, 0, nil)
	for i := 1; i <= 100; i++ {
		mustLLX(t, p, r)
		if !p.SCX([]*core.Record{r}, nil, r.Field(0), i) {
			t.Fatalf("SCX %d failed", i)
		}
		snap := mustLLX(t, p, r)
		if snap[0] != i {
			t.Fatalf("snapshot after SCX %d = %v", i, snap[0])
		}
	}
}

func TestSCXSameValueTwiceIsABAFree(t *testing.T) {
	// The classic ABA scenario: write v, write w, write v again. Because SCX
	// boxes values freshly, a process that LLXed before the first write must
	// still observe interference.
	p1 := core.NewProcess()
	p2 := core.NewProcess()
	r := core.NewRecord(2, []any{"v", nil}, 1)

	mustLLX(t, p1, r)

	for _, val := range []string{"w", "v"} {
		mustLLX(t, p2, r)
		if !p2.SCX([]*core.Record{r}, nil, r.Field(0), val) {
			t.Fatalf("p2 SCX(%q) failed", val)
		}
	}
	if got := r.Read(0); got != "v" {
		t.Fatalf("field = %v, want v", got)
	}
	// p1's view is stale even though the value matches: its SCX must fail.
	if p1.SCX([]*core.Record{r}, nil, r.Field(0), "u") {
		t.Fatal("ABA: stale SCX succeeded after value returned to v")
	}
}

func TestSCXMultiRecordDependsOnAll(t *testing.T) {
	p1 := core.NewProcess()
	p2 := core.NewProcess()
	a := newPair(t, 1, 1, nil)
	b := newPair(t, 2, 2, nil)
	c := newPair(t, 3, 3, nil)

	mustLLX(t, p1, a)
	mustLLX(t, p1, b)
	mustLLX(t, p1, c)

	// Change only c.
	mustLLX(t, p2, c)
	if !p2.SCX([]*core.Record{c}, nil, c.Field(0), 30) {
		t.Fatal("p2 SCX failed")
	}

	// p1 depends on a, b and c; the change to c must doom it.
	if p1.SCX([]*core.Record{a, b, c}, nil, a.Field(0), 10) {
		t.Fatal("SCX succeeded though c changed since its linked LLX")
	}
	if got := a.Read(0); got != 1 {
		t.Errorf("a.count = %v, want 1", got)
	}
}

func TestZeroFieldRecord(t *testing.T) {
	// Records with no mutable fields (e.g. BST leaves) may appear in V and R.
	p := core.NewProcess()
	leaf := core.NewRecord(0, nil, "leafkey")
	parent := newPair(t, 0, 0, leaf)

	snap, st := p.LLX(leaf)
	if st != core.LLXOK || len(snap) != 0 {
		t.Fatalf("LLX(leaf) = (%v, %v), want empty snapshot", snap, st)
	}
	mustLLX(t, p, parent)
	if !p.SCX([]*core.Record{parent, leaf}, []*core.Record{leaf}, parent.Field(1), nil) {
		t.Fatal("SCX replacing leaf failed")
	}
	if !leaf.Finalized() {
		t.Error("leaf not finalized")
	}
	if got := parent.Read(1); got != nil {
		t.Errorf("parent.next = %v, want nil", got)
	}
}

func TestLLXStatusAndStateStrings(t *testing.T) {
	cases := map[string]string{
		core.LLXOK.String():           "OK",
		core.LLXFinalized.String():    "Finalized",
		core.LLXFail.String():         "Fail",
		core.LLXStatus(99).String():   "InvalidStatus",
		core.StateInProgress.String(): "InProgress",
		core.StateCommitted.String():  "Committed",
		core.StateAborted.String():    "Aborted",
		core.State(99).String():       "InvalidState",
		core.StepFreezingCAS.String(): "FreezingCAS",
		core.StepFrozenCheck.String(): "FrozenCheck",
		core.StepAbort.String():       "Abort",
		core.StepFrozen.String():      "Frozen",
		core.StepMark.String():        "Mark",
		core.StepUpdateCAS.String():   "UpdateCAS",
		core.StepCommit.String():      "Commit",
		core.StepKind(99).String():    "InvalidStep",
	}
	for got, want := range cases {
		if got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestPreconditionPanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		})
	}

	expectPanic("NegativeFields", func() { core.NewRecord(-1, nil) })
	expectPanic("TooManyInitial", func() { core.NewRecord(1, []any{1, 2}) })
	expectPanic("FieldOutOfRange", func() { newPair(t, 1, 1, nil).Field(5) })
	expectPanic("LLXNil", func() { core.NewProcess().LLX(nil) })
	expectPanic("SCXEmptyV", func() {
		p := core.NewProcess()
		r := newPair(t, 1, 1, nil)
		mustLLX(t, p, r)
		p.SCX(nil, nil, r.Field(0), 1)
	})
	expectPanic("SCXNoLink", func() {
		p := core.NewProcess()
		r := newPair(t, 1, 1, nil)
		p.SCX([]*core.Record{r}, nil, r.Field(0), 1)
	})
	expectPanic("SCXFldNotInV", func() {
		p := core.NewProcess()
		r := newPair(t, 1, 1, nil)
		other := newPair(t, 2, 2, nil)
		mustLLX(t, p, r)
		mustLLX(t, p, other)
		p.SCX([]*core.Record{r}, nil, other.Field(0), 1)
	})
	expectPanic("SCXRNotSubsetOfV", func() {
		p := core.NewProcess()
		r := newPair(t, 1, 1, nil)
		other := newPair(t, 2, 2, nil)
		mustLLX(t, p, r)
		mustLLX(t, p, other)
		p.SCX([]*core.Record{r}, []*core.Record{other}, r.Field(0), 1)
	})
	expectPanic("SCXNilInV", func() {
		p := core.NewProcess()
		r := newPair(t, 1, 1, nil)
		mustLLX(t, p, r)
		p.SCX([]*core.Record{r, nil}, nil, r.Field(0), 1)
	})
	expectPanic("VLXNoLink", func() {
		p := core.NewProcess()
		r := newPair(t, 1, 1, nil)
		p.VLX([]*core.Record{r})
	})
}
