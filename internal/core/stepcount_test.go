package core_test

import (
	"fmt"
	"testing"

	"pragmaprim/internal/core"
)

// makeChain builds n two-field records.
func makeChain(n int) []*core.Record {
	recs := make([]*core.Record, n)
	for i := range recs {
		recs[i] = core.NewRecord(2, []any{i, nil}, i)
	}
	return recs
}

// TestStepCountUncontendedSCX reproduces the paper's central cost claim
// (Section 1): "If an SCX encounters no contention with any other SCX and
// finalizes f Data-records, then a total of k+1 CAS steps and f+2 writes are
// used for the SCX and the k LLXs on which it depends."
func TestStepCountUncontendedSCX(t *testing.T) {
	for k := 1; k <= 6; k++ {
		for f := 0; f <= k; f++ {
			t.Run(fmt.Sprintf("k=%d/f=%d", k, f), func(t *testing.T) {
				p := core.NewProcess()
				recs := makeChain(k)
				for _, r := range recs {
					mustLLX(t, p, r)
				}
				// Finalize the last f records; fld must belong to a
				// non-finalized record when f < k, else any record in V.
				rset := recs[k-f:]
				p.Metrics.Reset()
				if !p.SCX(recs, rset, recs[0].Field(1), "new") {
					t.Fatal("uncontended SCX failed")
				}
				if got, want := p.Metrics.CASSteps(), int64(k+1); got != want {
					t.Errorf("CAS steps = %d, want k+1 = %d", got, want)
				}
				if got, want := p.Metrics.WriteSteps(), int64(f+2); got != want {
					t.Errorf("write steps = %d, want f+2 = %d", got, want)
				}
				if p.Metrics.FreezingCASSuccesses != int64(k) {
					t.Errorf("freezing CAS successes = %d, want %d",
						p.Metrics.FreezingCASSuccesses, k)
				}
				if p.Metrics.UpdateCASSuccesses != 1 {
					t.Errorf("update CAS successes = %d, want 1",
						p.Metrics.UpdateCASSuccesses)
				}
				if p.Metrics.AbortSteps != 0 {
					t.Errorf("abort steps = %d, want 0", p.Metrics.AbortSteps)
				}
			})
		}
	}
}

// TestStepCountVLX reproduces the claim that "a VLX on k Data-records only
// requires reading k words of memory" (Section 1).
func TestStepCountVLX(t *testing.T) {
	for k := 1; k <= 8; k++ {
		p := core.NewProcess()
		recs := makeChain(k)
		for _, r := range recs {
			mustLLX(t, p, r)
		}
		p.Metrics.Reset()
		if !p.VLX(recs) {
			t.Fatalf("k=%d: VLX failed", k)
		}
		if got := p.Metrics.VLXReads; got != int64(k) {
			t.Errorf("k=%d: VLX reads = %d, want %d", k, got, k)
		}
		if got := p.Metrics.CASSteps(); got != 0 {
			t.Errorf("k=%d: VLX performed %d CAS steps, want 0", k, got)
		}
	}
}

// TestLLXPerformsNoCAS verifies LLX itself is CAS-free when it does not help.
func TestLLXPerformsNoCAS(t *testing.T) {
	p := core.NewProcess()
	r := core.NewRecord(2, []any{1, 2})
	p.Metrics.Reset()
	mustLLX(t, p, r)
	if got := p.Metrics.CASSteps(); got != 0 {
		t.Errorf("LLX performed %d CAS steps, want 0", got)
	}
	if got := p.Metrics.WriteSteps(); got != 0 {
		t.Errorf("LLX performed %d write steps, want 0", got)
	}
}

// TestStepCountFailedSCX checks the cheap-failure property: an SCX that loses
// on its first freeze performs 1 CAS and 1 abort write.
func TestStepCountFailedSCX(t *testing.T) {
	p1 := core.NewProcess()
	p2 := core.NewProcess()
	r := core.NewRecord(1, []any{0})
	mustLLX(t, p1, r)
	mustLLX(t, p2, r)
	if !p2.SCX([]*core.Record{r}, nil, r.Field(0), 1) {
		t.Fatal("p2 SCX failed")
	}
	p1.Metrics.Reset()
	if p1.SCX([]*core.Record{r}, nil, r.Field(0), 2) {
		t.Fatal("doomed SCX succeeded")
	}
	if got := p1.Metrics.CASSteps(); got != 1 {
		t.Errorf("failed SCX CAS steps = %d, want 1", got)
	}
	if got := p1.Metrics.AbortSteps; got != 1 {
		t.Errorf("failed SCX abort steps = %d, want 1", got)
	}
	if got := p1.Metrics.UpdateCASAttempts; got != 0 {
		t.Errorf("failed SCX attempted %d update CASes, want 0", got)
	}
}

// TestMetricsAddAndReset covers the aggregation helpers used by the harness.
func TestMetricsAddAndReset(t *testing.T) {
	var a, b core.Metrics
	a.FreezingCASAttempts = 3
	a.UpdateCASAttempts = 1
	a.MarkSteps = 2
	b.FreezingCASAttempts = 4
	b.CommitSteps = 5
	b.VLXReads = 6

	var sum core.Metrics
	sum.Add(&a)
	sum.Add(&b)
	if sum.FreezingCASAttempts != 7 {
		t.Errorf("FreezingCASAttempts = %d, want 7", sum.FreezingCASAttempts)
	}
	if sum.CASSteps() != 8 {
		t.Errorf("CASSteps = %d, want 8", sum.CASSteps())
	}
	if sum.WriteSteps() != 7 {
		t.Errorf("WriteSteps = %d, want 7", sum.WriteSteps())
	}
	if sum.VLXReads != 6 {
		t.Errorf("VLXReads = %d, want 6", sum.VLXReads)
	}
	sum.Reset()
	if sum != (core.Metrics{}) {
		t.Errorf("Reset left %+v", sum)
	}
}
