package core_test

import (
	"testing"

	"pragmaprim/internal/core"
)

// TestSCXWithRepeatedRecordInV covers the paper's Section 4.1 remark that,
// while a structure is changing, a V sequence "may have repeated elements":
// the second freezing CAS on the repeated record fails but observes
// r.info == scxPtr and proceeds, so the SCX still succeeds.
func TestSCXWithRepeatedRecordInV(t *testing.T) {
	p := core.NewProcess()
	a := core.NewRecord(1, []any{1})
	b := core.NewRecord(1, []any{2})
	mustLLX(t, p, a)
	mustLLX(t, p, b)
	if !p.SCX([]*core.Record{a, b, a}, nil, a.Field(0), 10) {
		t.Fatal("SCX with repeated record failed")
	}
	if got := a.Read(0); got != 10 {
		t.Errorf("a = %v, want 10", got)
	}
	// Exactly 2 distinct freezes succeeded; the repeat was a benign no-op.
	if got := p.Metrics.FreezingCASSuccesses; got != 2 {
		t.Errorf("freezing successes = %d, want 2", got)
	}
	if got := p.Metrics.FreezingCASAttempts; got != 3 {
		t.Errorf("freezing attempts = %d, want 3", got)
	}
}

// TestSCXWithRepeatedRecordInR: finalizing a repeated record marks it twice,
// harmlessly.
func TestSCXWithRepeatedRecordInR(t *testing.T) {
	p := core.NewProcess()
	a := core.NewRecord(1, []any{1})
	b := core.NewRecord(1, []any{2})
	mustLLX(t, p, a)
	mustLLX(t, p, b)
	if !p.SCX([]*core.Record{a, b}, []*core.Record{b, b}, a.Field(0), 10) {
		t.Fatal("SCX with repeated finalizee failed")
	}
	if !b.Finalized() {
		t.Error("b not finalized")
	}
	if a.Finalized() {
		t.Error("a finalized")
	}
}

// TestReadsOfFinalizedRecordStayStable: plain reads of a finalized record
// keep returning the frozen-in values forever.
func TestReadsOfFinalizedRecordStayStable(t *testing.T) {
	p := core.NewProcess()
	dst := core.NewRecord(1, []any{0})
	r := core.NewRecord(2, []any{42, "x"}, "imm")
	mustLLX(t, p, dst)
	mustLLX(t, p, r)
	if !p.SCX([]*core.Record{dst, r}, []*core.Record{r}, dst.Field(0), 1) {
		t.Fatal("SCX failed")
	}
	for i := 0; i < 5; i++ {
		if got := r.Read(0); got != 42 {
			t.Fatalf("Read(0) = %v", got)
		}
		if got := r.Read(1); got != "x" {
			t.Fatalf("Read(1) = %v", got)
		}
		if got := r.Immutable(0); got != "imm" {
			t.Fatalf("Immutable(0) = %v", got)
		}
	}
}

// TestManySequentialSCXsReuseProcess: a single Process performing thousands
// of transactions must not leak table state between them.
func TestManySequentialSCXsReuseProcess(t *testing.T) {
	p := core.NewProcess()
	recs := make([]*core.Record, 8)
	for i := range recs {
		recs[i] = core.NewRecord(1, []any{0})
	}
	for i := 0; i < 5000; i++ {
		a := recs[i%len(recs)]
		b := recs[(i+3)%len(recs)]
		if a == b {
			continue
		}
		mustLLX(t, p, a)
		mustLLX(t, p, b)
		if !p.SCX([]*core.Record{a, b}, nil, a.Field(0), i) {
			t.Fatalf("iteration %d: SCX failed", i)
		}
		if p.HasLink(a) || p.HasLink(b) {
			t.Fatalf("iteration %d: links leaked", i)
		}
	}
}
