package core

// StepKind identifies a shared-memory step of the LLX/SCX algorithm, used by
// the test instrumentation hook to observe and perturb executions.
type StepKind int

// Steps of the Help routine and LLX, in paper terminology.
const (
	StepFreezingCAS StepKind = iota + 1 // about to attempt a freezing CAS (line 26)
	StepFrozenCheck                     // about to read allFrozen after a failed freeze (line 29)
	StepAbort                           // about to perform an abort step (line 34)
	StepFrozen                          // about to perform the frozen step (line 37)
	StepMark                            // about to perform a mark step (line 38)
	StepUpdateCAS                       // about to attempt the update CAS (line 39)
	StepCommit                          // about to perform the commit step (line 41)
)

// String returns the step name for diagnostics.
func (k StepKind) String() string {
	switch k {
	case StepFreezingCAS:
		return "FreezingCAS"
	case StepFrozenCheck:
		return "FrozenCheck"
	case StepAbort:
		return "Abort"
	case StepFrozen:
		return "Frozen"
	case StepMark:
		return "Mark"
	case StepUpdateCAS:
		return "UpdateCAS"
	case StepCommit:
		return "Commit"
	default:
		return "InvalidStep"
	}
}

// stepHook, when non-nil, is invoked immediately before each step of the Help
// routine with the step kind, the SCX-record being helped, and the record
// being operated on (nil for steps that do not target a specific record).
//
// The hook exists so tests can (a) record the state/allFrozen transition
// sequences of Figures 2, 3 and 7 and assert they match the paper's diagrams,
// and (b) stall a helper at a chosen step — the moral equivalent of a process
// crash in the paper's asynchronous model — forcing other processes to help
// the SCX to completion.
//
// It must be installed before any Process is used concurrently and may be
// called from many goroutines; the hook body is responsible for its own
// synchronization. Production code leaves it nil, which costs one
// predictable branch per step.
var stepHook func(k StepKind, u *SCXRecord, r *Record)

// SetStepHook installs (or with nil, removes) the test instrumentation hook.
// It must not be called while any Process is active.
func SetStepHook(h func(k StepKind, u *SCXRecord, r *Record)) { stepHook = h }

func callHook(k StepKind, u *SCXRecord, r *Record) {
	if stepHook != nil {
		stepHook(k, u, r)
	}
}
