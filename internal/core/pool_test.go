package core

import (
	"sync"
	"testing"
)

func TestHandleReusedAfterRelease(t *testing.T) {
	var pool ProcessPool
	h := pool.Acquire()
	h.SetScratch("engine-state")
	p := h.Process()
	h.Release()
	if got := pool.pooled(); got != 1 {
		t.Fatalf("pooled = %d, want 1", got)
	}
	h2 := pool.Acquire()
	if h2 != h {
		t.Fatal("Acquire did not reuse the released Handle")
	}
	if h2.Process() != p {
		t.Fatal("reacquired Handle has a different Process")
	}
	if h2.Scratch() != "engine-state" {
		t.Fatal("scratch state did not survive the Release/Acquire cycle")
	}
	if got := pool.pooled(); got != 0 {
		t.Fatalf("pooled after reacquire = %d, want 0", got)
	}
}

func TestPoolMintsWhenEmpty(t *testing.T) {
	var pool ProcessPool
	a := pool.Acquire()
	b := pool.Acquire()
	if a == b {
		t.Fatal("two live acquisitions returned the same Handle")
	}
	a.Release()
	b.Release()
	if got := pool.pooled(); got != 2 {
		t.Fatalf("pooled = %d, want 2", got)
	}
}

func TestPoolOverflowDropsHandles(t *testing.T) {
	var pool ProcessPool
	handles := make([]*Handle, poolSlots+5)
	for i := range handles {
		handles[i] = pool.Acquire()
	}
	for _, h := range handles {
		h.Release()
	}
	if got := pool.pooled(); got != poolSlots {
		t.Fatalf("pooled = %d, want the %d-slot capacity", got, poolSlots)
	}
}

func TestPoolLessHandleReleaseIsNoop(t *testing.T) {
	h := NewHandle()
	h.Release() // must not panic or register anywhere
	if h.Process() == nil {
		t.Fatal("pool-less Handle has no Process")
	}
}

// TestPoolConcurrentAcquireRelease hammers one pool from many goroutines
// under -race: no Handle may ever be owned twice. Each worker stamps the
// Handle's scratch slot with its identity and checks it back before
// releasing — a double-acquire would let another worker overwrite it.
func TestPoolConcurrentAcquireRelease(t *testing.T) {
	var pool ProcessPool
	const workers = 8
	const iters = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				h := pool.Acquire()
				token := w*iters + i
				h.SetScratch(token)
				if got := h.Scratch(); got != token {
					t.Errorf("handle shared between owners: scratch = %v, want %v", got, token)
					return
				}
				h.Release()
			}
		}(w)
	}
	wg.Wait()
}

// TestPoolExclusiveOwnership leaves the pool nearly empty and makes workers
// contend for the same few handles, counting concurrent owners per Handle
// through the Process's link table identity. Value-CAS on the slots must
// never hand one Handle to two goroutines at once.
func TestPoolExclusiveOwnership(t *testing.T) {
	var pool ProcessPool
	seed := pool.Acquire()
	seed.Release() // exactly one pooled Handle to fight over

	const workers = 8
	const iters = 3000
	owners := make(map[*Handle]int)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				h := pool.Acquire()
				mu.Lock()
				owners[h]++
				if owners[h] > 1 {
					mu.Unlock()
					t.Error("Handle acquired by two goroutines at once")
					return
				}
				mu.Unlock()

				mu.Lock()
				owners[h]--
				mu.Unlock()
				h.Release()
			}
		}()
	}
	wg.Wait()
}

func TestAcquireHandleDefaultPool(t *testing.T) {
	h := AcquireHandle()
	if h == nil || h.Process() == nil {
		t.Fatal("AcquireHandle returned an unusable Handle")
	}
	// The default pool must take it back for reuse.
	h.Release()
	h2 := AcquireHandle()
	defer h2.Release()
	if h2 == nil {
		t.Fatal("second AcquireHandle failed")
	}
}

// TestHandleProcessUsableForPrimitives threads a pooled Handle's Process
// through a raw LLX/SCX cycle — the escape hatch examples use.
func TestHandleProcessUsableForPrimitives(t *testing.T) {
	h := AcquireHandle()
	defer h.Release()
	p := h.Process()
	r := NewRecord(1, []any{41})
	snap, st := p.LLX(r)
	if st != LLXOK {
		t.Fatalf("LLX status %v", st)
	}
	if !p.SCX([]*Record{r}, nil, r.Field(0), snap[0].(int)+1) {
		t.Fatal("SCX failed")
	}
	if got := r.Read(0).(int); got != 42 {
		t.Fatalf("value = %d, want 42", got)
	}
}
