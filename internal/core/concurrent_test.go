package core_test

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"testing/quick"

	"pragmaprim/internal/core"
)

// TestConcurrentCounterNoLostUpdates hammers a single record with LLX/SCX
// increments from many goroutines; linearizability of SCX means no increment
// can be lost.
func TestConcurrentCounterNoLostUpdates(t *testing.T) {
	procs := runtime.GOMAXPROCS(0)
	if procs < 2 {
		procs = 2
	}
	const perProc = 500
	r := core.NewRecord(1, []any{0})

	var wg sync.WaitGroup
	for g := 0; g < procs; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := core.NewProcess()
			for i := 0; i < perProc; i++ {
				for {
					snap, st := p.LLX(r)
					if st != core.LLXOK {
						continue
					}
					if p.SCX([]*core.Record{r}, nil, r.Field(0), snap[0].(int)+1) {
						break
					}
				}
			}
		}()
	}
	wg.Wait()
	if got, want := r.Read(0).(int), procs*perProc; got != want {
		t.Fatalf("counter = %d, want %d (lost updates)", got, want)
	}
}

// TestConcurrentDisjointAllSucceed reproduces claim A3 (Section 1): "If SCXs
// being performed concurrently depend on LLXs of disjoint sets of
// Data-records, they all succeed."
func TestConcurrentDisjointAllSucceed(t *testing.T) {
	const procs = 8
	const perProc = 2000

	recs := make([]*core.Record, procs)
	for i := range recs {
		recs[i] = core.NewRecord(1, []any{0})
	}

	metrics := make([]*core.Metrics, procs)
	var wg sync.WaitGroup
	for g := 0; g < procs; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			p := core.NewProcess()
			r := recs[g]
			for i := 0; i < perProc; i++ {
				snap, st := p.LLX(r)
				if st != core.LLXOK {
					t.Errorf("proc %d: LLX on private record = %v", g, st)
					return
				}
				if !p.SCX([]*core.Record{r}, nil, r.Field(0), snap[0].(int)+1) {
					t.Errorf("proc %d: SCX on disjoint record failed", g)
					return
				}
			}
			metrics[g] = &p.Metrics
		}(g)
	}
	wg.Wait()

	var total core.Metrics
	for _, m := range metrics {
		if m == nil {
			t.Fatal("a goroutine aborted early")
		}
		total.Add(m)
	}
	if total.AbortSteps != 0 {
		t.Errorf("disjoint workload performed %d abort steps, want 0", total.AbortSteps)
	}
	if got, want := total.SCXSuccesses, int64(procs*perProc); got != want {
		t.Errorf("SCX successes = %d, want %d", got, want)
	}
	// Every SCX here has k=1, so CAS steps must be exactly 2 per SCX.
	if got, want := total.CASSteps(), int64(2*procs*perProc); got != want {
		t.Errorf("CAS steps = %d, want exactly %d on a contention-free run", got, want)
	}
}

// TestSnapshotConsistencyUnderWrites checks the LLX snapshot guarantee: with
// a writer alternating field0 := k, field1 := k, every instantaneous state of
// the record satisfies field0 ∈ {field1, field1+1}; a torn (non-atomic) read
// could observe field1 > field0, which LLX must never return.
func TestSnapshotConsistencyUnderWrites(t *testing.T) {
	const rounds = 3000
	r := core.NewRecord(2, []any{0, 0})
	done := make(chan struct{})

	go func() {
		defer close(done)
		p := core.NewProcess()
		for k := 1; k <= rounds; k++ {
			for f := 0; f <= 1; f++ {
				for {
					if _, st := p.LLX(r); st != core.LLXOK {
						continue
					}
					if p.SCX([]*core.Record{r}, nil, r.Field(f), k) {
						break
					}
				}
			}
		}
	}()

	p := core.NewProcess()
	checked := 0
	for {
		select {
		case <-done:
			if checked == 0 {
				t.Fatal("reader validated no snapshots")
			}
			return
		default:
		}
		snap, st := p.LLX(r)
		if st != core.LLXOK {
			continue
		}
		f0, f1 := snap[0].(int), snap[1].(int)
		if f0 != f1 && f0 != f1+1 {
			t.Fatalf("torn snapshot: field0=%d field1=%d", f0, f1)
		}
		checked++
	}
}

// TestConcurrentFinalizeExactlyOnce has many processes race to finalize the
// same record; exactly one finalizing SCX must succeed, and every process
// must terminate (progress) with all later LLXs reporting Finalized.
func TestConcurrentFinalizeExactlyOnce(t *testing.T) {
	const procs = 8
	target := core.NewRecord(1, []any{"alive"})
	dests := make([]*core.Record, procs)
	for i := range dests {
		dests[i] = core.NewRecord(1, []any{nil})
	}

	var successes sync.Map
	var wg sync.WaitGroup
	for g := 0; g < procs; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			p := core.NewProcess()
			for {
				if _, st := p.LLX(dests[g]); st != core.LLXOK {
					continue
				}
				_, st := p.LLX(target)
				if st == core.LLXFinalized {
					return // someone else finalized it; done
				}
				if st != core.LLXOK {
					continue
				}
				if p.SCX([]*core.Record{dests[g], target}, []*core.Record{target},
					dests[g].Field(0), g) {
					successes.Store(g, true)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	n := 0
	successes.Range(func(_, _ any) bool { n++; return true })
	if n != 1 {
		t.Fatalf("%d finalizing SCXs succeeded, want exactly 1", n)
	}
	if !target.Finalized() {
		t.Fatal("target not finalized")
	}
}

// TestConcurrentOverlappingPairsProgress runs SCXs over overlapping pairs of
// records (the livelock-prone pattern); the total-order constraint (records
// always frozen in index order) guarantees global progress, so every
// goroutine must finish its quota.
func TestConcurrentOverlappingPairsProgress(t *testing.T) {
	const procs = 6
	const perProc = 300
	const nrecs = 4
	recs := make([]*core.Record, nrecs)
	for i := range recs {
		recs[i] = core.NewRecord(1, []any{0})
	}

	var wg sync.WaitGroup
	for g := 0; g < procs; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			p := core.NewProcess()
			for i := 0; i < perProc; i++ {
				// Pick two distinct records, frozen in index order — the
				// paper's Section 4.1 ordering constraint.
				a := rng.Intn(nrecs - 1)
				b := a + 1 + rng.Intn(nrecs-a-1)
				for {
					sa, st := p.LLX(recs[a])
					if st != core.LLXOK {
						continue
					}
					if _, st := p.LLX(recs[b]); st != core.LLXOK {
						continue
					}
					if p.SCX([]*core.Record{recs[a], recs[b]}, nil,
						recs[a].Field(0), sa[0].(int)+1) {
						break
					}
				}
			}
		}(g)
	}
	wg.Wait()

	sum := 0
	for _, r := range recs {
		sum += r.Read(0).(int)
	}
	if sum != procs*perProc {
		t.Fatalf("sum of counters = %d, want %d", sum, procs*perProc)
	}
}

// TestQuickSingleProcessSequential is a property test: under sequential use,
// LLX always snapshots the current values, SCX always succeeds and behaves
// like a plain store, mirroring a trivial sequential model.
func TestQuickSingleProcessSequential(t *testing.T) {
	f := func(vals []int16, writes []uint8) bool {
		if len(vals) == 0 {
			vals = []int16{0}
		}
		if len(vals) > 16 {
			vals = vals[:16]
		}
		init := make([]any, len(vals))
		model := make([]any, len(vals))
		for i, v := range vals {
			init[i] = int(v)
			model[i] = int(v)
		}
		r := core.NewRecord(len(vals), init)
		p := core.NewProcess()
		for wi, w := range writes {
			field := int(w) % len(vals)
			snap, st := p.LLX(r)
			if st != core.LLXOK {
				return false
			}
			for i := range model {
				if snap[i] != model[i] {
					return false
				}
			}
			newVal := wi*31 + field
			if !p.SCX([]*core.Record{r}, nil, r.Field(field), newVal) {
				return false
			}
			model[field] = newVal
			if r.Read(field) != newVal {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentVLX checks VLX under contention: a VLX that returns true must
// imply no SCX touched any record in V between the LLXs and the VLX. We use
// the paired-counter invariant: writer bumps both records under one SCX each,
// a validator re-reads after a successful VLX and must see identical values.
func TestConcurrentVLX(t *testing.T) {
	const rounds = 2000
	a := core.NewRecord(1, []any{0})
	b := core.NewRecord(1, []any{0})
	stop := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // writer keeps a and b equal, bumping a then b
		defer wg.Done()
		p := core.NewProcess()
		for k := 1; ; k++ {
			select {
			case <-stop:
				return
			default:
			}
			for _, r := range []*core.Record{a, b} {
				for {
					if _, st := p.LLX(r); st != core.LLXOK {
						continue
					}
					if p.SCX([]*core.Record{r}, nil, r.Field(0), k) {
						break
					}
				}
			}
		}
	}()

	p := core.NewProcess()
	validated := 0
	for i := 0; i < rounds; i++ {
		sa, st := p.LLX(a)
		if st != core.LLXOK {
			continue
		}
		sb, st := p.LLX(b)
		if st != core.LLXOK {
			continue
		}
		if !p.VLX([]*core.Record{a, b}) {
			continue
		}
		// VLX success: neither record changed since its LLX, so the two
		// snapshots coexisted; the writer's invariant is a == b or a == b+1.
		va, vb := sa[0].(int), sb[0].(int)
		if va != vb && va != vb+1 {
			t.Fatalf("VLX validated inconsistent snapshots a=%d b=%d", va, vb)
		}
		validated++
	}
	close(stop)
	wg.Wait()
	if validated == 0 {
		t.Skip("no VLX validated under contention; inconclusive run")
	}
}
