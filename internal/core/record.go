package core

import (
	"fmt"
	"sync/atomic"
	"unsafe"
)

// box wraps a single boxed-interface mutable-field value, the storage used
// by the LEGACY record API (NewRecord/Read/Field/SCX with any values). A
// legacy mutable field stores *box rather than the value itself so that the
// update CAS operates on pointer identity: each SCX boxes its new value
// freshly (inside its descriptor), so a field can never be CASed back to a
// previous value and the ABA constraint of Section 4.1 is satisfied by
// construction.
//
// The TYPED record API (NewTypedRecord, Word/Ptr fields) stores 64-bit
// words and raw pointers directly — no boxing, no type assertions — and
// discharges the Section 4.1 constraint differently: pointer fields only
// ever receive nodes that are fresh or recycled under internal/reclaim's
// grace periods (so an address cannot recur while any helper that saw the
// old value is still inside an operation), and in-place word fields must be
// given values that do not recur within a record's lifetime (every word
// field in this repository is a monotonically increasing count). See
// DESIGN.md, "De-boxed word storage".
type box struct {
	val any
}

// maxInlineWidth is the number of word and pointer slots a Record (and a
// Fields snapshot) holds inline. Every record in this repository's data
// structures has at most two mutable fields; wider records (tests) spill to
// heap slices allocated once at creation.
const maxInlineWidth = 4

// atomicPtr is an atomic unsafe.Pointer cell (the stdlib's atomic.Pointer
// is typed; record pointer fields are deliberately untyped words).
type atomicPtr struct{ p unsafe.Pointer }

func (a *atomicPtr) Load() unsafe.Pointer   { return atomic.LoadPointer(&a.p) }
func (a *atomicPtr) Store(v unsafe.Pointer) { atomic.StorePointer(&a.p, v) }
func (a *atomicPtr) CompareAndSwap(old, new unsafe.Pointer) bool {
	return atomic.CompareAndSwapPointer(&a.p, old, new)
}

// Record is a Data-record: the unit on which LLX, SCX and VLX operate. A
// Record has a fixed number of single-word mutable fields (read with
// Word/Ptr — or Read for legacy boxed records — snapshot with LLX, written
// only by SCX) and, for legacy records, a fixed number of immutable fields.
//
// Mutable storage is typed and unboxed: a record has nw uint64 word fields
// and np pointer fields, each an atomic machine word, held inline up to
// maxInlineWidth per kind and spilled to slices beyond that. Legacy records
// created with NewRecord represent each `any` field as a pointer field
// holding a *box.
//
// In addition to its user fields, a Record carries the bookkeeping fields of
// the paper's Figure 1: an info pointer to the SCX-record of the last SCX
// that froze it, and a marked bit used to finalize it.
//
// Records may be embedded by value inside structure nodes (see InitRecord),
// which makes node+record a single allocation and lets internal/reclaim
// recycle both together. A Record must not be copied after first use.
type Record struct {
	info   atomic.Pointer[SCXRecord]
	marked atomic.Bool
	legacy bool // created by NewRecord: pointer fields hold *box
	nw, np uint8

	wordsInline [maxInlineWidth]atomic.Uint64
	ptrsInline  [maxInlineWidth]atomicPtr
	wordSpill   []atomic.Uint64
	ptrSpill    []atomicPtr

	immut []any
}

// NewRecord creates a LEGACY boxed record with numMutable mutable fields,
// initialized to the corresponding entries of initial (missing entries
// default to nil), and with the given immutable fields. Each mutable field
// is a pointer word holding a freshly boxed value. The record's info pointer
// starts at the dummy SCX-record (state Aborted) and its marked bit is
// false, as required by the algorithm.
//
// New code should prefer NewTypedRecord/InitRecord, which store words and
// pointers without boxing.
func NewRecord(numMutable int, initial []any, immutable ...any) *Record {
	if numMutable < 0 {
		panic("core: NewRecord with negative field count")
	}
	if len(initial) > numMutable {
		panic(fmt.Sprintf("core: NewRecord given %d initial values for %d mutable fields",
			len(initial), numMutable))
	}
	r := &Record{}
	initRecord(r, 0, numMutable)
	r.legacy = true
	r.immut = immutable
	for i := 0; i < numMutable; i++ {
		b := &box{}
		if i < len(initial) {
			b.val = initial[i]
		}
		r.pslot(i).Store(unsafe.Pointer(b))
	}
	return r
}

// NewTypedRecord creates a record with words uint64 fields and ptrs pointer
// fields, all zero. Set initial values with SetWord/SetPtr before the
// record is published.
func NewTypedRecord(words, ptrs int) *Record {
	r := &Record{}
	initRecord(r, words, ptrs)
	return r
}

// InitRecord initializes an embedded (zero-valued) Record in place with the
// given field widths: the constructor for records living inside structure
// nodes. It must be called exactly once before the record is published.
func InitRecord(r *Record, words, ptrs int) {
	initRecord(r, words, ptrs)
}

func initRecord(r *Record, words, ptrs int) {
	if words < 0 || ptrs < 0 || words > 255 || ptrs > 255 {
		panic(fmt.Sprintf("core: record field widths %d/%d out of range", words, ptrs))
	}
	r.nw, r.np = uint8(words), uint8(ptrs)
	if words > maxInlineWidth {
		r.wordSpill = make([]atomic.Uint64, words)
	}
	if ptrs > maxInlineWidth {
		r.ptrSpill = make([]atomicPtr, ptrs)
	}
	r.info.Store(dummySCXRecord)
}

// Recycle re-arms a record that internal/reclaim handed back for reuse:
// the marked bit is cleared and the info pointer rewound to the dummy
// SCX-record. The caller must reinitialize the field values with
// SetWord/SetPtr before republishing; field widths are retained. Recycle
// must only be called on records no other process can reach (i.e. after a
// full grace period).
func (r *Record) Recycle() {
	r.marked.Store(false)
	r.info.Store(dummySCXRecord)
}

// wslot returns word slot i.
func (r *Record) wslot(i int) *atomic.Uint64 {
	if r.wordSpill != nil {
		return &r.wordSpill[i]
	}
	return &r.wordsInline[i]
}

// pslot returns pointer slot i.
func (r *Record) pslot(i int) *atomicPtr {
	if r.ptrSpill != nil {
		return &r.ptrSpill[i]
	}
	return &r.ptrsInline[i]
}

// NumWords returns the number of uint64 word fields of r.
func (r *Record) NumWords() int { return int(r.nw) }

// NumPtrs returns the number of pointer fields of r.
func (r *Record) NumPtrs() int { return int(r.np) }

// NumMutable returns the number of mutable fields of r (for legacy records,
// the NewRecord field count; for typed records, words plus pointers).
func (r *Record) NumMutable() int { return int(r.nw) + int(r.np) }

// NumImmutable returns the number of immutable fields of r.
func (r *Record) NumImmutable() int { return len(r.immut) }

// Word atomically reads word field i of r. Plain reads are permitted
// alongside LLX: the paper linearizes them, and Proposition 2 lets searches
// traverse a structure with reads instead of LLXs.
func (r *Record) Word(i int) uint64 {
	r.checkWord(i)
	return r.wslot(i).Load()
}

// Ptr atomically reads pointer field i of r.
func (r *Record) Ptr(i int) unsafe.Pointer {
	r.checkPtr(i)
	return r.pslot(i).Load()
}

// SetWord initializes word field i. It is an initialization write: legal
// only while the record is unpublished (freshly created or recycled and not
// yet linked into a structure). Published fields change only through SCX.
func (r *Record) SetWord(i int, v uint64) {
	r.checkWord(i)
	r.wslot(i).Store(v)
}

// SetPtr initializes pointer field i; same publication rule as SetWord.
func (r *Record) SetPtr(i int, p unsafe.Pointer) {
	r.checkPtr(i)
	r.pslot(i).Store(p)
}

// Read atomically reads legacy mutable field i of r (unboxing the value a
// NewRecord-created field holds). Panics on typed records.
func (r *Record) Read(i int) any {
	if !r.legacy {
		panic("core: Read on a typed record; use Word or Ptr")
	}
	r.checkPtr(i)
	return (*box)(r.pslot(i).Load()).val
}

// Immutable returns immutable field i of r. Immutable fields never change
// after creation, so they may be read without synchronization.
func (r *Record) Immutable(i int) any { return r.immut[i] }

// Finalized reports whether r has been finalized: r is marked and the SCX
// that marked it has committed. A finalized record can never change again.
func (r *Record) Finalized() bool {
	inf := r.info.Load()
	return r.marked.Load() && State(inf.state.Load()) == StateCommitted
}

// Info returns the SCX-record r's info pointer currently designates: the
// descriptor of the last SCX that froze r, or the dummy SCX-record if none
// has. Intended for tests and instrumentation; the value may be stale by the
// time it is returned.
func (r *Record) Info() *SCXRecord { return r.info.Load() }

// Frozen reports whether r is currently frozen for some SCX-record, per the
// paper's Figure 8: r.info's state is InProgress, or it is Committed and r is
// marked. Intended for tests and diagnostics; the value may be stale by the
// time it is returned.
func (r *Record) Frozen() bool {
	inf := r.info.Load()
	switch State(inf.state.Load()) {
	case StateInProgress:
		return true
	case StateCommitted:
		return r.marked.Load()
	default:
		return false
	}
}

func (r *Record) checkWord(i int) {
	if i < 0 || i >= int(r.nw) {
		panic(fmt.Sprintf("core: word field index %d out of range [0,%d)", i, r.nw))
	}
}

func (r *Record) checkPtr(i int) {
	if i < 0 || i >= int(r.np) {
		panic(fmt.Sprintf("core: pointer field index %d out of range [0,%d)", i, r.np))
	}
}

// fieldKind says which storage a FieldRef names.
type fieldKind uint8

const (
	fieldBoxed fieldKind = iota // legacy pointer field holding a *box
	fieldWord
	fieldPtr
)

// FieldRef names one mutable field of one Record; it is the fld argument of
// Process.SCX/SCXWord/SCXPtr. The zero kind is the legacy boxed field, so
// FieldRef{Rec: r, Field: i} literals built by older code keep working.
type FieldRef struct {
	Rec   *Record
	Field int
	kind  fieldKind
}

// Field returns a FieldRef for legacy mutable field i of r, for use with
// the boxed SCX. Panics on typed records.
func (r *Record) Field(i int) FieldRef {
	if !r.legacy {
		panic("core: Field on a typed record; use WordField or PtrField")
	}
	r.checkPtr(i)
	return FieldRef{Rec: r, Field: i, kind: fieldBoxed}
}

// WordField returns a FieldRef for word field i of r, for use with SCXWord.
func (r *Record) WordField(i int) FieldRef {
	if r.legacy {
		panic("core: WordField on a legacy record; use Field")
	}
	r.checkWord(i)
	return FieldRef{Rec: r, Field: i, kind: fieldWord}
}

// PtrField returns a FieldRef for pointer field i of r, for use with SCXPtr.
func (r *Record) PtrField(i int) FieldRef {
	if r.legacy {
		panic("core: PtrField on a legacy record; use Field")
	}
	r.checkPtr(i)
	return FieldRef{Rec: r, Field: i, kind: fieldPtr}
}
