package core

import (
	"fmt"
	"sync/atomic"
)

// box wraps a single mutable-field value. Mutable fields store *box rather
// than the value itself so that CAS operates on pointer identity: each SCX
// allocates a fresh box, so a field can never be CASed back to a previous
// value and the ABA constraint of Section 4.1 is satisfied by construction.
type box struct {
	val any
}

// Record is a Data-record: the unit on which LLX, SCX and VLX operate. A
// Record has a fixed number of single-word mutable fields (read with Read,
// snapshot with Process.LLX, written only by Process.SCX) and a fixed number
// of immutable fields (read with Immutable; set once at creation).
//
// In addition to its user fields, a Record carries the bookkeeping fields of
// the paper's Figure 1: an info pointer to the SCX-record of the last SCX
// that froze it, and a marked bit used to finalize it.
type Record struct {
	info    atomic.Pointer[SCXRecord]
	marked  atomic.Bool
	mutable []atomic.Pointer[box]
	immut   []any
}

// NewRecord creates a Record with numMutable mutable fields, initialized to
// the corresponding entries of initial (missing entries default to nil), and
// with the given immutable fields. The record's info pointer starts at the
// dummy SCX-record (state Aborted) and its marked bit is false, as required
// by the algorithm.
func NewRecord(numMutable int, initial []any, immutable ...any) *Record {
	if numMutable < 0 {
		panic("core: NewRecord with negative field count")
	}
	if len(initial) > numMutable {
		panic(fmt.Sprintf("core: NewRecord given %d initial values for %d mutable fields",
			len(initial), numMutable))
	}
	r := &Record{
		mutable: make([]atomic.Pointer[box], numMutable),
		immut:   immutable,
	}
	for i := range r.mutable {
		b := &box{}
		if i < len(initial) {
			b.val = initial[i]
		}
		r.mutable[i].Store(b)
	}
	r.info.Store(dummySCXRecord)
	return r
}

// NumMutable returns the number of mutable fields of r.
func (r *Record) NumMutable() int { return len(r.mutable) }

// NumImmutable returns the number of immutable fields of r.
func (r *Record) NumImmutable() int { return len(r.immut) }

// Read atomically reads mutable field i of r. Reads are permitted alongside
// LLX: the paper linearizes plain reads, and Proposition 2 lets searches
// traverse a structure with reads instead of LLXs.
func (r *Record) Read(i int) any {
	return r.mutable[i].Load().val
}

// Immutable returns immutable field i of r. Immutable fields never change
// after creation, so they may be read without synchronization.
func (r *Record) Immutable(i int) any { return r.immut[i] }

// Finalized reports whether r has been finalized: r is marked and the SCX
// that marked it has committed. A finalized record can never change again.
func (r *Record) Finalized() bool {
	inf := r.info.Load()
	return r.marked.Load() && State(inf.state.Load()) == StateCommitted
}

// Info returns the SCX-record r's info pointer currently designates: the
// descriptor of the last SCX that froze r, or the dummy SCX-record if none
// has. Intended for tests and instrumentation; the value may be stale by the
// time it is returned.
func (r *Record) Info() *SCXRecord { return r.info.Load() }

// Frozen reports whether r is currently frozen for some SCX-record, per the
// paper's Figure 8: r.info's state is InProgress, or it is Committed and r is
// marked. Intended for tests and diagnostics; the value may be stale by the
// time it is returned.
func (r *Record) Frozen() bool {
	inf := r.info.Load()
	switch State(inf.state.Load()) {
	case StateInProgress:
		return true
	case StateCommitted:
		return r.marked.Load()
	default:
		return false
	}
}

// FieldRef names one mutable field of one Record; it is the fld argument of
// Process.SCX.
type FieldRef struct {
	Rec   *Record
	Field int
}

// Field returns a FieldRef for mutable field i of r.
func (r *Record) Field(i int) FieldRef {
	if i < 0 || i >= len(r.mutable) {
		panic(fmt.Sprintf("core: field index %d out of range [0,%d)", i, len(r.mutable)))
	}
	return FieldRef{Rec: r, Field: i}
}
