package core_test

import (
	"fmt"
	"testing"

	"pragmaprim/internal/core"
)

// The spill tests drive the fixed-capacity fast-path structures past their
// inline limits — V-sequences longer than the descriptor's inline arrays,
// records wider than an llxEntry's inline boxes, and more live links than
// the open-addressed table holds — and check that behavior is unchanged.

// TestSCXWideVSequence runs an SCX whose V and R sequences exceed the
// descriptor's inline capacity (maxInlineV = 4).
func TestSCXWideVSequence(t *testing.T) {
	const k = 7
	p := core.NewProcess()
	recs := make([]*core.Record, k)
	for i := range recs {
		recs[i] = core.NewRecord(1, []any{i}, fmt.Sprintf("rec%d", i))
	}
	for _, r := range recs {
		if _, st := p.LLX(r); st != core.LLXOK {
			t.Fatalf("LLX failed: %v", st)
		}
	}
	rset := recs[1:] // finalize 6 records: the R sequence spills too
	if !p.SCX(recs, rset, recs[0].Field(0), 100) {
		t.Fatal("wide SCX failed")
	}
	if got := recs[0].Read(0); got != 100 {
		t.Errorf("field = %v, want 100", got)
	}
	for i, r := range rset {
		if !r.Finalized() {
			t.Errorf("rset[%d] not finalized", i)
		}
	}
	if recs[0].Finalized() {
		t.Error("recs[0] finalized but not in R")
	}
	// A subsequent LLX on a finalized record must report it.
	if _, st := p.LLX(recs[1]); st != core.LLXFinalized {
		t.Errorf("LLX on finalized record = %v, want Finalized", st)
	}
}

// TestSCXWideVSequenceExposed checks that V() and R() round-trip the spilled
// sequences for instrumentation.
func TestSCXWideVSequenceExposed(t *testing.T) {
	const k = 6
	p := core.NewProcess()
	recs := make([]*core.Record, k)
	for i := range recs {
		recs[i] = core.NewRecord(1, []any{i})
		if _, st := p.LLX(recs[i]); st != core.LLXOK {
			t.Fatalf("LLX failed")
		}
	}
	if !p.SCX(recs, recs[:k-1], recs[0].Field(0), "wide") {
		t.Fatal("wide SCX failed")
	}
	u := recs[k-1].Info()
	if u == nil {
		t.Fatal("no info record")
	}
	if got := u.V(); len(got) != k {
		t.Fatalf("V() length = %d, want %d", len(got), k)
	} else {
		for i := range got {
			if got[i] != recs[i] {
				t.Errorf("V()[%d] mismatch", i)
			}
		}
	}
	if got := u.R(); len(got) != k-1 {
		t.Errorf("R() length = %d, want %d", len(got), k-1)
	}
}

// TestWideRecordLLX drives LLX/SCX on a record with more mutable fields than
// an llxEntry stores inline (maxInlineFields = 4), exercising the box-spill
// path, including the old-box lookup for a high field index.
func TestWideRecordLLX(t *testing.T) {
	const nf = 7
	p := core.NewProcess()
	init := make([]any, nf)
	for i := range init {
		init[i] = i * 10
	}
	r := core.NewRecord(nf, init)
	snap, st := p.LLX(r)
	if st != core.LLXOK {
		t.Fatalf("LLX failed: %v", st)
	}
	if len(snap) != nf {
		t.Fatalf("snapshot length = %d, want %d", len(snap), nf)
	}
	for i := range snap {
		if snap[i] != i*10 {
			t.Errorf("snap[%d] = %v, want %d", i, snap[i], i*10)
		}
	}
	// SCX against the highest field: the old box comes from the spill slice.
	if !p.SCX([]*core.Record{r}, nil, r.Field(nf-1), "updated") {
		t.Fatal("SCX on wide record failed")
	}
	if got := r.Read(nf - 1); got != "updated" {
		t.Errorf("field %d = %v, want updated", nf-1, got)
	}
	for i := 0; i < nf-1; i++ {
		if got := r.Read(i); got != i*10 {
			t.Errorf("field %d = %v, want %d (unchanged)", i, got, i*10)
		}
	}
	// LLXInto with a reused buffer on the wide record still snapshots
	// correctly (the buffer is grown, not truncated).
	buf := make(core.Snapshot, 2)
	buf, st = p.LLXInto(r, buf)
	if st != core.LLXOK {
		t.Fatalf("LLXInto failed: %v", st)
	}
	if len(buf) != nf || buf[nf-1] != "updated" {
		t.Errorf("LLXInto snapshot = %v", buf)
	}
	// And an SCX through that link also works end to end.
	if !p.SCX([]*core.Record{r}, nil, r.Field(0), "again") {
		t.Fatal("second SCX on wide record failed")
	}
	if got := r.Read(0); got != "again" {
		t.Errorf("field 0 = %v, want again", got)
	}
}

// TestLinkTableSpill establishes more simultaneous links than the inline
// open-addressed table holds and checks that every link — inline or spilled
// to the fallback map — still backs a successful SCX.
func TestLinkTableSpill(t *testing.T) {
	const n = 48 // well past the inline capacity of 16
	p := core.NewProcess()
	recs := make([]*core.Record, n)
	for i := range recs {
		recs[i] = core.NewRecord(1, []any{i})
		if _, st := p.LLX(recs[i]); st != core.LLXOK {
			t.Fatalf("LLX %d failed", i)
		}
	}
	for i, r := range recs {
		if !p.HasLink(r) {
			t.Fatalf("link %d lost after spill", i)
		}
	}
	// Every link, however stored, supports its SCX. Records are untouched in
	// between, so all SCXs must succeed.
	for i, r := range recs {
		if !p.SCX([]*core.Record{r}, nil, r.Field(0), i+1000) {
			t.Fatalf("SCX %d failed", i)
		}
		if p.HasLink(r) {
			t.Fatalf("link %d not consumed by SCX", i)
		}
	}
	for i, r := range recs {
		if got := r.Read(0); got != i+1000 {
			t.Errorf("rec %d = %v, want %d", i, got, i+1000)
		}
	}
}

// TestLinkTableSpillVLX validates spilled links with VLX, both the
// preserving success path and the link-consuming failure path.
func TestLinkTableSpillVLX(t *testing.T) {
	const n = 40
	p := core.NewProcess()
	recs := make([]*core.Record, n)
	for i := range recs {
		recs[i] = core.NewRecord(1, []any{i})
		if _, st := p.LLX(recs[i]); st != core.LLXOK {
			t.Fatalf("LLX %d failed", i)
		}
	}
	if !p.VLX(recs) {
		t.Fatal("VLX over unchanged records failed")
	}
	for i, r := range recs {
		if !p.HasLink(r) {
			t.Fatalf("successful VLX consumed link %d", i)
		}
	}
	// Another process changes one record; the VLX must now fail and consume
	// every link in its V-sequence.
	q := core.NewProcess()
	if _, st := q.LLX(recs[n-1]); st != core.LLXOK {
		t.Fatal("LLX by second process failed")
	}
	if !q.SCX([]*core.Record{recs[n-1]}, nil, recs[n-1].Field(0), "changed") {
		t.Fatal("SCX by second process failed")
	}
	if p.VLX(recs) {
		t.Fatal("VLX succeeded over a changed record")
	}
	for i, r := range recs {
		if p.HasLink(r) {
			t.Errorf("failed VLX preserved link %d", i)
		}
	}
}

// TestLinkTableRelinkAfterSpill re-LLXes records whose links were spilled
// and checks the refreshed links are the ones an SCX consumes.
func TestLinkTableRelinkAfterSpill(t *testing.T) {
	const n = 32
	p := core.NewProcess()
	recs := make([]*core.Record, n)
	for i := range recs {
		recs[i] = core.NewRecord(1, []any{i})
		if _, st := p.LLX(recs[i]); st != core.LLXOK {
			t.Fatalf("LLX %d failed", i)
		}
	}
	// The earliest links are the evicted ones; re-LLX them (moving them back
	// inline) and SCX through the refreshed links.
	for i := 0; i < 8; i++ {
		if _, st := p.LLX(recs[i]); st != core.LLXOK {
			t.Fatalf("re-LLX %d failed", i)
		}
		if !p.SCX([]*core.Record{recs[i]}, nil, recs[i].Field(0), i-1000) {
			t.Fatalf("SCX %d after re-link failed", i)
		}
		if got := recs[i].Read(0); got != i-1000 {
			t.Errorf("rec %d = %v, want %d", i, got, i-1000)
		}
	}
}
