// Package core implements the LLX, SCX and VLX synchronization primitives of
// Brown, Ellen and Ruppert, "Pragmatic Primitives for Non-blocking Data
// Structures" (PODC 2013), from single-word compare-and-swap.
//
// The primitives operate on Data-records (type Record), each holding a fixed
// number of single-word mutable fields and a fixed number of immutable
// fields:
//
//   - LLX(r) returns an atomic snapshot of r's mutable fields, or reports
//     that r has been finalized, or fails.
//   - SCX(V, R, fld, new) atomically stores new into the mutable field fld of
//     one record in V and finalizes every record in R ⊆ V, succeeding only if
//     no record in V has changed since the calling process's linked LLX on it.
//   - VLX(V) succeeds iff no record in V has changed since the calling
//     process's linked LLX on it.
//
// The implementation follows the paper's Figure 4 pseudocode: every record
// carries an info pointer to an SCX-record (an operation descriptor) and a
// marked bit. An SCX freezes each record in V by swinging its info pointer to
// the SCX's descriptor; processes that encounter a frozen record help the
// owning SCX to complete (cooperative technique), so the implementation is
// non-blocking. Finalized records (marked, with a committed descriptor) can
// never change again.
//
// Each participating goroutine must use its own Process handle, which holds
// the paper's per-process table of LLX results. A Process is not safe for
// concurrent use; Records may be shared freely between Processes.
//
// ABA freedom: the paper obliges the caller to never store a value into a
// field that the field previously contained (Section 4.1). This package
// discharges that obligation by construction: every SCX wraps the new value
// in a freshly allocated box and CAS compares box identity, the paper's
// "Solution 3" wrapper-object variant. Go's garbage collector is the safe
// collector the paper assumes, so a box address cannot recur while reachable.
package core
