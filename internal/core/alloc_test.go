package core_test

import (
	"testing"
	"time"

	"pragmaprim/internal/core"
	"pragmaprim/internal/multiset"
	"pragmaprim/internal/reclaim"
	"pragmaprim/internal/template"
)

// awaitMobileEpoch blocks until the shared reclamation domain's epoch can
// advance again. Announcements stay published between operations now, so a
// handle abandoned by an earlier test in this binary pins the epoch — and a
// pinned epoch starves the descriptor freelist these tests measure — until
// the GC scavenger collects it. AwaitMobile forces that collection.
func awaitMobileEpoch(t *testing.T) {
	t.Helper()
	if !reclaim.Default.AwaitMobile(10 * time.Second) {
		t.Fatal("reclamation epoch is pinned by a stale announcement from an earlier test")
	}
}

// allocMultiset is the end-to-end fixture for TestSessionUpdateAllocCeiling:
// a real multiset with one resident key, driven through a bound Session.
type allocMultiset struct {
	s multiset.Session[int]
}

func newAllocMultiset() *allocMultiset {
	m := multiset.New[int]()
	s := m.Attach(core.NewHandle())
	s.Insert(1, 1)
	return &allocMultiset{s: s}
}

// bump re-inserts the resident key: one LLX + one count-bump SCX.
func (a *allocMultiset) bump() { a.s.Insert(1, 1) }

// The allocation regression tests pin the fast-path allocation ceilings the
// DESIGN.md layout promises: LLXInto with an adequate caller buffer performs
// zero heap allocations, the LLX compatibility wrapper performs exactly one
// (the returned Snapshot), and an LLX+SCX cycle performs exactly one (the
// operation descriptor, which must stay fresh per SCX for ABA-safety).

func TestLLXIntoAllocFree(t *testing.T) {
	p := core.NewProcess()
	r := core.NewRecord(2, []any{1, "x"})
	buf := make(core.Snapshot, 2)
	allocs := testing.AllocsPerRun(1000, func() {
		var st core.LLXStatus
		buf, st = p.LLXInto(r, buf)
		if st != core.LLXOK {
			t.Fatal("LLX failed")
		}
	})
	if allocs != 0 {
		t.Errorf("LLXInto with reused buffer: %v allocs/op, want 0", allocs)
	}
}

func TestLLXWrapperAllocCeiling(t *testing.T) {
	p := core.NewProcess()
	r := core.NewRecord(2, []any{1, "x"})
	allocs := testing.AllocsPerRun(1000, func() {
		if _, st := p.LLX(r); st != core.LLXOK {
			t.Fatal("LLX failed")
		}
	})
	if allocs > 1 {
		t.Errorf("LLX: %v allocs/op, want <= 1 (the returned Snapshot)", allocs)
	}
}

func TestSCXCycleAllocCeiling(t *testing.T) {
	p := core.NewProcess()
	r := core.NewRecord(1, []any{0})
	buf := make(core.Snapshot, 1)
	v := make([]*core.Record, 1)
	newVal := any("fresh") // pre-boxed so the cycle's only allocation is the descriptor
	allocs := testing.AllocsPerRun(1000, func() {
		var st core.LLXStatus
		buf, st = p.LLXInto(r, buf)
		if st != core.LLXOK {
			t.Fatal("LLX failed")
		}
		v[0] = r
		if !p.SCX(v, nil, r.Field(0), newVal) {
			t.Fatal("SCX failed")
		}
	})
	if allocs > 1 {
		t.Errorf("LLXInto+SCX cycle: %v allocs/op, want <= 1 (the descriptor)", allocs)
	}
}

// TestTemplateRunAllocFree pins that the template engine adds zero
// allocations over the hand-rolled loop it replaced: the LLXInto+SCX cycle
// measured by TestSCXCycleAllocCeiling costs exactly one allocation (the
// descriptor), and the same transaction routed through template.Run — with
// its closure, Ctx-owned snapshot buffer, stats flush and policy hook —
// must cost exactly the same. The Ctx itself is cached on the Handle, so
// after the warm-up call nothing engine-side touches the heap.
func TestTemplateRunAllocFree(t *testing.T) {
	h := core.NewHandle()
	defer h.Release()
	r := core.NewRecord(1, []any{0})
	newVal := any("fresh") // pre-boxed: the cycle's only allocation is the descriptor
	var st template.OpStats
	attempt := func(c *template.Ctx) (struct{}, template.Action) {
		if _, s := c.LLX(r); s != core.LLXOK {
			t.Fatal("LLX failed")
		}
		if !c.SCX([]*core.Record{r}, nil, r.Field(0), newVal) {
			t.Fatal("SCX failed")
		}
		return struct{}{}, template.Done
	}
	template.Run(h, template.Immediate(), &st, attempt) // warm-up builds the Ctx
	allocs := testing.AllocsPerRun(1000, func() {
		template.Run(h, template.Immediate(), &st, attempt)
	})
	if allocs > 1 {
		t.Errorf("template.Run LLX+SCX cycle: %v allocs/op, want <= 1 (the descriptor, same as hand-rolled)", allocs)
	}
}

// TestHandleAcquireReleaseAllocFree pins that the pooled Handle roundtrip —
// the per-operation cost of the convenience API — is allocation-free after
// warmup: the Handle, its embedded Process, and its cached engine Ctx are
// all reused from the pool.
func TestHandleAcquireReleaseAllocFree(t *testing.T) {
	pool := core.NewProcessPool()
	pool.Acquire().Release() // warm-up mints the one pooled Handle
	allocs := testing.AllocsPerRun(1000, func() {
		pool.Acquire().Release()
	})
	if allocs != 0 {
		t.Errorf("Handle Acquire/Release: %v allocs/op, want 0 after warmup", allocs)
	}
}

// TestSessionUpdateAllocCeiling pins the whole stack end to end: a warm
// structure operation through a bound Session (engine + handle + de-boxed
// snapshot + descriptor recycling) is allocation-FREE. An Insert of an
// existing key is one LLX + one word SCX: the count is a raw uint64 (no
// boxing) and the descriptor comes from the reclamation freelist.
func TestSessionUpdateAllocCeiling(t *testing.T) {
	awaitMobileEpoch(t)
	m := newAllocMultiset()
	defer m.s.Handle().Release()
	for i := 0; i < 64; i++ {
		m.bump() // prime the descriptor-recycling pipeline
	}
	allocs := testing.AllocsPerRun(1000, func() {
		m.bump()
	})
	if allocs != 0 {
		t.Errorf("warm Session count-bump: %v allocs/op, want 0 (de-boxed count, recycled descriptor)", allocs)
	}
}

// TestSCXCycleRecycledAllocFree pins the hand-rolled GC-free steady state:
// an LLXFields+SCXWord cycle under an announced reclamation epoch recycles
// its descriptor, so the warm path performs zero heap allocations — the
// tightened form of TestSCXCycleAllocCeiling's one-descriptor ceiling.
func TestSCXCycleRecycledAllocFree(t *testing.T) {
	awaitMobileEpoch(t)
	p := core.NewProcess()
	l := p.Reclaimer()
	defer l.Release()
	r := core.NewTypedRecord(1, 0)
	var f core.Fields
	i := uint64(0)
	cycle := func() {
		i++
		l.Enter()
		defer l.Exit()
		if st := p.LLXFields(r, &f); st != core.LLXOK {
			t.Fatal("LLX failed")
		}
		if !p.SCXWord([]*core.Record{r}, nil, r.WordField(0), i) {
			t.Fatal("SCX failed")
		}
	}
	for j := 0; j < 64; j++ {
		cycle() // prime the descriptor-recycling pipeline
	}
	allocs := testing.AllocsPerRun(1000, cycle)
	if allocs != 0 {
		t.Errorf("announced LLX+SCX cycle: %v allocs/op, want 0 warm", allocs)
	}
}

// TestTemplateRunRecycledAllocFree pins the engine path at the same warm
// zero: template.Run announces the epoch itself, so a typed LLXF+SCXWord
// transaction through the engine allocates nothing once the descriptor
// pipeline is primed.
func TestTemplateRunRecycledAllocFree(t *testing.T) {
	awaitMobileEpoch(t)
	h := core.NewHandle()
	defer h.Release()
	r := core.NewTypedRecord(1, 0)
	i := uint64(0)
	attempt := func(c *template.Ctx) (struct{}, template.Action) {
		snap, s := c.LLXF(r)
		if s != core.LLXOK {
			t.Fatal("LLX failed")
		}
		if !c.SCXWord([]*core.Record{r}, nil, r.WordField(0), snap.Word(0)+i) {
			t.Fatal("SCX failed")
		}
		return struct{}{}, template.Done
	}
	for j := 0; j < 64; j++ {
		i++
		template.Run(h, template.Immediate(), nil, attempt)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		i++
		template.Run(h, template.Immediate(), nil, attempt)
	})
	if allocs != 0 {
		t.Errorf("warm template.Run LLXF+SCXWord cycle: %v allocs/op, want 0", allocs)
	}
}

// TestLLXFieldsAllocFree pins the de-boxed snapshot path: LLXFields into a
// caller-owned Fields performs zero heap allocations from the first call —
// no warmup required, because nothing is boxed and nothing is returned by
// reference.
func TestLLXFieldsAllocFree(t *testing.T) {
	p := core.NewProcess()
	r := core.NewTypedRecord(2, 2)
	var f core.Fields
	allocs := testing.AllocsPerRun(1000, func() {
		if st := p.LLXFields(r, &f); st != core.LLXOK {
			t.Fatal("LLX failed")
		}
	})
	if allocs != 0 {
		t.Errorf("LLXFields: %v allocs/op, want 0", allocs)
	}
}

// TestSCXStackLiteralVSequence pins that SCX does not retain its v/rset
// arguments: a V-sequence built as a slice literal at the call site must not
// force a heap allocation beyond the descriptor.
func TestSCXStackLiteralVSequence(t *testing.T) {
	p := core.NewProcess()
	r := core.NewRecord(1, []any{0})
	buf := make(core.Snapshot, 1)
	newVal := any("fresh")
	allocs := testing.AllocsPerRun(1000, func() {
		var st core.LLXStatus
		buf, st = p.LLXInto(r, buf)
		if st != core.LLXOK {
			t.Fatal("LLX failed")
		}
		if !p.SCX([]*core.Record{r}, nil, r.Field(0), newVal) {
			t.Fatal("SCX failed")
		}
	})
	if allocs > 1 {
		t.Errorf("LLXInto+SCX with literal V: %v allocs/op, want <= 1", allocs)
	}
}
