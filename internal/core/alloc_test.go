package core_test

import (
	"testing"

	"pragmaprim/internal/core"
)

// The allocation regression tests pin the fast-path allocation ceilings the
// DESIGN.md layout promises: LLXInto with an adequate caller buffer performs
// zero heap allocations, the LLX compatibility wrapper performs exactly one
// (the returned Snapshot), and an LLX+SCX cycle performs exactly one (the
// operation descriptor, which must stay fresh per SCX for ABA-safety).

func TestLLXIntoAllocFree(t *testing.T) {
	p := core.NewProcess()
	r := core.NewRecord(2, []any{1, "x"})
	buf := make(core.Snapshot, 2)
	allocs := testing.AllocsPerRun(1000, func() {
		var st core.LLXStatus
		buf, st = p.LLXInto(r, buf)
		if st != core.LLXOK {
			t.Fatal("LLX failed")
		}
	})
	if allocs != 0 {
		t.Errorf("LLXInto with reused buffer: %v allocs/op, want 0", allocs)
	}
}

func TestLLXWrapperAllocCeiling(t *testing.T) {
	p := core.NewProcess()
	r := core.NewRecord(2, []any{1, "x"})
	allocs := testing.AllocsPerRun(1000, func() {
		if _, st := p.LLX(r); st != core.LLXOK {
			t.Fatal("LLX failed")
		}
	})
	if allocs > 1 {
		t.Errorf("LLX: %v allocs/op, want <= 1 (the returned Snapshot)", allocs)
	}
}

func TestSCXCycleAllocCeiling(t *testing.T) {
	p := core.NewProcess()
	r := core.NewRecord(1, []any{0})
	buf := make(core.Snapshot, 1)
	v := make([]*core.Record, 1)
	newVal := any("fresh") // pre-boxed so the cycle's only allocation is the descriptor
	allocs := testing.AllocsPerRun(1000, func() {
		var st core.LLXStatus
		buf, st = p.LLXInto(r, buf)
		if st != core.LLXOK {
			t.Fatal("LLX failed")
		}
		v[0] = r
		if !p.SCX(v, nil, r.Field(0), newVal) {
			t.Fatal("SCX failed")
		}
	})
	if allocs > 1 {
		t.Errorf("LLXInto+SCX cycle: %v allocs/op, want <= 1 (the descriptor)", allocs)
	}
}

// TestSCXStackLiteralVSequence pins that SCX does not retain its v/rset
// arguments: a V-sequence built as a slice literal at the call site must not
// force a heap allocation beyond the descriptor.
func TestSCXStackLiteralVSequence(t *testing.T) {
	p := core.NewProcess()
	r := core.NewRecord(1, []any{0})
	buf := make(core.Snapshot, 1)
	newVal := any("fresh")
	allocs := testing.AllocsPerRun(1000, func() {
		var st core.LLXStatus
		buf, st = p.LLXInto(r, buf)
		if st != core.LLXOK {
			t.Fatal("LLX failed")
		}
		if !p.SCX([]*core.Record{r}, nil, r.Field(0), newVal) {
			t.Fatal("SCX failed")
		}
	})
	if allocs > 1 {
		t.Errorf("LLXInto+SCX with literal V: %v allocs/op, want <= 1", allocs)
	}
}
