package core_test

import (
	"sync"
	"testing"

	"pragmaprim/internal/core"
)

func TestSnapshotAllEmpty(t *testing.T) {
	p := core.NewProcess()
	snaps, ok := p.SnapshotAll(nil)
	if !ok || snaps != nil {
		t.Fatalf("SnapshotAll(nil) = (%v,%v)", snaps, ok)
	}
}

func TestSnapshotAllQuiescent(t *testing.T) {
	p := core.NewProcess()
	a := core.NewRecord(1, []any{1})
	b := core.NewRecord(2, []any{2, "x"})
	snaps, ok := p.SnapshotAll([]*core.Record{a, b})
	if !ok {
		t.Fatal("SnapshotAll failed with no contention")
	}
	if snaps[0][0] != 1 || snaps[1][0] != 2 || snaps[1][1] != "x" {
		t.Fatalf("snapshots = %v", snaps)
	}
	// Links survive a successful SnapshotAll: an SCX can consume them.
	if !p.SCX([]*core.Record{a, b}, nil, a.Field(0), 10) {
		t.Fatal("SCX after SnapshotAll failed")
	}
}

func TestSnapshotAllFailsAcrossChange(t *testing.T) {
	p := core.NewProcess()
	q := core.NewProcess()
	a := core.NewRecord(1, []any{1})
	b := core.NewRecord(1, []any{2})

	// Interleave manually: p links a, q modifies a, then p's SnapshotAll of
	// {a,b} must observe the conflict when it revalidates.
	mustLLX(t, p, a)
	mustLLX(t, q, a)
	if !q.SCX([]*core.Record{a}, nil, a.Field(0), 9) {
		t.Fatal("q SCX failed")
	}
	// p's stale link is irrelevant: SnapshotAll performs fresh LLXs, so it
	// should succeed and see the new value.
	snaps, ok := p.SnapshotAll([]*core.Record{a, b})
	if !ok {
		t.Fatal("SnapshotAll failed after quiesced change")
	}
	if snaps[0][0] != 9 {
		t.Fatalf("snapshot saw %v, want 9", snaps[0][0])
	}
}

func TestSnapshotAllFinalizedRecordFails(t *testing.T) {
	p := core.NewProcess()
	a := core.NewRecord(1, []any{1})
	b := core.NewRecord(1, []any{2})
	mustLLX(t, p, a)
	mustLLX(t, p, b)
	if !p.SCX([]*core.Record{a, b}, []*core.Record{b}, a.Field(0), 5) {
		t.Fatal("finalizing SCX failed")
	}
	if _, ok := p.SnapshotAll([]*core.Record{a, b}); ok {
		t.Fatal("SnapshotAll succeeded over a finalized record")
	}
}

// TestSnapshotAllConsistentUnderWrites is the cross-record analogue of the
// single-record snapshot test: a writer keeps two records moving in
// lockstep (a bumped first, then b), so any successful SnapshotAll must see
// a == b or a == b+1 — never b ahead of a, and never a two ahead.
func TestSnapshotAllConsistentUnderWrites(t *testing.T) {
	const rounds = 4000
	a := core.NewRecord(1, []any{0})
	b := core.NewRecord(1, []any{0})
	stop := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		p := core.NewProcess()
		for k := 1; ; k++ {
			select {
			case <-stop:
				return
			default:
			}
			for _, r := range []*core.Record{a, b} {
				for {
					if _, st := p.LLX(r); st != core.LLXOK {
						continue
					}
					if p.SCX([]*core.Record{r}, nil, r.Field(0), k) {
						break
					}
				}
			}
		}
	}()

	p := core.NewProcess()
	validated := 0
	for i := 0; i < rounds; i++ {
		snaps, ok := p.SnapshotAll([]*core.Record{a, b})
		if !ok {
			continue
		}
		va, vb := snaps[0][0].(int), snaps[1][0].(int)
		if va != vb && va != vb+1 {
			t.Fatalf("inconsistent cross-record snapshot a=%d b=%d", va, vb)
		}
		validated++
	}
	close(stop)
	wg.Wait()
	if validated == 0 {
		t.Skip("no snapshot validated under contention; inconclusive run")
	}
}
