package core

import "fmt"

// LLXStatus is the outcome of an LLX.
type LLXStatus int

// LLX outcomes.
const (
	// LLXOK: the LLX returned a snapshot of the record's mutable fields.
	LLXOK LLXStatus = iota + 1
	// LLXFinalized: the record has been finalized by a committed SCX and can
	// never change again.
	LLXFinalized
	// LLXFail: the LLX failed due to a concurrent SCX; retry.
	LLXFail
)

// String returns the status name for diagnostics.
func (s LLXStatus) String() string {
	switch s {
	case LLXOK:
		return "OK"
	case LLXFinalized:
		return "Finalized"
	case LLXFail:
		return "Fail"
	default:
		return "InvalidStatus"
	}
}

// Snapshot is an atomic snapshot of a Record's mutable fields, indexed like
// Record.Read. The caller owns the slice.
type Snapshot []any

// llxEntry is one row of the paper's per-process table of LLX results: the
// info pointer and raw field boxes read by the process's last LLX on a
// record.
type llxEntry struct {
	info  *SCXRecord
	boxes []*box
}

// Process is a participant in the protocol, holding the paper's per-process
// table of LLX results and per-process step Metrics. Create one Process per
// goroutine with NewProcess; a Process must not be used concurrently.
// Records and the data structures built from them are freely shared between
// Processes.
type Process struct {
	table   map[*Record]llxEntry
	Metrics Metrics
}

// NewProcess returns a fresh Process with an empty LLX table.
func NewProcess() *Process {
	return &Process{table: make(map[*Record]llxEntry)}
}

// LLX performs a load-link-extended on r (paper Figure 4, lines 1-16).
//
// On LLXOK it returns a snapshot of r's mutable fields and establishes a link
// that a subsequent SCX or VLX whose V-sequence contains r will depend on.
// LLXFinalized means r was finalized by a committed SCX. LLXFail means a
// concurrent SCX interfered; the caller should retry. Per the paper's
// linked-LLX definition, a successful LLX(r) remains linked until the process
// performs another LLX(r), an SCX whose V contains r, or an unsuccessful VLX
// whose V contains r.
func (p *Process) LLX(r *Record) (Snapshot, LLXStatus) {
	if r == nil {
		panic("core: LLX of nil Record")
	}
	p.Metrics.LLXOps++

	marked1 := r.marked.Load() // line 3: order of lines 3-6 matters
	rinfo := r.info.Load()     // line 4
	state := rinfo.State()     // line 5
	marked2 := r.marked.Load() // line 6

	// Line 7: r was not frozen at line 5.
	if state == StateAborted || (state == StateCommitted && !marked2) {
		// Line 8: read the mutable fields.
		boxes := make([]*box, len(r.mutable))
		vals := make(Snapshot, len(r.mutable))
		for i := range r.mutable {
			b := r.mutable[i].Load()
			boxes[i] = b
			vals[i] = b.val
		}
		// Line 9: r.info still points to the same SCX-record, so r was
		// unfrozen throughout and the values form a snapshot.
		if r.info.Load() == rinfo {
			p.table[r] = llxEntry{info: rinfo, boxes: boxes} // line 10
			p.Metrics.LLXSnapshots++
			return vals, LLXOK // line 11
		}
	}

	// Line 12: evaluated left to right with short-circuiting, exactly as in
	// the paper: help rinfo if it is in progress, then test marked1.
	finalized := state == StateCommitted ||
		(state == StateInProgress && p.help(rinfo))
	if finalized && marked1 {
		p.Metrics.LLXFinalized++
		return nil, LLXFinalized // line 13
	}

	// Line 15: help whatever SCX currently has r frozen, then fail.
	if inf := r.info.Load(); inf.State() == StateInProgress {
		p.help(inf)
	}
	p.Metrics.LLXFails++
	return nil, LLXFail // line 16
}

// SCX performs a store-conditional-extended (paper Figure 4, lines 17-21):
// atomically store newVal into the mutable field fld of one record in v and
// finalize every record in rset, provided no record in v has changed since
// this process's linked LLX on it. rset must be a subset of v, and fld.Rec
// must be in v. SCX reports whether it succeeded; on failure the caller must
// re-perform the LLXs before retrying.
//
// Preconditions (checked, panic on violation, as these are programming
// errors): the process has a linked LLX for every record in v, rset ⊆ v, and
// fld names a mutable field of a record in v. The paper's remaining
// precondition — newVal must differ from every value fld has held — is
// satisfied by construction because SCX boxes newVal freshly.
func (p *Process) SCX(v []*Record, rset []*Record, fld FieldRef, newVal any) bool {
	p.Metrics.SCXOps++
	u := p.buildSCXRecord(v, rset, fld, newVal)
	// Performing the SCX un-links the LLXs it consumed (Definition 7).
	for _, r := range v {
		delete(p.table, r)
	}
	ok := p.help(u) // line 21
	if ok {
		p.Metrics.SCXSuccesses++
	}
	return ok
}

// buildSCXRecord validates the SCX preconditions against the per-process LLX
// table and materializes the operation descriptor (paper lines 19-21).
func (p *Process) buildSCXRecord(v []*Record, rset []*Record, fld FieldRef, newVal any) *SCXRecord {
	if len(v) == 0 {
		panic("core: SCX with empty V sequence")
	}
	u := &SCXRecord{
		v:          v,
		r:          rset,
		newBox:     &box{val: newVal},
		infoFields: make([]*SCXRecord, len(v)),
	}
	u.state.Store(int32(StateInProgress))

	fldInV := false
	for i, r := range v {
		if r == nil {
			panic("core: SCX with nil Record in V")
		}
		e, ok := p.table[r]
		if !ok {
			panic("core: SCX without a linked LLX for a record in V")
		}
		u.infoFields[i] = e.info
		if r == fld.Rec {
			fldInV = true
		}
	}
	if !fldInV {
		panic("core: SCX fld does not name a record in V")
	}
	if fld.Field < 0 || fld.Field >= len(fld.Rec.mutable) {
		panic(fmt.Sprintf("core: SCX fld index %d out of range [0,%d)",
			fld.Field, len(fld.Rec.mutable)))
	}
	for _, r := range rset {
		inV := false
		for _, rv := range v {
			if rv == r {
				inV = true
				break
			}
		}
		if !inV {
			panic("core: SCX with a record in R that is not in V")
		}
	}
	u.fld = &fld.Rec.mutable[fld.Field]
	u.oldBox = p.table[fld.Rec].boxes[fld.Field] // line 20
	return u
}

// VLX performs a validate-extended on v (paper Figure 4, lines 43-48): it
// returns true iff, for every record in v, the record has not changed since
// this process's linked LLX on it. A successful VLX preserves the links; an
// unsuccessful VLX consumes them. Panics if the process lacks a linked LLX
// for some record in v.
func (p *Process) VLX(v []*Record) bool {
	p.Metrics.VLXOps++
	for _, r := range v {
		e, ok := p.table[r]
		if !ok {
			panic("core: VLX without a linked LLX for a record in V")
		}
		p.Metrics.VLXReads++
		if r.info.Load() != e.info { // line 47
			// An unsuccessful VLX un-links the LLXs for v (Definition 7).
			for _, rr := range v {
				delete(p.table, rr)
			}
			return false
		}
	}
	p.Metrics.VLXSuccesses++
	return true // line 48
}

// help executes the body of an SCX on behalf of whichever process created u
// (paper Figure 4, lines 22-42). It returns true iff the SCX committed.
func (p *Process) help(u *SCXRecord) bool {
	p.Metrics.HelpCalls++

	// Freeze every record in u.V, in order, to protect their mutable fields
	// from other SCXs (lines 24-35).
	for i, r := range u.v {
		rinfo := u.infoFields[i]
		callHook(StepFreezingCAS, u, r)
		p.Metrics.FreezingCASAttempts++
		if r.info.CompareAndSwap(rinfo, u) { // line 26: freezing CAS
			p.Metrics.FreezingCASSuccesses++
			continue
		}
		if r.info.Load() == u { // line 27: another helper froze r for u
			continue
		}
		// r is frozen for a different SCX.
		callHook(StepFrozenCheck, u, r)
		if u.allFrozen.Load() { // line 29: frozen check step
			// Every record was frozen for u at some point, so u has already
			// committed (line 31).
			return true
		}
		// Atomically unfreeze everything frozen for u (lines 34-35).
		callHook(StepAbort, u, r)
		u.state.Store(int32(StateAborted)) // abort step
		p.Metrics.AbortSteps++
		return false
	}

	callHook(StepFrozen, u, nil)
	u.allFrozen.Store(true) // line 37: frozen step
	p.Metrics.FrozenSteps++

	for _, r := range u.r {
		callHook(StepMark, u, r)
		r.marked.Store(true) // line 38: mark step
		p.Metrics.MarkSteps++
	}

	callHook(StepUpdateCAS, u, nil)
	p.Metrics.UpdateCASAttempts++
	if u.fld.CompareAndSwap(u.oldBox, u.newBox) { // line 39: update CAS
		p.Metrics.UpdateCASSuccesses++
	}

	callHook(StepCommit, u, nil)
	u.state.Store(int32(StateCommitted)) // line 41: commit step
	p.Metrics.CommitSteps++
	return true
}

// HasLink reports whether the process currently holds a linked LLX for r.
// Useful for assertions in data-structure code and tests.
func (p *Process) HasLink(r *Record) bool {
	_, ok := p.table[r]
	return ok
}
