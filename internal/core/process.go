package core

import (
	"fmt"
	"unsafe"

	"pragmaprim/internal/reclaim"
)

// LLXStatus is the outcome of an LLX.
type LLXStatus int

// LLX outcomes.
const (
	// LLXOK: the LLX returned a snapshot of the record's mutable fields.
	LLXOK LLXStatus = iota + 1
	// LLXFinalized: the record has been finalized by a committed SCX and can
	// never change again.
	LLXFinalized
	// LLXFail: the LLX failed due to a concurrent SCX; retry.
	LLXFail
)

// String returns the status name for diagnostics.
func (s LLXStatus) String() string {
	switch s {
	case LLXOK:
		return "OK"
	case LLXFinalized:
		return "Finalized"
	case LLXFail:
		return "Fail"
	default:
		return "InvalidStatus"
	}
}

// Snapshot is the legacy boxed snapshot of a Record's mutable fields,
// indexed like Record.Read. The caller owns the slice. Typed records
// snapshot into Fields instead.
type Snapshot []any

// llxEntry is one row of the paper's per-process table of LLX results: the
// info pointer and the raw field words read by the process's last LLX on a
// record. For legacy records the captured pointers are the *box values,
// preserving the box-identity update CAS.
type llxEntry struct {
	info *SCXRecord
	f    Fields
}

// Link-table geometry. The paper's V-sequences have k <= 4 for every
// structure in this repository, and links are consumed by the SCX/VLX that
// follows them almost immediately, so the set of *live* links is tiny. The
// inline table is a fixed-capacity open-addressed hash table (linear
// probing, backward-shift deletion) sized so the hot path never touches a
// Go map; links that overflow it — typically stale links abandoned by retry
// loops — are evicted, oldest first, to a lazily allocated spill map, which
// preserves the paper's linked-LLX semantics exactly.
const (
	linkTableBits = 4
	linkTableCap  = 1 << linkTableBits // power of two: hashing and probe masks rely on it
	linkTableMask = linkTableCap - 1
	// linkTableMax caps the inline load at 3/4 so probe chains stay short
	// and an empty slot always terminates a probe.
	linkTableMax = linkTableCap * 3 / 4
)

// linkTable is the per-process table of linked LLX results.
type linkTable struct {
	recs    [linkTableCap]*Record
	entries [linkTableCap]llxEntry
	stamps  [linkTableCap]uint64
	n       int
	stamp   uint64
	spill   map[*Record]llxEntry
	scratch llxEntry // staging for get hits served from spill
}

// home returns the preferred slot for r: fibonacci hashing over the record's
// address (records are heap-allocated and never move identity).
func (t *linkTable) home(r *Record) int {
	h := uint64(uintptr(unsafe.Pointer(r)))
	return int((h * 0x9E3779B97F4A7C15) >> (64 - linkTableBits))
}

// get returns the entry linked for r, or nil. The returned pointer is
// invalidated by the next operation on the table.
func (t *linkTable) get(r *Record) *llxEntry {
	i := t.home(r)
	for {
		switch t.recs[i] {
		case r:
			return &t.entries[i]
		case nil:
			if t.spill != nil {
				if e, ok := t.spill[r]; ok {
					t.scratch = e
					return &t.scratch
				}
			}
			return nil
		}
		i = (i + 1) & linkTableMask
	}
}

// put returns the entry slot for r, inserting r if it is not present. The
// caller fills the returned entry; its pointer is invalidated by the next
// put/del.
func (t *linkTable) put(r *Record) *llxEntry {
	t.stamp++
	i := t.home(r)
	for {
		switch t.recs[i] {
		case r:
			t.stamps[i] = t.stamp
			return &t.entries[i]
		case nil:
			// Not inline. A re-LLX of a spilled record moves it back inline:
			// it is hot again.
			if t.spill != nil {
				delete(t.spill, r)
			}
			if t.n == linkTableMax {
				t.evictOldest()
				// Eviction may have shifted slots; re-probe.
				return t.put(r)
			}
			t.recs[i] = r
			t.stamps[i] = t.stamp
			t.n++
			return &t.entries[i]
		}
		i = (i + 1) & linkTableMask
	}
}

// del removes the link for r, if any.
func (t *linkTable) del(r *Record) {
	i := t.home(r)
	for {
		switch t.recs[i] {
		case r:
			t.removeAt(i)
			return
		case nil:
			if t.spill != nil {
				delete(t.spill, r)
			}
			return
		}
		i = (i + 1) & linkTableMask
	}
}

// evictOldest moves the least recently linked inline entry to the spill map,
// preserving its link.
func (t *linkTable) evictOldest() {
	oldest := -1
	for i := range t.recs {
		if t.recs[i] != nil && (oldest < 0 || t.stamps[i] < t.stamps[oldest]) {
			oldest = i
		}
	}
	if t.spill == nil {
		t.spill = make(map[*Record]llxEntry)
	}
	t.spill[t.recs[oldest]] = t.entries[oldest]
	t.removeAt(oldest)
}

// removeAt empties slot i, backward-shifting any displaced entries so linear
// probing stays correct without tombstones.
func (t *linkTable) removeAt(i int) {
	t.n--
	j := i
	for {
		t.recs[i] = nil
		t.entries[i] = llxEntry{}
		for {
			j = (j + 1) & linkTableMask
			if t.recs[j] == nil {
				return
			}
			k := t.home(t.recs[j])
			// Move the entry at j into the hole at i unless its home k lies
			// cyclically in (i, j], in which case it is already reachable.
			if (j > i && (k <= i || k > j)) || (j < i && k <= i && k > j) {
				break
			}
		}
		t.recs[i] = t.recs[j]
		t.entries[i] = t.entries[j]
		t.stamps[i] = t.stamps[j]
		i = j
	}
}

// links counts the live links (inline + spilled); for tests.
func (t *linkTable) links() int { return t.n + len(t.spill) }

// Process is a participant in the protocol, holding the paper's per-process
// table of LLX results and per-process step Metrics. Create one Process per
// goroutine with NewProcess; a Process must not be used concurrently.
// Records and the data structures built from them are freely shared between
// Processes.
type Process struct {
	table   linkTable
	Metrics Metrics
	recl    *reclaim.Local
}

// NewProcess returns a fresh Process with an empty LLX table.
func NewProcess() *Process {
	return &Process{}
}

// Reclaimer returns the process's epoch-reclamation state, creating it on
// first use. The template engine announces every operation through it,
// which is what arms descriptor recycling on this process; raw Processes
// that never announce keep the classic allocate-and-abandon behavior.
func (p *Process) Reclaimer() *reclaim.Local {
	if p.recl == nil {
		p.recl = reclaim.NewLocal(nil)
	}
	return p.recl
}

// LLX performs a load-link-extended on r (paper Figure 4, lines 1-16).
//
// On LLXOK it returns a snapshot of r's mutable fields and establishes a link
// that a subsequent SCX or VLX whose V-sequence contains r will depend on.
// LLXFinalized means r was finalized by a committed SCX. LLXFail means a
// concurrent SCX interfered; the caller should retry. Per the paper's
// linked-LLX definition, a successful LLX(r) remains linked until the process
// performs another LLX(r), an SCX whose V contains r, or an unsuccessful VLX
// whose V contains r.
//
// LLX allocates a fresh Snapshot per call; hot loops should prefer LLXInto
// (legacy records) or LLXFields (typed records).
func (p *Process) LLX(r *Record) (Snapshot, LLXStatus) {
	return p.LLXInto(r, nil)
}

// LLXInto is the legacy boxed LLX with snapshot reuse: on LLXOK the
// snapshot is written into buf when cap(buf) suffices (a fresh slice is
// allocated only when it does not; nil buf allocates whenever the record has
// mutable fields). The returned Snapshot aliases buf, so the previous
// contents of buf are invalidated. With an adequate caller-owned buffer, an
// uncontended LLXInto on a record with at most maxInlineWidth mutable fields
// performs zero heap allocations. Panics on typed records, which snapshot
// through LLXFields.
func (p *Process) LLXInto(r *Record, buf Snapshot) (Snapshot, LLXStatus) {
	if r == nil {
		panic("core: LLX of nil Record")
	}
	if !r.legacy {
		panic("core: boxed LLX on a typed record; use LLXFields")
	}
	var stage Fields
	st := p.llx(r, &stage)
	if st != LLXOK {
		return nil, st
	}
	// Unbox the captured boxes into the caller's buffer.
	nf := int(r.np)
	if cap(buf) < nf {
		buf = make(Snapshot, nf)
	}
	vals := buf[:nf]
	for i := 0; i < nf; i++ {
		vals[i] = (*box)(stage.Ptr(i)).val
	}
	return vals, LLXOK
}

// LLXFields performs a load-link-extended on a typed record, capturing the
// snapshot into the caller-owned f. It is the allocation-free fast path:
// for records up to maxInlineWidth fields per kind it touches the heap only
// via the link table's spill map in pathological link patterns.
func (p *Process) LLXFields(r *Record, f *Fields) LLXStatus {
	if r == nil {
		panic("core: LLX of nil Record")
	}
	if r.legacy {
		panic("core: LLXFields on a legacy record; use LLXInto")
	}
	return p.llx(r, f)
}

// llx is the shared body of Figure 4, lines 1-16, capturing into f.
func (p *Process) llx(r *Record, f *Fields) LLXStatus {
	p.Metrics.LLXOps++

	marked1 := r.marked.Load() // line 3: order of lines 3-6 matters
	rinfo := r.info.Load()     // line 4
	state := rinfo.State()     // line 5
	marked2 := r.marked.Load() // line 6

	// Line 7: r was not frozen at line 5.
	if state == StateAborted || (state == StateCommitted && !marked2) {
		// Line 8: read the mutable fields into the caller's staging area;
		// they are published to the link table only after the line-9
		// validation.
		r.captureInto(f)
		// Line 9: r.info still points to the same SCX-record, so r was
		// unfrozen throughout and the values form a snapshot.
		if r.info.Load() == rinfo {
			e := p.table.put(r) // line 10
			e.info = rinfo
			e.f.copyFrom(f)
			p.Metrics.LLXSnapshots++
			return LLXOK // line 11
		}
	}

	// Line 12: evaluated left to right with short-circuiting, exactly as in
	// the paper: help rinfo if it is in progress, then test marked1.
	finalized := state == StateCommitted ||
		(state == StateInProgress && p.help(rinfo))
	if finalized && marked1 {
		p.Metrics.LLXFinalized++
		return LLXFinalized // line 13
	}

	// Line 15: help whatever SCX currently has r frozen, then fail.
	if inf := r.info.Load(); inf.State() == StateInProgress {
		p.help(inf)
	}
	p.Metrics.LLXFails++
	return LLXFail // line 16
}

// SCX performs a store-conditional-extended (paper Figure 4, lines 17-21):
// atomically store newVal into the legacy mutable field fld of one record in
// v and finalize every record in rset, provided no record in v has changed
// since this process's linked LLX on it. rset must be a subset of v, and
// fld.Rec must be in v. SCX reports whether it succeeded; on failure the
// caller must re-perform the LLXs before retrying.
//
// Preconditions (checked, panic on violation, as these are programming
// errors): the process has a linked LLX for every record in v, rset ⊆ v, and
// fld names a legacy mutable field of a record in v. The paper's remaining
// precondition — newVal must differ from every value fld has held — is
// satisfied by construction because SCX boxes newVal freshly.
//
// SCX performs at most one heap allocation (the operation descriptor), and
// zero once the process runs under an announced reclamation epoch (the
// template engine's default), where descriptors are recycled through
// internal/reclaim after their grace periods. Neither v nor rset is
// retained, so callers may reuse (or stack-allocate) the slices.
func (p *Process) SCX(v []*Record, rset []*Record, fld FieldRef, newVal any) bool {
	if fld.kind != fieldBoxed {
		panic("core: boxed SCX with a typed FieldRef; use SCXWord or SCXPtr")
	}
	u := p.buildSCXRecord(v, rset, fld)
	u.newBoxStore.val = newVal
	u.newPtr = unsafe.Pointer(&u.newBoxStore)
	return p.runSCX(u, v)
}

// SCXWord is SCX for a uint64 word field of a typed record. The caller must
// uphold the paper's Section 4.1 constraint directly: newWord must differ
// from every value the field has held during the record's current lifetime
// (all word fields in this repository are monotonically increasing counts,
// which satisfies it trivially).
func (p *Process) SCXWord(v []*Record, rset []*Record, fld FieldRef, newWord uint64) bool {
	if fld.kind != fieldWord {
		panic("core: SCXWord with a non-word FieldRef")
	}
	u := p.buildSCXRecord(v, rset, fld)
	u.newWord = newWord
	return p.runSCX(u, v)
}

// SCXPtr is SCX for a pointer field of a typed record. The Section 4.1
// constraint holds when newPtr is either freshly allocated or recycled via
// internal/reclaim (a recycled address cannot still be the expected old
// value of any in-flight helper, because the helper's announcement would
// have blocked the grace period; see DESIGN.md).
func (p *Process) SCXPtr(v []*Record, rset []*Record, fld FieldRef, newPtr unsafe.Pointer) bool {
	if fld.kind != fieldPtr {
		panic("core: SCXPtr with a non-pointer FieldRef")
	}
	u := p.buildSCXRecord(v, rset, fld)
	u.newPtr = newPtr
	return p.runSCX(u, v)
}

// runSCX consumes the links for v, executes the SCX body and retires the
// descriptor for recycling when the process runs under an announced epoch.
func (p *Process) runSCX(u *SCXRecord, v []*Record) bool {
	p.Metrics.SCXOps++
	// Performing the SCX un-links the LLXs it consumed (Definition 7).
	for _, r := range v {
		p.table.del(r)
	}
	ok := p.help(u) // line 21
	if ok {
		p.Metrics.SCXSuccesses++
	}
	if p.recl != nil && p.recl.Active() {
		// The descriptor stays reachable through the info fields of the
		// records it froze (and, for boxed SCXs, through its embedded box
		// installed in the target field); descReady gates its reuse on both,
		// and the limbo re-stamp rule adds a fresh grace period after the
		// last reference is displaced.
		descPool.Retire(p.recl, u)
	}
	return ok
}

// descPool recycles SCX descriptors. A descriptor is recyclable only after
// (a) its grace period, (b) no record in its V-sequence still designates it
// as info, and (c) its embedded legacy box, if installed by the update CAS,
// has been displaced from the target field.
var descPool = reclaim.NewPoolReady[SCXRecord](descReady)

func descReady(u *SCXRecord) bool {
	for _, r := range u.vSeq() {
		if r.info.Load() == u {
			return false
		}
	}
	if u.fldPtr != nil && u.newPtr == unsafe.Pointer(&u.newBoxStore) &&
		u.fldPtr.Load() == u.newPtr {
		return false
	}
	return true
}

// newSCXRecord returns a descriptor: recycled from the process's freelist
// when the process runs announced, freshly allocated otherwise. A fresh (or
// fully reclaimed) descriptor address is what preserves the info-field ABA
// argument of Lemma 12; see DESIGN.md for why the grace periods make reuse
// equivalent to freshness.
func (p *Process) newSCXRecord() *SCXRecord {
	if p.recl != nil && p.recl.Active() {
		if u := descPool.Get(p.recl); u != nil {
			u.resetForReuse()
			return u
		}
	}
	return &SCXRecord{}
}

// buildSCXRecord validates the SCX preconditions against the per-process LLX
// table and materializes the operation descriptor (paper lines 19-21): the
// V/R/info sequences land in the descriptor's inline arrays (heap slices
// only beyond maxInlineV) and the old value of the target field is taken
// from the linked LLX's captured snapshot (line 20). The caller fills in the
// kind-specific new value before running the SCX.
func (p *Process) buildSCXRecord(v []*Record, rset []*Record, fld FieldRef) *SCXRecord {
	if len(v) == 0 {
		panic("core: SCX with empty V sequence")
	}
	u := p.newSCXRecord()
	u.nv, u.nr = len(v), len(rset)
	var infos []*SCXRecord
	if len(v) > maxInlineV {
		// Copy, do not alias: v must not escape to the descriptor.
		u.vSpill = append([]*Record(nil), v...)
		u.infoSpill = make([]*SCXRecord, len(v))
		infos = u.infoSpill
	} else {
		copy(u.vInline[:], v)
		infos = u.infoInline[:len(v)]
	}
	if len(rset) > maxInlineV {
		u.rSpill = append([]*Record(nil), rset...)
	} else {
		copy(u.rInline[:], rset)
	}
	u.state.Store(int32(StateInProgress))

	fldInV := false
	for i, r := range v {
		if r == nil {
			panic("core: SCX with nil Record in V")
		}
		e := p.table.get(r)
		if e == nil {
			panic("core: SCX without a linked LLX for a record in V")
		}
		infos[i] = e.info
		if r == fld.Rec {
			fldInV = true
		}
	}
	if !fldInV {
		panic("core: SCX fld does not name a record in V")
	}
	for _, r := range rset {
		inV := false
		for _, rv := range v {
			if rv == r {
				inV = true
				break
			}
		}
		if !inV {
			panic("core: SCX with a record in R that is not in V")
		}
	}
	// Line 20: the old value comes from the linked LLX's snapshot.
	e := p.table.get(fld.Rec)
	switch fld.kind {
	case fieldWord:
		if fld.Field < 0 || fld.Field >= fld.Rec.NumWords() {
			panic(fmt.Sprintf("core: SCX word field index %d out of range [0,%d)",
				fld.Field, fld.Rec.NumWords()))
		}
		u.fldWord = fld.Rec.wslot(fld.Field)
		u.oldWord = e.f.Word(fld.Field)
	default: // fieldPtr and fieldBoxed share pointer storage
		if fld.Field < 0 || fld.Field >= fld.Rec.NumPtrs() {
			panic(fmt.Sprintf("core: SCX fld index %d out of range [0,%d)",
				fld.Field, fld.Rec.NumPtrs()))
		}
		u.fldPtr = fld.Rec.pslot(fld.Field)
		u.oldPtr = e.f.Ptr(fld.Field)
	}
	return u
}

// VLX performs a validate-extended on v (paper Figure 4, lines 43-48): it
// returns true iff, for every record in v, the record has not changed since
// this process's linked LLX on it. A successful VLX preserves the links; an
// unsuccessful VLX consumes them. Panics if the process lacks a linked LLX
// for some record in v.
func (p *Process) VLX(v []*Record) bool {
	p.Metrics.VLXOps++
	for _, r := range v {
		e := p.table.get(r)
		if e == nil {
			panic("core: VLX without a linked LLX for a record in V")
		}
		p.Metrics.VLXReads++
		if r.info.Load() != e.info { // line 47
			// An unsuccessful VLX un-links the LLXs for v (Definition 7).
			for _, rr := range v {
				p.table.del(rr)
			}
			return false
		}
	}
	p.Metrics.VLXSuccesses++
	return true // line 48
}

// help executes the body of an SCX on behalf of whichever process created u
// (paper Figure 4, lines 22-42). It returns true iff the SCX committed.
func (p *Process) help(u *SCXRecord) bool {
	p.Metrics.HelpCalls++

	// Freeze every record in u.V, in order, to protect their mutable fields
	// from other SCXs (lines 24-35).
	infos := u.infoSeq()
	for i, r := range u.vSeq() {
		rinfo := infos[i]
		callHook(StepFreezingCAS, u, r)
		p.Metrics.FreezingCASAttempts++
		if r.info.CompareAndSwap(rinfo, u) { // line 26: freezing CAS
			p.Metrics.FreezingCASSuccesses++
			continue
		}
		if r.info.Load() == u { // line 27: another helper froze r for u
			continue
		}
		// r is frozen for a different SCX.
		callHook(StepFrozenCheck, u, r)
		if u.allFrozen.Load() { // line 29: frozen check step
			// Every record was frozen for u at some point, so u has already
			// committed (line 31).
			return true
		}
		// Atomically unfreeze everything frozen for u (lines 34-35).
		callHook(StepAbort, u, r)
		u.state.Store(int32(StateAborted)) // abort step
		p.Metrics.AbortSteps++
		return false
	}

	callHook(StepFrozen, u, nil)
	u.allFrozen.Store(true) // line 37: frozen step
	p.Metrics.FrozenSteps++

	for _, r := range u.rSeq() {
		callHook(StepMark, u, r)
		r.marked.Store(true) // line 38: mark step
		p.Metrics.MarkSteps++
	}

	callHook(StepUpdateCAS, u, nil)
	p.Metrics.UpdateCASAttempts++
	// Line 39: update CAS on the target word. Word and pointer fields CAS
	// their raw values; the distinct-value precondition (boxed: fresh box
	// identity; word: monotone values; pointer: fresh or grace-period-
	// recycled addresses) is what makes a late helper's CAS fail benignly.
	var updated bool
	if u.fldWord != nil {
		updated = u.fldWord.CompareAndSwap(u.oldWord, u.newWord)
	} else {
		updated = u.fldPtr.CompareAndSwap(u.oldPtr, u.newPtr)
	}
	if updated {
		p.Metrics.UpdateCASSuccesses++
	}

	callHook(StepCommit, u, nil)
	u.state.Store(int32(StateCommitted)) // line 41: commit step
	p.Metrics.CommitSteps++
	return true
}

// HasLink reports whether the process currently holds a linked LLX for r.
// Useful for assertions in data-structure code and tests.
func (p *Process) HasLink(r *Record) bool {
	return p.table.get(r) != nil
}
