package core

// Metrics counts the shared-memory steps a Process performs, named after the
// step taxonomy of the paper's Section 4 (freezing CAS, update CAS, frozen
// step, mark step, commit step, abort step). The counters reproduce the
// paper's analytical cost claims: an uncontended SCX over k records that
// finalizes f of them performs exactly k+1 CAS steps (k freezing + 1 update)
// and f+2 writes (1 frozen step + f mark steps + 1 commit step), and a VLX
// over k records performs exactly k shared-memory reads.
//
// A Metrics belongs to a single Process and is updated without atomics; read
// it only from the owning goroutine, or after the Process has quiesced.
type Metrics struct {
	// CAS steps.
	FreezingCASAttempts  int64 // line 26 freezing CAS executions
	FreezingCASSuccesses int64 // freezing CASes that succeeded
	UpdateCASAttempts    int64 // line 39 update CAS executions
	UpdateCASSuccesses   int64 // update CASes that succeeded

	// Write steps.
	FrozenSteps int64 // line 37 allFrozen := true
	MarkSteps   int64 // line 38 r.marked := true
	CommitSteps int64 // line 41 state := Committed
	AbortSteps  int64 // line 34 state := Aborted

	// Shared-memory reads performed by VLX (line 47), one per record.
	VLXReads int64

	// Operation outcomes.
	LLXOps       int64 // LLX invocations
	LLXSnapshots int64 // LLXs returning a snapshot
	LLXFinalized int64 // LLXs returning Finalized
	LLXFails     int64 // LLXs returning Fail
	SCXOps       int64 // SCX invocations
	SCXSuccesses int64 // SCXs returning true
	VLXOps       int64 // VLX invocations
	VLXSuccesses int64 // VLXs returning true
	HelpCalls    int64 // invocations of the Help routine, own SCXs included
}

// CASSteps returns the total number of CAS instructions executed.
func (m *Metrics) CASSteps() int64 {
	return m.FreezingCASAttempts + m.UpdateCASAttempts
}

// WriteSteps returns the total number of plain shared-memory writes executed
// by the Help routine (frozen + mark + commit + abort steps).
func (m *Metrics) WriteSteps() int64 {
	return m.FrozenSteps + m.MarkSteps + m.CommitSteps + m.AbortSteps
}

// Reset zeroes all counters.
func (m *Metrics) Reset() { *m = Metrics{} }

// Add accumulates o into m. Use it to aggregate the metrics of several
// quiesced Processes.
func (m *Metrics) Add(o *Metrics) {
	m.FreezingCASAttempts += o.FreezingCASAttempts
	m.FreezingCASSuccesses += o.FreezingCASSuccesses
	m.UpdateCASAttempts += o.UpdateCASAttempts
	m.UpdateCASSuccesses += o.UpdateCASSuccesses
	m.FrozenSteps += o.FrozenSteps
	m.MarkSteps += o.MarkSteps
	m.CommitSteps += o.CommitSteps
	m.AbortSteps += o.AbortSteps
	m.VLXReads += o.VLXReads
	m.LLXOps += o.LLXOps
	m.LLXSnapshots += o.LLXSnapshots
	m.LLXFinalized += o.LLXFinalized
	m.LLXFails += o.LLXFails
	m.SCXOps += o.SCXOps
	m.SCXSuccesses += o.SCXSuccesses
	m.VLXOps += o.VLXOps
	m.VLXSuccesses += o.VLXSuccesses
	m.HelpCalls += o.HelpCalls
}
