package core

// SnapshotAll attempts an atomic snapshot of the mutable fields of several
// Data-records at once: it LLXs each record and then validates the set with
// a single VLX, which (by correctness property C4) certifies that no record
// changed between its LLX and the VLX — so the per-record snapshots coexist
// at the VLX's linearization point. This is the paper's intended use of VLX:
// a multi-record read costing only one extra read per record, with no CAS.
//
// On success it returns one snapshot per record, aligned with recs. It
// fails (nil, false) if any LLX fails or observes a finalized record, or if
// the VLX detects interference; callers retry. The links established by the
// LLXs remain usable on success, exactly as after a successful VLX.
func (p *Process) SnapshotAll(recs []*Record) ([]Snapshot, bool) {
	if len(recs) == 0 {
		return nil, true
	}
	snaps := make([]Snapshot, len(recs))
	for i, r := range recs {
		snap, st := p.LLX(r)
		if st != LLXOK {
			return nil, false
		}
		snaps[i] = snap
	}
	if !p.VLX(recs) {
		return nil, false
	}
	return snaps, true
}
