package core

import (
	"fmt"
	"unsafe"
)

// Fields is the typed snapshot view of a Record's mutable fields, produced
// by Process.LLXFields: nw uint64 words and np raw pointers captured
// atomically (correctness property C2). It is the de-boxed replacement for
// the legacy Snapshot []any — reading a snapshot value is an array index,
// not an interface unbox plus type assertion, and capturing one performs no
// heap allocation for records up to maxInlineWidth fields per kind.
//
// A Fields value is caller-owned scratch: LLXFields overwrites it wholesale,
// so one value can be reused across any number of LLXs (the template engine
// keeps a small array of them per handle). The zero value is ready to use.
type Fields struct {
	nw, np uint8
	words  [maxInlineWidth]uint64
	ptrs   [maxInlineWidth]unsafe.Pointer
	wspill []uint64
	pspill []unsafe.Pointer
}

// NumWords returns the number of captured word fields.
func (f *Fields) NumWords() int { return int(f.nw) }

// NumPtrs returns the number of captured pointer fields.
func (f *Fields) NumPtrs() int { return int(f.np) }

// Word returns captured word field i.
func (f *Fields) Word(i int) uint64 {
	if i < 0 || i >= int(f.nw) {
		panic(fmt.Sprintf("core: snapshot word index %d out of range [0,%d)", i, f.nw))
	}
	if f.wspill != nil {
		return f.wspill[i]
	}
	return f.words[i]
}

// Ptr returns captured pointer field i.
func (f *Fields) Ptr(i int) unsafe.Pointer {
	if i < 0 || i >= int(f.np) {
		panic(fmt.Sprintf("core: snapshot pointer index %d out of range [0,%d)", i, f.np))
	}
	if f.pspill != nil {
		return f.pspill[i]
	}
	return f.ptrs[i]
}

// copyFrom copies src's captured values into dst. The inline arrays copy
// as two fixed-size (branch-free) block moves, which the benchmarks showed
// beats both a whole-struct copy and width-bounded loops for the
// one-to-two-field records every structure here uses (the link table
// copies a Fields per LLX).
func (dst *Fields) copyFrom(src *Fields) {
	dst.nw, dst.np = src.nw, src.np
	dst.wspill, dst.pspill = src.wspill, src.pspill
	dst.words = src.words
	dst.ptrs = src.ptrs
}

// captureInto loads every mutable field of r into f (paper Figure 4 line 8;
// the caller validates with the line-9 info re-read). Wide records allocate
// their spill slices here, once per capture.
func (r *Record) captureInto(f *Fields) {
	f.nw, f.np = r.nw, r.np
	f.wspill, f.pspill = nil, nil
	if r.nw > maxInlineWidth {
		f.wspill = make([]uint64, r.nw)
		for i := range f.wspill {
			f.wspill[i] = r.wordSpill[i].Load()
		}
	} else {
		for i := 0; i < int(r.nw); i++ {
			f.words[i] = r.wordsInline[i].Load()
		}
	}
	if r.np > maxInlineWidth {
		f.pspill = make([]unsafe.Pointer, r.np)
		for i := range f.pspill {
			f.pspill[i] = r.ptrSpill[i].Load()
		}
	} else {
		for i := 0; i < int(r.np); i++ {
			f.ptrs[i] = r.ptrsInline[i].Load()
		}
	}
}
