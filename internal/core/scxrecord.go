package core

import (
	"sync/atomic"
	"unsafe"
)

// State is the lifecycle state of an SCX-record (paper Figure 2/7). A newly
// created SCX-record is InProgress; it transitions exactly once, to Committed
// (the SCX's update took effect) or Aborted (the SCX failed to freeze all of
// V). The dummy SCX-record is permanently Aborted.
type State int32

// SCX-record states.
const (
	StateInProgress State = iota + 1
	StateCommitted
	StateAborted
)

// String returns the state name for diagnostics.
func (s State) String() string {
	switch s {
	case StateInProgress:
		return "InProgress"
	case StateCommitted:
		return "Committed"
	case StateAborted:
		return "Aborted"
	default:
		return "InvalidState"
	}
}

// maxInlineV is the V-sequence length an SCXRecord holds inline. The paper's
// structures (and all of this repository's) use k <= 4; longer sequences
// spill to heap slices.
const maxInlineV = 4

// SCXRecord is an operation descriptor holding enough information for any
// process to complete an in-progress SCX (paper Figure 1). While an SCX is
// active, the info fields of the records in its V sequence point at its
// SCXRecord, freezing them: a frozen record may be changed only on behalf of
// that SCX. SCXRecords are exposed read-only, for tests and instrumentation.
//
// The descriptor is a single allocation: the V and R sequences and the
// per-record info snapshot live in fixed inline arrays (slices are used only
// when a sequence exceeds maxInlineV). The target field is stored de-boxed
// as either a word slot with old/new uint64 values or a pointer slot with
// old/new raw pointers; a legacy boxed SCX embeds its fresh box in the
// descriptor itself (newBoxStore) and runs as a pointer CAS on the box
// address.
//
// Descriptor identity is what the info-field CASes compare (Lemma 12), so a
// descriptor address may be reused only when no process can still compare
// against its previous life: processes running under internal/reclaim's
// announced epochs recycle descriptors after a grace period gated on every
// such reference being displaced (see descReady and DESIGN.md); processes
// outside announced epochs allocate freshly and leave reclamation to the GC.
type SCXRecord struct {
	nv, nr     int
	vInline    [maxInlineV]*Record
	rInline    [maxInlineV]*Record
	infoInline [maxInlineV]*SCXRecord
	vSpill     []*Record
	rSpill     []*Record
	infoSpill  []*SCXRecord

	// The target field: exactly one of fldWord/fldPtr is non-nil.
	fldWord *atomic.Uint64
	fldPtr  *atomicPtr
	oldWord uint64
	newWord uint64
	oldPtr  unsafe.Pointer
	newPtr  unsafe.Pointer

	newBoxStore box // legacy boxed SCX: the freshly boxed new value

	state     atomic.Int32
	allFrozen atomic.Bool
}

// resetForReuse clears a recycled descriptor back to a blank slate. It runs
// only on descriptors handed back by internal/reclaim, i.e. after the grace
// periods proved no process can still observe the previous life.
func (u *SCXRecord) resetForReuse() {
	u.nv, u.nr = 0, 0
	u.vInline = [maxInlineV]*Record{}
	u.rInline = [maxInlineV]*Record{}
	u.infoInline = [maxInlineV]*SCXRecord{}
	u.vSpill, u.rSpill, u.infoSpill = nil, nil, nil
	u.fldWord, u.fldPtr = nil, nil
	u.oldWord, u.newWord = 0, 0
	u.oldPtr, u.newPtr = nil, nil
	u.newBoxStore.val = nil
	u.allFrozen.Store(false)
	u.state.Store(0)
}

// vSeq returns the V sequence without allocating (the inline case slices the
// descriptor's own array). The result must not be modified.
func (u *SCXRecord) vSeq() []*Record {
	if u.vSpill != nil {
		return u.vSpill
	}
	return u.vInline[:u.nv]
}

// rSeq returns the R sequence without allocating. The result must not be
// modified.
func (u *SCXRecord) rSeq() []*Record {
	if u.rSpill != nil {
		return u.rSpill
	}
	return u.rInline[:u.nr]
}

// infoSeq returns the info pointers read by the linked LLXs for V, aligned
// with vSeq. The result must not be modified.
func (u *SCXRecord) infoSeq() []*SCXRecord {
	if u.infoSpill != nil {
		return u.infoSpill
	}
	return u.infoInline[:u.nv]
}

// dummySCXRecord is the SCX-record all Records' info fields initially point
// at. It is permanently in state Aborted and no process ever helps it
// (paper Lemma 11).
var dummySCXRecord = newDummySCXRecord()

func newDummySCXRecord() *SCXRecord {
	u := &SCXRecord{}
	u.state.Store(int32(StateAborted))
	return u
}

// State returns the current state of u.
func (u *SCXRecord) State() State { return State(u.state.Load()) }

// AllFrozen reports whether u's allFrozen bit has been set, meaning every
// record in V was frozen for u and the SCX can no longer be aborted.
func (u *SCXRecord) AllFrozen() bool { return u.allFrozen.Load() }

// V returns the records the SCX depends on, in freezing order. The returned
// slice must not be modified.
func (u *SCXRecord) V() []*Record { return u.vSeq() }

// R returns the records the SCX finalizes. The returned slice must not be
// modified.
func (u *SCXRecord) R() []*Record { return u.rSeq() }
