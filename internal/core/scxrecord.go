package core

import "sync/atomic"

// State is the lifecycle state of an SCX-record (paper Figure 2/7). A newly
// created SCX-record is InProgress; it transitions exactly once, to Committed
// (the SCX's update took effect) or Aborted (the SCX failed to freeze all of
// V). The dummy SCX-record is permanently Aborted.
type State int32

// SCX-record states.
const (
	StateInProgress State = iota + 1
	StateCommitted
	StateAborted
)

// String returns the state name for diagnostics.
func (s State) String() string {
	switch s {
	case StateInProgress:
		return "InProgress"
	case StateCommitted:
		return "Committed"
	case StateAborted:
		return "Aborted"
	default:
		return "InvalidState"
	}
}

// maxInlineV is the V-sequence length an SCXRecord holds inline. The paper's
// structures (and all of this repository's) use k <= 4; longer sequences
// spill to heap slices.
const maxInlineV = 4

// SCXRecord is an operation descriptor holding enough information for any
// process to complete an in-progress SCX (paper Figure 1). While an SCX is
// active, the info fields of the records in its V sequence point at its
// SCXRecord, freezing them: a frozen record may be changed only on behalf of
// that SCX. SCXRecords are exposed read-only, for tests and instrumentation.
//
// The descriptor is a single allocation on the fast path: the V and R
// sequences and the per-record info snapshot live in fixed inline arrays
// (slices are used only when a sequence exceeds maxInlineV), and the fresh
// box for the new field value is embedded in the descriptor (newBoxStore).
// Because a descriptor is freshly allocated per SCX and never reused, the
// embedded box's address is fresh too, preserving the ABA argument; see
// DESIGN.md for why descriptor reuse would be unsound.
type SCXRecord struct {
	nv, nr      int
	vInline     [maxInlineV]*Record
	rInline     [maxInlineV]*Record
	infoInline  [maxInlineV]*SCXRecord
	vSpill      []*Record
	rSpill      []*Record
	infoSpill   []*SCXRecord
	fld         *atomic.Pointer[box]
	newBox      *box
	oldBox      *box
	newBoxStore box
	state       atomic.Int32
	allFrozen   atomic.Bool
}

// vSeq returns the V sequence without allocating (the inline case slices the
// descriptor's own array). The result must not be modified.
func (u *SCXRecord) vSeq() []*Record {
	if u.vSpill != nil {
		return u.vSpill
	}
	return u.vInline[:u.nv]
}

// rSeq returns the R sequence without allocating. The result must not be
// modified.
func (u *SCXRecord) rSeq() []*Record {
	if u.rSpill != nil {
		return u.rSpill
	}
	return u.rInline[:u.nr]
}

// infoSeq returns the info pointers read by the linked LLXs for V, aligned
// with vSeq. The result must not be modified.
func (u *SCXRecord) infoSeq() []*SCXRecord {
	if u.infoSpill != nil {
		return u.infoSpill
	}
	return u.infoInline[:u.nv]
}

// dummySCXRecord is the SCX-record all Records' info fields initially point
// at. It is permanently in state Aborted and no process ever helps it
// (paper Lemma 11).
var dummySCXRecord = newDummySCXRecord()

func newDummySCXRecord() *SCXRecord {
	u := &SCXRecord{}
	u.state.Store(int32(StateAborted))
	return u
}

// State returns the current state of u.
func (u *SCXRecord) State() State { return State(u.state.Load()) }

// AllFrozen reports whether u's allFrozen bit has been set, meaning every
// record in V was frozen for u and the SCX can no longer be aborted.
func (u *SCXRecord) AllFrozen() bool { return u.allFrozen.Load() }

// V returns the records the SCX depends on, in freezing order. The returned
// slice must not be modified.
func (u *SCXRecord) V() []*Record { return u.vSeq() }

// R returns the records the SCX finalizes. The returned slice must not be
// modified.
func (u *SCXRecord) R() []*Record { return u.rSeq() }
