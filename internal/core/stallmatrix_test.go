package core_test

import (
	"fmt"
	"testing"

	"pragmaprim/internal/core"
)

// TestStallMatrix stalls the SCX owner at every step of the Help routine in
// turn — the systematic version of the paper's crash model — and verifies
// that a single helping LLX drives the operation to the identical final
// state every time: field updated once, R finalized, descriptor Committed,
// owner still reporting success on resumption.
func TestStallMatrix(t *testing.T) {
	stallPoints := []struct {
		kind core.StepKind
		// match narrows multi-record steps to a single deterministic site
		// (e.g. the freezing CAS on the second record).
		matchSecondRecord bool
	}{
		{core.StepFreezingCAS, true},
		{core.StepFrozen, false},
		{core.StepMark, false},
		{core.StepUpdateCAS, false},
		{core.StepCommit, false},
	}

	for _, sp := range stallPoints {
		t.Run(fmt.Sprintf("stallAt%v", sp.kind), func(t *testing.T) {
			dst := core.NewRecord(1, []any{"old"})
			victim := core.NewRecord(1, []any{7})

			var match func(k core.StepKind, u *core.SCXRecord, r *core.Record) bool
			if sp.matchSecondRecord {
				match = func(k core.StepKind, _ *core.SCXRecord, r *core.Record) bool {
					return k == sp.kind && r == victim
				}
			} else {
				match = func(k core.StepKind, _ *core.SCXRecord, _ *core.Record) bool {
					return k == sp.kind
				}
			}
			s := newStall(t, match)

			owner := core.NewProcess()
			mustLLX(t, owner, dst)
			mustLLX(t, owner, victim)

			done := make(chan bool)
			go func() {
				done <- owner.SCX([]*core.Record{dst, victim},
					[]*core.Record{victim}, dst.Field(0), "new")
			}()
			u := s.wait(t)

			// One helping LLX on the frozen dst must complete the whole
			// operation, whatever step the owner stalled at.
			helper := core.NewProcess()
			_, st := helper.LLX(dst)
			if st == core.LLXOK {
				t.Fatalf("LLX on record frozen for an in-progress SCX returned OK")
			}
			if got := u.State(); got != core.StateCommitted {
				t.Fatalf("state after helping = %v, want Committed", got)
			}
			if got := dst.Read(0); got != "new" {
				t.Fatalf("dst = %v, want new", got)
			}
			if !victim.Finalized() {
				t.Fatal("victim not finalized after helping")
			}
			if _, st := helper.LLX(victim); st != core.LLXFinalized {
				t.Fatalf("LLX(victim) = %v, want Finalized", st)
			}

			// The owner resumes past its stalled step and still reports
			// success; the field is not applied twice.
			close(s.release)
			if !<-done {
				t.Fatal("owner SCX reported failure after being helped")
			}
			if got := dst.Read(0); got != "new" {
				t.Fatalf("dst after owner resumed = %v (double apply?)", got)
			}
			totalUpdates := owner.Metrics.UpdateCASSuccesses +
				helper.Metrics.UpdateCASSuccesses
			if totalUpdates != 1 {
				t.Fatalf("update CAS successes = %d, want exactly 1", totalUpdates)
			}
		})
	}
}

// TestStallMatrixSurvivorThroughput stalls an owner at each step and checks
// other processes can still complete a batch of unrelated and related
// operations (the paper's non-blocking guarantee, P2/P4).
func TestStallMatrixSurvivorThroughput(t *testing.T) {
	for _, kind := range []core.StepKind{core.StepFrozen, core.StepMark, core.StepUpdateCAS, core.StepCommit} {
		t.Run(fmt.Sprintf("stallAt%v", kind), func(t *testing.T) {
			shared := core.NewRecord(1, []any{0})
			victim := core.NewRecord(1, []any{0})

			s := newStall(t, func(k core.StepKind, _ *core.SCXRecord, _ *core.Record) bool {
				return k == kind
			})

			// The owner's SCX finalizes victim so that every stall point,
			// including the mark step, exists on its path.
			owner := core.NewProcess()
			mustLLX(t, owner, shared)
			mustLLX(t, owner, victim)
			done := make(chan bool)
			go func() {
				done <- owner.SCX([]*core.Record{shared, victim},
					[]*core.Record{victim}, shared.Field(0), -1)
			}()
			s.wait(t)

			// A survivor must complete 1000 increments on the SAME record,
			// helping the stalled SCX out of the way first.
			p := core.NewProcess()
			completed := 0
			for completed < 1000 {
				snap, st := p.LLX(shared)
				if st != core.LLXOK {
					continue
				}
				if p.SCX([]*core.Record{shared}, nil, shared.Field(0), snap[0].(int)+1) {
					completed++
				}
			}

			close(s.release)
			if !<-done {
				t.Fatal("stalled owner reported failure")
			}
			// The helped SCX wrote -1 before the survivor's 1000 increments.
			if got := shared.Read(0); got != 999 {
				t.Fatalf("final value = %v, want 999", got)
			}
		})
	}
}
