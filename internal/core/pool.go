package core

import (
	"sync/atomic"
)

// Handle is an exclusive claim on a Process, the unit the goroutine-facing
// data-structure APIs work with. A Handle embeds its Process by value, so
// acquiring a pooled Handle reuses the Process's link table (and any engine
// scratch state attached via Scratch) without touching the heap.
//
// A Handle must not be used concurrently, and must not be used after Release.
type Handle struct {
	proc    Process
	pool    *ProcessPool
	scratch any // lazily attached engine state (see Scratch); reused across acquisitions
}

// NewHandle returns a Handle backed by a fresh Process and no pool; Release
// on it is a no-op. Useful when the caller wants to manage lifetime itself.
func NewHandle() *Handle {
	return &Handle{}
}

// Process returns the Handle's Process, for callers that need the raw
// LLX/SCX/VLX primitives.
func (h *Handle) Process() *Process {
	return &h.proc
}

// Release returns the Handle to the pool it was acquired from. The caller
// must not use the Handle afterwards. Releasing a pool-less Handle only
// parks its reclamation state (see below); the Handle itself stays usable
// by callers that manage lifetime themselves.
//
// Release also parks the Process's reclamation announcement: under the
// amortized epoch scheme the announcement stays published across
// operations, and a Handle sitting in a pool (or dropped) would otherwise
// pin the global epoch with a stale value. A Handle the pool cannot take
// back is gone for good, so its announcement slot is returned to the
// reclamation domain deterministically instead of waiting for the GC
// finalizer to scavenge it.
func (h *Handle) Release() {
	r := h.proc.recl
	if r != nil && !r.Active() {
		r.Park()
	}
	if h.pool != nil && !h.pool.put(h) {
		if r != nil && !r.Active() {
			r.Release()
		}
	}
}

// Scratch returns the opaque per-Handle scratch slot. The slot is owned by
// internal/template, which caches its (allocation-heavy) per-operation
// context here so that pooled handles run updates allocation-free after
// warmup. It survives Release/Acquire cycles by design: the state it holds
// is only ever meaningful between operations, never across them.
func (h *Handle) Scratch() any { return h.scratch }

// SetScratch stores v in the scratch slot (see Scratch).
func (h *Handle) SetScratch(v any) { h.scratch = v }

// poolSlots is the capacity of a ProcessPool's slot array. Handles beyond
// this many simultaneously released simply fall to the garbage collector,
// so the pool never grows; 64 comfortably covers GOMAXPROCS-scale fan-out.
const poolSlots = 64

// ProcessPool is a lock-free free list of Handles. Acquire pops a pooled
// Handle (or builds a fresh one when the pool is empty); Release pushes it
// back. The pool is a fixed array of slots claimed and emptied with
// single-word CAS: a slot holding h means exactly "h is free". Because a
// slot transition is always between nil and a specific Handle, a successful
// CAS(h -> nil) proves h was free at that instant — the value carries the
// ownership, so the classic ABA hazard of a linked free list cannot arise,
// and no operation ever blocks another (a failed CAS means some other
// process completed an acquire or release).
//
// Ownership rules: a Handle is owned by exactly one goroutine from Acquire
// until Release. The pool never touches a Handle while it is owned, and an
// owned Handle holds no reference back into the pool other than for Release.
// Double-Release is a caller bug with undefined behaviour (the same Handle
// would be handed to two goroutines).
type ProcessPool struct {
	slots [poolSlots]poolSlot
	// rot spreads acquire/release probes over the slot array so independent
	// goroutines do not all hammer slot 0.
	rot atomic.Uint32
}

// poolSlot pads each pool entry to its own cache line: neighboring slots
// are CASed by unrelated goroutines, and unpadded they would false-share
// eight to a line.
type poolSlot struct {
	h atomic.Pointer[Handle]
	_ [56]byte
}

// NewProcessPool returns an empty pool. The zero value is also ready to use.
func NewProcessPool() *ProcessPool {
	return &ProcessPool{}
}

// Acquire returns an exclusively owned Handle, reusing a pooled one when
// available. The Handle must be returned with Release.
func (pp *ProcessPool) Acquire() *Handle {
	start := int(pp.rot.Add(1) % poolSlots) // modulo before int: stays in range on 32-bit
	for i := 0; i < poolSlots; i++ {
		slot := &pp.slots[(start+i)%poolSlots].h
		if h := slot.Load(); h != nil && slot.CompareAndSwap(h, nil) {
			return h
		}
	}
	return &Handle{pool: pp}
}

// put offers h back to the pool, reporting whether a slot took it; when
// every slot is taken the Handle is dropped for the garbage collector and
// put returns false (Release uses that to retire reclamation state).
func (pp *ProcessPool) put(h *Handle) bool {
	start := int(pp.rot.Add(1) % poolSlots)
	for i := 0; i < poolSlots; i++ {
		slot := &pp.slots[(start+i)%poolSlots].h
		if slot.Load() == nil && slot.CompareAndSwap(nil, h) {
			return true
		}
	}
	return false
}

// pooled counts the Handles currently parked in the pool; for tests.
func (pp *ProcessPool) pooled() int {
	n := 0
	for i := range pp.slots {
		if pp.slots[i].h.Load() != nil {
			n++
		}
	}
	return n
}

// defaultPool backs the package-level convenience path used by data
// structures whose callers did not bring their own Handle.
var defaultPool ProcessPool

// AcquireHandle returns a Handle from the shared default pool. It is the
// goroutine-scoped convenience path: acquire once per goroutine (or per
// batch of operations), pass the Handle to the structures' Attach views, and
// Release when done.
func AcquireHandle() *Handle {
	return defaultPool.Acquire()
}
