package core

import (
	"math/rand"
	"testing"
	"unsafe"
)

// White-box tests for the open-addressed link table: linear probing,
// backward-shift deletion, and oldest-first eviction to the spill map.

func newTestRecords(n int) []*Record {
	recs := make([]*Record, n)
	for i := range recs {
		recs[i] = NewRecord(1, []any{i})
	}
	return recs
}

func TestLinkTablePutGetDel(t *testing.T) {
	var tab linkTable
	recs := newTestRecords(linkTableMax)
	for i, r := range recs {
		e := tab.put(r)
		e.info = dummySCXRecord
		e.f.np = 1
		e.f.ptrs[0] = unsafe.Pointer(&box{val: i})
	}
	if tab.links() != linkTableMax {
		t.Fatalf("links = %d, want %d", tab.links(), linkTableMax)
	}
	if tab.spill != nil {
		t.Fatalf("spill map allocated below capacity")
	}
	for i, r := range recs {
		e := tab.get(r)
		if e == nil {
			t.Fatalf("get(%d) = nil", i)
		}
		if (*box)(e.f.ptrs[0]).val != i {
			t.Errorf("get(%d) box = %v, want %d", i, (*box)(e.f.ptrs[0]).val, i)
		}
	}
	// Delete in a scrambled order, checking the survivors after each step:
	// backward-shift deletion must never strand a probe chain.
	order := rand.New(rand.NewSource(42)).Perm(len(recs))
	deleted := make(map[int]bool)
	for _, i := range order {
		tab.del(recs[i])
		deleted[i] = true
		for j, r := range recs {
			e := tab.get(r)
			if deleted[j] && e != nil {
				t.Fatalf("deleted record %d still present", j)
			}
			if !deleted[j] && e == nil {
				t.Fatalf("record %d lost after deleting %d", j, i)
			}
		}
	}
	if tab.links() != 0 {
		t.Errorf("links = %d after deleting all, want 0", tab.links())
	}
}

func TestLinkTableOverwrite(t *testing.T) {
	var tab linkTable
	r := NewRecord(1, []any{0})
	e := tab.put(r)
	e.f.np = 1
	e.f.ptrs[0] = unsafe.Pointer(&box{val: "first"})
	e = tab.put(r)
	if e.f.ptrs[0] == nil || (*box)(e.f.ptrs[0]).val != "first" {
		// put on an existing key returns the same slot; the caller
		// overwrites it, so the old contents are still visible here.
		t.Fatalf("put did not return the existing slot")
	}
	e.f.ptrs[0] = unsafe.Pointer(&box{val: "second"})
	if got := tab.get(r); (*box)(got.f.ptrs[0]).val != "second" {
		t.Errorf("entry = %v, want second", (*box)(got.f.ptrs[0]).val)
	}
	if tab.links() != 1 {
		t.Errorf("links = %d, want 1", tab.links())
	}
}

func TestLinkTableEvictionOrder(t *testing.T) {
	var tab linkTable
	recs := newTestRecords(linkTableMax + 3)
	for _, r := range recs {
		e := tab.put(r)
		e.info = dummySCXRecord
	}
	// The three oldest links must have been evicted to the spill map, the
	// rest kept inline.
	if len(tab.spill) != 3 {
		t.Fatalf("spill size = %d, want 3", len(tab.spill))
	}
	for i := 0; i < 3; i++ {
		if _, ok := tab.spill[recs[i]]; !ok {
			t.Errorf("oldest link %d not in spill map", i)
		}
	}
	// Every link is still reachable.
	for i, r := range recs {
		if tab.get(r) == nil {
			t.Errorf("link %d unreachable after eviction", i)
		}
	}
	if tab.links() != len(recs) {
		t.Errorf("links = %d, want %d", tab.links(), len(recs))
	}
	// Re-putting a spilled record moves it back inline.
	tab.put(recs[0])
	if _, ok := tab.spill[recs[0]]; ok {
		t.Errorf("re-put record still in spill map")
	}
	if tab.get(recs[0]) == nil {
		t.Errorf("re-put record unreachable")
	}
}

func TestLinkTableChurn(t *testing.T) {
	// Randomized churn against a map oracle.
	var tab linkTable
	oracle := make(map[*Record]*SCXRecord)
	recs := newTestRecords(64)
	rng := rand.New(rand.NewSource(7))
	infos := []*SCXRecord{dummySCXRecord, newDummySCXRecord(), newDummySCXRecord()}
	for step := 0; step < 10000; step++ {
		r := recs[rng.Intn(len(recs))]
		switch rng.Intn(3) {
		case 0, 1:
			info := infos[rng.Intn(len(infos))]
			tab.put(r).info = info
			oracle[r] = info
		case 2:
			tab.del(r)
			delete(oracle, r)
		}
		if tab.links() != len(oracle) {
			t.Fatalf("step %d: links = %d, oracle = %d", step, tab.links(), len(oracle))
		}
	}
	for i, r := range recs {
		e := tab.get(r)
		want, ok := oracle[r]
		if ok != (e != nil) {
			t.Fatalf("record %d: present=%v, oracle=%v", i, e != nil, ok)
		}
		if ok && e.info != want {
			t.Fatalf("record %d: wrong info", i)
		}
	}
}
