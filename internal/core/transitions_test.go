package core_test

import (
	"fmt"
	"sync"
	"testing"

	"pragmaprim/internal/core"
)

// pairState is an observed (state, allFrozen) pair of an SCX-record,
// corresponding to a vertex of the paper's Figure 2.
type pairState struct {
	state  core.State
	frozen bool
}

// validPair reports whether p is one of the four vertices of Figure 2:
// [InProgress,False], [InProgress,True], [Committed,True], [Aborted,False].
// Note [Committed,False] and [Aborted,True] are unreachable (Lemmas 21, 27).
func validPair(p pairState) bool {
	switch p.state {
	case core.StateInProgress:
		return true
	case core.StateCommitted:
		return p.frozen
	case core.StateAborted:
		return !p.frozen
	default:
		return false
	}
}

// figure2Edge reports whether the transition a -> b is an edge (or a
// reflexive stay, or a reachable skip) of Figure 2's DAG:
//
//	[IP,F] -> [IP,T] -> [C,T]
//	[IP,F] -> [A,F]
func figure2Edge(a, b pairState) bool {
	rank := func(p pairState) int {
		switch {
		case p.state == core.StateInProgress && !p.frozen:
			return 0
		case p.state == core.StateInProgress && p.frozen:
			return 1
		case p.state == core.StateCommitted:
			return 2
		default: // Aborted
			return 3
		}
	}
	ra, rb := rank(a), rank(b)
	if ra == rb {
		return true
	}
	if ra == 3 || rb == 3 {
		// Aborted is terminal and reachable only from [IP,F].
		return ra == 0 && rb == 3
	}
	return ra < rb
}

// sampler records (state, allFrozen) pairs per SCX-record, reading state
// before allFrozen so that every sampled pair is a vertex of Figure 2 (the
// frozen step precedes the commit step, and allFrozen is never unset).
type sampler struct {
	mu      sync.Mutex
	samples map[*core.SCXRecord][]pairState
}

func (s *sampler) hook(_ core.StepKind, u *core.SCXRecord, _ *core.Record) {
	p := pairState{state: u.State(), frozen: u.AllFrozen()}
	s.mu.Lock()
	s.samples[u] = append(s.samples[u], p)
	s.mu.Unlock()
}

// TestTransitionsUncontendedCommit asserts the exact Figure 2 path of a
// successful SCX: [IP,F] ... [IP,T] at the update CAS, [C,T] after commit.
func TestTransitionsUncontendedCommit(t *testing.T) {
	s := &sampler{samples: make(map[*core.SCXRecord][]pairState)}
	core.SetStepHook(s.hook)
	defer core.SetStepHook(nil)

	p := core.NewProcess()
	a := core.NewRecord(1, []any{1})
	b := core.NewRecord(1, []any{2})
	mustLLX(t, p, a)
	mustLLX(t, p, b)
	if !p.SCX([]*core.Record{a, b}, []*core.Record{b}, a.Field(0), 9) {
		t.Fatal("SCX failed")
	}

	if len(s.samples) != 1 {
		t.Fatalf("sampled %d SCX-records, want 1", len(s.samples))
	}
	for u, seq := range s.samples {
		// Steps: freeze a, freeze b, frozen, mark b, updateCAS, commit.
		want := []pairState{
			{core.StateInProgress, false}, // before freezing CAS on a
			{core.StateInProgress, false}, // before freezing CAS on b
			{core.StateInProgress, false}, // before frozen step
			{core.StateInProgress, true},  // before mark step
			{core.StateInProgress, true},  // before update CAS
			{core.StateInProgress, true},  // before commit step
		}
		if fmt.Sprint(seq) != fmt.Sprint(want) {
			t.Errorf("transition samples = %v, want %v", seq, want)
		}
		if got := u.State(); got != core.StateCommitted {
			t.Errorf("final state = %v, want Committed", got)
		}
		if !u.AllFrozen() {
			t.Error("final allFrozen = false, want true")
		}
	}
}

// TestTransitionsAbortPath asserts the exact Figure 2 path of a failed SCX:
// [IP,F] -> [A,F], with allFrozen never set.
func TestTransitionsAbortPath(t *testing.T) {
	p1 := core.NewProcess()
	p2 := core.NewProcess()
	r := core.NewRecord(1, []any{1})
	mustLLX(t, p1, r)
	mustLLX(t, p2, r)
	if !p2.SCX([]*core.Record{r}, nil, r.Field(0), 2) {
		t.Fatal("p2 SCX failed")
	}

	s := &sampler{samples: make(map[*core.SCXRecord][]pairState)}
	core.SetStepHook(s.hook)
	defer core.SetStepHook(nil)

	if p1.SCX([]*core.Record{r}, nil, r.Field(0), 3) {
		t.Fatal("doomed SCX succeeded")
	}
	if len(s.samples) != 1 {
		t.Fatalf("sampled %d SCX-records, want 1", len(s.samples))
	}
	for u, seq := range s.samples {
		want := []pairState{
			{core.StateInProgress, false}, // before freezing CAS
			{core.StateInProgress, false}, // before frozen check
			{core.StateInProgress, false}, // before abort step
		}
		if fmt.Sprint(seq) != fmt.Sprint(want) {
			t.Errorf("transition samples = %v, want %v", seq, want)
		}
		if got := u.State(); got != core.StateAborted {
			t.Errorf("final state = %v, want Aborted", got)
		}
		if u.AllFrozen() {
			t.Error("aborted SCX has allFrozen set (violates Lemma 21)")
		}
	}
}

// TestTransitionsConcurrentWorkload runs a contended workload and asserts
// every sampled (state, allFrozen) pair is a vertex of Figure 2 and every
// per-record sample sequence respects its DAG (exp E6).
func TestTransitionsConcurrentWorkload(t *testing.T) {
	s := &sampler{samples: make(map[*core.SCXRecord][]pairState)}
	core.SetStepHook(s.hook)
	defer core.SetStepHook(nil)

	const procs = 4
	const iters = 200
	recs := []*core.Record{
		core.NewRecord(1, []any{0}),
		core.NewRecord(1, []any{0}),
		core.NewRecord(1, []any{0}),
	}

	var wg sync.WaitGroup
	for pid := 0; pid < procs; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			p := core.NewProcess()
			for i := 0; i < iters; i++ {
				a := recs[(pid+i)%len(recs)]
				b := recs[(pid+i+1)%len(recs)]
				if _, st := p.LLX(a); st != core.LLXOK {
					continue
				}
				if _, st := p.LLX(b); st != core.LLXOK {
					continue
				}
				p.SCX([]*core.Record{a, b}, nil, a.Field(0), pid*iters+i)
			}
		}(pid)
	}
	wg.Wait()

	if len(s.samples) == 0 {
		t.Fatal("no SCX-records sampled")
	}
	for u, seq := range s.samples {
		for i, p := range seq {
			if !validPair(p) {
				t.Fatalf("invalid (state,allFrozen) pair %+v sampled", p)
			}
			if i > 0 && !figure2Edge(seq[i-1], p) {
				t.Fatalf("illegal transition %+v -> %+v for %p", seq[i-1], p, u)
			}
		}
		final := pairState{state: u.State(), frozen: u.AllFrozen()}
		if !validPair(final) {
			t.Fatalf("invalid final pair %+v", final)
		}
		if final.state == core.StateInProgress {
			t.Fatalf("SCX-record left InProgress after quiescence")
		}
	}
}

// TestMarkedMonotonic asserts the Figure 3 property that a record's marked
// bit never resets and a finalized record stays finalized.
func TestMarkedMonotonic(t *testing.T) {
	p := core.NewProcess()
	r := core.NewRecord(1, []any{0})
	other := core.NewRecord(1, []any{0})
	mustLLX(t, p, other)
	mustLLX(t, p, r)
	if !p.SCX([]*core.Record{other, r}, []*core.Record{r}, other.Field(0), 1) {
		t.Fatal("SCX failed")
	}
	for i := 0; i < 10; i++ {
		if !r.Finalized() {
			t.Fatal("finalized record reverted")
		}
		q := core.NewProcess()
		if _, st := q.LLX(r); st != core.LLXFinalized {
			t.Fatalf("LLX = %v, want Finalized", st)
		}
	}
}
