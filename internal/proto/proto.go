// Package proto is the wire protocol of the KV service layer: a minimal
// RESP-flavoured command set (PING, GET, SET, DEL, SIZE, STATS) carried in
// length-prefixed binary frames. It exists so internal/server and
// internal/client agree on bytes without either knowing about sockets: the
// package speaks io.Reader/io.Writer only.
//
// Every frame is a 4-byte big-endian payload length followed by the
// payload. A request payload is one opcode byte plus, for the keyed
// commands, an 8-byte big-endian key. A reply payload is one status byte
// plus, depending on the status, an 8-byte integer or a raw byte string.
// Fixed-width fields rather than RESP's decimal text keep the parser
// branch-light and allocation-free: the hot request shapes are exactly 1 or
// 9 bytes.
//
// Reader is a streaming parser that owns one reusable buffer per
// connection: frames are decoded in place and bulk payloads are returned as
// views into that buffer, valid until the next Read* call — the zero-copy
// contract callers must respect. Writer symmetrically batches encoded
// frames into one reusable buffer and hands them to the underlying writer
// only on Flush (or when the buffer fills), which is what makes server-side
// reply batching and client-side pipelining one-syscall-per-batch.
//
// Malformed input is always a recoverable error, never a panic and never an
// over-read beyond the declared frame length; FuzzParseFrame pins that.
package proto

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
)

// Op is a request opcode.
type Op byte

// The command set. SET and DEL follow the container.Session contract
// (internal/container): SET inserts one occurrence of the key (or produces
// an element), DEL removes one (or consumes), GET reports presence. SIZE
// returns the container's cardinality and STATS a human-readable metrics
// dump; PING is the liveness no-op.
const (
	OpPing Op = iota + 1
	OpGet
	OpSet
	OpDel
	OpSize
	OpStats
	// OpCount asks for the occurrence count of one key (the multiset count,
	// 0/1 for maps) as an Int reply — the durability crash harness audits
	// per-key conservation with it. Adapters that cannot count one key (the
	// produce/consume containers) yield an Err reply.
	OpCount
	// OpTrace asks for the server's slow-op trace ring as a Bulk reply —
	// the ops that exceeded the configured latency threshold, newest first,
	// with their durations, commit waits and retry counts.
	OpTrace
	opMax = OpTrace
)

// String names the opcode for diagnostics.
func (o Op) String() string {
	switch o {
	case OpPing:
		return "PING"
	case OpGet:
		return "GET"
	case OpSet:
		return "SET"
	case OpDel:
		return "DEL"
	case OpSize:
		return "SIZE"
	case OpStats:
		return "STATS"
	case OpCount:
		return "COUNT"
	case OpTrace:
		return "TRACE"
	}
	return fmt.Sprintf("Op(%d)", byte(o))
}

// Keyed reports whether the opcode carries a key argument.
func (o Op) Keyed() bool { return o == OpGet || o == OpSet || o == OpDel || o == OpCount }

// Status is the first byte of a reply payload.
type Status byte

// Reply statuses. True/False answer the keyed commands (found / applied),
// Int carries SIZE's answer, Bulk carries STATS' text, Err carries a
// message for a request the server could not serve, Pong answers PING.
const (
	StatusTrue Status = iota + 1
	StatusFalse
	StatusInt
	StatusBulk
	StatusErr
	StatusPong
)

// String names the status for diagnostics.
func (s Status) String() string {
	switch s {
	case StatusTrue:
		return "TRUE"
	case StatusFalse:
		return "FALSE"
	case StatusInt:
		return "INT"
	case StatusBulk:
		return "BULK"
	case StatusErr:
		return "ERR"
	case StatusPong:
		return "PONG"
	}
	return fmt.Sprintf("Status(%d)", byte(s))
}

// Frame geometry.
const (
	headerSize = 4 // big-endian payload length
	// MaxFrame bounds a payload. A parser that trusted the length prefix
	// unconditionally could be made to allocate without bound by four bytes
	// of input; anything above this limit is rejected before the payload is
	// read.
	MaxFrame = 1 << 20
	// bareLen and keyedLen are the two request payload shapes.
	bareLen  = 1
	keyedLen = 1 + 8
)

// ErrMalformed is wrapped by every parse failure that indicates a broken or
// hostile peer (as opposed to a clean EOF or an I/O error). A server drops
// the connection on it; the stream cannot be resynchronized.
var ErrMalformed = errors.New("malformed frame")

func malformedf(format string, args ...any) error {
	return fmt.Errorf("proto: %w: "+format, append([]any{ErrMalformed}, args...)...)
}

// Request is one decoded command. Key is meaningful only when Op.Keyed().
type Request struct {
	Op  Op
	Key int64
}

// Reply is one decoded reply. Int is meaningful for StatusInt; Bulk for
// StatusBulk and StatusErr, and it aliases the Reader's internal buffer —
// copy it if it must outlive the next Read* call.
type Reply struct {
	Status Status
	Int    int64
	Bulk   []byte
}

// Bool interprets a True/False reply; any other status is an error.
func (r Reply) Bool() (bool, error) {
	switch r.Status {
	case StatusTrue:
		return true, nil
	case StatusFalse:
		return false, nil
	}
	return false, r.unexpected("TRUE or FALSE")
}

// Int64 interprets an Int reply; any other status is an error.
func (r Reply) Int64() (int64, error) {
	if r.Status == StatusInt {
		return r.Int, nil
	}
	return 0, r.unexpected("INT")
}

// Err returns the server-reported error of an Err reply, nil otherwise.
func (r Reply) Err() error {
	if r.Status == StatusErr {
		return fmt.Errorf("proto: server error: %s", r.Bulk)
	}
	return nil
}

func (r Reply) unexpected(want string) error {
	if err := r.Err(); err != nil {
		return err
	}
	return fmt.Errorf("proto: unexpected reply status %v, want %s", r.Status, want)
}

// parseRequest decodes one request payload.
func parseRequest(p []byte) (Request, error) {
	op := Op(p[0])
	switch {
	case op.Keyed():
		if len(p) != keyedLen {
			return Request{}, malformedf("%v request payload is %d bytes, want %d", op, len(p), keyedLen)
		}
		return Request{Op: op, Key: int64(binary.BigEndian.Uint64(p[1:]))}, nil
	case op >= OpPing && op <= opMax:
		if len(p) != bareLen {
			return Request{}, malformedf("%v request payload is %d bytes, want %d", op, len(p), bareLen)
		}
		return Request{Op: op}, nil
	}
	return Request{}, malformedf("unknown opcode %d", p[0])
}

// parseReply decodes one reply payload.
func parseReply(p []byte) (Reply, error) {
	st := Status(p[0])
	switch st {
	case StatusTrue, StatusFalse, StatusPong:
		if len(p) != 1 {
			return Reply{}, malformedf("%v reply payload is %d bytes, want 1", st, len(p))
		}
		return Reply{Status: st}, nil
	case StatusInt:
		if len(p) != 9 {
			return Reply{}, malformedf("INT reply payload is %d bytes, want 9", len(p))
		}
		return Reply{Status: st, Int: int64(binary.BigEndian.Uint64(p[1:]))}, nil
	case StatusBulk, StatusErr:
		return Reply{Status: st, Bulk: p[1:]}, nil
	}
	return Reply{}, malformedf("unknown status %d", p[0])
}

// Reader is a streaming frame parser over one reusable buffer. It is not
// safe for concurrent use; each connection end owns exactly one.
//
// A Reader consumes bytes from its source only as frames demand them: it
// never reads past the end of the last frame it returned plus whatever the
// source handed over in one Read call, and it never allocates on frames
// that fit its buffer (the buffer grows, once, only for a payload larger
// than its current size — in practice only STATS replies).
type Reader struct {
	src  io.Reader
	buf  []byte
	r, w int // unread window is buf[r:w]
}

// DefaultBufSize is the Reader/Writer buffer size when none is given: large
// enough that a deep pipelined batch of keyed requests (13 bytes each on
// the wire) fits in one buffer.
const DefaultBufSize = 16 << 10

// NewReader wraps src with a parse buffer of the given size (minimum 64,
// default DefaultBufSize when size <= 0).
func NewReader(src io.Reader, size int) *Reader {
	if size <= 0 {
		size = DefaultBufSize
	}
	if size < 64 {
		size = 64
	}
	return &Reader{src: src, buf: make([]byte, size)}
}

// Buffered returns the number of decoded-but-unparsed bytes sitting in the
// Reader's buffer. The server's reply-batching rule is built on it: while
// Buffered is non-zero another request may be parsed without touching the
// socket, so replies keep accumulating; when it hits zero the batch is
// flushed before the next blocking read.
func (rd *Reader) Buffered() int { return rd.w - rd.r }

// ensure makes n contiguous unread bytes available at buf[r:], compacting
// or (for jumbo frames) growing the buffer and reading from the source as
// needed. On EOF with fewer than n bytes available it returns io.EOF; the
// caller decides whether that is clean (frame boundary) or unexpected.
func (rd *Reader) ensure(n int) error {
	if rd.w-rd.r >= n {
		return nil
	}
	if n > len(rd.buf) {
		size := len(rd.buf)
		for size < n {
			size *= 2
		}
		nb := make([]byte, size)
		rd.w = copy(nb, rd.buf[rd.r:rd.w])
		rd.r = 0
		rd.buf = nb
	} else if rd.r+n > len(rd.buf) {
		rd.w = copy(rd.buf, rd.buf[rd.r:rd.w])
		rd.r = 0
	}
	for rd.w-rd.r < n {
		m, err := rd.src.Read(rd.buf[rd.w:])
		if m < 0 || m > len(rd.buf)-rd.w {
			return fmt.Errorf("proto: source returned invalid read count %d", m)
		}
		rd.w += m
		if err != nil {
			if rd.w-rd.r >= n {
				return nil
			}
			return err
		}
		if m == 0 {
			return io.ErrNoProgress
		}
	}
	return nil
}

// frame returns the next payload as a view into the buffer, valid until the
// next frame call. io.EOF is returned only at a clean frame boundary;
// inside a frame it becomes io.ErrUnexpectedEOF. A timeout error from the
// source leaves the partial frame buffered, so a caller that re-arms its
// deadline may retry.
func (rd *Reader) frame() ([]byte, error) {
	if err := rd.ensure(headerSize); err != nil {
		if err == io.EOF && rd.Buffered() > 0 {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err
	}
	n := int(binary.BigEndian.Uint32(rd.buf[rd.r:]))
	if n == 0 {
		return nil, malformedf("zero-length payload")
	}
	if n > MaxFrame {
		return nil, malformedf("payload length %d exceeds MaxFrame %d", n, MaxFrame)
	}
	if err := rd.ensure(headerSize + n); err != nil {
		if err == io.EOF {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err
	}
	p := rd.buf[rd.r+headerSize : rd.r+headerSize+n]
	rd.r += headerSize + n
	return p, nil
}

// ReadRequest parses the next request frame. io.EOF means the peer closed
// cleanly between frames.
func (rd *Reader) ReadRequest() (Request, error) {
	p, err := rd.frame()
	if err != nil {
		return Request{}, err
	}
	return parseRequest(p)
}

// ReadRequestBatch drains a run of requests in one call: it blocks for the
// first frame exactly like ReadRequest, then keeps parsing requests from
// bytes the source already handed over — never touching the source again —
// until the buffer holds no complete frame or max requests are decoded.
// Parsed requests are appended to dst (pass dst[:0] to reuse its backing
// array across calls; steady state allocates nothing).
//
// The returned error belongs to the frame after the ones successfully
// appended: the caller should serve the returned requests first and handle
// the error after, which preserves frame-at-a-time semantics — requests
// received before a malformed frame are still served.
func (rd *Reader) ReadRequestBatch(dst []Request, max int) ([]Request, error) {
	for len(dst) < max {
		p, err := rd.frame()
		if err != nil {
			return dst, err
		}
		q, err := parseRequest(p)
		if err != nil {
			return dst, err
		}
		dst = append(dst, q)
		if !rd.frameBuffered() {
			break
		}
	}
	return dst, nil
}

// frameBuffered reports whether frame can return without reading from the
// source: either a complete frame sits in the buffer, or the buffered header
// already proves the stream malformed (frame surfaces that error without
// blocking). Buffered() > 0 alone is not enough — a partial frame may be
// buffered, and completing it requires the source.
func (rd *Reader) frameBuffered() bool {
	if rd.w-rd.r < headerSize {
		return false
	}
	n := int(binary.BigEndian.Uint32(rd.buf[rd.r:]))
	if n == 0 || n > MaxFrame {
		return true
	}
	return rd.w-rd.r >= headerSize+n
}

// ReadReply parses the next reply frame. The Reply's Bulk field aliases the
// Reader's buffer; see Reply.
func (rd *Reader) ReadReply() (Reply, error) {
	p, err := rd.frame()
	if err != nil {
		return Reply{}, err
	}
	return parseReply(p)
}

// Writer encodes frames into one reusable buffer and writes them out only
// on Flush or when the buffer fills. It is not safe for concurrent use.
type Writer struct {
	dst io.Writer
	buf []byte
	vec [2][]byte // reusable iovec backing for jumbo vectored writes
	err error     // sticky: first destination failure
}

// NewWriter wraps dst with an encode buffer of the given size (minimum 64,
// default DefaultBufSize when size <= 0).
func NewWriter(dst io.Writer, size int) *Writer {
	if size <= 0 {
		size = DefaultBufSize
	}
	if size < 64 {
		size = 64
	}
	return &Writer{dst: dst, buf: make([]byte, 0, size)}
}

// Buffered returns the number of encoded bytes awaiting Flush.
func (w *Writer) Buffered() int { return len(w.buf) }

// Cap returns the buffer capacity: a Write* whose frame would push Buffered
// past Cap triggers an implicit Flush. Callers that must order work before
// any bytes reach the wire (the server commits log records before acks) use
// Buffered/Cap to predict and preempt that flush.
func (w *Writer) Cap() int { return cap(w.buf) }

// Err returns the Writer's sticky error: the first failure any Flush hit.
// Once set, every Write*/Flush returns it immediately. The server checks it
// before applying a mutation — a connection that can no longer carry acks
// must not keep changing state it cannot acknowledge.
func (w *Writer) Err() error { return w.err }

// room flushes if appending n more bytes would overflow the buffer, so a
// frame is never split across two underlying writes unless it is larger
// than the whole buffer.
func (w *Writer) room(n int) error {
	if w.err != nil {
		return w.err
	}
	if len(w.buf)+n <= cap(w.buf) {
		return nil
	}
	return w.Flush()
}

// WriteRequest encodes one request frame.
func (w *Writer) WriteRequest(q Request) error {
	if q.Op.Keyed() {
		if err := w.room(headerSize + keyedLen); err != nil {
			return err
		}
		w.buf = binary.BigEndian.AppendUint32(w.buf, keyedLen)
		w.buf = append(w.buf, byte(q.Op))
		w.buf = binary.BigEndian.AppendUint64(w.buf, uint64(q.Key))
		return nil
	}
	if q.Op < OpPing || q.Op > opMax {
		return fmt.Errorf("proto: cannot encode unknown opcode %d", byte(q.Op))
	}
	if err := w.room(headerSize + bareLen); err != nil {
		return err
	}
	w.buf = binary.BigEndian.AppendUint32(w.buf, bareLen)
	w.buf = append(w.buf, byte(q.Op))
	return nil
}

// WriteBool encodes a True or False reply.
func (w *Writer) WriteBool(v bool) error {
	st := StatusFalse
	if v {
		st = StatusTrue
	}
	return w.writeStatus(st)
}

// WritePong encodes a Pong reply.
func (w *Writer) WritePong() error { return w.writeStatus(StatusPong) }

func (w *Writer) writeStatus(st Status) error {
	if err := w.room(headerSize + 1); err != nil {
		return err
	}
	w.buf = binary.BigEndian.AppendUint32(w.buf, 1)
	w.buf = append(w.buf, byte(st))
	return nil
}

// WriteInt encodes an Int reply.
func (w *Writer) WriteInt(v int64) error {
	if err := w.room(headerSize + 9); err != nil {
		return err
	}
	w.buf = binary.BigEndian.AppendUint32(w.buf, 9)
	w.buf = append(w.buf, byte(StatusInt))
	w.buf = binary.BigEndian.AppendUint64(w.buf, uint64(v))
	return nil
}

// WriteBulk encodes a Bulk reply carrying p.
func (w *Writer) WriteBulk(p []byte) error { return w.writeBytes(StatusBulk, p) }

// WriteErr encodes an Err reply carrying msg.
func (w *Writer) WriteErr(msg string) error { return w.writeBytes(StatusErr, []byte(msg)) }

func (w *Writer) writeBytes(st Status, p []byte) error {
	n := 1 + len(p)
	if n > MaxFrame {
		return fmt.Errorf("proto: %v payload of %d bytes exceeds MaxFrame %d", st, n, MaxFrame)
	}
	if err := w.room(headerSize + n); err != nil {
		return err
	}
	if headerSize+n > cap(w.buf) {
		// Jumbo payload (STATS dumps only; never on the keyed-reply hot
		// path): rather than copying the body into the buffer or paying two
		// writes (header flush, then body), hand header and body to the
		// destination as one vectored write. net.Buffers uses writev on a
		// *net.TCPConn — one syscall, zero copies — and degrades to
		// sequential writes on any other io.Writer.
		w.buf = binary.BigEndian.AppendUint32(w.buf, uint32(n))
		w.buf = append(w.buf, byte(st))
		w.vec[0], w.vec[1] = w.buf, p
		vec := net.Buffers(w.vec[:])
		_, err := vec.WriteTo(w.dst)
		w.vec[0], w.vec[1] = nil, nil
		w.buf = w.buf[:0]
		if err != nil {
			w.err = err
		}
		return err
	}
	w.buf = binary.BigEndian.AppendUint32(w.buf, uint32(n))
	w.buf = append(w.buf, byte(st))
	w.buf = append(w.buf, p...)
	return nil
}

// Flush writes the buffered frames to the destination. The buffer is reset
// even on error: a short write leaves the stream unframed, so the
// connection is dead either way and retaining half-written bytes would only
// corrupt it further.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	if len(w.buf) == 0 {
		return nil
	}
	_, err := w.dst.Write(w.buf)
	w.buf = w.buf[:0]
	if err != nil {
		w.err = err
	}
	return err
}
