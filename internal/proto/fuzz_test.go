package proto

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
)

// boundedReader counts what the parser consumes, so the fuzzer can assert
// the parser never claims to have read more than the input held.
type boundedReader struct {
	r *bytes.Reader
	n int
}

func (b *boundedReader) Read(p []byte) (int, error) {
	m, err := b.r.Read(p)
	b.n += m
	return m, err
}

// FuzzParseFrame streams arbitrary bytes through both frame parsers.
// Whatever the input, the parser must either produce frames or return an
// error — never panic, never spin, and never over-read past the input.
func FuzzParseFrame(f *testing.F) {
	// Valid frames of every shape, truncations, and hostile lengths.
	seed := func(encode func(w *Writer)) {
		var buf bytes.Buffer
		w := NewWriter(&buf, 0)
		encode(w)
		w.Flush()
		f.Add(buf.Bytes())
	}
	seed(func(w *Writer) { w.WriteRequest(Request{Op: OpPing}) })
	seed(func(w *Writer) { w.WriteRequest(Request{Op: OpSet, Key: 42}) })
	seed(func(w *Writer) {
		w.WriteRequest(Request{Op: OpGet, Key: -1})
		w.WriteRequest(Request{Op: OpDel, Key: 1 << 50})
		w.WriteRequest(Request{Op: OpSize})
		w.WriteRequest(Request{Op: OpStats})
	})
	seed(func(w *Writer) {
		w.WriteBool(true)
		w.WriteBool(false)
		w.WritePong()
		w.WriteInt(-99)
		w.WriteBulk([]byte("bulk payload"))
		w.WriteErr("boom")
	})
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})                                  // zero length
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})                      // absurd length
	f.Add(binary.BigEndian.AppendUint32(nil, MaxFrame+1))      // just over the cap
	f.Add(append(binary.BigEndian.AppendUint32(nil, 9), 0xEE)) // truncated unknown op
	f.Add([]byte{0, 0, 0, 2, byte(OpPing), 0})                 // bare op with trailing byte
	f.Add([]byte{0, 0})                                        // truncated header

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, parse := range []func(rd *Reader) error{
			func(rd *Reader) error { _, err := rd.ReadRequest(); return err },
			func(rd *Reader) error { _, err := rd.ReadReply(); return err },
		} {
			src := &boundedReader{r: bytes.NewReader(data)}
			rd := NewReader(src, 64)
			// The stream holds at most len(data) frames (each is >= 5
			// bytes); parsing must terminate well within that budget.
			for i := 0; i <= len(data); i++ {
				if err := parse(rd); err != nil {
					if err == io.EOF && src.n != len(data) && rd.Buffered() == 0 {
						// A clean EOF must only be reported once the source
						// is exhausted.
						t.Fatalf("clean EOF after %d of %d bytes", src.n, len(data))
					}
					break
				}
			}
			if src.n > len(data) {
				t.Fatalf("parser over-read: consumed %d of %d bytes", src.n, len(data))
			}
		}
	})
}
