package proto

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"
)

// roundTrip encodes frames with a Writer and hands the bytes to a Reader.
func roundTrip(t *testing.T, bufSize int, encode func(w *Writer)) *Reader {
	t.Helper()
	var out bytes.Buffer
	w := NewWriter(&out, bufSize)
	encode(w)
	if err := w.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	return NewReader(bytes.NewReader(out.Bytes()), bufSize)
}

func TestRequestRoundTrip(t *testing.T) {
	reqs := []Request{
		{Op: OpPing},
		{Op: OpGet, Key: 0},
		{Op: OpSet, Key: 1},
		{Op: OpDel, Key: -7},
		{Op: OpSize},
		{Op: OpStats},
		{Op: OpGet, Key: 1<<62 + 12345},
	}
	r := roundTrip(t, 0, func(w *Writer) {
		for _, q := range reqs {
			if err := w.WriteRequest(q); err != nil {
				t.Fatalf("write %v: %v", q, err)
			}
		}
	})
	for i, want := range reqs {
		got, err := r.ReadRequest()
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("request %d: got %+v, want %+v", i, got, want)
		}
	}
	if _, err := r.ReadRequest(); err != io.EOF {
		t.Fatalf("after last frame: err = %v, want io.EOF", err)
	}
}

func TestReplyRoundTrip(t *testing.T) {
	r := roundTrip(t, 0, func(w *Writer) {
		w.WriteBool(true)
		w.WriteBool(false)
		w.WritePong()
		w.WriteInt(-42)
		w.WriteBulk([]byte("stats dump"))
		w.WriteErr("no such op")
	})

	for i, want := range []bool{true, false} {
		rep, err := r.ReadReply()
		if err != nil {
			t.Fatalf("bool reply %d: %v", i, err)
		}
		got, err := rep.Bool()
		if err != nil || got != want {
			t.Fatalf("bool reply %d: got %v/%v, want %v", i, got, err, want)
		}
	}
	rep, err := r.ReadReply()
	if err != nil || rep.Status != StatusPong {
		t.Fatalf("pong: %+v, %v", rep, err)
	}
	rep, err = r.ReadReply()
	if err != nil {
		t.Fatalf("int: %v", err)
	}
	if v, err := rep.Int64(); err != nil || v != -42 {
		t.Fatalf("int: got %d/%v, want -42", v, err)
	}
	rep, err = r.ReadReply()
	if err != nil || string(rep.Bulk) != "stats dump" {
		t.Fatalf("bulk: %+v, %v", rep, err)
	}
	rep, err = r.ReadReply()
	if err != nil {
		t.Fatalf("err reply: %v", err)
	}
	if rep.Err() == nil || !strings.Contains(rep.Err().Error(), "no such op") {
		t.Fatalf("err reply: %v", rep.Err())
	}
	// Interpreting an Err reply as a bool surfaces the server error.
	if _, err := rep.Bool(); err == nil || !strings.Contains(err.Error(), "no such op") {
		t.Fatalf("Bool on Err reply: %v", err)
	}
}

// TestPipelinedBatchOneWrite pins the batching contract: a pipelined batch
// of requests reaches the destination in a single underlying write.
func TestPipelinedBatchOneWrite(t *testing.T) {
	var dst countingWriter
	w := NewWriter(&dst, 4096)
	for i := 0; i < 100; i++ {
		if err := w.WriteRequest(Request{Op: OpSet, Key: int64(i)}); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if dst.writes != 0 {
		t.Fatalf("writer hit the destination %d times before Flush", dst.writes)
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if dst.writes != 1 {
		t.Fatalf("batch took %d writes, want 1", dst.writes)
	}
}

type countingWriter struct {
	writes int
	n      int
}

func (c *countingWriter) Write(p []byte) (int, error) {
	c.writes++
	c.n += len(p)
	return len(p), nil
}

// TestWriterAutoFlush pins that a full buffer flushes itself and no frame is
// split across writes when it fits the buffer.
func TestWriterAutoFlush(t *testing.T) {
	var dst countingWriter
	w := NewWriter(&dst, 64)
	for i := 0; i < 32; i++ {
		if err := w.WriteRequest(Request{Op: OpSet, Key: int64(i)}); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if dst.n != 32*(4+9) {
		t.Fatalf("wrote %d bytes, want %d", dst.n, 32*(4+9))
	}
	if dst.writes < 2 {
		t.Fatalf("expected auto-flushes with a 64-byte buffer, got %d writes", dst.writes)
	}
}

// TestJumboBulkGrowsReader pins that a bulk payload larger than the read
// buffer is still delivered (the buffer grows) and a payload above MaxFrame
// is rejected by the writer.
func TestJumboBulkGrowsReader(t *testing.T) {
	big := bytes.Repeat([]byte("x"), 10_000)
	r := roundTrip(t, 128, func(w *Writer) {
		if err := w.WriteBulk(big); err != nil {
			t.Fatalf("write bulk: %v", err)
		}
		w.WritePong()
	})
	rep, err := r.ReadReply()
	if err != nil {
		t.Fatalf("read bulk: %v", err)
	}
	if !bytes.Equal(rep.Bulk, big) {
		t.Fatalf("bulk mangled: got %d bytes", len(rep.Bulk))
	}
	if rep, err = r.ReadReply(); err != nil || rep.Status != StatusPong {
		t.Fatalf("frame after jumbo: %+v, %v", rep, err)
	}

	w := NewWriter(io.Discard, 64)
	if err := w.WriteBulk(make([]byte, MaxFrame+1)); err == nil {
		t.Fatal("WriteBulk above MaxFrame succeeded")
	}
}

func TestMalformedFrames(t *testing.T) {
	frame := func(payload ...byte) []byte {
		out := binary.BigEndian.AppendUint32(nil, uint32(len(payload)))
		return append(out, payload...)
	}
	cases := []struct {
		name string
		in   []byte
	}{
		{"zero length", frame()},
		{"unknown opcode", frame(0xEE)},
		{"ping with key", frame(byte(OpPing), 0, 0, 0, 0, 0, 0, 0, 1)},
		{"get without key", frame(byte(OpGet))},
		{"get short key", frame(byte(OpGet), 1, 2, 3)},
		{"oversized length", binary.BigEndian.AppendUint32(nil, MaxFrame+1)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewReader(bytes.NewReader(tc.in), 0)
			_, err := r.ReadRequest()
			if !errors.Is(err, ErrMalformed) {
				t.Fatalf("err = %v, want ErrMalformed", err)
			}
		})
	}
}

func TestTruncatedFrames(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 0)
	w.WriteRequest(Request{Op: OpSet, Key: 99})
	w.Flush()
	full := buf.Bytes()
	// Every strict prefix that is not empty must yield ErrUnexpectedEOF;
	// the empty prefix is a clean EOF.
	for cut := 1; cut < len(full); cut++ {
		r := NewReader(bytes.NewReader(full[:cut]), 0)
		if _, err := r.ReadRequest(); err != io.ErrUnexpectedEOF {
			t.Fatalf("prefix %d: err = %v, want ErrUnexpectedEOF", cut, err)
		}
	}
	r := NewReader(bytes.NewReader(nil), 0)
	if _, err := r.ReadRequest(); err != io.EOF {
		t.Fatalf("empty stream: err = %v, want io.EOF", err)
	}
}

// TestDribbleReads feeds the parser one byte per Read call: frames spanning
// arbitrarily many short reads must decode identically.
func TestDribbleReads(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 0)
	reqs := []Request{{Op: OpSet, Key: 7}, {Op: OpPing}, {Op: OpDel, Key: 1 << 40}}
	for _, q := range reqs {
		w.WriteRequest(q)
	}
	w.Flush()
	r := NewReader(iotest(buf.Bytes()), 0)
	for i, want := range reqs {
		got, err := r.ReadRequest()
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("request %d: got %+v, want %+v", i, got, want)
		}
	}
	if _, err := r.ReadRequest(); err != io.EOF {
		t.Fatalf("tail: err = %v, want io.EOF", err)
	}
}

// iotest returns a reader delivering one byte per call.
func iotest(p []byte) io.Reader { return &oneByteReader{p: p} }

type oneByteReader struct{ p []byte }

func (r *oneByteReader) Read(dst []byte) (int, error) {
	if len(r.p) == 0 {
		return 0, io.EOF
	}
	dst[0] = r.p[0]
	r.p = r.p[1:]
	return 1, nil
}

// TestBuffered pins the reply-batching primitive: after a read that pulled
// several frames into the buffer, Buffered stays non-zero until the last
// one is parsed.
func TestBuffered(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 0)
	const n = 5
	for i := 0; i < n; i++ {
		w.WriteRequest(Request{Op: OpGet, Key: int64(i)})
	}
	w.Flush()
	r := NewReader(bytes.NewReader(buf.Bytes()), 4096)
	for i := 0; i < n; i++ {
		if _, err := r.ReadRequest(); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if got, want := r.Buffered() > 0, i < n-1; got != want {
			t.Fatalf("after request %d: Buffered()>0 = %v, want %v", i, got, want)
		}
	}
}

// TestReaderSteadyStateAllocFree pins the zero-copy contract: parsing keyed
// requests from a warm Reader/Writer pair allocates nothing.
func TestReaderSteadyStateAllocFree(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 4096)
	const batch = 64
	fill := func() {
		buf.Reset()
		for i := 0; i < batch; i++ {
			w.WriteRequest(Request{Op: OpSet, Key: int64(i)})
		}
		w.Flush()
	}
	fill()
	payload := append([]byte(nil), buf.Bytes()...)
	src := bytes.NewReader(payload)
	r := NewReader(src, 4096)
	round := func() {
		src.Reset(payload)
		for i := 0; i < batch; i++ {
			if _, err := r.ReadRequest(); err != nil {
				t.Fatalf("read: %v", err)
			}
		}
	}
	round() // warm
	if allocs := testing.AllocsPerRun(100, round); allocs > 0 {
		t.Fatalf("steady-state parse allocated %.1f allocs per %d-request batch, want 0", allocs, batch)
	}
}

// TestReadRequestBatch pins the batched decode contract: one call drains
// exactly the complete frames already buffered (never blocking for more),
// stops at max, and hands back any malformed frame's error *after* the good
// requests that preceded it.
func TestReadRequestBatch(t *testing.T) {
	reqs := []Request{
		{Op: OpSet, Key: 1}, {Op: OpGet, Key: 2}, {Op: OpDel, Key: 3},
		{Op: OpSet, Key: 4}, {Op: OpGet, Key: 5},
	}
	r := roundTrip(t, 4096, func(w *Writer) {
		for _, q := range reqs {
			if err := w.WriteRequest(q); err != nil {
				t.Fatalf("write: %v", err)
			}
		}
	})
	// All five frames arrive in the first fill; max caps the batch.
	batch, err := r.ReadRequestBatch(nil, 3)
	if err != nil {
		t.Fatalf("batch 1: %v", err)
	}
	if len(batch) != 3 || batch[0] != reqs[0] || batch[2] != reqs[2] {
		t.Fatalf("batch 1: got %+v", batch)
	}
	// The rest is still buffered; reusing the slice must not reallocate it.
	batch, err = r.ReadRequestBatch(batch[:0], 64)
	if err != nil {
		t.Fatalf("batch 2: %v", err)
	}
	if len(batch) != 2 || batch[0] != reqs[3] || batch[1] != reqs[4] {
		t.Fatalf("batch 2: got %+v", batch)
	}
	// Stream exhausted: the error surfaces with no requests in front of it.
	if batch, err = r.ReadRequestBatch(batch[:0], 64); err != io.EOF || len(batch) != 0 {
		t.Fatalf("batch 3: got %d reqs, err %v; want 0, io.EOF", len(batch), err)
	}
}

// TestReadRequestBatchMalformedAfterGood pins the error-position contract: a
// zero-length frame behind two good requests yields those two requests and
// ErrMalformed, so a server can serve the batch before killing the
// connection.
func TestReadRequestBatchMalformedAfterGood(t *testing.T) {
	var out bytes.Buffer
	w := NewWriter(&out, 0)
	w.WriteRequest(Request{Op: OpSet, Key: 10})
	w.WriteRequest(Request{Op: OpGet, Key: 11})
	if err := w.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	out.Write([]byte{0, 0, 0, 0}) // zero-length frame: malformed
	r := NewReader(bytes.NewReader(out.Bytes()), 4096)
	batch, err := r.ReadRequestBatch(nil, 64)
	if !errors.Is(err, ErrMalformed) {
		t.Fatalf("err = %v, want ErrMalformed", err)
	}
	if len(batch) != 2 || batch[0].Key != 10 || batch[1].Key != 11 {
		t.Fatalf("batch before malformed frame: %+v", batch)
	}
}

// TestReadRequestBatchStopsAtPartialFrame pins the no-blocking contract: a
// complete frame followed by a truncated one returns the complete request
// immediately — the batch boundary is what the buffer holds, never a stall
// waiting for a frame's tail.
func TestReadRequestBatchStopsAtPartialFrame(t *testing.T) {
	var out bytes.Buffer
	w := NewWriter(&out, 0)
	w.WriteRequest(Request{Op: OpSet, Key: 42})
	w.WriteRequest(Request{Op: OpSet, Key: 43})
	if err := w.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	full := out.Bytes()
	r := NewReader(bytes.NewReader(full[:len(full)-3]), 4096)
	batch, err := r.ReadRequestBatch(nil, 64)
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	if len(batch) != 1 || batch[0].Key != 42 {
		t.Fatalf("batch: got %+v, want just key 42", batch)
	}
}
