package hashmap_test

import (
	"testing"
	"time"

	"pragmaprim/internal/core"
	"pragmaprim/internal/hashmap"
	"pragmaprim/internal/reclaim"
	"pragmaprim/internal/template"
)

// TestEpochStallBoundsMigrationGarbage parks one handle inside an epoch
// guard — a reader that never finishes — and then forces resize after
// resize. Migration retires every frozen chain, every primed marker, every
// forwarded sentinel and every old table through the epoch domain, so a
// parked reader is its worst case: nothing can be recycled while the epoch
// is pinned. The guarantees under test: the working session stays correct,
// its limbo stays bounded (overflow drops to the GC rather than growing
// without bound — a liveness degradation, never a safety one), and
// recycling resumes once the parked reader quiesces — merely exiting the
// operation leaves a stale announcement published, which still pins the
// epoch under the amortized scheme.
func TestEpochStallBoundsMigrationGarbage(t *testing.T) {
	// Announcements persist across operations now, so a handle leaked by an
	// earlier test in this binary would pin the epoch and mask the resume
	// this test asserts. Wait for the GC scavenger to clear any leftovers.
	if !reclaim.Default.AwaitMobile(10 * time.Second) {
		t.Fatal("reclamation epoch is pinned by a stale announcement from an earlier test")
	}
	m := hashmap.New()
	parked := core.NewHandle()
	template.Enter(parked) // park: announce an epoch and never exit

	h := core.NewHandle()
	s := m.Attach(h)
	// Monotonic inserts force doublings (each one retiring a table's worth
	// of frozen chains), and balanced churn on a side range generates
	// steady delete garbage, all while the epoch is pinned.
	const grow = 12000
	for k := 0; k < grow; k++ {
		s.Insert(k)
		if k%2 == 1 {
			s.Delete(k - 1)
		}
	}
	st := s.ReclaimStats()
	if st.Recycled != 0 {
		t.Errorf("recycled %d nodes while an epoch was parked", st.Recycled)
	}
	if st.Retired == 0 {
		t.Fatal("churn under resize retired nothing")
	}
	if st.Dropped == 0 {
		t.Error("a parked epoch must force limbo overflow to drop to the GC")
	}
	// The cap is 16384 entries (reclaim.limboCap, sized to ride out a
	// descheduled peer's timeslice); the churn above retires well over
	// twice that, so an unbounded limbo would blow straight past the
	// threshold.
	if limbo := h.Process().Reclaimer().LimboLen(); limbo > 17000 {
		t.Errorf("limbo grew to %d entries under a parked epoch; want bounded by the caps", limbo)
	}

	// Correctness is unaffected by the stall: resizes completed and every
	// surviving key is visible.
	if _, resizes := m.MigrationStats(); resizes == 0 {
		t.Fatal("no resize completed under the parked epoch")
	}
	for k := 1; k < grow; k += 2 {
		if !s.Get(k) {
			t.Fatalf("key %d lost during stalled-epoch resizes", k)
		}
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("invariants under stall: %v", err)
	}

	// Exiting the operation is NOT enough under the amortized scheme: the
	// announcement stays published between operations, so the exited reader
	// still pins the epoch with a stale announcement.
	template.Exit(parked)
	for i := 0; i < 500; i++ {
		k := 1_000_000 + i%8
		s.Insert(k)
		s.Delete(k)
	}
	if got := s.ReclaimStats().Recycled; got != 0 {
		t.Errorf("recycled %d nodes under a stale (exited but unquiesced) announcement", got)
	}

	// Quiesce unpublishes the stale announcement; reclamation resumes.
	template.Quiesce(parked)
	for i := 0; i < 500; i++ {
		k := 1_000_000 + i%8
		s.Insert(k)
		s.Delete(k)
	}
	if got := s.ReclaimStats().Recycled; got == 0 {
		t.Error("reclamation did not resume after the parked handle quiesced")
	}

	// Unpublish this test's own announcements so later tests in the binary
	// see a mobile epoch.
	h.Release()
	parked.Release()
}
