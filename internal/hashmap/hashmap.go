// Package hashmap implements the repository's eighth structure: a
// lock-free, incrementally resizable hash map of int keys with O(1) Get.
// Every other keyed structure here walks a sorted list or tree, so lookup
// latency scales with the keyspace; the map's bucket array makes it flat.
//
// The design is the degenerate case of the paper's template: every update
// is a one-record SCX — a single-word CAS on one bucket head — so no
// descriptor, helping, or finalization is needed. What makes that sound is
// the same discipline the LLX/SCX structures rely on (DESIGN.md, "The hash
// map"):
//
//   - Bucket chains are immutable. A node's key and next pointer never
//     change while the node is published, so a bucket head value determines
//     the bucket's entire contents. Deletes copy the prefix in front of the
//     removed node instead of mutating links (the multiset's Figure 5(c)
//     move, without the finalization).
//   - Nodes are recycled through internal/reclaim. An operation announces
//     an epoch for its whole duration (template.Run does this for updates,
//     template.Enter/Exit for reads), so no node address it has read can be
//     recycled and republished under it — the CAS-ABA discharge.
//
// Resize is incremental, in the style of rescrv's lockfree hash map's
// primed bucket pointers: doubling is announced by installing next-table
// pointers, each source bucket is frozen with a primed marker, its frozen
// chain is copied into the two target buckets with a single CAS-from-nil
// per target (exactly-once by construction), and the source is replaced by
// a forwarded sentinel. Readers never block — they read frozen chains
// through markers and follow forwarded sentinels — and writers migrate the
// one bucket in their way before operating. Migration cost is amortized:
// every update also migrates a couple of cursor buckets, and retired tables
// and chains go through the epoch domain like every other unlink.
//
// Methods never take a *core.Process: plain calls acquire a pooled Handle
// per operation, and hot paths bind a Session with Attach, exactly like the
// other structures.
package hashmap

import (
	"fmt"
	"sync/atomic"

	"pragmaprim/internal/core"
	"pragmaprim/internal/hashutil"
	"pragmaprim/internal/reclaim"
	"pragmaprim/internal/template"
)

// kind discriminates chain nodes from the three migration sentinels.
type kind uint8

const (
	// kindEntry is a live key in a bucket chain.
	kindEntry kind = iota
	// kindBoundary terminates a chain that was installed by migration. Its
	// job is to keep an initialized target bucket's head non-nil forever:
	// migration installs a target's contents with a single CAS-from-nil,
	// and that is exactly-once only because no later delete can return the
	// head to nil (the boundary is never removed).
	kindBoundary
	// kindPrimed marks a source bucket frozen for migration; next is the
	// frozen chain. Only ever a head value.
	kindPrimed
	// kindForwarded marks a fully migrated source bucket; readers and
	// writers continue in the next table. Terminal, and only a head value.
	kindForwarded
)

// node is one chain link. All fields are immutable while the node is
// published (publication happens-before every read via the bucket-head
// CAS), which is what lets searches run on plain reads and lets a CAS on
// the head stand in for an SCX over the whole chain.
type node struct {
	key  int
	kind kind
	next *node
}

// table is one bucket array generation. Buckets are selected by the top
// log2(len(buckets)) bits of hashutil.Mix64(key), so doubling splits bucket
// i of this table exactly into buckets 2i and 2i+1 of the next.
type table struct {
	buckets []atomic.Pointer[node]
	shift   uint // 64 - log2(len(buckets))
	// next points at the table being migrated into; non-nil once a resize
	// of this table has begun. Set once by CAS, never cleared.
	next atomic.Pointer[table]
	// fwd is this table's shared forwarded sentinel. Each head stores it at
	// most once (forwarding is terminal), so the shared value never
	// reappears in any location's history.
	fwd *node
	// cursor hands out source buckets to migrating operations; it runs to
	// 2*len(buckets) so every bucket is visited by two amortizing passes
	// even if some visitors stall mid-migration.
	cursor atomic.Int64
	// forwarded counts forwarded source buckets; the op that forwards the
	// last one flips Map.state.
	forwarded atomic.Int64
}

// sizeStripes spreads the size counter over cache-padded cells; sessions
// pick a stripe round-robin. Power of two.
const sizeStripes = 64

type sizeCell struct {
	n atomic.Int64
	_ [7]int64 // pad to a cache line
}

const (
	// initialBuckets is the bucket count of a fresh map.
	initialBuckets = 16
	// maxLoad is the growth trigger: double when size > maxLoad * buckets,
	// so steady-state mean chain length stays between maxLoad/2 and
	// maxLoad. 2 keeps the hit-path walk at ~1.5 dependent loads: once the
	// table outgrows the LLC each chain node is a DRAM miss, so trading
	// bucket-array bytes (8/bucket) for shorter chains is what keeps the
	// large-keyspace GET rows of BenchmarkHashmapGetKeyspace near-flat.
	maxLoad = 2
	// growCheckMask gates the striped-counter sum behind the first applied
	// insert of each session and every 32nd after (the sum is 64 atomic
	// loads).
	growCheckMask = 31
	// migrateQuota is how many cursor buckets each update migrates while a
	// resize is in flight.
	migrateQuota = 2
)

// Map is a non-blocking hash set of int keys with map-shaped operations
// (the container layer's currency is key presence; see internal/container).
// The zero value is not usable; create one with New. All methods are safe
// for concurrent use.
type Map struct {
	state     atomic.Pointer[table]
	pool      *reclaim.Pool[node]
	tablePool *reclaim.Pool[table]
	policy    template.Policy
	insStats  template.OpStats
	delStats  template.OpStats
	size      [sizeStripes]sizeCell
	stripeCtr atomic.Uint32
	// migrated counts forwarded source buckets across all resizes;
	// resizes counts completed table flips. Diagnostics for stress and the
	// resize tests.
	migrated atomic.Int64
	resizes  atomic.Int64
}

// New creates an empty map with a small initial table; it doubles itself as
// it grows.
func New() *Map {
	m := &Map{
		pool:      reclaim.NewPool[node](),
		tablePool: reclaim.NewPool[table](),
	}
	// A node entering a freelist is unreachable: drop its chain reference
	// so a recycled node cannot pin an arbitrarily long dead chain for the
	// garbage collector.
	m.pool.SetOnFree(func(n *node) { n.next = nil })
	// Likewise a freed table drops its bucket array (only the struct is
	// worth reusing; a future resize needs a different-size array anyway).
	m.tablePool.SetOnFree(func(t *table) {
		t.buckets = nil
		t.fwd = nil
		t.next.Store(nil)
	})
	m.state.Store(m.newTable(nil, initialBuckets))
	return m
}

// newNode builds (or recycles, under an announced reclaim state) an
// unpublished node.
func (m *Map) newNode(l *reclaim.Local, k kind, key int, next *node) *node {
	n := m.pool.Get(l)
	if n == nil {
		n = &node{}
	}
	n.key, n.kind, n.next = key, k, next
	return n
}

// newTable builds (or recycles the struct of) a table with n buckets, n a
// power of two.
func (m *Map) newTable(l *reclaim.Local, n int) *table {
	t := m.tablePool.Get(l)
	if t == nil {
		t = &table{}
	}
	t.buckets = make([]atomic.Pointer[node], n)
	t.shift = 64 - uint(log2(n))
	t.fwd = m.newNode(l, kindForwarded, 0, nil)
	t.cursor.Store(0)
	t.forwarded.Store(0)
	return t
}

func log2(n int) int {
	b := 0
	for 1<<b < n {
		b++
	}
	return b
}

// bucketOf returns the index of key's bucket in t.
func (t *table) bucketOf(hash uint64) int { return int(hash >> t.shift) }

func hashOf(key int) uint64 { return hashutil.Mix64(uint64(key)) }

// SetPolicy installs the retry policy updates back off with; nil (the
// default) retries immediately. Call before sharing the map.
func (m *Map) SetPolicy(p template.Policy) { m.policy = p }

// EngineStats returns the engine's aggregate attempt/failure counters
// across all update operations. CAS failures are reported as SCX failures —
// the map's commit is the degenerate one-record SCX.
func (m *Map) EngineStats() template.Counters {
	return m.insStats.Snapshot().Add(m.delStats.Snapshot())
}

// StatsByOp returns the engine counters broken out per operation.
func (m *Map) StatsByOp() map[string]template.Counters {
	return map[string]template.Counters{
		"insert": m.insStats.Snapshot(),
		"delete": m.delStats.Snapshot(),
	}
}

// MigrationStats reports how many source buckets have been migrated and how
// many table doublings have completed, for stress reports and tests.
func (m *Map) MigrationStats() (buckets, resizes int64) {
	return m.migrated.Load(), m.resizes.Load()
}

// Buckets returns the current table's bucket count (tests and diagnostics).
func (m *Map) Buckets() int { return len(m.state.Load().buckets) }

// Size returns the number of keys: the sum of the striped counters, exact
// on a quiescent map and weakly consistent under concurrency. It is
// conserved by construction — +1 per applied Insert, -1 per applied Delete;
// migration moves keys between tables without touching it.
func (m *Map) Size() int {
	var total int64
	for i := range m.size {
		total += m.size[i].n.Load()
	}
	return int(total)
}

// Len is Size, under the name the other keyed structures use.
func (m *Map) Len() int { return m.Size() }

// Session is a Handle-bound view of a Map: the hot-path API for a goroutine
// performing many operations. Not safe for concurrent use (the Handle is
// exclusive); any number of Sessions may operate on the shared Map.
type Session struct {
	m      *Map
	h      *core.Handle
	stripe uint32
	// applied counts this session's applied inserts, gating the growth
	// check; sessions are single-goroutine so a plain int suffices.
	applied int
}

// Attach binds a Session to h. The caller keeps ownership of h and releases
// it when done.
func (m *Map) Attach(h *core.Handle) *Session {
	return &Session{m: m, h: h, stripe: m.stripeCtr.Add(1) & (sizeStripes - 1)}
}

// Handle returns the Session's Handle.
func (s *Session) Handle() *core.Handle { return s.h }

// Get reports whether key is present using a pooled Handle; see Session.Get
// for the hot-path form.
func (m *Map) Get(key int) bool {
	h := core.AcquireHandle()
	ok := m.Attach(h).Get(key)
	h.Release()
	return ok
}

// Insert adds key using a pooled Handle; see Session.Insert.
func (m *Map) Insert(key int) bool {
	h := core.AcquireHandle()
	ok := m.Attach(h).Insert(key)
	h.Release()
	return ok
}

// Delete removes key using a pooled Handle; see Session.Delete.
func (m *Map) Delete(key int) bool {
	h := core.AcquireHandle()
	ok := m.Attach(h).Delete(key)
	h.Release()
	return ok
}

// Contains is Get under the name the other structures use.
func (m *Map) Contains(key int) bool { return m.Get(key) }

// Get reports whether key is present: one hash, one bucket load, and a walk
// of a constant-expected-length immutable chain, entirely on plain reads
// under the session's epoch guard — 0 allocations, O(1) latency independent
// of the keyspace. During a resize it reads frozen chains through primed
// markers (still authoritative until the bucket forwards) and follows
// forwarded sentinels into the next table.
func (s *Session) Get(key int) bool {
	template.Enter(s.h)
	found := s.m.lookup(key)
	template.Exit(s.h)
	return found
}

// lookup is Get's body; the caller must hold an epoch guard.
func (m *Map) lookup(key int) bool {
	hash := hashOf(key)
	t := m.state.Load()
	for {
		n := t.buckets[t.bucketOf(hash)].Load()
		if n != nil {
			if n.kind == kindForwarded {
				t = t.next.Load()
				continue
			}
			if n.kind == kindPrimed {
				n = n.next
			}
		}
		for ; n != nil && n.kind == kindEntry; n = n.next {
			if n.key == key {
				return true
			}
		}
		return false
	}
}

// Insert adds key and reports whether the map grew (false: already
// present). The commit is a single CAS swinging the bucket head to a fresh
// node, run as an attempt body on the template engine (which owns the epoch
// announcement, retry policy and contention counters).
func (s *Session) Insert(key int) bool {
	m := s.m
	var fresh *node // built at most once per operation; reused across attempts
	hash := hashOf(key)
	return template.Run(s.h, m.policy, &m.insStats, func(c *template.Ctx) (bool, template.Action) {
		l := c.Reclaim()
		t, idx, head := m.find(l, hash)
		for n := head; n != nil && n.kind == kindEntry; n = n.next {
			if n.key == key {
				if fresh != nil {
					m.pool.Release(l, fresh) // never published
				}
				return false, template.Done
			}
		}
		if fresh == nil {
			fresh = m.newNode(l, kindEntry, key, head)
		} else {
			fresh.next = head // retarget for this attempt
		}
		if !t.buckets[idx].CompareAndSwap(head, fresh) {
			c.CASFailed()
			return false, template.Retry
		}
		m.size[s.stripe].n.Add(1)
		s.applied++
		// Check on the FIRST applied insert of a session (and every 32nd
		// after): the convenience Map.Insert path binds a fresh session per
		// call, so a gate that only fired at applied%32==0 would never run
		// for it and a map filled through it would keep its tiny table —
		// growth would then depend on some later long-lived session writing
		// 32 times.
		if s.applied&growCheckMask == 1 || len(t.buckets) <= initialBuckets {
			m.maybeGrow(l, t)
		}
		m.migrateSome(l)
		return true, template.Done
	})
}

// Delete removes key and reports whether the map shrank (false: absent).
// The removed node's chain prefix is copied in front of its suffix — links
// are immutable — and the old prefix plus the removed node retire through
// the epoch domain. When the removed node is the head itself the suffix
// pointer is stored directly: with immutable chains a head value uniquely
// determines bucket contents, so value recurrence is harmless to chain CASes
// (the one place it is not — migration's CAS-from-nil — is protected by the
// boundary sentinel, which keeps migrated buckets non-nil forever).
func (s *Session) Delete(key int) bool {
	m := s.m
	hash := hashOf(key)
	return template.Run(s.h, m.policy, &m.delStats, func(c *template.Ctx) (bool, template.Action) {
		l := c.Reclaim()
		t, idx, head := m.find(l, hash)
		var r *node // the node holding key
		for n := head; n != nil && n.kind == kindEntry; n = n.next {
			if n.key == key {
				r = n
				break
			}
		}
		if r == nil {
			return false, template.Done
		}
		// Rebuild the prefix in front of r as fresh copies sharing r's
		// suffix, then swing the head past r in one CAS.
		newHead := r.next
		var copies *node
		for n := head; n != r; n = n.next {
			cp := m.newNode(l, kindEntry, n.key, nil)
			cp.next = copies
			copies = cp
		}
		// copies is the prefix reversed; re-reverse it onto newHead so the
		// copied chain preserves the original order.
		for cp := copies; cp != nil; {
			next := cp.next
			cp.next = newHead
			newHead = cp
			cp = next
		}
		if !t.buckets[idx].CompareAndSwap(head, newHead) {
			// The copies were never published; they run from newHead down to
			// (not including) r's suffix.
			m.releaseChain(l, newHead, r.next)
			c.CASFailed()
			return false, template.Retry
		}
		// Retire r and the replaced originals; their addresses stay
		// unreusable until every announced operation has moved on.
		for n := head; n != r; {
			next := n.next
			m.pool.Retire(l, n)
			n = next
		}
		m.pool.Retire(l, r)
		m.size[s.stripe].n.Add(-1)
		m.migrateSome(l)
		return true, template.Done
	})
}

// releaseChain returns the never-published nodes from head down to (not
// including) stop to the pool.
func (m *Map) releaseChain(l *reclaim.Local, head, stop *node) {
	for n := head; n != stop; {
		next := n.next
		m.pool.Release(l, n)
		n = next
	}
}

// find locates the live bucket for hash: the deepest table whose bucket is
// operable (nil, or a chain of entries/boundary). A primed or forwarded
// bucket on the way is migrated to completion first — this is how writers
// "help": they finish the one bucket in their way and move on, never
// blocking. The caller must hold an epoch guard (a Run attempt does).
func (m *Map) find(l *reclaim.Local, hash uint64) (t *table, idx int, head *node) {
	t = m.state.Load()
	for {
		idx = t.bucketOf(hash)
		head = t.buckets[idx].Load()
		if head != nil && (head.kind == kindPrimed || head.kind == kindForwarded) {
			nt := t.next.Load()
			m.migrateBucket(l, t, nt, idx)
			t = nt
			continue
		}
		return t, idx, head
	}
}

// maybeGrow checks the load factor and, when exceeded, installs the next
// (doubled) table. Installation only announces the resize: buckets migrate
// incrementally afterwards.
func (m *Map) maybeGrow(l *reclaim.Local, t *table) {
	if t.next.Load() != nil {
		return
	}
	if m.Size() <= maxLoad*len(t.buckets) {
		return
	}
	nt := m.newTable(l, 2*len(t.buckets))
	if !t.next.CompareAndSwap(nil, nt) {
		// Lost the race; nt was never published.
		m.pool.Release(l, nt.fwd)
		nt.fwd = nil
		nt.buckets = nil
		m.tablePool.Release(l, nt)
	}
}

// migrateSome advances the in-flight resize (if any) by up to migrateQuota
// cursor buckets of the state table. The cursor runs two passes over the
// table so buckets whose first visitor stalled are still reached; after
// that, migration finishes via the operations that land on the remaining
// buckets.
func (m *Map) migrateSome(l *reclaim.Local) {
	t := m.state.Load()
	nt := t.next.Load()
	if nt == nil {
		return
	}
	n := int64(len(t.buckets))
	for q := 0; q < migrateQuota; q++ {
		i := t.cursor.Add(1) - 1
		if i >= 2*n {
			return
		}
		m.migrateBucket(l, t, nt, int(i%n))
	}
}

// migrateBucket moves source bucket i of t into buckets 2i and 2i+1 of nt
// and forwards it. Safe to call from any number of operations concurrently;
// returns once the bucket is forwarded (by this call or another).
//
// Protocol per source bucket:
//  1. Freeze: CAS the head to a fresh primed marker whose next is the
//     current chain. From here the chain cannot change (writers that lose
//     the race see the marker and help), so its contents are a fixed set.
//  2. Copy out: split the frozen entries by the next table's bucket bits
//     and install each non-empty half into its target with a single
//     CAS(nil -> copies+boundary). Exactly-once: the only transition out of
//     nil a target bucket ever makes is this one (writers cannot reach the
//     target until the source forwards, and the boundary keeps the head
//     non-nil forever after), so a stale helper's CAS-from-nil can never
//     resurrect keys that were deleted from the new table meanwhile.
//  3. Forward: CAS the marker to the table's forwarded sentinel and retire
//     the marker and the frozen originals through the epoch domain.
func (m *Map) migrateBucket(l *reclaim.Local, t, nt *table, i int) {
	for {
		h := t.buckets[i].Load()
		switch {
		case h == nil:
			// Empty source: forward directly; the targets stay nil (which
			// reads as empty) until a post-forward writer initializes them.
			if t.buckets[i].CompareAndSwap(nil, t.fwd) {
				m.finishBucket(l, t)
				return
			}
		case h.kind == kindForwarded:
			return
		case h.kind == kindPrimed:
			m.copyOut(l, nt, h.next)
			if t.buckets[i].CompareAndSwap(h, t.fwd) {
				// Winner retires the marker and the frozen chain; stalled
				// readers still traversing them are protected by their
				// announced epochs.
				m.pool.Retire(l, h)
				for n := h.next; n != nil; {
					next := n.next
					m.pool.Retire(l, n)
					n = next
				}
				m.finishBucket(l, t)
			}
			return
		default:
			// Live chain: freeze it. Losing the CAS means a writer got in;
			// reload and try again.
			marker := m.newNode(l, kindPrimed, 0, h)
			if !t.buckets[i].CompareAndSwap(h, marker) {
				m.pool.Release(l, marker)
				continue
			}
		}
	}
}

// copyOut installs the frozen chain's entries into their target buckets in
// nt. frozen may contain a boundary terminator from an earlier migration
// into t; only entries are copied.
func (m *Map) copyOut(l *reclaim.Local, nt *table, frozen *node) {
	// Two targets; collect each half's copies in original chain order.
	for half := 0; half < 2; half++ {
		var first, last *node
		for n := frozen; n != nil && n.kind == kindEntry; n = n.next {
			j := nt.bucketOf(hashOf(n.key))
			if j&1 != half {
				continue
			}
			cp := m.newNode(l, kindEntry, n.key, nil)
			if first == nil {
				first = cp
			} else {
				last.next = cp
			}
			last = cp
		}
		if first == nil {
			continue // nothing for this target; it stays nil (empty)
		}
		j := nt.bucketOf(hashOf(first.key))
		last.next = m.newNode(l, kindBoundary, 0, nil)
		if !nt.buckets[j].CompareAndSwap(nil, first) {
			// Another migrator already installed this target's contents.
			m.releaseChain(l, first, nil)
		}
	}
}

// finishBucket accounts one forwarded source bucket and, on the last one,
// flips Map.state to the next table and retires the old one.
func (m *Map) finishBucket(l *reclaim.Local, t *table) {
	m.migrated.Add(1)
	if t.forwarded.Add(1) != int64(len(t.buckets)) {
		return
	}
	nt := t.next.Load()
	if m.state.CompareAndSwap(t, nt) {
		m.resizes.Add(1)
		// Readers that loaded the old state before the flip are announced;
		// the epoch domain keeps the table struct and its forwarded
		// sentinel alive until they exit.
		m.pool.Retire(l, t.fwd)
		m.tablePool.Retire(l, t)
	}
}

// Range calls fn with every key observed by one traversal with plain reads
// under an epoch guard, stopping early if fn returns false. Like the other
// structures' walks it is weakly consistent under concurrency and exact on
// a quiescent map: frozen source chains are walked through their markers
// (they stay authoritative until forwarded), forwarded buckets are walked
// in the next table, and un-forwarded targets are never visited directly —
// so a key mid-migration, present in both an old frozen chain and a new
// target, is reported exactly once.
func (m *Map) Range(fn func(key int) bool) {
	template.Guarded(func() {
		t := m.state.Load()
		for i := range t.buckets {
			if !m.walkBucket(t, i, fn) {
				return
			}
		}
	})
}

// walkBucket visits source bucket i of t, descending into the next table's
// two halves when the bucket has forwarded.
func (m *Map) walkBucket(t *table, i int, fn func(key int) bool) bool {
	n := t.buckets[i].Load()
	if n != nil {
		if n.kind == kindForwarded {
			nt := t.next.Load()
			return m.walkBucket(nt, 2*i, fn) && m.walkBucket(nt, 2*i+1, fn)
		}
		if n.kind == kindPrimed {
			n = n.next
		}
	}
	for ; n != nil && n.kind == kindEntry; n = n.next {
		if !fn(n.key) {
			return false
		}
	}
	return true
}

// Items returns the keys observed by one traversal (Range's caveats apply).
func (m *Map) Items() []int {
	var keys []int
	m.Range(func(k int) bool { keys = append(keys, k); return true })
	return keys
}

// ReclaimStats returns the session handle's reclamation counters.
func (s *Session) ReclaimStats() reclaim.Stats {
	return s.h.Process().Reclaimer().Stats()
}

// CheckInvariants verifies the map's structural invariants on a quiescent
// map: every entry hashes to the bucket chain holding it, no chain holds a
// key twice, sentinels appear only in their legal positions, each key is
// observed exactly once across the table generations, and the striped size
// counter agrees with the walk. Intended for tests and stress checkpoints.
func (m *Map) CheckInvariants() (err error) {
	template.Guarded(func() { err = m.checkInvariants() })
	return err
}

func (m *Map) checkInvariants() error {
	t := m.state.Load()
	seen := make(map[int]bool)
	var check func(t *table, srcIdx int) error
	check = func(t *table, i int) error {
		n := t.buckets[i].Load()
		if n != nil && n.kind == kindForwarded {
			nt := t.next.Load()
			if nt == nil {
				return fmt.Errorf("bucket %d forwarded but table has no next", i)
			}
			if err := check(nt, 2*i); err != nil {
				return err
			}
			return check(nt, 2*i+1)
		}
		if n != nil && n.kind == kindPrimed {
			n = n.next
		}
		inChain := make(map[int]bool)
		for ; n != nil; n = n.next {
			switch n.kind {
			case kindBoundary:
				if n.next != nil {
					return fmt.Errorf("bucket %d: boundary node has a successor", i)
				}
				return nil
			case kindPrimed, kindForwarded:
				return fmt.Errorf("bucket %d: migration sentinel inside a chain", i)
			}
			if got := t.bucketOf(hashOf(n.key)); got != i {
				return fmt.Errorf("key %d hashed to bucket %d but found in bucket %d", n.key, got, i)
			}
			if inChain[n.key] {
				return fmt.Errorf("key %d appears twice in bucket %d", n.key, i)
			}
			inChain[n.key] = true
			if seen[n.key] {
				return fmt.Errorf("key %d observed in two live locations", n.key)
			}
			seen[n.key] = true
		}
		return nil
	}
	for i := range t.buckets {
		if err := check(t, i); err != nil {
			return err
		}
	}
	if got, want := m.Size(), len(seen); got != want {
		return fmt.Errorf("size counter %d, walk found %d keys", got, want)
	}
	return nil
}
