package hashmap_test

import (
	"testing"

	"pragmaprim/internal/core"
	"pragmaprim/internal/hashmap"
)

// TestGetZeroAllocs pins the map's headline property alongside its O(1)
// latency: a steady-state Get allocates nothing. The read path is a hash,
// a bucket load and an immutable-chain walk under the session's epoch
// guard — there is nothing to allocate, and this test keeps it that way.
func TestGetZeroAllocs(t *testing.T) {
	m := hashmap.New()
	h := core.NewHandle()
	s := m.Attach(h)
	for k := 0; k < 1024; k++ {
		s.Insert(k)
	}
	k := 0
	if avg := testing.AllocsPerRun(2000, func() {
		s.Get(k)
		k = (k + 1) % 1024
	}); avg != 0 {
		t.Fatalf("Get allocates %.2f objects/op, want 0", avg)
	}
}

// TestUpdateAllocsWarm pins the update path's allocation budget once the
// freelists are warm: an insert needs at most its one chain node (recycled
// from the pool, so amortized zero) and a delete of a chain head needs
// none. The gate is <= 1 allocation per insert+delete PAIR, the same
// budget the other structures' BENCH_core rows are pinned to.
func TestUpdateAllocsWarm(t *testing.T) {
	m := hashmap.New()
	h := core.NewHandle()
	s := m.Attach(h)
	for k := 0; k < 256; k++ {
		s.Insert(k)
	}
	// Warm the freelists: balanced pairs push retired nodes through a
	// grace period and back out.
	for i := 0; i < 2000; i++ {
		k := 10000 + i%8
		s.Insert(k)
		s.Delete(k)
	}
	k := 0
	if avg := testing.AllocsPerRun(2000, func() {
		key := 10000 + k%8
		s.Insert(key)
		s.Delete(key)
		k++
	}); avg > 1 {
		t.Fatalf("warm insert+delete pair allocates %.2f objects, want <= 1", avg)
	}
}
