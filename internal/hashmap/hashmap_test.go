package hashmap_test

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"pragmaprim/internal/core"
	"pragmaprim/internal/hashmap"
)

func TestBasicOps(t *testing.T) {
	m := hashmap.New()
	if m.Get(7) {
		t.Fatal("Get on empty map returned true")
	}
	if !m.Insert(7) {
		t.Fatal("first Insert(7) not applied")
	}
	if m.Insert(7) {
		t.Fatal("second Insert(7) applied")
	}
	if !m.Get(7) || !m.Contains(7) {
		t.Fatal("Get(7) false after insert")
	}
	if m.Size() != 1 || m.Len() != 1 {
		t.Fatalf("Size = %d, want 1", m.Size())
	}
	if m.Delete(8) {
		t.Fatal("Delete of absent key applied")
	}
	if !m.Delete(7) {
		t.Fatal("Delete(7) not applied")
	}
	if m.Delete(7) {
		t.Fatal("second Delete(7) applied")
	}
	if m.Get(7) || m.Size() != 0 {
		t.Fatalf("key 7 still visible after delete (size %d)", m.Size())
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}

// TestGrowthThroughDoublings pushes the map through many table doublings
// from a single session and verifies every key survives every migration,
// the bucket array actually grew, and the structural invariants (including
// the conserved size counter) hold at the end.
func TestGrowthThroughDoublings(t *testing.T) {
	m := hashmap.New()
	h := core.NewHandle()
	s := m.Attach(h)
	const n = 20000
	for k := 0; k < n; k++ {
		if !s.Insert(k) {
			t.Fatalf("Insert(%d) not applied", k)
		}
	}
	if got := m.Buckets(); got < n/8 {
		t.Fatalf("map never doubled: %d buckets for %d keys", got, n)
	}
	_, resizes := m.MigrationStats()
	if resizes == 0 {
		t.Fatal("no completed resize recorded")
	}
	for k := 0; k < n; k++ {
		if !s.Get(k) {
			t.Fatalf("key %d lost across migrations", k)
		}
	}
	if m.Size() != n {
		t.Fatalf("Size = %d, want %d", m.Size(), n)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("invariants after growth: %v", err)
	}

	// Drain it back down and verify emptiness — deletes run against the
	// boundary-terminated chains migration installed.
	for k := 0; k < n; k++ {
		if !s.Delete(k) {
			t.Fatalf("Delete(%d) not applied", k)
		}
	}
	if m.Size() != 0 {
		t.Fatalf("Size = %d after draining, want 0", m.Size())
	}
	if got := len(m.Items()); got != 0 {
		t.Fatalf("Items returned %d keys after draining", got)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("invariants after drain: %v", err)
	}
}

// TestGrowthThroughConvenienceInserts fills the map exclusively through the
// session-per-call Map.Insert path and verifies the table still doubles.
// Each convenience call binds a fresh Session whose applied-insert counter
// starts at zero, so a growth gate keyed only to "every 32nd applied insert
// of this session" never fires for it: the map would stay near its initial
// bucket count with thousand-entry chains, turning the O(1) Get claim into
// an O(n) walk for any map populated this way (the pure-read parallel lane
// measures exactly this shape).
func TestGrowthThroughConvenienceInserts(t *testing.T) {
	m := hashmap.New()
	const n = 20000
	for k := 0; k < n; k++ {
		if !m.Insert(k) {
			t.Fatalf("Insert(%d) not applied", k)
		}
	}
	if got := m.Buckets(); got < n/8 {
		t.Fatalf("map never doubled under convenience inserts: %d buckets for %d keys", got, n)
	}
	for k := 0; k < n; k += 97 {
		if !m.Get(k) {
			t.Fatalf("key %d lost", k)
		}
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}

// TestRangeAndItems checks traversal exactness on a quiescent map that has
// been through at least one resize.
func TestRangeAndItems(t *testing.T) {
	m := hashmap.New()
	want := map[int]bool{}
	for k := 0; k < 500; k += 3 {
		m.Insert(k)
		want[k] = true
	}
	got := map[int]bool{}
	for _, k := range m.Items() {
		if got[k] {
			t.Fatalf("Items reported key %d twice", k)
		}
		got[k] = true
	}
	if len(got) != len(want) {
		t.Fatalf("Items found %d keys, want %d", len(got), len(want))
	}
	for k := range want {
		if !got[k] {
			t.Fatalf("Items missed key %d", k)
		}
	}
	// Early stop is honored.
	n := 0
	m.Range(func(int) bool { n++; return n < 10 })
	if n != 10 {
		t.Fatalf("Range visited %d keys after requesting stop at 10", n)
	}
}

// TestConcurrentChurnConservation runs mixed workers over a shared keyspace
// and checks the applied-operation deltas against the final contents: each
// worker tracks its own net insertions per key, and the quiescent map must
// hold exactly the keys with positive net — the conservation law the
// container layer's Size contract depends on, here exercised across
// concurrent resizes.
func TestConcurrentChurnConservation(t *testing.T) {
	m := hashmap.New()
	const (
		workers = 4
		keys    = 512
		ops     = 8000
	)
	nets := make([][]int64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		nets[w] = make([]int64, keys)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := core.AcquireHandle()
			defer h.Release()
			s := m.Attach(h)
			rng := rand.New(rand.NewSource(int64(w) + 1))
			for i := 0; i < ops; i++ {
				k := rng.Intn(keys)
				switch rng.Intn(3) {
				case 0:
					if s.Insert(k) {
						nets[w][k]++
					}
				case 1:
					if s.Delete(k) {
						nets[w][k]--
					}
				default:
					s.Get(k)
				}
			}
		}(w)
	}
	wg.Wait()

	for k := 0; k < keys; k++ {
		var net int64
		for w := 0; w < workers; w++ {
			net += nets[w][k]
		}
		if net != 0 && net != 1 {
			t.Fatalf("key %d: net applied insertions = %d, want 0 or 1", k, net)
		}
		if present := m.Get(k); present != (net == 1) {
			t.Fatalf("key %d: present=%v but net applied insertions=%d", k, present, net)
		}
	}
	var total int64
	for k := 0; k < keys; k++ {
		for w := 0; w < workers; w++ {
			total += nets[w][k]
		}
	}
	if int64(m.Size()) != total {
		t.Fatalf("Size = %d, applied-op ledger says %d", m.Size(), total)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("invariants after churn: %v", err)
	}
}

// TestResizeHammer is the race-lane workout for the migration protocol:
// writers insert a monotonically growing keyspace to force doubling after
// doubling while readers traverse buckets and run full Range walks
// mid-migration. Under -race, a frozen chain mutated in place, a target
// bucket double-installed, or a table retired under a live reader shows up
// as a data race or a lost key.
func TestResizeHammer(t *testing.T) {
	m := hashmap.New()
	const (
		writers = 3
		readers = 2
		perW    = 6000
	)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := core.AcquireHandle()
			defer h.Release()
			s := m.Attach(h)
			for i := 0; i < perW; i++ {
				k := int(next.Add(1))
				if !s.Insert(k) {
					t.Errorf("Insert(%d) of a never-used key not applied", k)
					return
				}
				if !s.Get(k) {
					t.Errorf("key %d invisible immediately after insert", k)
					return
				}
				// Delete a fraction so migration sees chains shrink too.
				if k%5 == 0 {
					if !s.Delete(k) {
						t.Errorf("Delete(%d) not applied", k)
						return
					}
				}
			}
		}()
	}
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			h := core.AcquireHandle()
			defer h.Release()
			s := m.Attach(h)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				s.Get(i % (1 + int(next.Load())))
				if i%512 == 0 {
					m.Range(func(int) bool { return true })
				}
			}
		}(r)
	}
	// Writers finish first; then release the readers.
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	go func() {
		for {
			select {
			case <-done:
				return
			default:
			}
			if next.Load() >= writers*perW {
				close(stop)
				return
			}
		}
	}()
	<-done

	migrated, resizes := m.MigrationStats()
	if resizes < 5 {
		t.Fatalf("hammer completed only %d resizes (migrated %d buckets); wanted several doublings", resizes, migrated)
	}
	want := 0
	for k := 1; k <= writers*perW; k++ {
		if k%5 != 0 {
			want++
		}
	}
	if m.Size() != want {
		t.Fatalf("Size = %d after hammer, want %d", m.Size(), want)
	}
	for k := 1; k <= writers*perW; k++ {
		if got := m.Get(k); got != (k%5 != 0) {
			t.Fatalf("key %d: present=%v, want %v", k, got, k%5 != 0)
		}
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("invariants after hammer: %v", err)
	}
}

// TestEngineStatsCount verifies updates run through the template engine's
// counters and CAS failures surface as SCX failures.
func TestEngineStatsCount(t *testing.T) {
	m := hashmap.New()
	for k := 0; k < 100; k++ {
		m.Insert(k)
	}
	for k := 0; k < 50; k++ {
		m.Delete(k)
	}
	st := m.StatsByOp()
	if st["insert"].Attempts < 100 {
		t.Fatalf("insert attempts = %d, want >= 100", st["insert"].Attempts)
	}
	if st["delete"].Attempts < 50 {
		t.Fatalf("delete attempts = %d, want >= 50", st["delete"].Attempts)
	}
	total := m.EngineStats()
	if total.Attempts < 150 {
		t.Fatalf("total attempts = %d, want >= 150", total.Attempts)
	}
}
