package hashmap_test

import (
	"math/rand"
	"sync"
	"testing"

	"pragmaprim/internal/hashmap"
	"pragmaprim/internal/history"
	"pragmaprim/internal/linearizability"
)

// TestLinearizableHistories records many small concurrent runs against the
// real map and verifies each against the sequential set specification with
// the Wing-Gong checker — the same harness the other structures use, here
// with a tiny initial-table pressure so some histories span a resize.
func TestLinearizableHistories(t *testing.T) {
	const rounds = 60
	const procs = 3
	const opsPerProc = 5
	const keyRange = 3

	for round := 0; round < rounds; round++ {
		m := hashmap.New()
		rec := history.NewRecorder(procs)

		var wg sync.WaitGroup
		for g := 0; g < procs; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(round*procs + g)))
				pr := rec.Proc(g)
				for i := 0; i < opsPerProc; i++ {
					key := rng.Intn(keyRange)
					switch rng.Intn(3) {
					case 0:
						pr.Invoke(linearizability.SetInput{Op: "insert", Key: key},
							func() any { return m.Insert(key) })
					case 1:
						pr.Invoke(linearizability.SetInput{Op: "delete", Key: key},
							func() any { return m.Delete(key) })
					default:
						pr.Invoke(linearizability.SetInput{Op: "get", Key: key},
							func() any { return m.Get(key) })
					}
				}
			}(g)
		}
		wg.Wait()

		ops := rec.Ops()
		if !linearizability.Check(linearizability.SetModel(), ops) {
			t.Fatalf("round %d: history not linearizable:\n%+v", round, ops)
		}
	}
}
