package harness

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"pragmaprim/internal/container"
	"pragmaprim/internal/core"
	"pragmaprim/internal/history"
	"pragmaprim/internal/linearizability"
	"pragmaprim/internal/multiset"
	"pragmaprim/internal/mwcas"
	"pragmaprim/internal/shard"
	"pragmaprim/internal/stats"
	"pragmaprim/internal/template"
	"pragmaprim/internal/workload"
)

// newRecords builds n single-field records initialized to their index.
func newRecords(n int) []*core.Record {
	recs := make([]*core.Record, n)
	for i := range recs {
		recs[i] = core.NewRecord(2, []any{i, nil}, i)
	}
	return recs
}

// E1StepCount reproduces claim A1 (Section 1): an uncontended SCX over k
// records finalizing f of them costs k+1 CAS steps and f+2 writes, LLXs
// included.
func E1StepCount() *stats.Table {
	t := stats.NewTable(
		"E1: uncontended SCX cost — paper claim: k+1 CAS steps, f+2 writes (Sec. 1)",
		"k", "f", "CAS(measured)", "CAS(paper)", "writes(measured)", "writes(paper)", "match")
	for k := 1; k <= 5; k++ {
		for _, f := range []int{0, k / 2, k} {
			p := core.NewProcess()
			recs := newRecords(k)
			for _, r := range recs {
				if _, st := p.LLX(r); st != core.LLXOK {
					panic("harness: LLX failed on private record")
				}
			}
			p.Metrics.Reset()
			if !p.SCX(recs, recs[k-f:], recs[0].Field(1), "new") {
				panic("harness: uncontended SCX failed")
			}
			cas, writes := p.Metrics.CASSteps(), p.Metrics.WriteSteps()
			match := cas == int64(k+1) && writes == int64(f+2)
			t.AddRow(k, f, cas, k+1, writes, f+2, match)
		}
	}
	return t
}

// E2VLXReads reproduces claim A2 (Section 1): a VLX over k records performs
// exactly k shared-memory reads and no CAS.
func E2VLXReads() *stats.Table {
	t := stats.NewTable(
		"E2: VLX cost — paper claim: k reads, 0 CAS (Sec. 1)",
		"k", "reads(measured)", "reads(paper)", "CAS(measured)", "match")
	for k := 1; k <= 8; k++ {
		p := core.NewProcess()
		recs := newRecords(k)
		for _, r := range recs {
			if _, st := p.LLX(r); st != core.LLXOK {
				panic("harness: LLX failed on private record")
			}
		}
		p.Metrics.Reset()
		if !p.VLX(recs) {
			panic("harness: uncontended VLX failed")
		}
		reads, cas := p.Metrics.VLXReads, p.Metrics.CASSteps()
		t.AddRow(k, reads, k, cas, reads == int64(k) && cas == 0)
	}
	return t
}

// E3Disjoint reproduces claim A3 (Sections 1, 3.2): concurrent SCXs over
// disjoint V-sets all succeed; overlapping SCXs may fail individually but
// the system makes progress (every process finishes its quota). The
// increment loops run on the template engine, whose counters must agree
// with the core SCX metrics.
func E3Disjoint() *stats.Table {
	t := stats.NewTable(
		"E3: SCX success under disjoint vs. shared records — paper claim: disjoint SCXs all succeed (Sec. 1)",
		"mode", "procs", "SCX attempts", "successes", "success%", "engine agrees", "quota met")
	const perProc = 20000

	for _, procs := range []int{2, 4, 8} {
		for _, shared := range []bool{false, true} {
			recs := newRecords(procs)
			metrics := make([]core.Metrics, procs)
			var eng template.OpStats
			var wg sync.WaitGroup
			for g := 0; g < procs; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					h := core.NewHandle()
					r := recs[g]
					if shared {
						r = recs[0]
					}
					for done := 0; done < perProc; done++ {
						template.Run(h, nil, &eng,
							func(c *template.Ctx) (struct{}, template.Action) {
								snap, st := c.LLX(r)
								if st != core.LLXOK {
									return struct{}{}, template.Retry
								}
								if c.SCX([]*core.Record{r}, nil, r.Field(0), snap[0].(int)+1) {
									return struct{}{}, template.Done
								}
								return struct{}{}, template.Retry
							})
					}
					metrics[g] = h.Process().Metrics
				}(g)
			}
			wg.Wait()

			var total core.Metrics
			for i := range metrics {
				total.Add(&metrics[i])
			}
			mode := "disjoint"
			if shared {
				mode = "shared"
			}
			snap := eng.Snapshot()
			agrees := snap.Ops == int64(procs*perProc) &&
				snap.SCXFails == total.SCXOps-total.SCXSuccesses
			rate := 100 * float64(total.SCXSuccesses) / float64(total.SCXOps)
			t.AddRow(mode, procs, total.SCXOps, total.SCXSuccesses,
				rate, agrees, total.SCXSuccesses == int64(procs*perProc))
		}
	}
	return t
}

// E4KCASComparison reproduces claim A4 (Section 2): uncontended k-CAS costs
// 2k+1 CAS steps where SCX over the same k records costs k+1.
func E4KCASComparison() *stats.Table {
	t := stats.NewTable(
		"E4: SCX vs. k-CAS step counts — paper claim: k+1 vs. 2k+1 CAS (Sec. 2)",
		"k", "SCX CAS", "SCX paper", "kCAS CAS", "kCAS paper", "kCAS/SCX", "match")
	for k := 1; k <= 6; k++ {
		// SCX side.
		p := core.NewProcess()
		recs := newRecords(k)
		for _, r := range recs {
			if _, st := p.LLX(r); st != core.LLXOK {
				panic("harness: LLX failed")
			}
		}
		p.Metrics.Reset()
		if !p.SCX(recs, nil, recs[0].Field(0), -1) {
			panic("harness: SCX failed")
		}
		scxCAS := p.Metrics.CASSteps()

		// k-CAS side.
		cells := make([]*mwcas.Cell[int], k)
		old := make([]int, k)
		newv := make([]int, k)
		for i := range cells {
			cells[i] = mwcas.NewCell(i)
			old[i], newv[i] = i, i+1000
		}
		var st mwcas.Stats
		if !mwcas.MWCAS(cells, old, newv, &st) {
			panic("harness: MWCAS failed")
		}
		kcasCAS := st.CASAttempts.Load()

		ratio := float64(kcasCAS) / float64(scxCAS)
		t.AddRow(k, scxCAS, k+1, kcasCAS, 2*k+1, ratio,
			scxCAS == int64(k+1) && kcasCAS == int64(2*k+1))
	}
	return t
}

// E5Progress reproduces claim A5 (Section 3.2, P1-P4): with processes
// stalled mid-SCX (the moral equivalent of crashes), the remaining processes
// help the stalled operations to completion and keep finishing their own.
func E5Progress() *stats.Table {
	t := stats.NewTable(
		"E5: progress with stalled operators — paper claim: non-blocking via helping (Sec. 3.2, 4)",
		"stalled ops", "survivors", "ops/survivor", "completed", "all quotas met")

	const stallTarget = 2
	const survivors = 4
	const perSurvivor = 5000

	recs := newRecords(4)

	var stalledCount atomic.Int32
	release := make(chan struct{})
	stalledSCXs := make(chan struct{}, stallTarget)
	core.SetStepHook(func(k core.StepKind, _ *core.SCXRecord, _ *core.Record) {
		if k != core.StepUpdateCAS {
			return
		}
		if n := stalledCount.Add(1); n <= stallTarget {
			stalledSCXs <- struct{}{}
			<-release
		}
	})
	defer core.SetStepHook(nil)

	// Victims: their SCXs freeze records and stall just before the update
	// CAS, like a crashed process would.
	var victims sync.WaitGroup
	for v := 0; v < stallTarget; v++ {
		victims.Add(1)
		go func(v int) {
			defer victims.Done()
			p := core.NewProcess()
			r := recs[v]
			if _, st := p.LLX(r); st != core.LLXOK {
				return
			}
			p.SCX([]*core.Record{r}, nil, r.Field(0), -1-v)
		}(v)
	}
	for i := 0; i < stallTarget; i++ {
		<-stalledSCXs // both victims are now frozen mid-SCX
	}

	// Survivors operate on the same records and must make progress by
	// helping the stalled SCXs; their increments run on the template engine
	// like any structure update would.
	var completed atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < survivors; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h := core.NewHandle()
			rng := rand.New(rand.NewSource(int64(g)))
			for done := 0; done < perSurvivor; done++ {
				r := recs[rng.Intn(len(recs))]
				template.Run(h, nil, nil,
					func(c *template.Ctx) (struct{}, template.Action) {
						snap, st := c.LLX(r)
						if st != core.LLXOK {
							return struct{}{}, template.Retry
						}
						if c.SCX([]*core.Record{r}, nil, r.Field(0), snap[0].(int)+1) {
							return struct{}{}, template.Done
						}
						return struct{}{}, template.Retry
					})
				completed.Add(1)
			}
		}(g)
	}
	wg.Wait()
	close(release)
	victims.Wait()

	t.AddRow(stallTarget, survivors, perSurvivor, completed.Load(),
		completed.Load() == int64(survivors*perSurvivor))
	return t
}

// E6Transitions reproduces claim A6 (Figures 2/3/7): under a contended
// workload, every sampled (state, allFrozen) pair of every SCX-record is a
// vertex of Figure 2, and every record ends Committed or Aborted.
func E6Transitions() *stats.Table {
	t := stats.NewTable(
		"E6: SCX-record state machine — paper claim: only Fig. 2 vertices occur",
		"state", "allFrozen", "samples", "valid vertex")

	type pair struct {
		state  core.State
		frozen bool
	}
	counts := make(map[pair]int64)
	var mu sync.Mutex
	core.SetStepHook(func(_ core.StepKind, u *core.SCXRecord, _ *core.Record) {
		p := pair{state: u.State(), frozen: u.AllFrozen()}
		mu.Lock()
		counts[p]++
		mu.Unlock()
	})
	defer core.SetStepHook(nil)

	recs := newRecords(3)
	const procs = 4
	const perProc = 5000
	var wg sync.WaitGroup
	for g := 0; g < procs; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			p := core.NewProcess()
			for i := 0; i < perProc; i++ {
				a, b := recs[(g+i)%3], recs[(g+i+1)%3]
				if _, st := p.LLX(a); st != core.LLXOK {
					continue
				}
				if _, st := p.LLX(b); st != core.LLXOK {
					continue
				}
				p.SCX([]*core.Record{a, b}, nil, a.Field(0), g*perProc+i)
			}
		}(g)
	}
	wg.Wait()

	valid := func(p pair) bool {
		switch p.state {
		case core.StateInProgress:
			return true
		case core.StateCommitted:
			return p.frozen
		case core.StateAborted:
			return !p.frozen
		default:
			return false
		}
	}
	for _, p := range []pair{
		{core.StateInProgress, false},
		{core.StateInProgress, true},
		{core.StateCommitted, true},
		{core.StateAborted, false},
		{core.StateCommitted, false}, // must have 0 samples
		{core.StateAborted, true},    // must have 0 samples
	} {
		t.AddRow(p.state.String(), p.frozen, counts[p], valid(p) || counts[p] == 0)
	}
	return t
}

// E7Linearizability reproduces claim A7 (Theorem 6): recorded concurrent
// multiset histories are linearizable per the Wing-Gong checker.
func E7Linearizability(rounds int) *stats.Table {
	t := stats.NewTable(
		"E7: multiset linearizability — paper claim: Theorem 6",
		"procs", "ops/proc", "rounds", "linearizable")
	const procs = 3
	const opsPerProc = 5
	const keyRange = 3

	passed := 0
	for round := 0; round < rounds; round++ {
		m := multiset.New[int]()
		rec := history.NewRecorder(procs)
		var wg sync.WaitGroup
		for g := 0; g < procs; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(round*procs + g)))
				h := core.AcquireHandle()
				defer h.Release()
				s := m.Attach(h)
				pr := rec.Proc(g)
				for i := 0; i < opsPerProc; i++ {
					key := rng.Intn(keyRange)
					count := 1 + rng.Intn(2)
					switch rng.Intn(3) {
					case 0:
						pr.Invoke(linearizability.MultisetInput{Op: "insert", Key: key, Count: count},
							func() any { s.Insert(key, count); return nil })
					case 1:
						pr.Invoke(linearizability.MultisetInput{Op: "delete", Key: key, Count: count},
							func() any { return s.Delete(key, count) })
					default:
						pr.Invoke(linearizability.MultisetInput{Op: "get", Key: key},
							func() any { return s.Get(key) })
					}
				}
			}(g)
		}
		wg.Wait()
		if linearizability.Check(linearizability.MultisetModel(), rec.Ops()) {
			passed++
		}
	}
	t.AddRow(procs, opsPerProc, rounds, fmt.Sprintf("%d/%d", passed, rounds))
	return t
}

// E8Throughput reproduces claim A8 (Section 6): the LLX/SCX structures scale
// with threads while the coarse lock serializes; it prints the thread-sweep
// series for each structure and mix, with the template engine's SCX failure
// rate as the contention figure (the lock baselines report "-"). All five
// LLX/SCX structures run — the queue and stack through their
// produce/consume container adapters.
func E8Throughput(threads []int, dur time.Duration) *stats.Table {
	t := stats.NewTable(
		"E8: throughput scaling, ops/sec (prefilled to half of key range)",
		"structure", "mix(g/i/d)", "dist", "keys", "threads", "Mops/s", "scx-fail%")
	cfgs := []workload.Config{
		{KeyRange: 1 << 10, Dist: workload.Uniform, Mix: workload.ReadMostly},
		{KeyRange: 1 << 10, Dist: workload.Uniform, Mix: workload.UpdateHeavy},
	}
	for _, f := range Factories() {
		for _, cfg := range cfgs {
			for _, th := range threads {
				r := RunThroughput(f, cfg, th, dur)
				t.AddRow(r.Structure, r.Mix.String(), string(r.Dist), r.KeyRange,
					r.Threads, r.OpsPerSec()/1e6, failPctCell(r.Engine))
			}
		}
	}
	return t
}

// failPctCell renders the engine's SCX failure rate, or "-" for structures
// outside the engine.
func failPctCell(c template.Counters) any {
	if c.Attempts == 0 {
		return "-"
	}
	return stats.RatePct(c.SCXFails, c.Attempts)
}

// singleCoreNote flags tables whose point is parallel scaling when the run
// cannot exhibit any (GOMAXPROCS=1 serializes the workers).
func singleCoreNote() string {
	if runtime.GOMAXPROCS(0) > 1 {
		return ""
	}
	return " [single-core run: GOMAXPROCS=1 serializes workers, sharding gains need parallelism]"
}

// E9ShardScaling measures the sharding claim that follows from the paper's
// disjoint-access progress property (Sections 1, 3.2): because an
// operation's contention window is its private read set, hash-partitioned
// instances compose with no cross-shard coordination, so throughput under a
// hot-key (Zipf) update mix should recover as shards split the hot keys
// apart. Rows sweep shard counts (1 = the unsharded structure) under
// uniform and Zipf keys; vs-1sh is each row's speedup over the unsharded
// row of the same distribution. The unsharded baseline always runs first —
// explicit 1s in the sweep are folded into it — so the speedup column is
// never without its denominator.
func E9ShardScaling(shards []int, threads int, dur time.Duration) *stats.Table {
	t := stats.NewTable(
		"E9: sharded multiset throughput vs. shard count, update-heavy mix"+singleCoreNote(),
		"structure", "dist", "keys", "threads", "Mops/s", "vs-1sh", "scx-fail%")
	var widths []int
	for _, n := range shards {
		if n > 1 {
			widths = append(widths, n)
		}
	}
	base := LLXMultisetFactory()
	for _, dist := range []workload.Distribution{workload.Uniform, workload.Zipf} {
		cfg := workload.Config{KeyRange: 1 << 10, Dist: dist, Mix: workload.UpdateHeavy}
		r := RunThroughput(base, cfg, threads, dur)
		unsharded := r.OpsPerSec() / 1e6
		t.AddRow(r.Structure, string(r.Dist), r.KeyRange, r.Threads,
			unsharded, "-", failPctCell(r.Engine))
		for _, n := range widths {
			r := RunThroughput(ShardedFactory(base, n), cfg, threads, dur)
			mops := r.OpsPerSec() / 1e6
			speedup := any("-")
			if unsharded > 0 {
				speedup = mops / unsharded
			}
			t.AddRow(r.Structure, string(r.Dist), r.KeyRange, r.Threads,
				mops, speedup, failPctCell(r.Engine))
		}
	}
	return t
}

// E10HotKeyContention isolates what sharding does to contention itself: a
// Zipf update-heavy workload hammers a few hot keys, and the table reports
// the engine's SCX failure rate and retries per operation as shards peel
// hot keys onto separate instances, plus how concentrated the load on the
// hottest shard remains (share of all attempts, and its own failure rate)
// from the per-shard counters.
func E10HotKeyContention(shards []int, threads int, dur time.Duration) *stats.Table {
	t := stats.NewTable(
		"E10: hot-key (zipf) contention vs. shard count, llx-multiset"+singleCoreNote(),
		"shards", "threads", "Mops/s", "retries/op", "scx-fail%", "hot-shard att%", "hot-shard scx-fail%")
	cfg := workload.Config{KeyRange: 1 << 10, Dist: workload.Zipf, Mix: workload.UpdateHeavy}
	base := LLXMultisetFactory()
	for _, n := range shards {
		sh := shard.New(n, func(int) container.Container { return base.New() })
		r := RunThroughputOn(fmt.Sprintf("llx-multiset/%dsh", n), sh, cfg, threads, dur)

		// Per-shard counters include the prefill, which is uncontended and
		// spread thin; its attempts only dilute shares marginally.
		var hottest template.Counters
		var totalAttempts int64
		sh.ForEachShard(func(_ int, c container.Container) {
			cnt := c.EngineStats()
			totalAttempts += cnt.Attempts
			if cnt.Attempts > hottest.Attempts {
				hottest = cnt
			}
		})
		retriesPerOp := 0.0
		if r.Engine.Ops > 0 {
			retriesPerOp = float64(r.Engine.Retries()) / float64(r.Engine.Ops)
		}
		t.AddRow(n, r.Threads, r.OpsPerSec()/1e6, retriesPerOp,
			failPctCell(r.Engine),
			stats.RatePct(hottest.Attempts, totalAttempts),
			failPctCell(hottest))
	}
	return t
}
