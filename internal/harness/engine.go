package harness

import (
	"sync"
	"sync/atomic"
	"time"

	"pragmaprim/internal/workload"
)

// Result is one timed throughput measurement.
type Result struct {
	Structure string
	Threads   int
	Mix       workload.Mix
	Dist      workload.Distribution
	KeyRange  int
	Ops       int64
	Seconds   float64
}

// OpsPerSec returns the measured throughput.
func (r Result) OpsPerSec() float64 {
	if r.Seconds <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Seconds
}

// RunThroughput measures f under cfg with the given worker count for roughly
// dur. The structure is prefilled with half the key range so searches hit
// about half the time, the standard set-benchmark methodology.
func RunThroughput(f Factory, cfg workload.Config, threads int, dur time.Duration) Result {
	if err := cfg.Validate(); err != nil {
		panic("harness: " + err.Error())
	}
	newSession := f.New()

	pre := newSession()
	for k := 0; k < cfg.KeyRange; k += 2 {
		pre.Insert(k)
	}

	var (
		start   = make(chan struct{})
		stop    atomic.Bool
		total   atomic.Int64
		wg      sync.WaitGroup
		elapsed time.Duration
	)
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := newSession()
			keys := cfg.NewKeyGen(int64(w)*2 + 1)
			ops := cfg.NewOpGen(int64(w)*2 + 2)
			<-start
			n := int64(0)
			for !stop.Load() {
				key := keys.Next()
				switch ops.Next() {
				case workload.OpGet:
					s.Get(key)
				case workload.OpInsert:
					s.Insert(key)
				default:
					s.Delete(key)
				}
				n++
			}
			total.Add(n)
		}(w)
	}

	t0 := time.Now()
	close(start)
	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()
	elapsed = time.Since(t0)

	return Result{
		Structure: f.Name,
		Threads:   threads,
		Mix:       cfg.Mix,
		Dist:      cfg.Dist,
		KeyRange:  cfg.KeyRange,
		Ops:       total.Load(),
		Seconds:   elapsed.Seconds(),
	}
}
