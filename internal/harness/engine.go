package harness

import (
	"sync"
	"sync/atomic"
	"time"

	"pragmaprim/internal/template"
	"pragmaprim/internal/workload"
)

// Result is one timed throughput measurement.
type Result struct {
	Structure string
	Threads   int
	Mix       workload.Mix
	Dist      workload.Distribution
	KeyRange  int
	Ops       int64
	Seconds   float64
	// Engine is the template engine's attempt/failure counters over the
	// measured window (prefill excluded); zero for the lock baselines.
	Engine template.Counters
}

// OpsPerSec returns the measured throughput.
func (r Result) OpsPerSec() float64 {
	if r.Seconds <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Seconds
}

// RunThroughput measures f under cfg with the given worker count for roughly
// dur. The structure is prefilled with half the key range so searches hit
// about half the time, the standard set-benchmark methodology.
func RunThroughput(f Factory, cfg workload.Config, threads int, dur time.Duration) Result {
	if err := cfg.Validate(); err != nil {
		panic("harness: " + err.Error())
	}
	inst := f.New()

	pre := inst.NewSession()
	for k := 0; k < cfg.KeyRange; k += 2 {
		pre.Insert(k)
	}
	closeSession(pre)
	base := inst.EngineStats() // exclude the prefill from the reported counters

	var (
		start   = make(chan struct{})
		stop    atomic.Bool
		total   atomic.Int64
		wg      sync.WaitGroup
		elapsed time.Duration
	)
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := inst.NewSession()
			defer closeSession(s)
			keys := cfg.NewKeyGen(int64(w)*2 + 1)
			ops := cfg.NewOpGen(int64(w)*2 + 2)
			<-start
			n := int64(0)
			for !stop.Load() {
				key := keys.Next()
				switch ops.Next() {
				case workload.OpGet:
					s.Get(key)
				case workload.OpInsert:
					s.Insert(key)
				default:
					s.Delete(key)
				}
				n++
			}
			total.Add(n)
		}(w)
	}

	t0 := time.Now()
	close(start)
	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()
	elapsed = time.Since(t0)

	end := inst.EngineStats()
	return Result{
		Structure: f.Name,
		Threads:   threads,
		Mix:       cfg.Mix,
		Dist:      cfg.Dist,
		KeyRange:  cfg.KeyRange,
		Ops:       total.Load(),
		Seconds:   elapsed.Seconds(),
		Engine: template.Counters{
			Ops:      end.Ops - base.Ops,
			Attempts: end.Attempts - base.Attempts,
			LLXFails: end.LLXFails - base.LLXFails,
			SCXFails: end.SCXFails - base.SCXFails,
		},
	}
}

// closeSession releases a session's pooled Handle if it holds one.
func closeSession(s Session) {
	if c, ok := s.(interface{ Close() }); ok {
		c.Close()
	}
}
