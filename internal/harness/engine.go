package harness

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pragmaprim/internal/container"
	"pragmaprim/internal/template"
	"pragmaprim/internal/workload"
)

// Result is one timed throughput measurement.
type Result struct {
	Structure string
	Threads   int
	Mix       workload.Mix
	Dist      workload.Distribution
	KeyRange  int
	Ops       int64
	Seconds   float64
	// Engine is the template engine's attempt/failure counters over the
	// measured window (prefill excluded); zero for the lock baselines.
	Engine template.Counters
	// AppliedInserts and AppliedDeletes count the operations whose result
	// reported an applied effect, the inputs to the conservation check.
	AppliedInserts int64
	AppliedDeletes int64
	// BaseSize and FinalSize are the container's Size before and after the
	// measured window. Every throughput run cross-checks the conservation
	// invariant FinalSize == BaseSize + AppliedInserts - AppliedDeletes, so
	// throughput numbers are never reported off a silently corrupted
	// structure; a violation panics.
	BaseSize  int
	FinalSize int
}

// OpsPerSec returns the measured throughput.
func (r Result) OpsPerSec() float64 {
	if r.Seconds <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Seconds
}

// RunThroughput measures f under cfg with the given worker count for
// roughly dur; see RunThroughputOn.
func RunThroughput(f Factory, cfg workload.Config, threads int, dur time.Duration) Result {
	return RunThroughputOn(f.Name, f.New(), cfg, threads, dur)
}

// RunThroughputOn measures an existing container under cfg with the given
// worker count for roughly dur. The container is prefilled with half the
// key range so searches hit about half the time, the standard set-benchmark
// methodology; after the workers drain it verifies the applied-operation
// conservation invariant (see Result) and panics on a violation.
func RunThroughputOn(name string, inst container.Container, cfg workload.Config, threads int, dur time.Duration) Result {
	if err := cfg.Validate(); err != nil {
		panic("harness: " + err.Error())
	}

	pre := inst.NewSession()
	for k := 0; k < cfg.KeyRange; k += 2 {
		pre.Insert(k)
	}
	pre.Close()
	base := inst.EngineStats() // exclude the prefill from the reported counters
	baseSize := inst.Size()

	var (
		start   = make(chan struct{})
		stop    atomic.Bool
		total   atomic.Int64
		inserts atomic.Int64
		deletes atomic.Int64
		wg      sync.WaitGroup
		elapsed time.Duration
	)
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := inst.NewSession()
			defer s.Close()
			keys := cfg.NewKeyGen(int64(w)*2 + 1)
			ops := cfg.NewOpGen(int64(w)*2 + 2)
			<-start
			var n, ins, del int64
			for !stop.Load() {
				key := keys.Next()
				switch ops.Next() {
				case workload.OpGet:
					s.Get(key)
				case workload.OpInsert:
					if s.Insert(key) {
						ins++
					}
				default:
					if s.Delete(key) {
						del++
					}
				}
				n++
			}
			total.Add(n)
			inserts.Add(ins)
			deletes.Add(del)
		}(w)
	}

	t0 := time.Now()
	close(start)
	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()
	elapsed = time.Since(t0)

	end := inst.EngineStats()
	r := Result{
		Structure: name,
		Threads:   threads,
		Mix:       cfg.Mix,
		Dist:      cfg.Dist,
		KeyRange:  cfg.KeyRange,
		Ops:       total.Load(),
		Seconds:   elapsed.Seconds(),
		Engine: template.Counters{
			Ops:      end.Ops - base.Ops,
			Attempts: end.Attempts - base.Attempts,
			LLXFails: end.LLXFails - base.LLXFails,
			SCXFails: end.SCXFails - base.SCXFails,
		},
		AppliedInserts: inserts.Load(),
		AppliedDeletes: deletes.Load(),
		BaseSize:       baseSize,
	}
	r.FinalSize = inst.Size()
	if want := r.BaseSize + int(r.AppliedInserts-r.AppliedDeletes); r.FinalSize != want {
		panic(fmt.Sprintf(
			"harness: %s conservation violated: size %d after run, want %d (base %d + %d applied inserts - %d applied deletes)",
			name, r.FinalSize, want, r.BaseSize, r.AppliedInserts, r.AppliedDeletes))
	}
	return r
}
