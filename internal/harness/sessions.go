// Package harness runs the experiments E1-E10 catalogued in DESIGN.md: it
// drives every structure through the typed internal/container interface
// with package workload, and renders the paper-claim versus measured tables
// that cmd/bench prints.
package harness

import (
	"fmt"

	"pragmaprim/internal/bst"
	"pragmaprim/internal/container"
	"pragmaprim/internal/lockds"
	"pragmaprim/internal/multiset"
	"pragmaprim/internal/queue"
	"pragmaprim/internal/shard"
	"pragmaprim/internal/stack"
	"pragmaprim/internal/trie"
)

// Factory names a structure under test and builds fresh instances of it as
// typed containers (internal/container).
type Factory struct {
	// Name identifies the structure in tables ("llx-multiset", ...).
	Name string
	// New creates one shared structure behind the container interface.
	New func() container.Container
}

// Factories returns every structure the throughput experiments compare: all
// five LLX/SCX structures — the paper's multiset, the external BST, the
// Patricia trie, and the queue and stack under their produce/consume
// adapters — plus the two lock-based baselines.
func Factories() []Factory {
	return []Factory{
		LLXMultisetFactory(),
		LLXBSTFactory(),
		LLXTrieFactory(),
		LLXQueueFactory(),
		LLXStackFactory(),
		CoarseLockFactory(),
		FineLockFactory(),
	}
}

// FactoryByName returns the named factory, or false.
func FactoryByName(name string) (Factory, bool) {
	for _, f := range Factories() {
		if f.Name == name {
			return f, true
		}
	}
	return Factory{}, false
}

// LLXMultisetFactory wraps the paper's Section 5 multiset.
func LLXMultisetFactory() Factory {
	return Factory{
		Name: "llx-multiset",
		New:  func() container.Container { return container.Multiset(multiset.New[int]()) },
	}
}

// LLXBSTFactory wraps the LLX/SCX external BST with map semantics.
func LLXBSTFactory() Factory {
	return Factory{
		Name: "llx-bst",
		New:  func() container.Container { return container.BST(bst.New[int, int]()) },
	}
}

// LLXTrieFactory wraps the LLX/SCX Patricia trie with map semantics.
func LLXTrieFactory() Factory {
	return Factory{
		Name: "llx-trie",
		New:  func() container.Container { return container.Trie(trie.New[int]()) },
	}
}

// LLXQueueFactory wraps the LLX/SCX FIFO queue under the produce/consume
// adapter (Insert enqueues, Delete dequeues, Get peeks).
func LLXQueueFactory() Factory {
	return Factory{
		Name: "llx-queue",
		New:  func() container.Container { return container.Queue(queue.New[int]()) },
	}
}

// LLXStackFactory wraps the LLX/SCX Treiber stack under the produce/consume
// adapter (Insert pushes, Delete pops, Get peeks).
func LLXStackFactory() Factory {
	return Factory{
		Name: "llx-stack",
		New:  func() container.Container { return container.Stack(stack.New[int]()) },
	}
}

// CoarseLockFactory wraps the single-mutex list baseline.
func CoarseLockFactory() Factory {
	return Factory{
		Name: "coarse-lock",
		New:  func() container.Container { return container.CoarseLock(lockds.NewCoarse()) },
	}
}

// FineLockFactory wraps the hand-over-hand lock list baseline.
func FineLockFactory() Factory {
	return Factory{
		Name: "fine-lock",
		New:  func() container.Container { return container.FineLock(lockds.NewFine()) },
	}
}

// ShardedFactory wraps f in an n-shard hash-partitioned container
// (internal/shard); n must be a positive power of two. The name gains a
// "/<n>sh" suffix so tables distinguish shard widths.
func ShardedFactory(f Factory, n int) Factory {
	return Factory{
		Name: fmt.Sprintf("%s/%dsh", f.Name, n),
		New: func() container.Container {
			return shard.New(n, func(int) container.Container { return f.New() })
		},
	}
}
