// Package harness runs the experiments E1-E8 catalogued in DESIGN.md and
// EXPERIMENTS.md: it wraps every data structure behind a uniform session
// interface, drives them with package workload, and renders the paper-claim
// versus measured tables that cmd/bench prints.
package harness

import (
	"pragmaprim/internal/bst"
	"pragmaprim/internal/core"
	"pragmaprim/internal/lockds"
	"pragmaprim/internal/multiset"
	"pragmaprim/internal/trie"
)

// Session is one worker's handle onto a shared structure under test. A
// Session is not safe for concurrent use; the structure behind it is.
type Session interface {
	// Get looks key up.
	Get(key int)
	// Insert adds key (one occurrence / a mapping).
	Insert(key int)
	// Delete removes key (one occurrence / the mapping).
	Delete(key int)
}

// Factory names a structure under test and builds fresh instances of it.
type Factory struct {
	// Name identifies the structure in tables ("llx-multiset", ...).
	Name string
	// New creates one shared structure and returns a constructor for
	// per-worker sessions onto it.
	New func() func() Session
}

// Factories returns every structure the throughput experiments compare:
// the paper's LLX/SCX multiset, the LLX/SCX external BST, the LLX/SCX
// Patricia trie, and the two lock-based baselines.
func Factories() []Factory {
	return []Factory{
		LLXMultisetFactory(),
		LLXBSTFactory(),
		LLXTrieFactory(),
		CoarseLockFactory(),
		FineLockFactory(),
	}
}

// FactoryByName returns the named factory, or false.
func FactoryByName(name string) (Factory, bool) {
	for _, f := range Factories() {
		if f.Name == name {
			return f, true
		}
	}
	return Factory{}, false
}

// LLXMultisetFactory wraps the paper's Section 5 multiset.
func LLXMultisetFactory() Factory {
	return Factory{
		Name: "llx-multiset",
		New: func() func() Session {
			m := multiset.New[int]()
			return func() Session {
				return &llxMultisetSession{m: m, p: core.NewProcess()}
			}
		},
	}
}

type llxMultisetSession struct {
	m *multiset.Multiset[int]
	p *core.Process
}

func (s *llxMultisetSession) Get(key int)    { s.m.Get(s.p, key) }
func (s *llxMultisetSession) Insert(key int) { s.m.Insert(s.p, key, 1) }
func (s *llxMultisetSession) Delete(key int) { s.m.Delete(s.p, key, 1) }

// LLXBSTFactory wraps the LLX/SCX external BST with map semantics.
func LLXBSTFactory() Factory {
	return Factory{
		Name: "llx-bst",
		New: func() func() Session {
			t := bst.New[int, int]()
			return func() Session {
				return &llxBSTSession{t: t, p: core.NewProcess()}
			}
		},
	}
}

type llxBSTSession struct {
	t *bst.Tree[int, int]
	p *core.Process
}

func (s *llxBSTSession) Get(key int)    { s.t.Get(s.p, key) }
func (s *llxBSTSession) Insert(key int) { s.t.Put(s.p, key, key) }
func (s *llxBSTSession) Delete(key int) { s.t.Delete(s.p, key) }

// LLXTrieFactory wraps the LLX/SCX Patricia trie with map semantics.
func LLXTrieFactory() Factory {
	return Factory{
		Name: "llx-trie",
		New: func() func() Session {
			t := trie.New[int]()
			return func() Session {
				return &llxTrieSession{t: t, p: core.NewProcess()}
			}
		},
	}
}

type llxTrieSession struct {
	t *trie.Trie[int]
	p *core.Process
}

func (s *llxTrieSession) Get(key int)    { s.t.Get(s.p, uint64(key)) }
func (s *llxTrieSession) Insert(key int) { s.t.Put(s.p, uint64(key), key) }
func (s *llxTrieSession) Delete(key int) { s.t.Delete(s.p, uint64(key)) }

// CoarseLockFactory wraps the single-mutex list baseline.
func CoarseLockFactory() Factory {
	return Factory{
		Name: "coarse-lock",
		New: func() func() Session {
			m := lockds.NewCoarse()
			return func() Session { return coarseSession{m: m} }
		},
	}
}

type coarseSession struct{ m *lockds.CoarseMultiset }

func (s coarseSession) Get(key int)    { s.m.Get(key) }
func (s coarseSession) Insert(key int) { s.m.Insert(key, 1) }
func (s coarseSession) Delete(key int) { s.m.Delete(key, 1) }

// FineLockFactory wraps the hand-over-hand lock list baseline.
func FineLockFactory() Factory {
	return Factory{
		Name: "fine-lock",
		New: func() func() Session {
			m := lockds.NewFine()
			return func() Session { return fineSession{m: m} }
		},
	}
}

type fineSession struct{ m *lockds.FineMultiset }

func (s fineSession) Get(key int)    { s.m.Get(key) }
func (s fineSession) Insert(key int) { s.m.Insert(key, 1) }
func (s fineSession) Delete(key int) { s.m.Delete(key, 1) }
