// Package harness runs the experiments E1-E10 catalogued in DESIGN.md: it
// drives every structure through the typed internal/container interface
// with package workload, and renders the paper-claim versus measured tables
// that cmd/bench prints.
package harness

import (
	"fmt"

	"pragmaprim/internal/bst"
	"pragmaprim/internal/container"
	"pragmaprim/internal/hashmap"
	"pragmaprim/internal/lockds"
	"pragmaprim/internal/multiset"
	"pragmaprim/internal/queue"
	"pragmaprim/internal/shard"
	"pragmaprim/internal/stack"
	"pragmaprim/internal/template"
	"pragmaprim/internal/trie"
)

// Factory names a structure under test and builds fresh instances of it as
// typed containers (internal/container).
type Factory struct {
	// Name identifies the structure in tables ("llx-multiset", ...).
	Name string
	// New creates one shared structure behind the container interface.
	New func() container.Container
	// NewWithPolicy creates an instance with the given retry policy
	// installed (nil keeps the structure's default). It is nil for
	// structures without an engine retry loop — the lock baselines.
	NewWithPolicy func(template.Policy) container.Container
}

// Factories returns every structure the throughput experiments compare: the
// five LLX/SCX structures — the paper's multiset, the external BST, the
// Patricia trie, and the queue and stack under their produce/consume
// adapters — the lock-free resizable hash map (the O(1)-lookup point in the
// design space), plus the two lock-based baselines.
func Factories() []Factory {
	return []Factory{
		LLXMultisetFactory(),
		LLXBSTFactory(),
		LLXTrieFactory(),
		LLXQueueFactory(),
		LLXStackFactory(),
		HashmapFactory(),
		CoarseLockFactory(),
		FineLockFactory(),
	}
}

// FactoryByName returns the named factory, or false.
func FactoryByName(name string) (Factory, bool) {
	for _, f := range Factories() {
		if f.Name == name {
			return f, true
		}
	}
	return Factory{}, false
}

// llxFactory builds a Factory whose New/NewWithPolicy share one
// constructor, so the policy-aware path (cmd/server, the load generator)
// and the experiment path cannot drift.
func llxFactory(name string, build func(template.Policy) container.Container) Factory {
	return Factory{
		Name:          name,
		New:           func() container.Container { return build(nil) },
		NewWithPolicy: build,
	}
}

// LLXMultisetFactory wraps the paper's Section 5 multiset.
func LLXMultisetFactory() Factory {
	return llxFactory("llx-multiset", func(p template.Policy) container.Container {
		m := multiset.New[int]()
		if p != nil {
			m.SetPolicy(p)
		}
		return container.Multiset(m)
	})
}

// LLXBSTFactory wraps the LLX/SCX external BST with map semantics.
func LLXBSTFactory() Factory {
	return llxFactory("llx-bst", func(p template.Policy) container.Container {
		t := bst.New[int, int]()
		if p != nil {
			t.SetPolicy(p)
		}
		return container.BST(t)
	})
}

// LLXTrieFactory wraps the LLX/SCX Patricia trie with map semantics.
func LLXTrieFactory() Factory {
	return llxFactory("llx-trie", func(p template.Policy) container.Container {
		t := trie.New[int]()
		if p != nil {
			t.SetPolicy(p)
		}
		return container.Trie(t)
	})
}

// LLXQueueFactory wraps the LLX/SCX FIFO queue under the produce/consume
// adapter (Insert enqueues, Delete dequeues, Get peeks).
func LLXQueueFactory() Factory {
	return llxFactory("llx-queue", func(p template.Policy) container.Container {
		q := queue.New[int]()
		if p != nil {
			q.SetPolicy(p)
		}
		return container.Queue(q)
	})
}

// LLXStackFactory wraps the LLX/SCX Treiber stack under the produce/consume
// adapter (Insert pushes, Delete pops, Get peeks).
func LLXStackFactory() Factory {
	return llxFactory("llx-stack", func(p template.Policy) container.Container {
		s := stack.New[int]()
		if p != nil {
			s.SetPolicy(p)
		}
		return container.Stack(s)
	})
}

// HashmapFactory wraps the lock-free resizable hash map (set semantics:
// Count is 0/1). Its updates are degenerate one-record SCXs — plain CASes
// on bucket heads run through the template engine — so it takes the same
// retry policies as the descriptor-based structures.
func HashmapFactory() Factory {
	return llxFactory("hashmap", func(p template.Policy) container.Container {
		m := hashmap.New()
		if p != nil {
			m.SetPolicy(p)
		}
		return container.HashMap(m)
	})
}

// CoarseLockFactory wraps the single-mutex list baseline.
func CoarseLockFactory() Factory {
	return Factory{
		Name: "coarse-lock",
		New:  func() container.Container { return container.CoarseLock(lockds.NewCoarse()) },
	}
}

// FineLockFactory wraps the hand-over-hand lock list baseline.
func FineLockFactory() Factory {
	return Factory{
		Name: "fine-lock",
		New:  func() container.Container { return container.FineLock(lockds.NewFine()) },
	}
}

// ShardedFactory wraps f in an n-shard hash-partitioned container
// (internal/shard); n must be a positive power of two. The name gains a
// "/<n>sh" suffix so tables distinguish shard widths.
func ShardedFactory(f Factory, n int) Factory {
	return Factory{
		Name: fmt.Sprintf("%s/%dsh", f.Name, n),
		New: func() container.Container {
			return shard.New(n, func(int) container.Container { return f.New() })
		},
	}
}
