// Package harness runs the experiments E1-E8 catalogued in DESIGN.md and
// EXPERIMENTS.md: it wraps every data structure behind a uniform session
// interface, drives them with package workload, and renders the paper-claim
// versus measured tables that cmd/bench prints.
package harness

import (
	"pragmaprim/internal/bst"
	"pragmaprim/internal/core"
	"pragmaprim/internal/lockds"
	"pragmaprim/internal/multiset"
	"pragmaprim/internal/template"
	"pragmaprim/internal/trie"
)

// Session is one worker's handle onto a shared structure under test. A
// Session is not safe for concurrent use; the structure behind it is.
type Session interface {
	// Get looks key up.
	Get(key int)
	// Insert adds key (one occurrence / a mapping).
	Insert(key int)
	// Delete removes key (one occurrence / the mapping).
	Delete(key int)
}

// Instance is one shared structure under test: a factory for per-worker
// sessions plus the update engine's contention counters (zero-valued for
// structures that do not run on the template engine, like the lock
// baselines).
type Instance struct {
	// NewSession creates one worker's session onto the shared structure.
	// Each LLX/SCX session binds a pooled core.Handle, the runtime's
	// goroutine-scoped hot path.
	NewSession func() Session
	// EngineStats reports the aggregate template-engine counters, from
	// which E8 derives SCX failure rates. Nil-safe: never nil.
	EngineStats func() template.Counters
}

// Factory names a structure under test and builds fresh instances of it.
type Factory struct {
	// Name identifies the structure in tables ("llx-multiset", ...).
	Name string
	// New creates one shared structure.
	New func() Instance
}

// Factories returns every structure the throughput experiments compare:
// the paper's LLX/SCX multiset, the LLX/SCX external BST, the LLX/SCX
// Patricia trie, and the two lock-based baselines.
func Factories() []Factory {
	return []Factory{
		LLXMultisetFactory(),
		LLXBSTFactory(),
		LLXTrieFactory(),
		CoarseLockFactory(),
		FineLockFactory(),
	}
}

// FactoryByName returns the named factory, or false.
func FactoryByName(name string) (Factory, bool) {
	for _, f := range Factories() {
		if f.Name == name {
			return f, true
		}
	}
	return Factory{}, false
}

// noStats is the EngineStats of structures outside the template engine.
func noStats() template.Counters { return template.Counters{} }

// LLXMultisetFactory wraps the paper's Section 5 multiset.
func LLXMultisetFactory() Factory {
	return Factory{
		Name: "llx-multiset",
		New: func() Instance {
			m := multiset.New[int]()
			return Instance{
				NewSession: func() Session {
					return &llxMultisetSession{s: m.Attach(core.AcquireHandle())}
				},
				EngineStats: m.EngineStats,
			}
		},
	}
}

type llxMultisetSession struct {
	s multiset.Session[int]
}

func (s *llxMultisetSession) Close()         { s.s.Handle().Release() }
func (s *llxMultisetSession) Get(key int)    { s.s.Get(key) }
func (s *llxMultisetSession) Insert(key int) { s.s.Insert(key, 1) }
func (s *llxMultisetSession) Delete(key int) { s.s.Delete(key, 1) }

// LLXBSTFactory wraps the LLX/SCX external BST with map semantics.
func LLXBSTFactory() Factory {
	return Factory{
		Name: "llx-bst",
		New: func() Instance {
			t := bst.New[int, int]()
			return Instance{
				NewSession: func() Session {
					return &llxBSTSession{s: t.Attach(core.AcquireHandle())}
				},
				EngineStats: t.EngineStats,
			}
		},
	}
}

type llxBSTSession struct {
	s bst.Session[int, int]
}

func (s *llxBSTSession) Close()         { s.s.Handle().Release() }
func (s *llxBSTSession) Get(key int)    { s.s.Get(key) }
func (s *llxBSTSession) Insert(key int) { s.s.Put(key, key) }
func (s *llxBSTSession) Delete(key int) { s.s.Delete(key) }

// LLXTrieFactory wraps the LLX/SCX Patricia trie with map semantics.
func LLXTrieFactory() Factory {
	return Factory{
		Name: "llx-trie",
		New: func() Instance {
			t := trie.New[int]()
			return Instance{
				NewSession: func() Session {
					return &llxTrieSession{s: t.Attach(core.AcquireHandle())}
				},
				EngineStats: t.EngineStats,
			}
		},
	}
}

type llxTrieSession struct {
	s trie.Session[int]
}

func (s *llxTrieSession) Close()         { s.s.Handle().Release() }
func (s *llxTrieSession) Get(key int)    { s.s.Get(uint64(key)) }
func (s *llxTrieSession) Insert(key int) { s.s.Put(uint64(key), key) }
func (s *llxTrieSession) Delete(key int) { s.s.Delete(uint64(key)) }

// CoarseLockFactory wraps the single-mutex list baseline.
func CoarseLockFactory() Factory {
	return Factory{
		Name: "coarse-lock",
		New: func() Instance {
			m := lockds.NewCoarse()
			return Instance{
				NewSession:  func() Session { return coarseSession{m: m} },
				EngineStats: noStats,
			}
		},
	}
}

type coarseSession struct{ m *lockds.CoarseMultiset }

func (s coarseSession) Get(key int)    { s.m.Get(key) }
func (s coarseSession) Insert(key int) { s.m.Insert(key, 1) }
func (s coarseSession) Delete(key int) { s.m.Delete(key, 1) }

// FineLockFactory wraps the hand-over-hand lock list baseline.
func FineLockFactory() Factory {
	return Factory{
		Name: "fine-lock",
		New: func() Instance {
			m := lockds.NewFine()
			return Instance{
				NewSession:  func() Session { return fineSession{m: m} },
				EngineStats: noStats,
			}
		},
	}
}

type fineSession struct{ m *lockds.FineMultiset }

func (s fineSession) Get(key int)    { s.m.Get(key) }
func (s fineSession) Insert(key int) { s.m.Insert(key, 1) }
func (s fineSession) Delete(key int) { s.m.Delete(key, 1) }
