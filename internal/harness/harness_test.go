package harness_test

import (
	"strings"
	"testing"
	"time"

	"pragmaprim/internal/harness"
	"pragmaprim/internal/stats"
	"pragmaprim/internal/workload"
)

// lastColumnAll asserts every row's last cell equals want.
func lastColumnAll(t *testing.T, tb *stats.Table, want string) {
	t.Helper()
	rows := tb.Rows()
	if len(rows) == 0 {
		t.Fatal("table has no rows")
	}
	for i, row := range rows {
		if got := row[len(row)-1]; got != want {
			t.Errorf("row %d: verdict %q, want %q (row=%v)", i, got, want, row)
		}
	}
}

func TestE1StepCountMatchesPaper(t *testing.T) {
	lastColumnAll(t, harness.E1StepCount(), "true")
}

func TestE2VLXReadsMatchesPaper(t *testing.T) {
	lastColumnAll(t, harness.E2VLXReads(), "true")
}

func TestE3DisjointQuotasMet(t *testing.T) {
	tb := harness.E3Disjoint()
	lastColumnAll(t, tb, "true") // all quotas met in both modes (progress)
	for _, row := range tb.Rows() {
		// Disjoint rows must additionally show a 100% success rate.
		if row[0] == "disjoint" && row[4] != "100" {
			t.Errorf("disjoint success rate = %v, want 100", row[4])
		}
		// The template engine's counters must agree with the core metrics.
		if row[5] != "true" {
			t.Errorf("engine counters disagree with core metrics: %v", row)
		}
	}
}

func TestE4KCASComparisonMatchesPaper(t *testing.T) {
	lastColumnAll(t, harness.E4KCASComparison(), "true")
}

func TestE5ProgressWithStalledOps(t *testing.T) {
	lastColumnAll(t, harness.E5Progress(), "true")
}

func TestE6TransitionsOnlyValidVertices(t *testing.T) {
	tb := harness.E6Transitions()
	lastColumnAll(t, tb, "true")
	// The two impossible vertices must have zero samples.
	for _, row := range tb.Rows() {
		impossible := (row[0] == "Committed" && row[1] == "false") ||
			(row[0] == "Aborted" && row[1] == "true")
		if impossible && row[2] != "0" {
			t.Errorf("impossible vertex sampled: %v", row)
		}
	}
}

func TestE7LinearizabilityAllRoundsPass(t *testing.T) {
	tb := harness.E7Linearizability(10)
	rows := tb.Rows()
	if len(rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(rows))
	}
	if got := rows[0][3]; got != "10/10" {
		t.Errorf("linearizable = %q, want 10/10", got)
	}
}

func TestE8ThroughputProducesAllCells(t *testing.T) {
	tb := harness.E8Throughput([]int{1, 2}, 20*time.Millisecond)
	rows := tb.Rows()
	// 8 structures x 2 mixes x 2 thread counts.
	if len(rows) != 32 {
		t.Fatalf("rows = %d, want 32", len(rows))
	}
	for _, row := range rows {
		if row[5] == "0" || strings.HasPrefix(row[5], "-") {
			t.Errorf("non-positive throughput: %v", row)
		}
	}
}

func TestE9ShardScalingProducesAllCells(t *testing.T) {
	tb := harness.E9ShardScaling([]int{1, 2, 4}, 2, 20*time.Millisecond)
	rows := tb.Rows()
	// 2 distributions x 3 shard counts.
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	for i, row := range rows {
		if row[4] == "0" || strings.HasPrefix(row[4], "-") {
			t.Errorf("non-positive throughput: %v", row)
		}
		// Unsharded rows report no speedup; sharded rows a positive one.
		if unsharded := i%3 == 0; unsharded {
			if row[5] != "-" {
				t.Errorf("unsharded row has speedup cell %q: %v", row[5], row)
			}
		} else if row[5] == "0" || strings.HasPrefix(row[5], "-") {
			t.Errorf("sharded row lacks a positive speedup: %v", row)
		}
	}
}

func TestE10HotKeyContentionProducesAllCells(t *testing.T) {
	tb := harness.E10HotKeyContention([]int{1, 4}, 2, 20*time.Millisecond)
	rows := tb.Rows()
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	for _, row := range rows {
		if row[2] == "0" {
			t.Errorf("non-positive throughput: %v", row)
		}
		if row[5] == "0" {
			t.Errorf("hot-shard attempt share is zero: %v", row)
		}
	}
}

func TestFactoryByName(t *testing.T) {
	names := []string{"llx-multiset", "llx-bst", "llx-trie", "llx-queue",
		"llx-stack", "coarse-lock", "fine-lock"}
	for _, name := range names {
		f, ok := harness.FactoryByName(name)
		if !ok || f.Name != name {
			t.Errorf("FactoryByName(%q) = (%v,%v)", name, f.Name, ok)
		}
	}
	if _, ok := harness.FactoryByName("nope"); ok {
		t.Error("unknown factory found")
	}
}

func TestShardedFactory(t *testing.T) {
	f := harness.ShardedFactory(harness.LLXMultisetFactory(), 4)
	if f.Name != "llx-multiset/4sh" {
		t.Errorf("sharded factory name = %q", f.Name)
	}
	inst := f.New()
	s := inst.NewSession()
	defer s.Close()
	for k := 0; k < 64; k++ {
		s.Insert(k)
	}
	if got := inst.Size(); got != 64 {
		t.Errorf("sharded Size = %d, want 64", got)
	}
	if got := inst.EngineStats(); got.Ops != 64 {
		t.Errorf("sharded EngineStats.Ops = %d, want 64", got.Ops)
	}
}

func TestSessionsBehaveLikeContainers(t *testing.T) {
	for _, f := range harness.Factories() {
		t.Run(f.Name, func(t *testing.T) {
			inst := f.New()
			s := inst.NewSession()
			defer s.Close()
			// The op results must be coherent in any order, for both keyed
			// and produce/consume adapters.
			if !s.Insert(5) {
				t.Error("Insert into empty container = false")
			}
			if !s.Get(5) {
				t.Error("Get after Insert = false")
			}
			if !s.Delete(5) {
				t.Error("Delete of present element = false")
			}
			if s.Delete(5) {
				t.Error("Delete of emptied container = true")
			}
			if s.Get(5) {
				t.Error("Get on emptied container = true")
			}
			if got := inst.EngineStats(); got.Attempts < got.Ops {
				t.Errorf("EngineStats attempts %d < ops %d", got.Attempts, got.Ops)
			}
		})
	}
}

func TestRunThroughputCountsOps(t *testing.T) {
	cfg := workload.Config{KeyRange: 128, Dist: workload.Uniform, Mix: workload.Balanced}
	r := harness.RunThroughput(harness.LLXMultisetFactory(), cfg, 2, 30*time.Millisecond)
	if r.Ops <= 0 {
		t.Fatalf("Ops = %d, want > 0", r.Ops)
	}
	if r.OpsPerSec() <= 0 {
		t.Fatalf("OpsPerSec = %v", r.OpsPerSec())
	}
	if r.Structure != "llx-multiset" || r.Threads != 2 {
		t.Errorf("result metadata wrong: %+v", r)
	}
	// The measured window ran ~half updates, so the engine must have seen
	// operations, and attempts can never undercut completed operations.
	if r.Engine.Ops <= 0 {
		t.Errorf("Engine.Ops = %d, want > 0", r.Engine.Ops)
	}
	if r.Engine.Attempts < r.Engine.Ops {
		t.Errorf("Engine.Attempts %d < Engine.Ops %d", r.Engine.Attempts, r.Engine.Ops)
	}
	// The conservation cross-check ran (a violation would have panicked) and
	// its inputs are visible in the result.
	if r.FinalSize != r.BaseSize+int(r.AppliedInserts-r.AppliedDeletes) {
		t.Errorf("reported sizes inconsistent: %+v", r)
	}
	if r.BaseSize != 64 { // prefill inserts every other key of 128
		t.Errorf("BaseSize = %d, want 64", r.BaseSize)
	}
}

func TestRunThroughputRejectsBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for invalid config")
		}
	}()
	harness.RunThroughput(harness.LLXMultisetFactory(),
		workload.Config{KeyRange: 0, Dist: workload.Uniform, Mix: workload.Balanced},
		1, time.Millisecond)
}
