package harness

import (
	"fmt"
	"strings"

	"pragmaprim/internal/container"
	"pragmaprim/internal/shard"
	"pragmaprim/internal/template"
)

// BuildContainer constructs the named structure as a container, optionally
// hash-partitioned and with a retry policy installed — the one entry point
// cmd/server and the load generator share for turning command-line flags
// into a serving container. Structure names come from the same factory
// registry the experiments use (Factories), so the two cannot drift;
// shards > 1 wraps the structure in internal/shard (rounded up to a power
// of two, one independent instance per shard, the policy applied to each).
// A nil policy keeps each structure's default. The lock baselines accept
// no policy — they have no retry loop to back off.
func BuildContainer(structure string, shards int, policy template.Policy) (container.Container, error) {
	f, ok := FactoryByName(structure)
	if !ok {
		return nil, fmt.Errorf("harness: unknown structure %q (want %s)",
			structure, strings.Join(StructureNames(), ", "))
	}
	build := f.New
	if policy != nil {
		if f.NewWithPolicy == nil {
			return nil, fmt.Errorf("harness: %s has no retry loop; -policy applies to the llx-* structures only", structure)
		}
		build = func() container.Container { return f.NewWithPolicy(policy) }
	}
	if shards <= 1 {
		return build(), nil
	}
	return shard.New(shard.NextPow2(shards), func(int) container.Container { return build() }), nil
}

// StructureNames lists every structure BuildContainer (and Factories)
// knows, for flag usage strings.
func StructureNames() []string {
	fs := Factories()
	names := make([]string, len(fs))
	for i, f := range fs {
		names[i] = f.Name
	}
	return names
}
