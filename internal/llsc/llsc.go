// Package llsc implements classic single-word load-link/store-conditional
// (LL/SC/VL) from compare-and-swap, the baseline primitive family that LLX,
// SCX and VLX generalize (paper Sections 1-2).
//
// The construction is the garbage-collection-based one the paper's setting
// assumes: each location holds a pointer to an immutable cell; SC installs a
// freshly allocated cell with CAS. Because a cell address cannot recur while
// any process still references it, a successful CAS proves the location was
// not written since the LL — the same argument the paper uses for info
// fields (Lemma 12). LL, SC and VL are wait-free and take O(1) steps.
package llsc

import "sync/atomic"

// cell is one immutable boxed value; a fresh cell is allocated per store.
type cell[T any] struct {
	val T
}

// Loc is a single word supporting LL/SC. Create with NewLoc; share freely.
type Loc[T any] struct {
	p atomic.Pointer[cell[T]]
}

// NewLoc returns a location holding initial.
func NewLoc[T any](initial T) *Loc[T] {
	l := &Loc[T]{}
	l.p.Store(&cell[T]{val: initial})
	return l
}

// Load returns the current value of l (a plain atomic read; it does not
// establish a link).
func (l *Loc[T]) Load() T {
	return l.p.Load().val
}

// Handle holds the per-process link context: the cell observed by the last
// LL on each location. One Handle per goroutine; a Handle is not safe for
// concurrent use.
type Handle[T any] struct {
	links map[*Loc[T]]*cell[T]

	// Step counters for the experiment harness.
	CASAttempts  int64
	CASSuccesses int64
}

// NewHandle returns an empty per-process handle.
func NewHandle[T any]() *Handle[T] {
	return &Handle[T]{links: make(map[*Loc[T]]*cell[T])}
}

// LL load-links l: it returns the current value and records the link that a
// subsequent SC or VL on l will validate against.
func (h *Handle[T]) LL(l *Loc[T]) T {
	c := l.p.Load()
	h.links[l] = c
	return c.val
}

// SC store-conditionally writes v to l. It succeeds iff l has not been
// written by a successful SC since h's last LL on l. SC consumes the link
// whether or not it succeeds. Panics if h holds no link for l.
func (h *Handle[T]) SC(l *Loc[T], v T) bool {
	c, ok := h.links[l]
	if !ok {
		panic("llsc: SC without a preceding LL on the location")
	}
	delete(h.links, l)
	h.CASAttempts++
	if l.p.CompareAndSwap(c, &cell[T]{val: v}) {
		h.CASSuccesses++
		return true
	}
	return false
}

// VL validates the link on l: it reports whether l has not been written
// since h's last LL on l. A successful VL preserves the link; a failed VL
// consumes it. Panics if h holds no link for l.
func (h *Handle[T]) VL(l *Loc[T]) bool {
	c, ok := h.links[l]
	if !ok {
		panic("llsc: VL without a preceding LL on the location")
	}
	if l.p.Load() != c {
		delete(h.links, l)
		return false
	}
	return true
}

// Linked reports whether h currently holds a link for l.
func (h *Handle[T]) Linked(l *Loc[T]) bool {
	_, ok := h.links[l]
	return ok
}

// Snapshot is an opaque witness of a location's content at one instant. Two
// Snapshots of the same location are Same iff the location was not written
// between them — even if the written values happened to be equal. It is the
// identity-based analogue of the version numbers in Luchangco, Moir and
// Shavit's KCSS construction, and package kcss builds its double collects
// from it.
type Snapshot[T any] struct {
	c *cell[T]
}

// TakeSnapshot captures the current content witness of l.
func (l *Loc[T]) TakeSnapshot() Snapshot[T] {
	return Snapshot[T]{c: l.p.Load()}
}

// Value returns the value the snapshot witnessed.
func (s Snapshot[T]) Value() T { return s.c.val }

// Same reports whether o witnesses the identical write as s.
func (s Snapshot[T]) Same(o Snapshot[T]) bool { return s.c == o.c }
