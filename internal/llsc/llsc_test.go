package llsc_test

import (
	"sync"
	"testing"

	"pragmaprim/internal/llsc"
)

func TestLLReturnsCurrentValue(t *testing.T) {
	l := llsc.NewLoc(42)
	h := llsc.NewHandle[int]()
	if got := h.LL(l); got != 42 {
		t.Errorf("LL = %d, want 42", got)
	}
	if got := l.Load(); got != 42 {
		t.Errorf("Load = %d, want 42", got)
	}
}

func TestSCSucceedsWhenUnchanged(t *testing.T) {
	l := llsc.NewLoc(1)
	h := llsc.NewHandle[int]()
	h.LL(l)
	if !h.SC(l, 2) {
		t.Fatal("uncontended SC failed")
	}
	if got := l.Load(); got != 2 {
		t.Errorf("Load = %d, want 2", got)
	}
	if h.Linked(l) {
		t.Error("SC did not consume the link")
	}
}

func TestSCFailsAfterInterveningSC(t *testing.T) {
	l := llsc.NewLoc(1)
	h1 := llsc.NewHandle[int]()
	h2 := llsc.NewHandle[int]()
	h1.LL(l)
	h2.LL(l)
	if !h2.SC(l, 2) {
		t.Fatal("h2 SC failed")
	}
	if h1.SC(l, 3) {
		t.Fatal("h1 SC succeeded after intervening SC")
	}
	if got := l.Load(); got != 2 {
		t.Errorf("Load = %d, want 2", got)
	}
}

func TestSCIsABAFree(t *testing.T) {
	l := llsc.NewLoc("v")
	h1 := llsc.NewHandle[string]()
	h2 := llsc.NewHandle[string]()
	h1.LL(l)
	for _, v := range []string{"w", "v"} { // value returns to "v"
		h2.LL(l)
		if !h2.SC(l, v) {
			t.Fatalf("SC(%q) failed", v)
		}
	}
	if h1.SC(l, "u") {
		t.Fatal("stale SC succeeded after ABA on the value")
	}
}

func TestVLSemantics(t *testing.T) {
	l := llsc.NewLoc(1)
	h1 := llsc.NewHandle[int]()
	h2 := llsc.NewHandle[int]()
	h1.LL(l)
	if !h1.VL(l) {
		t.Fatal("VL failed on unchanged location")
	}
	if !h1.Linked(l) {
		t.Error("successful VL consumed the link")
	}
	h2.LL(l)
	if !h2.SC(l, 2) {
		t.Fatal("h2 SC failed")
	}
	if h1.VL(l) {
		t.Fatal("VL succeeded after intervening SC")
	}
	if h1.Linked(l) {
		t.Error("failed VL preserved the link")
	}
}

func TestPanicsWithoutLink(t *testing.T) {
	l := llsc.NewLoc(1)
	h := llsc.NewHandle[int]()
	for name, f := range map[string]func(){
		"SC": func() { h.SC(l, 2) },
		"VL": func() { h.VL(l) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			f()
		})
	}
}

func TestSnapshotIdentity(t *testing.T) {
	l := llsc.NewLoc(1)
	s1 := l.TakeSnapshot()
	s2 := l.TakeSnapshot()
	if !s1.Same(s2) {
		t.Error("snapshots without intervening write differ")
	}
	h := llsc.NewHandle[int]()
	h.LL(l)
	if !h.SC(l, 1) { // same value, new write
		t.Fatal("SC failed")
	}
	s3 := l.TakeSnapshot()
	if s1.Same(s3) {
		t.Error("snapshot identical across a write of an equal value")
	}
	if s3.Value() != 1 {
		t.Errorf("snapshot value = %d, want 1", s3.Value())
	}
}

func TestConcurrentCounterViaLLSC(t *testing.T) {
	const procs = 8
	const perProc = 2000
	l := llsc.NewLoc(0)
	var wg sync.WaitGroup
	for g := 0; g < procs; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := llsc.NewHandle[int]()
			for i := 0; i < perProc; i++ {
				for {
					v := h.LL(l)
					if h.SC(l, v+1) {
						break
					}
				}
			}
		}()
	}
	wg.Wait()
	if got := l.Load(); got != procs*perProc {
		t.Fatalf("counter = %d, want %d", got, procs*perProc)
	}
}
