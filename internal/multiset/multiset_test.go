package multiset_test

import (
	"math/rand"
	"pragmaprim/internal/multiset"
	"sync"
	"testing"
	"testing/quick"
)

func checkInv(t *testing.T, m *multiset.Multiset[int]) {
	t.Helper()
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("invariant violated: %v", err)
	}
}

func TestEmptyMultiset(t *testing.T) {
	m := multiset.New[int]()
	if got := m.Get(42); got != 0 {
		t.Errorf("Get on empty = %d, want 0", got)
	}
	if m.Contains(42) {
		t.Error("Contains on empty = true")
	}
	if m.Delete(42, 1) {
		t.Error("Delete on empty = true")
	}
	if got := m.Len(); got != 0 {
		t.Errorf("Len = %d, want 0", got)
	}
	if got := m.TotalCount(); got != 0 {
		t.Errorf("TotalCount = %d, want 0", got)
	}
	checkInv(t, m)
}

func TestInsertNewKey(t *testing.T) {
	m := multiset.New[int]()
	m.Insert(5, 3)
	if got := m.Get(5); got != 3 {
		t.Errorf("Get(5) = %d, want 3", got)
	}
	if got := m.Len(); got != 1 {
		t.Errorf("Len = %d, want 1", got)
	}
	checkInv(t, m)
}

func TestInsertExistingKeyBumpsCount(t *testing.T) {
	m := multiset.New[int]()
	m.Insert(5, 3)
	m.Insert(5, 4)
	if got := m.Get(5); got != 7 {
		t.Errorf("Get(5) = %d, want 7", got)
	}
	if got := m.Len(); got != 1 {
		t.Errorf("Len = %d, want 1 (no duplicate node)", got)
	}
	checkInv(t, m)
}

func TestInsertMaintainsSortedOrder(t *testing.T) {
	m := multiset.New[int]()
	for _, k := range []int{5, 1, 9, 3, 7, 2, 8, 4, 6} {
		m.Insert(k, 1)
	}
	keys := m.Keys()
	want := []int{1, 2, 3, 4, 5, 6, 7, 8, 9}
	if len(keys) != len(want) {
		t.Fatalf("Keys = %v, want %v", keys, want)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("Keys = %v, want %v", keys, want)
		}
	}
	checkInv(t, m)
}

func TestDeletePartial(t *testing.T) {
	m := multiset.New[int]()
	m.Insert(5, 10)
	if !m.Delete(5, 4) {
		t.Fatal("Delete(5,4) = false")
	}
	if got := m.Get(5); got != 6 {
		t.Errorf("Get(5) = %d, want 6", got)
	}
	checkInv(t, m)
}

func TestDeleteExact(t *testing.T) {
	m := multiset.New[int]()
	m.Insert(5, 4)
	m.Insert(7, 1)
	if !m.Delete(5, 4) {
		t.Fatal("Delete(5,4) = false")
	}
	if got := m.Get(5); got != 0 {
		t.Errorf("Get(5) = %d, want 0", got)
	}
	if got := m.Get(7); got != 1 {
		t.Errorf("Get(7) = %d, want 1 (neighbor must survive)", got)
	}
	checkInv(t, m)
}

func TestDeleteTooMany(t *testing.T) {
	m := multiset.New[int]()
	m.Insert(5, 3)
	if m.Delete(5, 4) {
		t.Fatal("Delete(5,4) = true with only 3 present")
	}
	if got := m.Get(5); got != 3 {
		t.Errorf("Get(5) = %d, want 3 (failed delete must not change)", got)
	}
	checkInv(t, m)
}

func TestDeleteLastNodeBeforeTail(t *testing.T) {
	// Deleting the node whose successor is the tail sentinel exercises the
	// Figure 5(c) path where the copied successor is the tail itself.
	m := multiset.New[int]()
	m.Insert(5, 1)
	if !m.Delete(5, 1) {
		t.Fatal("Delete = false")
	}
	checkInv(t, m)
	// The structure must remain fully usable with its fresh tail copy.
	m.Insert(9, 2)
	if got := m.Get(9); got != 2 {
		t.Errorf("Get(9) = %d, want 2", got)
	}
	checkInv(t, m)
}

func TestDeleteMiddleRelinksNeighbors(t *testing.T) {
	m := multiset.New[int]()
	for _, k := range []int{1, 2, 3} {
		m.Insert(k, k)
	}
	if !m.Delete(2, 2) {
		t.Fatal("Delete(2) = false")
	}
	keys := m.Keys()
	if len(keys) != 2 || keys[0] != 1 || keys[1] != 3 {
		t.Fatalf("Keys = %v, want [1 3]", keys)
	}
	checkInv(t, m)
}

func TestInsertAfterDeleteSameKey(t *testing.T) {
	m := multiset.New[int]()
	for i := 0; i < 50; i++ {
		m.Insert(5, 1)
		if !m.Delete(5, 1) {
			t.Fatalf("round %d: Delete = false", i)
		}
	}
	if got := m.Get(5); got != 0 {
		t.Errorf("Get(5) = %d, want 0", got)
	}
	checkInv(t, m)
}

func TestPanicsOnNonPositiveCounts(t *testing.T) {
	m := multiset.New[int]()
	for name, f := range map[string]func(){
		"InsertZero":     func() { m.Insert(1, 0) },
		"InsertNegative": func() { m.Insert(1, -2) },
		"DeleteZero":     func() { m.Delete(1, 0) },
		"DeleteNegative": func() { m.Delete(1, -2) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			f()
		})
	}
}

func TestStringKeys(t *testing.T) {
	m := multiset.New[string]()
	m.Insert("banana", 2)
	m.Insert("apple", 1)
	m.Insert("cherry", 3)
	keys := m.Keys()
	want := []string{"apple", "banana", "cherry"}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("Keys = %v, want %v", keys, want)
		}
	}
	if !m.Delete("banana", 2) {
		t.Fatal("Delete(banana) = false")
	}
	if m.Contains("banana") {
		t.Error("banana still present")
	}
}

// TestQuickAgainstMapModel drives random op sequences against a map-based
// sequential model (single process, so every op must behave sequentially).
func TestQuickAgainstMapModel(t *testing.T) {
	type op struct {
		Kind  uint8
		Key   uint8
		Count uint8
	}
	f := func(ops []op) bool {
		m := multiset.New[int]()
		model := make(map[int]int)
		for _, o := range ops {
			key := int(o.Key % 16)
			count := int(o.Count%5) + 1
			switch o.Kind % 3 {
			case 0:
				m.Insert(key, count)
				model[key] += count
			case 1:
				got := m.Delete(key, count)
				want := model[key] >= count
				if got != want {
					return false
				}
				if want {
					model[key] -= count
					if model[key] == 0 {
						delete(model, key)
					}
				}
			case 2:
				if m.Get(key) != model[key] {
					return false
				}
			}
		}
		if m.CheckInvariants() != nil {
			return false
		}
		items := m.Items()
		if len(items) != len(model) {
			return false
		}
		for k, v := range model {
			if items[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentInsertDisjointKeys: inserts on distinct keys must all land.
func TestConcurrentInsertDisjointKeys(t *testing.T) {
	const procs = 8
	const perProc = 200
	m := multiset.New[int]()

	var wg sync.WaitGroup
	for g := 0; g < procs; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perProc; i++ {
				m.Insert(g*perProc+i, 1)
			}
		}(g)
	}
	wg.Wait()
	for g := 0; g < procs; g++ {
		for i := 0; i < perProc; i++ {
			if got := m.Get(g*perProc + i); got != 1 {
				t.Fatalf("Get(%d) = %d, want 1", g*perProc+i, got)
			}
		}
	}
	if got := m.Len(); got != procs*perProc {
		t.Errorf("Len = %d, want %d", got, procs*perProc)
	}
	checkInv(t, m)
}

// TestConcurrentInsertSameKey: concurrent count bumps on one key must not
// lose updates.
func TestConcurrentInsertSameKey(t *testing.T) {
	const procs = 8
	const perProc = 300
	m := multiset.New[int]()

	var wg sync.WaitGroup
	for g := 0; g < procs; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProc; i++ {
				m.Insert(7, 1)
			}
		}()
	}
	wg.Wait()
	if got := m.Get(7); got != procs*perProc {
		t.Fatalf("Get(7) = %d, want %d (lost updates)", got, procs*perProc)
	}
	checkInv(t, m)
}

// TestConcurrentInsertDeleteBalance: each goroutine inserts then deletes its
// own random keys; the multiset must drain to empty.
func TestConcurrentInsertDeleteBalance(t *testing.T) {
	const procs = 8
	const perProc = 200
	m := multiset.New[int]()

	var wg sync.WaitGroup
	for g := 0; g < procs; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < perProc; i++ {
				key := rng.Intn(32)
				count := 1 + rng.Intn(3)
				m.Insert(key, count)
				for !m.Delete(key, count) {
					// Another goroutine may transiently hold fewer than
					// count occurrences visible? No: our own insert
					// guarantees at least count are present until we delete
					// them. A false return can only mean contention raced us
					// past a node; retry.
					t.Errorf("Delete(%d,%d) = false though we inserted it", key, count)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	if got := m.TotalCount(); got != 0 {
		t.Fatalf("TotalCount = %d, want 0; items=%v", got, m.Items())
	}
	checkInv(t, m)
}

// TestConcurrentMixedWorkloadConservation: with inserts and deletes of the
// same per-key amounts tracked, the final contents must equal the net sums.
func TestConcurrentMixedWorkloadConservation(t *testing.T) {
	const procs = 6
	const perProc = 400
	const keyRange = 24
	m := multiset.New[int]()

	inserted := make([][]int, procs) // per-proc per-key inserted totals
	deleted := make([][]int, procs)  // per-proc per-key deleted totals
	var wg sync.WaitGroup
	for g := 0; g < procs; g++ {
		inserted[g] = make([]int, keyRange)
		deleted[g] = make([]int, keyRange)
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + g)))
			for i := 0; i < perProc; i++ {
				key := rng.Intn(keyRange)
				count := 1 + rng.Intn(4)
				if rng.Intn(2) == 0 {
					m.Insert(key, count)
					inserted[g][key] += count
				} else if m.Delete(key, count) {
					deleted[g][key] += count
				}
			}
		}(g)
	}
	wg.Wait()

	want := make(map[int]int)
	for k := 0; k < keyRange; k++ {
		net := 0
		for g := 0; g < procs; g++ {
			net += inserted[g][k] - deleted[g][k]
		}
		if net < 0 {
			t.Fatalf("key %d: net %d < 0 — deletes deleted more than inserted", k, net)
		}
		if net > 0 {
			want[k] = net
		}
	}
	items := m.Items()
	for k, v := range want {
		if items[k] != v {
			t.Errorf("key %d: count %d, want %d", k, items[k], v)
		}
	}
	for k, v := range items {
		if want[k] != v {
			t.Errorf("key %d: unexpected count %d (want %d)", k, v, want[k])
		}
	}
	checkInv(t, m)
}
