package multiset_test

import (
	"sync/atomic"
	"testing"
	"time"

	"pragmaprim/internal/core"
	"pragmaprim/internal/multiset"
)

// TestStalledDeleteDoesNotBlockNeighbors stalls a Delete's SCX mid-flight
// (after it froze its three nodes, right before the mark step) and verifies
// that operations on neighboring keys help it out of the way and complete —
// the paper's non-blocking guarantee exercised through the real multiset
// rather than bare records.
func TestStalledDeleteDoesNotBlockNeighbors(t *testing.T) {
	m := multiset.New[int]()
	for _, k := range []int{10, 20, 30, 40} {
		m.Insert(k, 1)
	}

	var claimed atomic.Bool
	release := make(chan struct{})
	stalled := make(chan struct{}, 1)
	core.SetStepHook(func(k core.StepKind, _ *core.SCXRecord, _ *core.Record) {
		if k == core.StepMark && claimed.CompareAndSwap(false, true) {
			stalled <- struct{}{}
			<-release
		}
	})
	defer core.SetStepHook(nil)

	// The victim deletes key 20 entirely (the Figure 5(c) three-node SCX,
	// which has mark steps) and stalls mid-operation.
	victimDone := make(chan bool)
	go func() {
		victimDone <- m.Delete(20, 1)
	}()
	select {
	case <-stalled:
	case <-time.After(5 * time.Second):
		t.Fatal("victim never reached its mark step")
	}

	// Neighbors proceed: they traverse past the frozen region and, when
	// they need the frozen nodes, help the stalled delete first.
	m.Insert(15, 2)
	m.Insert(25, 3)
	if !m.Delete(40, 1) {
		t.Fatal("Delete(40) failed while a delete is stalled")
	}
	if got := m.Get(15); got != 2 {
		t.Errorf("Get(15) = %d, want 2", got)
	}
	if got := m.Get(25); got != 3 {
		t.Errorf("Get(25) = %d, want 3", got)
	}
	// The stalled delete's effect must already be visible if the helpers
	// pushed it through; at minimum, key 20 is either gone (helped through)
	// or still frozen-but-present. Force the question with an operation
	// that must help: deleting 20 again from this process either helps the
	// victim's SCX to completion first and then fails to find a copy, or
	// observes it already gone.
	if m.Delete(20, 1) {
		t.Error("key 20 deleted twice")
	}

	close(release)
	if !<-victimDone {
		t.Fatal("victim delete reported failure after being helped")
	}
	if got := m.Get(20); got != 0 {
		t.Errorf("Get(20) = %d, want 0", got)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("invariants after stall/help: %v", err)
	}
}
