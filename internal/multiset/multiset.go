// Package multiset implements the paper's Section 5 running example: a
// linearizable, non-blocking multiset backed by a sorted singly-linked list
// of Data-records, built entirely from the LLX/SCX primitives of
// internal/core (Figure 6 pseudocode).
//
// The multiset supports Get(key) (number of occurrences), Insert(key, count),
// and Delete(key, count). Searches traverse the list with plain reads, which
// is sound by the paper's Proposition 2; updates run on the internal/template
// engine — each attempt LLXs the affected nodes and commits with a single
// SCX that swings one next pointer (or bumps one count), finalizing exactly
// the nodes the update removes (Lemma 4), which is what makes the structure
// linearizable and non-blocking (Theorem 6).
//
// Methods never take a *core.Process: plain calls acquire a pooled Handle
// per operation, and hot paths bind one with Attach:
//
//	h := core.AcquireHandle()
//	defer h.Release()
//	s := m.Attach(h)
//	s.Insert(k, 1)
package multiset

import (
	"cmp"
	"fmt"

	"pragmaprim/internal/core"
	"pragmaprim/internal/template"
)

// Mutable-field indices of a node's Data-record.
const (
	fieldCount = 0 // int: occurrences of key
	fieldNext  = 1 // *node[K]: successor in the sorted list
)

// nodeKind distinguishes the two sentinel nodes from interior nodes; the
// paper uses keys -inf and +inf, which have no value representation for a
// generic ordered key type.
type nodeKind int

const (
	kindHead nodeKind = iota + 1 // key -inf
	kindInterior
	kindTail // key +inf
)

// node is one list node. key and kind are immutable; count and next live in
// the node's Data-record as mutable fields.
type node[K cmp.Ordered] struct {
	rec  *core.Record
	key  K
	kind nodeKind
}

func newNode[K cmp.Ordered](kind nodeKind, key K, count int, next *node[K]) *node[K] {
	n := &node[K]{key: key, kind: kind}
	n.rec = core.NewRecord(2, []any{count, next}, n)
	return n
}

// next reads n's next pointer with a plain atomic read.
func (n *node[K]) next() *node[K] {
	nxt, _ := n.rec.Read(fieldNext).(*node[K])
	return nxt
}

// count reads n's count with a plain atomic read.
func (n *node[K]) count() int {
	return n.rec.Read(fieldCount).(int)
}

// before reports whether n's key is strictly less than key, i.e. the search
// for key must move past n. The head sentinel precedes every key; the tail
// sentinel follows every key.
func (n *node[K]) before(key K) bool {
	switch n.kind {
	case kindHead:
		return true
	case kindTail:
		return false
	default:
		return n.key < key
	}
}

// matches reports whether n is an interior node holding exactly key.
func (n *node[K]) matches(key K) bool {
	return n.kind == kindInterior && n.key == key
}

// Multiset is a non-blocking multiset of keys of type K. The zero value is
// not usable; create one with New. All methods are safe for concurrent use.
type Multiset[K cmp.Ordered] struct {
	head     *node[K]
	policy   template.Policy
	insStats template.OpStats
	delStats template.OpStats
}

// New creates an empty multiset. As in the paper, the structure always holds
// a head sentinel (key -inf) pointing at a tail sentinel (key +inf); the head
// is the sole entry point and is never finalized.
func New[K cmp.Ordered]() *Multiset[K] {
	var zero K
	tail := newNode[K](kindTail, zero, 0, nil)
	head := newNode[K](kindHead, zero, 0, tail)
	return &Multiset[K]{head: head}
}

// SetPolicy installs the retry policy updates back off with; nil (the
// default) retries immediately. Call before sharing the multiset.
func (m *Multiset[K]) SetPolicy(p template.Policy) { m.policy = p }

// EngineStats returns the template engine's aggregate attempt/failure
// counters across all update operations.
func (m *Multiset[K]) EngineStats() template.Counters {
	return m.insStats.Snapshot().Add(m.delStats.Snapshot())
}

// StatsByOp returns the engine counters broken out per operation.
func (m *Multiset[K]) StatsByOp() map[string]template.Counters {
	return map[string]template.Counters{
		"insert": m.insStats.Snapshot(),
		"delete": m.delStats.Snapshot(),
	}
}

// Session is a Handle-bound view of a Multiset: the hot-path API for a
// goroutine that performs many operations. A Session is as cheap as a pair
// of pointers; it is not safe for concurrent use (the Handle is exclusive),
// but any number of Sessions may operate on the shared Multiset.
type Session[K cmp.Ordered] struct {
	m *Multiset[K]
	h *core.Handle
}

// Attach binds a Session to h. The caller keeps ownership of h and releases
// it when done.
func (m *Multiset[K]) Attach(h *core.Handle) Session[K] {
	return Session[K]{m: m, h: h}
}

// Handle returns the Session's Handle.
func (s Session[K]) Handle() *core.Handle { return s.h }

// search traverses the list from head by plain reads, returning the first
// node r with key <= r.key and its predecessor p (Figure 6, lines 6-13).
// Postcondition: p.key < key <= r.key (with sentinels ordered as -inf/+inf).
func (m *Multiset[K]) search(key K) (r, p *node[K]) {
	p = m.head
	r = p.next()
	for r.before(key) {
		p = r
		r = r.next()
	}
	return r, p
}

// Get returns the number of occurrences of key (Figure 6, lines 1-5).
// Searches are plain reads (Proposition 2), so Get needs no Handle.
func (m *Multiset[K]) Get(key K) int {
	r, _ := m.search(key)
	if r.matches(key) {
		return r.count()
	}
	return 0
}

// Contains reports whether key occurs at least once.
func (m *Multiset[K]) Contains(key K) bool {
	return m.Get(key) > 0
}

// Insert adds count occurrences of key using a pooled Handle; see
// Session.Insert for the hot-path form. count must be positive.
func (m *Multiset[K]) Insert(key K, count int) {
	h := core.AcquireHandle()
	m.Attach(h).Insert(key, count)
	h.Release()
}

// Delete removes count occurrences of key using a pooled Handle; see
// Session.Delete for the hot-path form and semantics.
func (m *Multiset[K]) Delete(key K, count int) bool {
	h := core.AcquireHandle()
	ok := m.Attach(h).Delete(key, count)
	h.Release()
	return ok
}

// Get returns the number of occurrences of key.
func (s Session[K]) Get(key K) int { return s.m.Get(key) }

// Contains reports whether key occurs at least once.
func (s Session[K]) Contains(key K) bool { return s.m.Contains(key) }

// Insert adds count occurrences of key (Figure 6, lines 14-24). count must
// be positive.
func (s Session[K]) Insert(key K, count int) {
	if count <= 0 {
		panic(fmt.Sprintf("multiset: Insert with non-positive count %d", count))
	}
	m := s.m
	template.Run(s.h, m.policy, &m.insStats, func(c *template.Ctx) (struct{}, template.Action) {
		r, p := m.search(key)
		if r.matches(key) {
			// Key present: bump r.count in place (Figure 5(b)).
			localr, st := c.LLX(r.rec)
			if st != core.LLXOK {
				return struct{}{}, template.Retry
			}
			if c.SCX([]*core.Record{r.rec}, nil,
				r.rec.Field(fieldCount), localr[fieldCount].(int)+count) {
				return struct{}{}, template.Done
			}
			return struct{}{}, template.Retry
		}
		// Key absent: splice a new node between p and r (Figure 5(a)).
		localp, st := c.LLX(p.rec)
		if st != core.LLXOK {
			return struct{}{}, template.Retry
		}
		if nxt, _ := localp[fieldNext].(*node[K]); nxt != r {
			return struct{}{}, template.Retry
		}
		n := newNode(kindInterior, key, count, r)
		if c.SCX([]*core.Record{p.rec}, nil, p.rec.Field(fieldNext), n) {
			return struct{}{}, template.Done
		}
		return struct{}{}, template.Retry
	})
}

// Delete removes count occurrences of key and reports whether it did; if
// fewer than count occurrences are present it removes nothing and returns
// false (Figure 6, lines 25-36). count must be positive.
func (s Session[K]) Delete(key K, count int) bool {
	if count <= 0 {
		panic(fmt.Sprintf("multiset: Delete with non-positive count %d", count))
	}
	m := s.m
	return template.Run(s.h, m.policy, &m.delStats, func(c *template.Ctx) (bool, template.Action) {
		r, p := m.search(key)
		localp, stp := c.LLX(p.rec)
		if stp != core.LLXOK {
			return false, template.Retry
		}
		localr, str := c.LLX(r.rec)
		if str != core.LLXOK {
			return false, template.Retry
		}
		if nxt, _ := localp[fieldNext].(*node[K]); nxt != r {
			return false, template.Retry
		}
		if !r.matches(key) || localr[fieldCount].(int) < count {
			return false, template.Done
		}
		if localr[fieldCount].(int) > count {
			// Replace r with a reduced-count copy, finalizing r
			// (Figure 5(d)).
			rnext, _ := localr[fieldNext].(*node[K])
			repl := newNode(kindInterior, r.key, localr[fieldCount].(int)-count, rnext)
			if c.SCX([]*core.Record{p.rec, r.rec}, []*core.Record{r.rec},
				p.rec.Field(fieldNext), repl) {
				return true, template.Done
			}
			return false, template.Retry
		}
		// Exact count: unlink r entirely. To avoid the ABA problem on p.next,
		// r's successor is replaced by a fresh copy and both r and the old
		// successor are finalized (Figure 5(c)).
		rnext := localr[fieldNext].(*node[K]) // non-nil: r is interior
		localrn, st := c.LLX(rnext.rec)
		if st != core.LLXOK {
			return false, template.Retry
		}
		cp := m.copyNode(rnext, localrn)
		if c.SCX([]*core.Record{p.rec, r.rec, rnext.rec},
			[]*core.Record{r.rec, rnext.rec},
			p.rec.Field(fieldNext), cp) {
			return true, template.Done
		}
		return false, template.Retry
	})
}

// copyNode builds a fresh node with the same key/kind as n and the mutable
// values captured by snapshot snap.
func (m *Multiset[K]) copyNode(n *node[K], snap core.Snapshot) *node[K] {
	nxt, _ := snap[fieldNext].(*node[K])
	return newNode(n.kind, n.key, snap[fieldCount].(int), nxt)
}

// Items returns the key -> count contents of the multiset as observed by a
// single traversal with plain reads. The traversal is not atomic: under
// concurrent updates it is only guaranteed that every reported node was in
// the multiset at some time during the call (Proposition 2). On a quiescent
// multiset it is exact.
func (m *Multiset[K]) Items() map[K]int {
	items := make(map[K]int)
	for n := m.head.next(); n != nil && n.kind != kindTail; n = n.next() {
		items[n.key] = n.count()
	}
	return items
}

// Len returns the number of distinct keys observed by a single traversal,
// with the same consistency caveat as Items.
func (m *Multiset[K]) Len() int {
	n := 0
	for cur := m.head.next(); cur != nil && cur.kind != kindTail; cur = cur.next() {
		n++
	}
	return n
}

// TotalCount returns the sum of all counts observed by a single traversal,
// with the same consistency caveat as Items.
func (m *Multiset[K]) TotalCount() int {
	total := 0
	for cur := m.head.next(); cur != nil && cur.kind != kindTail; cur = cur.next() {
		total += cur.count()
	}
	return total
}

// Keys returns the distinct keys in ascending order, with the same
// consistency caveat as Items.
func (m *Multiset[K]) Keys() []K {
	var keys []K
	for cur := m.head.next(); cur != nil && cur.kind != kindTail; cur = cur.next() {
		keys = append(keys, cur.key)
	}
	return keys
}

// CheckInvariants verifies the paper's Invariant 3 on a quiescent multiset:
// the list is strictly sorted, terminates at the tail sentinel, interior
// counts are positive, and no reachable node is finalized. It returns an
// error describing the first violation found. Intended for tests.
func (m *Multiset[K]) CheckInvariants() error {
	if m.head.rec.Finalized() {
		return fmt.Errorf("head sentinel is finalized")
	}
	prev := m.head
	cur := m.head.next()
	for {
		if cur == nil {
			return fmt.Errorf("list does not terminate at the tail sentinel")
		}
		if cur.rec.Finalized() {
			return fmt.Errorf("reachable node (key %v) is finalized", cur.key)
		}
		if cur.kind == kindTail {
			return nil
		}
		if prev.kind == kindInterior && cur.key <= prev.key {
			return fmt.Errorf("keys out of order: %v then %v", prev.key, cur.key)
		}
		if cur.count() <= 0 {
			return fmt.Errorf("interior node %v has non-positive count %d", cur.key, cur.count())
		}
		prev, cur = cur, cur.next()
	}
}
