// Package multiset implements the paper's Section 5 running example: a
// linearizable, non-blocking multiset backed by a sorted singly-linked list
// of Data-records, built entirely from the LLX/SCX primitives of
// internal/core (Figure 6 pseudocode).
//
// The multiset supports Get(key) (number of occurrences), Insert(key, count),
// and Delete(key, count). Searches traverse the list with plain reads, which
// is sound by the paper's Proposition 2; updates run on the internal/template
// engine — each attempt LLXs the affected nodes and commits with a single
// SCX that swings one next pointer (or bumps one count), finalizing exactly
// the nodes the update removes (Lemma 4), which is what makes the structure
// linearizable and non-blocking (Theorem 6).
//
// Storage is fully de-boxed: a node embeds its Data-record, whose mutable
// fields are one uint64 word (the count) and one raw pointer (the next
// link), so neither reads nor updates box values or assert types. Nodes
// removed by Delete are recycled through internal/reclaim after an epoch
// grace period instead of being abandoned to the garbage collector, which
// is why every read path — including the handle-free convenience methods —
// announces an epoch before touching the list.
//
// Methods never take a *core.Process: plain calls acquire a pooled Handle
// per operation, and hot paths bind one with Attach:
//
//	h := core.AcquireHandle()
//	defer h.Release()
//	s := m.Attach(h)
//	s.Insert(k, 1)
package multiset

import (
	"cmp"
	"fmt"
	"unsafe"

	"pragmaprim/internal/core"
	"pragmaprim/internal/reclaim"
	"pragmaprim/internal/template"
)

// Mutable-field indices of a node's Data-record.
const (
	fieldCount = 0 // word 0: occurrences of key
	fieldNext  = 0 // ptr 0: successor in the sorted list
)

// nodeKind distinguishes the two sentinel nodes from interior nodes; the
// paper uses keys -inf and +inf, which have no value representation for a
// generic ordered key type.
type nodeKind int

const (
	kindHead nodeKind = iota + 1 // key -inf
	kindInterior
	kindTail // key +inf
)

// node is one list node. key and kind are immutable while the node is
// published; count and next live in the node's embedded Data-record as
// mutable fields (one word, one pointer — node plus record are a single
// allocation, recycled together).
type node[K cmp.Ordered] struct {
	rec  core.Record
	key  K
	kind nodeKind
}

// next reads n's next pointer with a plain atomic read.
func (n *node[K]) next() *node[K] {
	return (*node[K])(n.rec.Ptr(fieldNext))
}

// count reads n's count with a plain atomic read.
func (n *node[K]) count() int {
	return int(n.rec.Word(fieldCount))
}

// before reports whether n's key is strictly less than key, i.e. the search
// for key must move past n. The head sentinel precedes every key; the tail
// sentinel follows every key.
func (n *node[K]) before(key K) bool {
	switch n.kind {
	case kindHead:
		return true
	case kindTail:
		return false
	default:
		return n.key < key
	}
}

// matches reports whether n is an interior node holding exactly key.
func (n *node[K]) matches(key K) bool {
	return n.kind == kindInterior && n.key == key
}

// Multiset is a non-blocking multiset of keys of type K. The zero value is
// not usable; create one with New. All methods are safe for concurrent use.
type Multiset[K cmp.Ordered] struct {
	head     *node[K]
	pool     *reclaim.Pool[node[K]]
	policy   template.Policy
	insStats template.OpStats
	delStats template.OpStats
}

// New creates an empty multiset. As in the paper, the structure always holds
// a head sentinel (key -inf) pointing at a tail sentinel (key +inf); the head
// is the sole entry point and is never finalized.
func New[K cmp.Ordered]() *Multiset[K] {
	m := &Multiset[K]{pool: reclaim.NewPool[node[K]]()}
	// Rewind a node's record the moment it enters a freelist (it is
	// unreachable there), so the descriptor that finalized it stops being
	// designated by its info field and can itself recycle.
	m.pool.SetOnFree(func(n *node[K]) { n.rec.Recycle() })
	var zero K
	tail := m.newNode(nil, kindTail, zero, 0, nil)
	m.head = m.newNode(nil, kindHead, zero, 0, tail)
	return m
}

// newNode builds (or recycles, when l is an announced reclaim state with a
// primed freelist) a fully initialized, unpublished node.
func (m *Multiset[K]) newNode(l *reclaim.Local, kind nodeKind, key K, count int, next *node[K]) *node[K] {
	n := m.pool.Get(l)
	if n == nil {
		n = &node[K]{}
		core.InitRecord(&n.rec, 1, 1)
	} else {
		n.rec.Recycle()
	}
	initNode(n, kind, key, count, next)
	return n
}

// initNode (re)initializes an unpublished node — the single place node
// state is set, shared by the constructor and the retry paths that re-arm
// a node built by an earlier attempt.
func initNode[K cmp.Ordered](n *node[K], kind nodeKind, key K, count int, next *node[K]) {
	n.kind, n.key = kind, key
	n.rec.SetWord(fieldCount, uint64(count))
	n.rec.SetPtr(fieldNext, unsafe.Pointer(next))
}

// SetPolicy installs the retry policy updates back off with; nil (the
// default) retries immediately. Call before sharing the multiset.
func (m *Multiset[K]) SetPolicy(p template.Policy) { m.policy = p }

// EngineStats returns the template engine's aggregate attempt/failure
// counters across all update operations.
func (m *Multiset[K]) EngineStats() template.Counters {
	return m.insStats.Snapshot().Add(m.delStats.Snapshot())
}

// StatsByOp returns the engine counters broken out per operation.
func (m *Multiset[K]) StatsByOp() map[string]template.Counters {
	return map[string]template.Counters{
		"insert": m.insStats.Snapshot(),
		"delete": m.delStats.Snapshot(),
	}
}

// Session is a Handle-bound view of a Multiset: the hot-path API for a
// goroutine that performs many operations. A Session is as cheap as a pair
// of pointers; it is not safe for concurrent use (the Handle is exclusive),
// but any number of Sessions may operate on the shared Multiset.
type Session[K cmp.Ordered] struct {
	m *Multiset[K]
	h *core.Handle
}

// Attach binds a Session to h. The caller keeps ownership of h and releases
// it when done.
func (m *Multiset[K]) Attach(h *core.Handle) Session[K] {
	return Session[K]{m: m, h: h}
}

// Handle returns the Session's Handle.
func (s Session[K]) Handle() *core.Handle { return s.h }

// search traverses the list from head by plain reads, returning the first
// node r with key <= r.key and its predecessor p (Figure 6, lines 6-13).
// Postcondition: p.key < key <= r.key (with sentinels ordered as -inf/+inf).
// The caller must hold an epoch guard (template.Enter or a Run attempt).
func (m *Multiset[K]) search(key K) (r, p *node[K]) {
	p = m.head
	r = p.next()
	for r.before(key) {
		p = r
		r = r.next()
	}
	return r, p
}

// Get returns the number of occurrences of key (Figure 6, lines 1-5) using
// a pooled Handle; see Session.Get for the hot-path form.
func (m *Multiset[K]) Get(key K) int {
	h := core.AcquireHandle()
	n := m.Attach(h).Get(key)
	h.Release()
	return n
}

// Contains reports whether key occurs at least once.
func (m *Multiset[K]) Contains(key K) bool {
	return m.Get(key) > 0
}

// Insert adds count occurrences of key using a pooled Handle; see
// Session.Insert for the hot-path form. count must be positive.
func (m *Multiset[K]) Insert(key K, count int) {
	h := core.AcquireHandle()
	m.Attach(h).Insert(key, count)
	h.Release()
}

// Delete removes count occurrences of key using a pooled Handle; see
// Session.Delete for the hot-path form and semantics.
func (m *Multiset[K]) Delete(key K, count int) bool {
	h := core.AcquireHandle()
	ok := m.Attach(h).Delete(key, count)
	h.Release()
	return ok
}

// Get returns the number of occurrences of key. The search is plain reads
// (Proposition 2) under an epoch guard, which is what keeps it safe while
// deleted nodes are being recycled.
func (s Session[K]) Get(key K) int {
	template.Enter(s.h)
	r, _ := s.m.search(key)
	res := 0
	if r.matches(key) {
		res = r.count()
	}
	template.Exit(s.h)
	return res
}

// Contains reports whether key occurs at least once.
func (s Session[K]) Contains(key K) bool { return s.Get(key) > 0 }

// Insert adds count occurrences of key (Figure 6, lines 14-24). count must
// be positive.
func (s Session[K]) Insert(key K, count int) {
	if count <= 0 {
		panic(fmt.Sprintf("multiset: Insert with non-positive count %d", count))
	}
	m := s.m
	var fresh *node[K] // built at most once per operation; reused across attempts
	template.Run(s.h, m.policy, &m.insStats, func(c *template.Ctx) (struct{}, template.Action) {
		r, p := m.search(key)
		if r.matches(key) {
			// Key present: bump r.count in place (Figure 5(b)). The in-place
			// word CAS is ABA-safe: a stale helper can only reach the update
			// CAS while the record's info chain still designates its
			// descriptor (see DESIGN.md).
			localr, st := c.LLXF(&r.rec)
			if st != core.LLXOK {
				return struct{}{}, template.Retry
			}
			if c.SCXWord([]*core.Record{&r.rec}, nil,
				r.rec.WordField(fieldCount), localr.Word(fieldCount)+uint64(count)) {
				if fresh != nil {
					m.pool.Release(c.Reclaim(), fresh) // never published
				}
				return struct{}{}, template.Done
			}
			return struct{}{}, template.Retry
		}
		// Key absent: splice a new node between p and r (Figure 5(a)).
		localp, st := c.LLXF(&p.rec)
		if st != core.LLXOK {
			return struct{}{}, template.Retry
		}
		if (*node[K])(localp.Ptr(fieldNext)) != r {
			return struct{}{}, template.Retry
		}
		if fresh == nil {
			fresh = m.newNode(c.Reclaim(), kindInterior, key, count, r)
		} else {
			initNode(fresh, kindInterior, key, count, r) // retarget for this attempt
		}
		if c.SCXPtr([]*core.Record{&p.rec}, nil, p.rec.PtrField(fieldNext),
			unsafe.Pointer(fresh)) {
			return struct{}{}, template.Done
		}
		return struct{}{}, template.Retry
	})
}

// Delete removes count occurrences of key and reports whether it did; if
// fewer than count occurrences are present it removes nothing and returns
// false (Figure 6, lines 25-36). count must be positive.
func (s Session[K]) Delete(key K, count int) bool {
	if count <= 0 {
		panic(fmt.Sprintf("multiset: Delete with non-positive count %d", count))
	}
	m := s.m
	var fresh *node[K] // replacement/copy node, reused across attempts
	return template.Run(s.h, m.policy, &m.delStats, func(c *template.Ctx) (bool, template.Action) {
		release := func() {
			if fresh != nil {
				m.pool.Release(c.Reclaim(), fresh)
			}
		}
		r, p := m.search(key)
		localp, stp := c.LLXF(&p.rec)
		if stp != core.LLXOK {
			return false, template.Retry
		}
		localr, str := c.LLXF(&r.rec)
		if str != core.LLXOK {
			return false, template.Retry
		}
		if (*node[K])(localp.Ptr(fieldNext)) != r {
			return false, template.Retry
		}
		if !r.matches(key) || localr.Word(fieldCount) < uint64(count) {
			release()
			return false, template.Done
		}
		if localr.Word(fieldCount) > uint64(count) {
			// Replace r with a reduced-count copy, finalizing r
			// (Figure 5(d)).
			rnext := (*node[K])(localr.Ptr(fieldNext))
			reduced := int(localr.Word(fieldCount)) - count
			if fresh == nil {
				fresh = m.newNode(c.Reclaim(), kindInterior, r.key, reduced, rnext)
			} else {
				initNode(fresh, kindInterior, r.key, reduced, rnext)
			}
			if c.SCXPtr([]*core.Record{&p.rec, &r.rec}, []*core.Record{&r.rec},
				p.rec.PtrField(fieldNext), unsafe.Pointer(fresh)) {
				m.pool.Retire(c.Reclaim(), r)
				return true, template.Done
			}
			return false, template.Retry
		}
		// Exact count: unlink r entirely. To avoid the ABA problem on p.next,
		// r's successor is replaced by a fresh copy and both r and the old
		// successor are finalized (Figure 5(c)).
		rnext := (*node[K])(localr.Ptr(fieldNext)) // non-nil: r is interior
		localrn, st := c.LLXF(&rnext.rec)
		if st != core.LLXOK {
			return false, template.Retry
		}
		if fresh == nil {
			fresh = m.newNode(c.Reclaim(), rnext.kind, rnext.key,
				int(localrn.Word(fieldCount)), (*node[K])(localrn.Ptr(fieldNext)))
		} else {
			initNode(fresh, rnext.kind, rnext.key,
				int(localrn.Word(fieldCount)), (*node[K])(localrn.Ptr(fieldNext)))
		}
		if c.SCXPtr([]*core.Record{&p.rec, &r.rec, &rnext.rec},
			[]*core.Record{&r.rec, &rnext.rec},
			p.rec.PtrField(fieldNext), unsafe.Pointer(fresh)) {
			m.pool.Retire(c.Reclaim(), r)
			m.pool.Retire(c.Reclaim(), rnext)
			return true, template.Done
		}
		return false, template.Retry
	})
}

// guardedWalk runs visit over every interior node observed by one traversal
// with plain reads, under a pooled handle's epoch guard.
func (m *Multiset[K]) guardedWalk(visit func(n *node[K])) {
	template.Guarded(func() {
		for n := m.head.next(); n != nil && n.kind != kindTail; n = n.next() {
			visit(n)
		}
	})
}

// Items returns the key -> count contents of the multiset as observed by a
// single traversal with plain reads. The traversal is not atomic: under
// concurrent updates it is only guaranteed that every reported node was in
// the multiset at some time during the call (Proposition 2). On a quiescent
// multiset it is exact.
func (m *Multiset[K]) Items() map[K]int {
	items := make(map[K]int)
	m.guardedWalk(func(n *node[K]) { items[n.key] = n.count() })
	return items
}

// Len returns the number of distinct keys observed by a single traversal,
// with the same consistency caveat as Items.
func (m *Multiset[K]) Len() int {
	n := 0
	m.guardedWalk(func(*node[K]) { n++ })
	return n
}

// TotalCount returns the sum of all counts observed by a single traversal,
// with the same consistency caveat as Items.
func (m *Multiset[K]) TotalCount() int {
	total := 0
	m.guardedWalk(func(n *node[K]) { total += n.count() })
	return total
}

// Keys returns the distinct keys in ascending order, with the same
// consistency caveat as Items.
func (m *Multiset[K]) Keys() []K {
	var keys []K
	m.guardedWalk(func(n *node[K]) { keys = append(keys, n.key) })
	return keys
}

// ReclaimStats returns the session handle's reclamation counters: how many
// retired nodes/descriptors it has recycled and reused. Intended for tests
// and instrumentation.
func (s Session[K]) ReclaimStats() reclaim.Stats {
	return s.h.Process().Reclaimer().Stats()
}

// CheckInvariants verifies the paper's Invariant 3 on a quiescent multiset:
// the list is strictly sorted, terminates at the tail sentinel, interior
// counts are positive, and no reachable node is finalized. It returns an
// error describing the first violation found. Intended for tests.
func (m *Multiset[K]) CheckInvariants() (err error) {
	template.Guarded(func() { err = m.checkInvariants() })
	return err
}

func (m *Multiset[K]) checkInvariants() error {
	if m.head.rec.Finalized() {
		return fmt.Errorf("head sentinel is finalized")
	}
	prev := m.head
	cur := m.head.next()
	for {
		if cur == nil {
			return fmt.Errorf("list does not terminate at the tail sentinel")
		}
		if cur.rec.Finalized() {
			return fmt.Errorf("reachable node (key %v) is finalized", cur.key)
		}
		if cur.kind == kindTail {
			return nil
		}
		if prev.kind == kindInterior && cur.key <= prev.key {
			return fmt.Errorf("keys out of order: %v then %v", prev.key, cur.key)
		}
		if cur.count() <= 0 {
			return fmt.Errorf("interior node %v has non-positive count %d", cur.key, cur.count())
		}
		prev, cur = cur, cur.next()
	}
}
