package multiset_test

import (
	"sync"
	"testing"
	"time"

	"pragmaprim/internal/core"
	"pragmaprim/internal/multiset"
	"pragmaprim/internal/reclaim"
	"pragmaprim/internal/template"
)

// TestRecycleHammer churns insert/delete on a small key range from several
// writer goroutines while readers traverse concurrently — the adversarial
// workload for node recycling, run under -race in CI: a node recycled while
// a guarded reader could still reach it shows up as a data race between the
// recycler's reinitialization writes and the reader's field loads.
func TestRecycleHammer(t *testing.T) {
	m := multiset.New[int]()
	const (
		writers = 4
		readers = 3
		keys    = 32
		ops     = 3000
	)
	for k := 0; k < keys; k += 2 {
		m.Insert(k, 1)
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := core.AcquireHandle()
			defer h.Release()
			s := m.Attach(h)
			for i := 0; i < ops; i++ {
				k := (w*7 + i) % keys
				s.Insert(k, 1)
				s.Delete(k, 1)
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			h := core.AcquireHandle()
			defer h.Release()
			s := m.Attach(h)
			for i := 0; i < ops; i++ {
				s.Get((r + i) % keys)
				if i%64 == 0 {
					m.Items() // full guarded traversal
				}
			}
		}(r)
	}
	wg.Wait()
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("invariants violated after recycle hammer: %v", err)
	}
	for k := 0; k < keys; k += 2 {
		if m.Get(k) < 1 {
			t.Errorf("key %d lost its baseline occurrence", k)
		}
	}
}

// TestFreelistReuseAfterWarmup asserts the point of the whole mechanism:
// after a warmup of balanced insert/delete pairs, retired nodes actually
// come back out of the freelists (reuse counter strictly positive), rather
// than every operation hitting the heap.
func TestFreelistReuseAfterWarmup(t *testing.T) {
	if !reclaim.Default.AwaitMobile(10 * time.Second) {
		t.Fatal("reclamation epoch is pinned by a stale announcement from an earlier test")
	}
	m := multiset.New[int]()
	h := core.NewHandle()
	defer h.Release()
	s := m.Attach(h)
	for k := 0; k < 64; k++ {
		s.Insert(k, 1)
	}
	for i := 0; i < 500; i++ {
		k := 1000 + i%8
		s.Insert(k, 1)
		s.Delete(k, 1)
	}
	st := s.ReclaimStats()
	if st.Retired == 0 {
		t.Fatal("deletes retired nothing")
	}
	if st.Recycled == 0 {
		t.Fatalf("no retired node survived a grace period into a freelist (stats %+v)", st)
	}
	if st.Reused == 0 {
		t.Fatalf("no freelist reuse after 500 balanced insert/delete pairs (stats %+v)", st)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}

// TestEpochStallBoundsLimbo parks one handle inside an epoch guard — the
// worst case for epoch reclamation, a reader that never finishes — and
// verifies that (a) a concurrent session keeps operating correctly, (b) its
// limbo stays bounded (overflow drops to the GC instead of growing or
// crashing), and (c) reclamation resumes once the parked handle quiesces.
// Under the amortized scheme Exit alone is not enough: the announcement
// stays published between operations, so a handle that merely finished its
// operation still pins the epoch until it quiesces (or is collected).
func TestEpochStallBoundsLimbo(t *testing.T) {
	// Announcements persist across operations now, so a handle leaked by an
	// earlier test in this binary would pin the epoch and mask the resume
	// this test asserts. Wait for the GC scavenger to clear any leftovers.
	if !reclaim.Default.AwaitMobile(10 * time.Second) {
		t.Fatal("reclamation epoch is pinned by a stale announcement from an earlier test")
	}
	m := multiset.New[int]()
	parked := core.NewHandle()
	template.Enter(parked) // park: announce an epoch and never exit

	h := core.NewHandle()
	s := m.Attach(h)
	const ops = 15000 // comfortably more than the limbo cap
	for i := 0; i < ops; i++ {
		k := 100 + i%16
		s.Insert(k, 1)
		s.Delete(k, 1)
	}
	st := s.ReclaimStats()
	if st.Recycled != 0 {
		t.Errorf("recycled %d nodes while an epoch was parked", st.Recycled)
	}
	// The cap is 16384 entries (reclaim.limboCap, sized to ride out a
	// descheduled peer's timeslice); churn produces well over twice that,
	// so an unbounded limbo would blow straight past the threshold.
	if limbo := h.Process().Reclaimer().LimboLen(); limbo > 17000 {
		t.Errorf("limbo grew to %d entries under a parked epoch; want bounded by the caps", limbo)
	}
	if st.Dropped == 0 {
		t.Error("a parked epoch must force limbo overflow to drop to the GC")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("invariants under stall: %v", err)
	}

	// Exiting the operation does NOT unpin the epoch: the announcement is
	// deliberately left published (that deferral is the whole point of the
	// amortized scheme), so it is now merely stale — and still blocking.
	template.Exit(parked)
	for i := 0; i < 500; i++ {
		k := 100 + i%16
		s.Insert(k, 1)
		s.Delete(k, 1)
	}
	if got := s.ReclaimStats().Recycled; got != 0 {
		t.Errorf("recycled %d nodes under a stale (exited but unquiesced) announcement", got)
	}

	// Quiesce unpublishes the stale announcement; reclamation resumes.
	template.Quiesce(parked)
	for i := 0; i < 500; i++ {
		k := 100 + i%16
		s.Insert(k, 1)
		s.Delete(k, 1)
	}
	if got := s.ReclaimStats().Recycled; got == 0 {
		t.Error("reclamation did not resume after the parked handle quiesced")
	}

	// Unpublish this test's own announcements so later tests in the binary
	// see a mobile epoch.
	h.Release()
	parked.Release()
}
