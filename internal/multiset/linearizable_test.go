package multiset_test

import (
	"math/rand"
	"pragmaprim/internal/history"
	"pragmaprim/internal/linearizability"
	"pragmaprim/internal/multiset"
	"sync"
	"testing"
)

// TestLinearizableHistories reproduces experiment E7 (the paper's Theorem 6):
// many small concurrent runs against the real multiset, each recorded and
// verified linearizable by the Wing-Gong checker against the sequential
// multiset specification.
func TestLinearizableHistories(t *testing.T) {
	const rounds = 60
	const procs = 3
	const opsPerProc = 5
	const keyRange = 3

	for round := 0; round < rounds; round++ {
		m := multiset.New[int]()
		rec := history.NewRecorder(procs)

		var wg sync.WaitGroup
		for g := 0; g < procs; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(round*procs + g)))
				pr := rec.Proc(g)
				for i := 0; i < opsPerProc; i++ {
					key := rng.Intn(keyRange)
					count := 1 + rng.Intn(2)
					switch rng.Intn(3) {
					case 0:
						pr.Invoke(linearizability.MultisetInput{Op: "insert", Key: key, Count: count},
							func() any { m.Insert(key, count); return nil })
					case 1:
						pr.Invoke(linearizability.MultisetInput{Op: "delete", Key: key, Count: count},
							func() any { return m.Delete(key, count) })
					default:
						pr.Invoke(linearizability.MultisetInput{Op: "get", Key: key, Count: 0},
							func() any { return m.Get(key) })
					}
				}
			}(g)
		}
		wg.Wait()

		ops := rec.Ops()
		if !linearizability.Check(linearizability.MultisetModel(), ops) {
			t.Fatalf("round %d: history not linearizable:\n%+v", round, ops)
		}
	}
}
