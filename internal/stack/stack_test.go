package stack_test

import (
	"math/rand"
	"pragmaprim/internal/history"
	"pragmaprim/internal/linearizability"
	"pragmaprim/internal/stack"
	"sync"
	"testing"
)

func TestEmptyStack(t *testing.T) {
	s := stack.New[int]()
	if _, ok := s.Pop(); ok {
		t.Error("Pop on empty = true")
	}
	if got := s.Len(); got != 0 {
		t.Errorf("Len = %d", got)
	}
}

func TestPeek(t *testing.T) {
	s := stack.New[int]()
	if _, ok := s.Peek(); ok {
		t.Error("Peek on empty = true")
	}
	s.Push(1)
	s.Push(2)
	if v, ok := s.Peek(); !ok || v != 2 {
		t.Errorf("Peek = (%d,%v), want (2,true)", v, ok)
	}
	s.Pop()
	if v, ok := s.Peek(); !ok || v != 1 {
		t.Errorf("Peek after Pop = (%d,%v), want (1,true)", v, ok)
	}
	s.Pop()
	if _, ok := s.Peek(); ok {
		t.Error("Peek on drained stack = true")
	}
}

func TestLIFOOrder(t *testing.T) {
	s := stack.New[int]()
	for i := 1; i <= 10; i++ {
		s.Push(i)
	}
	if got := s.Len(); got != 10 {
		t.Fatalf("Len = %d", got)
	}
	for i := 10; i >= 1; i-- {
		v, ok := s.Pop()
		if !ok || v != i {
			t.Fatalf("Pop = (%d,%v), want (%d,true)", v, ok, i)
		}
	}
	if _, ok := s.Pop(); ok {
		t.Fatal("Pop on drained stack = true")
	}
}

func TestDrainAfterRefill(t *testing.T) {
	s := stack.New[int]()
	for round := 0; round < 5; round++ {
		for i := 0; i < 20; i++ {
			s.Push(i)
		}
		got := s.Drain()
		if len(got) != 20 {
			t.Fatalf("round %d: drained %d", round, len(got))
		}
		for i, v := range got {
			if v != 19-i {
				t.Fatalf("round %d: out of order: %v", round, got)
			}
		}
	}
}

// TestConcurrentAllElementsSurvive: every pushed element pops exactly once.
func TestConcurrentAllElementsSurvive(t *testing.T) {
	const pushers = 4
	const perPusher = 500
	s := stack.New[int]()

	var wg sync.WaitGroup
	for g := 0; g < pushers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perPusher; i++ {
				s.Push(g*perPusher + i)
			}
		}(g)
	}
	var mu sync.Mutex
	seen := make(map[int]int)
	var pg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < pushers; g++ {
		pg.Add(1)
		go func() {
			defer pg.Done()
			for {
				v, ok := s.Pop()
				if ok {
					mu.Lock()
					seen[v]++
					mu.Unlock()
					continue
				}
				select {
				case <-stop:
					for {
						v, ok := s.Pop()
						if !ok {
							return
						}
						mu.Lock()
						seen[v]++
						mu.Unlock()
					}
				default:
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	pg.Wait()

	if len(seen) != pushers*perPusher {
		t.Fatalf("saw %d distinct elements, want %d", len(seen), pushers*perPusher)
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("element %d popped %d times", v, n)
		}
	}
}

// TestConcurrentChurnConservation mirrors the queue churn test.
func TestConcurrentChurnConservation(t *testing.T) {
	const procs = 6
	const perProc = 500
	s := stack.New[int]()
	pushes := make([]int64, procs)
	pops := make([]int64, procs)

	var wg sync.WaitGroup
	for g := 0; g < procs; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < perProc; i++ {
				if rng.Intn(2) == 0 {
					s.Push(g*perProc + i)
					pushes[g]++
				} else if _, ok := s.Pop(); ok {
					pops[g]++
				}
			}
		}(g)
	}
	wg.Wait()

	var totalPush, totalPop int64
	for g := 0; g < procs; g++ {
		totalPush += pushes[g]
		totalPop += pops[g]
	}
	if got := int64(s.Len()); got != totalPush-totalPop {
		t.Fatalf("Len = %d, want %d", got, totalPush-totalPop)
	}
	dup := make(map[int]bool)
	for _, v := range s.Drain() {
		if dup[v] {
			t.Fatalf("duplicate element %d survived", v)
		}
		dup[v] = true
	}
}

// TestLinearizableHistories checks recorded concurrent histories against
// the sequential LIFO specification.
func TestLinearizableHistories(t *testing.T) {
	const rounds = 60
	const procs = 3
	const opsPerProc = 5

	for round := 0; round < rounds; round++ {
		s := stack.New[int]()
		rec := history.NewRecorder(procs)
		var wg sync.WaitGroup
		for g := 0; g < procs; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(round*procs + g + 202)))
				pr := rec.Proc(g)
				for i := 0; i < opsPerProc; i++ {
					if rng.Intn(2) == 0 {
						v := g*100 + i
						pr.Invoke(linearizability.SeqInput{Op: "push", Val: v},
							func() any { s.Push(v); return nil })
					} else {
						pr.Invoke(linearizability.SeqInput{Op: "pop"},
							func() any { v, ok := s.Pop(); return [2]any{v, ok} })
					}
				}
			}(g)
		}
		wg.Wait()
		if !linearizability.Check(linearizability.StackModel(), rec.Ops()) {
			t.Fatalf("round %d: history not linearizable:\n%+v", round, rec.Ops())
		}
	}
}
