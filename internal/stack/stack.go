// Package stack implements a non-blocking LIFO stack on the LLX/SCX
// primitives — the Treiber stack restated in the paper's template. The
// entry point's top pointer is the only mutable word; cells are fully
// immutable, and each pop finalizes exactly the cell it unlinks. Because
// SCX boxes new values freshly, the classic Treiber ABA hazard (top
// returning to a previously seen cell) is ruled out by construction.
package stack

import (
	"pragmaprim/internal/core"
)

const entryTop = 0 // *cell[T]: top of stack

// cell is one stack cell; both fields are immutable, so cells are
// Data-records with zero mutable fields.
type cell[T any] struct {
	rec  *core.Record
	val  T
	next *cell[T]
}

func newCell[T any](val T, next *cell[T]) *cell[T] {
	c := &cell[T]{val: val, next: next}
	c.rec = core.NewRecord(0, nil, c)
	return c
}

// Stack is a non-blocking LIFO stack. The zero value is not usable; create
// one with New. All methods are safe for concurrent use provided each
// goroutine passes its own *core.Process.
type Stack[T any] struct {
	entry *core.Record // the sole entry point; never finalized
}

// New creates an empty stack.
func New[T any]() *Stack[T] {
	return &Stack[T]{entry: core.NewRecord(1, []any{nil})}
}

func (s *Stack[T]) top() *cell[T] {
	t, _ := s.entry.Read(entryTop).(*cell[T])
	return t
}

// Push adds val on top.
func (s *Stack[T]) Push(proc *core.Process, val T) {
	// Reusable snapshot buffer (core.LLXInto): retries allocate nothing
	// beyond the cell being pushed.
	var entryBuf [1]any
	for {
		localEntry, st := proc.LLXInto(s.entry, entryBuf[:])
		if st != core.LLXOK {
			continue
		}
		topCell, _ := localEntry[entryTop].(*cell[T])
		if proc.SCX([]*core.Record{s.entry}, nil, s.entry.Field(entryTop),
			newCell(val, topCell)) {
			return
		}
	}
}

// Pop removes and returns the top element; ok is false when the stack is
// (momentarily) empty.
func (s *Stack[T]) Pop(proc *core.Process) (T, bool) {
	var zero T
	var entryBuf [1]any
	for {
		localEntry, st := proc.LLXInto(s.entry, entryBuf[:])
		if st != core.LLXOK {
			continue
		}
		topCell, _ := localEntry[entryTop].(*cell[T])
		if topCell == nil {
			// The LLX snapshot itself is the atomic emptiness witness.
			return zero, false
		}
		// Cells have no mutable fields: a nil buffer links without allocating.
		if _, st := proc.LLXInto(topCell.rec, nil); st != core.LLXOK {
			continue
		}
		if proc.SCX([]*core.Record{s.entry, topCell.rec},
			[]*core.Record{topCell.rec},
			s.entry.Field(entryTop), topCell.next) {
			return topCell.val, true
		}
	}
}

// Len counts the cells seen by one traversal: exact when quiescent, weakly
// consistent under concurrency.
func (s *Stack[T]) Len() int {
	n := 0
	for c := s.top(); c != nil; c = c.next {
		n++
	}
	return n
}

// Drain pops everything currently observable, returning values in LIFO
// order. Intended for quiescent use in tests.
func (s *Stack[T]) Drain(proc *core.Process) []T {
	var out []T
	for {
		v, ok := s.Pop(proc)
		if !ok {
			return out
		}
		out = append(out, v)
	}
}
