// Package stack implements a non-blocking LIFO stack on the LLX/SCX
// primitives — the Treiber stack restated in the paper's template. The
// entry point's top pointer is the only mutable word; cells are fully
// immutable, and each pop finalizes exactly the cell it unlinks. Push and
// Pop run on the internal/template engine like every other structure.
//
// Storage is de-boxed (the top pointer is a raw pointer word) and popped
// cells are recycled through internal/reclaim. The classic Treiber ABA
// hazard — top returning to a previously seen cell address — is excluded
// the paper's way for the protocol (a stale helper can act only while the
// entry's info chain still designates its descriptor) and by the epoch
// grace periods for storage reuse (a cell's address cannot be re-pushed
// while any process that could still expect its old identity is inside an
// operation).
//
// Methods never take a *core.Process: plain calls acquire a pooled Handle
// per operation, and hot paths bind one with Attach.
package stack

import (
	"unsafe"

	"pragmaprim/internal/core"
	"pragmaprim/internal/reclaim"
	"pragmaprim/internal/template"
)

const entryTop = 0 // ptr 0 of the entry record: top of stack

// cell is one stack cell; both fields are immutable while published, so
// cells are Data-records with zero mutable fields. The record is embedded:
// cell plus record are one allocation, recycled together.
type cell[T any] struct {
	rec  core.Record
	val  T
	next *cell[T]
}

// Stack is a non-blocking LIFO stack. The zero value is not usable; create
// one with New. All methods are safe for concurrent use.
type Stack[T any] struct {
	entry     *core.Record // the sole entry point; never finalized
	pool      *reclaim.Pool[cell[T]]
	policy    template.Policy
	pushStats template.OpStats
	popStats  template.OpStats
}

// New creates an empty stack.
func New[T any]() *Stack[T] {
	s := &Stack[T]{
		entry: core.NewTypedRecord(0, 1),
		pool:  reclaim.NewPool[cell[T]](),
	}
	// Rewind records as cells enter the freelists, releasing the
	// descriptors their info fields would otherwise park (see reclaim).
	s.pool.SetOnFree(func(c *cell[T]) { c.rec.Recycle() })
	return s
}

// newCell builds (or recycles) a fully initialized, unpublished cell.
func (s *Stack[T]) newCell(l *reclaim.Local, val T, next *cell[T]) *cell[T] {
	c := s.pool.Get(l)
	if c == nil {
		c = &cell[T]{}
		core.InitRecord(&c.rec, 0, 0)
	} else {
		c.rec.Recycle()
	}
	c.val, c.next = val, next
	return c
}

// SetPolicy installs the retry policy updates back off with; nil (the
// default) retries immediately. Call before sharing the stack.
func (s *Stack[T]) SetPolicy(p template.Policy) { s.policy = p }

// EngineStats returns the template engine's aggregate attempt/failure
// counters across all update operations.
func (s *Stack[T]) EngineStats() template.Counters {
	return s.pushStats.Snapshot().Add(s.popStats.Snapshot())
}

// StatsByOp returns the engine counters broken out per operation.
func (s *Stack[T]) StatsByOp() map[string]template.Counters {
	return map[string]template.Counters{
		"push": s.pushStats.Snapshot(),
		"pop":  s.popStats.Snapshot(),
	}
}

// Session is a Handle-bound view of a Stack: the hot-path API for a
// goroutine performing many operations. Not safe for concurrent use; any
// number of Sessions may share the Stack.
type Session[T any] struct {
	s *Stack[T]
	h *core.Handle
}

// Attach binds a Session to h. The caller keeps ownership of h.
func (s *Stack[T]) Attach(h *core.Handle) Session[T] {
	return Session[T]{s: s, h: h}
}

// Handle returns the Session's Handle.
func (v Session[T]) Handle() *core.Handle { return v.h }

func (s *Stack[T]) top() *cell[T] {
	return (*cell[T])(s.entry.Ptr(entryTop))
}

// Push adds val on top using a pooled Handle; see Session.Push for the
// hot-path form.
func (s *Stack[T]) Push(val T) {
	h := core.AcquireHandle()
	s.Attach(h).Push(val)
	h.Release()
}

// Pop removes the top element using a pooled Handle; see Session.Pop for
// the hot-path form.
func (s *Stack[T]) Pop() (T, bool) {
	h := core.AcquireHandle()
	v, ok := s.Attach(h).Pop()
	h.Release()
	return v, ok
}

// Push adds val on top.
func (v Session[T]) Push(val T) {
	s := v.s
	var fresh *cell[T] // built at most once per operation; retries retarget it
	template.Run(v.h, s.policy, &s.pushStats, func(c *template.Ctx) (struct{}, template.Action) {
		localEntry, st := c.LLXF(s.entry)
		if st != core.LLXOK {
			return struct{}{}, template.Retry
		}
		topCell := (*cell[T])(localEntry.Ptr(entryTop))
		if fresh == nil {
			fresh = s.newCell(c.Reclaim(), val, topCell)
		} else {
			fresh.next = topCell
		}
		if c.SCXPtr([]*core.Record{s.entry}, nil, s.entry.PtrField(entryTop),
			unsafe.Pointer(fresh)) {
			return struct{}{}, template.Done
		}
		return struct{}{}, template.Retry
	})
}

// popResult carries Pop's two return values through the engine.
type popResult[T any] struct {
	val T
	ok  bool
}

// Pop removes and returns the top element; ok is false when the stack is
// (momentarily) empty.
func (v Session[T]) Pop() (T, bool) {
	s := v.s
	res := template.Run(v.h, s.policy, &s.popStats, func(c *template.Ctx) (popResult[T], template.Action) {
		localEntry, st := c.LLXF(s.entry)
		if st != core.LLXOK {
			return popResult[T]{}, template.Retry
		}
		topCell := (*cell[T])(localEntry.Ptr(entryTop))
		if topCell == nil {
			// The LLX snapshot itself is the atomic emptiness witness.
			return popResult[T]{}, template.Done
		}
		// Cells have no mutable fields: their LLX links without copying.
		if _, st := c.LLXF(&topCell.rec); st != core.LLXOK {
			return popResult[T]{}, template.Retry
		}
		if c.SCXPtr([]*core.Record{s.entry, &topCell.rec},
			[]*core.Record{&topCell.rec},
			s.entry.PtrField(entryTop), unsafe.Pointer(topCell.next)) {
			val := topCell.val
			s.pool.Retire(c.Reclaim(), topCell)
			return popResult[T]{val: val, ok: true}, template.Done
		}
		return popResult[T]{}, template.Retry
	})
	return res.val, res.ok
}

// Peek returns the top element without removing it; ok is false when the
// stack is (momentarily) empty. It is a plain read of the entry point's top
// pointer under a pooled handle's epoch guard: O(1), weakly consistent
// under concurrency.
func (s *Stack[T]) Peek() (val T, ok bool) {
	template.Guarded(func() {
		if t := s.top(); t != nil {
			val, ok = t.val, true
		}
	})
	return val, ok
}

// Len counts the cells seen by one traversal: exact when quiescent, weakly
// consistent under concurrency.
func (s *Stack[T]) Len() (n int) {
	template.Guarded(func() {
		for c := s.top(); c != nil; c = c.next {
			n++
		}
	})
	return n
}

// Items returns the values seen by one traversal in LIFO order (top first):
// exact when quiescent, weakly consistent under concurrency. Like Len it
// walks under a single epoch guard, so no cell is reclaimed mid-scan.
func (s *Stack[T]) Items() []T {
	var out []T
	template.Guarded(func() {
		for c := s.top(); c != nil; c = c.next {
			out = append(out, c.val)
		}
	})
	return out
}

// Drain pops everything currently observable, returning values in LIFO
// order. Intended for quiescent use in tests.
func (s *Stack[T]) Drain() []T {
	h := core.AcquireHandle()
	defer h.Release()
	sess := s.Attach(h)
	var out []T
	for {
		v, ok := sess.Pop()
		if !ok {
			return out
		}
		out = append(out, v)
	}
}
