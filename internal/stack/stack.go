// Package stack implements a non-blocking LIFO stack on the LLX/SCX
// primitives — the Treiber stack restated in the paper's template. The
// entry point's top pointer is the only mutable word; cells are fully
// immutable, and each pop finalizes exactly the cell it unlinks. Because
// SCX boxes new values freshly, the classic Treiber ABA hazard (top
// returning to a previously seen cell) is ruled out by construction. Push
// and Pop run on the internal/template engine like every other structure.
//
// Methods never take a *core.Process: plain calls acquire a pooled Handle
// per operation, and hot paths bind one with Attach.
package stack

import (
	"pragmaprim/internal/core"
	"pragmaprim/internal/template"
)

const entryTop = 0 // *cell[T]: top of stack

// cell is one stack cell; both fields are immutable, so cells are
// Data-records with zero mutable fields.
type cell[T any] struct {
	rec  *core.Record
	val  T
	next *cell[T]
}

func newCell[T any](val T, next *cell[T]) *cell[T] {
	c := &cell[T]{val: val, next: next}
	c.rec = core.NewRecord(0, nil, c)
	return c
}

// Stack is a non-blocking LIFO stack. The zero value is not usable; create
// one with New. All methods are safe for concurrent use.
type Stack[T any] struct {
	entry     *core.Record // the sole entry point; never finalized
	policy    template.Policy
	pushStats template.OpStats
	popStats  template.OpStats
}

// New creates an empty stack.
func New[T any]() *Stack[T] {
	return &Stack[T]{entry: core.NewRecord(1, []any{nil})}
}

// SetPolicy installs the retry policy updates back off with; nil (the
// default) retries immediately. Call before sharing the stack.
func (s *Stack[T]) SetPolicy(p template.Policy) { s.policy = p }

// EngineStats returns the template engine's aggregate attempt/failure
// counters across all update operations.
func (s *Stack[T]) EngineStats() template.Counters {
	return s.pushStats.Snapshot().Add(s.popStats.Snapshot())
}

// StatsByOp returns the engine counters broken out per operation.
func (s *Stack[T]) StatsByOp() map[string]template.Counters {
	return map[string]template.Counters{
		"push": s.pushStats.Snapshot(),
		"pop":  s.popStats.Snapshot(),
	}
}

// Session is a Handle-bound view of a Stack: the hot-path API for a
// goroutine performing many operations. Not safe for concurrent use; any
// number of Sessions may share the Stack.
type Session[T any] struct {
	s *Stack[T]
	h *core.Handle
}

// Attach binds a Session to h. The caller keeps ownership of h.
func (s *Stack[T]) Attach(h *core.Handle) Session[T] {
	return Session[T]{s: s, h: h}
}

// Handle returns the Session's Handle.
func (v Session[T]) Handle() *core.Handle { return v.h }

func (s *Stack[T]) top() *cell[T] {
	t, _ := s.entry.Read(entryTop).(*cell[T])
	return t
}

// Push adds val on top using a pooled Handle; see Session.Push for the
// hot-path form.
func (s *Stack[T]) Push(val T) {
	h := core.AcquireHandle()
	s.Attach(h).Push(val)
	h.Release()
}

// Pop removes the top element using a pooled Handle; see Session.Pop for
// the hot-path form.
func (s *Stack[T]) Pop() (T, bool) {
	h := core.AcquireHandle()
	v, ok := s.Attach(h).Pop()
	h.Release()
	return v, ok
}

// Push adds val on top.
func (v Session[T]) Push(val T) {
	s := v.s
	template.Run(v.h, s.policy, &s.pushStats, func(c *template.Ctx) (struct{}, template.Action) {
		localEntry, st := c.LLX(s.entry)
		if st != core.LLXOK {
			return struct{}{}, template.Retry
		}
		topCell, _ := localEntry[entryTop].(*cell[T])
		if c.SCX([]*core.Record{s.entry}, nil, s.entry.Field(entryTop),
			newCell(val, topCell)) {
			return struct{}{}, template.Done
		}
		return struct{}{}, template.Retry
	})
}

// popResult carries Pop's two return values through the engine.
type popResult[T any] struct {
	val T
	ok  bool
}

// Pop removes and returns the top element; ok is false when the stack is
// (momentarily) empty.
func (v Session[T]) Pop() (T, bool) {
	s := v.s
	res := template.Run(v.h, s.policy, &s.popStats, func(c *template.Ctx) (popResult[T], template.Action) {
		localEntry, st := c.LLX(s.entry)
		if st != core.LLXOK {
			return popResult[T]{}, template.Retry
		}
		topCell, _ := localEntry[entryTop].(*cell[T])
		if topCell == nil {
			// The LLX snapshot itself is the atomic emptiness witness.
			return popResult[T]{}, template.Done
		}
		// Cells have no mutable fields: their LLX links without a buffer.
		if _, st := c.LLX(topCell.rec); st != core.LLXOK {
			return popResult[T]{}, template.Retry
		}
		if c.SCX([]*core.Record{s.entry, topCell.rec},
			[]*core.Record{topCell.rec},
			s.entry.Field(entryTop), topCell.next) {
			return popResult[T]{val: topCell.val, ok: true}, template.Done
		}
		return popResult[T]{}, template.Retry
	})
	return res.val, res.ok
}

// Peek returns the top element without removing it; ok is false when the
// stack is (momentarily) empty. It is a plain read of the entry point's top
// pointer: O(1), no Handle, weakly consistent under concurrency.
func (s *Stack[T]) Peek() (T, bool) {
	if t := s.top(); t != nil {
		return t.val, true
	}
	var zero T
	return zero, false
}

// Len counts the cells seen by one traversal: exact when quiescent, weakly
// consistent under concurrency.
func (s *Stack[T]) Len() int {
	n := 0
	for c := s.top(); c != nil; c = c.next {
		n++
	}
	return n
}

// Drain pops everything currently observable, returning values in LIFO
// order. Intended for quiescent use in tests.
func (s *Stack[T]) Drain() []T {
	h := core.AcquireHandle()
	defer h.Release()
	sess := s.Attach(h)
	var out []T
	for {
		v, ok := sess.Pop()
		if !ok {
			return out
		}
		out = append(out, v)
	}
}
