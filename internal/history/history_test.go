package history_test

import (
	"sync"
	"testing"

	"pragmaprim/internal/history"
)

func TestInvokeRecordsTimestampsAndPayload(t *testing.T) {
	rec := history.NewRecorder(1)
	p := rec.Proc(0)
	p.Invoke("in1", func() any { return "out1" })
	p.Invoke("in2", func() any { return nil })

	ops := rec.Ops()
	if len(ops) != 2 {
		t.Fatalf("len(ops) = %d", len(ops))
	}
	if ops[0].Input != "in1" || ops[0].Output != "out1" {
		t.Errorf("op0 = %+v", ops[0])
	}
	if ops[1].Input != "in2" || ops[1].Output != nil {
		t.Errorf("op1 = %+v", ops[1])
	}
	if !(ops[0].Call < ops[0].Return && ops[0].Return < ops[1].Call && ops[1].Call < ops[1].Return) {
		t.Errorf("timestamps not strictly ordered: %+v", ops)
	}
}

func TestOpsSortedByCallAcrossProcs(t *testing.T) {
	rec := history.NewRecorder(3)
	// Interleave invocations across processes from one goroutine so the
	// expected global order is deterministic.
	for i := 0; i < 9; i++ {
		rec.Proc(i%3).Invoke(i, func() any { return nil })
	}
	ops := rec.Ops()
	if len(ops) != 9 {
		t.Fatalf("len(ops) = %d", len(ops))
	}
	for i := 1; i < len(ops); i++ {
		if ops[i-1].Call >= ops[i].Call {
			t.Fatalf("ops not sorted by Call at %d", i)
		}
	}
	for i, op := range ops {
		if op.Input != i {
			t.Errorf("op %d input = %v", i, op.Input)
		}
		if op.Proc != i%3 {
			t.Errorf("op %d proc = %d, want %d", i, op.Proc, i%3)
		}
	}
}

func TestConcurrentRecordingTimestampsUnique(t *testing.T) {
	const procs = 4
	const perProc = 200
	rec := history.NewRecorder(procs)
	var wg sync.WaitGroup
	for g := 0; g < procs; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			p := rec.Proc(g)
			for i := 0; i < perProc; i++ {
				p.Invoke(i, func() any { return i })
			}
		}(g)
	}
	wg.Wait()

	ops := rec.Ops()
	if len(ops) != procs*perProc {
		t.Fatalf("len(ops) = %d", len(ops))
	}
	seen := make(map[int64]bool, 2*len(ops))
	for _, op := range ops {
		if op.Call >= op.Return {
			t.Fatalf("op has Call >= Return: %+v", op)
		}
		for _, ts := range []int64{op.Call, op.Return} {
			if seen[ts] {
				t.Fatalf("duplicate timestamp %d", ts)
			}
			seen[ts] = true
		}
	}
}
