// Package history records concurrent operation histories — invocation and
// response ordering plus inputs and outputs — for offline linearizability
// checking (experiment E7 reproduces the paper's Theorem 6 this way). A
// global atomic counter provides the real-time order; two events get
// distinct timestamps, so "op A returned before op B was invoked" is
// unambiguous.
package history

import (
	"sort"
	"sync/atomic"
)

// Op is one completed operation in a history.
type Op struct {
	Proc   int   // recording process id
	Call   int64 // timestamp immediately before invocation
	Return int64 // timestamp immediately after response
	Input  any   // operation description (model-specific)
	Output any   // observed response (model-specific)
}

// Recorder collects a history from a fixed set of processes with no
// cross-process synchronization beyond the shared clock. Create with
// NewRecorder; hand each goroutine its own ProcRecorder.
type Recorder struct {
	clock atomic.Int64
	procs []ProcRecorder
}

// NewRecorder returns a recorder for procs processes.
func NewRecorder(procs int) *Recorder {
	r := &Recorder{procs: make([]ProcRecorder, procs)}
	for i := range r.procs {
		r.procs[i].rec = r
		r.procs[i].proc = i
	}
	return r
}

// Proc returns process i's recorder. Each ProcRecorder belongs to a single
// goroutine.
func (r *Recorder) Proc(i int) *ProcRecorder { return &r.procs[i] }

// Ops returns every recorded operation, sorted by invocation time. Call it
// only after all recording goroutines have finished.
func (r *Recorder) Ops() []Op {
	var ops []Op
	for i := range r.procs {
		ops = append(ops, r.procs[i].ops...)
	}
	sort.Slice(ops, func(a, b int) bool { return ops[a].Call < ops[b].Call })
	return ops
}

// ProcRecorder records the operations of one process.
type ProcRecorder struct {
	rec  *Recorder
	proc int
	ops  []Op
}

// Invoke runs f as one operation with the given input description and
// records its timestamps and output.
func (p *ProcRecorder) Invoke(input any, f func() any) {
	call := p.rec.clock.Add(1)
	out := f()
	ret := p.rec.clock.Add(1)
	p.ops = append(p.ops, Op{
		Proc:   p.proc,
		Call:   call,
		Return: ret,
		Input:  input,
		Output: out,
	})
}
