// Package container defines the typed interface every structure in this
// repository is driven through by the layers above it — the experiment
// harness, the shard wrapper (internal/shard), the stress binary, and the
// benchmarks. It replaces the harness's former duck-typed session layer,
// whose operations discarded their results, with a contract that returns
// them: every operation reports what it observed or applied, which is what
// lets throughput runs cross-check conservation invariants and lets the
// sharding layer stay agnostic of the structure it partitions.
//
// The key type is int throughout: the workload generators (internal/
// workload) speak int keys, and every structure here either stores ints
// directly or embeds them losslessly (the trie widens to uint64).
//
// Two usage levels mirror the structures' own APIs:
//
//   - Container is the shared instance: safe for concurrent use, the unit a
//     factory builds and the shard wrapper partitions.
//   - Session is one worker's exclusive view: for the LLX/SCX structures it
//     binds a pooled core.Handle, so a goroutine that performs many
//     operations pays the Handle acquisition once. Close releases it.
//
// Adapters for all seven structures live in adapters.go. Keyed structures
// (multiset, BST, trie, the two lock lists) map Get/Insert/Delete onto
// lookup/add/remove of the key; the queue and stack adapt as
// produce/consume containers — Insert produces the key, Delete consumes
// whatever is at the structure's removal end, and Get peeks at it — so the
// throughput experiments can drive all five LLX/SCX structures with one
// workload shape.
package container

import "pragmaprim/internal/template"

// Session is one worker's view onto a shared Container. A Session is not
// safe for concurrent use; the Container behind it is. Every operation
// returns what happened, so callers can account for applied effects.
type Session interface {
	// Get looks key up (keyed adapters) or peeks at the removal end
	// (produce/consume adapters); it reports whether an element was found.
	Get(key int) bool
	// Insert adds key — one occurrence, a mapping, or a produced element —
	// and reports whether the container grew. Multiset and produce/consume
	// inserts always apply; map inserts report false when they replaced an
	// existing mapping in place.
	Insert(key int) bool
	// Delete removes key (keyed) or consumes one element (produce/consume)
	// and reports whether the container shrank.
	Delete(key int) bool
	// Count returns the number of occurrences of key under the adapter's
	// accounting — the multiset count, 0 or 1 for the map adapters — or -1
	// when the adapter cannot count one key (the produce/consume adapters,
	// whose Delete consumes an arbitrary element). The durability layer's
	// crash harness audits per-key conservation through this.
	Count(key int) int
	// BatchStart opens one epoch read guard covering a run of consecutive
	// operations, so the per-operation guards inside them collapse into
	// counter bumps (reclaim.Local.Enter/Exit nest). The serving layer
	// wraps each decoded request batch in BatchStart/BatchEnd: one guard
	// per batch instead of one per op. The guard must not be held across
	// blocking I/O — it pins the reclamation epoch for as long as it is
	// open — and BatchEnd must be called before Quiesce. Lock-based
	// sessions no-op.
	BatchStart()
	// BatchEnd closes the guard opened by the matching BatchStart.
	BatchEnd()
	// Quiesce declares that the session's owner holds no references into
	// the container and may go idle for a while (a connection blocking on
	// its socket, a worker parking on a channel). LLX/SCX sessions
	// unpublish their epoch announcement — left published and stale, it
	// would delay memory reclamation for every structure in the domain —
	// and the lock baselines no-op. Call it between operations only (never
	// inside an open BatchStart); the session remains fully usable
	// afterwards.
	Quiesce()
	// Close releases per-session resources (the pooled Handle of an
	// LLX/SCX session). The Session must not be used afterwards.
	Close()
}

// Container is one shared structure under test. All methods are safe for
// concurrent use.
type Container interface {
	// NewSession creates one worker's session onto the structure.
	NewSession() Session
	// EngineStats reports the aggregate template-engine attempt/failure
	// counters; zero-valued for structures that do not run on the engine
	// (the lock baselines).
	EngineStats() template.Counters
	// StatsByOp breaks the engine counters out per operation; nil or empty
	// for structures outside the engine.
	StatsByOp() map[string]template.Counters
	// Size returns the container's cardinality under the adapter's
	// accounting: total occurrence count for multisets, distinct keys for
	// maps, element count for the queue and stack. It is exact on a
	// quiescent container and weakly consistent under concurrency, and it
	// is conserved by construction: Size changes by +1 for every applied
	// Insert and -1 for every applied Delete — the invariant the harness
	// cross-checks after every throughput run.
	Size() int
	// Range calls fn with every (key, count) pair in the container until fn
	// returns false. Like Size it is exact when quiescent and weakly
	// consistent under concurrency; the LLX/SCX structures iterate under the
	// epoch protocol's read guard. The snapshot layer builds its consistent
	// point-in-time scans on Range plus an external write barrier.
	Range(fn func(key, count int) bool)
}
