package container_test

import (
	"math/rand"
	"testing"

	"pragmaprim/internal/bst"
	"pragmaprim/internal/container"
	"pragmaprim/internal/lockds"
	"pragmaprim/internal/multiset"
	"pragmaprim/internal/queue"
	"pragmaprim/internal/stack"
	"pragmaprim/internal/template"
	"pragmaprim/internal/trie"
)

// fixture builds one fresh container of each adapted structure.
type fixture struct {
	name string
	// keyed reports whether Get/Delete address the inserted key (maps,
	// multisets) rather than the removal end (queue, stack).
	keyed bool
	// multi reports whether repeated Inserts of one key all apply.
	multi bool
	build func() container.Container
}

func fixtures() []fixture {
	return []fixture{
		{"multiset", true, true, func() container.Container { return container.Multiset(multiset.New[int]()) }},
		{"bst", true, false, func() container.Container { return container.BST(bst.New[int, int]()) }},
		{"trie", true, false, func() container.Container { return container.Trie(trie.New[int]()) }},
		{"queue", false, true, func() container.Container { return container.Queue(queue.New[int]()) }},
		{"stack", false, true, func() container.Container { return container.Stack(stack.New[int]()) }},
		{"coarse-lock", true, true, func() container.Container { return container.CoarseLock(lockds.NewCoarse()) }},
		{"fine-lock", true, true, func() container.Container { return container.FineLock(lockds.NewFine()) }},
	}
}

// TestResultSemantics pins the shared op-result contract: a first Insert
// applies, Get then finds the element, a Delete applies, and once the
// container is empty again both Delete and Get report false.
func TestResultSemantics(t *testing.T) {
	for _, fx := range fixtures() {
		t.Run(fx.name, func(t *testing.T) {
			c := fx.build()
			s := c.NewSession()
			defer s.Close()

			if s.Get(5) {
				t.Error("Get on empty container = true")
			}
			if s.Delete(5) {
				t.Error("Delete on empty container = true")
			}
			if !s.Insert(5) {
				t.Error("first Insert = false")
			}
			if !s.Get(5) {
				t.Error("Get after Insert = false")
			}
			if got := c.Size(); got != 1 {
				t.Errorf("Size after one Insert = %d, want 1", got)
			}
			if got, want := s.Insert(5), fx.multi; got != want {
				t.Errorf("second Insert of same key = %v, want %v", got, want)
			}
			for c.Size() > 0 {
				if !s.Delete(5) {
					t.Fatal("Delete = false while Size > 0")
				}
			}
			if s.Delete(5) || s.Get(5) {
				t.Error("Delete/Get on emptied container = true")
			}
		})
	}
}

// TestQueueStackOrdering pins the produce/consume adapters to their
// structures' removal order: the adapter must not reorder or invent
// elements, it only widens the interface.
func TestQueueStackOrdering(t *testing.T) {
	q := queue.New[int]()
	s := container.Queue(q).NewSession()
	defer s.Close()
	s.Insert(1)
	s.Insert(2)
	if v, _ := q.Peek(); v != 1 {
		t.Errorf("queue Peek = %d, want 1 (FIFO head)", v)
	}
	s.Delete(0)
	if v, _ := q.Peek(); v != 2 {
		t.Errorf("queue Peek after Delete = %d, want 2", v)
	}

	st := stack.New[int]()
	ss := container.Stack(st).NewSession()
	defer ss.Close()
	ss.Insert(1)
	ss.Insert(2)
	if v, _ := st.Peek(); v != 2 {
		t.Errorf("stack Peek = %d, want 2 (LIFO top)", v)
	}
	ss.Delete(0)
	if v, _ := st.Peek(); v != 1 {
		t.Errorf("stack Peek after Delete = %d, want 1", v)
	}
}

// TestSizeConservation drives every adapter with a random single-threaded
// op sequence and checks the invariant the harness relies on: Size equals
// applied inserts minus applied deletes.
func TestSizeConservation(t *testing.T) {
	for _, fx := range fixtures() {
		t.Run(fx.name, func(t *testing.T) {
			c := fx.build()
			s := c.NewSession()
			defer s.Close()
			rng := rand.New(rand.NewSource(42))
			net := 0
			for i := 0; i < 2000; i++ {
				key := rng.Intn(64)
				switch rng.Intn(3) {
				case 0:
					if s.Insert(key) {
						net++
					}
				case 1:
					if s.Delete(key) {
						net--
					}
				default:
					s.Get(key)
				}
			}
			if got := c.Size(); got != net {
				t.Errorf("Size = %d, want applied net %d", got, net)
			}
		})
	}
}

// TestEngineStatsWiring checks the LLX/SCX adapters surface their engine
// counters (and the lock baselines stay at zero).
func TestEngineStatsWiring(t *testing.T) {
	for _, fx := range fixtures() {
		t.Run(fx.name, func(t *testing.T) {
			c := fx.build()
			s := c.NewSession()
			defer s.Close()
			for k := 0; k < 10; k++ {
				s.Insert(k)
				s.Delete(k)
			}
			got := c.EngineStats()
			engined := fx.name != "coarse-lock" && fx.name != "fine-lock"
			if engined {
				if got.Ops < 20 {
					t.Errorf("EngineStats.Ops = %d, want >= 20", got.Ops)
				}
				if got.Attempts < got.Ops {
					t.Errorf("Attempts %d < Ops %d", got.Attempts, got.Ops)
				}
				if len(c.StatsByOp()) == 0 {
					t.Error("StatsByOp empty for an engine-backed structure")
				}
			} else if got != (template.Counters{}) {
				t.Errorf("lock baseline EngineStats = %+v, want zero", got)
			}
		})
	}
}
