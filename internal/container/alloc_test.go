package container_test

import (
	"testing"

	"pragmaprim/internal/container"
	"pragmaprim/internal/multiset"
	"pragmaprim/internal/queue"
	"pragmaprim/internal/stack"
)

// Allocation pins for the container adapters. With de-boxed records and
// epoch recycling, a warm produce/consume roundtrip through the queue and
// stack adapters — and the multiset's bump/get — touches the heap not at
// all: nodes come from the freelists, descriptors are recycled, sessions
// hold pooled handles.

func warmPin(t *testing.T, name string, warm, op func(), want float64) {
	t.Helper()
	for i := 0; i < 256; i++ {
		warm()
	}
	if allocs := testing.AllocsPerRun(1000, op); allocs > want {
		t.Errorf("%s: %v allocs/op warm, want <= %v", name, allocs, want)
	}
}

func TestQueueAdapterAllocFree(t *testing.T) {
	c := container.Queue(queue.New[int]())
	s := c.NewSession()
	defer s.Close()
	roundtrip := func() {
		s.Insert(7)
		s.Delete(0)
	}
	warmPin(t, "queue insert+delete", roundtrip, roundtrip, 0)
	warmPin(t, "queue peek", func() { s.Insert(1) }, func() { s.Get(0) }, 0)
}

func TestStackAdapterAllocFree(t *testing.T) {
	c := container.Stack(stack.New[int]())
	s := c.NewSession()
	defer s.Close()
	roundtrip := func() {
		s.Insert(7)
		s.Delete(0)
	}
	warmPin(t, "stack push+pop", roundtrip, roundtrip, 0)
	warmPin(t, "stack peek", func() { s.Insert(1) }, func() { s.Get(0) }, 0)
}

func TestMultisetAdapterAllocFree(t *testing.T) {
	c := container.Multiset(multiset.New[int]())
	s := c.NewSession()
	defer s.Close()
	s.Insert(1)
	warmPin(t, "multiset bump", func() { s.Insert(1) }, func() { s.Insert(1) }, 0)
	warmPin(t, "multiset get", func() { s.Insert(1) }, func() { s.Get(1) }, 0)
}
