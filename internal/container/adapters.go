package container

import (
	"pragmaprim/internal/bst"
	"pragmaprim/internal/core"
	"pragmaprim/internal/hashmap"
	"pragmaprim/internal/lockds"
	"pragmaprim/internal/multiset"
	"pragmaprim/internal/queue"
	"pragmaprim/internal/stack"
	"pragmaprim/internal/template"
	"pragmaprim/internal/trie"
)

// Every adapter wraps an existing structure instance rather than building
// its own, so callers (cmd/stress, the shard demos) can keep the concrete
// handle for structure-specific inspection — Items, CheckInvariants — while
// driving the structure through the uniform interface.

// noStats is the EngineStats of structures outside the template engine.
func noStats() template.Counters { return template.Counters{} }

// --- LLX/SCX multiset -------------------------------------------------------

// Multiset adapts the paper's Section 5 multiset: Insert adds one
// occurrence, Delete removes one, Size is the total occurrence count.
func Multiset(m *multiset.Multiset[int]) Container { return msContainer{m} }

type msContainer struct{ m *multiset.Multiset[int] }

func (c msContainer) NewSession() Session {
	return &msSession{s: c.m.Attach(core.AcquireHandle())}
}
func (c msContainer) EngineStats() template.Counters          { return c.m.EngineStats() }
func (c msContainer) StatsByOp() map[string]template.Counters { return c.m.StatsByOp() }
func (c msContainer) Size() int                               { return c.m.TotalCount() }

func (c msContainer) Range(fn func(key, count int) bool) {
	for k, n := range c.m.Items() {
		if !fn(k, n) {
			return
		}
	}
}

type msSession struct{ s multiset.Session[int] }

func (s *msSession) Get(key int) bool    { return s.s.Get(key) > 0 }
func (s *msSession) Insert(key int) bool { s.s.Insert(key, 1); return true }
func (s *msSession) Delete(key int) bool { return s.s.Delete(key, 1) }
func (s *msSession) Count(key int) int   { return s.s.Get(key) }
func (s *msSession) BatchStart()         { template.Enter(s.s.Handle()) }
func (s *msSession) BatchEnd()           { template.Exit(s.s.Handle()) }
func (s *msSession) Quiesce()            { template.Quiesce(s.s.Handle()) }
func (s *msSession) Close()              { s.s.Handle().Release() }

// --- LLX/SCX external BST ---------------------------------------------------

// BST adapts the external BST with map semantics: Insert maps key to itself
// and applies only when the key was absent, Size is the number of keys.
func BST(t *bst.Tree[int, int]) Container { return bstContainer{t} }

type bstContainer struct{ t *bst.Tree[int, int] }

func (c bstContainer) NewSession() Session {
	return &bstSession{s: c.t.Attach(core.AcquireHandle())}
}
func (c bstContainer) EngineStats() template.Counters          { return c.t.EngineStats() }
func (c bstContainer) StatsByOp() map[string]template.Counters { return c.t.StatsByOp() }
func (c bstContainer) Size() int                               { return c.t.Len() }

func (c bstContainer) Range(fn func(key, count int) bool) {
	for _, k := range c.t.Keys() {
		if !fn(k, 1) {
			return
		}
	}
}

type bstSession struct{ s bst.Session[int, int] }

func (s *bstSession) Get(key int) bool    { return s.s.Contains(key) }
func (s *bstSession) Insert(key int) bool { return s.s.Put(key, key) }
func (s *bstSession) Delete(key int) bool { _, ok := s.s.Delete(key); return ok }
func (s *bstSession) Count(key int) int {
	if s.s.Contains(key) {
		return 1
	}
	return 0
}
func (s *bstSession) BatchStart() { template.Enter(s.s.Handle()) }
func (s *bstSession) BatchEnd()   { template.Exit(s.s.Handle()) }
func (s *bstSession) Quiesce()    { template.Quiesce(s.s.Handle()) }
func (s *bstSession) Close()      { s.s.Handle().Release() }

// --- LLX/SCX Patricia trie --------------------------------------------------

// Trie adapts the Patricia trie with map semantics over the non-negative
// int keys the workloads generate.
func Trie(t *trie.Trie[int]) Container { return trieContainer{t} }

type trieContainer struct{ t *trie.Trie[int] }

func (c trieContainer) NewSession() Session {
	return &trieSession{s: c.t.Attach(core.AcquireHandle())}
}
func (c trieContainer) EngineStats() template.Counters          { return c.t.EngineStats() }
func (c trieContainer) StatsByOp() map[string]template.Counters { return c.t.StatsByOp() }
func (c trieContainer) Size() int                               { return c.t.Len() }

func (c trieContainer) Range(fn func(key, count int) bool) {
	for _, k := range c.t.Keys() {
		if !fn(int(k), 1) {
			return
		}
	}
}

type trieSession struct{ s trie.Session[int] }

func (s *trieSession) Get(key int) bool    { return s.s.Contains(uint64(key)) }
func (s *trieSession) Insert(key int) bool { return s.s.Put(uint64(key), key) }
func (s *trieSession) Delete(key int) bool { _, ok := s.s.Delete(uint64(key)); return ok }
func (s *trieSession) Count(key int) int {
	if s.s.Contains(uint64(key)) {
		return 1
	}
	return 0
}
func (s *trieSession) BatchStart() { template.Enter(s.s.Handle()) }
func (s *trieSession) BatchEnd()   { template.Exit(s.s.Handle()) }
func (s *trieSession) Quiesce()    { template.Quiesce(s.s.Handle()) }
func (s *trieSession) Close()      { s.s.Handle().Release() }

// --- lock-free resizable hash map -------------------------------------------

// HashMap adapts the resizable hash map with set semantics: key presence is
// the currency (Count reports 0 or 1), Insert applies only when the key was
// absent, and Size is the conserved key count — the same +1/-1 ledger as
// the keyed structures, preserved across table migrations.
func HashMap(m *hashmap.Map) Container { return hmContainer{m} }

type hmContainer struct{ m *hashmap.Map }

func (c hmContainer) NewSession() Session {
	return &hmSession{s: c.m.Attach(core.AcquireHandle())}
}
func (c hmContainer) EngineStats() template.Counters          { return c.m.EngineStats() }
func (c hmContainer) StatsByOp() map[string]template.Counters { return c.m.StatsByOp() }
func (c hmContainer) Size() int                               { return c.m.Size() }

func (c hmContainer) Range(fn func(key, count int) bool) {
	c.m.Range(func(k int) bool { return fn(k, 1) })
}

type hmSession struct{ s *hashmap.Session }

func (s *hmSession) Get(key int) bool    { return s.s.Get(key) }
func (s *hmSession) Insert(key int) bool { return s.s.Insert(key) }
func (s *hmSession) Delete(key int) bool { return s.s.Delete(key) }
func (s *hmSession) Count(key int) int {
	if s.s.Get(key) {
		return 1
	}
	return 0
}
func (s *hmSession) BatchStart() { template.Enter(s.s.Handle()) }
func (s *hmSession) BatchEnd()   { template.Exit(s.s.Handle()) }
func (s *hmSession) Quiesce()    { template.Quiesce(s.s.Handle()) }
func (s *hmSession) Close()      { s.s.Handle().Release() }

// --- LLX/SCX queue (produce/consume) ----------------------------------------

// Queue adapts the FIFO queue as a produce/consume container: Insert
// enqueues key, Delete dequeues the oldest element (the key argument only
// routes, e.g. to a shard), Get peeks at the head.
func Queue(q *queue.Queue[int]) Container { return queueContainer{q} }

type queueContainer struct{ q *queue.Queue[int] }

func (c queueContainer) NewSession() Session {
	return &queueSession{q: c.q, s: c.q.Attach(core.AcquireHandle())}
}
func (c queueContainer) EngineStats() template.Counters          { return c.q.EngineStats() }
func (c queueContainer) StatsByOp() map[string]template.Counters { return c.q.StatsByOp() }
func (c queueContainer) Size() int                               { return c.q.Len() }

func (c queueContainer) Range(fn func(key, count int) bool) {
	rangeOccurrences(c.q.Items(), fn)
}

type queueSession struct {
	q *queue.Queue[int]
	s queue.Session[int]
}

func (s *queueSession) Get(int) bool        { _, ok := s.q.Peek(); return ok }
func (s *queueSession) Insert(key int) bool { s.s.Enqueue(key); return true }
func (s *queueSession) Delete(int) bool     { _, ok := s.s.Dequeue(); return ok }
func (s *queueSession) Count(int) int       { return -1 }
func (s *queueSession) BatchStart()         { template.Enter(s.s.Handle()) }
func (s *queueSession) BatchEnd()           { template.Exit(s.s.Handle()) }
func (s *queueSession) Quiesce()            { template.Quiesce(s.s.Handle()) }
func (s *queueSession) Close()              { s.s.Handle().Release() }

// --- LLX/SCX stack (produce/consume) ----------------------------------------

// Stack adapts the LIFO stack as a produce/consume container: Insert pushes
// key, Delete pops the top element, Get peeks at it.
func Stack(st *stack.Stack[int]) Container { return stackContainer{st} }

type stackContainer struct{ st *stack.Stack[int] }

func (c stackContainer) NewSession() Session {
	return &stackSession{st: c.st, s: c.st.Attach(core.AcquireHandle())}
}
func (c stackContainer) EngineStats() template.Counters          { return c.st.EngineStats() }
func (c stackContainer) StatsByOp() map[string]template.Counters { return c.st.StatsByOp() }
func (c stackContainer) Size() int                               { return c.st.Len() }

func (c stackContainer) Range(fn func(key, count int) bool) {
	rangeOccurrences(c.st.Items(), fn)
}

type stackSession struct {
	st *stack.Stack[int]
	s  stack.Session[int]
}

func (s *stackSession) Get(int) bool        { _, ok := s.st.Peek(); return ok }
func (s *stackSession) Insert(key int) bool { s.s.Push(key); return true }
func (s *stackSession) Delete(int) bool     { _, ok := s.s.Pop(); return ok }
func (s *stackSession) Count(int) int       { return -1 }
func (s *stackSession) BatchStart()         { template.Enter(s.s.Handle()) }
func (s *stackSession) BatchEnd()           { template.Exit(s.s.Handle()) }
func (s *stackSession) Quiesce()            { template.Quiesce(s.s.Handle()) }
func (s *stackSession) Close()              { s.s.Handle().Release() }

// --- lock baselines ---------------------------------------------------------

// CoarseLock adapts the single-mutex multiset baseline.
func CoarseLock(m *lockds.CoarseMultiset) Container { return coarseContainer{m} }

type coarseContainer struct{ m *lockds.CoarseMultiset }

func (c coarseContainer) NewSession() Session                     { return coarseSession{c.m} }
func (c coarseContainer) EngineStats() template.Counters          { return noStats() }
func (c coarseContainer) StatsByOp() map[string]template.Counters { return nil }
func (c coarseContainer) Size() int                               { return c.m.TotalCount() }

func (c coarseContainer) Range(fn func(key, count int) bool) {
	for k, n := range c.m.Items() {
		if !fn(k, n) {
			return
		}
	}
}

type coarseSession struct{ m *lockds.CoarseMultiset }

func (s coarseSession) Get(key int) bool    { return s.m.Get(key) > 0 }
func (s coarseSession) Insert(key int) bool { s.m.Insert(key, 1); return true }
func (s coarseSession) Delete(key int) bool { return s.m.Delete(key, 1) }
func (s coarseSession) Count(key int) int   { return s.m.Get(key) }
func (s coarseSession) BatchStart()         {}
func (s coarseSession) BatchEnd()           {}
func (s coarseSession) Quiesce()            {}
func (s coarseSession) Close()              {}

// FineLock adapts the hand-over-hand lock-coupling multiset baseline.
func FineLock(m *lockds.FineMultiset) Container { return fineContainer{m} }

type fineContainer struct{ m *lockds.FineMultiset }

func (c fineContainer) NewSession() Session                     { return fineSession{c.m} }
func (c fineContainer) EngineStats() template.Counters          { return noStats() }
func (c fineContainer) StatsByOp() map[string]template.Counters { return nil }
func (c fineContainer) Size() int                               { return c.m.TotalCount() }

func (c fineContainer) Range(fn func(key, count int) bool) {
	for k, n := range c.m.Items() {
		if !fn(k, n) {
			return
		}
	}
}

type fineSession struct{ m *lockds.FineMultiset }

func (s fineSession) Get(key int) bool    { return s.m.Get(key) > 0 }
func (s fineSession) Insert(key int) bool { s.m.Insert(key, 1); return true }
func (s fineSession) Delete(key int) bool { return s.m.Delete(key, 1) }
func (s fineSession) Count(key int) int   { return s.m.Get(key) }
func (s fineSession) BatchStart()         {}
func (s fineSession) BatchEnd()           {}
func (s fineSession) Quiesce()            {}
func (s fineSession) Close()              {}

// rangeOccurrences aggregates a produce/consume element walk into the
// (key, count) shape Range promises.
func rangeOccurrences(items []int, fn func(key, count int) bool) {
	counts := make(map[int]int, len(items))
	for _, v := range items {
		counts[v]++
	}
	for k, n := range counts {
		if !fn(k, n) {
			return
		}
	}
}
