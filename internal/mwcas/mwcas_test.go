package mwcas_test

import (
	"fmt"
	"sync"
	"testing"

	"pragmaprim/internal/mwcas"
)

func cells(vals ...int) []*mwcas.Cell[int] {
	cs := make([]*mwcas.Cell[int], len(vals))
	for i, v := range vals {
		cs[i] = mwcas.NewCell(v)
	}
	return cs
}

func TestMWCASSucceedsWhenAllMatch(t *testing.T) {
	cs := cells(1, 2, 3)
	if !mwcas.MWCAS(cs, []int{1, 2, 3}, []int{10, 20, 30}, nil) {
		t.Fatal("MWCAS failed though all values matched")
	}
	for i, want := range []int{10, 20, 30} {
		if got := mwcas.Read(cs[i]); got != want {
			t.Errorf("cell[%d] = %d, want %d", i, got, want)
		}
	}
}

func TestMWCASFailsOnAnyMismatchAndRestores(t *testing.T) {
	for bad := 0; bad < 3; bad++ {
		t.Run(fmt.Sprintf("mismatchAt%d", bad), func(t *testing.T) {
			cs := cells(1, 2, 3)
			old := []int{1, 2, 3}
			old[bad] = 99
			if mwcas.MWCAS(cs, old, []int{10, 20, 30}, nil) {
				t.Fatal("MWCAS succeeded with a mismatch")
			}
			for i, want := range []int{1, 2, 3} {
				if got := mwcas.Read(cs[i]); got != want {
					t.Errorf("cell[%d] = %d, want restored %d", i, got, want)
				}
			}
		})
	}
}

func TestMWCASStepCount2kPlus1(t *testing.T) {
	// The paper's Section 2 costing: an uncontended k-CAS takes 2k+1 CAS
	// steps (k claims, 1 status, k releases).
	for k := 1; k <= 6; k++ {
		vals := make([]int, k)
		old := make([]int, k)
		newv := make([]int, k)
		for i := range vals {
			vals[i], old[i], newv[i] = i, i, i+100
		}
		cs := cells(vals...)
		var st mwcas.Stats
		if !mwcas.MWCAS(cs, old, newv, &st) {
			t.Fatalf("k=%d: MWCAS failed", k)
		}
		if got, want := st.CASAttempts.Load(), int64(2*k+1); got != want {
			t.Errorf("k=%d: CAS steps = %d, want 2k+1 = %d", k, got, want)
		}
		if got, want := st.CASSuccesses.Load(), int64(2*k+1); got != want {
			t.Errorf("k=%d: CAS successes = %d, want %d", k, got, want)
		}
	}
}

func TestMWCASPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"Empty":          func() { mwcas.MWCAS[int](nil, nil, nil, nil) },
		"LengthMismatch": func() { mwcas.MWCAS(cells(1, 2), []int{1}, []int{2, 3}, nil) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			f()
		})
	}
}

func TestSortCellsGlobalOrder(t *testing.T) {
	a, b, c := mwcas.NewCell(1), mwcas.NewCell(2), mwcas.NewCell(3)
	cs := []*mwcas.Cell[int]{c, a, b}
	old := []int{3, 1, 2}
	newv := []int{30, 10, 20}
	mwcas.SortCells(cs, old, newv)
	if cs[0] != a || cs[1] != b || cs[2] != c {
		t.Fatal("SortCells did not order by allocation")
	}
	if old[0] != 1 || newv[0] != 10 || old[2] != 3 || newv[2] != 30 {
		t.Fatal("SortCells did not permute parallel slices consistently")
	}
	if !mwcas.MWCAS(cs, old, newv, nil) {
		t.Fatal("MWCAS after SortCells failed")
	}
}

// TestMWCASConcurrentTransfers models bank-style transfers: each op moves 1
// unit between two cells with a 2-CAS; the total must be conserved and every
// individual cell must stay within the transferred bounds.
func TestMWCASConcurrentTransfers(t *testing.T) {
	const procs = 8
	const perProc = 500
	const ncells = 4
	const initial = 1 << 20 // large enough never to go negative

	cs := make([]*mwcas.Cell[int], ncells)
	for i := range cs {
		cs[i] = mwcas.NewCell(initial)
	}

	var wg sync.WaitGroup
	for g := 0; g < procs; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perProc; i++ {
				from := (g + i) % ncells
				to := (from + 1) % ncells
				for {
					pair := []*mwcas.Cell[int]{cs[from], cs[to]}
					old := []int{mwcas.Read(cs[from]), mwcas.Read(cs[to])}
					newv := []int{old[0] - 1, old[1] + 1}
					mwcas.SortCells(pair, old, newv)
					if mwcas.MWCAS(pair, old, newv, nil) {
						break
					}
				}
			}
		}(g)
	}
	wg.Wait()

	total := 0
	for _, c := range cs {
		total += mwcas.Read(c)
	}
	if total != ncells*initial {
		t.Fatalf("total = %d, want %d (conservation violated)", total, ncells*initial)
	}
}

// TestMWCASConcurrentDisjointCounters: operations on disjoint cells never
// interfere; every increment lands.
func TestMWCASConcurrentDisjointCounters(t *testing.T) {
	const procs = 6
	const perProc = 1000
	cs := make([]*mwcas.Cell[int], procs)
	for i := range cs {
		cs[i] = mwcas.NewCell(0)
	}
	var wg sync.WaitGroup
	for g := 0; g < procs; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perProc; i++ {
				if !mwcas.MWCAS([]*mwcas.Cell[int]{cs[g]}, []int{i}, []int{i + 1}, nil) {
					t.Errorf("proc %d: disjoint MWCAS failed at %d", g, i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g, c := range cs {
		if got := mwcas.Read(c); got != perProc {
			t.Errorf("cell[%d] = %d, want %d", g, got, perProc)
		}
	}
}

// TestReadHelpsInProgressOperation ensures Read never returns a claim
// artifact under heavy overlap.
func TestReadHelpsInProgressOperation(t *testing.T) {
	const rounds = 2000
	a := mwcas.NewCell(0)
	b := mwcas.NewCell(0)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < rounds; i++ {
			mwcas.MWCAS([]*mwcas.Cell[int]{a, b}, []int{i, i}, []int{i + 1, i + 1}, nil)
		}
	}()
	lastA, lastB := -1, -1
	for {
		select {
		case <-done:
			if va, vb := mwcas.Read(a), mwcas.Read(b); va != rounds || vb != rounds {
				t.Fatalf("final = (%d,%d), want (%d,%d)", va, vb, rounds, rounds)
			}
			return
		default:
		}
		va, vb := mwcas.Read(a), mwcas.Read(b)
		// Each cell's value is written only by successive MWCASes, so reads
		// must be monotone and within range; a claim artifact would violate
		// both.
		if va < lastA || vb < lastB {
			t.Fatalf("non-monotone reads: a %d->%d, b %d->%d", lastA, va, lastB, vb)
		}
		if va > rounds || vb > rounds {
			t.Fatalf("out-of-range reads: a=%d b=%d", va, vb)
		}
		lastA, lastB = va, vb
	}
}
