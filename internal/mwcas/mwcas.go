// Package mwcas implements a descriptor-based multi-word compare-and-swap
// (k-CAS) from single-word CAS, in the style the paper's Section 2 describes
// for its cost comparison [12,17]: phase one replaces each of the k words
// with a pointer to the operation descriptor, phase two decides the
// operation's status, and phase three replaces each descriptor pointer with
// the final value. In the absence of contention this takes exactly 2k+1 CAS
// steps — the figure the paper contrasts with SCX's k+1.
//
// The implementation is lock-free: a process that encounters a claimed word
// helps the owning operation to completion before retrying. Addresses are
// claimed in the caller-supplied order, so (as with SCX's Section 4.1
// constraint) callers must present cells in a consistent global order to
// avoid livelock; SortCells provides one.
package mwcas

import (
	"sort"
	"sync/atomic"
)

// status of a descriptor.
const (
	statusUndecided int32 = iota + 1
	statusSucceeded
	statusFailed
)

// content is what a Cell physically holds: either a plain value (desc ==
// nil) or a claim by an in-progress k-CAS (desc != nil, val is the value the
// cell held when claimed).
type content[T comparable] struct {
	val  T
	desc *descriptor[T]
}

// Cell is one word participating in multi-word CAS operations. Create with
// NewCell; share freely between goroutines.
type Cell[T comparable] struct {
	p  atomic.Pointer[content[T]]
	id uint64 // allocation order, used by SortCells
}

var nextCellID atomic.Uint64

// NewCell returns a cell holding initial.
func NewCell[T comparable](initial T) *Cell[T] {
	c := &Cell[T]{id: nextCellID.Add(1)}
	c.p.Store(&content[T]{val: initial})
	return c
}

// maxInlineK is the number of claim/release content nodes a descriptor
// embeds; the paper's comparisons use k <= 4. Wider operations spill to
// per-node heap allocations.
const maxInlineK = 4

// descriptor records one k-CAS operation completely enough for any process
// to finish it. The claim and release content nodes live INSIDE the
// descriptor (up to maxInlineK), so one k-CAS is one allocation: the
// node-freshness argument that keeps the cells ABA-free only needs the
// addresses to be new, and a freshly allocated descriptor makes its
// embedded nodes' addresses new by construction. Release nodes come
// pre-built in two flavors (success installs newv, failure restores old),
// both filled in before the descriptor is published, so racing helpers
// share them read-only; a cell leaves claims[i] exactly once, and a late
// helper's CAS on the departed claim fails benignly.
type descriptor[T comparable] struct {
	cells []*Cell[T]
	old   []T
	newv  []T

	claims  []*content[T] // claims[i] is the unique claim node for cells[i]
	success []*content[T] // installed by phase 3 when the operation succeeded
	failure []*content[T] // installed by phase 3 when it failed

	claimStore   [maxInlineK]content[T]
	successStore [maxInlineK]content[T]
	failureStore [maxInlineK]content[T]
	ptrStore     [3 * maxInlineK]*content[T]

	status atomic.Int32
	stats  *Stats
}

// Stats counts the CAS steps an operation (and its helpers) performed, for
// the experiment harness. Counters are atomic because helpers may update
// them concurrently.
type Stats struct {
	CASAttempts  atomic.Int64
	CASSuccesses atomic.Int64
}

func (s *Stats) cas(ok bool) {
	if s == nil {
		return
	}
	s.CASAttempts.Add(1)
	if ok {
		s.CASSuccesses.Add(1)
	}
}

// Read returns the logical value of c: if c is claimed by an in-progress
// k-CAS, the reader first helps that operation to completion.
func Read[T comparable](c *Cell[T]) T {
	for {
		ct := c.p.Load()
		if ct.desc == nil {
			return ct.val
		}
		help(ct.desc)
	}
}

// MWCAS atomically, for all i, compares cells[i] against old[i] and, if
// every comparison holds, stores newv[i] into cells[i]. It reports whether
// the swap happened. stats, if non-nil, accumulates the CAS steps spent on
// behalf of this operation, including those by helpers.
//
// cells must be duplicate-free and, across concurrent operations with
// overlapping cell sets, presented in a consistent order (see SortCells).
//
// Like the direct-claim k-CAS of [17] that the paper costs at 2k+1 CASes,
// this algorithm assumes values do not recur on a cell while an operation
// expecting the predecessor value is still in flight (value-ABA freedom) —
// the same fresh-value discipline the paper's Section 4.1 constraint imposes
// on SCX callers. All users in this repository store monotonically fresh
// values. (Eliminating the assumption requires RDCSS-style claiming, which
// costs 3k+1 CASes and is exactly the overhead the paper's comparison is
// about.)
func MWCAS[T comparable](cells []*Cell[T], old, newv []T, stats *Stats) bool {
	if len(cells) == 0 {
		panic("mwcas: MWCAS with no cells")
	}
	if len(old) != len(cells) || len(newv) != len(cells) {
		panic("mwcas: old/new value lengths do not match cells")
	}
	d := &descriptor[T]{
		cells: cells,
		old:   old,
		newv:  newv,
		stats: stats,
	}
	k := len(cells)
	var claimNodes, successNodes, failureNodes []content[T]
	if k <= maxInlineK {
		claimNodes = d.claimStore[:k]
		successNodes = d.successStore[:k]
		failureNodes = d.failureStore[:k]
		d.claims = d.ptrStore[0:k:k]
		d.success = d.ptrStore[maxInlineK : maxInlineK+k : maxInlineK+k]
		d.failure = d.ptrStore[2*maxInlineK : 2*maxInlineK+k : 2*maxInlineK+k]
	} else {
		spill := make([]content[T], 3*k)
		claimNodes, successNodes, failureNodes = spill[:k], spill[k:2*k], spill[2*k:]
		ptrs := make([]*content[T], 3*k)
		d.claims, d.success, d.failure = ptrs[:k], ptrs[k:2*k], ptrs[2*k:]
	}
	for i := 0; i < k; i++ {
		claimNodes[i] = content[T]{val: old[i], desc: d}
		successNodes[i] = content[T]{val: newv[i]}
		failureNodes[i] = content[T]{val: old[i]}
		d.claims[i] = &claimNodes[i]
		d.success[i] = &successNodes[i]
		d.failure[i] = &failureNodes[i]
	}
	d.status.Store(statusUndecided)
	return help(d)
}

// help drives d to completion and reports whether it succeeded. Any process
// may call it; all steps are idempotent.
func help[T comparable](d *descriptor[T]) bool {
	// Phase 1: claim each cell in order with a freezing-style CAS.
	for i, c := range d.cells {
	claim:
		for d.status.Load() == statusUndecided {
			ct := c.p.Load()
			switch {
			case ct == d.claims[i]:
				break claim // already claimed for d (by us or a helper)
			case ct.desc == d:
				break claim // claimed for d via another helper's node
			case ct.desc != nil:
				help(ct.desc) // claimed by someone else: help, then retry
			case ct.val != d.old[i]:
				// Value mismatch: the operation must fail.
				ok := d.status.CompareAndSwap(statusUndecided, statusFailed)
				d.stats.cas(ok)
				break claim
			default:
				if d.status.Load() != statusUndecided {
					break claim // decided while we were inspecting
				}
				ok := c.p.CompareAndSwap(ct, d.claims[i])
				d.stats.cas(ok)
				if ok {
					break claim
				}
			}
		}
		if d.status.Load() != statusUndecided {
			break
		}
	}

	// Phase 2: decide. The first decider wins; helpers' CASes fail benignly.
	ok := d.status.CompareAndSwap(statusUndecided, statusSucceeded)
	d.stats.cas(ok)
	succeeded := d.status.Load() == statusSucceeded

	// Phase 3: release every claimed cell, installing the new value on
	// success or restoring the old value on failure. The pre-built release
	// nodes are fresh addresses (embedded in the fresh descriptor), which
	// keeps the cells ABA-free without a per-release allocation.
	repls := d.success
	if !succeeded {
		repls = d.failure
	}
	for i, c := range d.cells {
		ok := c.p.CompareAndSwap(d.claims[i], repls[i])
		d.stats.cas(ok)
	}
	return succeeded
}

// SortCells orders cells (and their parallel old/new slices) by a global
// allocation order, giving concurrent operations the consistent claim order
// that rules out livelock.
func SortCells[T comparable](cells []*Cell[T], old, newv []T) {
	idx := make([]int, len(cells))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return cells[idx[a]].id < cells[idx[b]].id })
	cc := make([]*Cell[T], len(cells))
	oo := make([]T, len(old))
	nn := make([]T, len(newv))
	for to, from := range idx {
		cc[to], oo[to], nn[to] = cells[from], old[from], newv[from]
	}
	copy(cells, cc)
	copy(old, oo)
	copy(newv, nn)
}
