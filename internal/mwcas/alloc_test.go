package mwcas_test

import (
	"testing"

	"pragmaprim/internal/mwcas"
)

// TestMWCASSingleAllocation pins the de-boxed descriptor layout: an
// uncontended k-CAS (k <= 4) is exactly one heap allocation — the
// descriptor, which embeds its claim and pre-built release nodes.
func TestMWCASSingleAllocation(t *testing.T) {
	cells := []*mwcas.Cell[uint64]{mwcas.NewCell[uint64](0), mwcas.NewCell[uint64](0)}
	old := []uint64{0, 0}
	newv := []uint64{0, 0}
	i := uint64(0)
	allocs := testing.AllocsPerRun(1000, func() {
		old[0], old[1] = i, i
		newv[0], newv[1] = i+1, i+1
		if !mwcas.MWCAS(cells, old, newv, nil) {
			t.Fatal("MWCAS failed")
		}
		i++
	})
	if allocs > 1 {
		t.Errorf("MWCAS k=2: %v allocs/op, want <= 1 (the descriptor)", allocs)
	}
}
