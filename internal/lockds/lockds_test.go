package lockds_test

import (
	"math/rand"
	"sync"
	"testing"

	"pragmaprim/internal/lockds"
)

// multiset abstracts the two lock-based variants so both get the same suite.
type multiset interface {
	Get(key int) int
	Insert(key, count int)
	Delete(key, count int) bool
	TotalCount() int
}

func variants() map[string]func() multiset {
	return map[string]func() multiset{
		"Coarse": func() multiset { return lockds.NewCoarse() },
		"Fine":   func() multiset { return lockds.NewFine() },
	}
}

func TestSequentialSemantics(t *testing.T) {
	for name, mk := range variants() {
		t.Run(name, func(t *testing.T) {
			m := mk()
			if got := m.Get(5); got != 0 {
				t.Errorf("Get on empty = %d", got)
			}
			m.Insert(5, 3)
			m.Insert(2, 1)
			m.Insert(5, 2)
			if got := m.Get(5); got != 5 {
				t.Errorf("Get(5) = %d, want 5", got)
			}
			if got := m.Get(2); got != 1 {
				t.Errorf("Get(2) = %d, want 1", got)
			}
			if m.Delete(5, 9) {
				t.Error("Delete(5,9) = true with 5 present")
			}
			if !m.Delete(5, 2) {
				t.Error("Delete(5,2) = false")
			}
			if got := m.Get(5); got != 3 {
				t.Errorf("Get(5) = %d, want 3", got)
			}
			if !m.Delete(5, 3) {
				t.Error("Delete(5,3) = false")
			}
			if got := m.Get(5); got != 0 {
				t.Errorf("Get(5) = %d, want 0", got)
			}
			if got := m.Get(2); got != 1 {
				t.Errorf("Get(2) = %d, want 1 (neighbor)", got)
			}
		})
	}
}

func TestTotalCount(t *testing.T) {
	for name, mk := range variants() {
		t.Run(name, func(t *testing.T) {
			m := mk()
			if got := m.TotalCount(); got != 0 {
				t.Errorf("TotalCount on empty = %d", got)
			}
			m.Insert(3, 2)
			m.Insert(7, 1)
			m.Insert(3, 1)
			if got := m.TotalCount(); got != 4 {
				t.Errorf("TotalCount = %d, want 4", got)
			}
			m.Delete(3, 3)
			if got := m.TotalCount(); got != 1 {
				t.Errorf("TotalCount after delete = %d, want 1", got)
			}
		})
	}
}

func TestPanicsOnNonPositiveCount(t *testing.T) {
	for name, mk := range variants() {
		t.Run(name, func(t *testing.T) {
			m := mk()
			for op, f := range map[string]func(){
				"Insert": func() { m.Insert(1, 0) },
				"Delete": func() { m.Delete(1, -1) },
			} {
				t.Run(op, func(t *testing.T) {
					defer func() {
						if recover() == nil {
							t.Error("no panic")
						}
					}()
					f()
				})
			}
		})
	}
}

func TestConcurrentConservation(t *testing.T) {
	for name, mk := range variants() {
		t.Run(name, func(t *testing.T) {
			const procs = 8
			const perProc = 400
			const keyRange = 16
			m := mk()

			net := make([][]int, procs)
			var wg sync.WaitGroup
			for g := 0; g < procs; g++ {
				net[g] = make([]int, keyRange)
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(g)))
					for i := 0; i < perProc; i++ {
						key := rng.Intn(keyRange)
						count := 1 + rng.Intn(3)
						if rng.Intn(2) == 0 {
							m.Insert(key, count)
							net[g][key] += count
						} else if m.Delete(key, count) {
							net[g][key] -= count
						}
					}
				}(g)
			}
			wg.Wait()

			for k := 0; k < keyRange; k++ {
				want := 0
				for g := 0; g < procs; g++ {
					want += net[g][k]
				}
				if got := m.Get(k); got != want {
					t.Errorf("key %d: count %d, want %d", k, got, want)
				}
			}
		})
	}
}

func TestConcurrentSameKeyNoLostUpdates(t *testing.T) {
	for name, mk := range variants() {
		t.Run(name, func(t *testing.T) {
			const procs = 8
			const perProc = 500
			m := mk()
			var wg sync.WaitGroup
			for g := 0; g < procs; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < perProc; i++ {
						m.Insert(7, 1)
					}
				}()
			}
			wg.Wait()
			if got := m.Get(7); got != procs*perProc {
				t.Fatalf("Get(7) = %d, want %d", got, procs*perProc)
			}
		})
	}
}
