// Package lockds provides lock-based multiset baselines for the experiment
// harness: a coarse-grained single-mutex sorted list and a fine-grained
// hand-over-hand (lock-coupling) sorted list. The paper motivates LLX/SCX
// with exactly this comparison — locks are simple but not fault-tolerant and
// serialize updates (Section 1); these baselines supply the other side of
// the throughput experiments (E8).
package lockds

import (
	"fmt"
	"math"
	"sync"
)

// CoarseMultiset is a multiset of int keys guarded by one mutex. The zero
// value is not usable; create with NewCoarse.
type CoarseMultiset struct {
	mu   sync.Mutex
	head *coarseNode // sentinel with key math.MinInt
}

type coarseNode struct {
	key   int
	count int
	next  *coarseNode
}

// NewCoarse returns an empty coarse-locked multiset.
func NewCoarse() *CoarseMultiset {
	tail := &coarseNode{key: math.MaxInt}
	return &CoarseMultiset{head: &coarseNode{key: math.MinInt, next: tail}}
}

// Get returns the number of occurrences of key.
func (m *CoarseMultiset) Get(key int) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, _ := m.search(key)
	if r.key == key {
		return r.count
	}
	return 0
}

// Insert adds count occurrences of key; count must be positive.
func (m *CoarseMultiset) Insert(key, count int) {
	checkCount("Insert", count)
	m.mu.Lock()
	defer m.mu.Unlock()
	r, p := m.search(key)
	if r.key == key {
		r.count += count
		return
	}
	p.next = &coarseNode{key: key, count: count, next: r}
}

// Delete removes count occurrences of key, reporting whether it did; with
// fewer than count present it removes nothing and returns false. count must
// be positive.
func (m *CoarseMultiset) Delete(key, count int) bool {
	checkCount("Delete", count)
	m.mu.Lock()
	defer m.mu.Unlock()
	r, p := m.search(key)
	if r.key != key || r.count < count {
		return false
	}
	if r.count > count {
		r.count -= count
		return true
	}
	p.next = r.next
	return true
}

// TotalCount returns the sum of all occurrence counts.
func (m *CoarseMultiset) TotalCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	total := 0
	for n := m.head.next; n.key != math.MaxInt; n = n.next {
		total += n.count
	}
	return total
}

// Items returns the key→count table; exact when quiescent.
func (m *CoarseMultiset) Items() map[int]int {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[int]int)
	for n := m.head.next; n.key != math.MaxInt; n = n.next {
		out[n.key] = n.count
	}
	return out
}

// search returns the first node r with key <= r.key and its predecessor.
// Caller holds the lock.
func (m *CoarseMultiset) search(key int) (r, p *coarseNode) {
	p = m.head
	r = p.next
	for r.key < key {
		p = r
		r = r.next
	}
	return r, p
}

// FineMultiset is a multiset of int keys implemented as a sorted list with
// hand-over-hand (lock-coupling) per-node locking. The zero value is not
// usable; create with NewFine.
type FineMultiset struct {
	head *fineNode
}

type fineNode struct {
	mu    sync.Mutex
	key   int
	count int
	next  *fineNode
}

// NewFine returns an empty fine-grained-locked multiset.
func NewFine() *FineMultiset {
	tail := &fineNode{key: math.MaxInt}
	return &FineMultiset{head: &fineNode{key: math.MinInt, next: tail}}
}

// search locks its way down the list hand-over-hand and returns the first
// node r with key <= r.key and its predecessor p, with BOTH locks held. The
// caller must unlock p and r.
func (m *FineMultiset) search(key int) (r, p *fineNode) {
	p = m.head
	p.mu.Lock()
	r = p.next
	r.mu.Lock()
	for r.key < key {
		p.mu.Unlock()
		p = r
		r = r.next
		r.mu.Lock()
	}
	return r, p
}

// Get returns the number of occurrences of key.
func (m *FineMultiset) Get(key int) int {
	r, p := m.search(key)
	defer p.mu.Unlock()
	defer r.mu.Unlock()
	if r.key == key {
		return r.count
	}
	return 0
}

// Insert adds count occurrences of key; count must be positive.
func (m *FineMultiset) Insert(key, count int) {
	checkCount("Insert", count)
	r, p := m.search(key)
	defer p.mu.Unlock()
	defer r.mu.Unlock()
	if r.key == key {
		r.count += count
		return
	}
	p.next = &fineNode{key: key, count: count, next: r}
}

// Delete removes count occurrences of key, reporting whether it did. count
// must be positive.
func (m *FineMultiset) Delete(key, count int) bool {
	checkCount("Delete", count)
	r, p := m.search(key)
	defer p.mu.Unlock()
	defer r.mu.Unlock()
	if r.key != key || r.count < count {
		return false
	}
	if r.count > count {
		r.count -= count
		return true
	}
	p.next = r.next
	return true
}

// TotalCount returns the sum of all occurrence counts, locking hand-over-hand
// down the list. Exact when quiescent.
func (m *FineMultiset) TotalCount() int {
	total := 0
	p := m.head
	p.mu.Lock()
	for {
		r := p.next
		r.mu.Lock()
		p.mu.Unlock()
		if r.key == math.MaxInt {
			r.mu.Unlock()
			return total
		}
		total += r.count
		p = r
	}
}

// Items returns the key→count table, locking hand-over-hand down the list.
// Exact when quiescent.
func (m *FineMultiset) Items() map[int]int {
	out := make(map[int]int)
	p := m.head
	p.mu.Lock()
	for {
		r := p.next
		r.mu.Lock()
		p.mu.Unlock()
		if r.key == math.MaxInt {
			r.mu.Unlock()
			return out
		}
		out[r.key] = r.count
		p = r
	}
}

func checkCount(op string, count int) {
	if count <= 0 {
		panic(fmt.Sprintf("lockds: %s with non-positive count %d", op, count))
	}
}
