// Package template is the update engine shared by every LLX/SCX data
// structure in this repository. The paper's pitch is that all non-blocking
// updates have one shape — search with plain reads, LLX the records the
// update depends on, validate, then commit with a single SCX — and the five
// structures here (multiset, bst, trie, queue, stack) used to hand-roll that
// loop. Run owns it instead: the retry loop, the retry policy (immediate,
// capped spin backoff, spin-then-yield), the per-operation attempt/failure
// counters, the reusable LLXInto snapshot buffers that keep the fast path
// allocation-free, and the guard that turns a would-spin-forever retry on a
// finalized record into a crash with a diagnosis.
//
// An operation supplies only its attempt body: position with plain reads,
// link records with Ctx.LLX, validate the snapshots, and either commit with
// Ctx.SCX (or Ctx.VLX for read validation) and return Done, or return Retry.
// Everything else — when to back off, what to count, which snapshot buffer a
// link uses — is the engine's job, so a new structure gets the whole of PR
// 1's zero-allocation fast path by construction.
package template

import (
	"sync/atomic"

	"pragmaprim/internal/core"
)

// Action is an attempt body's verdict on one try of an operation.
type Action uint8

const (
	// Retry re-runs the attempt after the policy's backoff: an LLX failed,
	// a validation caught the structure moving, or the SCX lost a race.
	Retry Action = iota
	// Done ends the operation; Run returns the attempt's result.
	Done
)

// Geometry of a Ctx's snapshot-buffer and read-set arrays. The widest
// V-sequence any structure here links is 4 records (BST and trie deletes),
// and no record has more than core's inline 4 mutable fields; 6×4 leaves
// headroom without making the cached Ctx large.
const (
	maxLinks = 6
	maxWidth = 4
)

// Ctx is the per-attempt face of the engine: it hands out snapshot buffers,
// forwards to the LLX/SCX/VLX primitives, and records what happened for the
// retry counters and the finalized-spin guard. A Ctx is valid only inside
// the attempt body it was passed to.
type Ctx struct {
	proc *core.Process

	// Snapshot buffers, one per LLX of the current attempt. They are reused
	// across attempts and operations (the engine caches the Ctx on the
	// Handle), which is safe because an attempt that fails abandons its
	// snapshots and a Done attempt consumes them before Run returns.
	bufs [maxLinks][maxWidth]any
	nbuf int

	// Read set of the current and previous attempt, for the finalized-spin
	// guard (see Run).
	linked    [maxLinks]*core.Record
	nlinked   int
	prev      [maxLinks]*core.Record
	nprev     int
	finalized bool

	// Per-operation tallies, flushed to the OpStats once per Run.
	llxFails int64
	scxFails int64
	stripe   uint32 // this Ctx's OpStats counter stripe
	spinSink int    // keeps backoff spin loops from being optimized away
}

// nextStripe assigns counter stripes to Ctxs round-robin.
var nextStripe atomic.Uint32

// Process exposes the underlying Process for primitives the Ctx does not
// wrap (SnapshotAll, metrics).
func (c *Ctx) Process() *core.Process { return c.proc }

// LLX load-link-extends r through an engine-owned snapshot buffer, so the
// link allocates nothing for records up to maxWidth mutable fields. The
// returned Snapshot is valid until the attempt returns.
func (c *Ctx) LLX(r *core.Record) (core.Snapshot, core.LLXStatus) {
	var buf core.Snapshot
	if c.nbuf < maxLinks {
		buf = c.bufs[c.nbuf][:]
		c.nbuf++
	}
	snap, st := c.proc.LLXInto(r, buf)
	if c.nlinked < maxLinks {
		c.linked[c.nlinked] = r
		c.nlinked++
	}
	switch st {
	case core.LLXFinalized:
		c.finalized = true
	case core.LLXFail:
		c.llxFails++
	}
	return snap, st
}

// SCX commits the attempt's update: one atomic store into fld plus
// finalization of rset, conditional on every record in v being unchanged
// since this attempt's LLX on it. Neither v nor rset is retained, so slice
// literals at the call site stay on the caller's stack.
func (c *Ctx) SCX(v []*core.Record, rset []*core.Record, fld core.FieldRef, newVal any) bool {
	ok := c.proc.SCX(v, rset, fld, newVal)
	if !ok {
		c.scxFails++
	}
	return ok
}

// VLX validates that every record in v is unchanged since this attempt's
// LLX on it — the read-only commit used where an operation's result is an
// observation (e.g. queue emptiness) rather than a write.
func (c *Ctx) VLX(v []*core.Record) bool {
	return c.proc.VLX(v)
}

// beginAttempt rolls the read set over and rearms the buffers.
func (c *Ctx) beginAttempt() {
	c.nprev = c.nlinked
	copy(c.prev[:c.nprev], c.linked[:c.nlinked])
	c.nlinked = 0
	c.nbuf = 0
	c.finalized = false
}

// pinned reports whether the attempt that just failed saw a finalized
// record AND linked exactly the records its predecessor linked, in order.
// Retrying such an attempt cannot ever succeed — a finalized record never
// changes again — so the engine refuses to spin on it (see Run).
func (c *Ctx) pinned() bool {
	if !c.finalized || c.nlinked == 0 || c.nlinked != c.nprev {
		return false
	}
	for i := 0; i < c.nlinked; i++ {
		if c.linked[i] != c.prev[i] {
			return false
		}
	}
	return true
}

// ctxOf returns h's cached Ctx, building it on first use. The Ctx lives in
// the Handle's scratch slot, so pooled handles run operations with zero
// engine allocations after warmup.
func ctxOf(h *core.Handle) *Ctx {
	if c, ok := h.Scratch().(*Ctx); ok {
		return c
	}
	c := &Ctx{proc: h.Process(), stripe: nextStripe.Add(1)}
	h.SetScratch(c)
	return c
}

// Run executes one non-blocking update: it calls attempt until the attempt
// reports Done, applying the policy's backoff between tries and recording
// attempt/failure tallies into st. A nil policy means retry immediately; a
// nil st records nothing.
//
// Snapshot discipline: the Ctx hands every LLX its own engine-owned buffer,
// and buffers are recycled only at attempt boundaries — never while an
// attempt is running — so an attempt may hold all of its snapshots live at
// once, and a failed attempt's snapshots are dead by definition (the paper's
// contract: after a failed SCX the caller must re-LLX before retrying).
// That is what makes reusing the buffers across retries safe.
//
// Finalized-spin guard: if a failed attempt saw LLXFinalized and linked
// exactly the same records as the attempt before it, no future attempt can
// ever succeed (a finalized record is permanently frozen), so Run panics
// with a diagnosis instead of spinning forever. Structures never trip this:
// their attempts re-search from an entry point that is never finalized, so a
// finalized record vanishes from the read set on the next try. Only an
// attempt body that hard-codes a finalizable record can, and that is a
// programming error worth crashing on.
func Run[T any](h *core.Handle, pol Policy, st *OpStats, attempt func(*Ctx) (T, Action)) T {
	c := ctxOf(h)
	c.nlinked, c.nprev = 0, 0
	c.llxFails, c.scxFails = 0, 0
	tries := int64(0)
	for {
		c.beginAttempt()
		tries++
		res, act := attempt(c)
		if act == Done {
			if st != nil {
				st.flush(c.stripe, tries, c.llxFails, c.scxFails)
			}
			return res
		}
		if c.pinned() {
			panic("template: retrying an update whose read set is pinned on a " +
				"finalized record; the attempt must re-search instead of " +
				"reusing records that can be finalized")
		}
		if pol != nil {
			c.spinSink += pol.backoff(int(tries) - 1)
		}
	}
}
