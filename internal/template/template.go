// Package template is the update engine shared by every LLX/SCX data
// structure in this repository. The paper's pitch is that all non-blocking
// updates have one shape — search with plain reads, LLX the records the
// update depends on, validate, then commit with a single SCX — and the five
// structures here (multiset, bst, trie, queue, stack) used to hand-roll that
// loop. Run owns it instead: the retry loop, the retry policy (immediate,
// capped spin backoff, spin-then-yield), the per-operation attempt/failure
// counters, the reusable LLXInto snapshot buffers that keep the fast path
// allocation-free, and the guard that turns a would-spin-forever retry on a
// finalized record into a crash with a diagnosis.
//
// An operation supplies only its attempt body: position with plain reads,
// link records with Ctx.LLX, validate the snapshots, and either commit with
// Ctx.SCX (or Ctx.VLX for read validation) and return Done, or return Retry.
// Everything else — when to back off, what to count, which snapshot buffer a
// link uses — is the engine's job, so a new structure gets the whole of PR
// 1's zero-allocation fast path by construction.
package template

import (
	"sync/atomic"
	"unsafe"

	"pragmaprim/internal/core"
	"pragmaprim/internal/reclaim"
)

// Action is an attempt body's verdict on one try of an operation.
type Action uint8

const (
	// Retry re-runs the attempt after the policy's backoff: an LLX failed,
	// a validation caught the structure moving, or the SCX lost a race.
	Retry Action = iota
	// Done ends the operation; Run returns the attempt's result.
	Done
)

// Geometry of a Ctx's snapshot-buffer and read-set arrays. The widest
// V-sequence any structure here links is 4 records (BST and trie deletes),
// and no record has more than core's inline 4 mutable fields; 6×4 leaves
// headroom without making the cached Ctx large.
const (
	maxLinks = 6
	maxWidth = 4
)

// Ctx is the per-attempt face of the engine: it hands out snapshot buffers,
// forwards to the LLX/SCX/VLX primitives, and records what happened for the
// retry counters and the finalized-spin guard. A Ctx is valid only inside
// the attempt body it was passed to.
type Ctx struct {
	proc *core.Process
	recl *reclaim.Local

	// Snapshot buffers, one per LLX of the current attempt. They are reused
	// across attempts and operations (the engine caches the Ctx on the
	// Handle), which is safe because an attempt that fails abandons its
	// snapshots and a Done attempt consumes them before Run returns. Legacy
	// boxed links use bufs; typed links use fbufs.
	bufs  [maxLinks][maxWidth]any
	nbuf  int
	fbufs [maxLinks]core.Fields
	nfbuf int

	// Read set of the current and previous attempt, for the finalized-spin
	// guard (see Run).
	linked    [maxLinks]*core.Record
	nlinked   int
	prev      [maxLinks]*core.Record
	nprev     int
	finalized bool

	// Per-operation tallies, flushed to the OpStats once per Run.
	llxFails int64
	scxFails int64
	stripe   uint32 // this Ctx's OpStats counter stripe
	spinSink int    // keeps backoff spin loops from being optimized away
}

// nextStripe assigns counter stripes to Ctxs round-robin.
var nextStripe atomic.Uint32

// Process exposes the underlying Process for primitives the Ctx does not
// wrap (SnapshotAll, metrics).
func (c *Ctx) Process() *core.Process { return c.proc }

// Reclaim exposes the operation's epoch-reclamation state: attempt bodies
// allocate nodes from their structure's reclaim.Pool through it and retire
// the nodes their committed SCX unlinked. It is valid inside the attempt
// (the engine has announced the epoch) and immediately after Run returns on
// the same goroutine.
func (c *Ctx) Reclaim() *reclaim.Local { return c.recl }

// LLX load-link-extends r through an engine-owned snapshot buffer, so the
// link allocates nothing for records up to maxWidth mutable fields. The
// returned Snapshot is valid until the attempt returns.
func (c *Ctx) LLX(r *core.Record) (core.Snapshot, core.LLXStatus) {
	var buf core.Snapshot
	if c.nbuf < maxLinks {
		buf = c.bufs[c.nbuf][:]
		c.nbuf++
	}
	snap, st := c.proc.LLXInto(r, buf)
	if c.nlinked < maxLinks {
		c.linked[c.nlinked] = r
		c.nlinked++
	}
	switch st {
	case core.LLXFinalized:
		c.finalized = true
	case core.LLXFail:
		c.llxFails++
	}
	return snap, st
}

// LLXF load-link-extends a typed record through an engine-owned Fields
// buffer: the de-boxed, allocation-free counterpart of LLX. The returned
// snapshot is valid until the attempt returns.
func (c *Ctx) LLXF(r *core.Record) (*core.Fields, core.LLXStatus) {
	var f *core.Fields
	if c.nfbuf < maxLinks {
		f = &c.fbufs[c.nfbuf]
		c.nfbuf++
	} else {
		f = new(core.Fields) // attempts never link this wide; stay safe if one does
	}
	st := c.proc.LLXFields(r, f)
	if c.nlinked < maxLinks {
		c.linked[c.nlinked] = r
		c.nlinked++
	}
	switch st {
	case core.LLXFinalized:
		c.finalized = true
	case core.LLXFail:
		c.llxFails++
	}
	return f, st
}

// SCX commits the attempt's update: one atomic store into fld plus
// finalization of rset, conditional on every record in v being unchanged
// since this attempt's LLX on it. Neither v nor rset is retained, so slice
// literals at the call site stay on the caller's stack.
func (c *Ctx) SCX(v []*core.Record, rset []*core.Record, fld core.FieldRef, newVal any) bool {
	ok := c.proc.SCX(v, rset, fld, newVal)
	if !ok {
		c.scxFails++
	}
	return ok
}

// SCXWord commits an update to a uint64 word field of a typed record; see
// Process.SCXWord for the value-freshness obligation.
func (c *Ctx) SCXWord(v []*core.Record, rset []*core.Record, fld core.FieldRef, newWord uint64) bool {
	ok := c.proc.SCXWord(v, rset, fld, newWord)
	if !ok {
		c.scxFails++
	}
	return ok
}

// SCXPtr commits an update to a pointer field of a typed record; newPtr
// must be fresh or recycled through internal/reclaim (see Process.SCXPtr).
func (c *Ctx) SCXPtr(v []*core.Record, rset []*core.Record, fld core.FieldRef, newPtr unsafe.Pointer) bool {
	ok := c.proc.SCXPtr(v, rset, fld, newPtr)
	if !ok {
		c.scxFails++
	}
	return ok
}

// CASFailed records a failed single-word commit for a structure whose
// update is a degenerate one-record SCX — a plain CAS on one location (the
// hash map's bucket heads). Routing the failure through the Ctx keeps such
// structures' retries visible in the same SCXFails counters the
// descriptor-based structures report.
func (c *Ctx) CASFailed() { c.scxFails++ }

// VLX validates that every record in v is unchanged since this attempt's
// LLX on it — the read-only commit used where an operation's result is an
// observation (e.g. queue emptiness) rather than a write.
func (c *Ctx) VLX(v []*core.Record) bool {
	return c.proc.VLX(v)
}

// beginAttempt rolls the read set over and rearms the buffers.
func (c *Ctx) beginAttempt() {
	c.nprev = c.nlinked
	copy(c.prev[:c.nprev], c.linked[:c.nlinked])
	c.nlinked = 0
	c.nbuf = 0
	c.nfbuf = 0
	c.finalized = false
}

// pinned reports whether the attempt that just failed saw a finalized
// record AND linked exactly the records its predecessor linked, in order.
// Retrying such an attempt cannot ever succeed — a finalized record never
// changes again — so the engine refuses to spin on it (see Run).
func (c *Ctx) pinned() bool {
	if !c.finalized || c.nlinked == 0 || c.nlinked != c.nprev {
		return false
	}
	for i := 0; i < c.nlinked; i++ {
		if c.linked[i] != c.prev[i] {
			return false
		}
	}
	return true
}

// ctxOf returns h's cached Ctx, building it on first use. The Ctx lives in
// the Handle's scratch slot, so pooled handles run operations with zero
// engine allocations after warmup.
func ctxOf(h *core.Handle) *Ctx {
	if c, ok := h.Scratch().(*Ctx); ok {
		return c
	}
	c := &Ctx{proc: h.Process(), stripe: nextStripe.Add(1)}
	c.recl = c.proc.Reclaimer()
	h.SetScratch(c)
	return c
}

// Enter announces a reclamation epoch for a read-only excursion into a
// structure on h: while announced, no node the reader can still reach will
// be recycled out from under it. Update operations need no explicit guard —
// Run announces for them — but plain-read paths (searches, traversals,
// peeks) must wrap themselves in Enter/Exit now that retired nodes are
// recycled rather than left to the garbage collector. Enter/Exit pairs
// nest.
func Enter(h *core.Handle) { ctxOf(h).recl.Enter() }

// Exit ends the read guard opened by the matching Enter. No reference
// obtained since the Enter may be used afterwards.
//
// Under the amortized epoch scheme Exit does NOT unpublish the
// announcement: it stays in the slot, going stale, until the refresh
// cadence or an explicit Quiesce renews it. A handle that goes idle between
// operations should Quiesce (or Release) so its stale announcement does not
// delay reclamation domain-wide.
func Exit(h *core.Handle) { ctxOf(h).recl.Exit() }

// Quiesce declares an explicit quiescent point for h: the caller holds no
// references into any shared structure and may not operate again for a
// while (a server connection about to block on its socket, a worker about
// to park on a channel). The reclamation announcement is unpublished — an
// idle stale announcement blocks epoch advancement for every structure in
// the domain — and the epoch gets one advance-and-drain push. The next
// operation republishes automatically. Must be called outside any
// Enter/Exit pair or Run.
func Quiesce(h *core.Handle) { ctxOf(h).recl.Quiesce() }

// Guarded runs fn under a pooled handle's epoch guard: the one-liner for
// handle-free plain-read paths (traversals, peeks, invariant checks).
// Centralizing the acquire+announce boilerplate keeps the invariant the
// recycling scheme depends on — every read path is guarded — in one place.
// fn must not retain references to structure nodes beyond its return.
func Guarded(fn func()) {
	h := core.AcquireHandle()
	defer h.Release()
	Enter(h)
	defer Exit(h)
	fn()
}

// Run executes one non-blocking update: it calls attempt until the attempt
// reports Done, applying the policy's backoff between tries and recording
// attempt/failure tallies into st. A nil policy means retry immediately; a
// nil st records nothing.
//
// Snapshot discipline: the Ctx hands every LLX its own engine-owned buffer,
// and buffers are recycled only at attempt boundaries — never while an
// attempt is running — so an attempt may hold all of its snapshots live at
// once, and a failed attempt's snapshots are dead by definition (the paper's
// contract: after a failed SCX the caller must re-LLX before retrying).
// That is what makes reusing the buffers across retries safe.
//
// Finalized-spin guard: if a failed attempt saw LLXFinalized and linked
// exactly the same records as the attempt before it, no future attempt can
// ever succeed (a finalized record is permanently frozen), so Run panics
// with a diagnosis instead of spinning forever. Structures never trip this:
// their attempts re-search from an entry point that is never finalized, so a
// finalized record vanishes from the read set on the next try. Only an
// attempt body that hard-codes a finalizable record can, and that is a
// programming error worth crashing on.
func Run[T any](h *core.Handle, pol Policy, st *OpStats, attempt func(*Ctx) (T, Action)) T {
	c := ctxOf(h)
	c.nlinked, c.nprev = 0, 0
	c.llxFails, c.scxFails = 0, 0
	// Announce the reclamation epoch for the whole operation: every node
	// reference the attempts obtain is protected until Run returns, and the
	// descriptors this operation's SCXs create become recyclable. Under the
	// amortized scheme the announcement usually costs nothing — it is still
	// published from a previous operation — and the deferred Exit refreshes
	// it (advancing the epoch and draining limbo) only at the quiescence
	// cadence or when an allocation ran dry.
	//
	// The announcement deliberately spans retry backoffs too. Exiting
	// around a backoff would let epochs advance during contention, but it
	// would also let the previous attempt's read-set records be recycled,
	// and the finalized-spin guard below compares those records by
	// identity — an address reused for a fresh record could then alias a
	// pinned read set and panic spuriously. Backoffs are bounded (see
	// Policy), and a stalled epoch only degrades recycling to the GC
	// overflow path, never safety.
	c.recl.Enter()
	defer c.recl.Exit()
	tries := int64(0)
	for {
		c.beginAttempt()
		tries++
		res, act := attempt(c)
		if act == Done {
			if st != nil {
				st.flush(c.stripe, tries, c.llxFails, c.scxFails)
			}
			return res
		}
		if c.pinned() {
			panic("template: retrying an update whose read set is pinned on a " +
				"finalized record; the attempt must re-search instead of " +
				"reusing records that can be finalized")
		}
		if pol != nil {
			c.spinSink += pol.backoff(int(tries) - 1)
		}
	}
}
