package template

import (
	"fmt"
	"runtime"
	"strconv"
	"strings"
)

// Policy decides how an operation waits between failed attempts. backoff is
// called with the zero-based index of the attempt that just failed and
// returns an int so the engine can sink the spin work against dead-code
// elimination; implementations must be allocation-free and safe for
// concurrent use (they carry no per-operation state — the attempt index is
// the whole input).
type Policy interface {
	backoff(attempt int) int
}

// Immediate retries with no delay: the behaviour of the hand-rolled loops
// this engine replaced, and the default for every structure. Under the
// paper's disjoint-access workloads retries are rare enough that waiting
// only adds latency.
func Immediate() Policy { return immediate{} }

type immediate struct{}

func (immediate) backoff(int) int { return 0 }

// CappedBackoff spins 2^attempt × base iterations, capped at max, yielding
// the processor instead once the cap is passed. Classic contention control
// for hot-spot workloads (every process hammering one record): backing off
// losers lets a winner's SCX commit without another freeze fight.
func CappedBackoff(base, max int) Policy {
	if base < 1 {
		base = 1
	}
	if max < base {
		max = base
	}
	return capped{base: base, max: max}
}

type capped struct{ base, max int }

func (p capped) backoff(attempt int) int {
	spins := p.base
	for i := 0; i < attempt && spins < p.max; i++ {
		spins <<= 1
	}
	if spins >= p.max {
		runtime.Gosched()
		spins = p.max
	}
	return spin(spins)
}

// SpinThenYield spins a fixed budget on every failed attempt and then hands
// the processor over — the right shape when contention comes from more
// runnable goroutines than cores, where pure spinning starves the very SCX
// being waited on.
func SpinThenYield(spins int) Policy {
	if spins < 0 {
		spins = 0
	}
	return spinYield{spins: spins}
}

type spinYield struct{ spins int }

func (p spinYield) backoff(int) int {
	n := spin(p.spins)
	runtime.Gosched()
	return n
}

// PolicyByName parses the retry-policy specs the command-line tools accept:
//
//	""                     nil (keep the structure's default, Immediate)
//	"immediate"            Immediate()
//	"backoff"              CappedBackoff(16, 4096)
//	"backoff:BASE:MAX"     CappedBackoff(BASE, MAX)
//	"spinyield"            SpinThenYield(64)
//	"spinyield:SPINS"      SpinThenYield(SPINS)
func PolicyByName(spec string) (Policy, error) {
	name, args, _ := strings.Cut(spec, ":")
	switch name {
	case "":
		return nil, nil
	case "immediate":
		if args != "" {
			return nil, fmt.Errorf("template: policy %q takes no arguments", name)
		}
		return Immediate(), nil
	case "backoff":
		base, max := 16, 4096
		if args != "" {
			bs, ms, ok := strings.Cut(args, ":")
			if !ok {
				return nil, fmt.Errorf("template: policy spec %q: want backoff:BASE:MAX", spec)
			}
			var err error
			if base, err = strconv.Atoi(bs); err != nil {
				return nil, fmt.Errorf("template: policy spec %q: bad base: %w", spec, err)
			}
			if max, err = strconv.Atoi(ms); err != nil {
				return nil, fmt.Errorf("template: policy spec %q: bad max: %w", spec, err)
			}
		}
		return CappedBackoff(base, max), nil
	case "spinyield":
		spins := 64
		if args != "" {
			var err error
			if spins, err = strconv.Atoi(args); err != nil {
				return nil, fmt.Errorf("template: policy spec %q: bad spins: %w", spec, err)
			}
		}
		return SpinThenYield(spins), nil
	}
	return nil, fmt.Errorf("template: unknown policy %q (want immediate, backoff[:BASE:MAX] or spinyield[:SPINS])", name)
}

// spin burns n iterations of work the compiler cannot remove (the result is
// sunk into the Ctx by the engine).
func spin(n int) int {
	acc := 0
	for i := 0; i < n; i++ {
		acc += i & 1
	}
	return acc
}
