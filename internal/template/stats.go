package template

import (
	"sync/atomic"
)

// statStripes spreads an OpStats over several cache lines so that
// goroutines hammering the same operation of the same structure do not
// serialize on one counter line; 8 stripes cover typical GOMAXPROCS-scale
// fan-out. Power of two: flush masks the Ctx's stripe id with it.
const statStripes = 8

// statStripe is one stripe of counters, padded out to its own cache line
// (4 live words + 4 pad words = 64 bytes).
type statStripe struct {
	ops      atomic.Int64
	attempts atomic.Int64
	llxFails atomic.Int64
	scxFails atomic.Int64
	_        [4]int64
}

// OpStats counts what the engine did for one named operation of one
// structure (e.g. multiset Insert). Counters are atomic so concurrent
// goroutines share a single OpStats per operation; the engine batches its
// updates into one flush per completed operation, and each Ctx lands on its
// own stripe, so the hot path is a couple of atomic adds on a cache line
// few other goroutines touch.
type OpStats struct {
	stripes [statStripes]statStripe
}

// flush records one completed operation that took the given number of
// attempts and saw the given failure counts; stripe selects the caller's
// counter stripe.
func (s *OpStats) flush(stripe uint32, attempts, llxFails, scxFails int64) {
	sp := &s.stripes[stripe&(statStripes-1)]
	sp.ops.Add(1)
	sp.attempts.Add(attempts)
	if llxFails != 0 {
		sp.llxFails.Add(llxFails)
	}
	if scxFails != 0 {
		sp.scxFails.Add(scxFails)
	}
}

// Snapshot returns a point-in-time copy of the counters. Reading while
// operations are in flight is safe; the fields are individually consistent.
func (s *OpStats) Snapshot() Counters {
	var c Counters
	for i := range s.stripes {
		sp := &s.stripes[i]
		c.Ops += sp.ops.Load()
		c.Attempts += sp.attempts.Load()
		c.LLXFails += sp.llxFails.Load()
		c.SCXFails += sp.scxFails.Load()
	}
	return c
}

// Reset zeroes the counters (between experiment phases).
func (s *OpStats) Reset() {
	for i := range s.stripes {
		sp := &s.stripes[i]
		sp.ops.Store(0)
		sp.attempts.Store(0)
		sp.llxFails.Store(0)
		sp.scxFails.Store(0)
	}
}

// Counters is a plain-value snapshot of an OpStats, the currency the
// harness and internal/stats report in.
type Counters struct {
	Ops      int64 // completed Run invocations
	Attempts int64 // attempt bodies executed (>= Ops)
	LLXFails int64 // LLXs that returned Fail
	SCXFails int64 // SCXs that returned false
}

// Retries returns the number of extra attempts beyond one per operation —
// the engine's measure of contention.
func (c Counters) Retries() int64 { return c.Attempts - c.Ops }

// Add accumulates o into c, for aggregating the counters of several
// operations or structures.
func (c Counters) Add(o Counters) Counters {
	c.Ops += o.Ops
	c.Attempts += o.Attempts
	c.LLXFails += o.LLXFails
	c.SCXFails += o.SCXFails
	return c
}

// SCXFailureRate returns failed SCXs as a fraction of all attempts, 0 when
// nothing ran — the per-structure contention figure experiment E8 reports.
func (c Counters) SCXFailureRate() float64 {
	if c.Attempts == 0 {
		return 0
	}
	return float64(c.SCXFails) / float64(c.Attempts)
}
