package template_test

import (
	"runtime"
	"strings"
	"sync"
	"testing"

	"pragmaprim/internal/core"
	"pragmaprim/internal/template"
)

// TestRunUncontendedSingleAttempt pins the quiet-path accounting: one
// operation, one attempt, no failures.
func TestRunUncontendedSingleAttempt(t *testing.T) {
	h := core.NewHandle()
	r := core.NewRecord(1, []any{0})
	var st template.OpStats
	got := template.Run(h, nil, &st, func(c *template.Ctx) (int, template.Action) {
		snap, s := c.LLX(r)
		if s != core.LLXOK {
			return 0, template.Retry
		}
		if c.SCX([]*core.Record{r}, nil, r.Field(0), snap[0].(int)+7) {
			return snap[0].(int) + 7, template.Done
		}
		return 0, template.Retry
	})
	if got != 7 {
		t.Fatalf("Run = %d, want 7", got)
	}
	snap := st.Snapshot()
	if snap.Ops != 1 || snap.Attempts != 1 || snap.Retries() != 0 ||
		snap.LLXFails != 0 || snap.SCXFails != 0 {
		t.Fatalf("counters = %+v, want exactly one clean attempt", snap)
	}
}

// TestRunContendedCountersMatchObservedRetries hammers one record from
// GOMAXPROCS goroutines under the race detector. Every goroutine counts its
// own attempt-body executions; the engine's shared counters must agree with
// the observed totals exactly, and attempts must decompose into operations
// plus failures' retries.
func TestRunContendedCountersMatchObservedRetries(t *testing.T) {
	procs := runtime.GOMAXPROCS(0)
	if procs < 2 {
		procs = 2
	}
	const perG = 2000

	r := core.NewRecord(1, []any{0})
	var st template.OpStats
	observed := make([]int64, procs) // attempt-body executions per goroutine

	var wg sync.WaitGroup
	for g := 0; g < procs; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h := core.NewHandle()
			for i := 0; i < perG; i++ {
				template.Run(h, nil, &st, func(c *template.Ctx) (struct{}, template.Action) {
					observed[g]++
					snap, s := c.LLX(r)
					if s != core.LLXOK {
						return struct{}{}, template.Retry
					}
					if c.SCX([]*core.Record{r}, nil, r.Field(0), snap[0].(int)+1) {
						return struct{}{}, template.Done
					}
					return struct{}{}, template.Retry
				})
			}
		}(g)
	}
	wg.Wait()

	var observedAttempts int64
	for _, n := range observed {
		observedAttempts += n
	}
	snap := st.Snapshot()
	if snap.Ops != int64(procs*perG) {
		t.Errorf("Ops = %d, want %d", snap.Ops, procs*perG)
	}
	if snap.Attempts != observedAttempts {
		t.Errorf("Attempts = %d, observed attempt bodies = %d", snap.Attempts, observedAttempts)
	}
	if snap.Retries() != observedAttempts-int64(procs*perG) {
		t.Errorf("Retries() = %d, want %d", snap.Retries(), observedAttempts-int64(procs*perG))
	}
	// Every retry stems from a failed LLX or a failed SCX (this attempt
	// body has no other Retry path), and failures cannot exceed retries.
	if snap.LLXFails+snap.SCXFails != snap.Retries() {
		t.Errorf("LLXFails %d + SCXFails %d != Retries %d",
			snap.LLXFails, snap.SCXFails, snap.Retries())
	}
	// All increments landed: the record's final value is the total op count.
	if got := r.Read(0).(int); got != procs*perG {
		t.Errorf("final value = %d, want %d", got, procs*perG)
	}
}

// TestRunFinalizedAbortsInsteadOfSpinning pins the finalized-spin guard: an
// attempt body that hard-codes a finalized record (instead of re-searching)
// must crash the operation with a diagnosis, not spin forever.
func TestRunFinalizedAbortsInsteadOfSpinning(t *testing.T) {
	// Build a finalized record: an SCX over (a, b) finalizing b.
	setup := core.NewProcess()
	a := core.NewRecord(1, []any{0})
	b := core.NewRecord(1, []any{0})
	if _, st := setup.LLX(a); st != core.LLXOK {
		t.Fatal("setup LLX(a) failed")
	}
	if _, st := setup.LLX(b); st != core.LLXOK {
		t.Fatal("setup LLX(b) failed")
	}
	if !setup.SCX([]*core.Record{a, b}, []*core.Record{b}, a.Field(0), 1) {
		t.Fatal("setup finalizing SCX failed")
	}
	if !b.Finalized() {
		t.Fatal("b not finalized")
	}

	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Run returned instead of aborting on a pinned finalized record")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "finalized") {
			t.Fatalf("panic = %v, want the finalized-spin diagnosis", r)
		}
	}()
	h := core.NewHandle()
	template.Run(h, nil, nil, func(c *template.Ctx) (struct{}, template.Action) {
		// Deliberately broken attempt: always retries the same record.
		if _, st := c.LLX(b); st == core.LLXOK {
			return struct{}{}, template.Done
		}
		return struct{}{}, template.Retry
	})
}

// TestRunFinalizedRecoversWhenReadSetChanges is the guard's complement: an
// attempt that adapts its read set after seeing Finalized (as every real
// structure's re-search does) must complete normally.
func TestRunFinalizedRecoversWhenReadSetChanges(t *testing.T) {
	setup := core.NewProcess()
	a := core.NewRecord(1, []any{0})
	b := core.NewRecord(1, []any{0})
	live := core.NewRecord(1, []any{10})
	if _, st := setup.LLX(a); st != core.LLXOK {
		t.Fatal("setup LLX(a) failed")
	}
	if _, st := setup.LLX(b); st != core.LLXOK {
		t.Fatal("setup LLX(b) failed")
	}
	if !setup.SCX([]*core.Record{a, b}, []*core.Record{b}, a.Field(0), 1) {
		t.Fatal("setup finalizing SCX failed")
	}

	h := core.NewHandle()
	var st template.OpStats
	tries := 0
	got := template.Run(h, nil, &st, func(c *template.Ctx) (int, template.Action) {
		tries++
		target := b // first try lands on the finalized record...
		if tries > 1 {
			target = live // ...then the "search" finds the live one
		}
		snap, s := c.LLX(target)
		if s != core.LLXOK {
			return 0, template.Retry
		}
		if c.SCX([]*core.Record{target}, nil, target.Field(0), snap[0].(int)+1) {
			return snap[0].(int) + 1, template.Done
		}
		return 0, template.Retry
	})
	if got != 11 {
		t.Fatalf("Run = %d, want 11", got)
	}
	if snap := st.Snapshot(); snap.Attempts != 2 {
		t.Fatalf("Attempts = %d, want 2", snap.Attempts)
	}
}

// TestRunVLXPath pins the read-only commit: a VLX-validated observation
// completes the operation without an SCX.
func TestRunVLXPath(t *testing.T) {
	h := core.NewHandle()
	a := core.NewRecord(1, []any{1})
	b := core.NewRecord(1, []any{2})
	sum := template.Run(h, nil, nil, func(c *template.Ctx) (int, template.Action) {
		sa, st := c.LLX(a)
		if st != core.LLXOK {
			return 0, template.Retry
		}
		sb, st := c.LLX(b)
		if st != core.LLXOK {
			return 0, template.Retry
		}
		if !c.VLX([]*core.Record{a, b}) {
			return 0, template.Retry
		}
		return sa[0].(int) + sb[0].(int), template.Done
	})
	if sum != 3 {
		t.Fatalf("validated sum = %d, want 3", sum)
	}
}

// TestPoliciesCompleteUnderContention runs the same contended increment
// workload under each retry policy; all of them must preserve correctness
// (the policies only shape waiting, never semantics).
func TestPoliciesCompleteUnderContention(t *testing.T) {
	policies := map[string]template.Policy{
		"immediate":     template.Immediate(),
		"nil":           nil,
		"cappedBackoff": template.CappedBackoff(4, 256),
		"spinThenYield": template.SpinThenYield(16),
	}
	for name, pol := range policies {
		t.Run(name, func(t *testing.T) {
			const procs = 4
			const perG = 500
			r := core.NewRecord(1, []any{0})
			var wg sync.WaitGroup
			for g := 0; g < procs; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					h := core.NewHandle()
					for i := 0; i < perG; i++ {
						template.Run(h, pol, nil, func(c *template.Ctx) (struct{}, template.Action) {
							snap, s := c.LLX(r)
							if s != core.LLXOK {
								return struct{}{}, template.Retry
							}
							if c.SCX([]*core.Record{r}, nil, r.Field(0), snap[0].(int)+1) {
								return struct{}{}, template.Done
							}
							return struct{}{}, template.Retry
						})
					}
				}()
			}
			wg.Wait()
			if got := r.Read(0).(int); got != procs*perG {
				t.Fatalf("final value = %d, want %d", got, procs*perG)
			}
		})
	}
}

// TestCtxSnapshotsStayLiveWithinAttempt pins the buffer discipline: several
// snapshots taken in one attempt must all remain readable until the attempt
// ends (each LLX gets its own engine-owned buffer).
func TestCtxSnapshotsStayLiveWithinAttempt(t *testing.T) {
	h := core.NewHandle()
	recs := make([]*core.Record, 4)
	for i := range recs {
		recs[i] = core.NewRecord(2, []any{i, i * 10})
	}
	ok := template.Run(h, nil, nil, func(c *template.Ctx) (bool, template.Action) {
		snaps := make([]core.Snapshot, len(recs))
		for i, r := range recs {
			s, st := c.LLX(r)
			if st != core.LLXOK {
				return false, template.Retry
			}
			snaps[i] = s
		}
		for i, s := range snaps {
			if s[0].(int) != i || s[1].(int) != i*10 {
				t.Errorf("snapshot %d = %v, want [%d %d]", i, s, i, i*10)
			}
		}
		return true, template.Done
	})
	if !ok {
		t.Fatal("Run failed")
	}
}

// TestCountersSnapshotArithmetic covers the Counters helpers.
func TestCountersSnapshotArithmetic(t *testing.T) {
	a := template.Counters{Ops: 10, Attempts: 15, LLXFails: 2, SCXFails: 3}
	b := template.Counters{Ops: 5, Attempts: 5}
	sum := a.Add(b)
	if sum.Ops != 15 || sum.Attempts != 20 || sum.LLXFails != 2 || sum.SCXFails != 3 {
		t.Fatalf("Add = %+v", sum)
	}
	if got := sum.Retries(); got != 5 {
		t.Fatalf("Retries = %d, want 5", got)
	}
	if got := a.SCXFailureRate(); got != 0.2 {
		t.Fatalf("SCXFailureRate = %v, want 0.2", got)
	}
	if got := (template.Counters{}).SCXFailureRate(); got != 0 {
		t.Fatalf("empty SCXFailureRate = %v, want 0", got)
	}
}

// TestOpStatsReset covers Reset between experiment phases.
func TestOpStatsReset(t *testing.T) {
	h := core.NewHandle()
	r := core.NewRecord(1, []any{0})
	var st template.OpStats
	for i := 0; i < 3; i++ {
		template.Run(h, nil, &st, func(c *template.Ctx) (struct{}, template.Action) {
			snap, s := c.LLX(r)
			if s != core.LLXOK {
				return struct{}{}, template.Retry
			}
			if c.SCX([]*core.Record{r}, nil, r.Field(0), snap[0].(int)+1) {
				return struct{}{}, template.Done
			}
			return struct{}{}, template.Retry
		})
	}
	if snap := st.Snapshot(); snap.Ops != 3 {
		t.Fatalf("Ops = %d, want 3", snap.Ops)
	}
	st.Reset()
	if snap := st.Snapshot(); snap != (template.Counters{}) {
		t.Fatalf("after Reset: %+v", snap)
	}
}
