// Package reclaim is the DEBRA-style epoch-based memory-reclamation layer
// that makes the repository's update paths GC-free in steady state: retired
// nodes and SCX descriptors are recycled through typed freelists instead of
// being abandoned to the garbage collector.
//
// The scheme is the classic three-epoch one, adapted to Go's memory model,
// with DEBRA's key refinement: the per-operation announcement is amortized
// away.
//
//   - A Domain holds a global epoch counter and a fixed array of padded
//     announcement slots. Each Local (one per core.Handle/Process) owns a
//     slot; the slot stays PUBLISHED ACROSS OPERATIONS and is refreshed to
//     the current epoch only every quiesceEvery operations, at an explicit
//     Quiesce, or when a freelist runs dry — so the steady-state Enter/Exit
//     pair is a local depth bump with no shared stores at all.
//   - Retire appends an object to the Local's limbo list, stamped with a
//     FRESH read of the global epoch (never a cached one: the stamp must be
//     taken after the object became unreachable, which is what bounds the
//     announcements of any process still holding a reference).
//   - The global epoch advances from E to E+1 only when every active
//     announcement equals E, so while a process stays announced at a the
//     epoch can never exceed a+1. A stale announcement (one that has not
//     been refreshed for up to quiesceEvery operations, or that belongs to
//     an idle Local that never quiesced) therefore DELAYS advancement —
//     limbo caps overflow to the GC, so memory stays bounded — but never
//     breaks the grace-period argument, which only ever relies on
//     announcements capping the epoch.
//   - A limbo entry stamped e is recycled once the global epoch reaches
//     e+2: any process that obtained a reference before the retire last
//     refreshed its announcement at e or earlier, so it must have passed a
//     quiescent point (and thereby dropped the reference) before the epoch
//     could reach e+2.
//
// Entries may carry a ready predicate (SCX descriptors use one: "no record's
// info field points at this descriptor any more, and the descriptor's
// embedded legacy box is not installed in any field"). Such entries get a
// SECOND full grace period measured from the moment the predicate is first
// observed true. The re-stamp is load-bearing: a descriptor is typically
// retired long before it is displaced from the info fields of the records it
// froze, so its retire stamp says nothing about helpers that learned of it
// afterwards; the post-ready stamp does, because every such helper has been
// continuously announced since before the displacement was observed (see
// DESIGN.md, "Why recycling cannot resurrect a descriptor").
//
// Announcement slots are recycled: Local.Release returns the slot to a
// lock-free free list inside the Domain, and a GC finalizer scavenges the
// slots of Locals that were simply dropped, so `assigned` tracks peak
// concurrency instead of growing monotonically and advance scans never
// iterate dead slots forever.
//
// Because Go is garbage-collected, every overflow path is safe by
// construction: when a limbo list or freelist hits its cap, or a ready
// predicate never passes, entries are simply dropped — the GC keeps them
// alive as long as anything references them and collects them afterwards.
// Reclamation here is a performance mechanism; it is never required for
// safety, so a stalled (parked or merely stale) process bounds throughput of
// recycling, not correctness.
package reclaim

import (
	"runtime"
	"sync/atomic"
	"time"
	"unsafe"
)

// MaxSlots is the number of announcement slots in a Domain. Locals beyond
// this many fall back to a shared overflow counter that blocks epoch
// advancement while any of them is inside an operation: reclamation slows
// down, but stays safe.
const MaxSlots = 1024

const (
	// limboCap bounds a Local's limbo list; the oldest entries beyond it
	// are dropped to the garbage collector. Sized to absorb the retirement
	// burst a writer accumulates while a peer sits descheduled on a stale
	// announcement for a whole scheduler timeslice (epoch advance is blocked
	// for the slice, so nothing graduates): at ~10k retirements per
	// timeslice, a cap of 4096 forced thousands of drops — and matching GC
	// cycles — per slice on an oversubscribed box, which is exactly the
	// config the GOMAXPROCS-scaling benchmarks run.
	limboCap = 16384
	// freeCap bounds each per-pool freelist; surplus recycled objects are
	// dropped to the garbage collector rather than hoarded. It must be able
	// to hold the recycling burst that graduates when a long-blocked epoch
	// finally advances (see limboCap): a freelist much smaller than the
	// limbo it drains throws the surplus to the GC and forces subsequent
	// allocations fresh from the heap.
	freeCap = 8192
	// quiesceEvery is the operation cadence at which a Local refreshes its
	// published announcement to the current epoch (and attempts an epoch
	// advance + drain). Between refreshes the announcement goes stale by
	// design; the staleness bound is what makes Enter/Exit store-free.
	quiesceEvery = 64
	// refreshRounds bounds how many refresh→advance→drain iterations one
	// quiescent point performs. More than one round lets a lone Local walk
	// the epoch far enough to free its own recently retired entries (each
	// entry needs the epoch to move two past its stamp); the cap keeps a
	// quiescent point O(1).
	refreshRounds = 3
	// parkedCap bounds the parked list (ready-gated entries whose
	// predicate has not passed yet, e.g. descriptors still installed in a
	// rarely-written record's info field); overflow drops to the GC. Sized
	// like limboCap: descriptors park at the same rate nodes retire.
	parkedCap = 16384
	// parkScanBatch bounds how many parked entries one drain re-examines,
	// so a large parked population cannot make a drain expensive.
	parkScanBatch = 32
)

// slot is one padded announcement word: 0 when inactive, epoch<<1|1 while
// its Local is published. nextFree links the slot into the Domain's free
// list while it is unowned; the pad keeps unrelated Locals' announcements
// off each other's cache lines.
type slot struct {
	v        atomic.Uint64
	nextFree atomic.Uint32 // index+1 of the next free slot; owned by the free list
	_        [52]byte
}

// Domain is one reclamation scope: a global epoch and the announcement
// slots of every Local attached to it. The package-level Default domain is
// shared by all of core's processes; separate Domains exist for tests.
//
// Layout: epoch and lastScan are the two words CASed by concurrent
// advancers, and the slot array is stored to by every refresh; each gets
// its own cache line so an advance CAS does not invalidate the line a
// refresh is about to read (epoch) or the bookkeeping counters nobody hot
// touches (assigned/overflow/freeHead).
type Domain struct {
	epoch atomic.Uint64
	_     [56]byte
	// lastScan is e+1 once an advance scan for epoch e has started; it
	// rate-limits opportunistic advance attempts (N cores need not scan
	// the slot array N times for the same epoch).
	lastScan  atomic.Uint64
	_         [56]byte
	assigned  atomic.Uint32 // high-water mark of slots handed out
	overflow  atomic.Int64  // active Locals without a slot
	advances  atomic.Uint64 // successful epoch advances, for tests/stats
	attempts  atomic.Uint64 // advance scans started (successful or not)
	scavenged atomic.Uint64 // slots reclaimed by the GC finalizer, for tests
	freeHead  atomic.Uint64 // versioned head of the free-slot list: version<<32 | index+1
	// Aggregate depth gauges, delta-folded from the Locals at their
	// quiescent points (refresh/Quiesce/Park) and unreported at release —
	// the observability plane reads domain-wide depths without touching any
	// Local's single-owner state.
	limboDepth  atomic.Int64
	parkedDepth atomic.Int64
	freeDepth   atomic.Int64
	_           [56]byte // round the header to a line boundary so slots[0] starts fresh
	slots       [MaxSlots]slot
}

// NewDomain returns a fresh domain. The epoch starts at 1 so that stamp
// arithmetic never sees zero.
func NewDomain() *Domain {
	d := &Domain{}
	d.epoch.Store(1)
	return d
}

// Default is the domain shared by every core.Process in the program.
var Default = NewDomain()

// Epoch returns the current global epoch; for tests and diagnostics.
func (d *Domain) Epoch() uint64 { return d.epoch.Load() }

// Advances returns the number of successful epoch advances; for tests.
func (d *Domain) Advances() uint64 { return d.advances.Load() }

// Scavenged returns the number of announcement slots reclaimed from
// dropped Locals by the GC finalizer; for tests.
func (d *Domain) Scavenged() uint64 { return d.scavenged.Load() }

// Gauges is a point-in-time snapshot of the domain's progress surface: the
// numbers that tell whether DEBRA's amortized-announcement machinery is
// healthy (epoch moving, no announcement left behind) or stalling (lag
// growing, limbo piling up). The observability plane and cmd/stress report
// it.
type Gauges struct {
	Epoch       uint64 // current global epoch
	OldestLag   uint64 // current epoch minus the oldest active announcement
	ActiveSlots int    // announcement slots currently published
	Overflow    int64  // active Locals past MaxSlots (block every advance)
	Advances    uint64 // successful epoch advances
	Attempts    uint64 // advance scans started (Advances/Attempts = hit rate)
	Scavenged   uint64 // slots reclaimed from dropped Locals by the finalizer
	Limbo       int64  // entries awaiting their grace period (incl. pending)
	Parked      int64  // ready-gated entries whose predicate has not passed
	Free        int64  // fully recycled objects sitting in freelists
}

// Gauges snapshots the domain. The depth gauges lag each Local's live state
// by at most one quiescent point (they are delta-folded at refresh/Quiesce/
// Park); the epoch fields are exact at their individual load instants.
func (d *Domain) Gauges() Gauges {
	g := Gauges{
		Epoch:     d.epoch.Load(),
		Overflow:  d.overflow.Load(),
		Advances:  d.advances.Load(),
		Attempts:  d.attempts.Load(),
		Scavenged: d.scavenged.Load(),
		Limbo:     d.limboDepth.Load(),
		Parked:    d.parkedDepth.Load(),
		Free:      d.freeDepth.Load(),
	}
	g.OldestLag, g.ActiveSlots = d.oldestLag(g.Epoch)
	return g
}

// oldestLag scans the assigned announcement slots: how many are published,
// and how far the oldest published epoch trails e. A lag that stays >= 1
// across scrapes is the signature of a stale announcement pinning the
// epoch (an un-quiesced idle Local, or a descheduled process).
func (d *Domain) oldestLag(e uint64) (lag uint64, active int) {
	n := int(d.assigned.Load())
	if n > MaxSlots {
		n = MaxSlots
	}
	oldest := e
	for i := 0; i < n; i++ {
		v := d.slots[i].v.Load()
		if v&1 != 1 {
			continue
		}
		active++
		if ep := v >> 1; ep < oldest {
			oldest = ep
		}
	}
	return e - oldest, active
}

// AwaitMobile waits until the domain's epoch can advance again, running the
// garbage collector so the finalizer can scavenge announcement slots of
// dropped Locals. It reports whether mobility was restored within the
// timeout; false means some REACHABLE Local is holding a published (stale)
// announcement and should be quiesced or released.
//
// This is a test/diagnostic helper: allocation-freeness and recycling
// assertions in this repository's tests share one process and one Default
// domain, so a Local leaked by an earlier test would otherwise pin the
// epoch under them. Production code never needs it — a live system either
// keeps operating (refresh cadence), quiesces, or drops its Locals to the
// GC, which is exactly what this helper accelerates.
func (d *Domain) AwaitMobile(timeout time.Duration) bool {
	probe := NewLocal(d)
	defer probe.Release()
	deadline := time.Now().Add(timeout)
	for {
		before := d.epoch.Load()
		probe.Enter()
		probe.Exit()
		probe.Quiesce()
		if d.epoch.Load() > before {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		runtime.GC()
		time.Sleep(time.Millisecond)
	}
}

// tryAdvance advances the global epoch by one if every active announcement
// equals the current epoch and no overflow Local is active. It reports
// whether the epoch moved. Failure is always benign: some process is still
// announced under an older epoch (possibly just stale — it will refresh
// within quiesceEvery of its operations).
//
// force distinguishes a caller that just changed the world (refreshed its
// own announcement, or unpublished it) from an opportunistic one: an
// opportunistic attempt is skipped entirely when a scan for the current
// epoch has already started, because nothing has changed that could make a
// repeat succeed. The scan itself early-exits as soon as the epoch moves
// under it, and aborts at the first stale slot, so failed scans stay cheap.
func (d *Domain) tryAdvance(force bool) bool {
	e := d.epoch.Load()
	if d.overflow.Load() != 0 {
		return false
	}
	last := d.lastScan.Load()
	if last > e && !force {
		return false // this epoch has already been scanned; nothing new to learn
	}
	if last <= e && !d.lastScan.CompareAndSwap(last, e+1) {
		return false // another advancer claimed the scan for this epoch
	}
	d.attempts.Add(1)
	n := int(d.assigned.Load())
	if n > MaxSlots {
		n = MaxSlots
	}
	for i := 0; i < n; i++ {
		v := d.slots[i].v.Load()
		if v&1 == 1 && v>>1 != e {
			return false
		}
		if i&63 == 63 && d.epoch.Load() != e {
			return false // someone else advanced; the rest of the scan is moot
		}
	}
	if d.epoch.CompareAndSwap(e, e+1) {
		d.advances.Add(1)
		return true
	}
	return false
}

// claimSlot hands l an announcement slot: a recycled one from the free list
// when available, else the next never-used one. It reports false when the
// domain is out of slots (the caller falls back to the overflow counter).
func (l *Local) claimSlot() bool {
	d := l.dom
	for {
		h := d.freeHead.Load()
		idx := uint32(h)
		if idx == 0 {
			break // free list empty
		}
		next := d.slots[idx-1].nextFree.Load()
		nh := (h>>32+1)<<32 | uint64(next)
		if d.freeHead.CompareAndSwap(h, nh) {
			l.slot = &d.slots[idx-1]
			l.slotIdx = idx - 1
			runtime.SetFinalizer(l, (*Local).scavenge)
			return true
		}
	}
	// The load-before-Add keeps exhausted domains cheap: once assigned has
	// crossed MaxSlots it never comes back down (it is a high-water mark;
	// recycling goes through the free list), so overflow Locals stop
	// hammering the counter.
	if d.assigned.Load() < MaxSlots {
		if i := d.assigned.Add(1); i <= MaxSlots {
			l.slot = &d.slots[i-1]
			l.slotIdx = i - 1
			runtime.SetFinalizer(l, (*Local).scavenge)
			return true
		}
	}
	return false
}

// releaseSlot unpublishes l's announcement and pushes its slot onto the
// domain's free list. The versioned head makes the push/pop pair ABA-safe:
// a pop that read a stale head fails its CAS because the version moved,
// even if the same index is back on top.
func (l *Local) releaseSlot() {
	d, s, idx := l.dom, l.slot, l.slotIdx
	l.slot = nil
	l.published = 0
	s.v.Store(0)
	for {
		h := d.freeHead.Load()
		s.nextFree.Store(uint32(h))
		nh := (h>>32+1)<<32 | uint64(idx+1)
		if d.freeHead.CompareAndSwap(h, nh) {
			return
		}
	}
}

// scavenge is the GC finalizer for slot-holding Locals: a Local that was
// dropped without Release would otherwise leave its last announcement
// published forever, pinning the domain's epoch. By the time the finalizer
// runs the Local is unreachable, so no goroutine can be inside one of its
// operations (an operating goroutine keeps its Local reachable from its
// stack) and unpublishing is safe. The only exception is a goroutine that
// died mid-operation; its depth is still positive and the slot must stay
// pinned — safety over throughput.
func (l *Local) scavenge() {
	if l.depth != 0 || l.slot == nil {
		return
	}
	l.unfoldDepths()
	l.releaseSlot()
	l.dom.scavenged.Add(1)
}

// entry is one retired object awaiting its grace period.
type entry struct {
	p      unsafe.Pointer
	epoch  uint64 // global epoch at retire (or at ready-observation, once re-stamped)
	id     uint32 // destination pool
	ready  func(unsafe.Pointer) bool
	onFree func(unsafe.Pointer)
}

// flist is one per-pool freelist of fully reclaimed objects.
type flist struct {
	items []unsafe.Pointer
}

// Stats are a Local's reclamation counters (single-owner; read them from the
// owning goroutine or quiescently).
type Stats struct {
	Retired  uint64 // objects handed to Retire
	Recycled uint64 // objects that reached a freelist
	Reused   uint64 // freelist pops that satisfied an allocation
	Dropped  uint64 // objects abandoned to the GC (caps, stuck ready checks)
}

// Local is the per-process reclamation state: announcement slot, limbo list
// and freelists. A Local is confined to its owning Process/Handle and must
// not be used concurrently.
type Local struct {
	dom     *Domain
	slot    *slot
	slotIdx uint32
	// published is the epoch value currently stored in the slot (0 when
	// unpublished). It is the owner's cache of its own announcement: the
	// steady-state Enter reads it instead of any shared word.
	published uint64
	depth     int32
	// overflowing is set while a slotless Local holds the overflow counter;
	// such Locals keep the classic per-operation protocol (the counter has
	// no epoch to go stale, so holding it across operations would block
	// advancement forever).
	overflowing bool
	ops         uint64
	// needAdvance asks the next quiescent point to refresh immediately: a
	// freelist ran dry mid-operation and recycling is worth accelerating.
	needAdvance bool

	// limbo holds freshly retired entries in FIFO stamp order. Ready-gated
	// entries whose predicate has not passed when their grace elapses move
	// to parked; entries whose predicate has passed move to pending for a
	// second grace period measured from the observation (see drain).
	limbo    []entry
	head     int
	pending  []entry
	phead    int
	parked   []entry
	parkScan int

	free  map[uint32]*flist
	stats Stats
	// freeLen tracks the total item count across the freelists, and the
	// rep* fields remember what this Local last folded into the domain's
	// aggregate depth gauges (foldDepths publishes only the deltas, so the
	// hot quiescent points usually compare and skip).
	freeLen   int
	repLimbo  int
	repParked int
	repFree   int
}

// foldDepths publishes the Local's current limbo/parked/freelist depths
// into the domain's aggregate gauges as deltas since the last fold. Called
// at quiescent points only (single-owner state); when nothing changed it is
// three compares and no shared store.
func (l *Local) foldDepths() {
	d := l.dom
	if limbo := (len(l.limbo) - l.head) + (len(l.pending) - l.phead); limbo != l.repLimbo {
		d.limboDepth.Add(int64(limbo - l.repLimbo))
		l.repLimbo = limbo
	}
	if parked := len(l.parked); parked != l.repParked {
		d.parkedDepth.Add(int64(parked - l.repParked))
		l.repParked = parked
	}
	if l.freeLen != l.repFree {
		d.freeDepth.Add(int64(l.freeLen - l.repFree))
		l.repFree = l.freeLen
	}
}

// unfoldDepths retracts this Local's contribution to the aggregate gauges;
// the release/scavenge counterpart of foldDepths (whatever the Local still
// holds is abandoned to the GC with it, so it must leave the gauges too).
func (l *Local) unfoldDepths() {
	d := l.dom
	if l.repLimbo != 0 {
		d.limboDepth.Add(-int64(l.repLimbo))
		l.repLimbo = 0
	}
	if l.repParked != 0 {
		d.parkedDepth.Add(-int64(l.repParked))
		l.repParked = 0
	}
	if l.repFree != 0 {
		d.freeDepth.Add(-int64(l.repFree))
		l.repFree = 0
	}
}

// NewLocal returns a Local attached to d (nil means the Default domain).
// The announcement slot is claimed lazily on first Enter.
func NewLocal(d *Domain) *Local {
	if d == nil {
		d = Default
	}
	return &Local{dom: d}
}

// Domain returns the domain the Local announces in.
func (l *Local) Domain() *Domain { return l.dom }

// Stats returns the Local's reclamation counters.
func (l *Local) Stats() Stats { return l.stats }

// Active reports whether the Local is currently inside an Enter/Exit pair.
func (l *Local) Active() bool { return l.depth > 0 }

// LimboLen returns the number of objects currently awaiting reclamation
// (fresh limbo, post-ready pending, and parked); for tests.
func (l *Local) LimboLen() int {
	return (len(l.limbo) - l.head) + (len(l.pending) - l.phead) + len(l.parked)
}

// Enter marks the start of an operation that may hold references into
// shared structures. In steady state it is a depth bump and one local
// comparison: the announcement published by an earlier operation (or
// refresh) is still in the slot and still caps the global epoch, so nothing
// needs to be stored. Only a Local whose slot is unpublished — first use,
// or resuming after Quiesce/Park — pays the publication store. Enter/Exit
// pairs nest; only the outermost pair is an operation boundary.
func (l *Local) Enter() {
	l.depth++
	if l.depth > 1 {
		return
	}
	if l.published != 0 {
		return // already announced; staleness is bounded by the Exit cadence
	}
	l.publish()
}

// publish stores the current epoch into the slot and re-reads the epoch
// until they agree. A plain load-then-store would leave a window in which
// this Local is still invisible while the epoch advances past the loaded
// value — grace periods could then elapse "around" a stale announcement and
// the reuse-safety proofs (which assume an announcement at a caps the
// global epoch at a+1 from the moment publish returns) would not hold.
// After this loop, the store of the final value e precedes (in the seq-cst
// order) a load observing the epoch still equal to e, so any advance to e+2
// must first scan and see this slot active at e.
func (l *Local) publish() {
	if l.slot == nil && !l.claimSlot() {
		// The overflow counter is an atomic RMW: it is globally visible the
		// moment it completes, and it blocks every advance, so it needs no
		// epoch revalidation.
		l.dom.overflow.Add(1)
		l.overflowing = true
		return
	}
	e := l.dom.epoch.Load()
	for {
		l.slot.v.Store(e<<1 | 1)
		e2 := l.dom.epoch.Load()
		if e2 == e {
			break
		}
		e = e2
	}
	l.published = e
}

// Exit marks the end of an operation. Every reference obtained since the
// matching Enter must be dead before Exit is called. The announcement is
// deliberately NOT cleared: it stays published (going stale) until the
// refresh cadence, a dry freelist, or an explicit Quiesce renews it, which
// is what makes the steady-state Exit store-free.
func (l *Local) Exit() {
	l.depth--
	if l.depth > 0 {
		return
	}
	if l.depth < 0 {
		panic("reclaim: Exit without matching Enter")
	}
	if l.overflowing {
		l.dom.overflow.Add(-1)
		l.overflowing = false
	}
	l.ops++
	if l.needAdvance || l.ops%quiesceEvery == 0 {
		l.refresh()
	}
}

// refresh is the quiescent point: the Local holds no references (depth 0),
// so re-publishing its announcement at the CURRENT epoch is safe — any
// reference it obtains afterwards is obtained at or after the new value.
// (Mid-operation the same store would be unsound: raising the announcement
// from a to a+1 while holding references stamped a would let their grace
// period elapse under us.) Each round publishes, attempts an advance, and
// drains; extra rounds only run while this Local is the one unblocking the
// epoch, letting a lone Local walk its own retirees through their two-epoch
// grace without waiting for future operations.
func (l *Local) refresh() {
	l.needAdvance = false
	for i := 0; i < refreshRounds; i++ {
		if l.slot != nil {
			if e := l.dom.epoch.Load(); e != l.published {
				for {
					l.slot.v.Store(e<<1 | 1)
					e2 := l.dom.epoch.Load()
					if e2 == e {
						break
					}
					e = e2
				}
				l.published = e
			}
		}
		advanced := l.dom.tryAdvance(true)
		if l.head < len(l.limbo) || l.phead < len(l.pending) || len(l.parked) > 0 {
			l.drain()
		}
		if !advanced || (l.head >= len(l.limbo) && l.phead >= len(l.pending)) {
			break
		}
	}
	l.foldDepths()
}

// Quiesce is an explicit quiescent point: the caller declares that it holds
// no references into any shared structure and may not operate again for a
// while. The announcement is unpublished entirely — an idle Local with a
// published (stale) announcement blocks epoch advancement domain-wide, so
// anything that goes to sleep between operations (a server connection
// waiting for its next request, a worker parked on a channel) should
// Quiesce first. The next Enter republishes. Quiesce also makes a forced
// advance attempt and drains, so the caller's own retirees keep moving.
// It must be called at operation boundaries only (depth 0).
func (l *Local) Quiesce() {
	if l.depth != 0 {
		panic("reclaim: Quiesce inside an operation")
	}
	l.needAdvance = false
	if l.slot != nil && l.published != 0 {
		l.slot.v.Store(0)
		l.published = 0
	}
	l.dom.tryAdvance(true)
	if l.head < len(l.limbo) || l.phead < len(l.pending) || len(l.parked) > 0 {
		l.drain()
	}
	l.foldDepths()
}

// Park unpublishes the announcement without the advance attempt or drain:
// the cheap form of Quiesce used when a Handle returns to its pool. Parking
// mid-operation is a caller bug; Park ignores it (the announcement stays,
// which is always safe) rather than crash a release path.
func (l *Local) Park() {
	if l.depth != 0 {
		return
	}
	if l.slot != nil && l.published != 0 {
		l.slot.v.Store(0)
		l.published = 0
	}
	l.dom.tryAdvance(false)
	l.foldDepths()
}

// Release ends this Local's participation in the domain: it quiesces and
// returns the announcement slot to the domain's free list, where the next
// slotless Local will claim it. The Local must not be used afterwards (a
// stray Enter would claim a fresh slot and silently resurrect it).
// Ownership rule: a slot is owned by exactly one Local from claim to
// release; only the owner ever stores to slot.v while it owns it, and the
// free list hands a released slot to at most one next owner (the versioned
// head makes the handoff ABA-safe).
func (l *Local) Release() {
	if l.depth != 0 {
		panic("reclaim: Release inside an operation")
	}
	l.Quiesce()
	l.unfoldDepths()
	if l.slot != nil {
		runtime.SetFinalizer(l, nil)
		l.releaseSlot()
	}
}

// retire places p in limbo, destined for pool id, stamped with a fresh read
// of the global epoch. ready, if non-nil, gates recycling: the entry gets a
// fresh grace period measured from the first drain that observes ready true.
func (l *Local) retire(p unsafe.Pointer, id uint32, ready func(unsafe.Pointer) bool, onFree func(unsafe.Pointer)) {
	l.stats.Retired++
	l.limbo = append(l.limbo, entry{
		p: p, epoch: l.dom.epoch.Load(), id: id, ready: ready, onFree: onFree,
	})
	if len(l.limbo)-l.head > limboCap {
		// A stalled announcement elsewhere is blocking the epoch; bound our
		// memory by abandoning the oldest entry to the garbage collector,
		// which is always safe.
		l.head++
		l.stats.Dropped++
		l.compact()
	}
}

// drain advances retired entries through their grace periods.
//
// Plain entries free once the global epoch passes their retire stamp by 2.
// Ready-gated entries (descriptors) take the long way: grace after retire,
// then the predicate must pass — an entry whose predicate fails parks until
// a later drain sees it pass — and then a SECOND grace period, measured
// from the observation and padded by one extra epoch. The pad matters: a
// helper can learn a descriptor's address as an expected info value out of
// another descriptor built just before the displacement was observed, and
// such a helper may have announced one epoch after the observation; the
// +1 stamp keeps the reuse strictly outside every such helper's window
// (see DESIGN.md, "Why recycling cannot resurrect a descriptor").
func (l *Local) drain() {
	e := l.dom.epoch.Load()
	for l.head < len(l.limbo) {
		ent := l.limbo[l.head]
		if ent.epoch+2 > e {
			break // too young; everything behind it is younger still
		}
		l.head++
		if ent.ready != nil {
			if ent.ready(ent.p) {
				// Stamp from a FRESH epoch read taken after the observation
				// (the epoch may have advanced since this drain began; a
				// stale read would erase the pad and allow reuse one epoch
				// early — inside the window of a helper that learned the
				// address just before the displacement).
				ent.epoch = l.dom.epoch.Load() + 1
				ent.ready = nil
				l.pending = append(l.pending, ent)
			} else {
				l.park(ent)
			}
			continue
		}
		l.toFree(ent)
	}
	for l.phead < len(l.pending) {
		ent := l.pending[l.phead]
		if ent.epoch+2 > e {
			break
		}
		l.phead++
		l.toFree(ent)
	}
	l.scanParked()
	l.compact()
}

// park holds a ready-gated entry whose predicate has not passed yet (for a
// descriptor: it is still installed in some record's info field, which can
// last until that record is next written). Overflow drops to the GC.
func (l *Local) park(ent entry) {
	if len(l.parked) >= parkedCap {
		l.stats.Dropped++
		return
	}
	l.parked = append(l.parked, ent)
}

// scanParked re-examines up to parkScanBatch parked entries, moving those
// whose predicate now passes into pending with a fresh padded stamp.
func (l *Local) scanParked() {
	n := len(l.parked)
	if n == 0 {
		return
	}
	batch := parkScanBatch
	if batch > n {
		batch = n
	}
	for i := 0; i < batch; i++ {
		if l.parkScan >= len(l.parked) {
			l.parkScan = 0
		}
		ent := l.parked[l.parkScan]
		if ent.ready(ent.p) {
			// Fresh epoch read after the observation; see drain.
			ent.epoch = l.dom.epoch.Load() + 1
			ent.ready = nil
			l.pending = append(l.pending, ent)
			last := len(l.parked) - 1
			l.parked[l.parkScan] = l.parked[last]
			l.parked = l.parked[:last]
		} else {
			l.parkScan++
		}
	}
}

// toFree pushes an entry that survived its grace period onto its pool's
// freelist, counting it as recycled. The pool's onFree hook runs first —
// the object is provably unreachable here, which is exactly when a node's
// record may rewind its info pointer (releasing the descriptor it would
// otherwise pin in parked; see Pool.SetOnFree).
func (l *Local) toFree(ent entry) {
	if ent.onFree != nil {
		ent.onFree(ent.p)
	}
	if l.pushFree(ent.id, ent.p) {
		l.stats.Recycled++
	} else {
		l.stats.Dropped++
	}
}

// pushFree appends p to pool id's freelist, reporting false when the cap
// drops it instead. It does not touch the stats: Recycled means "survived
// a grace period", which Pool.Release's never-published objects did not.
func (l *Local) pushFree(id uint32, p unsafe.Pointer) bool {
	if l.free == nil {
		l.free = make(map[uint32]*flist)
	}
	fl := l.free[id]
	if fl == nil {
		fl = &flist{}
		l.free[id] = fl
	}
	if len(fl.items) >= freeCap {
		return false
	}
	fl.items = append(fl.items, p)
	l.freeLen++
	return true
}

// compact reclaims the drained prefixes of the limbo slices once they
// dominate.
func (l *Local) compact() {
	if l.head > 64 && l.head*2 >= len(l.limbo) {
		n := copy(l.limbo, l.limbo[l.head:])
		clear(l.limbo[n:])
		l.limbo = l.limbo[:n]
		l.head = 0
	}
	if l.phead > 64 && l.phead*2 >= len(l.pending) {
		n := copy(l.pending, l.pending[l.phead:])
		clear(l.pending[n:])
		l.pending = l.pending[:n]
		l.phead = 0
	}
}

// get pops a reclaimed object destined for pool id, or nil. When the
// freelist is dry it accelerates recycling: at an operation boundary it
// runs a full quiescent refresh; inside an operation it may only attempt an
// advance (its own announcement cannot move — references are live — but
// other Locals' refreshes may already allow the epoch forward) and flags
// the next Exit to refresh immediately instead of waiting out the cadence.
// In a balanced steady state (every operation retires about as much as it
// allocates) this keeps the freelist primed and the path allocation-free.
func (l *Local) get(id uint32) unsafe.Pointer {
	for attempt := 0; ; attempt++ {
		if fl := l.free[id]; fl != nil && len(fl.items) > 0 {
			p := fl.items[len(fl.items)-1]
			fl.items = fl.items[:len(fl.items)-1]
			l.freeLen--
			l.stats.Reused++
			return p
		}
		if attempt > 0 ||
			(l.head >= len(l.limbo) && l.phead >= len(l.pending) && len(l.parked) == 0) {
			return nil
		}
		if l.depth == 0 {
			l.refresh()
		} else {
			l.needAdvance = true
			l.dom.tryAdvance(true)
			l.drain()
		}
	}
}

// Pool hands out and takes back objects of one type, backed by the
// per-Local freelists. Create one Pool per object kind (typically one per
// structure instance) and share it freely: the Pool itself is stateless
// apart from its identity.
type Pool[T any] struct {
	id     uint32
	ready  func(unsafe.Pointer) bool
	onFree func(unsafe.Pointer)
}

// nextPoolID allocates pool identities; 0 is never used.
var nextPoolID atomic.Uint32

// NewPool returns a pool for T with no ready predicate (plain grace-period
// recycling, the right default for structure nodes).
func NewPool[T any]() *Pool[T] {
	return &Pool[T]{id: nextPoolID.Add(1)}
}

// NewPoolReady returns a pool whose retired objects must additionally pass
// ready (observed under the re-stamp rule) before recycling; used by SCX
// descriptors.
func NewPoolReady[T any](ready func(*T) bool) *Pool[T] {
	p := &Pool[T]{id: nextPoolID.Add(1)}
	p.ready = func(q unsafe.Pointer) bool { return ready((*T)(q)) }
	return p
}

// SetOnFree installs a hook run on each retired object at the moment it
// enters a freelist — after its grace period, so the object is provably
// unreachable. Structures use it to rewind a finalized node's record
// (info pointer, marked bit) without waiting for the node's next reuse:
// a finalized record's info field otherwise designates the finalizing SCX
// descriptor indefinitely, parking that descriptor's own recycling. Call
// once, before the pool is shared.
func (p *Pool[T]) SetOnFree(fn func(*T)) {
	p.onFree = func(q unsafe.Pointer) { fn((*T)(q)) }
}

// Get returns a recycled *T, or nil when none is available (the caller
// allocates). The object's contents are whatever its previous life left
// there; the caller must fully reinitialize it before publication.
func (p *Pool[T]) Get(l *Local) *T {
	if l == nil {
		return nil
	}
	return (*T)(l.get(p.id))
}

// Retire hands x over for recycling after its grace period. x must already
// be unreachable from the shared structure (unlinked before Retire), and the
// call must happen while l is Entered, or at least after the unlink has
// globally happened.
func (p *Pool[T]) Retire(l *Local, x *T) {
	if l == nil || x == nil {
		return
	}
	l.retire(unsafe.Pointer(x), p.id, p.ready, p.onFree)
}

// Release returns a never-published object (for example a node built by an
// update attempt that ended up not needing it) straight to the freelist: no
// grace period is required because no other process ever saw it, and it is
// not counted as Recycled (that counter means "survived a grace period").
func (p *Pool[T]) Release(l *Local, x *T) {
	if l == nil || x == nil {
		return
	}
	l.pushFree(p.id, unsafe.Pointer(x))
}
