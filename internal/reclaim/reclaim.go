// Package reclaim is the DEBRA-style epoch-based memory-reclamation layer
// that makes the repository's update paths GC-free in steady state: retired
// nodes and SCX descriptors are recycled through typed freelists instead of
// being abandoned to the garbage collector.
//
// The scheme is the classic three-epoch one, adapted to Go's memory model:
//
//   - A Domain holds a global epoch counter and a fixed array of padded
//     announcement slots. Each Local (one per core.Handle/Process) owns a
//     slot; Enter announces the current global epoch there, Exit clears it.
//   - Retire appends an object to the Local's limbo list, stamped with a
//     FRESH read of the global epoch (never a cached one: the stamp must be
//     taken after the object became unreachable, which is what bounds the
//     announcements of any process still holding a reference).
//   - The global epoch advances from E to E+1 only when every active
//     announcement equals E, so while a process with announcement a stays
//     inside an operation the epoch can never exceed a+1.
//   - A limbo entry stamped e is recycled once the global epoch reaches
//     e+2: any process that obtained a reference before the retire had
//     announced at most e, so it must have exited (and thereby dropped the
//     reference) before the epoch could reach e+2.
//
// Entries may carry a ready predicate (SCX descriptors use one: "no record's
// info field points at this descriptor any more, and the descriptor's
// embedded legacy box is not installed in any field"). Such entries get a
// SECOND full grace period measured from the moment the predicate is first
// observed true. The re-stamp is load-bearing: a descriptor is typically
// retired long before it is displaced from the info fields of the records it
// froze, so its retire stamp says nothing about helpers that learned of it
// afterwards; the post-ready stamp does, because every such helper has been
// continuously announced since before the displacement was observed (see
// DESIGN.md, "Why recycling cannot resurrect a descriptor").
//
// Because Go is garbage-collected, every overflow path is safe by
// construction: when a limbo list or freelist hits its cap, or a ready
// predicate never passes, entries are simply dropped — the GC keeps them
// alive as long as anything references them and collects them afterwards.
// Reclamation here is a performance mechanism; it is never required for
// safety, so a stalled (parked) process bounds throughput of recycling, not
// correctness.
package reclaim

import (
	"sync/atomic"
	"unsafe"
)

// MaxSlots is the number of announcement slots in a Domain. Locals beyond
// this many fall back to a shared overflow counter that blocks epoch
// advancement while any of them is inside an operation: reclamation slows
// down, but stays safe.
const MaxSlots = 1024

const (
	// limboCap bounds a Local's limbo list; the oldest entries beyond it
	// are dropped to the garbage collector.
	limboCap = 4096
	// freeCap bounds each per-pool freelist; surplus recycled objects are
	// dropped to the garbage collector rather than hoarded.
	freeCap = 1024
	// advanceEvery is the Exit cadence of opportunistic epoch-advance
	// attempts. Pool.Get also attempts an advance on-demand when its
	// freelist runs dry, which is what keeps steady-state allocation at
	// zero for balanced retire/allocate workloads.
	advanceEvery = 8
	// parkedCap bounds the parked list (ready-gated entries whose
	// predicate has not passed yet, e.g. descriptors still installed in a
	// rarely-written record's info field); overflow drops to the GC.
	parkedCap = 4096
	// parkScanBatch bounds how many parked entries one drain re-examines,
	// so a large parked population cannot make Exit expensive.
	parkScanBatch = 32
)

// slot is one padded announcement word: 0 when inactive, epoch<<1|1 while
// its Local is inside an operation.
type slot struct {
	v atomic.Uint64
	_ [56]byte
}

// Domain is one reclamation scope: a global epoch and the announcement
// slots of every Local attached to it. The package-level Default domain is
// shared by all of core's processes; separate Domains exist for tests.
type Domain struct {
	epoch    atomic.Uint64
	assigned atomic.Uint32 // number of slots handed out
	overflow atomic.Int64  // active Locals without a slot
	advances atomic.Uint64 // successful epoch advances, for tests/stats
	slots    [MaxSlots]slot
}

// NewDomain returns a fresh domain. The epoch starts at 1 so that stamp
// arithmetic never sees zero.
func NewDomain() *Domain {
	d := &Domain{}
	d.epoch.Store(1)
	return d
}

// Default is the domain shared by every core.Process in the program.
var Default = NewDomain()

// Epoch returns the current global epoch; for tests and diagnostics.
func (d *Domain) Epoch() uint64 { return d.epoch.Load() }

// Advances returns the number of successful epoch advances; for tests.
func (d *Domain) Advances() uint64 { return d.advances.Load() }

// tryAdvance advances the global epoch by one if every active announcement
// equals the current epoch and no overflow Local is active. It reports
// whether the epoch moved. Failure is always benign: some process is still
// inside an operation announced under the current (or an older) epoch.
func (d *Domain) tryAdvance() bool {
	e := d.epoch.Load()
	if d.overflow.Load() != 0 {
		return false
	}
	n := int(d.assigned.Load())
	if n > MaxSlots {
		n = MaxSlots
	}
	for i := 0; i < n; i++ {
		v := d.slots[i].v.Load()
		if v&1 == 1 && v>>1 != e {
			return false
		}
	}
	if d.epoch.CompareAndSwap(e, e+1) {
		d.advances.Add(1)
		return true
	}
	return false
}

// entry is one retired object awaiting its grace period.
type entry struct {
	p      unsafe.Pointer
	epoch  uint64 // global epoch at retire (or at ready-observation, once re-stamped)
	id     uint32 // destination pool
	ready  func(unsafe.Pointer) bool
	onFree func(unsafe.Pointer)
}

// flist is one per-pool freelist of fully reclaimed objects.
type flist struct {
	items []unsafe.Pointer
}

// Stats are a Local's reclamation counters (single-owner; read them from the
// owning goroutine or quiescently).
type Stats struct {
	Retired  uint64 // objects handed to Retire
	Recycled uint64 // objects that reached a freelist
	Reused   uint64 // freelist pops that satisfied an allocation
	Dropped  uint64 // objects abandoned to the GC (caps, stuck ready checks)
}

// Local is the per-process reclamation state: announcement slot, limbo list
// and freelists. A Local is confined to its owning Process/Handle and must
// not be used concurrently.
type Local struct {
	dom   *Domain
	slot  *slot
	depth int32
	noted bool // slot assignment attempted
	ops   uint64

	// limbo holds freshly retired entries in FIFO stamp order. Ready-gated
	// entries whose predicate has not passed when their grace elapses move
	// to parked; entries whose predicate has passed move to pending for a
	// second grace period measured from the observation (see drain).
	limbo    []entry
	head     int
	pending  []entry
	phead    int
	parked   []entry
	parkScan int

	free  map[uint32]*flist
	stats Stats
}

// NewLocal returns a Local attached to d (nil means the Default domain).
// The announcement slot is claimed lazily on first Enter.
func NewLocal(d *Domain) *Local {
	if d == nil {
		d = Default
	}
	return &Local{dom: d}
}

// Domain returns the domain the Local announces in.
func (l *Local) Domain() *Domain { return l.dom }

// Stats returns the Local's reclamation counters.
func (l *Local) Stats() Stats { return l.stats }

// Active reports whether the Local is currently inside an Enter/Exit pair.
func (l *Local) Active() bool { return l.depth > 0 }

// LimboLen returns the number of objects currently awaiting reclamation
// (fresh limbo, post-ready pending, and parked); for tests.
func (l *Local) LimboLen() int {
	return (len(l.limbo) - l.head) + (len(l.pending) - l.phead) + len(l.parked)
}

// Enter announces the current global epoch, marking the start of an
// operation that may hold references into shared structures. Enter/Exit
// pairs nest; only the outermost pair touches the slot.
func (l *Local) Enter() {
	l.depth++
	if l.depth > 1 {
		return
	}
	if l.slot == nil && !l.noted {
		l.noted = true
		if i := l.dom.assigned.Add(1); i <= MaxSlots {
			l.slot = &l.dom.slots[i-1]
		}
	}
	if l.slot == nil {
		// The overflow counter is an atomic RMW: it is globally visible the
		// moment it completes, and it blocks every advance, so it needs no
		// epoch revalidation.
		l.dom.overflow.Add(1)
		return
	}
	// Publish the announcement and re-read the epoch until they agree. A
	// plain load-then-store would leave a window in which this Local is
	// still invisible while the epoch advances past the loaded value —
	// grace periods could then elapse "around" a stale announcement and the
	// reuse-safety proofs (which assume an announcement at a caps the
	// global epoch at a+1 from the moment Enter returns) would not hold.
	// After this loop, the store of the final value e precedes (in the
	// seq-cst order) a load observing the epoch still equal to e, so any
	// advance to e+2 must first scan and see this slot active at e.
	e := l.dom.epoch.Load()
	for {
		l.slot.v.Store(e<<1 | 1)
		e2 := l.dom.epoch.Load()
		if e2 == e {
			return
		}
		e = e2
	}
}

// Exit clears the announcement and opportunistically advances the epoch and
// drains the limbo list. Every reference obtained since the matching Enter
// must be dead before Exit is called.
func (l *Local) Exit() {
	l.depth--
	if l.depth > 0 {
		return
	}
	if l.depth < 0 {
		panic("reclaim: Exit without matching Enter")
	}
	if l.slot != nil {
		l.slot.v.Store(0)
	} else {
		l.dom.overflow.Add(-1)
	}
	l.ops++
	if l.ops%advanceEvery == 0 {
		l.dom.tryAdvance()
	}
	if l.head < len(l.limbo) || l.phead < len(l.pending) || len(l.parked) > 0 {
		l.drain()
	}
}

// retire places p in limbo, destined for pool id, stamped with a fresh read
// of the global epoch. ready, if non-nil, gates recycling: the entry gets a
// fresh grace period measured from the first drain that observes ready true.
func (l *Local) retire(p unsafe.Pointer, id uint32, ready func(unsafe.Pointer) bool, onFree func(unsafe.Pointer)) {
	l.stats.Retired++
	l.limbo = append(l.limbo, entry{
		p: p, epoch: l.dom.epoch.Load(), id: id, ready: ready, onFree: onFree,
	})
	if len(l.limbo)-l.head > limboCap {
		// A stalled announcement elsewhere is blocking the epoch; bound our
		// memory by abandoning the oldest entry to the garbage collector,
		// which is always safe.
		l.head++
		l.stats.Dropped++
		l.compact()
	}
}

// drain advances retired entries through their grace periods.
//
// Plain entries free once the global epoch passes their retire stamp by 2.
// Ready-gated entries (descriptors) take the long way: grace after retire,
// then the predicate must pass — an entry whose predicate fails parks until
// a later drain sees it pass — and then a SECOND grace period, measured
// from the observation and padded by one extra epoch. The pad matters: a
// helper can learn a descriptor's address as an expected info value out of
// another descriptor built just before the displacement was observed, and
// such a helper may have announced one epoch after the observation; the
// +1 stamp keeps the reuse strictly outside every such helper's window
// (see DESIGN.md, "Why recycling cannot resurrect a descriptor").
func (l *Local) drain() {
	e := l.dom.epoch.Load()
	for l.head < len(l.limbo) {
		ent := l.limbo[l.head]
		if ent.epoch+2 > e {
			break // too young; everything behind it is younger still
		}
		l.head++
		if ent.ready != nil {
			if ent.ready(ent.p) {
				// Stamp from a FRESH epoch read taken after the observation
				// (the epoch may have advanced since this drain began; a
				// stale read would erase the pad and allow reuse one epoch
				// early — inside the window of a helper that learned the
				// address just before the displacement).
				ent.epoch = l.dom.epoch.Load() + 1
				ent.ready = nil
				l.pending = append(l.pending, ent)
			} else {
				l.park(ent)
			}
			continue
		}
		l.toFree(ent)
	}
	for l.phead < len(l.pending) {
		ent := l.pending[l.phead]
		if ent.epoch+2 > e {
			break
		}
		l.phead++
		l.toFree(ent)
	}
	l.scanParked()
	l.compact()
}

// park holds a ready-gated entry whose predicate has not passed yet (for a
// descriptor: it is still installed in some record's info field, which can
// last until that record is next written). Overflow drops to the GC.
func (l *Local) park(ent entry) {
	if len(l.parked) >= parkedCap {
		l.stats.Dropped++
		return
	}
	l.parked = append(l.parked, ent)
}

// scanParked re-examines up to parkScanBatch parked entries, moving those
// whose predicate now passes into pending with a fresh padded stamp.
func (l *Local) scanParked() {
	n := len(l.parked)
	if n == 0 {
		return
	}
	batch := parkScanBatch
	if batch > n {
		batch = n
	}
	for i := 0; i < batch; i++ {
		if l.parkScan >= len(l.parked) {
			l.parkScan = 0
		}
		ent := l.parked[l.parkScan]
		if ent.ready(ent.p) {
			// Fresh epoch read after the observation; see drain.
			ent.epoch = l.dom.epoch.Load() + 1
			ent.ready = nil
			l.pending = append(l.pending, ent)
			last := len(l.parked) - 1
			l.parked[l.parkScan] = l.parked[last]
			l.parked = l.parked[:last]
		} else {
			l.parkScan++
		}
	}
}

// toFree pushes an entry that survived its grace period onto its pool's
// freelist, counting it as recycled. The pool's onFree hook runs first —
// the object is provably unreachable here, which is exactly when a node's
// record may rewind its info pointer (releasing the descriptor it would
// otherwise pin in parked; see Pool.SetOnFree).
func (l *Local) toFree(ent entry) {
	if ent.onFree != nil {
		ent.onFree(ent.p)
	}
	if l.pushFree(ent.id, ent.p) {
		l.stats.Recycled++
	} else {
		l.stats.Dropped++
	}
}

// pushFree appends p to pool id's freelist, reporting false when the cap
// drops it instead. It does not touch the stats: Recycled means "survived
// a grace period", which Pool.Release's never-published objects did not.
func (l *Local) pushFree(id uint32, p unsafe.Pointer) bool {
	if l.free == nil {
		l.free = make(map[uint32]*flist)
	}
	fl := l.free[id]
	if fl == nil {
		fl = &flist{}
		l.free[id] = fl
	}
	if len(fl.items) >= freeCap {
		return false
	}
	fl.items = append(fl.items, p)
	return true
}

// compact reclaims the drained prefixes of the limbo slices once they
// dominate.
func (l *Local) compact() {
	if l.head > 64 && l.head*2 >= len(l.limbo) {
		n := copy(l.limbo, l.limbo[l.head:])
		clear(l.limbo[n:])
		l.limbo = l.limbo[:n]
		l.head = 0
	}
	if l.phead > 64 && l.phead*2 >= len(l.pending) {
		n := copy(l.pending, l.pending[l.phead:])
		clear(l.pending[n:])
		l.pending = l.pending[:n]
		l.phead = 0
	}
}

// get pops a reclaimed object destined for pool id, or nil. When the
// freelist is dry it makes one on-demand advance-and-drain attempt: in a
// balanced steady state (every operation retires about as much as it
// allocates) this keeps the freelist primed and the path allocation-free.
func (l *Local) get(id uint32) unsafe.Pointer {
	for attempt := 0; ; attempt++ {
		if fl := l.free[id]; fl != nil && len(fl.items) > 0 {
			p := fl.items[len(fl.items)-1]
			fl.items = fl.items[:len(fl.items)-1]
			l.stats.Reused++
			return p
		}
		if attempt > 0 ||
			(l.head >= len(l.limbo) && l.phead >= len(l.pending) && len(l.parked) == 0) {
			return nil
		}
		l.dom.tryAdvance()
		l.drain()
	}
}

// Pool hands out and takes back objects of one type, backed by the
// per-Local freelists. Create one Pool per object kind (typically one per
// structure instance) and share it freely: the Pool itself is stateless
// apart from its identity.
type Pool[T any] struct {
	id     uint32
	ready  func(unsafe.Pointer) bool
	onFree func(unsafe.Pointer)
}

// nextPoolID allocates pool identities; 0 is never used.
var nextPoolID atomic.Uint32

// NewPool returns a pool for T with no ready predicate (plain grace-period
// recycling, the right default for structure nodes).
func NewPool[T any]() *Pool[T] {
	return &Pool[T]{id: nextPoolID.Add(1)}
}

// NewPoolReady returns a pool whose retired objects must additionally pass
// ready (observed under the re-stamp rule) before recycling; used by SCX
// descriptors.
func NewPoolReady[T any](ready func(*T) bool) *Pool[T] {
	p := &Pool[T]{id: nextPoolID.Add(1)}
	p.ready = func(q unsafe.Pointer) bool { return ready((*T)(q)) }
	return p
}

// SetOnFree installs a hook run on each retired object at the moment it
// enters a freelist — after its grace period, so the object is provably
// unreachable. Structures use it to rewind a finalized node's record
// (info pointer, marked bit) without waiting for the node's next reuse:
// a finalized record's info field otherwise designates the finalizing SCX
// descriptor indefinitely, parking that descriptor's own recycling. Call
// once, before the pool is shared.
func (p *Pool[T]) SetOnFree(fn func(*T)) {
	p.onFree = func(q unsafe.Pointer) { fn((*T)(q)) }
}

// Get returns a recycled *T, or nil when none is available (the caller
// allocates). The object's contents are whatever its previous life left
// there; the caller must fully reinitialize it before publication.
func (p *Pool[T]) Get(l *Local) *T {
	if l == nil {
		return nil
	}
	return (*T)(l.get(p.id))
}

// Retire hands x over for recycling after its grace period. x must already
// be unreachable from the shared structure (unlinked before Retire), and the
// call must happen while l is Entered, or at least after the unlink has
// globally happened.
func (p *Pool[T]) Retire(l *Local, x *T) {
	if l == nil || x == nil {
		return
	}
	l.retire(unsafe.Pointer(x), p.id, p.ready, p.onFree)
}

// Release returns a never-published object (for example a node built by an
// update attempt that ended up not needing it) straight to the freelist: no
// grace period is required because no other process ever saw it, and it is
// not counted as Recycled (that counter means "survived a grace period").
func (p *Pool[T]) Release(l *Local, x *T) {
	if l == nil || x == nil {
		return
	}
	l.pushFree(p.id, unsafe.Pointer(x))
}
