package reclaim

import (
	"sync"
	"sync/atomic"
	"testing"
)

type thing struct{ v int }

// cycle runs one empty Enter/Exit pair, the unit of quiescence.
func cycle(l *Local) {
	l.Enter()
	l.Exit()
}

func TestRetireRecycleRoundtrip(t *testing.T) {
	d := NewDomain()
	l := NewLocal(d)
	pool := NewPool[thing]()

	x := &thing{v: 42}
	l.Enter()
	pool.Retire(l, x)
	l.Exit()

	// Two quiescent cycles advance the epoch past the grace period.
	var got *thing
	for i := 0; i < 4*advanceEvery && got == nil; i++ {
		cycle(l)
		got = pool.Get(l)
	}
	if got != x {
		t.Fatalf("recycled object = %p, want the retired one %p", got, x)
	}
	st := l.Stats()
	if st.Retired != 1 || st.Recycled != 1 || st.Reused != 1 {
		t.Errorf("stats = %+v, want Retired=Recycled=Reused=1", st)
	}
}

func TestOnDemandAdvanceKeepsFreelistPrimed(t *testing.T) {
	d := NewDomain()
	l := NewLocal(d)
	pool := NewPool[thing]()

	// Balanced workload: each op retires one and allocates one. After a
	// short pipeline-fill, every Get must be satisfied by recycling.
	misses := 0
	const ops = 200
	for i := 0; i < ops; i++ {
		l.Enter()
		x := pool.Get(l)
		if x == nil {
			misses++
			x = &thing{}
		}
		x.v = i
		pool.Retire(l, x)
		l.Exit()
	}
	if misses >= ops/2 {
		t.Fatalf("on-demand advance never primed the freelist: %d misses in %d ops", misses, ops)
	}
	if l.Stats().Reused == 0 {
		t.Fatal("no freelist reuse in a balanced retire/allocate loop")
	}
}

func TestGraceRespectsActiveReader(t *testing.T) {
	d := NewDomain()
	writer := NewLocal(d)
	reader := NewLocal(d)
	pool := NewPool[thing]()

	reader.Enter() // reader parks inside an operation
	x := &thing{}
	writer.Enter()
	pool.Retire(writer, x)
	writer.Exit()

	for i := 0; i < 8*advanceEvery; i++ {
		cycle(writer)
	}
	if got := pool.Get(writer); got != nil {
		t.Fatal("object recycled while a reader was still announced")
	}
	reader.Exit()
	var got *thing
	for i := 0; i < 8*advanceEvery && got == nil; i++ {
		cycle(writer)
		got = pool.Get(writer)
	}
	if got != x {
		t.Fatal("object not recycled after the reader exited")
	}
}

func TestParkedReaderBoundsLimbo(t *testing.T) {
	d := NewDomain()
	parked := NewLocal(d)
	w := NewLocal(d)
	pool := NewPool[thing]()

	parked.Enter()
	defer parked.Exit()

	const n = 3 * limboCap
	for i := 0; i < n; i++ {
		w.Enter()
		pool.Retire(w, &thing{v: i})
		w.Exit()
	}
	if got := w.LimboLen(); got > limboCap+1 {
		t.Fatalf("limbo grew to %d entries despite the cap %d", got, limboCap)
	}
	st := w.Stats()
	if st.Dropped == 0 {
		t.Fatal("overflowing limbo must drop entries to the GC")
	}
	if st.Recycled != 0 {
		t.Fatalf("recycled %d objects while a reader was parked", st.Recycled)
	}
}

func TestReadyPredicateGetsFreshGrace(t *testing.T) {
	d := NewDomain()
	l := NewLocal(d)
	ready := false
	pool := NewPoolReady[thing](func(*thing) bool { return ready })

	x := &thing{}
	l.Enter()
	pool.Retire(l, x)
	l.Exit()

	for i := 0; i < 8*advanceEvery; i++ {
		cycle(l)
	}
	if pool.Get(l) != nil {
		t.Fatal("recycled while the ready predicate was false")
	}

	ready = true
	// The first post-ready drain must re-stamp, not free: the object may not
	// appear before a fresh grace period elapses.
	epochAtReady := d.Epoch()
	var got *thing
	for i := 0; i < 16*advanceEvery && got == nil; i++ {
		cycle(l)
		got = pool.Get(l)
	}
	if got != x {
		t.Fatal("object never recycled after the ready predicate passed")
	}
	if d.Epoch() < epochAtReady+2 {
		t.Errorf("object freed at epoch %d, want >= %d (fresh grace after ready)",
			d.Epoch(), epochAtReady+2)
	}
}

func TestStuckReadyEntriesParkBoundedly(t *testing.T) {
	d := NewDomain()
	l := NewLocal(d)
	stuck := NewPoolReady[thing](func(*thing) bool { return false })
	plain := NewPool[thing]()

	// Retire more permanently-stuck entries than the parked list holds,
	// interleaved with plain entries that must keep recycling normally.
	const n = parkedCap + 500
	for i := 0; i < n; i++ {
		l.Enter()
		stuck.Retire(l, &thing{v: i})
		plain.Retire(l, &thing{v: -i})
		l.Exit()
		plain.Get(l) // keep the plain freelist bounded
	}
	if got := l.LimboLen(); got > parkedCap+limboCap {
		t.Fatalf("stuck entries grew the lists to %d; want bounded by caps", got)
	}
	if l.Stats().Dropped == 0 {
		t.Fatal("overflowing the parked list must drop entries to the GC")
	}
	if stuck.Get(l) != nil {
		t.Fatal("a stuck entry was recycled despite its predicate never passing")
	}
	if l.Stats().Reused == 0 {
		t.Fatal("plain entries must keep recycling while stuck ones park")
	}
}

func TestReleaseSkipsGrace(t *testing.T) {
	d := NewDomain()
	l := NewLocal(d)
	other := NewLocal(d)
	other.Enter() // would block any grace period
	defer other.Exit()
	pool := NewPool[thing]()

	x := &thing{}
	pool.Release(l, x)
	if got := pool.Get(l); got != x {
		t.Fatal("released (never-published) object must be immediately reusable")
	}
}

func TestPoolsDoNotMix(t *testing.T) {
	d := NewDomain()
	l := NewLocal(d)
	pa := NewPool[thing]()
	pb := NewPool[thing]()

	x := &thing{}
	pa.Release(l, x)
	if pb.Get(l) != nil {
		t.Fatal("pool B handed out pool A's object")
	}
	if pa.Get(l) != x {
		t.Fatal("pool A lost its object")
	}
}

func TestNestedEnterExit(t *testing.T) {
	d := NewDomain()
	l := NewLocal(d)
	l.Enter()
	l.Enter()
	if !l.Active() {
		t.Fatal("not active inside nested Enter")
	}
	l.Exit()
	if !l.Active() {
		t.Fatal("inner Exit ended the outer operation")
	}
	before := d.Epoch()
	for i := 0; i < 4*advanceEvery; i++ {
		cycle(NewLocal(d))
	}
	if d.Epoch() != before {
		t.Fatal("epoch advanced past an active nested operation")
	}
	l.Exit()
	if l.Active() {
		t.Fatal("still active after balanced Exits")
	}
}

// TestConcurrentEpochAgreement hammers Enter/Exit/Retire/Get from many
// goroutines (run under -race in CI): the property checked is that an
// object is never handed out by Get while any goroutine that could hold it
// is still inside its operation — the race detector does the real work via
// the happens-before edges the epoch protocol must establish.
func TestConcurrentEpochAgreement(t *testing.T) {
	d := NewDomain()
	const goroutines = 8
	const ops = 2000

	// One shared published pointer; writers swap it, retire the old value
	// through their Local, and recycle. Readers dereference under Enter.
	var shared atomic.Pointer[thing]
	shared.Store(&thing{v: 0})

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			l := NewLocal(d)
			pool := NewPool[thing]()
			for i := 0; i < ops; i++ {
				l.Enter()
				if g%2 == 0 {
					// Reader: dereference the shared thing; the race detector
					// flags any recycle-write overlapping this read.
					p := shared.Load()
					_ = p.v
				} else {
					nu := pool.Get(l)
					if nu == nil {
						nu = &thing{}
					}
					nu.v = i
					old := shared.Swap(nu)
					pool.Retire(l, old)
				}
				l.Exit()
			}
		}(g)
	}
	wg.Wait()
}
