package reclaim

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
	"unsafe"
)

type thing struct{ v int }

// cycle runs one empty Enter/Exit pair.
func cycle(l *Local) {
	l.Enter()
	l.Exit()
}

// quiesceCycle runs one Enter/Exit pair followed by an explicit quiescent
// point — the unit of guaranteed epoch progress under the amortized scheme
// (a bare Exit leaves the announcement published and stale by design).
func quiesceCycle(l *Local) {
	cycle(l)
	l.Quiesce()
}

func TestRetireRecycleRoundtrip(t *testing.T) {
	d := NewDomain()
	l := NewLocal(d)
	pool := NewPool[thing]()

	x := &thing{v: 42}
	l.Enter()
	pool.Retire(l, x)
	l.Exit()

	// Get at an operation boundary runs a quiescent refresh, which walks the
	// epoch past the grace period within a few attempts.
	var got *thing
	for i := 0; i < 8 && got == nil; i++ {
		cycle(l)
		got = pool.Get(l)
	}
	if got != x {
		t.Fatalf("recycled object = %p, want the retired one %p", got, x)
	}
	st := l.Stats()
	if st.Retired != 1 || st.Recycled != 1 || st.Reused != 1 {
		t.Errorf("stats = %+v, want Retired=Recycled=Reused=1", st)
	}
}

func TestOnDemandAdvanceKeepsFreelistPrimed(t *testing.T) {
	d := NewDomain()
	l := NewLocal(d)
	pool := NewPool[thing]()

	// Balanced workload: each op retires one and allocates one. After a
	// short pipeline-fill, every Get must be satisfied by recycling.
	misses := 0
	const ops = 200
	for i := 0; i < ops; i++ {
		l.Enter()
		x := pool.Get(l)
		if x == nil {
			misses++
			x = &thing{}
		}
		x.v = i
		pool.Retire(l, x)
		l.Exit()
	}
	if misses >= ops/2 {
		t.Fatalf("on-demand advance never primed the freelist: %d misses in %d ops", misses, ops)
	}
	if l.Stats().Reused == 0 {
		t.Fatal("no freelist reuse in a balanced retire/allocate loop")
	}
}

// TestSteadyStateEnterExitIsStoreFree pins the tentpole property of the
// amortized scheme: between refresh points, Enter/Exit performs no shared
// store — the announcement word does not move and no advance is attempted.
func TestSteadyStateEnterExitIsStoreFree(t *testing.T) {
	d := NewDomain()
	l := NewLocal(d)
	cycle(l) // first op claims the slot and publishes

	if l.slot == nil {
		t.Fatal("first operation did not claim an announcement slot")
	}
	v0 := l.slot.v.Load()
	if v0 == 0 {
		t.Fatal("announcement unpublished after Exit; it must stay published across operations")
	}
	adv0, scan0 := d.Advances(), d.lastScan.Load()
	for i := 0; i < quiesceEvery/2; i++ {
		cycle(l)
	}
	if v := l.slot.v.Load(); v != v0 {
		t.Fatalf("announcement moved from %#x to %#x between refresh points", v0, v)
	}
	if d.Advances() != adv0 || d.lastScan.Load() != scan0 {
		t.Fatal("advance machinery ran between refresh points")
	}

	// Crossing the cadence must refresh and make progress again.
	for i := 0; i < 2*quiesceEvery; i++ {
		cycle(l)
	}
	if d.Advances() == adv0 {
		t.Fatal("no epoch advance across two full refresh cadences")
	}
}

func TestGraceRespectsActiveReader(t *testing.T) {
	d := NewDomain()
	writer := NewLocal(d)
	reader := NewLocal(d)
	pool := NewPool[thing]()

	reader.Enter() // reader parks inside an operation
	x := &thing{}
	writer.Enter()
	pool.Retire(writer, x)
	writer.Exit()

	for i := 0; i < 32; i++ {
		quiesceCycle(writer)
	}
	if got := pool.Get(writer); got != nil {
		t.Fatal("object recycled while a reader was still announced")
	}

	// Exit alone is no longer a quiescent point: the reader's announcement
	// stays published (stale), which keeps delaying reclamation...
	reader.Exit()
	if got := pool.Get(writer); got != nil {
		t.Fatal("object recycled while the reader's stale announcement was still published")
	}
	// ...until the reader quiesces.
	reader.Quiesce()
	var got *thing
	for i := 0; i < 32 && got == nil; i++ {
		quiesceCycle(writer)
		got = pool.Get(writer)
	}
	if got != x {
		t.Fatal("object not recycled after the reader quiesced")
	}
}

func TestParkedReaderBoundsLimbo(t *testing.T) {
	d := NewDomain()
	parked := NewLocal(d)
	w := NewLocal(d)
	pool := NewPool[thing]()

	parked.Enter()
	defer parked.Exit()

	const n = 3 * limboCap
	for i := 0; i < n; i++ {
		w.Enter()
		pool.Retire(w, &thing{v: i})
		w.Exit()
	}
	if got := w.LimboLen(); got > limboCap+1 {
		t.Fatalf("limbo grew to %d entries despite the cap %d", got, limboCap)
	}
	st := w.Stats()
	if st.Dropped == 0 {
		t.Fatal("overflowing limbo must drop entries to the GC")
	}
	if st.Recycled != 0 {
		t.Fatalf("recycled %d objects while a reader was parked", st.Recycled)
	}
}

// TestStaleAnnouncementBoundsLimbo is the epoch-staleness bound: a Local
// that operated once and then stopped — without ever calling Quiesce —
// leaves a stale announcement published, which delays reclamation
// domain-wide but never blocks anyone: other Locals' limbo stays capped
// (overflow drops to the GC) and their operations keep completing.
func TestStaleAnnouncementBoundsLimbo(t *testing.T) {
	d := NewDomain()
	idle := NewLocal(d)
	w := NewLocal(d)
	pool := NewPool[thing]()

	cycle(idle) // one op, then silence: announcement published and going stale

	const n = 3 * limboCap
	for i := 0; i < n; i++ {
		w.Enter()
		pool.Retire(w, &thing{v: i})
		w.Exit()
	}
	if got := w.LimboLen(); got > limboCap+1 {
		t.Fatalf("limbo grew to %d entries despite the cap %d", got, limboCap)
	}
	st := w.Stats()
	if st.Retired != n {
		t.Fatalf("worker completed %d retires, want %d: a stale announcement must never block", st.Retired, n)
	}
	if st.Dropped == 0 {
		t.Fatal("overflowing limbo must drop entries to the GC")
	}
	if st.Recycled != 0 {
		t.Fatalf("recycled %d objects while a stale announcement was published", st.Recycled)
	}

	// The idle Local quiesces: reclamation resumes for everyone.
	idle.Quiesce()
	for i := 0; i < 8; i++ {
		quiesceCycle(w)
	}
	if w.Stats().Recycled == 0 {
		t.Fatal("recycling did not resume after the stale Local quiesced")
	}
}

func TestReadyPredicateGetsFreshGrace(t *testing.T) {
	d := NewDomain()
	l := NewLocal(d)
	ready := false
	pool := NewPoolReady[thing](func(*thing) bool { return ready })

	x := &thing{}
	l.Enter()
	pool.Retire(l, x)
	l.Exit()

	for i := 0; i < 32; i++ {
		quiesceCycle(l)
	}
	if pool.Get(l) != nil {
		t.Fatal("recycled while the ready predicate was false")
	}

	ready = true
	// The first post-ready drain must re-stamp, not free: the object may not
	// appear before a fresh grace period elapses.
	epochAtReady := d.Epoch()
	var got *thing
	for i := 0; i < 64 && got == nil; i++ {
		quiesceCycle(l)
		got = pool.Get(l)
	}
	if got != x {
		t.Fatal("object never recycled after the ready predicate passed")
	}
	if d.Epoch() < epochAtReady+2 {
		t.Errorf("object freed at epoch %d, want >= %d (fresh grace after ready)",
			d.Epoch(), epochAtReady+2)
	}
}

func TestStuckReadyEntriesParkBoundedly(t *testing.T) {
	d := NewDomain()
	l := NewLocal(d)
	stuck := NewPoolReady[thing](func(*thing) bool { return false })
	plain := NewPool[thing]()

	// Retire more permanently-stuck entries than the parked list holds,
	// interleaved with plain entries that must keep recycling normally.
	const n = parkedCap + 500
	for i := 0; i < n; i++ {
		l.Enter()
		stuck.Retire(l, &thing{v: i})
		plain.Retire(l, &thing{v: -i})
		l.Exit()
		plain.Get(l) // keep the plain freelist bounded
	}
	if got := l.LimboLen(); got > parkedCap+limboCap {
		t.Fatalf("stuck entries grew the lists to %d; want bounded by caps", got)
	}
	if l.Stats().Dropped == 0 {
		t.Fatal("overflowing the parked list must drop entries to the GC")
	}
	if stuck.Get(l) != nil {
		t.Fatal("a stuck entry was recycled despite its predicate never passing")
	}
	if l.Stats().Reused == 0 {
		t.Fatal("plain entries must keep recycling while stuck ones park")
	}
}

func TestReleaseSkipsGrace(t *testing.T) {
	d := NewDomain()
	l := NewLocal(d)
	other := NewLocal(d)
	other.Enter() // would block any grace period
	defer other.Exit()
	pool := NewPool[thing]()

	x := &thing{}
	pool.Release(l, x)
	if got := pool.Get(l); got != x {
		t.Fatal("released (never-published) object must be immediately reusable")
	}
}

func TestPoolsDoNotMix(t *testing.T) {
	d := NewDomain()
	l := NewLocal(d)
	pa := NewPool[thing]()
	pb := NewPool[thing]()

	x := &thing{}
	pa.Release(l, x)
	if pb.Get(l) != nil {
		t.Fatal("pool B handed out pool A's object")
	}
	if pa.Get(l) != x {
		t.Fatal("pool A lost its object")
	}
}

func TestNestedEnterExit(t *testing.T) {
	d := NewDomain()
	l := NewLocal(d)
	other := NewLocal(d)
	l.Enter()
	l.Enter()
	if !l.Active() {
		t.Fatal("not active inside nested Enter")
	}
	l.Exit()
	if !l.Active() {
		t.Fatal("inner Exit ended the outer operation")
	}
	// An announcement at a caps the epoch at a+1: one advance may slip past
	// an active operation, a second never can.
	announced := l.published
	for i := 0; i < 8; i++ {
		quiesceCycle(other)
	}
	if d.Epoch() > announced+1 {
		t.Fatalf("epoch reached %d past an active nested operation announced at %d", d.Epoch(), announced)
	}
	l.Exit()
	if l.Active() {
		t.Fatal("still active after balanced Exits")
	}
}

func TestQuiesceInsideOperationPanics(t *testing.T) {
	l := NewLocal(NewDomain())
	l.Enter()
	defer func() {
		if recover() == nil {
			t.Fatal("Quiesce inside an operation must panic")
		}
		l.Exit()
	}()
	l.Quiesce()
}

func TestReleaseInsideOperationPanics(t *testing.T) {
	l := NewLocal(NewDomain())
	l.Enter()
	defer func() {
		if recover() == nil {
			t.Fatal("Release inside an operation must panic")
		}
		l.Exit()
	}()
	l.Release()
}

// TestSlotRecycling checks the slot-recycling ownership rule end to end:
// released Locals return their slots to the domain free list, later Locals
// claim those same slots back, and the assigned high-water mark tracks peak
// concurrency instead of the total number of Locals ever created.
func TestSlotRecycling(t *testing.T) {
	d := NewDomain()
	const locals = 10

	batch := make([]*Local, locals)
	for i := range batch {
		batch[i] = NewLocal(d)
		cycle(batch[i])
	}
	if got := d.assigned.Load(); got != locals {
		t.Fatalf("assigned = %d after %d concurrent Locals, want %d", got, locals, locals)
	}
	for _, l := range batch {
		l.Release()
	}

	// A second generation must reuse the released slots, not extend the
	// high-water mark.
	for i := 0; i < 3*locals; i++ {
		l := NewLocal(d)
		cycle(l)
		l.Release()
	}
	if got := d.assigned.Load(); got != locals {
		t.Fatalf("assigned grew to %d after release/reclaim cycles, want it pinned at %d", got, locals)
	}

	// Released slots are unpublished, so the epoch advances freely.
	probe := NewLocal(d)
	before := d.Epoch()
	quiesceCycle(probe)
	quiesceCycle(probe)
	if d.Epoch() <= before {
		t.Fatal("epoch stuck after all Locals released their slots")
	}
}

// TestScavengerReclaimsDroppedLocal: a Local dropped without Release (the
// leak the old scheme tolerated because Exit unpublished per-op) leaves a
// stale published announcement; the GC finalizer must scavenge the slot so
// the domain's epoch is not pinned forever.
func TestScavengerReclaimsDroppedLocal(t *testing.T) {
	d := NewDomain()
	func() {
		l := NewLocal(d)
		cycle(l) // published, then dropped without Release/Quiesce
	}()

	deadline := time.Now().Add(5 * time.Second)
	for d.Scavenged() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("GC finalizer never scavenged the dropped Local's slot")
		}
		runtime.GC()
		time.Sleep(time.Millisecond)
	}

	// With the leaked announcement gone, the epoch advances again.
	probe := NewLocal(d)
	before := d.Epoch()
	quiesceCycle(probe)
	quiesceCycle(probe)
	if d.Epoch() <= before {
		t.Fatal("epoch still pinned after the scavenger ran")
	}
}

// TestLayoutPadding is the false-sharing audit in executable form: the
// advance CAS targets (epoch, lastScan), the bookkeeping counters, and each
// announcement slot must live on distinct cache lines.
func TestLayoutPadding(t *testing.T) {
	if s := unsafe.Sizeof(slot{}); s != 64 {
		t.Errorf("sizeof(slot) = %d, want one cache line (64)", s)
	}
	var d Domain
	off := func(p unsafe.Pointer) uintptr { return uintptr(p) - uintptr(unsafe.Pointer(&d)) }
	epochOff := off(unsafe.Pointer(&d.epoch))
	scanOff := off(unsafe.Pointer(&d.lastScan))
	assignedOff := off(unsafe.Pointer(&d.assigned))
	slotsOff := off(unsafe.Pointer(&d.slots))
	if scanOff-epochOff < 64 {
		t.Errorf("lastScan only %d bytes past epoch; want a full line", scanOff-epochOff)
	}
	if assignedOff-scanOff < 64 {
		t.Errorf("assigned only %d bytes past lastScan; want a full line", assignedOff-scanOff)
	}
	if slotsOff%64 != 0 {
		t.Errorf("slots start at offset %d; want 64-byte aligned so slots never share a line with the header", slotsOff)
	}
}

// TestSlotRecyclingHammer drives claim/publish/retire/release cycles from
// many goroutines at once (run under -race in CI): the property checked is
// that slot handoff through the versioned free list never lets two Locals
// own one slot, which the race detector observes as conflicting
// announcement stores.
func TestSlotRecyclingHammer(t *testing.T) {
	d := NewDomain()
	const goroutines = 8
	const rounds = 400

	var shared atomic.Pointer[thing]
	shared.Store(&thing{})

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			pool := NewPool[thing]()
			for i := 0; i < rounds; i++ {
				l := NewLocal(d)
				for j := 0; j < 4; j++ {
					l.Enter()
					if g%2 == 0 {
						p := shared.Load()
						_ = p.v
					} else {
						nu := pool.Get(l)
						if nu == nil {
							nu = &thing{}
						}
						nu.v = i
						pool.Retire(l, shared.Swap(nu))
					}
					l.Exit()
				}
				if i%2 == 0 {
					l.Quiesce()
				}
				l.Release()
			}
		}(g)
	}
	wg.Wait()

	// Each goroutine holds at most one slot, but a slot mid-release is
	// transiently invisible to claimers, so the high-water can exceed the
	// goroutine count by at most one per goroutine.
	if got := d.assigned.Load(); got > 2*goroutines {
		t.Errorf("assigned high-water = %d with %d concurrent Locals; slots are not being recycled", got, goroutines)
	}
}

// TestConcurrentEpochAgreement hammers Enter/Exit/Retire/Get from many
// goroutines (run under -race in CI): the property checked is that an
// object is never handed out by Get while any goroutine that could hold it
// is still inside its operation — the race detector does the real work via
// the happens-before edges the epoch protocol must establish.
func TestConcurrentEpochAgreement(t *testing.T) {
	d := NewDomain()
	const goroutines = 8
	const ops = 2000

	// One shared published pointer; writers swap it, retire the old value
	// through their Local, and recycle. Readers dereference under Enter.
	var shared atomic.Pointer[thing]
	shared.Store(&thing{v: 0})

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			l := NewLocal(d)
			pool := NewPool[thing]()
			for i := 0; i < ops; i++ {
				l.Enter()
				if g%2 == 0 {
					// Reader: dereference the shared thing; the race detector
					// flags any recycle-write overlapping this read.
					p := shared.Load()
					_ = p.v
				} else {
					nu := pool.Get(l)
					if nu == nil {
						nu = &thing{}
					}
					nu.v = i
					old := shared.Swap(nu)
					pool.Retire(l, old)
				}
				l.Exit()
			}
			l.Release()
		}(g)
	}
	wg.Wait()
}

// TestDomainGauges pins the observability snapshot: depth gauges follow a
// Local's limbo/freelist through retire → grace → recycle → release, the
// oldest-announcement lag exposes a stale reader, and advance attempts
// dominate successes.
func TestDomainGauges(t *testing.T) {
	d := NewDomain()
	l := NewLocal(d)
	pool := NewPool[thing]()

	const retired = 100
	l.Enter()
	for i := 0; i < retired; i++ {
		pool.Retire(l, &thing{v: i})
	}
	l.Exit()
	l.Quiesce() // folds depths; the fresh retirees are still in grace
	g := d.Gauges()
	if g.Limbo+g.Free != retired {
		t.Fatalf("limbo %d + free %d != retired %d", g.Limbo, g.Free, retired)
	}
	if g.Epoch != d.Epoch() {
		t.Fatalf("gauge epoch %d != domain epoch %d", g.Epoch, d.Epoch())
	}

	// Walk the epoch until everything recycles: limbo drains to the freelist.
	for i := 0; i < 8 && d.Gauges().Limbo > 0; i++ {
		quiesceCycle(l)
	}
	g = d.Gauges()
	if g.Limbo != 0 || g.Free != retired {
		t.Fatalf("after drain: limbo=%d free=%d, want 0/%d", g.Limbo, g.Free, retired)
	}
	if g.Attempts < g.Advances || g.Advances == 0 {
		t.Fatalf("attempts=%d advances=%d, want attempts >= advances > 0", g.Attempts, g.Advances)
	}

	// A reader parked mid-operation pins the epoch: its announcement goes
	// stale as the writer quiesces, and the lag gauge exposes it.
	stale := NewLocal(d)
	stale.Enter()
	before := d.Epoch()
	for i := 0; i < 3; i++ {
		quiesceCycle(l)
	}
	if d.Epoch() != before+1 {
		t.Fatalf("epoch moved %d -> %d; a published announcement caps it at +1", before, d.Epoch())
	}
	g = d.Gauges()
	if g.OldestLag < 1 {
		t.Fatalf("stale reader: lag=%d, want >= 1 (gauges: %+v)", g.OldestLag, g)
	}
	// The writer unpublished at its last Quiesce; only the stale reader
	// remains announced.
	if g.ActiveSlots != 1 {
		t.Fatalf("active slots = %d, want 1", g.ActiveSlots)
	}
	stale.Exit()
	stale.Release()

	// Release retracts the freelist contribution along with the Local.
	l.Release()
	g = d.Gauges()
	if g.Limbo != 0 || g.Parked != 0 || g.Free != 0 {
		t.Fatalf("after release: %+v, want zero depths", g)
	}
	if g.ActiveSlots != 0 {
		t.Fatalf("after release: %d active slots, want 0", g.ActiveSlots)
	}
}
