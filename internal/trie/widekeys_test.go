package trie_test

import (
	"math/rand"
	"pragmaprim/internal/trie"
	"sort"
	"testing"
	"testing/quick"
)

// TestQuickWideKeys drives the trie with full-range 64-bit keys, exercising
// splits at every bit depth, and checks contents and ordering against a map.
func TestQuickWideKeys(t *testing.T) {
	f := func(keys []uint64, deletions []uint8) bool {
		tr := trie.New[int]()
		model := make(map[uint64]int)
		for i, k := range keys {
			tr.Put(k, i)
			model[k] = i
		}
		for _, d := range deletions {
			if len(keys) == 0 {
				break
			}
			k := keys[int(d)%len(keys)]
			_, gotOK := tr.Delete(k)
			_, wantOK := model[k]
			if gotOK != wantOK {
				return false
			}
			delete(model, k)
		}
		if tr.CheckInvariants() != nil {
			return false
		}
		got := tr.Keys()
		want := make([]uint64, 0, len(model))
		for k := range model {
			want = append(want, k)
		}
		sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		for k, v := range model {
			if gv, ok := tr.Get(k); !ok || gv != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestClusteredHighBitKeys stresses splits close to the MSB and dense
// clusters sharing long prefixes.
func TestClusteredHighBitKeys(t *testing.T) {
	tr := trie.New[int]()
	rng := rand.New(rand.NewSource(17))
	base := uint64(0xDEADBEEF) << 32
	inserted := make(map[uint64]bool)
	for i := 0; i < 2000; i++ {
		k := base | uint64(rng.Intn(512)) // long shared prefix
		if rng.Intn(2) == 0 {
			k |= 1 << 63 // and a cluster differing at the MSB
		}
		if rng.Intn(4) == 0 {
			tr.Delete(k)
			delete(inserted, k)
		} else {
			tr.Put(k, int(k&0xFFFF))
			inserted[k] = true
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	if got := tr.Len(); got != len(inserted) {
		t.Fatalf("Len = %d, want %d", got, len(inserted))
	}
	for k := range inserted {
		if _, ok := tr.Get(k); !ok {
			t.Fatalf("key %#x lost", k)
		}
	}
}
