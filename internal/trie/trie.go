// Package trie implements a non-blocking binary Patricia trie on the
// LLX/SCX primitives. The paper's related work (Section 2) points to
// non-blocking Patricia tries as a product of the same cooperative
// technique; this implementation shows the LLX/SCX template carrying over
// unchanged: searches are plain reads (Proposition 2), every update is one
// SCX that swings a single child pointer and finalizes exactly the removed
// nodes.
//
// Keys are uint64, compared most-significant-bit first. Internal nodes are
// pure routers labelled with the bit index where their subtrees diverge
// (path compression: bit indices strictly increase downward); leaves carry
// the key/value pairs. The trie's shape is a deterministic function of its
// key set, so no rebalancing is ever needed — which is exactly why it is a
// popular companion structure to the paper's BSTs.
package trie

import (
	"fmt"
	"math/bits"

	"pragmaprim/internal/core"
)

// Mutable-field indices. The root record has a single child field; internal
// nodes have two.
const (
	fieldChild0 = 0 // bit == 0 side (also the root's only child field)
	fieldChild1 = 1
)

// node is one trie node. All fields except the record's child pointers are
// immutable.
type node[V any] struct {
	rec  *core.Record
	leaf bool
	bit  int    // internal: diverging bit index, 0 (MSB) .. 63
	key  uint64 // leaf: the key
	val  V      // leaf: the value
}

func newInternal[V any](bit int, child0, child1 *node[V]) *node[V] {
	n := &node[V]{bit: bit}
	n.rec = core.NewRecord(2, []any{child0, child1}, n)
	return n
}

func newLeaf[V any](key uint64, val V) *node[V] {
	n := &node[V]{leaf: true, key: key, val: val}
	n.rec = core.NewRecord(0, nil, n)
	return n
}

// child reads child dir of internal node n with a plain read.
func (n *node[V]) child(dir int) *node[V] {
	c, _ := n.rec.Read(dir).(*node[V])
	return c
}

// bitOf extracts bit i of key, MSB first.
func bitOf(key uint64, i int) int {
	return int(key>>(63-i)) & 1
}

// diffBit returns the index of the most significant bit where a and b
// differ; a must differ from b.
func diffBit(a, b uint64) int {
	return bits.LeadingZeros64(a ^ b)
}

// Trie is a non-blocking map from uint64 keys to V. The zero value is not
// usable; create one with New. All methods are safe for concurrent use
// provided each goroutine passes its own *core.Process.
type Trie[V any] struct {
	root *core.Record // entry point: one mutable field, the trie's root node
}

// New creates an empty trie. The entry-point record is never finalized.
func New[V any]() *Trie[V] {
	return &Trie[V]{root: core.NewRecord(1, []any{nil})}
}

// top reads the trie's root node (nil when empty).
func (t *Trie[V]) top() *node[V] {
	n, _ := t.root.Read(fieldChild0).(*node[V])
	return n
}

// Get returns the value stored for key, if any.
func (t *Trie[V]) Get(proc *core.Process, key uint64) (V, bool) {
	var zero V
	n := t.top()
	for n != nil && !n.leaf {
		n = n.child(bitOf(key, n.bit))
	}
	if n != nil && n.key == key {
		return n.val, true
	}
	return zero, false
}

// Contains reports whether key is present.
func (t *Trie[V]) Contains(proc *core.Process, key uint64) bool {
	_, ok := t.Get(proc, key)
	return ok
}

// walkToLeaf follows key's bits from n to a leaf.
func walkToLeaf[V any](n *node[V], key uint64) *node[V] {
	for n != nil && !n.leaf {
		n = n.child(bitOf(key, n.bit))
	}
	return n
}

// Put maps key to val, returning true if key was newly inserted and false
// if an existing mapping was replaced.
func (t *Trie[V]) Put(proc *core.Process, key uint64, val V) bool {
	// Reusable snapshot buffers (core.LLXInto): the retry loop allocates
	// nothing beyond the nodes it splices in.
	var rootBuf [1]any
	var pBuf [2]any
	for {
		// Phase 1: probe for a leaf sharing key's routed prefix.
		top := t.top()
		if top == nil {
			// Empty trie: install the first leaf at the entry point.
			localr, st := proc.LLXInto(t.root, rootBuf[:])
			if st != core.LLXOK {
				continue
			}
			if localr[fieldChild0] != any(nil) {
				continue // no longer empty; re-run
			}
			if proc.SCX([]*core.Record{t.root}, nil, t.root.Field(fieldChild0),
				newLeaf(key, val)) {
				return true
			}
			continue
		}
		probe := walkToLeaf(top, key)
		if probe.key == key {
			// Replace the existing leaf in place, finalizing it.
			if t.replaceLeaf(proc, key, val) {
				return false
			}
			continue
		}
		// Phase 2: splice a router at the diverging bit b: descend to the
		// first edge whose child is a leaf or routes at or below b.
		b := diffBit(key, probe.key)
		parentRec, parentDir, cur := t.descendTo(key, b)
		if cur == nil {
			continue // structure moved; re-run
		}
		localp, st := proc.LLXInto(parentRec, pBuf[:])
		if st != core.LLXOK {
			continue
		}
		if c, _ := localp[parentDir].(*node[V]); c != cur {
			continue
		}
		// Revalidate b against the live structure: every key ever placed
		// under cur shares cur's routing prefix, so one representative leaf
		// pins the whole subtree's divergence from key. A stale probe (e.g.
		// its leaf was deleted meanwhile) fails these checks and retries.
		rep := walkToLeaf(cur, key)
		if rep == nil || rep.key == key || diffBit(key, rep.key) != b {
			continue
		}
		if !cur.leaf && cur.bit <= b {
			continue
		}
		nl := newLeaf(key, val)
		var inner *node[V]
		if bitOf(key, b) == 0 {
			inner = newInternal(b, nl, cur)
		} else {
			inner = newInternal(b, cur, nl)
		}
		if proc.SCX([]*core.Record{parentRec}, nil,
			recField(parentRec, parentDir), inner) {
			return true
		}
	}
}

// recField builds a FieldRef for a raw record (the entry point has one
// field; internal nodes have two).
func recField(rec *core.Record, dir int) core.FieldRef {
	return rec.Field(dir)
}

// descendTo walks toward key and returns the edge (parent record, field
// index) whose current child cur is the first node that is a leaf or routes
// at a bit index >= b — the splice point for a new router at bit b.
func (t *Trie[V]) descendTo(key uint64, b int) (*core.Record, int, *node[V]) {
	parentRec := t.root
	parentDir := fieldChild0
	cur := t.top()
	for cur != nil && !cur.leaf && cur.bit < b {
		parentRec = cur.rec
		parentDir = bitOf(key, cur.bit)
		cur = cur.child(parentDir)
	}
	return parentRec, parentDir, cur
}

// replaceLeaf swaps the leaf holding key for a fresh leaf with val,
// finalizing the old one. Returns false if the structure moved.
func (t *Trie[V]) replaceLeaf(proc *core.Process, key uint64, val V) bool {
	parentRec := t.root
	parentDir := fieldChild0
	cur := t.top()
	for cur != nil && !cur.leaf {
		parentRec = cur.rec
		parentDir = bitOf(key, cur.bit)
		cur = cur.child(parentDir)
	}
	if cur == nil || cur.key != key {
		return false
	}
	var pBuf [2]any
	localp, st := proc.LLXInto(parentRec, pBuf[:])
	if st != core.LLXOK {
		return false
	}
	if c, _ := localp[parentDir].(*node[V]); c != cur {
		return false
	}
	if _, st := proc.LLXInto(cur.rec, nil); st != core.LLXOK {
		return false
	}
	return proc.SCX([]*core.Record{parentRec, cur.rec}, []*core.Record{cur.rec},
		recField(parentRec, parentDir), newLeaf(key, val))
}

// Delete removes key's mapping, returning the removed value and true, or
// the zero value and false if key was absent.
func (t *Trie[V]) Delete(proc *core.Process, key uint64) (V, bool) {
	var zero V
	// g's and p's snapshots are alive at once; the sibling's link needs a
	// buffer too since an internal sibling has two mutable fields.
	var gBuf, pBuf, sBuf [2]any
	for {
		// Track grandparent edge, parent node, and leaf during the descent.
		gRec := t.root
		gDir := fieldChild0
		var p *node[V]
		l := t.top()
		for l != nil && !l.leaf {
			if p != nil {
				gRec = p.rec
				gDir = bitOf(key, p.bit)
			}
			p = l
			l = l.child(bitOf(key, p.bit))
		}
		if l == nil || l.key != key {
			return zero, false
		}
		if p == nil {
			// The leaf is the entire trie: unlink it from the entry point.
			localr, st := proc.LLXInto(t.root, gBuf[:])
			if st != core.LLXOK {
				continue
			}
			if c, _ := localr[fieldChild0].(*node[V]); c != l {
				continue
			}
			if _, st := proc.LLXInto(l.rec, nil); st != core.LLXOK {
				continue
			}
			if proc.SCX([]*core.Record{t.root, l.rec}, []*core.Record{l.rec},
				t.root.Field(fieldChild0), nil) {
				return l.val, true
			}
			continue
		}
		// Replace p with l's sibling, finalizing p and l.
		localg, st := proc.LLXInto(gRec, gBuf[:])
		if st != core.LLXOK {
			continue
		}
		if c, _ := localg[gDir].(*node[V]); c != p {
			continue
		}
		localp, st := proc.LLXInto(p.rec, pBuf[:])
		if st != core.LLXOK {
			continue
		}
		ldir := bitOf(key, p.bit)
		if c, _ := localp[ldir].(*node[V]); c != l {
			continue
		}
		s, _ := localp[1-ldir].(*node[V])
		if s == nil {
			continue
		}
		if _, st := proc.LLXInto(l.rec, nil); st != core.LLXOK {
			continue
		}
		if _, st := proc.LLXInto(s.rec, sBuf[:]); st != core.LLXOK {
			continue
		}
		// V in preorder-consistent order: grandparent edge owner, p, then
		// p's children in child order.
		v := make([]*core.Record, 0, 4)
		v = append(v, gRec, p.rec)
		if ldir == 0 {
			v = append(v, l.rec, s.rec)
		} else {
			v = append(v, s.rec, l.rec)
		}
		if proc.SCX(v, []*core.Record{p.rec, l.rec}, recField(gRec, gDir), s) {
			return l.val, true
		}
	}
}

// Len returns the number of keys observed by one traversal (exact when
// quiescent, weakly consistent under concurrency per Proposition 2).
func (t *Trie[V]) Len() int {
	n := 0
	t.walk(t.top(), func(*node[V]) { n++ })
	return n
}

// Keys returns the keys in ascending order (MSB-first bit order IS numeric
// order), with the same consistency caveat as Len.
func (t *Trie[V]) Keys() []uint64 {
	var keys []uint64
	t.walk(t.top(), func(l *node[V]) { keys = append(keys, l.key) })
	return keys
}

// Items returns the key -> value contents, same caveat as Len.
func (t *Trie[V]) Items() map[uint64]V {
	items := make(map[uint64]V)
	t.walk(t.top(), func(l *node[V]) { items[l.key] = l.val })
	return items
}

func (t *Trie[V]) walk(n *node[V], visit func(l *node[V])) {
	if n == nil {
		return
	}
	if n.leaf {
		visit(n)
		return
	}
	t.walk(n.child(fieldChild0), visit)
	t.walk(n.child(fieldChild1), visit)
}

// CheckInvariants verifies the Patricia shape on a quiescent trie: bit
// indices strictly increase downward, every key in a subtree agrees with
// the routing decisions above it, internal nodes have two children, and no
// reachable node is finalized.
func (t *Trie[V]) CheckInvariants() error {
	if t.root.Finalized() {
		return fmt.Errorf("entry point finalized")
	}
	return t.check(t.top(), -1, 0, 0)
}

// check validates subtree n: parentBit is the bit index of n's parent (-1
// at the top), and the bits of prefix masked by mask are the routing
// decisions taken so far.
func (t *Trie[V]) check(n *node[V], parentBit int, prefix, mask uint64) error {
	if n == nil {
		if parentBit == -1 {
			return nil // empty trie
		}
		return fmt.Errorf("internal node missing a child")
	}
	if n.rec.Finalized() {
		return fmt.Errorf("reachable node finalized (leaf=%v bit=%d key=%d)",
			n.leaf, n.bit, n.key)
	}
	if n.leaf {
		if n.key&mask != prefix {
			return fmt.Errorf("leaf key %#x disagrees with routing prefix %#x/%#x",
				n.key, prefix, mask)
		}
		return nil
	}
	if n.bit <= parentBit {
		return fmt.Errorf("bit indices not increasing: parent %d, child %d",
			parentBit, n.bit)
	}
	if n.bit > 63 {
		return fmt.Errorf("bit index %d out of range", n.bit)
	}
	m := uint64(1) << (63 - n.bit)
	if err := t.check(n.child(fieldChild0), n.bit, prefix, mask|m); err != nil {
		return err
	}
	return t.check(n.child(fieldChild1), n.bit, prefix|m, mask|m)
}
