// Package trie implements a non-blocking binary Patricia trie on the
// LLX/SCX primitives. The paper's related work (Section 2) points to
// non-blocking Patricia tries as a product of the same cooperative
// technique; this implementation shows the LLX/SCX template carrying over
// unchanged: searches are plain reads (Proposition 2), every update is one
// SCX that swings a single child pointer and finalizes exactly the removed
// nodes, and the retry loop itself lives in internal/template like every
// other structure here.
//
// Keys are uint64, compared most-significant-bit first. Internal nodes are
// pure routers labelled with the bit index where their subtrees diverge
// (path compression: bit indices strictly increase downward); leaves carry
// the key/value pairs. The trie's shape is a deterministic function of its
// key set, so no rebalancing is ever needed — which is exactly why it is a
// popular companion structure to the paper's BSTs.
//
// Methods never take a *core.Process: plain calls acquire a pooled Handle
// per operation, and hot paths bind one with Attach.
package trie

import (
	"fmt"
	"math/bits"

	"pragmaprim/internal/core"
	"pragmaprim/internal/template"
)

// Mutable-field indices. The root record has a single child field; internal
// nodes have two.
const (
	fieldChild0 = 0 // bit == 0 side (also the root's only child field)
	fieldChild1 = 1
)

// node is one trie node. All fields except the record's child pointers are
// immutable.
type node[V any] struct {
	rec  *core.Record
	leaf bool
	bit  int    // internal: diverging bit index, 0 (MSB) .. 63
	key  uint64 // leaf: the key
	val  V      // leaf: the value
}

func newInternal[V any](bit int, child0, child1 *node[V]) *node[V] {
	n := &node[V]{bit: bit}
	n.rec = core.NewRecord(2, []any{child0, child1}, n)
	return n
}

func newLeaf[V any](key uint64, val V) *node[V] {
	n := &node[V]{leaf: true, key: key, val: val}
	n.rec = core.NewRecord(0, nil, n)
	return n
}

// child reads child dir of internal node n with a plain read.
func (n *node[V]) child(dir int) *node[V] {
	c, _ := n.rec.Read(dir).(*node[V])
	return c
}

// bitOf extracts bit i of key, MSB first.
func bitOf(key uint64, i int) int {
	return int(key>>(63-i)) & 1
}

// diffBit returns the index of the most significant bit where a and b
// differ; a must differ from b.
func diffBit(a, b uint64) int {
	return bits.LeadingZeros64(a ^ b)
}

// Trie is a non-blocking map from uint64 keys to V. The zero value is not
// usable; create one with New. All methods are safe for concurrent use.
type Trie[V any] struct {
	root     *core.Record // entry point: one mutable field, the trie's root node
	policy   template.Policy
	putStats template.OpStats
	delStats template.OpStats
}

// New creates an empty trie. The entry-point record is never finalized.
func New[V any]() *Trie[V] {
	return &Trie[V]{root: core.NewRecord(1, []any{nil})}
}

// SetPolicy installs the retry policy updates back off with; nil (the
// default) retries immediately. Call before sharing the trie.
func (t *Trie[V]) SetPolicy(p template.Policy) { t.policy = p }

// EngineStats returns the template engine's aggregate attempt/failure
// counters across all update operations.
func (t *Trie[V]) EngineStats() template.Counters {
	return t.putStats.Snapshot().Add(t.delStats.Snapshot())
}

// StatsByOp returns the engine counters broken out per operation.
func (t *Trie[V]) StatsByOp() map[string]template.Counters {
	return map[string]template.Counters{
		"put":    t.putStats.Snapshot(),
		"delete": t.delStats.Snapshot(),
	}
}

// Session is a Handle-bound view of a Trie: the hot-path API for a
// goroutine performing many operations. Not safe for concurrent use; any
// number of Sessions may share the Trie.
type Session[V any] struct {
	t *Trie[V]
	h *core.Handle
}

// Attach binds a Session to h. The caller keeps ownership of h.
func (t *Trie[V]) Attach(h *core.Handle) Session[V] {
	return Session[V]{t: t, h: h}
}

// Handle returns the Session's Handle.
func (s Session[V]) Handle() *core.Handle { return s.h }

// top reads the trie's root node (nil when empty).
func (t *Trie[V]) top() *node[V] {
	n, _ := t.root.Read(fieldChild0).(*node[V])
	return n
}

// Get returns the value stored for key, if any. Searches are plain reads
// (Proposition 2), so Get needs no Handle.
func (t *Trie[V]) Get(key uint64) (V, bool) {
	var zero V
	n := t.top()
	for n != nil && !n.leaf {
		n = n.child(bitOf(key, n.bit))
	}
	if n != nil && n.key == key {
		return n.val, true
	}
	return zero, false
}

// Contains reports whether key is present.
func (t *Trie[V]) Contains(key uint64) bool {
	_, ok := t.Get(key)
	return ok
}

// Put maps key to val using a pooled Handle; see Session.Put for the
// hot-path form.
func (t *Trie[V]) Put(key uint64, val V) bool {
	h := core.AcquireHandle()
	ok := t.Attach(h).Put(key, val)
	h.Release()
	return ok
}

// Delete removes key's mapping using a pooled Handle; see Session.Delete
// for the hot-path form.
func (t *Trie[V]) Delete(key uint64) (V, bool) {
	h := core.AcquireHandle()
	v, ok := t.Attach(h).Delete(key)
	h.Release()
	return v, ok
}

// Get returns the value stored for key, if any.
func (s Session[V]) Get(key uint64) (V, bool) { return s.t.Get(key) }

// Contains reports whether key is present.
func (s Session[V]) Contains(key uint64) bool { return s.t.Contains(key) }

// walkToLeaf follows key's bits from n to a leaf.
func walkToLeaf[V any](n *node[V], key uint64) *node[V] {
	for n != nil && !n.leaf {
		n = n.child(bitOf(key, n.bit))
	}
	return n
}

// Put maps key to val, returning true if key was newly inserted and false
// if an existing mapping was replaced.
func (s Session[V]) Put(key uint64, val V) bool {
	t := s.t
	return template.Run(s.h, t.policy, &t.putStats, func(c *template.Ctx) (bool, template.Action) {
		// Phase 1: probe for a leaf sharing key's routed prefix.
		top := t.top()
		if top == nil {
			// Empty trie: install the first leaf at the entry point.
			localr, st := c.LLX(t.root)
			if st != core.LLXOK {
				return false, template.Retry
			}
			if localr[fieldChild0] != any(nil) {
				return false, template.Retry // no longer empty; re-run
			}
			if c.SCX([]*core.Record{t.root}, nil, t.root.Field(fieldChild0),
				newLeaf(key, val)) {
				return true, template.Done
			}
			return false, template.Retry
		}
		probe := walkToLeaf(top, key)
		if probe.key == key {
			// Replace the existing leaf in place, finalizing it.
			if t.replaceLeaf(c, key, val) {
				return false, template.Done
			}
			return false, template.Retry
		}
		// Phase 2: splice a router at the diverging bit b: descend to the
		// first edge whose child is a leaf or routes at or below b.
		b := diffBit(key, probe.key)
		parentRec, parentDir, cur := t.descendTo(key, b)
		if cur == nil {
			return false, template.Retry // structure moved; re-run
		}
		localp, st := c.LLX(parentRec)
		if st != core.LLXOK {
			return false, template.Retry
		}
		if ch, _ := localp[parentDir].(*node[V]); ch != cur {
			return false, template.Retry
		}
		// Revalidate b against the live structure: every key ever placed
		// under cur shares cur's routing prefix, so one representative leaf
		// pins the whole subtree's divergence from key. A stale probe (e.g.
		// its leaf was deleted meanwhile) fails these checks and retries.
		rep := walkToLeaf(cur, key)
		if rep == nil || rep.key == key || diffBit(key, rep.key) != b {
			return false, template.Retry
		}
		if !cur.leaf && cur.bit <= b {
			return false, template.Retry
		}
		nl := newLeaf(key, val)
		var inner *node[V]
		if bitOf(key, b) == 0 {
			inner = newInternal(b, nl, cur)
		} else {
			inner = newInternal(b, cur, nl)
		}
		if c.SCX([]*core.Record{parentRec}, nil,
			recField(parentRec, parentDir), inner) {
			return true, template.Done
		}
		return false, template.Retry
	})
}

// recField builds a FieldRef for a raw record (the entry point has one
// field; internal nodes have two).
func recField(rec *core.Record, dir int) core.FieldRef {
	return rec.Field(dir)
}

// descendTo walks toward key and returns the edge (parent record, field
// index) whose current child cur is the first node that is a leaf or routes
// at a bit index >= b — the splice point for a new router at bit b.
func (t *Trie[V]) descendTo(key uint64, b int) (*core.Record, int, *node[V]) {
	parentRec := t.root
	parentDir := fieldChild0
	cur := t.top()
	for cur != nil && !cur.leaf && cur.bit < b {
		parentRec = cur.rec
		parentDir = bitOf(key, cur.bit)
		cur = cur.child(parentDir)
	}
	return parentRec, parentDir, cur
}

// replaceLeaf swaps the leaf holding key for a fresh leaf with val,
// finalizing the old one. Returns false if the structure moved.
func (t *Trie[V]) replaceLeaf(c *template.Ctx, key uint64, val V) bool {
	parentRec := t.root
	parentDir := fieldChild0
	cur := t.top()
	for cur != nil && !cur.leaf {
		parentRec = cur.rec
		parentDir = bitOf(key, cur.bit)
		cur = cur.child(parentDir)
	}
	if cur == nil || cur.key != key {
		return false
	}
	localp, st := c.LLX(parentRec)
	if st != core.LLXOK {
		return false
	}
	if ch, _ := localp[parentDir].(*node[V]); ch != cur {
		return false
	}
	if _, st := c.LLX(cur.rec); st != core.LLXOK {
		return false
	}
	return c.SCX([]*core.Record{parentRec, cur.rec}, []*core.Record{cur.rec},
		recField(parentRec, parentDir), newLeaf(key, val))
}

// delResult carries Delete's two return values through the engine.
type delResult[V any] struct {
	val V
	ok  bool
}

// Delete removes key's mapping, returning the removed value and true, or
// the zero value and false if key was absent.
func (s Session[V]) Delete(key uint64) (V, bool) {
	t := s.t
	res := template.Run(s.h, t.policy, &t.delStats, func(c *template.Ctx) (delResult[V], template.Action) {
		// Track grandparent edge, parent node, and leaf during the descent.
		gRec := t.root
		gDir := fieldChild0
		var p *node[V]
		l := t.top()
		for l != nil && !l.leaf {
			if p != nil {
				gRec = p.rec
				gDir = bitOf(key, p.bit)
			}
			p = l
			l = l.child(bitOf(key, p.bit))
		}
		if l == nil || l.key != key {
			return delResult[V]{}, template.Done
		}
		if p == nil {
			// The leaf is the entire trie: unlink it from the entry point.
			localr, st := c.LLX(t.root)
			if st != core.LLXOK {
				return delResult[V]{}, template.Retry
			}
			if ch, _ := localr[fieldChild0].(*node[V]); ch != l {
				return delResult[V]{}, template.Retry
			}
			if _, st := c.LLX(l.rec); st != core.LLXOK {
				return delResult[V]{}, template.Retry
			}
			if c.SCX([]*core.Record{t.root, l.rec}, []*core.Record{l.rec},
				t.root.Field(fieldChild0), nil) {
				return delResult[V]{val: l.val, ok: true}, template.Done
			}
			return delResult[V]{}, template.Retry
		}
		// Replace p with l's sibling, finalizing p and l.
		localg, st := c.LLX(gRec)
		if st != core.LLXOK {
			return delResult[V]{}, template.Retry
		}
		if ch, _ := localg[gDir].(*node[V]); ch != p {
			return delResult[V]{}, template.Retry
		}
		localp, st := c.LLX(p.rec)
		if st != core.LLXOK {
			return delResult[V]{}, template.Retry
		}
		ldir := bitOf(key, p.bit)
		if ch, _ := localp[ldir].(*node[V]); ch != l {
			return delResult[V]{}, template.Retry
		}
		sib, _ := localp[1-ldir].(*node[V])
		if sib == nil {
			return delResult[V]{}, template.Retry
		}
		if _, st := c.LLX(l.rec); st != core.LLXOK {
			return delResult[V]{}, template.Retry
		}
		if _, st := c.LLX(sib.rec); st != core.LLXOK {
			return delResult[V]{}, template.Retry
		}
		// V in preorder-consistent order: grandparent edge owner, p, then
		// p's children in child order.
		var v []*core.Record
		if ldir == 0 {
			v = []*core.Record{gRec, p.rec, l.rec, sib.rec}
		} else {
			v = []*core.Record{gRec, p.rec, sib.rec, l.rec}
		}
		if c.SCX(v, []*core.Record{p.rec, l.rec}, recField(gRec, gDir), sib) {
			return delResult[V]{val: l.val, ok: true}, template.Done
		}
		return delResult[V]{}, template.Retry
	})
	return res.val, res.ok
}

// Len returns the number of keys observed by one traversal (exact when
// quiescent, weakly consistent under concurrency per Proposition 2).
func (t *Trie[V]) Len() int {
	n := 0
	t.walk(t.top(), func(*node[V]) { n++ })
	return n
}

// Keys returns the keys in ascending order (MSB-first bit order IS numeric
// order), with the same consistency caveat as Len.
func (t *Trie[V]) Keys() []uint64 {
	var keys []uint64
	t.walk(t.top(), func(l *node[V]) { keys = append(keys, l.key) })
	return keys
}

// Items returns the key -> value contents, same caveat as Len.
func (t *Trie[V]) Items() map[uint64]V {
	items := make(map[uint64]V)
	t.walk(t.top(), func(l *node[V]) { items[l.key] = l.val })
	return items
}

func (t *Trie[V]) walk(n *node[V], visit func(l *node[V])) {
	if n == nil {
		return
	}
	if n.leaf {
		visit(n)
		return
	}
	t.walk(n.child(fieldChild0), visit)
	t.walk(n.child(fieldChild1), visit)
}

// CheckInvariants verifies the Patricia shape on a quiescent trie: bit
// indices strictly increase downward, every key in a subtree agrees with
// the routing decisions above it, internal nodes have two children, and no
// reachable node is finalized.
func (t *Trie[V]) CheckInvariants() error {
	if t.root.Finalized() {
		return fmt.Errorf("entry point finalized")
	}
	return t.check(t.top(), -1, 0, 0)
}

// check validates subtree n: parentBit is the bit index of n's parent (-1
// at the top), and the bits of prefix masked by mask are the routing
// decisions taken so far.
func (t *Trie[V]) check(n *node[V], parentBit int, prefix, mask uint64) error {
	if n == nil {
		if parentBit == -1 {
			return nil // empty trie
		}
		return fmt.Errorf("internal node missing a child")
	}
	if n.rec.Finalized() {
		return fmt.Errorf("reachable node finalized (leaf=%v bit=%d key=%d)",
			n.leaf, n.bit, n.key)
	}
	if n.leaf {
		if n.key&mask != prefix {
			return fmt.Errorf("leaf key %#x disagrees with routing prefix %#x/%#x",
				n.key, prefix, mask)
		}
		return nil
	}
	if n.bit <= parentBit {
		return fmt.Errorf("bit indices not increasing: parent %d, child %d",
			parentBit, n.bit)
	}
	if n.bit > 63 {
		return fmt.Errorf("bit index %d out of range", n.bit)
	}
	m := uint64(1) << (63 - n.bit)
	if err := t.check(n.child(fieldChild0), n.bit, prefix, mask|m); err != nil {
		return err
	}
	return t.check(n.child(fieldChild1), n.bit, prefix|m, mask|m)
}
