// Package trie implements a non-blocking binary Patricia trie on the
// LLX/SCX primitives. The paper's related work (Section 2) points to
// non-blocking Patricia tries as a product of the same cooperative
// technique; this implementation shows the LLX/SCX template carrying over
// unchanged: searches are plain reads (Proposition 2) under an epoch guard,
// every update is one SCX that swings a single child pointer and finalizes
// exactly the removed nodes, and the retry loop itself lives in
// internal/template like every other structure here.
//
// Keys are uint64, compared most-significant-bit first. Internal nodes are
// pure routers labelled with the bit index where their subtrees diverge
// (path compression: bit indices strictly increase downward); leaves carry
// the key/value pairs. The trie's shape is a deterministic function of its
// key set, so no rebalancing is ever needed — which is exactly why it is a
// popular companion structure to the paper's BSTs.
//
// Child links are raw de-boxed pointer words; removed nodes are recycled
// through internal/reclaim (leaves and routers share one two-pointer record
// layout, so one pool serves both).
//
// Methods never take a *core.Process: plain calls acquire a pooled Handle
// per operation, and hot paths bind one with Attach.
package trie

import (
	"fmt"
	"math/bits"
	"unsafe"

	"pragmaprim/internal/core"
	"pragmaprim/internal/reclaim"
	"pragmaprim/internal/template"
)

// Mutable-field indices (pointer fields). The root record has a single
// child field; internal nodes have two.
const (
	fieldChild0 = 0 // bit == 0 side (also the root's only child field)
	fieldChild1 = 1
)

// node is one trie node. All fields except the record's child pointers are
// immutable while published. The record is embedded; leaves and routers
// share the two-pointer layout so the reclaim pool recycles them
// interchangeably.
type node[V any] struct {
	rec  core.Record
	leaf bool
	bit  int    // internal: diverging bit index, 0 (MSB) .. 63
	key  uint64 // leaf: the key
	val  V      // leaf: the value
}

// child reads child dir of internal node n with a plain read.
func (n *node[V]) child(dir int) *node[V] {
	return (*node[V])(n.rec.Ptr(dir))
}

// bitOf extracts bit i of key, MSB first.
func bitOf(key uint64, i int) int {
	return int(key>>(63-i)) & 1
}

// diffBit returns the index of the most significant bit where a and b
// differ; a must differ from b.
func diffBit(a, b uint64) int {
	return bits.LeadingZeros64(a ^ b)
}

// Trie is a non-blocking map from uint64 keys to V. The zero value is not
// usable; create one with New. All methods are safe for concurrent use.
type Trie[V any] struct {
	root     *core.Record // entry point: one mutable field, the trie's root node
	pool     *reclaim.Pool[node[V]]
	policy   template.Policy
	putStats template.OpStats
	delStats template.OpStats
}

// New creates an empty trie. The entry-point record is never finalized.
func New[V any]() *Trie[V] {
	t := &Trie[V]{
		root: core.NewTypedRecord(0, 1),
		pool: reclaim.NewPool[node[V]](),
	}
	// Rewind records as nodes enter the freelists, releasing the
	// descriptors their info fields would otherwise park (see reclaim).
	t.pool.SetOnFree(func(n *node[V]) { n.rec.Recycle() })
	return t
}

// alloc recycles or allocates a blank node.
func (t *Trie[V]) alloc(l *reclaim.Local) *node[V] {
	n := t.pool.Get(l)
	if n == nil {
		n = &node[V]{}
		core.InitRecord(&n.rec, 0, 2)
	} else {
		n.rec.Recycle()
	}
	return n
}

// setInternal and setLeaf are the single places node state is set, shared
// by the constructors and the retry paths that re-arm a node built by an
// earlier attempt.
func setInternal[V any](n *node[V], bit int, child0, child1 *node[V]) {
	var zeroV V
	n.leaf, n.bit, n.key, n.val = false, bit, 0, zeroV
	n.rec.SetPtr(fieldChild0, unsafe.Pointer(child0))
	n.rec.SetPtr(fieldChild1, unsafe.Pointer(child1))
}

func setLeaf[V any](n *node[V], key uint64, val V) {
	n.leaf, n.bit, n.key, n.val = true, 0, key, val
	n.rec.SetPtr(fieldChild0, nil)
	n.rec.SetPtr(fieldChild1, nil)
}

func (t *Trie[V]) newInternal(l *reclaim.Local, bit int, child0, child1 *node[V]) *node[V] {
	n := t.alloc(l)
	setInternal(n, bit, child0, child1)
	return n
}

func (t *Trie[V]) newLeaf(l *reclaim.Local, key uint64, val V) *node[V] {
	n := t.alloc(l)
	setLeaf(n, key, val)
	return n
}

// SetPolicy installs the retry policy updates back off with; nil (the
// default) retries immediately. Call before sharing the trie.
func (t *Trie[V]) SetPolicy(p template.Policy) { t.policy = p }

// EngineStats returns the template engine's aggregate attempt/failure
// counters across all update operations.
func (t *Trie[V]) EngineStats() template.Counters {
	return t.putStats.Snapshot().Add(t.delStats.Snapshot())
}

// StatsByOp returns the engine counters broken out per operation.
func (t *Trie[V]) StatsByOp() map[string]template.Counters {
	return map[string]template.Counters{
		"put":    t.putStats.Snapshot(),
		"delete": t.delStats.Snapshot(),
	}
}

// Session is a Handle-bound view of a Trie: the hot-path API for a
// goroutine performing many operations. Not safe for concurrent use; any
// number of Sessions may share the Trie.
type Session[V any] struct {
	t *Trie[V]
	h *core.Handle
}

// Attach binds a Session to h. The caller keeps ownership of h.
func (t *Trie[V]) Attach(h *core.Handle) Session[V] {
	return Session[V]{t: t, h: h}
}

// Handle returns the Session's Handle.
func (s Session[V]) Handle() *core.Handle { return s.h }

// top reads the trie's root node (nil when empty).
func (t *Trie[V]) top() *node[V] {
	return (*node[V])(t.root.Ptr(fieldChild0))
}

// Get returns the value stored for key, if any, using a pooled Handle; see
// Session.Get for the hot-path form.
func (t *Trie[V]) Get(key uint64) (V, bool) {
	h := core.AcquireHandle()
	v, ok := t.Attach(h).Get(key)
	h.Release()
	return v, ok
}

// Contains reports whether key is present.
func (t *Trie[V]) Contains(key uint64) bool {
	_, ok := t.Get(key)
	return ok
}

// Put maps key to val using a pooled Handle; see Session.Put for the
// hot-path form.
func (t *Trie[V]) Put(key uint64, val V) bool {
	h := core.AcquireHandle()
	ok := t.Attach(h).Put(key, val)
	h.Release()
	return ok
}

// Delete removes key's mapping using a pooled Handle; see Session.Delete
// for the hot-path form.
func (t *Trie[V]) Delete(key uint64) (V, bool) {
	h := core.AcquireHandle()
	v, ok := t.Attach(h).Delete(key)
	h.Release()
	return v, ok
}

// Get returns the value stored for key, if any.
func (s Session[V]) Get(key uint64) (V, bool) {
	template.Enter(s.h)
	defer template.Exit(s.h)
	t := s.t
	var zero V
	n := t.top()
	for n != nil && !n.leaf {
		n = n.child(bitOf(key, n.bit))
	}
	if n != nil && n.key == key {
		return n.val, true
	}
	return zero, false
}

// Contains reports whether key is present.
func (s Session[V]) Contains(key uint64) bool {
	_, ok := s.Get(key)
	return ok
}

// walkToLeaf follows key's bits from n to a leaf.
func walkToLeaf[V any](n *node[V], key uint64) *node[V] {
	for n != nil && !n.leaf {
		n = n.child(bitOf(key, n.bit))
	}
	return n
}

// Put maps key to val, returning true if key was newly inserted and false
// if an existing mapping was replaced.
func (s Session[V]) Put(key uint64, val V) bool {
	t := s.t
	var nl, inner *node[V] // built at most once per operation; retries retarget
	leaf := func(c *template.Ctx) *node[V] {
		if nl == nil {
			nl = t.newLeaf(c.Reclaim(), key, val)
		}
		return nl
	}
	return template.Run(s.h, t.policy, &t.putStats, func(c *template.Ctx) (bool, template.Action) {
		// Phase 1: probe for a leaf sharing key's routed prefix.
		top := t.top()
		if top == nil {
			// Empty trie: install the first leaf at the entry point.
			localr, st := c.LLXF(t.root)
			if st != core.LLXOK {
				return false, template.Retry
			}
			if localr.Ptr(fieldChild0) != nil {
				return false, template.Retry // no longer empty; re-run
			}
			if c.SCXPtr([]*core.Record{t.root}, nil, t.root.PtrField(fieldChild0),
				unsafe.Pointer(leaf(c))) {
				if inner != nil {
					t.pool.Release(c.Reclaim(), inner)
				}
				return true, template.Done
			}
			return false, template.Retry
		}
		probe := walkToLeaf(top, key)
		if probe.key == key {
			// Replace the existing leaf in place, finalizing it.
			if t.replaceLeaf(c, key, leaf(c)) {
				if inner != nil {
					t.pool.Release(c.Reclaim(), inner)
				}
				return false, template.Done
			}
			return false, template.Retry
		}
		// Phase 2: splice a router at the diverging bit b: descend to the
		// first edge whose child is a leaf or routes at or below b.
		b := diffBit(key, probe.key)
		parentRec, parentDir, cur := t.descendTo(key, b)
		if cur == nil {
			return false, template.Retry // structure moved; re-run
		}
		localp, st := c.LLXF(parentRec)
		if st != core.LLXOK {
			return false, template.Retry
		}
		if (*node[V])(localp.Ptr(parentDir)) != cur {
			return false, template.Retry
		}
		// Revalidate b against the live structure: every key ever placed
		// under cur shares cur's routing prefix, so one representative leaf
		// pins the whole subtree's divergence from key. A stale probe (e.g.
		// its leaf was deleted meanwhile) fails these checks and retries.
		rep := walkToLeaf(cur, key)
		if rep == nil || rep.key == key || diffBit(key, rep.key) != b {
			return false, template.Retry
		}
		if !cur.leaf && cur.bit <= b {
			return false, template.Retry
		}
		n := leaf(c)
		if inner == nil {
			inner = t.alloc(c.Reclaim())
		}
		if bitOf(key, b) == 0 {
			setInternal(inner, b, n, cur)
		} else {
			setInternal(inner, b, cur, n)
		}
		if c.SCXPtr([]*core.Record{parentRec}, nil,
			parentRec.PtrField(parentDir), unsafe.Pointer(inner)) {
			return true, template.Done
		}
		return false, template.Retry
	})
}

// descendTo walks toward key and returns the edge (parent record, field
// index) whose current child cur is the first node that is a leaf or routes
// at a bit index >= b — the splice point for a new router at bit b.
func (t *Trie[V]) descendTo(key uint64, b int) (*core.Record, int, *node[V]) {
	parentRec := t.root
	parentDir := fieldChild0
	cur := t.top()
	for cur != nil && !cur.leaf && cur.bit < b {
		parentRec = &cur.rec
		parentDir = bitOf(key, cur.bit)
		cur = cur.child(parentDir)
	}
	return parentRec, parentDir, cur
}

// replaceLeaf swaps the leaf holding key for repl, finalizing and retiring
// the old one. Returns false if the structure moved.
func (t *Trie[V]) replaceLeaf(c *template.Ctx, key uint64, repl *node[V]) bool {
	parentRec := t.root
	parentDir := fieldChild0
	cur := t.top()
	for cur != nil && !cur.leaf {
		parentRec = &cur.rec
		parentDir = bitOf(key, cur.bit)
		cur = cur.child(parentDir)
	}
	if cur == nil || cur.key != key {
		return false
	}
	localp, st := c.LLXF(parentRec)
	if st != core.LLXOK {
		return false
	}
	if (*node[V])(localp.Ptr(parentDir)) != cur {
		return false
	}
	if _, st := c.LLXF(&cur.rec); st != core.LLXOK {
		return false
	}
	if c.SCXPtr([]*core.Record{parentRec, &cur.rec}, []*core.Record{&cur.rec},
		parentRec.PtrField(parentDir), unsafe.Pointer(repl)) {
		t.pool.Retire(c.Reclaim(), cur)
		return true
	}
	return false
}

// delResult carries Delete's two return values through the engine.
type delResult[V any] struct {
	val V
	ok  bool
}

// Delete removes key's mapping, returning the removed value and true, or
// the zero value and false if key was absent.
func (s Session[V]) Delete(key uint64) (V, bool) {
	t := s.t
	res := template.Run(s.h, t.policy, &t.delStats, func(c *template.Ctx) (delResult[V], template.Action) {
		// Track grandparent edge, parent node, and leaf during the descent.
		gRec := t.root
		gDir := fieldChild0
		var p *node[V]
		l := t.top()
		for l != nil && !l.leaf {
			if p != nil {
				gRec = &p.rec
				gDir = bitOf(key, p.bit)
			}
			p = l
			l = l.child(bitOf(key, p.bit))
		}
		if l == nil || l.key != key {
			return delResult[V]{}, template.Done
		}
		if p == nil {
			// The leaf is the entire trie: unlink it from the entry point.
			localr, st := c.LLXF(t.root)
			if st != core.LLXOK {
				return delResult[V]{}, template.Retry
			}
			if (*node[V])(localr.Ptr(fieldChild0)) != l {
				return delResult[V]{}, template.Retry
			}
			if _, st := c.LLXF(&l.rec); st != core.LLXOK {
				return delResult[V]{}, template.Retry
			}
			if c.SCXPtr([]*core.Record{t.root, &l.rec}, []*core.Record{&l.rec},
				t.root.PtrField(fieldChild0), nil) {
				val := l.val
				t.pool.Retire(c.Reclaim(), l)
				return delResult[V]{val: val, ok: true}, template.Done
			}
			return delResult[V]{}, template.Retry
		}
		// Replace p with l's sibling, finalizing p and l.
		localg, st := c.LLXF(gRec)
		if st != core.LLXOK {
			return delResult[V]{}, template.Retry
		}
		if (*node[V])(localg.Ptr(gDir)) != p {
			return delResult[V]{}, template.Retry
		}
		localp, st := c.LLXF(&p.rec)
		if st != core.LLXOK {
			return delResult[V]{}, template.Retry
		}
		ldir := bitOf(key, p.bit)
		if (*node[V])(localp.Ptr(ldir)) != l {
			return delResult[V]{}, template.Retry
		}
		sib := (*node[V])(localp.Ptr(1 - ldir))
		if sib == nil {
			return delResult[V]{}, template.Retry
		}
		if _, st := c.LLXF(&l.rec); st != core.LLXOK {
			return delResult[V]{}, template.Retry
		}
		if _, st := c.LLXF(&sib.rec); st != core.LLXOK {
			return delResult[V]{}, template.Retry
		}
		// V in preorder-consistent order: grandparent edge owner, p, then
		// p's children in child order.
		var v []*core.Record
		if ldir == 0 {
			v = []*core.Record{gRec, &p.rec, &l.rec, &sib.rec}
		} else {
			v = []*core.Record{gRec, &p.rec, &sib.rec, &l.rec}
		}
		if c.SCXPtr(v, []*core.Record{&p.rec, &l.rec}, gRec.PtrField(gDir),
			unsafe.Pointer(sib)) {
			val := l.val
			t.pool.Retire(c.Reclaim(), p)
			t.pool.Retire(c.Reclaim(), l)
			return delResult[V]{val: val, ok: true}, template.Done
		}
		return delResult[V]{}, template.Retry
	})
	return res.val, res.ok
}

// Len returns the number of keys observed by one traversal (exact when
// quiescent, weakly consistent under concurrency per Proposition 2).
func (t *Trie[V]) Len() int {
	n := 0
	template.Guarded(func() { t.walk(t.top(), func(*node[V]) { n++ }) })
	return n
}

// Keys returns the keys in ascending order (MSB-first bit order IS numeric
// order), with the same consistency caveat as Len.
func (t *Trie[V]) Keys() []uint64 {
	var keys []uint64
	template.Guarded(func() { t.walk(t.top(), func(l *node[V]) { keys = append(keys, l.key) }) })
	return keys
}

// Items returns the key -> value contents, same caveat as Len.
func (t *Trie[V]) Items() map[uint64]V {
	items := make(map[uint64]V)
	template.Guarded(func() { t.walk(t.top(), func(l *node[V]) { items[l.key] = l.val }) })
	return items
}

func (t *Trie[V]) walk(n *node[V], visit func(l *node[V])) {
	if n == nil {
		return
	}
	if n.leaf {
		visit(n)
		return
	}
	t.walk(n.child(fieldChild0), visit)
	t.walk(n.child(fieldChild1), visit)
}

// CheckInvariants verifies the Patricia shape on a quiescent trie: bit
// indices strictly increase downward, every key in a subtree agrees with
// the routing decisions above it, internal nodes have two children, and no
// reachable node is finalized.
func (t *Trie[V]) CheckInvariants() error {
	if t.root.Finalized() {
		return fmt.Errorf("entry point finalized")
	}
	var err error
	template.Guarded(func() { err = t.check(t.top(), -1, 0, 0) })
	return err
}

// check validates subtree n: parentBit is the bit index of n's parent (-1
// at the top), and the bits of prefix masked by mask are the routing
// decisions taken so far.
func (t *Trie[V]) check(n *node[V], parentBit int, prefix, mask uint64) error {
	if n == nil {
		if parentBit == -1 {
			return nil // empty trie
		}
		return fmt.Errorf("internal node missing a child")
	}
	if n.rec.Finalized() {
		return fmt.Errorf("reachable node finalized (leaf=%v bit=%d key=%d)",
			n.leaf, n.bit, n.key)
	}
	if n.leaf {
		if n.key&mask != prefix {
			return fmt.Errorf("leaf key %#x disagrees with routing prefix %#x/%#x",
				n.key, prefix, mask)
		}
		return nil
	}
	if n.bit <= parentBit {
		return fmt.Errorf("bit indices not increasing: parent %d, child %d",
			parentBit, n.bit)
	}
	if n.bit > 63 {
		return fmt.Errorf("bit index %d out of range", n.bit)
	}
	m := uint64(1) << (63 - n.bit)
	if err := t.check(n.child(fieldChild0), n.bit, prefix, mask|m); err != nil {
		return err
	}
	return t.check(n.child(fieldChild1), n.bit, prefix|m, mask|m)
}
