package trie_test

import (
	"math/rand"
	"pragmaprim/internal/trie"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func checkInv(t *testing.T, tr *trie.Trie[int]) {
	t.Helper()
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("invariant violated: %v", err)
	}
}

func TestEmptyTrie(t *testing.T) {
	tr := trie.New[int]()
	if _, ok := tr.Get(5); ok {
		t.Error("Get on empty returned ok")
	}
	if _, ok := tr.Delete(5); ok {
		t.Error("Delete on empty = true")
	}
	if got := tr.Len(); got != 0 {
		t.Errorf("Len = %d", got)
	}
	checkInv(t, tr)
}

func TestPutGetSingle(t *testing.T) {
	tr := trie.New[int]()
	if !tr.Put(42, 420) {
		t.Fatal("Put of new key = false")
	}
	if v, ok := tr.Get(42); !ok || v != 420 {
		t.Fatalf("Get = (%d,%v)", v, ok)
	}
	checkInv(t, tr)
}

func TestPutReplace(t *testing.T) {
	tr := trie.New[int]()
	tr.Put(42, 1)
	if tr.Put(42, 2) {
		t.Fatal("Put of existing key = true")
	}
	if v, _ := tr.Get(42); v != 2 {
		t.Fatalf("Get = %d, want 2", v)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
	checkInv(t, tr)
}

func TestPutManyKeysSorted(t *testing.T) {
	tr := trie.New[int]()
	keys := []uint64{0, 1, 2, 3, 0xFF, 0xFF00, 1 << 40, 1<<63 + 5, 7, 6}
	for _, k := range keys {
		tr.Put(k, int(k%1000))
	}
	got := tr.Keys()
	want := append([]uint64(nil), keys...)
	sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
	if len(got) != len(want) {
		t.Fatalf("Keys = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Keys = %v, want %v", got, want)
		}
	}
	checkInv(t, tr)
}

func TestDeleteDownToEmpty(t *testing.T) {
	tr := trie.New[int]()
	for _, k := range []uint64{5, 9, 12} {
		tr.Put(k, int(k))
	}
	for _, k := range []uint64{9, 5, 12} {
		v, ok := tr.Delete(k)
		if !ok || v != int(k) {
			t.Fatalf("Delete(%d) = (%d,%v)", k, v, ok)
		}
		checkInv(t, tr)
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after draining", tr.Len())
	}
	// Still usable after emptying.
	tr.Put(77, 770)
	if v, ok := tr.Get(77); !ok || v != 770 {
		t.Fatalf("Get(77) = (%d,%v)", v, ok)
	}
	checkInv(t, tr)
}

func TestDeleteAbsent(t *testing.T) {
	tr := trie.New[int]()
	tr.Put(8, 80)
	if _, ok := tr.Delete(9); ok {
		t.Fatal("Delete of absent key = true")
	}
	// Key sharing a long prefix with an existing key but absent.
	if _, ok := tr.Delete(8 | 1<<63); ok {
		t.Fatal("Delete of absent high-bit sibling = true")
	}
	checkInv(t, tr)
}

func TestAdjacentKeys(t *testing.T) {
	// Keys differing only in the lowest bit exercise bit index 63.
	tr := trie.New[int]()
	tr.Put(10, 1)
	tr.Put(11, 2)
	if v, _ := tr.Get(10); v != 1 {
		t.Fatalf("Get(10) = %d", v)
	}
	if v, _ := tr.Get(11); v != 2 {
		t.Fatalf("Get(11) = %d", v)
	}
	if _, ok := tr.Delete(10); !ok {
		t.Fatal("Delete(10) failed")
	}
	if v, _ := tr.Get(11); v != 2 {
		t.Fatalf("Get(11) after sibling delete = %d", v)
	}
	checkInv(t, tr)
}

func TestExtremeKeys(t *testing.T) {
	tr := trie.New[int]()
	keys := []uint64{0, ^uint64(0), 1, 1 << 63}
	for i, k := range keys {
		tr.Put(k, i)
	}
	for i, k := range keys {
		if v, ok := tr.Get(k); !ok || v != i {
			t.Fatalf("Get(%#x) = (%d,%v), want (%d,true)", k, v, ok, i)
		}
	}
	checkInv(t, tr)
}

func TestQuickAgainstMapModel(t *testing.T) {
	type op struct {
		Kind uint8
		Key  uint8
		Val  int16
	}
	f := func(ops []op) bool {
		tr := trie.New[int]()
		model := make(map[uint64]int)
		for _, o := range ops {
			key := uint64(o.Key % 32)
			val := int(o.Val)
			switch o.Kind % 3 {
			case 0:
				_, existed := model[key]
				if tr.Put(key, val) != !existed {
					return false
				}
				model[key] = val
			case 1:
				want, existed := model[key]
				got, ok := tr.Delete(key)
				if ok != existed || (existed && got != want) {
					return false
				}
				delete(model, key)
			default:
				want, existed := model[key]
				got, ok := tr.Get(key)
				if ok != existed || (existed && got != want) {
					return false
				}
			}
		}
		if tr.CheckInvariants() != nil {
			return false
		}
		items := tr.Items()
		if len(items) != len(model) {
			return false
		}
		for k, v := range model {
			if items[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentPutDisjoint(t *testing.T) {
	const procs = 8
	const perProc = 300
	tr := trie.New[int]()
	var wg sync.WaitGroup
	for g := 0; g < procs; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perProc; i++ {
				k := uint64(g*perProc + i)
				if !tr.Put(k, int(k)) {
					t.Errorf("Put(%d) of fresh key = false", k)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for k := 0; k < procs*perProc; k++ {
		if v, ok := tr.Get(uint64(k)); !ok || v != k {
			t.Fatalf("Get(%d) = (%d,%v)", k, v, ok)
		}
	}
	checkInv(t, tr)
}

func TestConcurrentChurnDrainsToEmpty(t *testing.T) {
	const procs = 8
	const perProc = 250
	tr := trie.New[int]()
	var wg sync.WaitGroup
	for g := 0; g < procs; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < perProc; i++ {
				k := uint64(g*1000 + rng.Intn(400))
				tr.Put(k, int(k))
				if _, ok := tr.Delete(k); !ok {
					t.Errorf("Delete(%d) = false though owned", k)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if got := tr.Len(); got != 0 {
		t.Fatalf("Len = %d, want 0; keys=%v", got, tr.Keys())
	}
	checkInv(t, tr)
}

func TestConcurrentSharedKeysReconcile(t *testing.T) {
	const procs = 6
	const perProc = 400
	const keyRange = 16
	tr := trie.New[int]()
	inserts := make([][]int64, procs)
	deletes := make([][]int64, procs)
	var wg sync.WaitGroup
	for g := 0; g < procs; g++ {
		inserts[g] = make([]int64, keyRange)
		deletes[g] = make([]int64, keyRange)
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g + 31)))
			for i := 0; i < perProc; i++ {
				k := uint64(rng.Intn(keyRange))
				if rng.Intn(2) == 0 {
					if tr.Put(k, g) {
						inserts[g][k]++
					}
				} else if _, ok := tr.Delete(k); ok {
					deletes[g][k]++
				}
			}
		}(g)
	}
	wg.Wait()
	checkInv(t, tr)
	present := make(map[uint64]bool)
	for _, k := range tr.Keys() {
		present[k] = true
	}
	for k := 0; k < keyRange; k++ {
		var ins, del int64
		for g := 0; g < procs; g++ {
			ins += inserts[g][k]
			del += deletes[g][k]
		}
		switch ins - del {
		case 0:
			if present[uint64(k)] {
				t.Errorf("key %d present with inserts==deletes", k)
			}
		case 1:
			if !present[uint64(k)] {
				t.Errorf("key %d absent with inserts=deletes+1", k)
			}
		default:
			t.Errorf("key %d: impossible insert/delete gap %d", k, ins-del)
		}
	}
}
