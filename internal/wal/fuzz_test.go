package wal

import (
	"encoding/binary"
	"hash/crc32"
	"testing"
)

// frame builds one well-formed record frame for seeds and oracles.
func frame(op Op, key int64) []byte {
	var b [frameSize]byte
	binary.BigEndian.PutUint32(b[:4], payloadLen)
	b[8] = byte(op)
	binary.BigEndian.PutUint64(b[9:], uint64(key))
	binary.BigEndian.PutUint32(b[4:8], crc32.Checksum(b[8:], crcTable))
	return b[:]
}

// FuzzReplay throws arbitrary bytes at the record scanner — the exact code
// path recovery runs over a crashed segment's content — and checks it never
// panics, never over-consumes, and only reports frames that byte-for-byte
// re-encode to the input. Seeds cover the interesting shapes: a valid log,
// a truncated header, a corrupted CRC, a torn tail and an over-length
// record. The checked-in corpus lives in testdata/fuzz/FuzzReplay.
func FuzzReplay(f *testing.F) {
	valid := append(frame(OpInsert, 7), frame(OpDelete, -1)...)
	f.Add(valid)                               // clean two-record log
	f.Add(valid[:5])                           // truncated header
	f.Add(append(frame(OpInsert, 0), 0, 0, 0)) // torn tail after a good frame
	badCRC := frame(OpInsert, 9)
	badCRC[5] ^= 0xff
	f.Add(badCRC)
	over := frame(OpInsert, 1)
	binary.BigEndian.PutUint32(over[:4], 1<<30) // over-length record
	f.Add(over)
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		var recs []rec
		lastLSN := uint64(0)
		consumed, err := scanRecords(data, 1, func(lsn uint64, op Op, key int64) error {
			recs = append(recs, rec{lsn, op, key})
			lastLSN = lsn
			return nil
		})
		if consumed < 0 || consumed > int64(len(data)) {
			t.Fatalf("consumed %d of %d bytes", consumed, len(data))
		}
		if consumed%frameSize != 0 {
			t.Fatalf("consumed %d bytes, not a frame multiple", consumed)
		}
		if int64(len(recs))*frameSize != consumed {
			t.Fatalf("%d records from %d consumed bytes", len(recs), consumed)
		}
		if err == nil && consumed != int64(len(data)) {
			t.Fatalf("clean scan stopped at %d of %d bytes", consumed, len(data))
		}
		if len(recs) > 0 && lastLSN != uint64(len(recs)) {
			t.Fatalf("last LSN %d for %d records from base 1", lastLSN, len(recs))
		}
		// Every accepted record must re-encode to exactly the bytes scanned:
		// the parser accepts nothing a writer could not have produced.
		for i, r := range recs {
			start := i * frameSize
			got := frame(r.op, r.key)
			for j := range got {
				if got[j] != data[start+j] {
					t.Fatalf("record %d re-encodes differently at byte %d", i, j)
				}
			}
		}
	})
}
