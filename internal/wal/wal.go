// Package wal is the write-ahead log behind the KV server's durability
// contract: a mutation is acknowledged only after its record is part of a
// committed (fsynced) group. Records are fixed-size, length-prefixed and
// CRC32C-framed; segments rotate at a size threshold and are named by the
// LSN of their first record so snapshot-bounded truncation is a directory
// scan. Group commit amortizes one fsync over every record appended during
// the commit window, which is what keeps the pipelined SET hot path
// allocation-free and fsync-bounded per batch rather than per op.
//
// Replay is torn-tail tolerant: a crash can leave a partial frame after the
// last fsync, and Open truncates the tail segment at the first bad frame
// and continues appending there. A bad frame in any earlier segment is hard
// corruption (those bytes were covered by an fsync) and fails recovery.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"pragmaprim/internal/obs"
)

// Op is the kind of logged mutation. Only applied mutations are logged, so
// replay is a pure count accumulation: order between keys is irrelevant and
// records for one key commute into a net count.
type Op uint8

const (
	OpInsert Op = 1
	OpDelete Op = 2
)

// Frame layout: 4-byte big-endian payload length, 4-byte CRC32C of the
// payload, then the payload itself (1-byte op + 8-byte big-endian key).
const (
	frameHeader = 8                        // length + crc
	payloadLen  = 9                        // op + key
	frameSize   = frameHeader + payloadLen // 17 bytes per record
)

// Segment file layout: a 16-byte header (magic + big-endian first LSN),
// then frames. Files are named wal-<firstLSN, zero-padded>.seg.
const (
	segMagic      = "PPWAL01\x00"
	segHeaderSize = 16
	segPrefix     = "wal-"
	segSuffix     = ".seg"
)

var (
	// ErrClosed is returned by Append/Commit after Close.
	ErrClosed = errors.New("wal: log closed")
	// ErrCorrupt reports a bad frame in a non-tail position — bytes that a
	// previous fsync claimed durable. Recovery must not guess past it.
	ErrCorrupt = errors.New("wal: corrupt record before log tail")

	crcTable = crc32.MakeTable(crc32.Castagnoli)
)

// Options configures Open. The zero value uses the real file system, a
// 16 MiB segment threshold and no commit window (every Commit leader syncs
// immediately; grouping still happens across appends that raced in).
type Options struct {
	// FS is the file system to run on; nil means the OS.
	FS FS
	// SegmentBytes is the size at which the active segment is sealed and a
	// new one started, checked at commit boundaries. 0 means 16 MiB.
	SegmentBytes int64
	// FsyncInterval is the group-commit window: the commit leader waits
	// this long (releasing the log to appenders) before syncing, so
	// concurrent connections share one fsync. 0 syncs immediately.
	FsyncInterval time.Duration
}

// Metrics is a point-in-time snapshot of the log's counters.
type Metrics struct {
	Appends   int64  // records appended
	Commits   int64  // commit groups (equals fsync batches on the data path)
	Fsyncs    int64  // data fsyncs issued by commit leaders
	Rotations int64  // segments sealed
	Truncated int64  // segments deleted by TruncateThrough
	LastLSN   uint64 // highest assigned LSN
	Durable   uint64 // highest LSN covered by a successful fsync
	Segments  int    // live segment files
}

// Hists are the log's observability recorders, installed with SetHists.
// All three are optional (nil skips that measurement); recording goes
// through obs.Recorder, so an instrumented commit path stays lock- and
// allocation-free beyond the log's own mutex.
type Hists struct {
	// Fsync observes the latency of each data fsync, nanoseconds.
	Fsync *obs.Recorder
	// Commit observes each commit group end to end — window sleep, write,
	// fsync — nanoseconds. Commit minus Fsync is the grouping overhead.
	Commit *obs.Recorder
	// Batch observes the size of each commit group, in records. The
	// distribution shows how well group commit amortizes the fsync.
	Batch *obs.Recorder
}

type segInfo struct {
	name  string
	first uint64
}

// Log is the write-ahead log. Append and Commit are safe for concurrent use
// by any number of connections; one commit leader performs I/O at a time
// while appenders keep filling the next buffer (double buffering).
type Log struct {
	fs  FS
	dir string
	opt Options

	mu      sync.Mutex
	cond    *sync.Cond
	err     error  // sticky: first I/O failure or ErrClosed
	buf     []byte // frames appended but not yet handed to a leader
	spare   []byte // recycled batch buffer
	nextLSN uint64 // next LSN to assign
	durable uint64 // all LSNs <= durable are fsynced
	syncing bool   // a commit leader is in its I/O section

	active     File
	activeSize int64
	segs       []segInfo // includes the active segment (last entry)
	hists      Hists     // observability recorders; zero value records nothing

	appends, commits, fsyncs, rotations, truncated int64
}

func segName(first uint64) string {
	return fmt.Sprintf("%s%020d%s", segPrefix, first, segSuffix)
}

func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	n, err := strconv.ParseUint(name[len(segPrefix):len(name)-len(segSuffix)], 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// Open replays the log under dir (creating it if needed) and returns a Log
// positioned to append after the last valid record. fn, if non-nil, is
// called once per recovered record in LSN order. A torn tail — a bad frame
// at the end of the newest segment — is truncated and replay succeeds; a
// bad frame anywhere else fails with ErrCorrupt.
func Open(dir string, opt Options, fn func(lsn uint64, op Op, key int64) error) (*Log, error) {
	if opt.FS == nil {
		opt.FS = OS
	}
	if opt.SegmentBytes <= 0 {
		opt.SegmentBytes = 16 << 20
	}
	l := &Log{fs: opt.FS, dir: dir, opt: opt, nextLSN: 1}
	l.cond = sync.NewCond(&l.mu)

	if err := l.fs.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("wal: mkdir %s: %w", dir, err)
	}
	names, err := l.fs.List(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: list %s: %w", dir, err)
	}
	for _, name := range names {
		if first, ok := parseSegName(name); ok {
			l.segs = append(l.segs, segInfo{name: name, first: first})
		}
	}
	sort.Slice(l.segs, func(i, j int) bool { return l.segs[i].first < l.segs[j].first })

	if len(l.segs) == 0 {
		if err := l.createSegment(1); err != nil {
			return nil, err
		}
		return l, nil
	}
	// Snapshot-bounded truncation deletes leading segments, so the log may
	// start past LSN 1; records before that are covered by a snapshot.
	l.nextLSN = l.segs[0].first
	for i, seg := range l.segs {
		last := i == len(l.segs)-1
		if err := l.replaySegment(seg, last, fn); err != nil {
			return nil, err
		}
	}
	return l, nil
}

// replaySegment scans one segment, feeding records to fn. For the tail
// segment it truncates at the first bad frame and leaves the file open for
// appending; for earlier segments any bad frame is ErrCorrupt.
func (l *Log) replaySegment(seg segInfo, tail bool, fn func(uint64, Op, int64) error) error {
	path := filepath.Join(l.dir, seg.name)
	f, err := l.fs.Open(path)
	if err != nil {
		return fmt.Errorf("wal: open %s: %w", seg.name, err)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return fmt.Errorf("wal: read %s: %w", seg.name, err)
	}
	if len(data) < segHeaderSize || string(data[:len(segMagic)]) != segMagic {
		f.Close()
		return fmt.Errorf("wal: %s: bad segment header", seg.name)
	}
	if first := binary.BigEndian.Uint64(data[len(segMagic):segHeaderSize]); first != seg.first {
		f.Close()
		return fmt.Errorf("wal: %s: header LSN %d does not match name", seg.name, first)
	}
	if seg.first != l.nextLSN {
		f.Close()
		return fmt.Errorf("wal: %s starts at LSN %d, want %d (gap or overlap)", seg.name, seg.first, l.nextLSN)
	}
	consumed, scanErr := scanRecords(data[segHeaderSize:], seg.first, func(lsn uint64, op Op, key int64) error {
		l.nextLSN = lsn + 1
		if fn != nil {
			return fn(lsn, op, key)
		}
		return nil
	})
	if scanErr != nil && !errors.Is(scanErr, errTorn) {
		f.Close()
		return scanErr // replay callback error
	}
	if scanErr != nil && !tail {
		f.Close()
		return fmt.Errorf("wal: %s offset %d: %w", seg.name, segHeaderSize+consumed, ErrCorrupt)
	}
	if !tail {
		f.Close()
		return nil
	}
	// Tail segment: drop any torn suffix and keep appending here.
	end := segHeaderSize + consumed
	if end < int64(len(data)) {
		if err := f.Truncate(end); err != nil {
			f.Close()
			return fmt.Errorf("wal: truncate torn tail of %s: %w", seg.name, err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("wal: sync truncated %s: %w", seg.name, err)
		}
	}
	if _, err := f.Seek(end, io.SeekStart); err != nil {
		f.Close()
		return fmt.Errorf("wal: seek %s: %w", seg.name, err)
	}
	l.active = f
	l.activeSize = end
	l.durable = l.nextLSN - 1
	return nil
}

// errTorn marks a frame that does not parse — truncated, corrupt, or
// nonsensical. At the log tail it means "crash mid-write"; earlier it means
// corruption.
var errTorn = errors.New("wal: torn or corrupt frame")

// scanRecords walks the frames in data (segment content past the header),
// calling fn with ascending LSNs starting at firstLSN. It returns the
// number of bytes consumed by valid frames and errTorn if the remainder is
// not a clean end-of-data, or fn's error, propagated immediately.
func scanRecords(data []byte, firstLSN uint64, fn func(lsn uint64, op Op, key int64) error) (int64, error) {
	var off int64
	lsn := firstLSN
	for int64(len(data))-off >= frameHeader {
		rest := data[off:]
		plen := binary.BigEndian.Uint32(rest[:4])
		if plen != payloadLen { // over-length, zero, or garbage
			return off, errTorn
		}
		if int64(len(rest)) < frameHeader+int64(plen) {
			return off, errTorn // truncated payload
		}
		payload := rest[frameHeader : frameHeader+plen]
		if crc32.Checksum(payload, crcTable) != binary.BigEndian.Uint32(rest[4:8]) {
			return off, errTorn
		}
		op := Op(payload[0])
		if op != OpInsert && op != OpDelete {
			return off, errTorn
		}
		key := int64(binary.BigEndian.Uint64(payload[1:9]))
		if fn != nil {
			if err := fn(lsn, op, key); err != nil {
				return off, err
			}
		}
		off += frameSize
		lsn++
	}
	if off != int64(len(data)) {
		return off, errTorn // trailing partial header
	}
	return off, nil
}

// createSegment starts a new active segment whose first record will be
// first. Called with l.mu held (or before the log is shared).
func (l *Log) createSegment(first uint64) error {
	name := segName(first)
	f, err := l.fs.Create(filepath.Join(l.dir, name))
	if err != nil {
		return fmt.Errorf("wal: create %s: %w", name, err)
	}
	var hdr [segHeaderSize]byte
	copy(hdr[:], segMagic)
	binary.BigEndian.PutUint64(hdr[len(segMagic):], first)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return fmt.Errorf("wal: write %s header: %w", name, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: sync %s: %w", name, err)
	}
	if err := l.fs.SyncDir(l.dir); err != nil {
		f.Close()
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	if l.active != nil {
		l.active.Close()
	}
	l.active = f
	l.activeSize = segHeaderSize
	l.segs = append(l.segs, segInfo{name: name, first: first})
	return nil
}

// Append buffers one record and returns its LSN. The record is NOT durable
// until a Commit covering the LSN returns nil. Append is allocation-free in
// steady state: the frame is encoded into a reused batch buffer.
func (l *Log) Append(op Op, key int64) (uint64, error) {
	l.mu.Lock()
	if l.err != nil {
		err := l.err
		l.mu.Unlock()
		return 0, err
	}
	lsn := l.nextLSN
	l.nextLSN++
	// Encode in place: extending with append(make(...)) compiles to a
	// zeroing grow with no temporary, so warm batches never allocate.
	n := len(l.buf)
	l.buf = append(l.buf, make([]byte, frameSize)...)
	b := l.buf[n : n+frameSize]
	binary.BigEndian.PutUint32(b[:4], payloadLen)
	b[8] = byte(op)
	binary.BigEndian.PutUint64(b[9:], uint64(key))
	binary.BigEndian.PutUint32(b[4:8], crc32.Checksum(b[8:], crcTable))
	l.appends++
	l.mu.Unlock()
	return lsn, nil
}

// Record is one applied mutation awaiting its log append — the unit
// AppendBatch consumes. The serving layer accumulates one Record per applied
// write while processing a request batch, then appends them all at once.
type Record struct {
	Op  Op
	Key int64
}

// AppendBatch buffers a run of records under a single mutex acquisition and
// returns the LSN of the last one (records receive consecutive LSNs in slice
// order). It is Append amortized: one lock round and one buffer grow per
// batch instead of per record, which is what keeps the WAL off the profile
// when the server logs a deep pipelined batch as one group-commit unit.
// Like Append, nothing is durable until a Commit covering the returned LSN
// returns nil. Empty batches return (0, nil).
func (l *Log) AppendBatch(recs []Record) (uint64, error) {
	if len(recs) == 0 {
		return 0, nil
	}
	l.mu.Lock()
	if l.err != nil {
		err := l.err
		l.mu.Unlock()
		return 0, err
	}
	last := l.nextLSN + uint64(len(recs)) - 1
	l.nextLSN = last + 1
	n := len(l.buf)
	l.buf = append(l.buf, make([]byte, frameSize*len(recs))...)
	for i := range recs {
		b := l.buf[n+i*frameSize : n+(i+1)*frameSize]
		binary.BigEndian.PutUint32(b[:4], payloadLen)
		b[8] = byte(recs[i].Op)
		binary.BigEndian.PutUint64(b[9:], uint64(recs[i].Key))
		binary.BigEndian.PutUint32(b[4:8], crc32.Checksum(b[8:], crcTable))
	}
	l.appends += int64(len(recs))
	l.mu.Unlock()
	return last, nil
}

// Commit blocks until every record up to and including lsn is fsynced, or
// the log has failed. One caller becomes the group leader and performs the
// write+fsync for everything buffered (optionally after the FsyncInterval
// window, during which further appends join the group); the rest wait on
// the result. A nil return is the durability guarantee behind every ack.
func (l *Log) Commit(lsn uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.err == nil && l.durable < lsn {
		if l.syncing {
			l.cond.Wait()
			continue
		}
		l.leaderSync()
	}
	if l.err != nil && l.durable >= lsn {
		// The record made it to disk before the log failed; the ack is
		// still sound even though the log is now dead.
		return nil
	}
	return l.err
}

// leaderSync runs one commit group. Called with l.mu held; returns with
// l.mu held. The I/O section runs unlocked so appenders make progress.
func (l *Log) leaderSync() {
	l.syncing = true
	hists := l.hists
	var groupStart time.Time
	if hists.Commit != nil {
		groupStart = time.Now()
	}
	if w := l.opt.FsyncInterval; w > 0 {
		// The grouping window: let concurrent connections pile appends into
		// this group so the fsync below covers them all.
		l.mu.Unlock()
		time.Sleep(w)
		l.mu.Lock()
	}
	batch := l.buf
	upTo := l.nextLSN - 1
	l.buf = l.spare[:0]
	active := l.active
	l.mu.Unlock()

	var ioErr error
	synced := false
	if len(batch) > 0 {
		if _, err := active.Write(batch); err != nil {
			ioErr = err
		}
	}
	if ioErr == nil {
		var syncStart time.Time
		if hists.Fsync != nil {
			syncStart = time.Now()
		}
		synced = true
		if err := active.Sync(); err != nil {
			ioErr = err
		}
		if hists.Fsync != nil {
			hists.Fsync.Record(int64(time.Since(syncStart)))
		}
	}
	if hists.Commit != nil {
		hists.Commit.Record(int64(time.Since(groupStart)))
	}
	if hists.Batch != nil {
		hists.Batch.Record(int64(len(batch) / frameSize))
	}

	l.mu.Lock()
	l.spare = batch[:0]
	if synced {
		l.fsyncs++
	}
	l.commits++
	if ioErr != nil {
		if l.err == nil {
			l.err = fmt.Errorf("wal: commit: %w", ioErr)
		}
	} else {
		l.durable = upTo
		l.activeSize += int64(len(batch))
		if l.activeSize >= l.opt.SegmentBytes {
			if err := l.createSegment(l.durable + 1); err != nil {
				if l.err == nil {
					l.err = err
				}
			} else {
				l.rotations++
			}
		}
	}
	l.syncing = false
	l.cond.Broadcast()
}

// SetHists installs the observability recorders sampled by commit leaders.
// Safe to call at any time (the mutex orders it against commit groups); the
// server installs them right after recovery, before serving traffic.
func (l *Log) SetHists(h Hists) {
	l.mu.Lock()
	l.hists = h
	l.mu.Unlock()
}

// Sync forces everything appended so far to disk — a full-log Commit.
func (l *Log) Sync() error {
	l.mu.Lock()
	lsn := l.nextLSN - 1
	l.mu.Unlock()
	return l.Commit(lsn)
}

// TruncateThrough deletes sealed segments that only contain records with
// LSN <= lsn — safe once a snapshot at lsn is durable. The active segment
// is never deleted. Returns the number of segments removed.
func (l *Log) TruncateThrough(lsn uint64) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	removed := 0
	for len(l.segs) > 1 && l.segs[1].first <= lsn+1 {
		seg := l.segs[0]
		if err := l.fs.Remove(filepath.Join(l.dir, seg.name)); err != nil {
			return removed, fmt.Errorf("wal: truncate %s: %w", seg.name, err)
		}
		l.segs = l.segs[1:]
		removed++
		l.truncated++
	}
	if removed > 0 {
		if err := l.fs.SyncDir(l.dir); err != nil {
			return removed, fmt.Errorf("wal: sync dir: %w", err)
		}
	}
	return removed, nil
}

// LastLSN returns the highest LSN assigned so far (0 if none).
func (l *Log) LastLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN - 1
}

// DurableLSN returns the highest LSN covered by a successful fsync.
func (l *Log) DurableLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.durable
}

// Err returns the sticky error, if the log has failed (nil otherwise).
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if errors.Is(l.err, ErrClosed) {
		return nil
	}
	return l.err
}

// Metrics returns a snapshot of the log's counters.
func (l *Log) Metrics() Metrics {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Metrics{
		Appends:   l.appends,
		Commits:   l.commits,
		Fsyncs:    l.fsyncs,
		Rotations: l.rotations,
		Truncated: l.truncated,
		LastLSN:   l.nextLSN - 1,
		Durable:   l.durable,
		Segments:  len(l.segs),
	}
}

// Close flushes and fsyncs any buffered records, then closes the log.
// Append/Commit after Close return ErrClosed.
func (l *Log) Close() error {
	syncErr := l.Sync()
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.syncing {
		l.cond.Wait()
	}
	if l.err == nil {
		l.err = ErrClosed
	}
	var closeErr error
	if l.active != nil {
		closeErr = l.active.Close()
		l.active = nil
	}
	if syncErr != nil && !errors.Is(syncErr, ErrClosed) {
		return syncErr
	}
	return closeErr
}
