package wal

import (
	"errors"
	"sync"
	"time"
)

// ErrInjectedSync is the error FaultFS returns from Sync once armed.
var ErrInjectedSync = errors.New("wal: injected fsync failure")

// FaultFS wraps another FS and injects disk failures at chosen points:
// fsync errors, short writes, and write latency. It also counts syncs and
// writes so tests can assert amortization properties (one fsync per commit
// group) rather than just survival. The zero configuration is transparent
// pass-through; all knobs are safe to flip concurrently with I/O.
type FaultFS struct {
	inner FS

	mu           sync.Mutex
	syncs        int64 // file Syncs observed (successful or failed)
	writes       int64 // Write calls observed
	syncErrAfter int64 // >0: that many Syncs succeed, then all fail
	syncErrArmed bool
	shortWriteAt int64 // >0: the Nth write from now is cut short and errors
	shortArmed   bool
	writeDelay   time.Duration
}

// NewFaultFS wraps inner with a transparent fault injector.
func NewFaultFS(inner FS) *FaultFS { return &FaultFS{inner: inner} }

// SetSyncErrAfter arms the fsync failpoint: the next n Syncs succeed, and
// every Sync after that returns ErrInjectedSync. n = 0 fails immediately.
func (f *FaultFS) SetSyncErrAfter(n int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.syncErrArmed = true
	f.syncErrAfter = n
}

// SetShortWriteAt arms the short-write failpoint: the nth Write call from
// now (1-based) writes only half its payload and returns an error, modeling
// a disk-full or I/O error mid-record.
func (f *FaultFS) SetShortWriteAt(n int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.shortArmed = true
	f.shortWriteAt = f.writes + n
}

// SetWriteDelay makes every Write sleep for d first — a latency spike.
func (f *FaultFS) SetWriteDelay(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.writeDelay = d
}

// Syncs returns the number of file Syncs observed so far.
func (f *FaultFS) Syncs() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.syncs
}

// Writes returns the number of Write calls observed so far.
func (f *FaultFS) Writes() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.writes
}

func (f *FaultFS) Create(name string) (File, error) {
	file, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: file}, nil
}

func (f *FaultFS) Open(name string) (File, error) {
	file, err := f.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: file}, nil
}

func (f *FaultFS) List(dir string) ([]string, error)    { return f.inner.List(dir) }
func (f *FaultFS) Remove(name string) error             { return f.inner.Remove(name) }
func (f *FaultFS) Rename(oldname, newname string) error { return f.inner.Rename(oldname, newname) }
func (f *FaultFS) MkdirAll(dir string) error            { return f.inner.MkdirAll(dir) }
func (f *FaultFS) SyncDir(dir string) error             { return f.inner.SyncDir(dir) }

type faultFile struct {
	fs    *FaultFS
	inner File
}

func (ff *faultFile) Read(p []byte) (int, error)         { return ff.inner.Read(p) }
func (ff *faultFile) Seek(o int64, w int) (int64, error) { return ff.inner.Seek(o, w) }
func (ff *faultFile) Truncate(size int64) error          { return ff.inner.Truncate(size) }
func (ff *faultFile) Close() error                       { return ff.inner.Close() }

func (ff *faultFile) Write(p []byte) (int, error) {
	f := ff.fs
	f.mu.Lock()
	f.writes++
	short := f.shortArmed && f.writes == f.shortWriteAt
	delay := f.writeDelay
	f.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	if short {
		n, err := ff.inner.Write(p[:len(p)/2])
		if err != nil {
			return n, err
		}
		return n, errors.New("wal: injected short write")
	}
	return ff.inner.Write(p)
}

func (ff *faultFile) Sync() error {
	f := ff.fs
	f.mu.Lock()
	f.syncs++
	fail := f.syncErrArmed && f.syncErrAfter <= 0
	if f.syncErrArmed && f.syncErrAfter > 0 {
		f.syncErrAfter--
	}
	f.mu.Unlock()
	if fail {
		return ErrInjectedSync
	}
	return ff.inner.Sync()
}
