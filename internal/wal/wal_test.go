package wal

import (
	"errors"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

type rec struct {
	lsn uint64
	op  Op
	key int64
}

// replayAll opens dir and returns every recovered record.
func replayAll(t *testing.T, dir string, opt Options) (*Log, []rec) {
	t.Helper()
	var got []rec
	l, err := Open(dir, opt, func(lsn uint64, op Op, key int64) error {
		got = append(got, rec{lsn, op, key})
		return nil
	})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	return l, got
}

func TestLogRoundtrip(t *testing.T) {
	fs := NewMemFS()
	l, err := Open("wal", Options{FS: fs}, nil)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	want := []rec{
		{1, OpInsert, 7},
		{2, OpInsert, -3},
		{3, OpDelete, 7},
	}
	for _, r := range want {
		lsn, err := l.Append(r.op, r.key)
		if err != nil {
			t.Fatalf("append: %v", err)
		}
		if lsn != r.lsn {
			t.Fatalf("append lsn = %d, want %d", lsn, r.lsn)
		}
	}
	if err := l.Commit(3); err != nil {
		t.Fatalf("commit: %v", err)
	}
	if got := l.DurableLSN(); got != 3 {
		t.Fatalf("durable = %d, want 3", got)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	l2, got := replayAll(t, "wal", Options{FS: fs})
	defer l2.Close()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if got := l2.LastLSN(); got != 3 {
		t.Fatalf("LastLSN after replay = %d, want 3", got)
	}
}

// TestLogCrashDropsUncommitted pins the core durability contract on the
// MemFS crash model: records committed before the crash survive; records
// merely appended do not — and they were never ackable, because Commit
// never returned nil for them.
func TestLogCrashDropsUncommitted(t *testing.T) {
	fs := NewMemFS()
	l, err := Open("wal", Options{FS: fs}, nil)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for k := int64(0); k < 5; k++ {
		l.Append(OpInsert, k)
	}
	if err := l.Commit(5); err != nil {
		t.Fatalf("commit: %v", err)
	}
	for k := int64(5); k < 9; k++ {
		l.Append(OpInsert, k)
	}
	// Kill -9: the four uncommitted records are lost with the page cache.
	fs.Crash()

	l2, got := replayAll(t, "wal", Options{FS: fs})
	if len(got) != 5 {
		t.Fatalf("replayed %d records, want the 5 committed ones: %v", len(got), got)
	}
	// The log keeps appending after the lost tail; LSNs continue from the
	// durable prefix.
	lsn, err := l2.Append(OpDelete, 0)
	if err != nil {
		t.Fatalf("append after crash: %v", err)
	}
	if lsn != 6 {
		t.Fatalf("post-crash lsn = %d, want 6", lsn)
	}
	if err := l2.Commit(lsn); err != nil {
		t.Fatalf("commit after crash: %v", err)
	}
	l2.Close()

	_, got = replayAll(t, "wal", Options{FS: fs})
	if len(got) != 6 || got[5] != (rec{6, OpDelete, 0}) {
		t.Fatalf("second recovery = %v, want 6 records ending in delete", got)
	}
}

// TestLogTornTailTruncated writes durable garbage after the last valid
// frame — the shape a torn in-flight write leaves — and checks replay
// truncates at the first bad frame and the segment stays appendable.
func TestLogTornTailTruncated(t *testing.T) {
	fs := NewMemFS()
	l, err := Open("wal", Options{FS: fs}, nil)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	l.Append(OpInsert, 1)
	l.Append(OpInsert, 2)
	if err := l.Commit(2); err != nil {
		t.Fatalf("commit: %v", err)
	}
	l.Close()

	// Tear the tail: a partial frame of plausible-looking bytes.
	f, err := fs.Open(filepath.Join("wal", segName(1)))
	if err != nil {
		t.Fatalf("open segment: %v", err)
	}
	f.Seek(0, 2)
	f.Write([]byte{0, 0, 0, 9, 0xde, 0xad})
	f.Sync()
	f.Close()

	l2, got := replayAll(t, "wal", Options{FS: fs})
	if len(got) != 2 {
		t.Fatalf("replayed %d records, want 2: %v", len(got), got)
	}
	// The torn bytes are physically gone; a fresh append lands cleanly.
	if lsn, err := l2.Append(OpInsert, 3); err != nil || lsn != 3 {
		t.Fatalf("append after torn tail: lsn=%d err=%v", lsn, err)
	}
	if err := l2.Commit(3); err != nil {
		t.Fatalf("commit: %v", err)
	}
	l2.Close()
	_, got = replayAll(t, "wal", Options{FS: fs})
	if len(got) != 3 {
		t.Fatalf("recovery after repair = %v, want 3 records", got)
	}
}

// TestLogCorruptMiddleFails pins that a bad frame before the tail — bytes a
// past fsync claimed durable — is hard corruption, not a silent truncation
// that would drop acked records after it.
func TestLogCorruptMiddleFails(t *testing.T) {
	fs := NewMemFS()
	l, err := Open("wal", Options{FS: fs, SegmentBytes: segHeaderSize + 2*frameSize}, nil)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for k := int64(1); k <= 6; k++ {
		l.Append(OpInsert, k)
		if err := l.Commit(uint64(k)); err != nil {
			t.Fatalf("commit %d: %v", k, err)
		}
	}
	if l.Metrics().Segments < 2 {
		t.Fatalf("expected rotation, got %d segment(s)", l.Metrics().Segments)
	}
	l.Close()

	// Flip a byte inside the FIRST segment's first record payload.
	f, err := fs.Open(filepath.Join("wal", segName(1)))
	if err != nil {
		t.Fatalf("open segment: %v", err)
	}
	f.Seek(segHeaderSize+frameHeader, 0)
	f.Write([]byte{0xff})
	f.Sync()
	f.Close()

	_, err = Open("wal", Options{FS: fs}, nil)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open over corrupt middle = %v, want ErrCorrupt", err)
	}
}

func TestLogRotationAndTruncate(t *testing.T) {
	fs := NewMemFS()
	// Two records per segment.
	opt := Options{FS: fs, SegmentBytes: segHeaderSize + 2*frameSize}
	l, err := Open("wal", opt, nil)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for k := int64(1); k <= 10; k++ {
		l.Append(OpInsert, k)
		if err := l.Commit(uint64(k)); err != nil {
			t.Fatalf("commit %d: %v", k, err)
		}
	}
	m := l.Metrics()
	// Five full segments plus the empty active one opened at rotation.
	if m.Segments != 6 {
		t.Fatalf("segments = %d, want 6", m.Segments)
	}
	// A snapshot at LSN 5 makes records 1..5 redundant: segments [1,2] and
	// [3,4] are fully covered and deletable; [5,6] still holds LSN 6.
	n, err := l.TruncateThrough(5)
	if err != nil {
		t.Fatalf("truncate: %v", err)
	}
	if n != 2 {
		t.Fatalf("truncated %d segments, want 2", n)
	}
	l.Close()

	l2, got := replayAll(t, "wal", opt)
	defer l2.Close()
	if len(got) != 6 || got[0].lsn != 5 {
		t.Fatalf("replay after truncation = %v, want LSNs 5..10", got)
	}
}

// TestLogGroupCommitOneFsync is the fsync-amortization pin: a pipelined
// batch of appends followed by one Commit costs exactly one data fsync,
// regardless of batch size.
func TestLogGroupCommitOneFsync(t *testing.T) {
	ffs := NewFaultFS(NewMemFS())
	l, err := Open("wal", Options{FS: ffs}, nil)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer l.Close()

	const batch = 128
	base := ffs.Syncs()
	var last uint64
	for k := int64(0); k < batch; k++ {
		last, err = l.Append(OpInsert, k)
		if err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := l.Commit(last); err != nil {
		t.Fatalf("commit: %v", err)
	}
	if got := ffs.Syncs() - base; got != 1 {
		t.Fatalf("%d-record commit group cost %d fsyncs, want exactly 1", batch, got)
	}
}

// TestLogGroupCommitConcurrent drives many committing goroutines and checks
// the leader/follower protocol amortizes: far fewer fsyncs than commits,
// and every commit that returned nil is durable on replay.
func TestLogGroupCommitConcurrent(t *testing.T) {
	ffs := NewFaultFS(NewMemFS())
	l, err := Open("wal", Options{FS: ffs, FsyncInterval: time.Millisecond}, nil)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	const (
		workers = 8
		perW    = 50
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				lsn, err := l.Append(OpInsert, int64(w*perW+i))
				if err != nil {
					t.Errorf("append: %v", err)
					return
				}
				if err := l.Commit(lsn); err != nil {
					t.Errorf("commit: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	m := l.Metrics()
	if m.Fsyncs >= workers*perW/2 {
		t.Errorf("fsyncs = %d for %d committed appends; group commit is not amortizing", m.Fsyncs, workers*perW)
	}
	l.Close()

	_, got := replayAll(t, "wal", Options{FS: ffs})
	if len(got) != workers*perW {
		t.Fatalf("replayed %d records, want %d", len(got), workers*perW)
	}
}

// TestLogFsyncErrorSticky pins graceful degradation: once an fsync fails,
// the commit errors, no later append is accepted, and Err reports the
// fault — the server's cue to stop acking and drain.
func TestLogFsyncErrorSticky(t *testing.T) {
	ffs := NewFaultFS(NewMemFS())
	l, err := Open("wal", Options{FS: ffs}, nil)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer l.Close()
	lsn, _ := l.Append(OpInsert, 1)
	if err := l.Commit(lsn); err != nil {
		t.Fatalf("healthy commit: %v", err)
	}

	ffs.SetSyncErrAfter(0)
	lsn, err = l.Append(OpInsert, 2)
	if err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := l.Commit(lsn); !errors.Is(err, ErrInjectedSync) {
		t.Fatalf("commit under fsync failure = %v, want injected error", err)
	}
	if l.Err() == nil {
		t.Fatal("Err() = nil after fsync failure")
	}
	if _, err := l.Append(OpInsert, 3); err == nil {
		t.Fatal("append accepted after log failure")
	}
	// A commit for an already-durable LSN is still a valid ack.
	if err := l.Commit(1); err != nil {
		t.Fatalf("commit of durable prefix after failure = %v, want nil", err)
	}
}

// TestLogShortWriteSticky pins the same degradation for a write error
// mid-record: the group fails, nothing past the durable prefix is ackable.
func TestLogShortWriteSticky(t *testing.T) {
	mem := NewMemFS()
	ffs := NewFaultFS(mem)
	l, err := Open("wal", Options{FS: ffs}, nil)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer l.Close()
	ffs.SetShortWriteAt(1)
	lsn, _ := l.Append(OpInsert, 42)
	if err := l.Commit(lsn); err == nil {
		t.Fatal("commit succeeded across a short write")
	}
	if l.Err() == nil {
		t.Fatal("Err() = nil after short write")
	}
	// Recovery over the half-written file sees a torn tail and zero records.
	_, got := replayAll(t, "wal", Options{FS: mem})
	if len(got) != 0 {
		t.Fatalf("replayed %v from a short write, want nothing", got)
	}
}

// TestAppendAllocFree pins the hot half of the logging path: encoding a
// record into the group buffer allocates nothing in steady state.
func TestAppendAllocFree(t *testing.T) {
	// Real files: OS writes and fsyncs allocate nothing in userspace, so
	// the measurement isolates the log's own encode-and-commit path.
	l, err := Open(t.TempDir(), Options{}, nil)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer l.Close()
	// Warm: grow the batch buffer to steady-state capacity.
	for k := int64(0); k < 256; k++ {
		l.Append(OpInsert, k)
	}
	l.Sync()
	var k int64
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 128; i++ {
			l.Append(OpInsert, k)
			k++
		}
		l.Sync()
	})
	if perOp := allocs / 128; perOp > 0.01 {
		t.Errorf("Append+group commit allocates %.4f allocs/op, want 0", perOp)
	}
}

// TestAppendBatch pins the batched append contract: one call assigns
// consecutive LSNs (returning the last), interleaves correctly with
// single-record appends, replays identically to the per-record path, and an
// empty batch is a free no-op that assigns nothing.
func TestAppendBatch(t *testing.T) {
	fs := NewMemFS()
	l, err := Open("wal", Options{FS: fs}, nil)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if lsn, err := l.AppendBatch(nil); err != nil || lsn != 0 {
		t.Fatalf("empty batch: lsn %d, err %v; want 0, nil", lsn, err)
	}
	last, err := l.AppendBatch([]Record{
		{Op: OpInsert, Key: 7}, {Op: OpInsert, Key: -3}, {Op: OpDelete, Key: 7},
	})
	if err != nil {
		t.Fatalf("batch 1: %v", err)
	}
	if last != 3 {
		t.Fatalf("batch 1 last lsn = %d, want 3", last)
	}
	if lsn, err := l.Append(OpInsert, 99); err != nil || lsn != 4 {
		t.Fatalf("single append after batch: lsn %d, err %v; want 4", lsn, err)
	}
	last, err = l.AppendBatch([]Record{{Op: OpDelete, Key: 99}, {Op: OpInsert, Key: 5}})
	if err != nil {
		t.Fatalf("batch 2: %v", err)
	}
	if last != 6 {
		t.Fatalf("batch 2 last lsn = %d, want 6", last)
	}
	if err := l.Commit(last); err != nil {
		t.Fatalf("commit: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	want := []rec{
		{1, OpInsert, 7}, {2, OpInsert, -3}, {3, OpDelete, 7},
		{4, OpInsert, 99}, {5, OpDelete, 99}, {6, OpInsert, 5},
	}
	l2, got := replayAll(t, "wal", Options{FS: fs})
	defer l2.Close()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestAppendBatchAllocFree pins that the batched append reuses the log's
// encode buffer in steady state: amortized zero heap allocations per batch.
func TestAppendBatchAllocFree(t *testing.T) {
	// Real files, like TestAppendAllocFree: OS writes allocate nothing in
	// userspace, so the measurement isolates the encode-and-commit path
	// (MemFS buffer growth would show up as spurious allocations).
	l, err := Open(t.TempDir(), Options{}, nil)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer l.Close()
	recs := make([]Record, 64)
	for i := range recs {
		recs[i] = Record{Op: OpInsert, Key: int64(i)}
	}
	commit := func() {
		lsn, err := l.AppendBatch(recs)
		if err != nil {
			t.Fatalf("append batch: %v", err)
		}
		if err := l.Commit(lsn); err != nil {
			t.Fatalf("commit: %v", err)
		}
	}
	for i := 0; i < 10; i++ {
		commit() // warm the encode buffer past the batch size
	}
	allocs := testing.AllocsPerRun(100, commit)
	t.Logf("%.3f allocs per %d-record batch", allocs, len(recs))
	if allocs > 1 {
		t.Errorf("AppendBatch+Commit allocates %.3f allocs per batch, want <= 1", allocs)
	}
}
