package wal

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// FS is the file-system surface the durability layer runs on. Production
// code uses the OS implementation (the package-level OS variable); tests use
// MemFS for deterministic crash simulation and FaultFS to inject short
// writes, fsync errors and latency. Keeping the surface this small is what
// makes every failure mode injectable: the WAL and the snapshot writer touch
// disk through nothing else.
type FS interface {
	// Create opens name for writing, truncating any existing file.
	Create(name string) (File, error)
	// Open opens an existing file for reading and writing (the WAL reopens
	// its tail segment read-write so replay can truncate a torn tail in
	// place and keep appending after it).
	Open(name string) (File, error)
	// List returns the names (not paths) of the entries of dir, sorted.
	List(dir string) ([]string, error)
	// Remove deletes a file.
	Remove(name string) error
	// Rename atomically replaces newname with oldname's file.
	Rename(oldname, newname string) error
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error
	// SyncDir makes directory-level operations (create, rename, remove)
	// durable where the platform requires it.
	SyncDir(dir string) error
}

// File is one open file. The WAL uses sequential reads, appending writes,
// Truncate for torn tails, and Sync as the durability point.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	io.Closer
	// Sync flushes the file's data to stable storage. Everything written
	// before a successful Sync survives a crash; bytes written after the
	// last Sync may be lost or torn.
	Sync() error
	// Truncate cuts the file to size bytes. It does not move the offset.
	Truncate(size int64) error
}

// OS is the real file system.
var OS FS = osFS{}

type osFS struct{}

func (osFS) Create(name string) (File, error) {
	return os.OpenFile(name, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
}

func (osFS) Open(name string) (File, error) {
	return os.OpenFile(name, os.O_RDWR, 0o644)
}

func (osFS) List(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

func (osFS) Remove(name string) error             { return os.Remove(name) }
func (osFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }
func (osFS) MkdirAll(dir string) error            { return os.MkdirAll(dir, 0o755) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// MemFS is an in-memory FS with explicit durability semantics: each file
// tracks how much of its content has been Synced, and Crash drops every
// unsynced suffix — the exact torn-tail behavior a kill -9 exposes on a real
// disk. Tests build a log over a MemFS, Crash it mid-run, and replay what a
// real recovery would see, deterministically and without touching disk.
//
// MemFS is safe for concurrent use. Directory-level operations (Create,
// Rename, Remove) are treated as immediately durable; the OS implementation
// pairs them with SyncDir instead.
type MemFS struct {
	mu    sync.Mutex
	files map[string]*memFile
}

type memFile struct {
	mu      sync.Mutex
	data    []byte
	durable int // bytes guaranteed to survive Crash
}

// NewMemFS returns an empty in-memory file system.
func NewMemFS() *MemFS {
	return &MemFS{files: make(map[string]*memFile)}
}

// Crash simulates a machine crash: every file loses the bytes written since
// its last Sync. Open handles keep working (the process "restarted").
func (m *MemFS) Crash() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, f := range m.files {
		f.mu.Lock()
		f.data = f.data[:f.durable]
		f.mu.Unlock()
	}
}

func (m *MemFS) Create(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f := &memFile{}
	m.files[filepath.Clean(name)] = f
	return &memHandle{f: f}, nil
}

func (m *MemFS) Open(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[filepath.Clean(name)]
	if !ok {
		return nil, &os.PathError{Op: "open", Path: name, Err: os.ErrNotExist}
	}
	return &memHandle{f: f}, nil
}

func (m *MemFS) List(dir string) ([]string, error) {
	dir = filepath.Clean(dir)
	m.mu.Lock()
	defer m.mu.Unlock()
	var names []string
	for path := range m.files {
		if filepath.Dir(path) == dir {
			names = append(names, filepath.Base(path))
		}
	}
	sort.Strings(names)
	return names, nil
}

func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = filepath.Clean(name)
	if _, ok := m.files[name]; !ok {
		return &os.PathError{Op: "remove", Path: name, Err: os.ErrNotExist}
	}
	delete(m.files, name)
	return nil
}

func (m *MemFS) Rename(oldname, newname string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	oldname, newname = filepath.Clean(oldname), filepath.Clean(newname)
	f, ok := m.files[oldname]
	if !ok {
		return &os.PathError{Op: "rename", Path: oldname, Err: os.ErrNotExist}
	}
	delete(m.files, oldname)
	m.files[newname] = f
	return nil
}

func (m *MemFS) MkdirAll(string) error { return nil }
func (m *MemFS) SyncDir(string) error  { return nil }

// memHandle is one open handle onto a memFile, with its own offset.
type memHandle struct {
	f      *memFile
	pos    int64
	closed bool
}

func (h *memHandle) Read(p []byte) (int, error) {
	h.f.mu.Lock()
	defer h.f.mu.Unlock()
	if h.pos >= int64(len(h.f.data)) {
		return 0, io.EOF
	}
	n := copy(p, h.f.data[h.pos:])
	h.pos += int64(n)
	return n, nil
}

func (h *memHandle) Write(p []byte) (int, error) {
	if h.closed {
		return 0, fmt.Errorf("memfs: write on closed file")
	}
	h.f.mu.Lock()
	defer h.f.mu.Unlock()
	end := h.pos + int64(len(p))
	if end > int64(len(h.f.data)) {
		grown := make([]byte, end)
		copy(grown, h.f.data)
		h.f.data = grown
	}
	copy(h.f.data[h.pos:end], p)
	h.pos = end
	return len(p), nil
}

func (h *memHandle) Seek(offset int64, whence int) (int64, error) {
	h.f.mu.Lock()
	defer h.f.mu.Unlock()
	switch whence {
	case io.SeekStart:
		h.pos = offset
	case io.SeekCurrent:
		h.pos += offset
	case io.SeekEnd:
		h.pos = int64(len(h.f.data)) + offset
	default:
		return 0, fmt.Errorf("memfs: bad whence %d", whence)
	}
	if h.pos < 0 {
		return 0, fmt.Errorf("memfs: negative offset")
	}
	return h.pos, nil
}

func (h *memHandle) Sync() error {
	h.f.mu.Lock()
	defer h.f.mu.Unlock()
	h.f.durable = len(h.f.data)
	return nil
}

func (h *memHandle) Truncate(size int64) error {
	h.f.mu.Lock()
	defer h.f.mu.Unlock()
	if size < 0 || size > int64(len(h.f.data)) {
		if size < 0 {
			return fmt.Errorf("memfs: negative truncate size")
		}
		return nil // growing truncate not needed by the WAL
	}
	h.f.data = h.f.data[:size]
	if h.f.durable > int(size) {
		h.f.durable = int(size)
	}
	return nil
}

func (h *memHandle) Close() error {
	h.closed = true
	return nil
}
