package workload_test

import (
	"testing"

	"pragmaprim/internal/workload"
)

func TestMixValidate(t *testing.T) {
	cases := []struct {
		mix workload.Mix
		ok  bool
	}{
		{workload.Mix{GetPct: 90, InsertPct: 5, DeletePct: 5}, true},
		{workload.Mix{GetPct: 100}, true},
		{workload.Mix{GetPct: 50, InsertPct: 50, DeletePct: 50}, false},
		{workload.Mix{GetPct: -10, InsertPct: 60, DeletePct: 50}, false},
		{workload.Mix{}, false},
	}
	for _, c := range cases {
		if err := c.mix.Validate(); (err == nil) != c.ok {
			t.Errorf("Validate(%v) err=%v, want ok=%v", c.mix, err, c.ok)
		}
	}
	if got := workload.Balanced.String(); got != "50/25/25" {
		t.Errorf("String = %q", got)
	}
}

func TestConfigValidate(t *testing.T) {
	good := workload.Config{KeyRange: 100, Dist: workload.Uniform, Mix: workload.Balanced}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := []workload.Config{
		{KeyRange: 0, Dist: workload.Uniform, Mix: workload.Balanced},
		{KeyRange: 10, Dist: "nope", Mix: workload.Balanced},
		{KeyRange: 10, Dist: workload.Zipf, ZipfS: 0.5, Mix: workload.Balanced},
		{KeyRange: 10, Dist: workload.Uniform, Mix: workload.Mix{GetPct: 99}},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestKeyGenRanges(t *testing.T) {
	for _, dist := range []workload.Distribution{workload.Uniform, workload.Zipf, workload.Sequential} {
		t.Run(string(dist), func(t *testing.T) {
			c := workload.Config{KeyRange: 64, Dist: dist, Mix: workload.Balanced}
			g := c.NewKeyGen(1)
			seen := make(map[int]bool)
			for i := 0; i < 10000; i++ {
				k := g.Next()
				if k < 0 || k >= 64 {
					t.Fatalf("key %d out of range", k)
				}
				seen[k] = true
			}
			if len(seen) < 8 {
				t.Errorf("only %d distinct keys in 10000 draws", len(seen))
			}
		})
	}
}

func TestKeyGenDeterministicPerSeed(t *testing.T) {
	c := workload.Config{KeyRange: 100, Dist: workload.Uniform, Mix: workload.Balanced}
	a, b := c.NewKeyGen(7), c.NewKeyGen(7)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestSequentialCycles(t *testing.T) {
	c := workload.Config{KeyRange: 5, Dist: workload.Sequential, Mix: workload.Balanced}
	g := c.NewKeyGen(0)
	want := []int{0, 1, 2, 3, 4, 0, 1}
	for i, w := range want {
		if got := g.Next(); got != w {
			t.Fatalf("draw %d = %d, want %d", i, got, w)
		}
	}
}

func TestZipfIsSkewed(t *testing.T) {
	c := workload.Config{KeyRange: 1000, Dist: workload.Zipf, Mix: workload.Balanced}
	g := c.NewKeyGen(3)
	const draws = 20000
	low := 0
	for i := 0; i < draws; i++ {
		if g.Next() < 10 {
			low++
		}
	}
	// With skew 1.5 the 10 hottest of 1000 keys dominate; uniform would give
	// ~1%. Use a loose threshold to stay robust.
	if float64(low)/draws < 0.30 {
		t.Errorf("zipf: hottest 1%% of keys got only %.1f%% of draws",
			100*float64(low)/draws)
	}
}

func TestOpGenHonorsMix(t *testing.T) {
	c := workload.Config{KeyRange: 10, Dist: workload.Uniform,
		Mix: workload.Mix{GetPct: 70, InsertPct: 20, DeletePct: 10}}
	g := c.NewOpGen(11)
	const draws = 50000
	var counts [4]int
	for i := 0; i < draws; i++ {
		counts[g.Next()]++
	}
	within := func(got int, pct float64) bool {
		f := float64(got) / draws * 100
		return f > pct-3 && f < pct+3
	}
	if !within(counts[workload.OpGet], 70) {
		t.Errorf("gets = %d of %d", counts[workload.OpGet], draws)
	}
	if !within(counts[workload.OpInsert], 20) {
		t.Errorf("inserts = %d of %d", counts[workload.OpInsert], draws)
	}
	if !within(counts[workload.OpDelete], 10) {
		t.Errorf("deletes = %d of %d", counts[workload.OpDelete], draws)
	}
}

func TestOpGenPureMixes(t *testing.T) {
	c := workload.Config{KeyRange: 10, Dist: workload.Uniform, Mix: workload.Mix{GetPct: 100}}
	g := c.NewOpGen(5)
	for i := 0; i < 1000; i++ {
		if g.Next() != workload.OpGet {
			t.Fatal("non-get drawn from a 100% get mix")
		}
	}
}
