// Package workload generates the keys and operation mixes the experiment
// harness drives the data structures with: uniform and Zipfian key
// distributions over a configurable key range, and percentage-based
// get/insert/delete mixes, the standard parameters of the search-structure
// benchmarks the paper's follow-on evaluation uses.
package workload

import (
	"fmt"
	"math/rand"
)

// KeyGen produces keys. Implementations are not safe for concurrent use;
// give each worker its own generator (see Config.NewKeyGen).
type KeyGen interface {
	// Next returns the next key.
	Next() int
}

// uniformGen draws keys uniformly from [0, n).
type uniformGen struct {
	rng *rand.Rand
	n   int
}

func (g *uniformGen) Next() int { return g.rng.Intn(g.n) }

// zipfGen draws keys Zipf-distributed over [0, n): a small set of hot keys
// receives most of the traffic, the classic skewed-contention workload.
type zipfGen struct {
	z *rand.Zipf
}

func (g *zipfGen) Next() int { return int(g.z.Uint64()) }

// seqGen cycles 0,1,...,n-1,0,... — a worst-case-ordering insert pattern.
type seqGen struct {
	n, i int
}

func (g *seqGen) Next() int {
	k := g.i
	g.i++
	if g.i == g.n {
		g.i = 0
	}
	return k
}

// Distribution names a key distribution.
type Distribution string

// Supported key distributions.
const (
	Uniform    Distribution = "uniform"
	Zipf       Distribution = "zipf"
	Sequential Distribution = "sequential"
)

// Mix is an operation mix in percent; the three fields must sum to 100.
type Mix struct {
	GetPct    int
	InsertPct int
	DeletePct int
}

// Validate checks the mix sums to 100 with no negative entries.
func (m Mix) Validate() error {
	if m.GetPct < 0 || m.InsertPct < 0 || m.DeletePct < 0 {
		return fmt.Errorf("workload: negative percentage in mix %+v", m)
	}
	if m.GetPct+m.InsertPct+m.DeletePct != 100 {
		return fmt.Errorf("workload: mix %+v does not sum to 100", m)
	}
	return nil
}

// String renders the mix as "g/i/d".
func (m Mix) String() string {
	return fmt.Sprintf("%d/%d/%d", m.GetPct, m.InsertPct, m.DeletePct)
}

// Common mixes used across the experiments.
var (
	// ReadMostly is the classic 90% search mix.
	ReadMostly = Mix{GetPct: 90, InsertPct: 5, DeletePct: 5}
	// Balanced splits evenly between searches and updates.
	Balanced = Mix{GetPct: 50, InsertPct: 25, DeletePct: 25}
	// UpdateHeavy is all updates, the paper's worst case for helping.
	UpdateHeavy = Mix{GetPct: 0, InsertPct: 50, DeletePct: 50}
)

// OpKind is one of the three multiset/map operations.
type OpKind int

// Operation kinds.
const (
	OpGet OpKind = iota + 1
	OpInsert
	OpDelete
)

// Config describes a workload: key space, distribution, and op mix.
type Config struct {
	KeyRange int          // keys drawn from [0, KeyRange)
	Dist     Distribution // key distribution
	ZipfS    float64      // Zipf skew parameter (>1); 0 means the 1.5 default
	Mix      Mix
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.KeyRange <= 0 {
		return fmt.Errorf("workload: non-positive key range %d", c.KeyRange)
	}
	switch c.Dist {
	case Uniform, Zipf, Sequential:
	default:
		return fmt.Errorf("workload: unknown distribution %q", c.Dist)
	}
	if c.ZipfS != 0 && c.ZipfS <= 1 {
		return fmt.Errorf("workload: zipf skew must exceed 1, got %v", c.ZipfS)
	}
	return c.Mix.Validate()
}

// NewKeyGen builds a key generator for one worker, seeded deterministically.
func (c Config) NewKeyGen(seed int64) KeyGen {
	rng := rand.New(rand.NewSource(seed))
	switch c.Dist {
	case Zipf:
		s := c.ZipfS
		if s == 0 {
			s = 1.5
		}
		return &zipfGen{z: rand.NewZipf(rng, s, 1, uint64(c.KeyRange-1))}
	case Sequential:
		return &seqGen{n: c.KeyRange, i: int(uint64(seed) % uint64(c.KeyRange))}
	default:
		return &uniformGen{rng: rng, n: c.KeyRange}
	}
}

// OpGen draws operations according to a mix. Not safe for concurrent use.
type OpGen struct {
	rng *rand.Rand
	mix Mix
}

// NewOpGen builds an operation generator for one worker.
func (c Config) NewOpGen(seed int64) *OpGen {
	return &OpGen{rng: rand.New(rand.NewSource(seed)), mix: c.Mix}
}

// Next returns the next operation kind.
func (g *OpGen) Next() OpKind {
	r := g.rng.Intn(100)
	switch {
	case r < g.mix.GetPct:
		return OpGet
	case r < g.mix.GetPct+g.mix.InsertPct:
		return OpInsert
	default:
		return OpDelete
	}
}
