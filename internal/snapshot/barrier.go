package snapshot

import (
	"fmt"
	"sync"

	"pragmaprim/internal/container"
	"pragmaprim/internal/shard"
	"pragmaprim/internal/wal"
)

// Barrier coordinates writers with the snapshotter at shard granularity.
// Every durable write holds its key's read lock across the apply+append
// pair, making the pair atomic with respect to Take, which locks one shard
// at a time. Writers to different shards never contend with each other
// (separate RWMutexes), and while Take scans shard i, writes to every other
// shard proceed — the stall is one shard wide and scan-long.
type Barrier struct {
	mus []sync.RWMutex
}

// NewBarrier returns a barrier over n partitions; n must be the container's
// shard count (a power of two), or 1 for an unsharded container.
func NewBarrier(n int) *Barrier {
	if n <= 0 || n&(n-1) != 0 {
		panic(fmt.Sprintf("snapshot: barrier over %d partitions, want a positive power of two", n))
	}
	return &Barrier{mus: make([]sync.RWMutex, n)}
}

// Shards returns the partition count.
func (b *Barrier) Shards() int { return len(b.mus) }

// RLockKey enters the write-side critical section for key: the caller may
// apply the mutation and append its log record, then must RUnlockKey.
func (b *Barrier) RLockKey(key int64) {
	b.mus[shard.Index(key, len(b.mus))].RLock()
}

// RUnlockKey leaves the write-side critical section for key.
func (b *Barrier) RUnlockKey(key int64) {
	b.mus[shard.Index(key, len(b.mus))].RUnlock()
}

// Partition returns the barrier partition owning key, for callers that
// batch writes: hash once, dedupe against partitions already held, and use
// the partition-indexed lock methods below. The batched write path holds
// every touched partition's read lock from the first apply to the batch's
// single log append, which keeps the apply+append pair atomic with respect
// to Take exactly as the per-key path does. Holding several read locks at
// once cannot deadlock against Take: Take holds only one write lock at a
// time, so at most one partition has a pending writer, read locks on every
// other partition are granted immediately, and the read-side critical
// sections never block on anything else.
func (b *Barrier) Partition(key int64) int { return shard.Index(key, len(b.mus)) }

// RLockPart enters the write-side critical section for one partition.
func (b *Barrier) RLockPart(i int) { b.mus[i].RLock() }

// RUnlockPart leaves the write-side critical section for one partition.
func (b *Barrier) RUnlockPart(i int) { b.mus[i].RUnlock() }

// Take captures a consistent snapshot of c against log. For a *shard.Sharded
// whose count matches the barrier it locks, bounds and scans shard by
// shard; otherwise the barrier must be 1-wide and the whole container is
// scanned under the single lock.
func Take(c container.Container, b *Barrier, log *wal.Log) (*Snapshot, error) {
	n := b.Shards()
	s := &Snapshot{
		ShardCount: n,
		Boundaries: make([]uint64, n),
		Counts:     make(map[int64]int64),
	}
	if sh, ok := c.(*shard.Sharded); ok && sh.ShardCount() == n {
		for i := 0; i < n; i++ {
			b.mus[i].Lock()
			// Every record for this shard is appended under RLockKey, so
			// with the write lock held the shard has no in-flight appends:
			// LastLSN cleanly separates scanned state from future records.
			s.Boundaries[i] = log.LastLSN()
			sh.Shard(i).Range(func(k, cnt int) bool {
				s.Counts[int64(k)] = int64(cnt)
				return true
			})
			b.mus[i].Unlock()
		}
		return s, nil
	}
	if n != 1 {
		return nil, fmt.Errorf("snapshot: %d-wide barrier over a container with a different partitioning", n)
	}
	b.mus[0].Lock()
	s.Boundaries[0] = log.LastLSN()
	c.Range(func(k, cnt int) bool {
		s.Counts[int64(k)] = int64(cnt)
		return true
	})
	b.mus[0].Unlock()
	return s, nil
}
