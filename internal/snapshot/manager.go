package snapshot

import (
	"sync"
	"time"

	"pragmaprim/internal/container"
	"pragmaprim/internal/wal"
)

// Manager takes periodic snapshots and truncates the WAL behind them. A
// snapshot failure is reported but not fatal — the log alone still carries
// full durability; the only cost of a missed snapshot is replay length. The
// manager goes quiet once the log reports a fault (the server is draining;
// scanning a container that can no longer ack writes has no value).
type Manager struct {
	fs    wal.FS
	dir   string
	c     container.Container
	b     *Barrier
	log   *wal.Log
	every time.Duration
	onErr func(error)

	stop chan struct{}
	done chan struct{}

	mu    sync.Mutex
	taken int
	last  string
}

// StartManager begins snapshotting c into dir every interval. onErr, if
// non-nil, receives snapshot failures. Close stops the loop.
func StartManager(c container.Container, b *Barrier, log *wal.Log, fs wal.FS, dir string, every time.Duration, onErr func(error)) *Manager {
	if fs == nil {
		fs = wal.OS
	}
	m := &Manager{
		fs: fs, dir: dir, c: c, b: b, log: log, every: every, onErr: onErr,
		stop: make(chan struct{}), done: make(chan struct{}),
	}
	go m.loop()
	return m
}

func (m *Manager) loop() {
	defer close(m.done)
	t := time.NewTicker(m.every)
	defer t.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-t.C:
			if m.log.Err() != nil {
				return
			}
			m.Snapshot()
		}
	}
}

// Snapshot takes one snapshot now: capture, save, truncate the log behind
// it. Safe to call concurrently with the periodic loop.
func (m *Manager) Snapshot() {
	s, err := Take(m.c, m.b, m.log)
	if err == nil {
		var name string
		name, err = Save(m.fs, m.dir, s)
		if err == nil {
			m.mu.Lock()
			m.taken++
			m.last = name
			m.mu.Unlock()
			_, err = m.log.TruncateThrough(s.TruncLSN())
		}
	}
	if err != nil && m.onErr != nil {
		m.onErr(err)
	}
}

// Stats returns how many snapshots were taken and the newest file name.
func (m *Manager) Stats() (taken int, last string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.taken, m.last
}

// Close stops the periodic loop and waits for any in-flight snapshot.
func (m *Manager) Close() {
	close(m.stop)
	<-m.done
}
