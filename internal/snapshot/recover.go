package snapshot

import (
	"fmt"

	"pragmaprim/internal/container"
	"pragmaprim/internal/shard"
	"pragmaprim/internal/wal"
)

// RecoverStats reports what a recovery did, for the startup banner.
type RecoverStats struct {
	SnapshotFile string // "" when recovery started from an empty container
	SnapshotKeys int    // keys loaded from the snapshot
	Replayed     int    // log records applied past the snapshot boundaries
	Skipped      int    // log records the snapshot already covered
	Installed    int    // occurrences inserted into the container
	LastLSN      uint64 // log position after recovery
}

// Recover rebuilds c from dir — newest valid snapshot first, then the WAL
// records past each shard's boundary — and returns the opened log
// positioned to append. c must be empty. Only applied mutations were ever
// logged, so recovery accumulates commutative per-key deltas and installs
// net counts; inter-key ordering, which per-shard appends do not preserve,
// is irrelevant to the result. A negative final count means the snapshot
// and log disagree — corruption, not a state to serve from.
func Recover(c container.Container, dir string, opt wal.Options) (*wal.Log, RecoverStats, error) {
	fs := opt.FS
	if fs == nil {
		fs = wal.OS
	}
	var stats RecoverStats
	if err := fs.MkdirAll(dir); err != nil {
		return nil, stats, fmt.Errorf("snapshot: mkdir: %w", err)
	}

	counts := make(map[int64]int64)
	snap, name, err := LoadLatest(fs, dir)
	switch {
	case err == nil:
		stats.SnapshotFile = name
		stats.SnapshotKeys = len(snap.Counts)
		for k, n := range snap.Counts {
			counts[k] = n
		}
	case err == ErrNoSnapshot:
		snap = nil
	default:
		return nil, stats, err
	}

	log, err := wal.Open(dir, opt, func(lsn uint64, op wal.Op, key int64) error {
		if snap != nil && lsn <= snap.Boundaries[shard.Index(key, snap.ShardCount)] {
			stats.Skipped++
			return nil
		}
		stats.Replayed++
		if op == wal.OpInsert {
			counts[key]++
		} else {
			counts[key]--
		}
		return nil
	})
	if err != nil {
		return nil, stats, err
	}
	stats.LastLSN = log.LastLSN()

	sess := c.NewSession()
	defer sess.Close()
	for k, n := range counts {
		if n < 0 {
			log.Close()
			return nil, stats, fmt.Errorf("snapshot: recovery computed count %d for key %d: snapshot and log disagree", n, k)
		}
		for i := int64(0); i < n; i++ {
			sess.Insert(int(k))
			stats.Installed++
		}
	}
	return log, stats, nil
}
