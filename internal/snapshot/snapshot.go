// Package snapshot gives the durability layer its second half: consistent
// point-in-time captures of a (possibly sharded) container that bound WAL
// replay length and let old log segments be deleted.
//
// Consistency comes from composing two mechanisms. A Barrier of per-shard
// RWMutexes makes each write's apply+append pair atomic with respect to the
// scan: writers hold the shard's read lock for the pair, the snapshotter
// takes the write lock shard by shard, records the log's last LSN as that
// shard's boundary, and scans the quiescent shard. The scan itself runs
// through Container.Range, which on the LLX/SCX structures walks under the
// epoch protocol from internal/reclaim — so while shard i is being scanned,
// every other shard keeps running full speed and may reclaim nodes, and the
// scanner's guard keeps its traversal safe.
//
// Because a shard's boundary is the last LSN assigned before its scan, a
// logged record is covered by the snapshot iff lsn <= boundary[shard(key)].
// Replay filters per key with the shard count recorded in the snapshot
// (shard.Index), so recovery is correct even if the server restarts with a
// different shard count. Records are only ever applied mutations, so replay
// is a commutative count accumulation — idempotence and ordering across
// shards are non-issues by construction.
package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"path/filepath"
	"strconv"
	"strings"

	"pragmaprim/internal/wal"
)

const (
	magic      = "PPSNAP1\x00"
	filePrefix = "snap-"
	fileSuffix = ".snap"
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrNoSnapshot is returned by LoadLatest when dir holds no valid snapshot.
var ErrNoSnapshot = errors.New("snapshot: none found")

// Snapshot is one point-in-time capture: per-key counts plus the per-shard
// boundary LSNs that position it against the log.
type Snapshot struct {
	// ShardCount is the partitioning the boundaries were recorded under.
	ShardCount int
	// Boundaries[i] is the last LSN assigned before shard i was scanned:
	// records with lsn <= Boundaries[shard.Index(key, ShardCount)] are
	// reflected in Counts, later records are not.
	Boundaries []uint64
	// Counts maps each present key to its occurrence count.
	Counts map[int64]int64
}

// TruncLSN returns the LSN through which the log is redundant given this
// snapshot: the minimum boundary. Segments containing only records at or
// below it can be deleted.
func (s *Snapshot) TruncLSN() uint64 {
	min := s.Boundaries[0]
	for _, b := range s.Boundaries[1:] {
		if b < min {
			min = b
		}
	}
	return min
}

func fileName(lsn uint64) string {
	return fmt.Sprintf("%s%020d%s", filePrefix, lsn, fileSuffix)
}

func parseFileName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, filePrefix) || !strings.HasSuffix(name, fileSuffix) {
		return 0, false
	}
	n, err := strconv.ParseUint(name[len(filePrefix):len(name)-len(fileSuffix)], 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// encode renders the snapshot: magic, shard count, boundaries, entry count,
// (key, count) pairs, and a trailing CRC32C over everything after the magic.
func (s *Snapshot) encode() []byte {
	size := len(magic) + 4 + 8*len(s.Boundaries) + 8 + 16*len(s.Counts) + 4
	buf := make([]byte, 0, size)
	buf = append(buf, magic...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(s.ShardCount))
	for _, b := range s.Boundaries {
		buf = binary.BigEndian.AppendUint64(buf, b)
	}
	buf = binary.BigEndian.AppendUint64(buf, uint64(len(s.Counts)))
	for k, n := range s.Counts {
		buf = binary.BigEndian.AppendUint64(buf, uint64(k))
		buf = binary.BigEndian.AppendUint64(buf, uint64(n))
	}
	return binary.BigEndian.AppendUint32(buf, crc32.Checksum(buf[len(magic):], crcTable))
}

func decode(data []byte) (*Snapshot, error) {
	if len(data) < len(magic)+4+4 || string(data[:len(magic)]) != magic {
		return nil, errors.New("snapshot: bad header")
	}
	body, tail := data[len(magic):len(data)-4], data[len(data)-4:]
	if crc32.Checksum(body, crcTable) != binary.BigEndian.Uint32(tail) {
		return nil, errors.New("snapshot: checksum mismatch")
	}
	s := &Snapshot{ShardCount: int(binary.BigEndian.Uint32(body[:4]))}
	if s.ShardCount <= 0 || s.ShardCount&(s.ShardCount-1) != 0 || len(body) < 4+8*s.ShardCount+8 {
		return nil, errors.New("snapshot: bad shard count")
	}
	off := 4
	s.Boundaries = make([]uint64, s.ShardCount)
	for i := range s.Boundaries {
		s.Boundaries[i] = binary.BigEndian.Uint64(body[off:])
		off += 8
	}
	n := binary.BigEndian.Uint64(body[off:])
	off += 8
	if uint64(len(body)-off) != 16*n {
		return nil, errors.New("snapshot: bad entry count")
	}
	s.Counts = make(map[int64]int64, n)
	for i := uint64(0); i < n; i++ {
		k := int64(binary.BigEndian.Uint64(body[off:]))
		c := int64(binary.BigEndian.Uint64(body[off+8:]))
		s.Counts[k] = c
		off += 16
	}
	return s, nil
}

// Save writes the snapshot durably into dir: temp file, fsync, atomic
// rename, directory sync. A crash at any point leaves either the previous
// snapshot set or the previous set plus this complete one — never a partial
// file under the final name.
func Save(fs wal.FS, dir string, s *Snapshot) (string, error) {
	name := fileName(s.TruncLSN())
	tmp := filepath.Join(dir, name+".tmp")
	f, err := fs.Create(tmp)
	if err != nil {
		return "", fmt.Errorf("snapshot: create: %w", err)
	}
	data := s.encode()
	if _, err := f.Write(data); err != nil {
		f.Close()
		return "", fmt.Errorf("snapshot: write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return "", fmt.Errorf("snapshot: sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return "", fmt.Errorf("snapshot: close: %w", err)
	}
	if err := fs.Rename(tmp, filepath.Join(dir, name)); err != nil {
		return "", fmt.Errorf("snapshot: rename: %w", err)
	}
	if err := fs.SyncDir(dir); err != nil {
		return "", fmt.Errorf("snapshot: sync dir: %w", err)
	}
	return name, nil
}

// LoadLatest returns the newest valid snapshot in dir, skipping over any
// that fail validation (a torn rename target, a bitrotted file) in favor of
// older ones. ErrNoSnapshot means recovery starts from an empty container.
func LoadLatest(fs wal.FS, dir string) (*Snapshot, string, error) {
	names, err := fs.List(dir)
	if err != nil {
		return nil, "", fmt.Errorf("snapshot: list: %w", err)
	}
	var candidates []string
	for _, name := range names {
		if _, ok := parseFileName(name); ok {
			candidates = append(candidates, name)
		}
	}
	// fs.List sorts, and zero-padded LSN names sort chronologically.
	for i := len(candidates) - 1; i >= 0; i-- {
		name := candidates[i]
		f, err := fs.Open(filepath.Join(dir, name))
		if err != nil {
			continue
		}
		data, err := io.ReadAll(f)
		f.Close()
		if err != nil {
			continue
		}
		s, err := decode(data)
		if err != nil {
			continue // corrupt: fall back to the previous snapshot
		}
		return s, name, nil
	}
	return nil, "", ErrNoSnapshot
}
