package snapshot

import (
	"math/rand"
	"path/filepath"
	"sync"
	"testing"

	"pragmaprim/internal/container"
	"pragmaprim/internal/multiset"
	"pragmaprim/internal/shard"
	"pragmaprim/internal/wal"
)

func newSharded(n int) *shard.Sharded {
	return shard.New(n, func(int) container.Container {
		return container.Multiset(multiset.New[int]())
	})
}

// durableOp mirrors the server's write path: apply and append atomically
// under the key's barrier read lock, then commit outside it.
func durableOp(t testing.TB, sess container.Session, b *Barrier, l *wal.Log, op wal.Op, key int64) uint64 {
	t.Helper()
	b.RLockKey(key)
	var applied bool
	if op == wal.OpInsert {
		applied = sess.Insert(int(key))
	} else {
		applied = sess.Delete(int(key))
	}
	var lsn uint64
	if applied {
		var err error
		lsn, err = l.Append(op, key)
		if err != nil {
			b.RUnlockKey(key)
			t.Fatalf("append: %v", err)
		}
	}
	b.RUnlockKey(key)
	return lsn
}

func TestSnapshotFileRoundtrip(t *testing.T) {
	fs := wal.NewMemFS()
	want := &Snapshot{
		ShardCount: 4,
		Boundaries: []uint64{9, 12, 7, 11},
		Counts:     map[int64]int64{1: 3, -5: 1, 1 << 40: 2},
	}
	name, err := Save(fs, "dir", want)
	if err != nil {
		t.Fatalf("save: %v", err)
	}
	got, gotName, err := LoadLatest(fs, "dir")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if gotName != name {
		t.Fatalf("loaded %q, want %q", gotName, name)
	}
	if got.ShardCount != want.ShardCount || len(got.Counts) != len(want.Counts) {
		t.Fatalf("roundtrip mismatch: %+v", got)
	}
	for i, b := range want.Boundaries {
		if got.Boundaries[i] != b {
			t.Fatalf("boundary %d = %d, want %d", i, got.Boundaries[i], b)
		}
	}
	for k, n := range want.Counts {
		if got.Counts[k] != n {
			t.Fatalf("count[%d] = %d, want %d", k, got.Counts[k], n)
		}
	}
	if got.TruncLSN() != 7 {
		t.Fatalf("TruncLSN = %d, want 7", got.TruncLSN())
	}
}

// TestSnapshotCorruptFallback pins that a damaged newest snapshot is skipped
// in favor of an older valid one, and that no snapshot at all is a clean
// ErrNoSnapshot.
func TestSnapshotCorruptFallback(t *testing.T) {
	fs := wal.NewMemFS()
	if _, _, err := LoadLatest(fs, "dir"); err != ErrNoSnapshot {
		t.Fatalf("empty dir: %v, want ErrNoSnapshot", err)
	}
	old := &Snapshot{ShardCount: 1, Boundaries: []uint64{5}, Counts: map[int64]int64{1: 1}}
	if _, err := Save(fs, "dir", old); err != nil {
		t.Fatalf("save old: %v", err)
	}
	newer := &Snapshot{ShardCount: 1, Boundaries: []uint64{9}, Counts: map[int64]int64{2: 2}}
	newName, err := Save(fs, "dir", newer)
	if err != nil {
		t.Fatalf("save new: %v", err)
	}
	// Flip one byte in the newer file.
	f, err := fs.Open(filepath.Join("dir", newName))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	f.Seek(10, 0)
	f.Write([]byte{0xff})
	f.Close()

	got, name, err := LoadLatest(fs, "dir")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if name == newName || got.Boundaries[0] != 5 {
		t.Fatalf("loaded %q (boundary %d), want fallback to the older snapshot", name, got.Boundaries[0])
	}
}

// TestRecoverSnapshotPlusTail is the full recovery composition on the MemFS
// crash model: committed ops, a snapshot, more committed ops, uncommitted
// ops, crash. Recovery must equal exactly the committed history, using the
// snapshot for the prefix and the log for the tail — including when the
// snapshot allowed segments to be truncated, and when the restart uses a
// different shard count than the crashed process.
func TestRecoverSnapshotPlusTail(t *testing.T) {
	fs := wal.NewMemFS()
	opt := wal.Options{FS: fs, SegmentBytes: 256}
	c := newSharded(4)
	b := NewBarrier(4)
	l, err := wal.Open("dir", opt, nil)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	sess := c.NewSession()

	// Phase 1: committed and covered by the snapshot.
	for k := int64(0); k < 20; k++ {
		durableOp(t, sess, b, l, wal.OpInsert, k%10) // keys 0..9 get 2 each
	}
	durableOp(t, sess, b, l, wal.OpDelete, 3) // key 3: 1
	if err := l.Commit(l.LastLSN()); err != nil {
		t.Fatalf("commit: %v", err)
	}
	snap, err := Take(c, b, l)
	if err != nil {
		t.Fatalf("take: %v", err)
	}
	if _, err := Save(fs, "dir", snap); err != nil {
		t.Fatalf("save: %v", err)
	}
	if _, err := l.TruncateThrough(snap.TruncLSN()); err != nil {
		t.Fatalf("truncate: %v", err)
	}

	// Phase 2: committed tail past the snapshot.
	durableOp(t, sess, b, l, wal.OpInsert, 100)
	durableOp(t, sess, b, l, wal.OpDelete, 5) // key 5: 1
	if err := l.Commit(l.LastLSN()); err != nil {
		t.Fatalf("commit tail: %v", err)
	}

	// Phase 3: appended but never committed — never ackable, must vanish.
	durableOp(t, sess, b, l, wal.OpInsert, 200)
	durableOp(t, sess, b, l, wal.OpDelete, 0)

	fs.Crash()
	sess.Close()

	// Restart with a DIFFERENT shard count: boundary filtering must use the
	// recorded partitioning, not the new one.
	c2 := newSharded(8)
	l2, stats, err := Recover(c2, "dir", wal.Options{FS: fs})
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	defer l2.Close()
	if stats.SnapshotFile == "" {
		t.Fatal("recovery did not use the snapshot")
	}
	want := map[int]int{100: 1, 3: 1, 5: 1}
	for k := 0; k < 10; k++ {
		if _, ok := want[k]; !ok {
			want[k] = 2
		}
	}
	got := map[int]int{}
	c2.Range(func(k, n int) bool { got[k] = n; return true })
	for k, n := range want {
		if got[k] != n {
			t.Errorf("key %d recovered count %d, want %d", k, got[k], n)
		}
	}
	if len(got) != len(want) {
		t.Errorf("recovered %d keys (%v), want %d", len(got), got, len(want))
	}
	if got, ok := got[200]; ok {
		t.Errorf("uncommitted insert of key 200 survived with count %d", got)
	}
}

// TestSnapshotUnderChurn is the consistency test for the barrier protocol:
// snapshots race full-speed concurrent writers, and recovery from
// snapshot+log must still land exactly on the writers' final applied state.
// A torn scan — a snapshot observing an apply whose log record it then
// double-counts, or missing one it assumed — would show up as a count skew.
func TestSnapshotUnderChurn(t *testing.T) {
	fs := wal.NewMemFS()
	c := newSharded(4)
	b := NewBarrier(4)
	l, err := wal.Open("dir", wal.Options{FS: fs}, nil)
	if err != nil {
		t.Fatalf("open: %v", err)
	}

	const (
		workers = 4
		ops     = 400
		keys    = 32
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := c.NewSession()
			defer sess.Close()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < ops; i++ {
				key := int64(rng.Intn(keys))
				op := wal.OpInsert
				if rng.Intn(2) == 0 {
					op = wal.OpDelete
				}
				durableOp(t, sess, b, l, op, key)
			}
		}(w)
	}
	// Snapshot continuously while the writers churn.
	snapsDone := make(chan struct{})
	go func() {
		defer close(snapsDone)
		for i := 0; i < 20; i++ {
			s, err := Take(c, b, l)
			if err != nil {
				t.Errorf("take: %v", err)
				return
			}
			if _, err := Save(fs, "dir", s); err != nil {
				t.Errorf("save: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	<-snapsDone
	if err := l.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	l.Close()

	want := map[int]int{}
	c.Range(func(k, n int) bool { want[k] = n; return true })

	c2 := newSharded(4)
	l2, _, err := Recover(c2, "dir", wal.Options{FS: fs})
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	defer l2.Close()
	got := map[int]int{}
	c2.Range(func(k, n int) bool { got[k] = n; return true })
	for k := 0; k < keys; k++ {
		if got[k] != want[k] {
			t.Errorf("key %d: recovered %d, live state had %d", k, got[k], want[k])
		}
	}
}
