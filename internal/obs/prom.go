package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"pragmaprim/internal/stats"
)

// This file is the read half of the exposition format: a small parser for
// the subset of the Prometheus text format WriteProm emits (TYPE lines,
// label sets, integer/float/+Inf sample values). It exists so the repo can
// validate its own scrape output without a Prometheus dependency — the
// parser test, the server smoke script (through the loadgen), and the
// loadgen's server-vs-client latency comparison all consume it.

// Sample is one parsed sample line.
type Sample struct {
	Name   string // full sample name, including any _bucket/_sum/_count suffix
	Labels map[string]string
	Value  float64
}

// Family is the samples sharing one metric name, with the TYPE the
// exposition declared ("untyped" when none was).
type Family struct {
	Name    string
	Type    string
	Samples []Sample
}

// ParseProm parses a text exposition into families keyed by name.
// Histogram series samples (name_bucket, name_sum, name_count) attach to
// their declared histogram family. Lines that do not scan — bad label
// syntax, unparsable values — are errors: the scrape output is part of the
// repo's contract and a malformed line means a writer bug.
func ParseProm(r io.Reader) (map[string]*Family, error) {
	fams := make(map[string]*Family)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			// "# TYPE <name> <type>"; other comment forms are ignored.
			if len(fields) == 4 && fields[1] == "TYPE" {
				name, typ := fields[2], fields[3]
				if f, ok := fams[name]; ok {
					if f.Type != "untyped" && f.Type != typ {
						return nil, fmt.Errorf("prom line %d: %s redeclared as %s (was %s)", lineNo, name, typ, f.Type)
					}
					f.Type = typ
				} else {
					fams[name] = &Family{Name: name, Type: typ}
				}
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("prom line %d: %w", lineNo, err)
		}
		fam := fams[familyNameOf(s.Name, fams)]
		if fam == nil {
			fam = &Family{Name: s.Name, Type: "untyped"}
			fams[s.Name] = fam
		}
		fam.Samples = append(fam.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return fams, nil
}

// familyNameOf resolves a sample name to its family: itself, or — for the
// histogram series suffixes — the declared histogram family it belongs to.
func familyNameOf(name string, fams map[string]*Family) string {
	if _, ok := fams[name]; ok {
		return name
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base, ok := strings.CutSuffix(name, suf)
		if !ok {
			continue
		}
		if f, ok := fams[base]; ok && f.Type == "histogram" {
			return base
		}
	}
	return name
}

// parseSample scans one sample line: name[{labels}] value.
func parseSample(line string) (Sample, error) {
	s := Sample{}
	rest := line
	if i := strings.IndexAny(rest, "{ \t"); i < 0 {
		return s, fmt.Errorf("sample %q: no value", line)
	} else {
		s.Name = rest[:i]
		rest = rest[i:]
	}
	if s.Name == "" {
		return s, fmt.Errorf("sample %q: empty name", line)
	}
	if strings.HasPrefix(rest, "{") {
		end := strings.Index(rest, "}")
		if end < 0 {
			return s, fmt.Errorf("sample %q: unterminated label set", line)
		}
		var err error
		if s.Labels, err = parseLabels(rest[1:end]); err != nil {
			return s, fmt.Errorf("sample %q: %w", line, err)
		}
		rest = rest[end+1:]
	}
	rest = strings.TrimSpace(rest)
	// Only the value remains (WriteProm never emits timestamps).
	v, err := parseValue(rest)
	if err != nil {
		return s, fmt.Errorf("sample %q: %w", line, err)
	}
	s.Value = v
	return s, nil
}

// parseLabels scans the inner label string: k="v",k2="v2" with \\ \" \n
// escapes in values.
func parseLabels(in string) (map[string]string, error) {
	labels := make(map[string]string)
	for in != "" {
		eq := strings.Index(in, "=")
		if eq <= 0 {
			return nil, fmt.Errorf("bad label at %q", in)
		}
		key := strings.TrimSpace(in[:eq])
		in = in[eq+1:]
		if !strings.HasPrefix(in, `"`) {
			return nil, fmt.Errorf("label %s: unquoted value", key)
		}
		in = in[1:]
		var val strings.Builder
		for {
			i := strings.IndexAny(in, `\"`)
			if i < 0 {
				return nil, fmt.Errorf("label %s: unterminated value", key)
			}
			val.WriteString(in[:i])
			if in[i] == '"' {
				in = in[i+1:]
				break
			}
			// Escape: need one more byte.
			if i+1 >= len(in) {
				return nil, fmt.Errorf("label %s: dangling escape", key)
			}
			switch in[i+1] {
			case 'n':
				val.WriteByte('\n')
			case '\\', '"':
				val.WriteByte(in[i+1])
			default:
				return nil, fmt.Errorf("label %s: unknown escape \\%c", key, in[i+1])
			}
			in = in[i+2:]
		}
		labels[key] = val.String()
		in = strings.TrimPrefix(strings.TrimSpace(in), ",")
		in = strings.TrimSpace(in)
	}
	return labels, nil
}

// parseValue parses a sample value, accepting the +Inf/-Inf/NaN spellings.
func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// Value returns the value of the family's sample whose labels equal match
// exactly, and whether one exists. For counters/gauges match is usually nil
// (no labels) or the registration labels.
func (f *Family) Value(match map[string]string) (float64, bool) {
	for _, s := range f.Samples {
		if s.Name == f.Name && labelsEqual(s.Labels, match) {
			return s.Value, true
		}
	}
	return 0, false
}

// Hist reconstructs a stats.Histogram from the family's cumulative buckets
// whose labels — ignoring le — equal match. It validates what a histogram
// scrape must satisfy: cumulative counts non-decreasing, a +Inf bucket
// present and consistent with the _count sample. The reconstruction is
// exact when the exposition was written by WriteProm (shared bucket
// geometry); foreign le bounds land in the bucket holding them.
func (f *Family) Hist(match map[string]string) (*stats.Histogram, error) {
	type bkt struct {
		le  float64
		cum int64
	}
	var bkts []bkt
	var count int64
	haveCount := false
	for _, s := range f.Samples {
		switch s.Name {
		case f.Name + "_bucket":
			le, ok := s.Labels["le"]
			if !ok || !labelsEqualIgnoring(s.Labels, match, "le") {
				continue
			}
			lv, err := parseValue(le)
			if err != nil {
				return nil, fmt.Errorf("hist %s: bad le %q", f.Name, le)
			}
			bkts = append(bkts, bkt{le: lv, cum: int64(s.Value)})
		case f.Name + "_count":
			if labelsEqual(s.Labels, match) {
				count, haveCount = int64(s.Value), true
			}
		}
	}
	if len(bkts) == 0 {
		return nil, fmt.Errorf("hist %s: no buckets match %v", f.Name, match)
	}
	sort.Slice(bkts, func(i, j int) bool { return bkts[i].le < bkts[j].le })
	if !math.IsInf(bkts[len(bkts)-1].le, 1) {
		return nil, fmt.Errorf("hist %s: missing +Inf bucket", f.Name)
	}
	if haveCount && bkts[len(bkts)-1].cum != count {
		return nil, fmt.Errorf("hist %s: +Inf bucket %d != count %d", f.Name, bkts[len(bkts)-1].cum, count)
	}
	h := &stats.Histogram{}
	var prev int64
	lastIdx := -1
	for _, b := range bkts {
		if b.cum < prev {
			return nil, fmt.Errorf("hist %s: cumulative count decreases at le=%v", f.Name, b.le)
		}
		c := b.cum - prev
		prev = b.cum
		if c == 0 {
			continue
		}
		idx := stats.Buckets - 1
		if !math.IsInf(b.le, 1) {
			idx = stats.BucketIndex(int64(b.le))
		}
		h.AddBucket(idx, c)
		if idx > lastIdx {
			lastIdx = idx
		}
	}
	if lastIdx >= 0 {
		h.ObserveMax(stats.BucketUpper(lastIdx))
	}
	return h, nil
}

func labelsEqual(a, b map[string]string) bool {
	return labelsEqualIgnoring(a, b, "")
}

// labelsEqualIgnoring compares label maps, treating nil and empty as equal
// and skipping the ignored key on the a side.
func labelsEqualIgnoring(a, b map[string]string, ignore string) bool {
	na := 0
	for k, v := range a {
		if k == ignore {
			continue
		}
		na++
		if bv, ok := b[k]; !ok || bv != v {
			return false
		}
	}
	nb := 0
	for k := range b {
		if k != ignore {
			nb++
		}
	}
	return na == nb
}
