// Package obs is the observability plane: a lock-free metrics registry that
// every layer of the serving stack registers into, plus the slow-op trace
// ring. It exists so the properties the paper's fast paths promise —
// batched amortization, epoch advance progress, group-commit behavior — are
// visible from a live server, not only from benchmark harnesses.
//
// The registry holds three instrument kinds:
//
//   - Counter: a padded atomic the owner adds to. CounterFunc and GaugeFunc
//     are the pull-based variants — a closure sampled at scrape time, so
//     layers that already keep their own counters (server fold counters,
//     wal.Metrics, reclaim.Domain) expose them with zero new hot-path cost.
//   - Histogram: striped atomic bucket arrays sharing stats.Histogram's
//     log-linear geometry. Recording is a few atomic adds on the caller's
//     own stripe (0 allocs, no locks, no false sharing between stripes);
//     scraping folds every stripe into a plain stats.Histogram.
//
// The record/scrape split is the same discipline as the server's per-batch
// counter fold: writers touch only their stripe, readers pay the whole cost
// of aggregation, and the two never exclude each other — a scrape underway
// concurrently with recording sees each bucket's count at some instant
// (atomic loads), which is exactly as consistent as a statistical snapshot
// needs to be.
//
// Registration (NewRegistry, Counter, Histogram, ...) takes a mutex and
// allocates; it happens at server start. The record path never does either.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pragmaprim/internal/stats"
)

// Label is one metric dimension, rendered as key="value" in both the text
// and Prometheus views.
type Label struct {
	Key, Value string
}

// kind discriminates the registered instrument families.
type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// instrument is one registered metric: exactly one of counter, fn, or hist
// is set.
type instrument struct {
	labels  string // pre-rendered inner label string: `op="GET"`, or ""
	counter *Counter
	fn      func() int64
	hist    *Histogram
}

// family groups the instruments sharing one metric name; a family has one
// kind and one TYPE line in the Prometheus view.
type family struct {
	name  string
	kind  kind
	items []instrument
}

// Registry is a set of named instruments. Registration is mutex-guarded and
// allocates; the record paths of the instruments it hands out are lock- and
// allocation-free. A nil Registry is not usable — use NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

func (r *Registry) add(name string, k kind, it instrument) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, kind: k}
		r.byName[name] = f
		r.families = append(r.families, f)
	} else if f.kind != k {
		panic(fmt.Sprintf("obs: metric %q registered as both %v and %v", name, f.kind, k))
	}
	f.items = append(f.items, it)
}

// Counter registers and returns an owned counter the caller adds to.
// By Prometheus convention the name should end in _total.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	c := &Counter{}
	r.add(name, kindCounter, instrument{labels: renderLabels(labels), counter: c})
	return c
}

// CounterFunc registers a pull-based counter: fn is sampled at scrape time
// and must be monotonic and safe for concurrent use.
func (r *Registry) CounterFunc(name string, fn func() int64, labels ...Label) {
	r.add(name, kindCounter, instrument{labels: renderLabels(labels), fn: fn})
}

// GaugeFunc registers a pull-based gauge: fn is sampled at scrape time and
// must be safe for concurrent use.
func (r *Registry) GaugeFunc(name string, fn func() int64, labels ...Label) {
	r.add(name, kindGauge, instrument{labels: renderLabels(labels), fn: fn})
}

// Histogram registers a striped histogram with the given stripe count
// (clamped to at least 1) and returns it. Callers spread their Recorder
// picks over the stripes — one per connection, worker, or P.
func (r *Registry) Histogram(name string, stripes int, labels ...Label) *Histogram {
	if stripes < 1 {
		stripes = 1
	}
	h := &Histogram{stripes: make([]Recorder, stripes)}
	r.add(name, kindHistogram, instrument{labels: renderLabels(labels), hist: h})
	return h
}

// Counter is an owned monotonic counter, padded onto its own cache line so
// counters registered together do not false-share.
type Counter struct {
	n atomic.Int64
	_ [56]byte
}

// Inc adds one.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds d.
func (c *Counter) Add(d int64) { c.n.Add(d) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.n.Load() }

// Histogram is a concurrent histogram: a fixed set of stripes, each an
// atomic bucket array with stats.Histogram's log-linear geometry. Writers
// record into one stripe (Recorder); readers fold all stripes into a plain
// stats.Histogram. There is no lock anywhere: a fold concurrent with
// recording observes each counter at some instant, which can split one
// logical observation across count and sum but never corrupts either.
type Histogram struct {
	stripes []Recorder
}

// Recorder is one stripe of a Histogram: the write half of the instrument.
// All methods are safe for concurrent use, lock-free, and allocation-free.
// The trailing pad keeps the hot tail counters (n, sum, max) of one stripe
// off the first bucket line of the next.
type Recorder struct {
	counts [stats.Buckets]atomic.Int64
	n      atomic.Int64
	sum    atomic.Int64
	max    atomic.Int64
	_      [40]byte
}

// Record adds one observation. Negative values clamp to zero.
func (rec *Recorder) Record(v int64) { rec.RecordN(v, 1) }

// RecordN adds n observations of value v in one shot — the batched form the
// server uses when every op of a flush interval shares one measured
// duration. n <= 0 is a no-op.
func (rec *Recorder) RecordN(v, n int64) {
	if n <= 0 {
		return
	}
	if v < 0 {
		v = 0
	}
	rec.counts[stats.BucketIndex(v)].Add(n)
	rec.n.Add(n)
	rec.sum.Add(v * n)
	for {
		m := rec.max.Load()
		if v <= m || rec.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Recorder returns stripe i mod the stripe count; spreading i over
// connections or workers keeps concurrent writers on distinct cache lines.
func (h *Histogram) Recorder(i int) *Recorder {
	return &h.stripes[i%len(h.stripes)]
}

// Fold aggregates every stripe into dst (which is Reset first) and returns
// the summed value total. Safe concurrently with recording.
func (h *Histogram) Fold(dst *stats.Histogram) (sum int64) {
	dst.Reset()
	for s := range h.stripes {
		rec := &h.stripes[s]
		for b := 0; b < stats.Buckets; b++ {
			if c := rec.counts[b].Load(); c != 0 {
				dst.AddBucket(b, c)
			}
		}
		dst.ObserveMax(rec.max.Load())
		sum += rec.sum.Load()
	}
	return sum
}

// Count returns the total observations across stripes.
func (h *Histogram) Count() int64 {
	var n int64
	for s := range h.stripes {
		n += h.stripes[s].n.Load()
	}
	return n
}

// renderLabels pre-renders the inner label string (`k="v",k2="v2"`).
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabelValue applies the Prometheus text-format escapes.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// sampleName renders `name` or `name{labels}` with an optional extra label
// appended (the histogram writer's `le`).
func sampleName(name, labels, extra string) string {
	if labels == "" && extra == "" {
		return name
	}
	switch {
	case labels == "":
		return name + "{" + extra + "}"
	case extra == "":
		return name + "{" + labels + "}"
	default:
		return name + "{" + labels + "," + extra + "}"
	}
}

// WriteProm renders the registry in the Prometheus text exposition format:
// one TYPE line per family, counters and gauges as single samples,
// histograms as cumulative le-labeled buckets (only non-empty buckets are
// emitted — the cumulative values are unaffected) plus _sum and _count.
func (r *Registry) WriteProm(w io.Writer) {
	r.mu.Lock()
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	r.mu.Unlock()

	var scratch stats.Histogram
	for _, f := range fams {
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind)
		for _, it := range f.items {
			switch {
			case it.counter != nil:
				fmt.Fprintf(w, "%s %d\n", sampleName(f.name, it.labels, ""), it.counter.Load())
			case it.fn != nil:
				fmt.Fprintf(w, "%s %d\n", sampleName(f.name, it.labels, ""), it.fn())
			case it.hist != nil:
				sum := it.hist.Fold(&scratch)
				var cum int64
				for b := 0; b < stats.Buckets; b++ {
					c := scratch.BucketCount(b)
					if c == 0 {
						continue
					}
					cum += c
					fmt.Fprintf(w, "%s %d\n",
						sampleName(f.name+"_bucket", it.labels, fmt.Sprintf(`le="%d"`, stats.BucketUpper(b))), cum)
				}
				fmt.Fprintf(w, "%s %d\n", sampleName(f.name+"_bucket", it.labels, `le="+Inf"`), cum)
				fmt.Fprintf(w, "%s %d\n", sampleName(f.name+"_sum", it.labels, ""), sum)
				fmt.Fprintf(w, "%s %d\n", sampleName(f.name+"_count", it.labels, ""), cum)
			}
		}
	}
}

// WriteHistText renders a human-readable one-line summary per registered
// histogram (count, p50/p90/p99, max). Names ending in _ns are printed as
// durations. This is the histogram section of the server's text dump; the
// counters and gauges already appear there in its own format.
func (r *Registry) WriteHistText(w io.Writer) {
	r.mu.Lock()
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	r.mu.Unlock()

	var scratch stats.Histogram
	for _, f := range fams {
		if f.kind != kindHistogram {
			continue
		}
		ns := strings.HasSuffix(f.name, "_ns")
		for _, it := range f.items {
			it.hist.Fold(&scratch)
			if scratch.Count() == 0 {
				continue
			}
			val := func(v int64) string {
				if ns {
					return time.Duration(v).Round(time.Microsecond / 10).String()
				}
				return fmt.Sprintf("%d", v)
			}
			fmt.Fprintf(w, "obs: %s count=%d p50=%s p90=%s p99=%s max=%s\n",
				sampleName(f.name, it.labels, ""), scratch.Count(),
				val(scratch.Quantile(50)), val(scratch.Quantile(90)),
				val(scratch.Quantile(99)), val(scratch.Quantile(100)))
		}
	}
}

// Families returns the registered family names, sorted — a cheap existence
// probe for tests and tooling.
func (r *Registry) Families() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.families))
	for _, f := range r.families {
		names = append(names, f.name)
	}
	sort.Strings(names)
	return names
}
