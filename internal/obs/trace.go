package obs

import "sync/atomic"

// TraceEntry is one captured slow operation. The fields are what you need
// to tell *why* a batch was slow: how long it took end to end, how much of
// that was waiting for the WAL commit group, and how many engine retries
// (contention) the interval saw.
type TraceEntry struct {
	Seq        uint64 // monotonically increasing capture number
	When       int64  // capture time, Unix nanoseconds
	Op         int64  // protocol opcode (the server maps it to a name)
	Key        int64
	Dur        int64 // end-to-end batch duration, nanoseconds
	Retries    int64 // engine retries observed over the interval
	CommitWait int64 // time spent waiting on the WAL commit group, ns
}

// traceSlot is one ring slot. Every field is atomic so concurrent writers
// and snapshot readers are race-free by construction; state carries the
// writing/complete protocol (2*seq+1 while fields are being written,
// 2*seq+2 once complete, 0 never written).
type traceSlot struct {
	state      atomic.Uint64
	when       atomic.Int64
	op         atomic.Int64
	key        atomic.Int64
	dur        atomic.Int64
	retries    atomic.Int64
	commitWait atomic.Int64
}

// TraceRing is a fixed-size lock-free ring of slow-op captures. Record
// claims the next slot with one atomic add and overwrites the oldest entry
// — the ring always holds the most recent captures and never blocks or
// allocates, however bursty the slow ops are. Snapshot walks newest-first
// and uses the per-slot state word to discard entries it raced with.
//
// Consistency is best-effort by design: if writers lap the ring faster
// than a reader can copy a slot, that slot is dropped from the snapshot
// (state mismatch), and two writers landing on the same slot during a lap
// can blend their fields. Slow-op forensics want recency and zero overhead
// on the serving path, not a total order.
type TraceRing struct {
	slots []traceSlot
	mask  uint64
	seq   atomic.Uint64
}

// DefaultTraceDepth is the ring capacity NewTraceRing(0) gives.
const DefaultTraceDepth = 256

// NewTraceRing returns a ring holding the most recent `size` captures,
// rounded up to a power of two; size <= 0 means DefaultTraceDepth.
func NewTraceRing(size int) *TraceRing {
	if size <= 0 {
		size = DefaultTraceDepth
	}
	n := 1
	for n < size {
		n <<= 1
	}
	return &TraceRing{slots: make([]traceSlot, n), mask: uint64(n - 1)}
}

// Record captures e (its Seq is assigned here), overwriting the oldest
// entry when the ring is full. Lock- and allocation-free.
func (t *TraceRing) Record(e TraceEntry) {
	seq := t.seq.Add(1)
	s := &t.slots[(seq-1)&t.mask]
	s.state.Store(2*seq + 1)
	s.when.Store(e.When)
	s.op.Store(e.Op)
	s.key.Store(e.Key)
	s.dur.Store(e.Dur)
	s.retries.Store(e.Retries)
	s.commitWait.Store(e.CommitWait)
	s.state.Store(2*seq + 2)
}

// Count returns the total number of captures ever recorded (not the number
// currently held; the ring holds at most Cap of them).
func (t *TraceRing) Count() uint64 { return t.seq.Load() }

// Cap returns the ring capacity.
func (t *TraceRing) Cap() int { return len(t.slots) }

// Snapshot appends the currently held entries to dst, newest first, and
// returns the extended slice. Entries being overwritten concurrently are
// skipped rather than returned torn.
func (t *TraceRing) Snapshot(dst []TraceEntry) []TraceEntry {
	head := t.seq.Load()
	n := uint64(len(t.slots))
	if head < n {
		n = head
	}
	for i := uint64(0); i < n; i++ {
		seq := head - i
		s := &t.slots[(seq-1)&t.mask]
		want := 2*seq + 2
		if s.state.Load() != want {
			continue
		}
		e := TraceEntry{
			Seq:        seq,
			When:       s.when.Load(),
			Op:         s.op.Load(),
			Key:        s.key.Load(),
			Dur:        s.dur.Load(),
			Retries:    s.retries.Load(),
			CommitWait: s.commitWait.Load(),
		}
		if s.state.Load() != want {
			continue
		}
		dst = append(dst, e)
	}
	return dst
}
