package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"pragmaprim/internal/stats"
)

// TestObsRecordAllocFree is the acceptance pin for the record path: with
// the registry fully populated, recording into counters, histogram stripes
// and the trace ring allocates nothing. This is what lets the plane stay on
// by default in the serving hot path.
func TestObsRecordAllocFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total")
	h := r.Histogram("test_latency_ns", 4, Label{"op", "GET"})
	rec := h.Recorder(1)
	tr := NewTraceRing(64)

	allocs := testing.AllocsPerRun(200, func() {
		c.Inc()
		c.Add(3)
		rec.Record(1234)
		rec.RecordN(1<<20, 16)
		tr.Record(TraceEntry{When: 1, Op: 2, Key: 3, Dur: 4, Retries: 5, CommitWait: 6})
	})
	if allocs != 0 {
		t.Fatalf("record path allocated %.1f times per run, want 0", allocs)
	}
}

// TestRegistryConcurrentRecordScrape hammers every instrument kind from
// writer goroutines while the main goroutine folds and renders the whole
// registry — the -race lane proves record and scrape need no exclusion,
// and the final totals prove no update was lost.
func TestRegistryConcurrentRecordScrape(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hammer_total")
	h := r.Histogram("hammer_ns", 4)
	tr := NewTraceRing(32)
	var gauge int64 = 7
	r.GaugeFunc("hammer_gauge", func() int64 { return gauge })

	const workers, perWorker = 8, 5000
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rec := h.Recorder(w)
			<-start
			for i := 0; i < perWorker; i++ {
				c.Inc()
				rec.Record(int64(i))
				tr.Record(TraceEntry{When: int64(i), Op: int64(w)})
			}
		}(w)
	}
	close(start)
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	var fold stats.Histogram
	var buf bytes.Buffer
	scrapes := 0
	for {
		select {
		case <-done:
			goto drained
		default:
		}
		buf.Reset()
		r.WriteProm(&buf)
		if _, err := ParseProm(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("scrape %d unparsable: %v", scrapes, err)
		}
		h.Fold(&fold)
		tr.Snapshot(nil)
		scrapes++
	}
drained:
	t.Logf("completed %d concurrent scrapes", scrapes)
	const total = workers * perWorker
	if got := c.Load(); got != total {
		t.Errorf("counter = %d, want %d", got, total)
	}
	if got := h.Count(); got != total {
		t.Errorf("histogram count = %d, want %d", got, total)
	}
	h.Fold(&fold)
	if got := fold.Count(); got != total {
		t.Errorf("folded count = %d, want %d", got, total)
	}
	if got := tr.Count(); got != total {
		t.Errorf("trace count = %d, want %d", got, total)
	}
}

// TestHistogramFoldMatchesDirect records a deterministic sample through
// striped recorders and checks the fold agrees with a plain stats.Histogram
// fed the same values.
func TestHistogramFoldMatchesDirect(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("fold_ns", 3)
	var direct stats.Histogram
	for i := int64(0); i < 10000; i++ {
		v := (i * i) % (1 << 22)
		h.Recorder(int(i)).Record(v)
		direct.Record(v)
	}
	var fold stats.Histogram
	sum := h.Fold(&fold)
	if fold.Count() != direct.Count() || fold.Max() != direct.Max() {
		t.Fatalf("fold count/max %d/%d, direct %d/%d",
			fold.Count(), fold.Max(), direct.Count(), direct.Max())
	}
	var wantSum int64
	for i := int64(0); i < 10000; i++ {
		wantSum += (i * i) % (1 << 22)
	}
	if sum != wantSum {
		t.Fatalf("fold sum = %d, want %d", sum, wantSum)
	}
	for _, p := range []float64{0, 50, 90, 99, 100} {
		if fold.Quantile(p) != direct.Quantile(p) {
			t.Errorf("q%v: fold %d direct %d", p, fold.Quantile(p), direct.Quantile(p))
		}
	}
}

// TestWritePromParseRoundTrip renders a populated registry and feeds it to
// the in-repo parser: every declared family must come back with its type,
// values must match exactly, and the histogram reconstruction must
// reproduce the fold's quantiles (shared bucket geometry makes it exact).
func TestWritePromParseRoundTrip(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("rt_ops_total", Label{"op", "SET"})
	c.Add(42)
	r.GaugeFunc("rt_depth", func() int64 { return -3 })
	r.CounterFunc("rt_pull_total", func() int64 { return 9 })
	h := r.Histogram("rt_latency_ns", 2, Label{"op", `quo"te`})
	for i := int64(1); i <= 1000; i++ {
		h.Recorder(int(i)).Record(i * 1000)
	}

	var buf bytes.Buffer
	r.WriteProm(&buf)
	fams, err := ParseProm(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, buf.String())
	}
	for name, wantType := range map[string]string{
		"rt_ops_total":  "counter",
		"rt_depth":      "gauge",
		"rt_pull_total": "counter",
		"rt_latency_ns": "histogram",
	} {
		f := fams[name]
		if f == nil {
			t.Fatalf("family %s missing", name)
		}
		if f.Type != wantType {
			t.Errorf("family %s type = %s, want %s", name, f.Type, wantType)
		}
	}
	if v, ok := fams["rt_ops_total"].Value(map[string]string{"op": "SET"}); !ok || v != 42 {
		t.Errorf("rt_ops_total = %v (found=%v), want 42", v, ok)
	}
	if v, ok := fams["rt_depth"].Value(nil); !ok || v != -3 {
		t.Errorf("rt_depth = %v (found=%v), want -3", v, ok)
	}

	got, err := fams["rt_latency_ns"].Hist(map[string]string{"op": `quo"te`})
	if err != nil {
		t.Fatalf("hist reconstruct: %v", err)
	}
	var fold stats.Histogram
	h.Fold(&fold)
	if got.Count() != fold.Count() {
		t.Fatalf("reconstructed count = %d, want %d", got.Count(), fold.Count())
	}
	for _, p := range []float64{50, 90, 99} {
		if got.Quantile(p) != fold.Quantile(p) {
			t.Errorf("q%v: reconstructed %d, fold %d", p, got.Quantile(p), fold.Quantile(p))
		}
	}
}

// TestParsePromRejectsMalformed pins the parser's error behavior: the
// scrape output is a contract, so a bad line is an error, not a skip.
func TestParsePromRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"name_only\n",
		"x{op=\"GET\" 1\n",    // unterminated label set
		"x{op=GET} 1\n",       // unquoted value
		"x{=\"v\"} 1\n",       // empty key
		"x 12abc\n",           // bad value
		"x{op=\"a\\qb\"} 1\n", // unknown escape
		"# TYPE x counter\nx 1\n# TYPE x gauge\n", // redeclared
	} {
		if _, err := ParseProm(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseProm(%q) succeeded, want error", bad)
		}
	}
	// And the accepted grammar corners: escapes, +Inf, untyped samples.
	good := "# HELP x something\nx{k=\"a\\\\b\\nc\"} +Inf\nplain 5\n"
	fams, err := ParseProm(strings.NewReader(good))
	if err != nil {
		t.Fatalf("ParseProm(good): %v", err)
	}
	if f := fams["plain"]; f == nil || f.Type != "untyped" || f.Samples[0].Value != 5 {
		t.Errorf("plain sample parsed wrong: %+v", fams["plain"])
	}
	if f := fams["x"]; f == nil || f.Samples[0].Labels["k"] != "a\\b\nc" {
		t.Errorf("escape parsed wrong: %+v", fams["x"])
	}
}

// TestTraceRingOverwrite pins the ring semantics: capacity rounds up to a
// power of two, the newest Cap entries survive a lap, and Snapshot returns
// them newest first.
func TestTraceRingOverwrite(t *testing.T) {
	tr := NewTraceRing(20) // rounds up to 32
	if tr.Cap() != 32 {
		t.Fatalf("cap = %d, want 32", tr.Cap())
	}
	const total = 100
	for i := int64(1); i <= total; i++ {
		tr.Record(TraceEntry{When: i, Key: i})
	}
	if tr.Count() != total {
		t.Fatalf("count = %d, want %d", tr.Count(), total)
	}
	got := tr.Snapshot(nil)
	if len(got) != 32 {
		t.Fatalf("snapshot len = %d, want 32", len(got))
	}
	for i, e := range got {
		wantSeq := uint64(total - i)
		if e.Seq != wantSeq || e.Key != int64(wantSeq) {
			t.Fatalf("entry %d: seq=%d key=%d, want seq=key=%d", i, e.Seq, e.Key, wantSeq)
		}
	}
	// Snapshot of a partially filled ring returns only what was recorded.
	tr2 := NewTraceRing(16)
	tr2.Record(TraceEntry{Key: 1})
	if got := tr2.Snapshot(nil); len(got) != 1 || got[0].Seq != 1 {
		t.Fatalf("partial snapshot = %+v", got)
	}
}

// TestRegistryTextView checks the human-readable histogram summary line.
func TestRegistryTextView(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("txt_latency_ns", 1, Label{"op", "GET"})
	h.Recorder(0).RecordN(1500, 10)
	empty := r.Histogram("txt_empty_ns", 1)
	_ = empty
	var buf bytes.Buffer
	r.WriteHistText(&buf)
	out := buf.String()
	if !strings.Contains(out, `txt_latency_ns{op="GET"}`) || !strings.Contains(out, "count=10") {
		t.Errorf("text view missing populated histogram:\n%s", out)
	}
	if strings.Contains(out, "txt_empty_ns") {
		t.Errorf("text view includes empty histogram:\n%s", out)
	}
}
