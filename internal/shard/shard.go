// Package shard hash-partitions the key space of a container.Container
// across a power-of-two number of independent instances. The paper's
// LLX/SCX primitives confine contention to each operation's small read set,
// so the structures built on them compose under partitioning with no
// cross-shard coordination at all: a Sharded container routes every
// operation to exactly one shard, each shard keeps its own entry point,
// retry policy and engine counters, and the wrapper only ever aggregates —
// it never synchronizes.
//
// Routing uses Fibonacci hashing (internal/hashutil): the key is multiplied
// by 2^64/φ and the top log2(shards) bits select the shard. The multiplier's bit avalanche
// spreads both sequential and clustered key patterns evenly (a plain
// key%shards would map the workload generators' dense [0,n) ranges onto
// shards in stripes that correlate with access order), and the top-bits
// extraction is a single multiply and shift on the hot path.
//
// What sharding does NOT give you: any operation spanning two shards. There
// is no atomic cross-shard snapshot, no global ordering between shards, and
// Size/EngineStats aggregate weakly consistent per-shard values. Each
// individual operation remains linearizable within its shard, which is
// exactly the contract the workload experiments need.
package shard

import (
	"fmt"
	"math/bits"

	"pragmaprim/internal/container"
	"pragmaprim/internal/hashutil"
	"pragmaprim/internal/template"
)

// Sharded partitions one logical container across independent shards. It
// implements container.Container itself, so every layer that drives a
// container — the harness, cmd/stress, the benchmarks — can run sharded or
// unsharded through the same code path. All methods are safe for concurrent
// use.
type Sharded struct {
	shards []container.Container
	shift  uint // 64 - log2(len(shards)); top bits select the shard
}

// New builds a Sharded container over n independent shards, n a power of
// two (see NextPow2). build is called once per shard with the shard index,
// so callers can vary per-shard configuration — most usefully the retry
// policy of the underlying structure (a hot shard can back off while cold
// shards retry immediately), which stays sound because no operation ever
// touches two shards.
func New(n int, build func(i int) container.Container) *Sharded {
	if n <= 0 || n&(n-1) != 0 {
		panic(fmt.Sprintf("shard: count %d is not a positive power of two (round with NextPow2)", n))
	}
	s := &Sharded{
		shards: make([]container.Container, n),
		shift:  uint(64 - bits.TrailingZeros(uint(n))),
	}
	for i := range s.shards {
		s.shards[i] = build(i)
	}
	return s
}

// NextPow2 rounds n up to the nearest power of two (minimum 1), the shape
// New requires.
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// ShardCount returns the number of shards.
func (s *Sharded) ShardCount() int { return len(s.shards) }

// ShardOf returns the index of the shard that owns key.
func (s *Sharded) ShardOf(key int) int {
	return int(hashutil.Fib(uint64(key)) >> s.shift)
}

// Index is the routing function in pure form: the shard owning key under an
// n-shard (power-of-two) partitioning. Recovery code uses it to re-route
// keys recorded under a previous configuration — snapshot boundary LSNs are
// per shard, so replay must route each logged key with the shard count the
// snapshot was taken under, whatever the server runs with now.
func Index(key int64, n int) int {
	if n <= 0 || n&(n-1) != 0 {
		panic(fmt.Sprintf("shard: count %d is not a positive power of two", n))
	}
	return hashutil.FibIndex(uint64(key), n)
}

// Shard returns shard i, for diagnostics and tests.
func (s *Sharded) Shard(i int) container.Container { return s.shards[i] }

// ForEachShard calls fn for every shard in index order, the hook the
// per-shard contention tables and invariant checkpoints are built on.
func (s *Sharded) ForEachShard(fn func(i int, c container.Container)) {
	for i, c := range s.shards {
		fn(i, c)
	}
}

// NewSession binds one session per shard eagerly, so the per-operation path
// is a multiply, a shift and an interface call — no allocation, no locking,
// and the underlying sessions keep their pooled Handles for the session's
// whole lifetime (the zero-alloc fast path is preserved by construction).
func (s *Sharded) NewSession() container.Session {
	subs := make([]container.Session, len(s.shards))
	for i, c := range s.shards {
		subs[i] = c.NewSession()
	}
	return &session{s: s, subs: subs}
}

// EngineStats returns the template-engine counters summed over all shards.
func (s *Sharded) EngineStats() template.Counters {
	var total template.Counters
	for _, c := range s.shards {
		total = total.Add(c.EngineStats())
	}
	return total
}

// StatsByOp returns the per-operation engine counters summed over all
// shards (per-shard breakdowns come from ForEachShard + Shard.StatsByOp).
func (s *Sharded) StatsByOp() map[string]template.Counters {
	out := make(map[string]template.Counters)
	for _, c := range s.shards {
		for op, cnt := range c.StatsByOp() {
			out[op] = out[op].Add(cnt)
		}
	}
	return out
}

// Size returns the summed shard sizes; exact when quiescent.
func (s *Sharded) Size() int {
	total := 0
	for _, c := range s.shards {
		total += c.Size()
	}
	return total
}

// Range walks every shard in index order. Key sets are disjoint across
// shards by construction, so each key appears at most once per shard's own
// consistency; cross-shard consistency needs an external barrier (see
// internal/snapshot).
func (s *Sharded) Range(fn func(key, count int) bool) {
	stop := false
	for _, c := range s.shards {
		if stop {
			return
		}
		c.Range(func(k, n int) bool {
			if !fn(k, n) {
				stop = true
				return false
			}
			return true
		})
	}
}

// session routes one worker's operations to its per-shard sessions.
type session struct {
	s    *Sharded
	subs []container.Session
}

func (w *session) Get(key int) bool    { return w.subs[w.s.ShardOf(key)].Get(key) }
func (w *session) Insert(key int) bool { return w.subs[w.s.ShardOf(key)].Insert(key) }
func (w *session) Delete(key int) bool { return w.subs[w.s.ShardOf(key)].Delete(key) }
func (w *session) Count(key int) int   { return w.subs[w.s.ShardOf(key)].Count(key) }

// BatchStart forwards to every per-shard session. Each sub-session's guard
// is a depth-counter bump on an already-published announcement (amortized
// epoch protection, PR 8), so opening the guard on all shards costs a few
// nanoseconds per shard — far less than per-op guards over a batch — and
// relieves the router from predicting which shards the batch will touch.
func (w *session) BatchStart() {
	for _, sub := range w.subs {
		sub.BatchStart()
	}
}

// BatchEnd closes the guard on every per-shard session.
func (w *session) BatchEnd() {
	for _, sub := range w.subs {
		sub.BatchEnd()
	}
}

// Quiesce forwards to every per-shard session: a worker going idle holds
// stale announcements on ALL shards it ever touched (the per-shard sessions
// stay published across operations), and any one of them left behind would
// delay reclamation domain-wide.
func (w *session) Quiesce() {
	for _, sub := range w.subs {
		sub.Quiesce()
	}
}

func (w *session) Close() {
	for _, sub := range w.subs {
		sub.Close()
	}
}
