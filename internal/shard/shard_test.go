package shard_test

import (
	"math/rand"
	"sync"
	"testing"

	"pragmaprim/internal/container"
	"pragmaprim/internal/multiset"
	"pragmaprim/internal/shard"
	"pragmaprim/internal/template"
)

// newShardedMultiset builds an n-shard LLX/SCX multiset, the structure the
// shard-scaling experiments run on.
func newShardedMultiset(n int) *shard.Sharded {
	return shard.New(n, func(int) container.Container {
		return container.Multiset(multiset.New[int]())
	})
}

func TestNewRejectsNonPowerOfTwo(t *testing.T) {
	for _, n := range []int{0, -1, 3, 6, 12} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", n)
				}
			}()
			newShardedMultiset(n)
		}()
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{-4: 1, 0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 8: 8, 9: 16, 1000: 1024}
	for in, want := range cases {
		if got := shard.NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

// TestRoutingIsDeterministicAndTotal checks every key goes to exactly one
// in-range shard, stably across calls.
func TestRoutingIsDeterministicAndTotal(t *testing.T) {
	s := newShardedMultiset(8)
	for key := -1000; key < 1000; key++ {
		i := s.ShardOf(key)
		if i < 0 || i >= s.ShardCount() {
			t.Fatalf("ShardOf(%d) = %d, out of range [0,%d)", key, i, s.ShardCount())
		}
		if j := s.ShardOf(key); j != i {
			t.Fatalf("ShardOf(%d) unstable: %d then %d", key, i, j)
		}
	}
	if got := newShardedMultiset(1).ShardOf(12345); got != 0 {
		t.Errorf("single-shard ShardOf = %d, want 0", got)
	}
}

// TestDistributionBalance is the satellite's balance check: uniform keys
// must land on the 8 shards without gross skew — every shard populated and
// max/min occupancy within 2x of each other — for both the dense
// sequential ranges the workloads use and sparse random keys.
func TestDistributionBalance(t *testing.T) {
	const shards = 8
	const keys = 1 << 13
	patterns := map[string]func(i int) int{
		"sequential": func(i int) int { return i },
		"random":     func(i int) int { return rand.New(rand.NewSource(int64(i))).Int() },
	}
	for name, keyOf := range patterns {
		t.Run(name, func(t *testing.T) {
			s := newShardedMultiset(shards)
			w := s.NewSession()
			defer w.Close()
			for i := 0; i < keys; i++ {
				w.Insert(keyOf(i))
			}
			minSz, maxSz := keys, 0
			s.ForEachShard(func(i int, c container.Container) {
				sz := c.Size()
				if sz == 0 {
					t.Errorf("shard %d is empty after %d uniform inserts", i, keys)
				}
				if sz < minSz {
					minSz = sz
				}
				if sz > maxSz {
					maxSz = sz
				}
			})
			if got := s.Size(); got != keys {
				t.Errorf("aggregate Size = %d, want %d", got, keys)
			}
			if maxSz > 2*minSz {
				t.Errorf("shard occupancy skew: max %d > 2x min %d", maxSz, minSz)
			}
		})
	}
}

// TestCounterAggregationConcurrent is the satellite's cross-shard
// counter-agreement check, meant to run under the race detector: with
// workers hammering every shard, the aggregated engine counters must equal
// both the sum of per-shard counters and the number of update operations
// issued, and the aggregate Size must match the applied net.
func TestCounterAggregationConcurrent(t *testing.T) {
	const workers = 8
	const perWorker = 3000
	s := newShardedMultiset(4)

	var applied [workers]int64
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			w := s.NewSession()
			defer w.Close()
			rng := rand.New(rand.NewSource(int64(g)))
			net := int64(0)
			for i := 0; i < perWorker; i++ {
				key := rng.Intn(128)
				if rng.Intn(2) == 0 {
					if w.Insert(key) {
						net++
					}
				} else if w.Delete(key) {
					net--
				}
			}
			applied[g] = net
		}(g)
	}
	wg.Wait()

	agg := s.EngineStats()
	if want := int64(workers * perWorker); agg.Ops != want {
		t.Errorf("aggregated EngineStats.Ops = %d, want %d", agg.Ops, want)
	}
	var sum, byOpSum template.Counters
	s.ForEachShard(func(_ int, c container.Container) {
		sum = sum.Add(c.EngineStats())
	})
	if agg != sum {
		t.Errorf("EngineStats %+v != per-shard sum %+v", agg, sum)
	}
	for _, cnt := range s.StatsByOp() {
		byOpSum = byOpSum.Add(cnt)
	}
	if agg != byOpSum {
		t.Errorf("EngineStats %+v != StatsByOp sum %+v", agg, byOpSum)
	}

	var net int64
	for _, n := range applied {
		net += n
	}
	if got := int64(s.Size()); got != net {
		t.Errorf("aggregate Size = %d, want applied net %d", got, net)
	}
}

// TestShardedAllocCeiling extends the allocation-regression suite to the
// sharded path: routing must add zero allocations per operation over the
// unsharded container (Get stays allocation-free, Insert of a resident key
// stays at the single SCX-descriptor allocation).
func TestShardedAllocCeiling(t *testing.T) {
	measure := func(c container.Container) (get, bump float64) {
		w := c.NewSession()
		defer w.Close()
		w.Insert(7)
		get = testing.AllocsPerRun(1000, func() { w.Get(7) })
		bump = testing.AllocsPerRun(1000, func() { w.Insert(7) })
		return get, bump
	}
	flatGet, flatBump := measure(container.Multiset(multiset.New[int]()))
	shGet, shBump := measure(newShardedMultiset(4))
	if shGet > flatGet {
		t.Errorf("sharded Get allocs %v > unsharded %v", shGet, flatGet)
	}
	if shBump > flatBump {
		t.Errorf("sharded Insert allocs %v > unsharded %v", shBump, flatBump)
	}
	if shGet != 0 {
		t.Errorf("sharded Get allocs %v, want 0", shGet)
	}
	if shBump > 1 {
		t.Errorf("sharded resident-key Insert allocs %v, want <= 1 (descriptor)", shBump)
	}
}
