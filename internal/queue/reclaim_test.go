package queue_test

import (
	"runtime"
	"sync"
	"testing"

	"pragmaprim/internal/core"
	"pragmaprim/internal/queue"
)

// TestQueueRecycleHammer churns enqueue/dequeue from several goroutines
// with concurrent Peek/Len readers — under -race this is the adversarial
// check on the tail-hint discipline: a dummy retired while the hint (or a
// guarded reader) could still reach it shows up as a race between the
// recycler's node reinitialization and the reader's loads, and a dangling
// hint corrupts FIFO order, which the per-producer sequence check catches.
func TestQueueRecycleHammer(t *testing.T) {
	q := queue.New[[2]int]()
	const (
		producers = 3
		consumers = 3
		perP      = 4000
	)
	var wg sync.WaitGroup
	got := make([][]int, producers)
	var mu sync.Mutex

	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			h := core.AcquireHandle()
			defer h.Release()
			s := q.Attach(h)
			for i := 0; i < perP; i++ {
				s.Enqueue([2]int{p, i})
			}
		}(p)
	}
	var consumed sync.WaitGroup
	stop := make(chan struct{})
	for c := 0; c < consumers; c++ {
		consumed.Add(1)
		go func() {
			defer consumed.Done()
			h := core.AcquireHandle()
			defer h.Release()
			s := q.Attach(h)
			for {
				v, ok := s.Dequeue()
				if ok {
					mu.Lock()
					got[v[0]] = append(got[v[0]], v[1])
					mu.Unlock()
					continue
				}
				select {
				case <-stop:
					// Producers are done and the queue was (atomically)
					// observed empty: nothing left to consume.
					return
				default:
					runtime.Gosched()
				}
			}
		}()
	}
	// Readers exercise the guarded Peek/Len paths while nodes churn.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 2000; i++ {
			q.Peek()
			if i%100 == 0 {
				q.Len()
			}
		}
	}()
	wg.Wait()
	close(stop)
	consumed.Wait()

	// With several consumers the dequeue-to-record step is not atomic, so
	// recorded order proves nothing; what must hold is exact-once delivery:
	// every produced item consumed exactly once, none lost, none duplicated
	// (a recycled node handed out twice would duplicate or lose values).
	total := 0
	for p := 0; p < producers; p++ {
		total += len(got[p])
		seen := make([]bool, perP)
		for _, i := range got[p] {
			if i < 0 || i >= perP || seen[i] {
				t.Fatalf("producer %d item %d duplicated or out of range", p, i)
			}
			seen[i] = true
		}
	}
	if total != producers*perP {
		t.Fatalf("consumed %d items, want %d", total, producers*perP)
	}
}

// TestQueueFIFOPerProducerUnderRecycling drains with a single consumer —
// there per-producer FIFO order IS guaranteed, and a dangling tail hint
// (an enqueue walking off a recycled node) would break it.
func TestQueueFIFOPerProducerUnderRecycling(t *testing.T) {
	q := queue.New[[2]int]()
	const producers = 3
	const perP = 5000
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			h := core.AcquireHandle()
			defer h.Release()
			s := q.Attach(h)
			for i := 0; i < perP; i++ {
				s.Enqueue([2]int{p, i})
			}
		}(p)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	h := core.AcquireHandle()
	defer h.Release()
	s := q.Attach(h)
	next := make([]int, producers)
	consumed := 0
	for consumed < producers*perP {
		doneNow := false
		select {
		case <-done:
			doneNow = true
		default:
		}
		v, ok := s.Dequeue()
		if !ok {
			if doneNow {
				// All enqueues happened before the done observation, which
				// happened before this (atomically validated) emptiness.
				t.Fatalf("queue empty with only %d of %d items consumed",
					consumed, producers*perP)
			}
			runtime.Gosched()
			continue
		}
		if v[1] != next[v[0]] {
			t.Fatalf("producer %d: got item %d, want %d (FIFO broken; dangling tail hint?)",
				v[0], v[1], next[v[0]])
		}
		next[v[0]]++
		consumed++
	}
}

// TestQueueReuseAfterWarmup pins that dequeue actually feeds enqueue: a
// balanced enqueue/dequeue loop recycles its nodes through the freelist.
func TestQueueReuseAfterWarmup(t *testing.T) {
	q := queue.New[int]()
	h := core.NewHandle()
	s := q.Attach(h)
	for i := 0; i < 500; i++ {
		s.Enqueue(i)
		if v, ok := s.Dequeue(); !ok || v != i {
			t.Fatalf("dequeue %d = %v,%v", i, v, ok)
		}
	}
	if st := h.Process().Reclaimer().Stats(); st.Reused == 0 {
		t.Fatalf("no node reuse after 500 balanced enqueue/dequeue pairs (stats %+v)", st)
	}
}
