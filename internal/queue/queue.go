// Package queue implements a non-blocking FIFO queue on the LLX/SCX
// primitives, in the shape of the Michael-Scott queue: a dummy head node, a
// lazily advanced tail hint, and one SCX per mutation. It demonstrates the
// paper's template away from search structures — enqueue appends by SCXing
// one next pointer, dequeue advances the head pointer and finalizes exactly
// the node it removes, so consumers can never act on a stale head. Both
// update loops run on the internal/template engine; the dequeue's empty
// case shows the engine's VLX path (a validated read-only observation).
//
// Methods never take a *core.Process: plain calls acquire a pooled Handle
// per operation, and hot paths bind one with Attach.
package queue

import (
	"pragmaprim/internal/core"
	"pragmaprim/internal/template"
)

// Mutable-field indices.
const (
	entryHead = 0 // *node[T]: current dummy node
	entryTail = 1 // *node[T]: tail hint (may lag; never ahead)
	nodeNext  = 0 // *node[T]: successor
)

// node is one queue cell; val is immutable, next is the only mutable field.
type node[T any] struct {
	rec *core.Record
	val T
}

func newNode[T any](val T) *node[T] {
	n := &node[T]{val: val}
	n.rec = core.NewRecord(1, []any{nil}, n)
	return n
}

func (n *node[T]) next() *node[T] {
	nxt, _ := n.rec.Read(nodeNext).(*node[T])
	return nxt
}

// Queue is a non-blocking FIFO queue. The zero value is not usable; create
// one with New. All methods are safe for concurrent use.
type Queue[T any] struct {
	entry    *core.Record // the sole entry point; never finalized
	policy   template.Policy
	enqStats template.OpStats
	deqStats template.OpStats
}

// New creates an empty queue holding only the initial dummy node.
func New[T any]() *Queue[T] {
	var zero T
	dummy := newNode(zero)
	return &Queue[T]{entry: core.NewRecord(2, []any{dummy, dummy})}
}

// SetPolicy installs the retry policy updates back off with; nil (the
// default) retries immediately. Call before sharing the queue.
func (q *Queue[T]) SetPolicy(p template.Policy) { q.policy = p }

// EngineStats returns the template engine's aggregate attempt/failure
// counters across all update operations.
func (q *Queue[T]) EngineStats() template.Counters {
	return q.enqStats.Snapshot().Add(q.deqStats.Snapshot())
}

// StatsByOp returns the engine counters broken out per operation.
func (q *Queue[T]) StatsByOp() map[string]template.Counters {
	return map[string]template.Counters{
		"enqueue": q.enqStats.Snapshot(),
		"dequeue": q.deqStats.Snapshot(),
	}
}

// Session is a Handle-bound view of a Queue: the hot-path API for a
// goroutine performing many operations. Not safe for concurrent use; any
// number of Sessions may share the Queue.
type Session[T any] struct {
	q *Queue[T]
	h *core.Handle
}

// Attach binds a Session to h. The caller keeps ownership of h.
func (q *Queue[T]) Attach(h *core.Handle) Session[T] {
	return Session[T]{q: q, h: h}
}

// Handle returns the Session's Handle.
func (s Session[T]) Handle() *core.Handle { return s.h }

func (q *Queue[T]) head() *node[T] {
	h, _ := q.entry.Read(entryHead).(*node[T])
	return h
}

func (q *Queue[T]) tailHint() *node[T] {
	t, _ := q.entry.Read(entryTail).(*node[T])
	return t
}

// Enqueue appends val using a pooled Handle; see Session.Enqueue for the
// hot-path form.
func (q *Queue[T]) Enqueue(val T) {
	h := core.AcquireHandle()
	q.Attach(h).Enqueue(val)
	h.Release()
}

// Dequeue removes the oldest element using a pooled Handle; see
// Session.Dequeue for the hot-path form.
func (q *Queue[T]) Dequeue() (T, bool) {
	h := core.AcquireHandle()
	v, ok := q.Attach(h).Dequeue()
	h.Release()
	return v, ok
}

// Enqueue appends val at the tail.
func (s Session[T]) Enqueue(val T) {
	q := s.q
	n := newNode(val) // allocated once; retries reuse it
	template.Run(s.h, q.policy, &q.enqStats, func(c *template.Ctx) (struct{}, template.Action) {
		// Find the last node, starting from the (possibly lagging) hint.
		last := q.tailHint()
		if last == nil {
			last = q.head()
		}
		for {
			nxt := last.next()
			if nxt == nil {
				break
			}
			last = nxt
		}
		localLast, st := c.LLX(last.rec)
		if st != core.LLXOK {
			return struct{}{}, template.Retry // finalized (dequeued past) or contended; re-find
		}
		if localLast[nodeNext] != any(nil) {
			return struct{}{}, template.Retry // someone appended after our walk
		}
		if c.SCX([]*core.Record{last.rec}, nil, last.rec.Field(nodeNext), n) {
			q.advanceTail(c, n)
			return struct{}{}, template.Done
		}
		return struct{}{}, template.Retry
	})
}

// advanceTail best-effort moves the tail hint to n; a failure just leaves
// the hint lagging, which only costs later enqueues a longer walk. It uses
// the raw primitives rather than the Ctx so its expected-and-harmless
// failures never count as operation contention in the engine stats.
func (q *Queue[T]) advanceTail(c *template.Ctx, n *node[T]) {
	p := c.Process()
	var entryBuf [2]any
	if _, st := p.LLXInto(q.entry, entryBuf[:]); st != core.LLXOK {
		return
	}
	p.SCX([]*core.Record{q.entry}, nil, q.entry.Field(entryTail), n)
}

// deqResult carries Dequeue's two return values through the engine.
type deqResult[T any] struct {
	val T
	ok  bool
}

// Dequeue removes and returns the oldest element; ok is false when the
// queue is (momentarily) empty.
func (s Session[T]) Dequeue() (T, bool) {
	q := s.q
	res := template.Run(s.h, q.policy, &q.deqStats, func(c *template.Ctx) (deqResult[T], template.Action) {
		localEntry, st := c.LLX(q.entry)
		if st != core.LLXOK {
			return deqResult[T]{}, template.Retry
		}
		d, _ := localEntry[entryHead].(*node[T])
		locald, st := c.LLX(d.rec)
		if st != core.LLXOK {
			return deqResult[T]{}, template.Retry
		}
		f, _ := locald[nodeNext].(*node[T])
		if f == nil {
			// The dummy has no successor: empty. The two LLX snapshots are
			// individually linked; validate them together so the emptiness
			// observation is atomic.
			if c.VLX([]*core.Record{q.entry, d.rec}) {
				return deqResult[T]{}, template.Done
			}
			return deqResult[T]{}, template.Retry
		}
		// Swing head to f (which becomes the new dummy) and finalize the
		// old dummy; f's value is the dequeued element.
		if c.SCX([]*core.Record{q.entry, d.rec}, []*core.Record{d.rec},
			q.entry.Field(entryHead), f) {
			return deqResult[T]{val: f.val, ok: true}, template.Done
		}
		return deqResult[T]{}, template.Retry
	})
	return res.val, res.ok
}

// Peek returns the oldest element without removing it; ok is false when the
// queue is (momentarily) empty. It is a plain read of the dummy's successor
// (Proposition 2): O(1), no Handle, weakly consistent under concurrency.
func (q *Queue[T]) Peek() (T, bool) {
	if f := q.head().next(); f != nil {
		return f.val, true
	}
	var zero T
	return zero, false
}

// Len counts the elements seen by one traversal: exact when quiescent,
// weakly consistent under concurrency.
func (q *Queue[T]) Len() int {
	n := 0
	for cur := q.head().next(); cur != nil; cur = cur.next() {
		n++
	}
	return n
}

// Drain dequeues everything currently observable, returning the values in
// FIFO order. Intended for quiescent use in tests.
func (q *Queue[T]) Drain() []T {
	h := core.AcquireHandle()
	defer h.Release()
	s := q.Attach(h)
	var out []T
	for {
		v, ok := s.Dequeue()
		if !ok {
			return out
		}
		out = append(out, v)
	}
}
