// Package queue implements a non-blocking FIFO queue on the LLX/SCX
// primitives, in the shape of the Michael-Scott queue: a dummy head node, a
// lazily advanced tail hint, and one SCX per mutation. It demonstrates the
// paper's template away from search structures — enqueue appends by SCXing
// one next pointer, dequeue advances the head pointer and finalizes exactly
// the node it removes, so consumers can never act on a stale head. Both
// update loops run on the internal/template engine; the dequeue's empty
// case shows the engine's VLX path (a validated read-only observation).
//
// Storage is de-boxed (entry and node links are raw pointer words) and
// dequeued nodes are recycled through internal/reclaim. Recycling imposes
// the classic Michael-Scott discipline on the tail hint: a node may be
// retired only once the hint provably no longer designates it, and the hint
// may only ever be swung to a node that is un-finalized at the moment the
// swing commits (the hint-advance SCX includes the target node in its
// V-sequence to get exactly that guarantee). See DESIGN.md.
//
// Methods never take a *core.Process: plain calls acquire a pooled Handle
// per operation, and hot paths bind one with Attach.
package queue

import (
	"unsafe"

	"pragmaprim/internal/core"
	"pragmaprim/internal/reclaim"
	"pragmaprim/internal/template"
)

// Mutable-field indices (all pointer fields).
const (
	entryHead = 0 // ptr 0 of the entry record: current dummy node
	entryTail = 1 // ptr 1 of the entry record: tail hint (may lag; never retired)
	nodeNext  = 0 // ptr 0 of a node record: successor
)

// node is one queue cell; val is immutable while published, next is the
// only mutable field. The Data-record is embedded: node plus record are one
// allocation, recycled together.
type node[T any] struct {
	rec core.Record
	val T
}

func (n *node[T]) next() *node[T] {
	return (*node[T])(n.rec.Ptr(nodeNext))
}

// Queue is a non-blocking FIFO queue. The zero value is not usable; create
// one with New. All methods are safe for concurrent use.
type Queue[T any] struct {
	entry    *core.Record // the sole entry point; never finalized
	pool     *reclaim.Pool[node[T]]
	policy   template.Policy
	enqStats template.OpStats
	deqStats template.OpStats
}

// New creates an empty queue holding only the initial dummy node.
func New[T any]() *Queue[T] {
	q := &Queue[T]{pool: reclaim.NewPool[node[T]]()}
	// Rewind records as nodes enter the freelists, releasing the
	// descriptors their info fields would otherwise park (see reclaim).
	q.pool.SetOnFree(func(n *node[T]) { n.rec.Recycle() })
	var zero T
	dummy := q.newNode(nil, zero, nil)
	entry := core.NewTypedRecord(0, 2)
	entry.SetPtr(entryHead, unsafe.Pointer(dummy))
	entry.SetPtr(entryTail, unsafe.Pointer(dummy))
	q.entry = entry
	return q
}

// newNode builds (or recycles) a fully initialized, unpublished node.
func (q *Queue[T]) newNode(l *reclaim.Local, val T, next *node[T]) *node[T] {
	n := q.pool.Get(l)
	if n == nil {
		n = &node[T]{}
		core.InitRecord(&n.rec, 0, 1)
	} else {
		n.rec.Recycle()
	}
	n.val = val
	n.rec.SetPtr(nodeNext, unsafe.Pointer(next))
	return n
}

// SetPolicy installs the retry policy updates back off with; nil (the
// default) retries immediately. Call before sharing the queue.
func (q *Queue[T]) SetPolicy(p template.Policy) { q.policy = p }

// EngineStats returns the template engine's aggregate attempt/failure
// counters across all update operations.
func (q *Queue[T]) EngineStats() template.Counters {
	return q.enqStats.Snapshot().Add(q.deqStats.Snapshot())
}

// StatsByOp returns the engine counters broken out per operation.
func (q *Queue[T]) StatsByOp() map[string]template.Counters {
	return map[string]template.Counters{
		"enqueue": q.enqStats.Snapshot(),
		"dequeue": q.deqStats.Snapshot(),
	}
}

// Session is a Handle-bound view of a Queue: the hot-path API for a
// goroutine performing many operations. Not safe for concurrent use; any
// number of Sessions may share the Queue.
type Session[T any] struct {
	q *Queue[T]
	h *core.Handle
}

// Attach binds a Session to h. The caller keeps ownership of h.
func (q *Queue[T]) Attach(h *core.Handle) Session[T] {
	return Session[T]{q: q, h: h}
}

// Handle returns the Session's Handle.
func (s Session[T]) Handle() *core.Handle { return s.h }

func (q *Queue[T]) head() *node[T] {
	return (*node[T])(q.entry.Ptr(entryHead))
}

func (q *Queue[T]) tailHint() *node[T] {
	return (*node[T])(q.entry.Ptr(entryTail))
}

// Enqueue appends val using a pooled Handle; see Session.Enqueue for the
// hot-path form.
func (q *Queue[T]) Enqueue(val T) {
	h := core.AcquireHandle()
	q.Attach(h).Enqueue(val)
	h.Release()
}

// Dequeue removes the oldest element using a pooled Handle; see
// Session.Dequeue for the hot-path form.
func (q *Queue[T]) Dequeue() (T, bool) {
	h := core.AcquireHandle()
	v, ok := q.Attach(h).Dequeue()
	h.Release()
	return v, ok
}

// Enqueue appends val at the tail.
func (s Session[T]) Enqueue(val T) {
	q := s.q
	var n *node[T] // built at most once per operation; retries reuse it
	template.Run(s.h, q.policy, &q.enqStats, func(c *template.Ctx) (struct{}, template.Action) {
		if n == nil {
			n = q.newNode(c.Reclaim(), val, nil)
		}
		// Find the last node, starting from the (possibly lagging) hint.
		last := q.tailHint()
		if last == nil {
			last = q.head()
		}
		for {
			nxt := last.next()
			if nxt == nil {
				break
			}
			last = nxt
		}
		localLast, st := c.LLXF(&last.rec)
		if st != core.LLXOK {
			return struct{}{}, template.Retry // finalized (dequeued past) or contended; re-find
		}
		if localLast.Ptr(nodeNext) != nil {
			return struct{}{}, template.Retry // someone appended after our walk
		}
		if c.SCXPtr([]*core.Record{&last.rec}, nil, last.rec.PtrField(nodeNext),
			unsafe.Pointer(n)) {
			q.advanceTail(c, n)
			return struct{}{}, template.Done
		}
		return struct{}{}, template.Retry
	})
}

// advanceTail best-effort moves the tail hint to n; a failure just leaves
// the hint lagging, which only costs later enqueues a longer walk. It uses
// the raw primitives rather than the Ctx so its expected-and-harmless
// failures never count as operation contention in the engine stats.
//
// n is part of the SCX's V-sequence: the swing commits only if n is still
// un-finalized at that instant, which preserves the invariant that the tail
// hint never designates a retired node — the property node recycling
// depends on (a dangling hint would let an enqueue walk off a node whose
// storage has been reused).
func (q *Queue[T]) advanceTail(c *template.Ctx, n *node[T]) {
	p := c.Process()
	var entryBuf, nodeBuf core.Fields
	if st := p.LLXFields(q.entry, &entryBuf); st != core.LLXOK {
		return
	}
	if st := p.LLXFields(&n.rec, &nodeBuf); st != core.LLXOK {
		return // n already dequeued and finalized: it must not become the hint
	}
	p.SCXPtr([]*core.Record{q.entry, &n.rec}, nil,
		q.entry.PtrField(entryTail), unsafe.Pointer(n))
}

// clearTailHint moves the tail hint off d (the dummy a successful dequeue
// just finalized) so that d can be retired. The replacement target is the
// snapshot's current head: if that node were concurrently finalized, the
// entry record would have changed and the SCX would fail, so the hint can
// never be swung onto a retired node. The loop ends as soon as the hint no
// longer designates d (usually immediately: the hint only equals the dummy
// around the empty state).
func (q *Queue[T]) clearTailHint(c *template.Ctx, d *node[T]) {
	p := c.Process()
	var entryBuf core.Fields
	for q.tailHint() == d {
		if st := p.LLXFields(q.entry, &entryBuf); st != core.LLXOK {
			continue
		}
		if (*node[T])(entryBuf.Ptr(entryTail)) != d {
			return
		}
		target := entryBuf.Ptr(entryHead)
		if p.SCXPtr([]*core.Record{q.entry}, nil,
			q.entry.PtrField(entryTail), target) {
			return
		}
	}
}

// deqResult carries Dequeue's two return values through the engine.
type deqResult[T any] struct {
	val T
	ok  bool
}

// Dequeue removes and returns the oldest element; ok is false when the
// queue is (momentarily) empty.
func (s Session[T]) Dequeue() (T, bool) {
	q := s.q
	res := template.Run(s.h, q.policy, &q.deqStats, func(c *template.Ctx) (deqResult[T], template.Action) {
		localEntry, st := c.LLXF(q.entry)
		if st != core.LLXOK {
			return deqResult[T]{}, template.Retry
		}
		d := (*node[T])(localEntry.Ptr(entryHead))
		locald, st := c.LLXF(&d.rec)
		if st != core.LLXOK {
			return deqResult[T]{}, template.Retry
		}
		f := (*node[T])(locald.Ptr(nodeNext))
		if f == nil {
			// The dummy has no successor: empty. The two LLX snapshots are
			// individually linked; validate them together so the emptiness
			// observation is atomic.
			if c.VLX([]*core.Record{q.entry, &d.rec}) {
				return deqResult[T]{}, template.Done
			}
			return deqResult[T]{}, template.Retry
		}
		// Swing head to f (which becomes the new dummy) and finalize the
		// old dummy; f's value is the dequeued element.
		if c.SCXPtr([]*core.Record{q.entry, &d.rec}, []*core.Record{&d.rec},
			q.entry.PtrField(entryHead), unsafe.Pointer(f)) {
			val := f.val
			// Retire the old dummy only after the tail hint provably no
			// longer designates it.
			q.clearTailHint(c, d)
			q.pool.Retire(c.Reclaim(), d)
			return deqResult[T]{val: val, ok: true}, template.Done
		}
		return deqResult[T]{}, template.Retry
	})
	return res.val, res.ok
}

// Peek returns the oldest element without removing it; ok is false when the
// queue is (momentarily) empty. It is a plain read of the dummy's successor
// (Proposition 2) under a pooled handle's epoch guard: O(1), weakly
// consistent under concurrency.
func (q *Queue[T]) Peek() (val T, ok bool) {
	template.Guarded(func() {
		if f := q.head().next(); f != nil {
			val, ok = f.val, true
		}
	})
	return val, ok
}

// Len counts the elements seen by one traversal: exact when quiescent,
// weakly consistent under concurrency.
func (q *Queue[T]) Len() (n int) {
	template.Guarded(func() {
		for cur := q.head().next(); cur != nil; cur = cur.next() {
			n++
		}
	})
	return n
}

// Items returns the values seen by one traversal in FIFO order: exact when
// quiescent, weakly consistent under concurrency. Like Len it walks under a
// single epoch guard, so no node is reclaimed mid-scan.
func (q *Queue[T]) Items() []T {
	var out []T
	template.Guarded(func() {
		for cur := q.head().next(); cur != nil; cur = cur.next() {
			out = append(out, cur.val)
		}
	})
	return out
}

// Drain dequeues everything currently observable, returning the values in
// FIFO order. Intended for quiescent use in tests.
func (q *Queue[T]) Drain() []T {
	h := core.AcquireHandle()
	defer h.Release()
	s := q.Attach(h)
	var out []T
	for {
		v, ok := s.Dequeue()
		if !ok {
			return out
		}
		out = append(out, v)
	}
}
