// Package queue implements a non-blocking FIFO queue on the LLX/SCX
// primitives, in the shape of the Michael-Scott queue: a dummy head node, a
// lazily advanced tail hint, and one SCX per mutation. It demonstrates the
// paper's template away from search structures — enqueue appends by SCXing
// one next pointer, dequeue advances the head pointer and finalizes exactly
// the node it removes, so consumers can never act on a stale head.
package queue

import (
	"pragmaprim/internal/core"
)

// Mutable-field indices.
const (
	entryHead = 0 // *node[T]: current dummy node
	entryTail = 1 // *node[T]: tail hint (may lag; never ahead)
	nodeNext  = 0 // *node[T]: successor
)

// node is one queue cell; val is immutable, next is the only mutable field.
type node[T any] struct {
	rec *core.Record
	val T
}

func newNode[T any](val T) *node[T] {
	n := &node[T]{val: val}
	n.rec = core.NewRecord(1, []any{nil}, n)
	return n
}

func (n *node[T]) next() *node[T] {
	nxt, _ := n.rec.Read(nodeNext).(*node[T])
	return nxt
}

// Queue is a non-blocking FIFO queue. The zero value is not usable; create
// one with New. All methods are safe for concurrent use provided each
// goroutine passes its own *core.Process.
type Queue[T any] struct {
	entry *core.Record // the sole entry point; never finalized
}

// New creates an empty queue holding only the initial dummy node.
func New[T any]() *Queue[T] {
	var zero T
	dummy := newNode(zero)
	return &Queue[T]{entry: core.NewRecord(2, []any{dummy, dummy})}
}

func (q *Queue[T]) head() *node[T] {
	h, _ := q.entry.Read(entryHead).(*node[T])
	return h
}

func (q *Queue[T]) tailHint() *node[T] {
	t, _ := q.entry.Read(entryTail).(*node[T])
	return t
}

// Enqueue appends val at the tail.
func (q *Queue[T]) Enqueue(proc *core.Process, val T) {
	n := newNode(val)
	// Reusable snapshot buffer (core.LLXInto): retries allocate nothing.
	var lastBuf [1]any
	for {
		// Find the last node, starting from the (possibly lagging) hint.
		last := q.tailHint()
		if last == nil {
			last = q.head()
		}
		for {
			nxt := last.next()
			if nxt == nil {
				break
			}
			last = nxt
		}
		localLast, st := proc.LLXInto(last.rec, lastBuf[:])
		if st != core.LLXOK {
			continue // finalized (dequeued past) or contended; re-find
		}
		if localLast[nodeNext] != any(nil) {
			continue // someone appended after our walk
		}
		if proc.SCX([]*core.Record{last.rec}, nil, last.rec.Field(nodeNext), n) {
			q.advanceTail(proc, n)
			return
		}
	}
}

// advanceTail best-effort moves the tail hint to n; a failure just leaves
// the hint lagging, which only costs later enqueues a longer walk.
func (q *Queue[T]) advanceTail(proc *core.Process, n *node[T]) {
	var entryBuf [2]any
	if _, st := proc.LLXInto(q.entry, entryBuf[:]); st != core.LLXOK {
		return
	}
	proc.SCX([]*core.Record{q.entry}, nil, q.entry.Field(entryTail), n)
}

// Dequeue removes and returns the oldest element; ok is false when the
// queue is (momentarily) empty.
func (q *Queue[T]) Dequeue(proc *core.Process) (T, bool) {
	var zero T
	// The entry's and dummy's snapshots are alive at once, so each gets its
	// own reusable buffer.
	var entryBuf [2]any
	var dBuf [1]any
	for {
		localEntry, st := proc.LLXInto(q.entry, entryBuf[:])
		if st != core.LLXOK {
			continue
		}
		d, _ := localEntry[entryHead].(*node[T])
		locald, st := proc.LLXInto(d.rec, dBuf[:])
		if st != core.LLXOK {
			continue
		}
		f, _ := locald[nodeNext].(*node[T])
		if f == nil {
			// The dummy has no successor: empty. The two LLX snapshots are
			// individually linked; validate them together so the emptiness
			// observation is atomic.
			if proc.VLX([]*core.Record{q.entry, d.rec}) {
				return zero, false
			}
			continue
		}
		// Swing head to f (which becomes the new dummy) and finalize the
		// old dummy; f's value is the dequeued element.
		if proc.SCX([]*core.Record{q.entry, d.rec}, []*core.Record{d.rec},
			q.entry.Field(entryHead), f) {
			return f.val, true
		}
	}
}

// Len counts the elements seen by one traversal: exact when quiescent,
// weakly consistent under concurrency.
func (q *Queue[T]) Len() int {
	n := 0
	for cur := q.head().next(); cur != nil; cur = cur.next() {
		n++
	}
	return n
}

// Drain dequeues everything currently observable, returning the values in
// FIFO order. Intended for quiescent use in tests.
func (q *Queue[T]) Drain(proc *core.Process) []T {
	var out []T
	for {
		v, ok := q.Dequeue(proc)
		if !ok {
			return out
		}
		out = append(out, v)
	}
}
