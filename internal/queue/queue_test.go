package queue_test

import (
	"math/rand"
	"pragmaprim/internal/history"
	"pragmaprim/internal/linearizability"
	"pragmaprim/internal/queue"
	"sort"
	"sync"
	"testing"
)

func TestEmptyQueue(t *testing.T) {
	q := queue.New[int]()
	if _, ok := q.Dequeue(); ok {
		t.Error("Dequeue on empty = true")
	}
	if got := q.Len(); got != 0 {
		t.Errorf("Len = %d", got)
	}
}

func TestPeek(t *testing.T) {
	q := queue.New[int]()
	if _, ok := q.Peek(); ok {
		t.Error("Peek on empty = true")
	}
	q.Enqueue(1)
	q.Enqueue(2)
	if v, ok := q.Peek(); !ok || v != 1 {
		t.Errorf("Peek = (%d,%v), want (1,true)", v, ok)
	}
	q.Dequeue()
	if v, ok := q.Peek(); !ok || v != 2 {
		t.Errorf("Peek after Dequeue = (%d,%v), want (2,true)", v, ok)
	}
	q.Dequeue()
	if _, ok := q.Peek(); ok {
		t.Error("Peek on drained queue = true")
	}
}

func TestFIFOOrder(t *testing.T) {
	q := queue.New[int]()
	for i := 1; i <= 10; i++ {
		q.Enqueue(i)
	}
	if got := q.Len(); got != 10 {
		t.Fatalf("Len = %d", got)
	}
	for i := 1; i <= 10; i++ {
		v, ok := q.Dequeue()
		if !ok || v != i {
			t.Fatalf("Dequeue = (%d,%v), want (%d,true)", v, ok, i)
		}
	}
	if _, ok := q.Dequeue(); ok {
		t.Fatal("Dequeue on drained queue = true")
	}
}

func TestInterleavedEnqueueDequeue(t *testing.T) {
	q := queue.New[string]()
	q.Enqueue("a")
	q.Enqueue("b")
	if v, _ := q.Dequeue(); v != "a" {
		t.Fatalf("Dequeue = %q, want a", v)
	}
	q.Enqueue("c")
	if v, _ := q.Dequeue(); v != "b" {
		t.Fatalf("Dequeue = %q, want b", v)
	}
	if v, _ := q.Dequeue(); v != "c" {
		t.Fatalf("Dequeue = %q, want c", v)
	}
}

func TestDrainAfterRefill(t *testing.T) {
	q := queue.New[int]()
	for round := 0; round < 5; round++ {
		for i := 0; i < 20; i++ {
			q.Enqueue(round*100 + i)
		}
		got := q.Drain()
		if len(got) != 20 {
			t.Fatalf("round %d: drained %d", round, len(got))
		}
		for i, v := range got {
			if v != round*100+i {
				t.Fatalf("round %d: out of order at %d: %v", round, i, got)
			}
		}
	}
}

// TestConcurrentAllElementsSurvive: every enqueued element is dequeued
// exactly once, across producers and consumers.
func TestConcurrentAllElementsSurvive(t *testing.T) {
	const producers = 4
	const consumers = 4
	const perProducer = 500
	q := queue.New[int]()

	var wg sync.WaitGroup
	for g := 0; g < producers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				q.Enqueue(g*perProducer + i)
			}
		}(g)
	}

	var mu sync.Mutex
	seen := make(map[int]int)
	var cg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < consumers; g++ {
		cg.Add(1)
		go func() {
			defer cg.Done()
			for {
				v, ok := q.Dequeue()
				if !ok {
					select {
					case <-stop:
						// Producers done; drain the remainder, then exit.
						for {
							v, ok := q.Dequeue()
							if !ok {
								return
							}
							mu.Lock()
							seen[v]++
							mu.Unlock()
						}
					default:
						continue
					}
				}
				mu.Lock()
				seen[v]++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	close(stop)
	cg.Wait()

	if len(seen) != producers*perProducer {
		t.Fatalf("saw %d distinct elements, want %d", len(seen), producers*perProducer)
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("element %d dequeued %d times", v, n)
		}
	}
}

// TestConcurrentPerProducerOrder: FIFO per producer — each producer's
// elements must be consumed in its enqueue order.
func TestConcurrentPerProducerOrder(t *testing.T) {
	const producers = 3
	const perProducer = 400
	q := queue.New[[2]int]() // (producer, seq)

	var wg sync.WaitGroup
	for g := 0; g < producers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				q.Enqueue([2]int{g, i})
			}
		}(g)
	}
	wg.Wait()
	lastSeq := make([]int, producers)
	for i := range lastSeq {
		lastSeq[i] = -1
	}
	for {
		v, ok := q.Dequeue()
		if !ok {
			break
		}
		if v[1] != lastSeq[v[0]]+1 {
			t.Fatalf("producer %d: seq %d after %d", v[0], v[1], lastSeq[v[0]])
		}
		lastSeq[v[0]] = v[1]
	}
	for g, last := range lastSeq {
		if last != perProducer-1 {
			t.Fatalf("producer %d: only %d elements arrived", g, last+1)
		}
	}
}

// TestConcurrentMixedChurn: random enqueues/dequeues; conservation holds.
func TestConcurrentMixedChurn(t *testing.T) {
	const procs = 6
	const perProc = 500
	q := queue.New[int]()
	enq := make([]int64, procs)
	deq := make([]int64, procs)

	var wg sync.WaitGroup
	for g := 0; g < procs; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < perProc; i++ {
				if rng.Intn(2) == 0 {
					q.Enqueue(g*perProc + i)
					enq[g]++
				} else if _, ok := q.Dequeue(); ok {
					deq[g]++
				}
			}
		}(g)
	}
	wg.Wait()

	var totalEnq, totalDeq int64
	for g := 0; g < procs; g++ {
		totalEnq += enq[g]
		totalDeq += deq[g]
	}
	if got := int64(q.Len()); got != totalEnq-totalDeq {
		t.Fatalf("Len = %d, want enq-deq = %d", got, totalEnq-totalDeq)
	}
	// Remaining elements are distinct.
	rest := q.Drain()
	dup := make(map[int]bool)
	for _, v := range rest {
		if dup[v] {
			t.Fatalf("duplicate element %d survived", v)
		}
		dup[v] = true
	}
}

// TestLinearizableHistories checks recorded concurrent histories against
// the sequential FIFO specification.
func TestLinearizableHistories(t *testing.T) {
	const rounds = 60
	const procs = 3
	const opsPerProc = 5

	for round := 0; round < rounds; round++ {
		q := queue.New[int]()
		rec := history.NewRecorder(procs)
		var wg sync.WaitGroup
		for g := 0; g < procs; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(round*procs + g + 101)))
				pr := rec.Proc(g)
				for i := 0; i < opsPerProc; i++ {
					if rng.Intn(2) == 0 {
						v := g*100 + i
						pr.Invoke(linearizability.SeqInput{Op: "enqueue", Val: v},
							func() any { q.Enqueue(v); return nil })
					} else {
						pr.Invoke(linearizability.SeqInput{Op: "dequeue"},
							func() any { v, ok := q.Dequeue(); return [2]any{v, ok} })
					}
				}
			}(g)
		}
		wg.Wait()
		if !linearizability.Check(linearizability.QueueModel(), rec.Ops()) {
			t.Fatalf("round %d: history not linearizable:\n%+v", round, rec.Ops())
		}
	}
}

// TestTailHintLagsHarmlessly exercises the lazy tail: dequeue everything so
// the hint points at finalized nodes, then keep enqueueing.
func TestTailHintLagsHarmlessly(t *testing.T) {
	q := queue.New[int]()
	for i := 0; i < 50; i++ {
		q.Enqueue(i)
	}
	q.Drain()
	for i := 100; i < 150; i++ {
		q.Enqueue(i)
	}
	got := q.Drain()
	if len(got) != 50 {
		t.Fatalf("drained %d, want 50", len(got))
	}
	sort.Ints(got)
	for i, v := range got {
		if v != 100+i {
			t.Fatalf("element %d = %d", i, v)
		}
	}
}
