package benchcore

import (
	"testing"

	"pragmaprim/internal/wal"
)

// WALAppend times the hot half of the durable write path: encoding one
// record in place into the log's commit buffer under the log mutex. Fsyncs
// are pushed far out of band (one Sync per 4096 appends, to bound the
// buffer) so the row isolates the append itself — the part that sits inside
// every acknowledged SET/DEL. The pin is 0 allocs/op: the frame is encoded
// directly into the reused buffer, nothing escapes.
func WALAppend(b *testing.B) {
	l, err := wal.Open(b.TempDir(), wal.Options{}, nil)
	if err != nil {
		b.Fatalf("open: %v", err)
	}
	defer l.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Append(wal.OpInsert, int64(i&1023)); err != nil {
			b.Fatalf("append: %v", err)
		}
		if i&4095 == 4095 {
			if err := l.Sync(); err != nil {
				b.Fatalf("sync: %v", err)
			}
		}
	}
	b.StopTimer()
	if err := l.Sync(); err != nil {
		b.Fatalf("final sync: %v", err)
	}
}

// WALGroupCommit times the full durable cycle at the server's pipeline
// shape: append every record, fsync once per 128-record commit group. ns/op
// is per record, so the row shows what group commit buys — the fsync cost
// divided across the group — and the allocs/op pin covers the whole
// append+commit path.
func WALGroupCommit(b *testing.B) {
	l, err := wal.Open(b.TempDir(), wal.Options{}, nil)
	if err != nil {
		b.Fatalf("open: %v", err)
	}
	defer l.Close()
	const group = 128
	b.ReportAllocs()
	b.ResetTimer()
	var lsn uint64
	for i := 0; i < b.N; i++ {
		if lsn, err = l.Append(wal.OpInsert, int64(i&1023)); err != nil {
			b.Fatalf("append: %v", err)
		}
		if i%group == group-1 {
			if err := l.Commit(lsn); err != nil {
				b.Fatalf("commit: %v", err)
			}
		}
	}
	b.StopTimer()
	if err := l.Sync(); err != nil {
		b.Fatalf("final sync: %v", err)
	}
}

// WALAppendBatch times the batched append the server's batch path uses: one
// mutex round encodes a whole 128-record batch in place, then one commit
// group makes it durable. ns/op is per record; against WALGroupCommit the
// delta is what AppendBatch saves over 128 per-record mutex round-trips.
// The pin stays 0 allocs/op once the commit buffer has grown to the batch
// size.
func WALAppendBatch(b *testing.B) {
	l, err := wal.Open(b.TempDir(), wal.Options{}, nil)
	if err != nil {
		b.Fatalf("open: %v", err)
	}
	defer l.Close()
	const group = 128
	recs := make([]wal.Record, group)
	for i := range recs {
		recs[i] = wal.Record{Op: wal.OpInsert, Key: int64(i & 1023)}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += group {
		lsn, err := l.AppendBatch(recs)
		if err != nil {
			b.Fatalf("append batch: %v", err)
		}
		if err := l.Commit(lsn); err != nil {
			b.Fatalf("commit: %v", err)
		}
	}
	b.StopTimer()
	if err := l.Sync(); err != nil {
		b.Fatalf("final sync: %v", err)
	}
}
