// Package benchcore holds the shared bodies of the core fast-path
// microbenchmarks. Both the go-test benchmarks at the repository root
// (bench_test.go) and cmd/bench's -corejson dump run these same functions,
// so the checked-in BENCH_core.json trajectory and `go test -bench` can
// never drift into measuring different workloads.
package benchcore

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"unsafe"

	"pragmaprim/internal/container"
	"pragmaprim/internal/core"
	"pragmaprim/internal/kcss"
	"pragmaprim/internal/multiset"
	"pragmaprim/internal/mwcas"
	"pragmaprim/internal/reclaim"
	"pragmaprim/internal/shard"
	"pragmaprim/internal/template"
)

// LLXInto times an uncontended LLX snapshot of a 2-field typed record (one
// word, one pointer) through the de-boxed Fields API: 0 allocs/op, no
// boxing, no type assertions.
func LLXInto(b *testing.B) {
	p := core.NewProcess()
	r := core.NewTypedRecord(1, 1)
	r.SetWord(0, 1)
	r.SetPtr(0, unsafe.Pointer(r))
	var f core.Fields
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if st := p.LLXFields(r, &f); st != core.LLXOK {
			b.Fatal("LLX failed")
		}
	}
}

// LLXAlloc times the legacy boxed LLX compatibility wrapper (allocates the
// returned Snapshot and unboxes through interface values).
func LLXAlloc(b *testing.B) {
	p := core.NewProcess()
	r := core.NewRecord(2, []any{1, "x"})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, st := p.LLX(r); st != core.LLXOK {
			b.Fatal("LLX failed")
		}
	}
}

// FieldRead times the plain de-boxed word read the paper's Proposition 2
// lets searches use in place of LLX.
func FieldRead(b *testing.B) {
	r := core.NewTypedRecord(1, 1)
	r.SetWord(0, 42)
	var sink uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += r.Word(0)
	}
	_ = sink
}

// DisjointSCX runs LLX+SCX loops on per-goroutine typed records: the paper
// claims every one succeeds (no retries, no aborts). Parallel iff
// GOMAXPROCS > 1.
func DisjointSCX(b *testing.B) {
	var aborts atomic.Int64
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		p := core.NewProcess()
		r := core.NewTypedRecord(1, 0)
		var f core.Fields
		for pb.Next() {
			if st := p.LLXFields(r, &f); st != core.LLXOK {
				b.Fail()
				return
			}
			if !p.SCXWord([]*core.Record{r}, nil, r.WordField(0), f.Word(0)+1) {
				b.Fail()
				return
			}
		}
		aborts.Add(p.Metrics.AbortSteps)
	})
	b.ReportMetric(float64(aborts.Load()), "aborts")
}

// SCXCycle times an uncontended k-record LLXFields+SCXWord transaction on a
// raw (un-announced) Process — descriptors are allocated per SCX, the
// classic GC-reliant mode — and reports the measured CAS steps per
// operation (the paper's k+1).
func SCXCycle(b *testing.B, k int) {
	p := core.NewProcess()
	recs := make([]*core.Record, k)
	for j := range recs {
		recs[j] = core.NewTypedRecord(1, 0)
	}
	var f core.Fields
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range recs {
			if st := p.LLXFields(r, &f); st != core.LLXOK {
				b.Fatal("LLX failed")
			}
		}
		if !p.SCXWord(recs, nil, recs[0].WordField(0), uint64(i)+1) {
			b.Fatal("SCX failed")
		}
	}
	b.ReportMetric(float64(p.Metrics.CASSteps())/float64(b.N), "CAS/op")
}

// SCXCycleRecycled is SCXCycle(k=1) under an announced reclamation epoch:
// the hand-rolled GC-free steady state, where the SCX descriptor comes from
// and returns to the process's freelist (0 allocs/op after warmup).
func SCXCycleRecycled(b *testing.B) {
	p := core.NewProcess()
	l := p.Reclaimer()
	b.Cleanup(l.Release) // unpublish: a stale announcement would pin later cells' epochs
	r := core.NewTypedRecord(1, 0)
	var f core.Fields
	cycle := func(i int) {
		l.Enter()
		if st := p.LLXFields(r, &f); st != core.LLXOK {
			b.Fatal("LLX failed")
		}
		if !p.SCXWord([]*core.Record{r}, nil, r.WordField(0), uint64(i)+1) {
			b.Fatal("SCX failed")
		}
		l.Exit()
	}
	for i := 0; i < 64; i++ {
		cycle(i) // prime the descriptor freelist
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cycle(64 + i)
	}
}

// TemplateSCXCycle times the same uncontended 1-record LLX+SCX transaction
// as SCXCycle(k=1), but routed through the template engine — the direct
// measure of the engine's overhead over the hand-rolled loop. The engine
// announces the epoch, so after warmup the cycle is allocation-free.
func TemplateSCXCycle(b *testing.B) {
	h := core.NewHandle()
	b.Cleanup(h.Release) // unpublish: a stale announcement would pin later cells' epochs
	r := core.NewTypedRecord(1, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		template.Run(h, nil, nil, func(c *template.Ctx) (struct{}, template.Action) {
			snap, st := c.LLXF(r)
			if st != core.LLXOK {
				b.Fatal("LLX failed")
			}
			if c.SCXWord([]*core.Record{r}, nil, r.WordField(0), snap.Word(0)+1) {
				return struct{}{}, template.Done
			}
			b.Fatal("SCX failed")
			return struct{}{}, template.Retry
		})
	}
}

// HandleRoundtrip times a pooled Acquire/Release pair, the per-operation
// cost of the convenience API that hides Process management.
func HandleRoundtrip(b *testing.B) {
	pool := core.NewProcessPool()
	pool.Acquire().Release() // warm the pool so the loop measures reuse
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pool.Acquire().Release()
	}
}

// benchThing is the payload of the ReclaimRetire benchmark.
type benchThing struct{ v int }

// ReclaimRetire times one retire-and-reallocate cycle through the epoch
// machinery: Enter, Retire into limbo, Exit (with its opportunistic
// advance/drain), and a Pool.Get that recycles an earlier retiree. This is
// the steady-state overhead a structure pays per removed node.
func ReclaimRetire(b *testing.B) {
	d := reclaim.NewDomain()
	l := reclaim.NewLocal(d)
	pool := reclaim.NewPool[benchThing]()
	x := &benchThing{}
	for i := 0; i < 64; i++ { // prime the pipeline
		l.Enter()
		pool.Retire(l, x)
		l.Exit()
		if y := pool.Get(l); y != nil {
			x = y
		} else {
			x = &benchThing{}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Enter()
		pool.Retire(l, x)
		l.Exit()
		if y := pool.Get(l); y != nil {
			x = y
		} else {
			x = &benchThing{}
		}
	}
}

// MWCASCycle times an uncontended k-word multi-word CAS over uint64 cells,
// the paper's Section 2 descriptor-based baseline (2k+1 CAS steps where SCX
// needs k+1); the whole operation is one descriptor allocation.
func MWCASCycle(b *testing.B, k int) {
	cells := make([]*mwcas.Cell[uint64], k)
	for j := range cells {
		cells[j] = mwcas.NewCell[uint64](0)
	}
	old := make([]uint64, k)
	newv := make([]uint64, k)
	var st mwcas.Stats
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range cells {
			old[j] = uint64(i)
			newv[j] = uint64(i) + 1
		}
		if !mwcas.MWCAS(cells, old, newv, &st) {
			b.Fatal("MWCAS failed")
		}
	}
	b.ReportMetric(float64(st.CASAttempts.Load())/float64(b.N), "CAS/op")
}

// KCSSCycle times an uncontended k-location k-compare-single-swap over
// de-boxed version-packed word locations, the LL/SC-based baseline the
// paper positions SCX against (0 allocs/op).
func KCSSCycle(b *testing.B, k int) {
	h := kcss.NewWordHandle()
	locs := make([]*kcss.WordLoc, k)
	for j := range locs {
		locs[j] = kcss.NewWordLoc(0)
	}
	expected := make([]uint32, k)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		expected[0] = uint32(i)
		if !h.KCSS(locs, expected, uint32(i)+1) {
			b.Fatal("KCSS failed")
		}
	}
}

// MultisetKeys is the prefill size of the multiset operation benchmarks.
const MultisetKeys = 1 << 10

// NewFilledMultiset returns a multiset prefilled with MultisetKeys keys and
// a Session bound to a fresh Handle.
func NewFilledMultiset() (*multiset.Multiset[int], multiset.Session[int]) {
	m := multiset.New[int]()
	s := m.Attach(core.NewHandle())
	for k := 0; k < MultisetKeys; k++ {
		s.Insert(k, 1)
	}
	return m, s
}

// MultisetGet times Get on a prefilled multiset through a bound Session
// (plain-read search under the session's epoch guard).
func MultisetGet(b *testing.B) {
	_, s := NewFilledMultiset()
	b.Cleanup(s.Handle().Release)
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Get(rng.Intn(MultisetKeys))
	}
}

// MultisetInsertExisting times Insert of already-present keys (a count bump:
// one LLX + one word SCX, no node allocation, recycled descriptor — 0
// allocs/op after warmup) through a bound Session.
func MultisetInsertExisting(b *testing.B) {
	_, s := NewFilledMultiset()
	b.Cleanup(s.Handle().Release)
	rng := rand.New(rand.NewSource(2))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Insert(rng.Intn(MultisetKeys), 1)
	}
}

// MultisetInsertDeleteNew times an insert/delete pair on fresh keys (node
// splice plus three-record unlink SCX) through a bound Session. With node
// recycling the steady state allocates nothing: the splice reuses the nodes
// earlier deletes retired.
func MultisetInsertDeleteNew(b *testing.B) {
	_, s := NewFilledMultiset()
	b.Cleanup(s.Handle().Release)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 256; i++ { // prime the recycling pipeline
		k := MultisetKeys + rng.Intn(MultisetKeys)
		s.Insert(k, 1)
		s.Delete(k, 1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := MultisetKeys + rng.Intn(MultisetKeys)
		s.Insert(k, 1)
		s.Delete(k, 1)
	}
}

// ShardedShards is the shard count of the sharded-multiset benchmarks: wide
// enough to exercise real routing, narrow enough that each shard still
// holds a realistic share of MultisetKeys.
const ShardedShards = 4

// NewFilledShardedMultiset returns a ShardedShards-way sharded multiset
// prefilled with MultisetKeys keys and a routing session over it. The rows
// it backs measure the container+shard layer's overhead against the
// unsharded multiset_* rows: the same operations plus one hash, one index
// and two interface calls.
func NewFilledShardedMultiset() (*shard.Sharded, container.Session) {
	sh := shard.New(ShardedShards, func(int) container.Container {
		return container.Multiset(multiset.New[int]())
	})
	s := sh.NewSession()
	for k := 0; k < MultisetKeys; k++ {
		s.Insert(k)
	}
	return sh, s
}

// ShardedMultisetGet times Get through the sharded container session.
func ShardedMultisetGet(b *testing.B) {
	_, s := NewFilledShardedMultiset()
	b.Cleanup(s.Close) // return the per-shard pooled Handles
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Get(rng.Intn(MultisetKeys))
	}
}

// ShardedMultisetInsertExisting times the count-bump insert through the
// sharded container session.
func ShardedMultisetInsertExisting(b *testing.B) {
	_, s := NewFilledShardedMultiset()
	b.Cleanup(s.Close)
	rng := rand.New(rand.NewSource(2))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Insert(rng.Intn(MultisetKeys))
	}
}

// ShardedMultisetInsertDeleteNew times the fresh-key insert/delete pair
// through the sharded container session.
func ShardedMultisetInsertDeleteNew(b *testing.B) {
	_, s := NewFilledShardedMultiset()
	b.Cleanup(s.Close)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 256; i++ { // prime the recycling pipeline
		k := MultisetKeys + rng.Intn(MultisetKeys)
		s.Insert(k)
		s.Delete(k)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := MultisetKeys + rng.Intn(MultisetKeys)
		s.Insert(k)
		s.Delete(k)
	}
}
