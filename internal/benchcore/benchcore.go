// Package benchcore holds the shared bodies of the core fast-path
// microbenchmarks. Both the go-test benchmarks at the repository root
// (bench_test.go) and cmd/bench's -corejson dump run these same functions,
// so the checked-in BENCH_core.json trajectory and `go test -bench` can
// never drift into measuring different workloads.
package benchcore

import (
	"math/rand"
	"sync/atomic"
	"testing"

	"pragmaprim/internal/container"
	"pragmaprim/internal/core"
	"pragmaprim/internal/kcss"
	"pragmaprim/internal/llsc"
	"pragmaprim/internal/multiset"
	"pragmaprim/internal/mwcas"
	"pragmaprim/internal/shard"
	"pragmaprim/internal/template"
)

// LLXInto times an uncontended LLX snapshot of a 2-field record through the
// snapshot-reuse API (0 allocs/op).
func LLXInto(b *testing.B) {
	p := core.NewProcess()
	r := core.NewRecord(2, []any{1, "x"})
	buf := make(core.Snapshot, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var st core.LLXStatus
		buf, st = p.LLXInto(r, buf)
		if st != core.LLXOK {
			b.Fatal("LLX failed")
		}
	}
}

// LLXAlloc times the allocating LLX compatibility wrapper.
func LLXAlloc(b *testing.B) {
	p := core.NewProcess()
	r := core.NewRecord(2, []any{1, "x"})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, st := p.LLX(r); st != core.LLXOK {
			b.Fatal("LLX failed")
		}
	}
}

// FieldRead times the plain read the paper's Proposition 2 lets searches use
// in place of LLX.
func FieldRead(b *testing.B) {
	r := core.NewRecord(2, []any{1, "x"})
	var sink any
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = r.Read(0)
	}
	_ = sink
}

// DisjointSCX runs LLX+SCX loops on per-goroutine records: the paper claims
// every one succeeds (no retries, no aborts). Parallel iff GOMAXPROCS > 1.
func DisjointSCX(b *testing.B) {
	var aborts atomic.Int64
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		p := core.NewProcess()
		r := core.NewRecord(1, []any{0})
		buf := make(core.Snapshot, 1)
		for pb.Next() {
			var st core.LLXStatus
			buf, st = p.LLXInto(r, buf)
			if st != core.LLXOK {
				b.Fail()
				return
			}
			if !p.SCX([]*core.Record{r}, nil, r.Field(0), buf[0].(int)+1) {
				b.Fail()
				return
			}
		}
		aborts.Add(p.Metrics.AbortSteps)
	})
	b.ReportMetric(float64(aborts.Load()), "aborts")
}

// SCXCycle times an uncontended k-record LLXInto+SCX transaction and reports
// the measured CAS steps per operation (the paper's k+1).
func SCXCycle(b *testing.B, k int) {
	p := core.NewProcess()
	recs := make([]*core.Record, k)
	for j := range recs {
		recs[j] = core.NewRecord(1, []any{0})
	}
	buf := make(core.Snapshot, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range recs {
			var st core.LLXStatus
			buf, st = p.LLXInto(r, buf)
			if st != core.LLXOK {
				b.Fatal("LLX failed")
			}
		}
		if !p.SCX(recs, nil, recs[0].Field(0), i+1) {
			b.Fatal("SCX failed")
		}
	}
	b.ReportMetric(float64(p.Metrics.CASSteps())/float64(b.N), "CAS/op")
}

// TemplateSCXCycle times the same uncontended 1-record LLX+SCX transaction
// as SCXCycle(k=1), but routed through the template engine — the direct
// measure of the engine's overhead over the hand-rolled loop.
func TemplateSCXCycle(b *testing.B) {
	h := core.NewHandle()
	r := core.NewRecord(1, []any{0})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		template.Run(h, nil, nil, func(c *template.Ctx) (struct{}, template.Action) {
			snap, st := c.LLX(r)
			if st != core.LLXOK {
				b.Fatal("LLX failed")
			}
			if c.SCX([]*core.Record{r}, nil, r.Field(0), snap[0].(int)+1) {
				return struct{}{}, template.Done
			}
			b.Fatal("SCX failed")
			return struct{}{}, template.Retry
		})
	}
}

// HandleRoundtrip times a pooled Acquire/Release pair, the per-operation
// cost of the convenience API that hides Process management.
func HandleRoundtrip(b *testing.B) {
	pool := core.NewProcessPool()
	pool.Acquire().Release() // warm the pool so the loop measures reuse
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pool.Acquire().Release()
	}
}

// MWCASCycle times an uncontended k-word multi-word CAS, the paper's
// Section 2 descriptor-based baseline (2k+1 CAS steps where SCX needs k+1).
func MWCASCycle(b *testing.B, k int) {
	cells := make([]*mwcas.Cell[int], k)
	for j := range cells {
		cells[j] = mwcas.NewCell(0)
	}
	old := make([]int, k)
	newv := make([]int, k)
	var st mwcas.Stats
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range cells {
			old[j] = i
			newv[j] = i + 1
		}
		if !mwcas.MWCAS(cells, old, newv, &st) {
			b.Fatal("MWCAS failed")
		}
	}
	b.ReportMetric(float64(st.CASAttempts.Load())/float64(b.N), "CAS/op")
}

// KCSSCycle times an uncontended k-location k-compare-single-swap, the
// LL/SC-based baseline the paper positions SCX against.
func KCSSCycle(b *testing.B, k int) {
	h := kcss.NewHandle[int]()
	locs := make([]*llsc.Loc[int], k)
	for j := range locs {
		locs[j] = llsc.NewLoc(0)
	}
	expected := make([]int, k)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		expected[0] = i
		if !h.KCSS(locs, expected, i+1) {
			b.Fatal("KCSS failed")
		}
	}
}

// MultisetKeys is the prefill size of the multiset operation benchmarks.
const MultisetKeys = 1 << 10

// NewFilledMultiset returns a multiset prefilled with MultisetKeys keys and
// a Session bound to a fresh Handle.
func NewFilledMultiset() (*multiset.Multiset[int], multiset.Session[int]) {
	m := multiset.New[int]()
	s := m.Attach(core.NewHandle())
	for k := 0; k < MultisetKeys; k++ {
		s.Insert(k, 1)
	}
	return m, s
}

// MultisetGet times Get on a prefilled multiset.
func MultisetGet(b *testing.B) {
	m, _ := NewFilledMultiset()
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Get(rng.Intn(MultisetKeys))
	}
}

// MultisetInsertExisting times Insert of already-present keys (a count bump:
// one LLX + one SCX, no node allocation) through a bound Session.
func MultisetInsertExisting(b *testing.B) {
	_, s := NewFilledMultiset()
	rng := rand.New(rand.NewSource(2))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Insert(rng.Intn(MultisetKeys), 1)
	}
}

// MultisetInsertDeleteNew times an insert/delete pair on fresh keys (node
// splice plus three-record unlink SCX) through a bound Session.
func MultisetInsertDeleteNew(b *testing.B) {
	_, s := NewFilledMultiset()
	rng := rand.New(rand.NewSource(3))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := MultisetKeys + rng.Intn(MultisetKeys)
		s.Insert(k, 1)
		s.Delete(k, 1)
	}
}

// ShardedShards is the shard count of the sharded-multiset benchmarks: wide
// enough to exercise real routing, narrow enough that each shard still
// holds a realistic share of MultisetKeys.
const ShardedShards = 4

// NewFilledShardedMultiset returns a ShardedShards-way sharded multiset
// prefilled with MultisetKeys keys and a routing session over it. The rows
// it backs measure the container+shard layer's overhead against the
// unsharded multiset_* rows: the same operations plus one hash, one index
// and two interface calls.
func NewFilledShardedMultiset() (*shard.Sharded, container.Session) {
	sh := shard.New(ShardedShards, func(int) container.Container {
		return container.Multiset(multiset.New[int]())
	})
	s := sh.NewSession()
	for k := 0; k < MultisetKeys; k++ {
		s.Insert(k)
	}
	return sh, s
}

// ShardedMultisetGet times Get through the sharded container session.
func ShardedMultisetGet(b *testing.B) {
	_, s := NewFilledShardedMultiset()
	b.Cleanup(s.Close) // return the per-shard pooled Handles
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Get(rng.Intn(MultisetKeys))
	}
}

// ShardedMultisetInsertExisting times the count-bump insert through the
// sharded container session.
func ShardedMultisetInsertExisting(b *testing.B) {
	_, s := NewFilledShardedMultiset()
	b.Cleanup(s.Close)
	rng := rand.New(rand.NewSource(2))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Insert(rng.Intn(MultisetKeys))
	}
}

// ShardedMultisetInsertDeleteNew times the fresh-key insert/delete pair
// through the sharded container session.
func ShardedMultisetInsertDeleteNew(b *testing.B) {
	_, s := NewFilledShardedMultiset()
	b.Cleanup(s.Close)
	rng := rand.New(rand.NewSource(3))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := MultisetKeys + rng.Intn(MultisetKeys)
		s.Insert(k)
		s.Delete(k)
	}
}
