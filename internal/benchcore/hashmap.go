package benchcore

import (
	"math/rand"
	"testing"

	"pragmaprim/internal/core"
	"pragmaprim/internal/hashmap"
)

// NewFilledHashmap returns a hash map prefilled with n keys and a Session
// bound to a fresh Handle. The prefill drives the map through its doublings
// up front, so the benchmark loop measures the steady state, not migration.
func NewFilledHashmap(n int) (*hashmap.Map, *hashmap.Session) {
	m := hashmap.New()
	s := m.Attach(core.NewHandle())
	for k := 0; k < n; k++ {
		s.Insert(k)
	}
	return m, s
}

// HashmapGet times Get on a prefilled map through a bound Session: a hash,
// a bucket load and a constant-expected-length chain walk — the O(1)
// counterpart of multiset_get's list search, 0 allocs/op.
func HashmapGet(b *testing.B) {
	HashmapGetKeyspace(b, MultisetKeys)
}

// HashmapGetKeyspace is HashmapGet over an n-key prefill. Benchmarked
// across n = 1e3..1e6 it is the map's headline claim made falsifiable: the
// list structures' get cost grows with n, the map's must stay flat (the
// load factor, and so the expected chain length, is independent of n).
func HashmapGetKeyspace(b *testing.B, n int) {
	_, s := NewFilledHashmap(n)
	b.Cleanup(s.Handle().Release) // unpublish: a stale announcement would pin later cells' epochs
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Get(rng.Intn(n))
	}
}

// BuiltinMapGetKeyspace is the control for the keyspace sweep: the same
// loop over Go's built-in (open-addressed, non-concurrent) map. The sweep's
// residual wall-clock growth at large n is the cache hierarchy — once the
// table outgrows the LLC, a random lookup pays DRAM latency in any map —
// and this row quantifies that floor on the measuring host. The hash map's
// ratio across the sweep should track the built-in map's (both are O(1)
// with cache effects); the list structures' get grows ~1000x instead.
func BuiltinMapGetKeyspace(b *testing.B, n int) {
	m := make(map[int]struct{}, n)
	for k := 0; k < n; k++ {
		m[k] = struct{}{}
	}
	rng := rand.New(rand.NewSource(1))
	hits := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := m[rng.Intn(n)]; ok {
			hits++
		}
	}
	if hits == 0 && b.N > 0 {
		b.Fatal("control map lookups all missed")
	}
}

// HashmapInsertDeleteNew times an insert/delete pair on fresh keys through
// a bound Session. The delete retires the inserted node through the epoch
// domain and the next insert recycles it, so the warm steady state
// allocates at most one object per pair (the gate BENCH_core pins).
func HashmapInsertDeleteNew(b *testing.B) {
	_, s := NewFilledHashmap(MultisetKeys)
	b.Cleanup(s.Handle().Release)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 256; i++ { // prime the recycling pipeline
		k := MultisetKeys + rng.Intn(MultisetKeys)
		s.Insert(k)
		s.Delete(k)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := MultisetKeys + rng.Intn(MultisetKeys)
		s.Insert(k)
		s.Delete(k)
	}
}

// HashmapInsertExisting times Insert of already-present keys (an absent
// check that finds the key on an O(1) chain and commits nothing).
func HashmapInsertExisting(b *testing.B) {
	_, s := NewFilledHashmap(MultisetKeys)
	b.Cleanup(s.Handle().Release)
	rng := rand.New(rand.NewSource(2))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Insert(rng.Intn(MultisetKeys))
	}
}
