package benchcore

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"pragmaprim/internal/container"
	"pragmaprim/internal/core"
	"pragmaprim/internal/hashmap"
	"pragmaprim/internal/multiset"
	"pragmaprim/internal/shard"
)

// The parallel benchmark lane compares the lock-free hash map against the
// standard-library alternatives (sync.Map, a RWMutex map) and this
// repository's own sharded multiset under a read-probability sweep, run with
// b.RunParallel so `go test -cpu 1,2,4` and cmd/bench -parallel measure the
// same bodies at several GOMAXPROCS values. Each body follows the same
// harness shape: prefill half the keyspace so reads hit ~50%, then each
// worker draws from its own seeded PRNG (no shared RNG contention polluting
// the measurement) and performs a read with probability readPct/100, else
// alternately inserts or deletes. Three axes: the read mix (read100 is the
// pure-read scaling lane, read90 the common-case mix, read50 write-heavy),
// the key distribution (uniform, or Zipf-skewed via the *Zipf variants), and
// GOMAXPROCS.

// ParallelKeys is the keyspace of the parallel lane: big enough that the
// hash map runs at thousands of buckets, small enough to stay cache-warm.
const ParallelKeys = 1 << 16

// zipfSkew is the exponent of the Zipf-skewed lanes: s=1.1 concentrates a
// large share of the draws on a small hot set (the classic "popular keys"
// shape), which is the adversarial case for anything that serializes on a
// per-key basis — hot-chain SCX retries in the hash map, hot-entry dirty
// promotion in sync.Map, and plain lock convoys in the mutex map.
const zipfSkew = 1.1

// parallelSeeds hands each RunParallel worker a distinct deterministic seed.
var parallelSeeds atomic.Int64

// keySource returns a per-worker key generator: uniform over ParallelKeys,
// or Zipf-skewed with exponent zipfSkew. Each worker owns its generator, so
// the draw itself never contends.
func keySource(rng *rand.Rand, skewed bool) func() int {
	if !skewed {
		return func() int { return rng.Intn(ParallelKeys) }
	}
	z := rand.NewZipf(rng, zipfSkew, 1, ParallelKeys-1)
	return func() int { return int(z.Uint64()) }
}

// parallelBody runs the shared workload shape against one target described
// by its three operations. readPct=100 is the pure-read lane: every draw is
// a Get, the cleanest measure of read-path scaling (no write ever dirties a
// cache line, so any slowdown at higher GOMAXPROCS is protocol overhead).
func parallelBody(b *testing.B, readPct int, skewed bool, get func(int) bool, insert, del func(int)) {
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(parallelSeeds.Add(1)))
		key := keySource(rng, skewed)
		writeToggle := false
		for pb.Next() {
			k := key()
			if rng.Intn(100) < readPct {
				get(k)
			} else if writeToggle = !writeToggle; writeToggle {
				insert(k)
			} else {
				del(k)
			}
		}
	})
}

// ParallelHashmap runs the sweep body against the lock-free hash map. Each
// worker binds its own Session (pooled Handle), the same way a server
// connection would.
func ParallelHashmap(b *testing.B, readPct int) { parallelHashmap(b, readPct, false) }

// ParallelHashmapZipf is ParallelHashmap under the Zipf-skewed key
// distribution: reads and writes concentrate on a hot set, so write lanes
// measure hot-chain SCX contention rather than disjoint-access parallelism.
func ParallelHashmapZipf(b *testing.B, readPct int) { parallelHashmap(b, readPct, true) }

func parallelHashmap(b *testing.B, readPct int, skewed bool) {
	m := hashmap.New()
	for k := 0; k < ParallelKeys; k += 2 {
		m.Insert(k)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		h := core.AcquireHandle()
		defer h.Release()
		s := m.Attach(h)
		rng := rand.New(rand.NewSource(parallelSeeds.Add(1)))
		key := keySource(rng, skewed)
		writeToggle := false
		for pb.Next() {
			k := key()
			if rng.Intn(100) < readPct {
				s.Get(k)
			} else if writeToggle = !writeToggle; writeToggle {
				s.Insert(k)
			} else {
				s.Delete(k)
			}
		}
	})
}

// ParallelSyncMap runs the sweep body against sync.Map, the standard
// library's concurrent map (per-entry indirection, amortized lock-free
// reads, dirty-map promotion on writes).
func ParallelSyncMap(b *testing.B, readPct int) { parallelSyncMap(b, readPct, false) }

// ParallelSyncMapZipf is ParallelSyncMap under the Zipf-skewed key
// distribution.
func ParallelSyncMapZipf(b *testing.B, readPct int) { parallelSyncMap(b, readPct, true) }

func parallelSyncMap(b *testing.B, readPct int, skewed bool) {
	var m sync.Map
	for k := 0; k < ParallelKeys; k += 2 {
		m.Store(k, struct{}{})
	}
	parallelBody(b, readPct, skewed,
		func(k int) bool { _, ok := m.Load(k); return ok },
		func(k int) { m.Store(k, struct{}{}) },
		func(k int) { m.Delete(k) })
}

// ParallelMutexMap runs the sweep body against a plain map guarded by one
// RWMutex — the baseline every Go service reaches for first.
func ParallelMutexMap(b *testing.B, readPct int) { parallelMutexMap(b, readPct, false) }

// ParallelMutexMapZipf is ParallelMutexMap under the Zipf-skewed key
// distribution.
func ParallelMutexMapZipf(b *testing.B, readPct int) { parallelMutexMap(b, readPct, true) }

func parallelMutexMap(b *testing.B, readPct int, skewed bool) {
	m := make(map[int]struct{}, ParallelKeys)
	var mu sync.RWMutex
	for k := 0; k < ParallelKeys; k += 2 {
		m[k] = struct{}{}
	}
	parallelBody(b, readPct, skewed,
		func(k int) bool {
			mu.RLock()
			_, ok := m[k]
			mu.RUnlock()
			return ok
		},
		func(k int) {
			mu.Lock()
			m[k] = struct{}{}
			mu.Unlock()
		},
		func(k int) {
			mu.Lock()
			delete(m, k)
			mu.Unlock()
		})
}

// ParallelShardedMultiset runs the sweep body against this repository's
// previous best answer for a concurrent keyed store: the LLX/SCX multiset
// hash-partitioned over ShardedShards shards. Its per-shard sorted lists
// make reads O(keys/shards); the hash map's flat buckets are the point of
// comparison.
func ParallelShardedMultiset(b *testing.B, readPct int) {
	parallelShardedMultiset(b, readPct, false)
}

// ParallelShardedMultisetZipf is ParallelShardedMultiset under the
// Zipf-skewed key distribution — the worst case for partitioning, since the
// hot set concentrates on few shards.
func ParallelShardedMultisetZipf(b *testing.B, readPct int) {
	parallelShardedMultiset(b, readPct, true)
}

func parallelShardedMultiset(b *testing.B, readPct int, skewed bool) {
	sh := shard.New(ShardedShards, func(int) container.Container {
		return container.Multiset(multiset.New[int]())
	})
	seed := sh.NewSession()
	for k := 0; k < ParallelKeys; k += 2 {
		seed.Insert(k)
	}
	seed.Close()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		s := sh.NewSession()
		defer s.Close()
		rng := rand.New(rand.NewSource(parallelSeeds.Add(1)))
		key := keySource(rng, skewed)
		writeToggle := false
		for pb.Next() {
			k := key()
			if rng.Intn(100) < readPct {
				s.Get(k)
			} else if writeToggle = !writeToggle; writeToggle {
				s.Insert(k)
			} else {
				s.Delete(k)
			}
		}
	})
}
