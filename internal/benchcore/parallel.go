package benchcore

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"pragmaprim/internal/container"
	"pragmaprim/internal/core"
	"pragmaprim/internal/hashmap"
	"pragmaprim/internal/multiset"
	"pragmaprim/internal/shard"
)

// The parallel benchmark lane compares the lock-free hash map against the
// standard-library alternatives (sync.Map, a RWMutex map) and this
// repository's own sharded multiset under a read-probability sweep, run with
// b.RunParallel so `go test -cpu 1,2,4` and cmd/bench -parallel measure the
// same bodies at several GOMAXPROCS values. Each body follows the same
// harness shape: prefill half the keyspace so reads hit ~50%, then each
// worker draws from its own seeded PRNG (no shared RNG contention polluting
// the measurement) and performs a read with probability readPct/100, else
// alternately inserts or deletes.

// ParallelKeys is the keyspace of the parallel lane: big enough that the
// hash map runs at thousands of buckets, small enough to stay cache-warm.
const ParallelKeys = 1 << 16

// parallelSeeds hands each RunParallel worker a distinct deterministic seed.
var parallelSeeds atomic.Int64

// parallelBody runs the shared workload shape against one target described
// by its three operations.
func parallelBody(b *testing.B, readPct int, get func(int) bool, insert, del func(int)) {
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(parallelSeeds.Add(1)))
		writeToggle := false
		for pb.Next() {
			k := rng.Intn(ParallelKeys)
			if rng.Intn(100) < readPct {
				get(k)
			} else if writeToggle = !writeToggle; writeToggle {
				insert(k)
			} else {
				del(k)
			}
		}
	})
}

// ParallelHashmap runs the sweep body against the lock-free hash map. Each
// worker binds its own Session (pooled Handle), the same way a server
// connection would.
func ParallelHashmap(b *testing.B, readPct int) {
	m := hashmap.New()
	for k := 0; k < ParallelKeys; k += 2 {
		m.Insert(k)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		h := core.AcquireHandle()
		defer h.Release()
		s := m.Attach(h)
		rng := rand.New(rand.NewSource(parallelSeeds.Add(1)))
		writeToggle := false
		for pb.Next() {
			k := rng.Intn(ParallelKeys)
			if rng.Intn(100) < readPct {
				s.Get(k)
			} else if writeToggle = !writeToggle; writeToggle {
				s.Insert(k)
			} else {
				s.Delete(k)
			}
		}
	})
}

// ParallelSyncMap runs the sweep body against sync.Map, the standard
// library's concurrent map (per-entry indirection, amortized lock-free
// reads, dirty-map promotion on writes).
func ParallelSyncMap(b *testing.B, readPct int) {
	var m sync.Map
	for k := 0; k < ParallelKeys; k += 2 {
		m.Store(k, struct{}{})
	}
	parallelBody(b, readPct,
		func(k int) bool { _, ok := m.Load(k); return ok },
		func(k int) { m.Store(k, struct{}{}) },
		func(k int) { m.Delete(k) })
}

// ParallelMutexMap runs the sweep body against a plain map guarded by one
// RWMutex — the baseline every Go service reaches for first.
func ParallelMutexMap(b *testing.B, readPct int) {
	m := make(map[int]struct{}, ParallelKeys)
	var mu sync.RWMutex
	for k := 0; k < ParallelKeys; k += 2 {
		m[k] = struct{}{}
	}
	parallelBody(b, readPct,
		func(k int) bool {
			mu.RLock()
			_, ok := m[k]
			mu.RUnlock()
			return ok
		},
		func(k int) {
			mu.Lock()
			m[k] = struct{}{}
			mu.Unlock()
		},
		func(k int) {
			mu.Lock()
			delete(m, k)
			mu.Unlock()
		})
}

// ParallelShardedMultiset runs the sweep body against this repository's
// previous best answer for a concurrent keyed store: the LLX/SCX multiset
// hash-partitioned over ShardedShards shards. Its per-shard sorted lists
// make reads O(keys/shards); the hash map's flat buckets are the point of
// comparison.
func ParallelShardedMultiset(b *testing.B, readPct int) {
	sh := shard.New(ShardedShards, func(int) container.Container {
		return container.Multiset(multiset.New[int]())
	})
	seed := sh.NewSession()
	for k := 0; k < ParallelKeys; k += 2 {
		seed.Insert(k)
	}
	seed.Close()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		s := sh.NewSession()
		defer s.Close()
		rng := rand.New(rand.NewSource(parallelSeeds.Add(1)))
		writeToggle := false
		for pb.Next() {
			k := rng.Intn(ParallelKeys)
			if rng.Intn(100) < readPct {
				s.Get(k)
			} else if writeToggle = !writeToggle; writeToggle {
				s.Insert(k)
			} else {
				s.Delete(k)
			}
		}
	})
}
