package kcss_test

import (
	"sync"
	"testing"

	"pragmaprim/internal/kcss"
	"pragmaprim/internal/llsc"
)

func locs(vals ...int) []*llsc.Loc[int] {
	ls := make([]*llsc.Loc[int], len(vals))
	for i, v := range vals {
		ls[i] = llsc.NewLoc(v)
	}
	return ls
}

func TestKCSSSucceedsWhenAllMatch(t *testing.T) {
	ls := locs(1, 2, 3)
	h := kcss.NewHandle[int]()
	if !h.KCSS(ls, []int{1, 2, 3}, 10) {
		t.Fatal("KCSS failed though all values matched")
	}
	if got := ls[0].Load(); got != 10 {
		t.Errorf("target = %d, want 10", got)
	}
	for i := 1; i < 3; i++ {
		if got := ls[i].Load(); got != i+1 {
			t.Errorf("loc[%d] = %d, want unchanged %d", i, got, i+1)
		}
	}
}

func TestKCSSFailsOnTargetMismatch(t *testing.T) {
	ls := locs(1, 2)
	h := kcss.NewHandle[int]()
	if h.KCSS(ls, []int{9, 2}, 10) {
		t.Fatal("KCSS succeeded with mismatched target")
	}
	if got := ls[0].Load(); got != 1 {
		t.Errorf("target = %d, want unchanged 1", got)
	}
}

func TestKCSSFailsOnCompareLocationMismatch(t *testing.T) {
	ls := locs(1, 2, 3)
	h := kcss.NewHandle[int]()
	if h.KCSS(ls, []int{1, 2, 9}, 10) {
		t.Fatal("KCSS succeeded with a mismatched compare location")
	}
	if got := ls[0].Load(); got != 1 {
		t.Errorf("target = %d, want unchanged 1", got)
	}
}

func TestKCSSSingleLocationDegeneratesToCAS(t *testing.T) {
	ls := locs(5)
	h := kcss.NewHandle[int]()
	if !h.KCSS(ls, []int{5}, 6) {
		t.Fatal("1-KCSS failed")
	}
	if h.KCSS(ls, []int{5}, 7) {
		t.Fatal("1-KCSS succeeded with stale expectation")
	}
	if got := ls[0].Load(); got != 6 {
		t.Errorf("value = %d, want 6", got)
	}
}

func TestKCSSPanics(t *testing.T) {
	h := kcss.NewHandle[int]()
	for name, f := range map[string]func(){
		"Empty":          func() { h.KCSS(nil, nil, 1) },
		"LengthMismatch": func() { h.KCSS(locs(1, 2), []int{1}, 1) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			f()
		})
	}
}

func TestKCSSRead(t *testing.T) {
	l := llsc.NewLoc(7)
	h := kcss.NewHandle[int]()
	if got := h.Read(l); got != 7 {
		t.Errorf("Read = %d, want 7", got)
	}
}

// TestKCSSConcurrentGuardedCounter increments loc[0] only while a guard
// location holds its expected value; no increment may be lost and none may
// land after the guard flips.
func TestKCSSConcurrentGuardedCounter(t *testing.T) {
	const procs = 4
	const perProc = 500
	counter := llsc.NewLoc(0)
	guard := llsc.NewLoc(0) // stays 0 throughout phase 1

	var wg sync.WaitGroup
	for g := 0; g < procs; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := kcss.NewHandle[int]()
			for i := 0; i < perProc; i++ {
				for {
					v := h.Read(counter)
					if h.KCSS([]*llsc.Loc[int]{counter, guard}, []int{v, 0}, v+1) {
						break
					}
				}
			}
		}()
	}
	wg.Wait()
	if got := counter.Load(); got != procs*perProc {
		t.Fatalf("counter = %d, want %d", got, procs*perProc)
	}

	// Flip the guard; every further guarded increment must fail.
	h := kcss.NewHandle[int]()
	if !h.KCSS([]*llsc.Loc[int]{guard}, []int{0}, 1) {
		t.Fatal("guard flip failed")
	}
	v := h.Read(counter)
	if h.KCSS([]*llsc.Loc[int]{counter, guard}, []int{v, 0}, v+1) {
		t.Fatal("KCSS succeeded against a flipped guard")
	}
	if got := counter.Load(); got != procs*perProc {
		t.Fatalf("counter moved after guard flip: %d", got)
	}
}
