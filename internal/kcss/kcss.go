// Package kcss implements k-compare-single-swap (Luchangco, Moir and Shavit
// [14]), the closest prior primitive the paper compares SCX against
// (Section 2). KCSS atomically tests that k locations hold expected values
// and, if so, writes a new value to the first of them.
//
// The implementation follows the original construction: an LL on the target
// location, two identity-based collects of the other k-1 locations (standing
// in for the version-numbered reads of the original), and an SC on the
// target. It is obstruction-free — a process running alone terminates — but
// unlike SCX it is not non-blocking under contention, and it cannot finalize
// records; the paper's Section 2 discusses exactly these gaps.
package kcss

import (
	"pragmaprim/internal/llsc"
)

// Handle is the per-process context for KCSS operations. One per goroutine;
// not safe for concurrent use.
type Handle[T comparable] struct {
	h *llsc.Handle[T]

	// Attempts counts internal retries of the collect phase, for the
	// experiment harness.
	Attempts int64
}

// NewHandle returns a fresh per-process handle.
func NewHandle[T comparable]() *Handle[T] {
	return &Handle[T]{h: llsc.NewHandle[T]()}
}

// Read returns the current value of a location.
func (k *Handle[T]) Read(l *llsc.Loc[T]) T { return l.Load() }

// KCSS atomically checks that locs[i] holds expected[i] for every i and, if
// so, stores newVal into locs[0] and returns true. If some location holds an
// unexpected value it returns false. Under contention the operation retries
// internally (obstruction freedom): it terminates whenever it runs in
// isolation for long enough.
//
// locs must be non-empty and duplicate-free; expected must have the same
// length as locs.
func (k *Handle[T]) KCSS(locs []*llsc.Loc[T], expected []T, newVal T) bool {
	if len(locs) == 0 {
		panic("kcss: KCSS with no locations")
	}
	if len(expected) != len(locs) {
		panic("kcss: expected-values length does not match locations")
	}
	for {
		k.Attempts++
		// Step 1: LL the swap target and test its expected value.
		if k.h.LL(locs[0]) != expected[0] {
			return false
		}
		// Step 2: first collect of the remaining locations.
		snap1, ok := collect(locs[1:], expected[1:])
		if !ok {
			return false
		}
		// Step 3: second collect; both collects must witness the very same
		// writes, which (with the LL/SC link on locs[0]) pins an instant at
		// which all k locations simultaneously held the expected values.
		snap2, ok := collect(locs[1:], expected[1:])
		if !ok {
			return false
		}
		same := true
		for i := range snap1 {
			if !snap1[i].Same(snap2[i]) {
				same = false
				break
			}
		}
		if !same {
			continue // interference between collects; retry
		}
		// Step 4: SC the new value. Failure means locs[0] was written after
		// our LL; retry from scratch.
		if k.h.SC(locs[0], newVal) {
			return true
		}
	}
}

// collect snapshots each location and compares against the expected values.
// It returns ok=false on a value mismatch.
func collect[T comparable](locs []*llsc.Loc[T], expected []T) ([]llsc.Snapshot[T], bool) {
	snaps := make([]llsc.Snapshot[T], len(locs))
	for i, l := range locs {
		snaps[i] = l.TakeSnapshot()
		if snaps[i].Value() != expected[i] {
			return nil, false
		}
	}
	return snaps, true
}
