package kcss

import "sync/atomic"

// The de-boxed KCSS variant: instead of the GC-based identity snapshots of
// llsc (one heap cell per store), a WordLoc packs a 32-bit version number
// and a 32-bit value into one atomic uint64 — exactly the version-numbered
// construction of the original Luchangco-Moir-Shavit paper. Loads, collects
// and the SC are all raw word operations: a KCSS over word locations
// performs zero heap allocations for k up to maxInlineK.
//
// The version wraps after 2^32 writes to one location; a wrapped version
// colliding with a parked operation's snapshot is the classic bounded-tag
// ABA caveat of every version-number scheme and is out of scope here (the
// GC-based llsc variant exists precisely to avoid it).

// maxInlineK is the largest k the collect phase handles without heap
// allocation; the paper's comparisons use k <= 4.
const maxInlineK = 8

// WordLoc is a single de-boxed location supporting versioned LL/SC: the
// upper 32 bits count writes, the lower 32 bits hold the value. Create with
// NewWordLoc; share freely.
type WordLoc struct {
	w atomic.Uint64
}

// NewWordLoc returns a location holding initial.
func NewWordLoc(initial uint32) *WordLoc {
	l := &WordLoc{}
	l.w.Store(uint64(initial))
	return l
}

// Load returns the current value of l.
func (l *WordLoc) Load() uint32 { return uint32(l.w.Load()) }

// TakeWordSnapshot returns l's packed version+value word: two equal
// snapshots mean no write happened in between, even if the values were
// equal — the de-boxed analogue of llsc's identity-based Snapshot.
func TakeWordSnapshot(l *WordLoc) uint64 { return l.w.Load() }

func pack(ver uint32, val uint32) uint64 { return uint64(ver)<<32 | uint64(val) }

// WordHandle is the per-process context for word-based KCSS operations. One
// per goroutine; not safe for concurrent use.
type WordHandle struct {
	// Attempts counts internal retries of the collect phase, for the
	// experiment harness.
	Attempts int64

	// Collect scratch: handle-owned so a KCSS performs no heap allocation
	// for k <= maxInlineK.
	s1, s2 [maxInlineK]uint64
}

// NewWordHandle returns a fresh per-process handle.
func NewWordHandle() *WordHandle {
	return &WordHandle{}
}

// Read returns the current value of a location.
func (h *WordHandle) Read(l *WordLoc) uint32 { return l.Load() }

// KCSS atomically checks that locs[i] holds expected[i] for every i and, if
// so, stores newVal into locs[0] and returns true. If some location holds an
// unexpected value it returns false. Under contention the operation retries
// internally (obstruction freedom): it terminates whenever it runs in
// isolation for long enough.
//
// locs must be non-empty and duplicate-free; expected must have the same
// length as locs. For k <= maxInlineK the operation is allocation-free.
func (h *WordHandle) KCSS(locs []*WordLoc, expected []uint32, newVal uint32) bool {
	if len(locs) == 0 {
		panic("kcss: KCSS with no locations")
	}
	if len(expected) != len(locs) {
		panic("kcss: expected-values length does not match locations")
	}
	snap1, snap2 := h.s1[:0], h.s2[:0]
	if len(locs)-1 > maxInlineK {
		snap1 = make([]uint64, 0, len(locs)-1)
		snap2 = make([]uint64, 0, len(locs)-1)
	}
	for {
		h.Attempts++
		// Step 1: LL the swap target and test its expected value.
		link := locs[0].w.Load()
		if uint32(link) != expected[0] {
			return false
		}
		// Step 2: first collect of the remaining locations. The packed
		// version+value word is the snapshot witness: two equal words mean
		// no write happened in between, even if the values were equal.
		snap1, snap2 = snap1[:0], snap2[:0]
		if !collectWords(locs[1:], expected[1:], &snap1) {
			return false
		}
		// Step 3: second collect; both collects must witness the very same
		// writes, which (with the versioned link on locs[0]) pins an instant
		// at which all k locations simultaneously held the expected values.
		if !collectWords(locs[1:], expected[1:], &snap2) {
			return false
		}
		same := true
		for i := range snap1 {
			if snap1[i] != snap2[i] {
				same = false
				break
			}
		}
		if !same {
			continue // interference between collects; retry
		}
		// Step 4: SC the new value, bumping the version. Failure means
		// locs[0] was written after our LL; retry from scratch.
		if locs[0].w.CompareAndSwap(link, pack(uint32(link>>32)+1, newVal)) {
			return true
		}
	}
}

// collectWords snapshots each location's packed word into *out and compares
// the value half against the expected values. It returns false on a value
// mismatch.
func collectWords(locs []*WordLoc, expected []uint32, out *[]uint64) bool {
	for i, l := range locs {
		w := l.w.Load()
		if uint32(w) != expected[i] {
			return false
		}
		*out = append(*out, w)
	}
	return true
}
