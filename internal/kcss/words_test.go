package kcss_test

import (
	"sync"
	"testing"

	"pragmaprim/internal/kcss"
)

func TestWordKCSSBasic(t *testing.T) {
	h := kcss.NewWordHandle()
	locs := []*kcss.WordLoc{kcss.NewWordLoc(1), kcss.NewWordLoc(2), kcss.NewWordLoc(3)}

	if !h.KCSS(locs, []uint32{1, 2, 3}, 10) {
		t.Fatal("KCSS with matching expectations failed")
	}
	if got := locs[0].Load(); got != 10 {
		t.Fatalf("locs[0] = %d, want 10", got)
	}
	if locs[1].Load() != 2 || locs[2].Load() != 3 {
		t.Fatal("KCSS wrote a non-target location")
	}
	if h.KCSS(locs, []uint32{1, 2, 3}, 11) {
		t.Fatal("KCSS succeeded against a stale expectation")
	}
	if h.KCSS(locs, []uint32{10, 2, 99}, 11) {
		t.Fatal("KCSS succeeded with a mismatched non-target location")
	}
	if !h.KCSS(locs, []uint32{10, 2, 3}, 11) {
		t.Fatal("KCSS with refreshed expectations failed")
	}
}

// TestWordKCSSVersionDistinguishesSameValue pins the reason the packed
// version exists: a write that restores the previous value between the two
// collects must still be detected (the double collect compares packed
// words, not values).
func TestWordKCSSVersionDistinguishesSameValue(t *testing.T) {
	l := kcss.NewWordLoc(5)
	before := kcss.TakeWordSnapshot(l)
	w := kcss.NewWordHandle()
	if !w.KCSS([]*kcss.WordLoc{l}, []uint32{5}, 6) {
		t.Fatal("setup write failed")
	}
	if !w.KCSS([]*kcss.WordLoc{l}, []uint32{6}, 5) {
		t.Fatal("restore write failed")
	}
	after := kcss.TakeWordSnapshot(l)
	if l.Load() != 5 {
		t.Fatal("value not restored")
	}
	if before == after {
		t.Fatal("packed snapshots equal across an ABA write pair; version lost")
	}
}

func TestWordKCSSAllocFree(t *testing.T) {
	h := kcss.NewWordHandle()
	locs := []*kcss.WordLoc{kcss.NewWordLoc(0), kcss.NewWordLoc(0)}
	expected := []uint32{0, 0}
	i := uint32(0)
	allocs := testing.AllocsPerRun(1000, func() {
		expected[0] = i
		if !h.KCSS(locs, expected, i+1) {
			t.Fatal("KCSS failed")
		}
		i++
	})
	if allocs != 0 {
		t.Errorf("word KCSS: %v allocs/op, want 0", allocs)
	}
}

func TestWordKCSSConcurrentCounter(t *testing.T) {
	l0 := kcss.NewWordLoc(0)
	guard := kcss.NewWordLoc(7)
	const goroutines = 4
	const perG = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := kcss.NewWordHandle()
			for i := 0; i < perG; i++ {
				for {
					cur := l0.Load()
					if h.KCSS([]*kcss.WordLoc{l0, guard}, []uint32{cur, 7}, cur+1) {
						break
					}
				}
			}
		}()
	}
	wg.Wait()
	if got := l0.Load(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
}
