package linearizability

import (
	"sort"
	"strconv"
	"strings"
)

// MultisetInput describes one multiset operation for MultisetModel, matching
// the paper's abstract data type (Section 1).
type MultisetInput struct {
	Op    string // "get", "insert", or "delete"
	Key   int
	Count int // insert/delete only
}

// MultisetModel is the sequential specification of the paper's multiset:
// Get(key) returns the number of occurrences, Insert(key, count) adds count
// occurrences, Delete(key, count) removes count occurrences and reports
// true iff at least count were present.
func MultisetModel() Model {
	return Model{
		Init: func() any { return map[int]int{} },
		Step: func(state, input any) (any, any) {
			s := state.(map[int]int)
			in := input.(MultisetInput)
			switch in.Op {
			case "get":
				return s, s[in.Key]
			case "insert":
				next := cloneCounts(s)
				next[in.Key] += in.Count
				return next, nil
			case "delete":
				if s[in.Key] < in.Count {
					return s, false
				}
				next := cloneCounts(s)
				next[in.Key] -= in.Count
				if next[in.Key] == 0 {
					delete(next, in.Key)
				}
				return next, true
			default:
				panic("linearizability: unknown multiset op " + in.Op)
			}
		},
		Hash: func(state any) string {
			s := state.(map[int]int)
			keys := make([]int, 0, len(s))
			for k := range s {
				keys = append(keys, k)
			}
			sort.Ints(keys)
			var b strings.Builder
			for _, k := range keys {
				b.WriteString(strconv.Itoa(k))
				b.WriteByte(':')
				b.WriteString(strconv.Itoa(s[k]))
				b.WriteByte(',')
			}
			return b.String()
		},
	}
}

func cloneCounts(s map[int]int) map[int]int {
	next := make(map[int]int, len(s))
	for k, v := range s {
		next[k] = v
	}
	return next
}

// RegisterInput describes one operation for RegisterModel.
type RegisterInput struct {
	Op  string // "read" or "write"
	Val int    // write only
}

// RegisterModel is the sequential specification of a single int register
// with initial value 0; useful for checker self-tests.
func RegisterModel() Model {
	return Model{
		Init: func() any { return 0 },
		Step: func(state, input any) (any, any) {
			in := input.(RegisterInput)
			if in.Op == "write" {
				return in.Val, nil
			}
			return state, state.(int)
		},
		Hash: func(state any) string { return strconv.Itoa(state.(int)) },
	}
}

// SeqInput describes one operation for QueueModel or StackModel.
type SeqInput struct {
	Op  string // "push"/"enqueue" add; "pop"/"dequeue" remove
	Val int    // add only
}

// QueueModel is the sequential specification of a FIFO queue of ints:
// enqueue outputs nil, dequeue outputs [2]any{value, ok}.
func QueueModel() Model {
	return seqModel(true)
}

// StackModel is the sequential specification of a LIFO stack of ints: push
// outputs nil, pop outputs [2]any{value, ok}.
func StackModel() Model {
	return seqModel(false)
}

// seqModel builds a queue (fifo=true) or stack (fifo=false) model over an
// immutable []int state.
func seqModel(fifo bool) Model {
	return Model{
		Init: func() any { return []int(nil) },
		Step: func(state, input any) (any, any) {
			s := state.([]int)
			in := input.(SeqInput)
			switch in.Op {
			case "push", "enqueue":
				next := make([]int, len(s)+1)
				copy(next, s)
				next[len(s)] = in.Val
				return next, nil
			case "pop", "dequeue":
				if len(s) == 0 {
					return s, [2]any{0, false}
				}
				if fifo {
					next := make([]int, len(s)-1)
					copy(next, s[1:])
					return next, [2]any{s[0], true}
				}
				next := make([]int, len(s)-1)
				copy(next, s[:len(s)-1])
				return next, [2]any{s[len(s)-1], true}
			default:
				panic("linearizability: unknown sequence op " + in.Op)
			}
		},
		Hash: func(state any) string {
			s := state.([]int)
			var b strings.Builder
			for _, v := range s {
				b.WriteString(strconv.Itoa(v))
				b.WriteByte(',')
			}
			return b.String()
		},
	}
}

// SetInput describes one operation for SetModel (used to check the hash
// map, whose container currency is key presence).
type SetInput struct {
	Op  string // "get", "insert", or "delete"
	Key int
}

// SetModel is the sequential specification of a set of ints: Get reports
// presence, Insert returns true iff the key was absent, Delete returns true
// iff the key was present.
func SetModel() Model {
	return Model{
		Init: func() any { return map[int]bool{} },
		Step: func(state, input any) (any, any) {
			s := state.(map[int]bool)
			in := input.(SetInput)
			switch in.Op {
			case "get":
				return s, s[in.Key]
			case "insert":
				if s[in.Key] {
					return s, false
				}
				next := make(map[int]bool, len(s)+1)
				for k := range s {
					next[k] = true
				}
				next[in.Key] = true
				return next, true
			case "delete":
				if !s[in.Key] {
					return s, false
				}
				next := make(map[int]bool, len(s))
				for k := range s {
					if k != in.Key {
						next[k] = true
					}
				}
				return next, true
			default:
				panic("linearizability: unknown set op " + in.Op)
			}
		},
		Hash: func(state any) string {
			s := state.(map[int]bool)
			keys := make([]int, 0, len(s))
			for k := range s {
				keys = append(keys, k)
			}
			sort.Ints(keys)
			var b strings.Builder
			for _, k := range keys {
				b.WriteString(strconv.Itoa(k))
				b.WriteByte(',')
			}
			return b.String()
		},
	}
}

// MapInput describes one ordered-map operation for MapModel (used to check
// the BST).
type MapInput struct {
	Op  string // "get", "put", or "delete"
	Key int
	Val int // put only
}

// MapModel is the sequential specification of a map from int to int: Put
// returns true iff the key was new, Get and Delete return (value, ok) pairs
// encoded as [2]any{value, ok}.
func MapModel() Model {
	return Model{
		Init: func() any { return map[int]int{} },
		Step: func(state, input any) (any, any) {
			s := state.(map[int]int)
			in := input.(MapInput)
			switch in.Op {
			case "get":
				v, ok := s[in.Key]
				return s, [2]any{v, ok}
			case "put":
				_, existed := s[in.Key]
				next := cloneCounts(s)
				next[in.Key] = in.Val
				return next, !existed
			case "delete":
				v, ok := s[in.Key]
				if !ok {
					return s, [2]any{0, false}
				}
				next := cloneCounts(s)
				delete(next, in.Key)
				return next, [2]any{v, true}
			default:
				panic("linearizability: unknown map op " + in.Op)
			}
		},
		Hash: func(state any) string {
			s := state.(map[int]int)
			keys := make([]int, 0, len(s))
			for k := range s {
				keys = append(keys, k)
			}
			sort.Ints(keys)
			var b strings.Builder
			for _, k := range keys {
				b.WriteString(strconv.Itoa(k))
				b.WriteByte('=')
				b.WriteString(strconv.Itoa(s[k]))
				b.WriteByte(';')
			}
			return b.String()
		},
	}
}
