// Package linearizability implements the Wing-Gong linearizability checker:
// given a sequential model and a recorded concurrent history, it decides
// whether some linearization — a total order of the operations consistent
// with the history's real-time order — exists in which every operation's
// recorded output matches the model. The test suite uses it to validate the
// paper's Theorem 6 (the multiset is linearizable) on real concurrent runs.
//
// The search is exponential in the worst case; it memoizes on the pair
// (set of linearized ops, model state) and is intended for the small
// histories the tests record (up to 63 operations).
package linearizability

import (
	"fmt"
	"reflect"

	"pragmaprim/internal/history"
)

// Model is a deterministic sequential specification.
type Model struct {
	// Init returns the initial state.
	Init func() any
	// Step applies input to state, returning the successor state and the
	// specified output. Step must not mutate state: return a fresh value.
	Step func(state, input any) (newState, output any)
	// Hash returns a canonical fingerprint of state, used for memoization.
	// States with equal fingerprints must be behaviorally identical.
	Hash func(state any) string
}

// Check reports whether ops is linearizable with respect to m.
func Check(m Model, ops []history.Op) bool {
	n := len(ops)
	if n == 0 {
		return true
	}
	if n > 63 {
		panic(fmt.Sprintf("linearizability: history of %d ops exceeds the 63-op limit", n))
	}

	all := uint64(1)<<n - 1
	// visited marks (linearized-set, state) pairs already proven dead ends.
	visited := make(map[string]bool)

	var rec func(mask uint64, state any) bool
	rec = func(mask uint64, state any) bool {
		if mask == all {
			return true
		}
		key := fmt.Sprintf("%x|%s", mask, m.Hash(state))
		if visited[key] {
			return false
		}
		// An op may linearize next iff no other unlinearized op returned
		// before it was invoked.
		minRet := int64(1<<62 - 1)
		for i := 0; i < n; i++ {
			if mask&(1<<i) == 0 && ops[i].Return < minRet {
				minRet = ops[i].Return
			}
		}
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 || ops[i].Call > minRet {
				continue
			}
			next, out := m.Step(state, ops[i].Input)
			if !outputsEqual(out, ops[i].Output) {
				continue
			}
			if rec(mask|1<<i, next) {
				return true
			}
		}
		visited[key] = true
		return false
	}
	return rec(0, m.Init())
}

func outputsEqual(a, b any) bool {
	if a == nil && b == nil {
		return true
	}
	return reflect.DeepEqual(a, b)
}
