package linearizability_test

import (
	"testing"

	"pragmaprim/internal/history"
	"pragmaprim/internal/linearizability"
)

// op builds a history.Op tersely.
func op(proc int, call, ret int64, in, out any) history.Op {
	return history.Op{Proc: proc, Call: call, Return: ret, Input: in, Output: out}
}

func reg(opname string, val int) linearizability.RegisterInput {
	return linearizability.RegisterInput{Op: opname, Val: val}
}

func ms(opname string, key, count int) linearizability.MultisetInput {
	return linearizability.MultisetInput{Op: opname, Key: key, Count: count}
}

func TestEmptyHistoryIsLinearizable(t *testing.T) {
	if !linearizability.Check(linearizability.RegisterModel(), nil) {
		t.Fatal("empty history rejected")
	}
}

func TestSequentialRegisterHistory(t *testing.T) {
	ops := []history.Op{
		op(0, 1, 2, reg("write", 5), nil),
		op(0, 3, 4, reg("read", 0), 5),
		op(0, 5, 6, reg("write", 7), nil),
		op(0, 7, 8, reg("read", 0), 7),
	}
	if !linearizability.Check(linearizability.RegisterModel(), ops) {
		t.Fatal("valid sequential history rejected")
	}
}

func TestSequentialWrongReadRejected(t *testing.T) {
	ops := []history.Op{
		op(0, 1, 2, reg("write", 5), nil),
		op(0, 3, 4, reg("read", 0), 6),
	}
	if linearizability.Check(linearizability.RegisterModel(), ops) {
		t.Fatal("read of a never-written value accepted")
	}
}

func TestConcurrentReadMayLinearizeEitherSide(t *testing.T) {
	// A read overlapping a write may return the old or the new value.
	for _, out := range []int{0, 5} {
		ops := []history.Op{
			op(0, 1, 4, reg("write", 5), nil),
			op(1, 2, 3, reg("read", 0), out),
		}
		if !linearizability.Check(linearizability.RegisterModel(), ops) {
			t.Fatalf("overlapping read returning %d rejected", out)
		}
	}
}

func TestRealTimeOrderEnforced(t *testing.T) {
	// The read RETURNS before the write is INVOKED, yet sees the new value:
	// must be rejected.
	ops := []history.Op{
		op(1, 1, 2, reg("read", 0), 5),
		op(0, 3, 4, reg("write", 5), nil),
	}
	if linearizability.Check(linearizability.RegisterModel(), ops) {
		t.Fatal("future read accepted")
	}
}

func TestStaleReadAfterCompletedWriteRejected(t *testing.T) {
	ops := []history.Op{
		op(0, 1, 2, reg("write", 5), nil),
		op(1, 3, 4, reg("read", 0), 0), // write already completed
	}
	if linearizability.Check(linearizability.RegisterModel(), ops) {
		t.Fatal("stale read accepted")
	}
}

func TestMultisetSequential(t *testing.T) {
	ops := []history.Op{
		op(0, 1, 2, ms("insert", 7, 3), nil),
		op(0, 3, 4, ms("get", 7, 0), 3),
		op(0, 5, 6, ms("delete", 7, 2), true),
		op(0, 7, 8, ms("get", 7, 0), 1),
		op(0, 9, 10, ms("delete", 7, 2), false),
		op(0, 11, 12, ms("delete", 7, 1), true),
		op(0, 13, 14, ms("get", 7, 0), 0),
	}
	if !linearizability.Check(linearizability.MultisetModel(), ops) {
		t.Fatal("valid multiset history rejected")
	}
}

func TestMultisetOverlappingInsertsBothCount(t *testing.T) {
	// Two concurrent inserts then a later get must see both.
	ops := []history.Op{
		op(0, 1, 4, ms("insert", 7, 1), nil),
		op(1, 2, 3, ms("insert", 7, 2), nil),
		op(0, 5, 6, ms("get", 7, 0), 3),
	}
	if !linearizability.Check(linearizability.MultisetModel(), ops) {
		t.Fatal("history with both inserts visible rejected")
	}
	// Seeing only one of two completed inserts is NOT linearizable.
	ops[2].Output = 1
	if linearizability.Check(linearizability.MultisetModel(), ops) {
		t.Fatal("lost insert accepted")
	}
}

func TestMultisetDeleteOrderingAmbiguity(t *testing.T) {
	// delete(7,2) overlaps insert(7,1) with only 1 present: may succeed
	// (linearized after the insert) or fail (before it).
	base := []history.Op{
		op(0, 1, 2, ms("insert", 7, 1), nil),
		op(0, 3, 6, ms("insert", 7, 1), nil),
		op(1, 4, 5, ms("delete", 7, 2), true),
	}
	if !linearizability.Check(linearizability.MultisetModel(), base) {
		t.Fatal("delete-after-insert linearization rejected")
	}
	base[2].Output = false
	if !linearizability.Check(linearizability.MultisetModel(), base) {
		t.Fatal("delete-before-insert linearization rejected")
	}
}

func TestMapModelHistories(t *testing.T) {
	mp := func(opname string, k, v int) linearizability.MapInput {
		return linearizability.MapInput{Op: opname, Key: k, Val: v}
	}
	ops := []history.Op{
		op(0, 1, 2, mp("put", 1, 10), true),
		op(0, 3, 4, mp("put", 1, 11), false),
		op(0, 5, 6, mp("get", 1, 0), [2]any{11, true}),
		op(0, 7, 8, mp("delete", 1, 0), [2]any{11, true}),
		op(0, 9, 10, mp("get", 1, 0), [2]any{0, false}),
	}
	if !linearizability.Check(linearizability.MapModel(), ops) {
		t.Fatal("valid map history rejected")
	}
	ops[2].Output = [2]any{10, true} // stale value after completed overwrite
	if linearizability.Check(linearizability.MapModel(), ops) {
		t.Fatal("stale map read accepted")
	}
}

func TestHistoryRecorderOrdering(t *testing.T) {
	rec := history.NewRecorder(2)
	p0 := rec.Proc(0)
	p1 := rec.Proc(1)
	p0.Invoke(reg("write", 1), func() any { return nil })
	p1.Invoke(reg("read", 0), func() any { return 1 })
	ops := rec.Ops()
	if len(ops) != 2 {
		t.Fatalf("recorded %d ops, want 2", len(ops))
	}
	if ops[0].Return >= ops[1].Call {
		t.Fatal("sequential invocations overlap in recorded time")
	}
	if ops[0].Proc != 0 || ops[1].Proc != 1 {
		t.Fatal("proc ids wrong")
	}
	if !linearizability.Check(linearizability.RegisterModel(), ops) {
		t.Fatal("recorded history rejected")
	}
}

func TestTooLargeHistoryPanics(t *testing.T) {
	ops := make([]history.Op, 64)
	for i := range ops {
		ops[i] = op(0, int64(2*i+1), int64(2*i+2), reg("write", i), nil)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for oversized history")
		}
	}()
	linearizability.Check(linearizability.RegisterModel(), ops)
}
