package linearizability_test

import (
	"testing"

	"pragmaprim/internal/history"
	"pragmaprim/internal/linearizability"
)

func seqIn(opname string, val int) linearizability.SeqInput {
	return linearizability.SeqInput{Op: opname, Val: val}
}

func TestQueueModelFIFO(t *testing.T) {
	ops := []history.Op{
		op(0, 1, 2, seqIn("enqueue", 1), nil),
		op(0, 3, 4, seqIn("enqueue", 2), nil),
		op(0, 5, 6, seqIn("dequeue", 0), [2]any{1, true}),
		op(0, 7, 8, seqIn("dequeue", 0), [2]any{2, true}),
		op(0, 9, 10, seqIn("dequeue", 0), [2]any{0, false}),
	}
	if !linearizability.Check(linearizability.QueueModel(), ops) {
		t.Fatal("valid FIFO history rejected")
	}
	// LIFO order must be rejected by the queue model.
	ops[2].Output = [2]any{2, true}
	ops[3].Output = [2]any{1, true}
	if linearizability.Check(linearizability.QueueModel(), ops) {
		t.Fatal("LIFO history accepted by the queue model")
	}
}

func TestStackModelLIFO(t *testing.T) {
	ops := []history.Op{
		op(0, 1, 2, seqIn("push", 1), nil),
		op(0, 3, 4, seqIn("push", 2), nil),
		op(0, 5, 6, seqIn("pop", 0), [2]any{2, true}),
		op(0, 7, 8, seqIn("pop", 0), [2]any{1, true}),
		op(0, 9, 10, seqIn("pop", 0), [2]any{0, false}),
	}
	if !linearizability.Check(linearizability.StackModel(), ops) {
		t.Fatal("valid LIFO history rejected")
	}
	ops[2].Output = [2]any{1, true}
	ops[3].Output = [2]any{2, true}
	if linearizability.Check(linearizability.StackModel(), ops) {
		t.Fatal("FIFO history accepted by the stack model")
	}
}

func TestQueueModelConcurrentAmbiguity(t *testing.T) {
	// Two concurrent enqueues followed by two dequeues: either enqueue
	// order is linearizable, so both dequeue orders must be accepted.
	for _, firstOut := range []int{1, 2} {
		secondOut := 3 - firstOut
		ops := []history.Op{
			op(0, 1, 4, seqIn("enqueue", 1), nil),
			op(1, 2, 3, seqIn("enqueue", 2), nil),
			op(0, 5, 6, seqIn("dequeue", 0), [2]any{firstOut, true}),
			op(0, 7, 8, seqIn("dequeue", 0), [2]any{secondOut, true}),
		}
		if !linearizability.Check(linearizability.QueueModel(), ops) {
			t.Fatalf("concurrent-enqueue order %d-first rejected", firstOut)
		}
	}
}

func TestModelsRejectUnknownOps(t *testing.T) {
	for name, model := range map[string]linearizability.Model{
		"multiset": linearizability.MultisetModel(),
		"map":      linearizability.MapModel(),
		"queue":    linearizability.QueueModel(),
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("no panic on unknown op")
				}
			}()
			var in any
			switch name {
			case "multiset":
				in = linearizability.MultisetInput{Op: "bogus"}
			case "map":
				in = linearizability.MapInput{Op: "bogus"}
			default:
				in = linearizability.SeqInput{Op: "bogus"}
			}
			model.Step(model.Init(), in)
		})
	}
}

func TestModelHashesDistinguishStates(t *testing.T) {
	m := linearizability.MultisetModel()
	s0 := m.Init()
	s1, _ := m.Step(s0, linearizability.MultisetInput{Op: "insert", Key: 1, Count: 2})
	s2, _ := m.Step(s0, linearizability.MultisetInput{Op: "insert", Key: 2, Count: 1})
	if m.Hash(s1) == m.Hash(s2) {
		t.Error("distinct multiset states hash equal")
	}
	if m.Hash(s0) == m.Hash(s1) {
		t.Error("empty and non-empty states hash equal")
	}

	mm := linearizability.MapModel()
	t0 := mm.Init()
	t1, _ := mm.Step(t0, linearizability.MapInput{Op: "put", Key: 1, Val: 5})
	t2, _ := mm.Step(t0, linearizability.MapInput{Op: "put", Key: 1, Val: 6})
	if mm.Hash(t1) == mm.Hash(t2) {
		t.Error("distinct map states hash equal")
	}

	q := linearizability.QueueModel()
	q0 := q.Init()
	q1, _ := q.Step(q0, linearizability.SeqInput{Op: "enqueue", Val: 1})
	q2, _ := q.Step(q1, linearizability.SeqInput{Op: "enqueue", Val: 2})
	if q.Hash(q1) == q.Hash(q2) || q.Hash(q0) == q.Hash(q1) {
		t.Error("distinct queue states hash equal")
	}
}

func TestDeleteOfAbsentMultisetKey(t *testing.T) {
	m := linearizability.MultisetModel()
	s, out := m.Step(m.Init(), linearizability.MultisetInput{Op: "delete", Key: 9, Count: 1})
	if out != false {
		t.Errorf("delete on empty = %v", out)
	}
	if m.Hash(s) != m.Hash(m.Init()) {
		t.Error("failed delete changed state")
	}
}
