package client_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"pragmaprim/internal/client"
	"pragmaprim/internal/container"
	"pragmaprim/internal/multiset"
	"pragmaprim/internal/proto"
	"pragmaprim/internal/server"
)

func start(t *testing.T) *server.Server {
	t.Helper()
	s, err := server.Start(container.Multiset(multiset.New[int]()), server.Config{})
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s
}

// TestSyncRefusedWhilePending pins the reply-matching guard: a synchronous
// call with pipelined replies outstanding would consume the wrong reply, so
// it must refuse instead.
func TestSyncRefusedWhilePending(t *testing.T) {
	s := start(t)
	cl, err := client.Dial(s.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cl.Close()

	if err := cl.Send(proto.Request{Op: proto.OpSet, Key: 1}); err != nil {
		t.Fatalf("send: %v", err)
	}
	if cl.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", cl.Pending())
	}
	if _, err := cl.Get(1); err == nil || !strings.Contains(err.Error(), "outstanding") {
		t.Fatalf("sync call while pending: err = %v, want outstanding-replies refusal", err)
	}
	if err := cl.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if _, err := cl.Recv(); err != nil {
		t.Fatalf("recv: %v", err)
	}
	// Drained: synchronous calls work again.
	if got, err := cl.Get(1); err != nil || !got {
		t.Fatalf("get after drain: %v, %v", got, err)
	}
}

// TestRecvAfterServerClose pins the acknowledgement semantics the soak test
// depends on: replies flushed by a draining server are still readable, and
// the first Recv past them reports an error rather than inventing acks.
func TestRecvAfterServerClose(t *testing.T) {
	s := start(t)
	cl, err := client.Dial(s.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cl.Close()
	cl.Conn().SetReadDeadline(time.Now().Add(10 * time.Second))

	const n = 16
	for i := 0; i < n; i++ {
		if err := cl.Send(proto.Request{Op: proto.OpSet, Key: int64(i)}); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	if err := cl.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	// Receiving the first reply proves the server consumed the batch (it
	// parses the whole pipelined batch before its single flush), so the
	// shutdown below cannot race ahead of the data.
	rep, err := cl.Recv()
	if err != nil {
		t.Fatalf("recv first: %v", err)
	}
	if applied, err := rep.Bool(); err != nil || !applied {
		t.Fatalf("first reply: applied=%v err=%v", applied, err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// The server flushed the rest of the batch's acks before closing.
	got := 1
	for {
		rep, err := cl.Recv()
		if err != nil {
			break
		}
		if applied, err := rep.Bool(); err != nil || !applied {
			t.Fatalf("reply %d: applied=%v err=%v", got, applied, err)
		}
		got++
	}
	if got != n {
		t.Fatalf("received %d acks, want %d", got, n)
	}
	if s.Size() != n {
		t.Fatalf("final size %d, want %d", s.Size(), n)
	}
}
