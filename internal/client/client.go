// Package client is the Go client of the KV service layer (internal/server
// over internal/proto): a pipelining connection with a synchronous
// request/reply API for simple callers and an asynchronous Send/Flush/Recv
// API for pipelined ones — the load generator and the soak tests drive the
// latter at configurable depth.
//
// A Client owns one connection and mirrors the server's per-connection
// economics: one reusable read buffer, one reusable write buffer, no
// allocation per operation in steady state. It is NOT safe for concurrent
// use — like a container.Session, give each goroutine its own Client.
//
// The pipelined API is strictly ordered: replies arrive in the order
// requests were sent, so the caller matches them positionally. Recv returns
// acknowledgements only for requests the server actually applied; after a
// connection breaks (server shutdown, network failure), the replies
// received before the error are exactly the operations the server applied
// and acknowledged — the property the conservation soak test leans on.
package client

import (
	"fmt"
	"net"
	"time"

	"pragmaprim/internal/proto"
)

// Options tunes a Client.
type Options struct {
	// DialTimeout bounds the TCP dial; 0 means no timeout.
	DialTimeout time.Duration
	// ReadTimeout bounds each Recv: the read deadline is re-armed before
	// every reply read, so a server that stops answering (wedged, mid-crash)
	// surfaces as a timeout error instead of a hang. 0 disables deadlines.
	ReadTimeout time.Duration
	// ReadBuf and WriteBuf size the proto buffers; 0 means
	// proto.DefaultBufSize.
	ReadBuf, WriteBuf int
}

// Client is one pipelining connection to a server. Not safe for concurrent
// use.
type Client struct {
	conn    net.Conn
	r       *proto.Reader
	w       *proto.Writer
	pending int
	rto     time.Duration
}

// Dial connects with default options.
func Dial(addr string) (*Client, error) { return DialOptions(addr, Options{}) }

// DialOptions connects to a server.
func DialOptions(addr string, o Options) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, o.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	return &Client{
		conn: conn,
		r:    proto.NewReader(conn, o.ReadBuf),
		w:    proto.NewWriter(conn, o.WriteBuf),
		rto:  o.ReadTimeout,
	}, nil
}

// Close closes the connection. Pending replies are lost.
func (c *Client) Close() error { return c.conn.Close() }

// Conn exposes the underlying connection (deadlines in tests).
func (c *Client) Conn() net.Conn { return c.conn }

// --- pipelined API ----------------------------------------------------------

// Send buffers one request. Nothing reaches the server until Flush (or the
// write buffer fills). Every successful Send owes exactly one Recv.
func (c *Client) Send(req proto.Request) error {
	if err := c.w.WriteRequest(req); err != nil {
		return err
	}
	c.pending++
	return nil
}

// Flush writes all buffered requests to the server in one batch.
func (c *Client) Flush() error { return c.w.Flush() }

// Recv reads the next reply, in send order. The reply's Bulk field aliases
// the client's read buffer and is valid only until the next Recv. An error
// (e.g. EOF after a server shutdown) means no further replies will arrive;
// replies already returned remain valid acknowledgements.
func (c *Client) Recv() (proto.Reply, error) {
	if c.rto > 0 && c.r.Buffered() == 0 {
		c.conn.SetReadDeadline(time.Now().Add(c.rto))
	}
	rep, err := c.r.ReadReply()
	if err != nil {
		return rep, err
	}
	if c.pending > 0 {
		c.pending--
	}
	return rep, nil
}

// Pending returns the number of requests sent (buffered or flushed) whose
// replies have not been received yet.
func (c *Client) Pending() int { return c.pending }

// --- synchronous API --------------------------------------------------------

// call performs one synchronous round trip. To keep reply matching
// unambiguous it refuses to run while pipelined replies are outstanding.
func (c *Client) call(req proto.Request) (proto.Reply, error) {
	if c.pending != 0 {
		return proto.Reply{}, fmt.Errorf("client: %d pipelined replies outstanding; Recv them before synchronous calls", c.pending)
	}
	if err := c.Send(req); err != nil {
		return proto.Reply{}, err
	}
	if err := c.Flush(); err != nil {
		return proto.Reply{}, err
	}
	return c.Recv()
}

// Ping checks liveness.
func (c *Client) Ping() error {
	rep, err := c.call(proto.Request{Op: proto.OpPing})
	if err != nil {
		return err
	}
	if rep.Status != proto.StatusPong {
		if err := rep.Err(); err != nil {
			return err
		}
		return fmt.Errorf("client: unexpected PING reply %v", rep.Status)
	}
	return nil
}

// Get reports whether key is present (keyed structures) or whether the
// structure is non-empty (produce/consume structures; see
// container.Session).
func (c *Client) Get(key int) (bool, error) {
	rep, err := c.call(proto.Request{Op: proto.OpGet, Key: int64(key)})
	if err != nil {
		return false, err
	}
	return rep.Bool()
}

// Set inserts key and reports whether the container grew.
func (c *Client) Set(key int) (bool, error) {
	rep, err := c.call(proto.Request{Op: proto.OpSet, Key: int64(key)})
	if err != nil {
		return false, err
	}
	return rep.Bool()
}

// Del deletes key (or consumes an element) and reports whether the
// container shrank.
func (c *Client) Del(key int) (bool, error) {
	rep, err := c.call(proto.Request{Op: proto.OpDel, Key: int64(key)})
	if err != nil {
		return false, err
	}
	return rep.Bool()
}

// Count returns key's multiplicity (keyed structures). Produce/consume
// structures cannot count one key; the server answers with an error reply,
// surfaced here as a non-nil error.
func (c *Client) Count(key int) (int64, error) {
	rep, err := c.call(proto.Request{Op: proto.OpCount, Key: int64(key)})
	if err != nil {
		return 0, err
	}
	return rep.Int64()
}

// Size returns the container's cardinality.
func (c *Client) Size() (int, error) {
	rep, err := c.call(proto.Request{Op: proto.OpSize})
	if err != nil {
		return 0, err
	}
	v, err := rep.Int64()
	return int(v), err
}

// Stats returns the server's text metrics dump.
func (c *Client) Stats() (string, error) {
	rep, err := c.call(proto.Request{Op: proto.OpStats})
	if err != nil {
		return "", err
	}
	if err := rep.Err(); err != nil {
		return "", err
	}
	if rep.Status != proto.StatusBulk {
		return "", fmt.Errorf("client: unexpected STATS reply %v", rep.Status)
	}
	return string(rep.Bulk), nil
}

// Trace returns the server's slow-op trace dump: the recent operations that
// exceeded the server's latency threshold, newest first.
func (c *Client) Trace() (string, error) {
	rep, err := c.call(proto.Request{Op: proto.OpTrace})
	if err != nil {
		return "", err
	}
	if err := rep.Err(); err != nil {
		return "", err
	}
	if rep.Status != proto.StatusBulk {
		return "", fmt.Errorf("client: unexpected TRACE reply %v", rep.Status)
	}
	return string(rep.Bulk), nil
}
