package client

import (
	"fmt"
	"time"
)

// Redialer reconnects to one address with bounded exponential backoff. It
// exists for clients that must outlive a server restart — the crash harness
// and the load generator — where a broken connection is an expected event,
// not an error to propagate. It is not safe for concurrent use; like Client,
// give each goroutine its own.
type Redialer struct {
	// Addr is the server address to (re)dial.
	Addr string
	// Opts configures each dialed Client. Set DialTimeout and ReadTimeout
	// here: a redialing caller almost always wants both bounded.
	Opts Options
	// MaxAttempts caps consecutive failed dials per Dial call; 0 means
	// DefaultRedialAttempts.
	MaxAttempts int
	// MaxElapsed caps the total time one Dial call spends retrying; 0 means
	// DefaultRedialElapsed.
	MaxElapsed time.Duration
	// Backoff is the first retry delay, doubled per failure up to
	// BackoffCap; zeros mean DefaultRedialBackoff / DefaultRedialBackoffCap.
	Backoff, BackoffCap time.Duration

	redials int
}

// Redial retry defaults: ~10 attempts over at most 15 seconds, starting at
// 10ms and capping at 1s between attempts — wide enough to ride out a server
// restart, bounded enough that a dead server fails the caller promptly.
const (
	DefaultRedialAttempts   = 10
	DefaultRedialElapsed    = 15 * time.Second
	DefaultRedialBackoff    = 10 * time.Millisecond
	DefaultRedialBackoffCap = time.Second
)

// Dial returns a fresh connection, retrying with exponential backoff until a
// dial succeeds or the attempt/elapsed bounds run out (last error wrapped).
// A caller that sees a connection error closes its Client and calls Dial
// again; Redials counts how many calls needed more than one attempt.
func (r *Redialer) Dial() (*Client, error) {
	attempts := r.MaxAttempts
	if attempts <= 0 {
		attempts = DefaultRedialAttempts
	}
	elapsed := r.MaxElapsed
	if elapsed <= 0 {
		elapsed = DefaultRedialElapsed
	}
	backoff := r.Backoff
	if backoff <= 0 {
		backoff = DefaultRedialBackoff
	}
	bcap := r.BackoffCap
	if bcap <= 0 {
		bcap = DefaultRedialBackoffCap
	}
	deadline := time.Now().Add(elapsed)
	var lastErr error
	for i := 0; i < attempts; i++ {
		cl, err := DialOptions(r.Addr, r.Opts)
		if err == nil {
			if i > 0 {
				r.redials++
			}
			return cl, nil
		}
		lastErr = err
		if i == attempts-1 || !time.Now().Add(backoff).Before(deadline) {
			break
		}
		time.Sleep(backoff)
		if backoff *= 2; backoff > bcap {
			backoff = bcap
		}
	}
	return nil, fmt.Errorf("client: redial %s gave up after %d attempts: %w", r.Addr, attempts, lastErr)
}

// Redials returns how many Dial calls succeeded only after at least one
// failed attempt — i.e. how many reconnect storms this Redialer rode out.
func (r *Redialer) Redials() int { return r.redials }
